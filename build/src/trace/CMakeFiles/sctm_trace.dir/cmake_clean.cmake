file(REMOVE_RECURSE
  "CMakeFiles/sctm_trace.dir/capture.cpp.o"
  "CMakeFiles/sctm_trace.dir/capture.cpp.o.d"
  "CMakeFiles/sctm_trace.dir/dependency_graph.cpp.o"
  "CMakeFiles/sctm_trace.dir/dependency_graph.cpp.o.d"
  "CMakeFiles/sctm_trace.dir/trace_io.cpp.o"
  "CMakeFiles/sctm_trace.dir/trace_io.cpp.o.d"
  "libsctm_trace.a"
  "libsctm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
