#include "analytic/trace_profile.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/record.hpp"

namespace sctm::analytic {
namespace {

trace::TraceRecord rec(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes,
                       noc::MsgClass cls, Cycle inject, Cycle arrive) {
  trace::TraceRecord r;
  r.id = id;
  r.src = src;
  r.dst = dst;
  r.size_bytes = bytes;
  r.cls = cls;
  r.inject_time = inject;
  r.arrive_time = arrive;
  return r;
}

core::ReplayTrace make_rt(std::vector<trace::TraceRecord> records,
                          std::int32_t nodes) {
  trace::Trace t;
  t.app = "synthetic";
  t.capture_network = "test";
  t.nodes = nodes;
  t.records = std::move(records);
  for (const auto& r : t.records) {
    if (r.arrive_time > t.capture_runtime) t.capture_runtime = r.arrive_time;
  }
  return core::ReplayTrace(t);
}

/// A k-record chain on one (src, dst) pair: each record depends on the
/// previous with the given slack (capture latency L0 per hop keeps the
/// arrive + slack == inject invariant).
core::ReplayTrace chain(std::uint32_t k, Cycle slack, Cycle capture_latency) {
  std::vector<trace::TraceRecord> recs;
  Cycle inject = 10;
  for (std::uint32_t i = 0; i < k; ++i) {
    auto r = rec(i + 1, 0, 5, 64, noc::MsgClass::kData, inject,
                 inject + capture_latency);
    if (i > 0) r.deps.push_back({MsgId{i}, slack});
    recs.push_back(r);
    inject = recs.back().arrive_time + slack;
  }
  return make_rt(std::move(recs), 16);
}

TEST(TraceProfile, RequiresFinalizedTrace) {
  core::ReplayTrace rt;
  rt.set_meta("a", "n", 4, 100, 0);
  EXPECT_THROW(profile_trace(rt), std::logic_error);
}

TEST(TraceProfile, OfferedLoadMatrices) {
  const auto rt = make_rt(
      {rec(1, 0, 1, 32, noc::MsgClass::kRequest, 0, 5),
       rec(2, 0, 1, 96, noc::MsgClass::kData, 2, 9),
       rec(3, 2, 3, 16, noc::MsgClass::kReply, 4, 8)},
      4);
  const TraceProfile p = profile_trace(rt);
  EXPECT_EQ(p.nodes, 4);
  EXPECT_EQ(p.records, 3u);
  EXPECT_EQ(p.first_inject, 0u);
  EXPECT_EQ(p.last_inject, 4u);
  EXPECT_EQ(p.span(), 5u);
  EXPECT_EQ(p.pair_msgs[p.pair_index(0, 1)], 2u);
  EXPECT_DOUBLE_EQ(p.pair_bytes[p.pair_index(0, 1)], 128.0);
  EXPECT_EQ(p.pair_msgs[p.pair_index(2, 3)], 1u);
  EXPECT_EQ(p.pair_msgs[p.pair_index(1, 0)], 0u);
  // Class split within the (0, 1) pair.
  const int kReq = static_cast<int>(noc::MsgClass::kRequest);
  const int kData = static_cast<int>(noc::MsgClass::kData);
  EXPECT_DOUBLE_EQ(p.pair_cls_mean_bytes(0, 1, kReq), 32.0);
  EXPECT_DOUBLE_EQ(p.pair_cls_mean_bytes(0, 1, kData), 96.0);
  EXPECT_EQ(p.size_hist.count(), 3u);
}

TEST(TraceProfile, ClassMomentsAndCv) {
  const auto rt = make_rt(
      {rec(1, 0, 1, 10, noc::MsgClass::kData, 0, 5),
       rec(2, 0, 1, 30, noc::MsgClass::kData, 1, 6),
       rec(3, 1, 2, 64, noc::MsgClass::kControl, 2, 7)},
      4);
  const TraceProfile p = profile_trace(rt);
  const auto& data = p.cls[static_cast<int>(noc::MsgClass::kData)];
  EXPECT_EQ(data.messages, 2u);
  EXPECT_DOUBLE_EQ(data.mean_bytes(), 20.0);
  // var = E[x^2] - mean^2 = (100 + 900)/2 - 400 = 100; cv^2 = 100/400.
  EXPECT_NEAR(data.cv_sq(), 0.25, 1e-12);
  const auto& ctl = p.cls[static_cast<int>(noc::MsgClass::kControl)];
  EXPECT_DOUBLE_EQ(ctl.cv_sq(), 0.0);  // constant size
}

TEST(TraceProfile, DependencySummary) {
  auto child = rec(2, 1, 2, 8, noc::MsgClass::kReply, 12, 20);
  child.deps.push_back({MsgId{1}, 4});  // parent arrives at 8, slack 4
  const auto rt = make_rt(
      {rec(1, 0, 1, 8, noc::MsgClass::kRequest, 0, 8), child}, 4);
  const TraceProfile p = profile_trace(rt);
  EXPECT_EQ(p.dep_edges, 1u);
  EXPECT_EQ(p.roots, 1u);
  EXPECT_DOUBLE_EQ(p.mean_fanin, 0.5);
  EXPECT_DOUBLE_EQ(p.mean_slack, 4.0);
  EXPECT_EQ(p.critical_depth, 2u);
}

TEST(TraceProfile, HullExactOnAnchoredChain) {
  // Replay of a k-chain with per-dep slack s on a fixed-latency-L network:
  // completion = inject0 + k*L + (k-1)*s. The envelope must reproduce that
  // line exactly for any L.
  const std::uint32_t k = 7;
  const Cycle s = 3;
  const auto rt = chain(k, s, /*capture_latency=*/11);
  const TraceProfile p = profile_trace(rt);
  EXPECT_EQ(p.critical_depth, k);
  for (const double L : {1.0, 11.0, 250.0}) {
    EXPECT_DOUBLE_EQ(p.hull_eval(L), 10.0 + k * L + (k - 1) * s) << L;
  }
}

TEST(TraceProfile, HullEnvelopeIsMonotoneAndMaxOverChains) {
  // Two independent chains: a deep one (depth 5, low base) and a shallow
  // late one (depth 1, high base). Small L -> the late root dominates;
  // large L -> the deep chain does. The envelope takes the max.
  std::vector<trace::TraceRecord> recs;
  Cycle inject = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto r = rec(i + 1, 0, 1, 16, noc::MsgClass::kData, inject, inject + 4);
    if (i > 0) r.deps.push_back({MsgId{i}, 0});
    recs.push_back(r);
    inject = recs.back().arrive_time;
  }
  recs.push_back(rec(100, 2, 3, 16, noc::MsgClass::kData, 100, 104));
  const TraceProfile p = profile_trace(make_rt(std::move(recs), 4));
  EXPECT_DOUBLE_EQ(p.hull_eval(1.0), 101.0);   // late root: 100 + 1
  EXPECT_DOUBLE_EQ(p.hull_eval(50.0), 250.0);  // deep chain: 0 + 5*50
  double prev = 0;
  for (double L = 1; L < 400; L += 7) {
    const double v = p.hull_eval(L);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace sctm::analytic
