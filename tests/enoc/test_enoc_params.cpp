#include "enoc/params.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sctm::enoc {
namespace {

TEST(EnocParams, DefaultsAreValid) {
  EnocParams p;
  EXPECT_NO_THROW(p.validate(false));
  EXPECT_NO_THROW(p.validate(true));  // 2 VCs/vnet split into dateline halves
  EXPECT_EQ(p.total_vcs(), 4);
}

TEST(EnocParams, FlitSegmentation) {
  EnocParams p;  // 16 B flits, 8 B header
  EXPECT_EQ(p.flits_for(0), 1u);
  EXPECT_EQ(p.flits_for(8), 1u);
  EXPECT_EQ(p.flits_for(9), 2u);
  EXPECT_EQ(p.flits_for(64), 5u);
  EXPECT_EQ(p.flits_for(4096), 257u);
}

TEST(EnocParams, ValidationRejectsBadValues) {
  EnocParams p;
  p.buffer_depth = 0;
  EXPECT_THROW(p.validate(false), std::invalid_argument);
  p = EnocParams{};
  p.link_latency = 0;
  EXPECT_THROW(p.validate(false), std::invalid_argument);
  p = EnocParams{};
  p.vcs_per_vnet = 3;
  EXPECT_NO_THROW(p.validate(false));
  EXPECT_THROW(p.validate(true), std::invalid_argument);  // dateline needs even
}

TEST(EnocParams, FromConfigDefaults) {
  const auto p = EnocParams::from_config(Config{});
  EXPECT_EQ(p.vnets, 2);
  EXPECT_EQ(p.vcs_per_vnet, 2);
  EXPECT_EQ(p.routing, noc::RoutingAlgo::kXY);
  EXPECT_EQ(p.arbiter, ArbiterKind::kRoundRobin);
  EXPECT_FALSE(p.adaptive);
}

TEST(EnocParams, FromConfigOverrides) {
  const auto cfg = Config::from_string(
      "enoc.vnets = 1\nenoc.vcs_per_vnet = 4\nenoc.buffer_depth = 8\n"
      "enoc.flit_bytes = 32\nenoc.link_latency = 2\n"
      "enoc.routing = odd-even\nenoc.adaptive = true\n"
      "enoc.arbiter = matrix\n");
  const auto p = EnocParams::from_config(cfg);
  EXPECT_EQ(p.vnets, 1);
  EXPECT_EQ(p.vcs_per_vnet, 4);
  EXPECT_EQ(p.buffer_depth, 8);
  EXPECT_EQ(p.flit_bytes, 32u);
  EXPECT_EQ(p.link_latency, 2u);
  EXPECT_EQ(p.routing, noc::RoutingAlgo::kOddEven);
  EXPECT_TRUE(p.adaptive);
  EXPECT_EQ(p.arbiter, ArbiterKind::kMatrix);
}

TEST(EnocParams, FromConfigRejectsUnknownNames) {
  EXPECT_THROW(
      EnocParams::from_config(Config::from_string("enoc.routing = spiral\n")),
      std::invalid_argument);
  EXPECT_THROW(
      EnocParams::from_config(Config::from_string("enoc.arbiter = coin\n")),
      std::invalid_argument);
}

}  // namespace
}  // namespace sctm::enoc
