#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/driver.hpp"
#include "trace/dependency_graph.hpp"
#include "trace/trace_io.hpp"

namespace sctm::trace {
namespace {

Trace capture_small(const char* app_name = "fft") {
  fullsys::AppParams app;
  app.name = app_name;
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  fullsys::FullSysParams sys;
  sys.l1_sets = 8;
  sys.l1_ways = 2;
  sys.l2_sets = 32;
  sys.l2_ways = 4;
  core::NetSpec net;
  net.kind = core::NetKind::kEnoc;
  return core::run_execution(app, net, sys).trace;
}

TEST(TraceCaptureTest, ProducesConsistentTrace) {
  const Trace t = capture_small();
  EXPECT_GT(t.records.size(), 100u);
  EXPECT_EQ(t.nodes, 16);
  EXPECT_EQ(t.app, "fft");
  EXPECT_GT(t.capture_runtime, 0u);
  for (const auto& r : t.records) {
    EXPECT_NE(r.arrive_time, kNoCycle);
    EXPECT_GE(r.arrive_time, r.inject_time);
  }
}

TEST(TraceCaptureTest, DependenciesValidateAsDag) {
  const Trace t = capture_small();
  const DependencyGraph g(t);  // throws on any inconsistency
  EXPECT_EQ(g.size(), t.records.size());
  EXPECT_GT(g.mean_deps(), 0.5);
  EXPECT_GT(g.critical_path_length(), 4u);
  EXPECT_GE(g.roots().size(), 1u);
  // Most records are causally chained (this is the property SCTM exploits).
  EXPECT_LT(g.roots().size(), t.records.size() / 4);
}

TEST(TraceIo, BinaryRoundTripIsExact) {
  const Trace t = capture_small();
  std::stringstream buf;
  write_binary(t, buf);
  const Trace back = read_binary(buf);
  EXPECT_EQ(t, back);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = capture_small("jacobi");
  const std::string path = "/tmp/sctm_trace_test.bin";
  write_binary_file(t, path);
  const Trace back = read_binary_file(path);
  EXPECT_EQ(t, back);
  std::remove(path.c_str());
}

TEST(TraceIo, GoldenByteLayoutIsStable) {
  // The exact on-disk bytes for a tiny trace, pinned by hand from the header
  // comment in trace_io.hpp. Guards the buffered serializer (and any future
  // rewrite) against silent format drift: traces written by old builds must
  // stay readable bit-for-bit.
  Trace t;
  t.app = "ab";
  t.capture_network = "m";
  t.nodes = 2;
  t.capture_runtime = 100;
  t.seed = 7;
  TraceRecord r;
  r.id = 7;
  r.src = 0;
  r.dst = 1;
  r.size_bytes = 64;
  r.cls = noc::MsgClass::kData;  // = 2
  r.proto = 9;
  r.inject_time = 10;
  r.arrive_time = 20;
  r.deps.push_back({3, 5});
  t.records.push_back(r);

  static const unsigned char kExpected[] = {
      // magic
      'S', 'C', 'T', 'M', 'T', 'R', 'C', '1',
      // app: u32 len + bytes
      2, 0, 0, 0, 'a', 'b',
      // capture_network
      1, 0, 0, 0, 'm',
      // i32 nodes, u64 runtime, u64 seed, u64 record count
      2, 0, 0, 0,
      100, 0, 0, 0, 0, 0, 0, 0,
      7, 0, 0, 0, 0, 0, 0, 0,
      1, 0, 0, 0, 0, 0, 0, 0,
      // record: u64 id, i32 src, i32 dst, u32 size, u8 cls, u8 proto
      7, 0, 0, 0, 0, 0, 0, 0,
      0, 0, 0, 0,
      1, 0, 0, 0,
      64, 0, 0, 0,
      2,
      9,
      // u64 inject, u64 arrive, u16 dep count, dep (u64 parent, u64 slack)
      10, 0, 0, 0, 0, 0, 0, 0,
      20, 0, 0, 0, 0, 0, 0, 0,
      1, 0,
      3, 0, 0, 0, 0, 0, 0, 0,
      5, 0, 0, 0, 0, 0, 0, 0,
  };

  std::stringstream buf;
  write_binary(t, buf);
  const std::string bytes = buf.str();
  ASSERT_EQ(bytes.size(), sizeof kExpected);
  for (std::size_t i = 0; i < sizeof kExpected; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(bytes[i]), kExpected[i])
        << "byte " << i << " diverged from the golden layout";
  }

  // And the pinned bytes parse back to the identical trace.
  std::stringstream in(std::string(
      reinterpret_cast<const char*>(kExpected), sizeof kExpected));
  EXPECT_EQ(read_binary(in), t);
}

TEST(TraceIo, BadMagicRejected) {
  std::stringstream buf;
  buf << "NOTATRACE-------";
  EXPECT_THROW(read_binary(buf), std::runtime_error);
}

TEST(TraceIo, TruncatedInputRejected) {
  const Trace t = capture_small();
  std::stringstream buf;
  write_binary(t, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_binary(cut), std::runtime_error);
}

// Serialized bytes of the golden tiny trace (see GoldenByteLayoutIsStable),
// for corruption tests that patch specific fields.
std::string golden_v1_bytes() {
  Trace t;
  t.app = "ab";
  t.capture_network = "m";
  t.nodes = 2;
  t.capture_runtime = 100;
  t.seed = 7;
  TraceRecord r;
  r.id = 7;
  r.src = 0;
  r.dst = 1;
  r.size_bytes = 64;
  r.cls = noc::MsgClass::kData;
  r.proto = 9;
  r.inject_time = 10;
  r.arrive_time = 20;
  r.deps.push_back({3, 5});
  t.records.push_back(r);
  std::stringstream buf;
  write_binary(t, buf);
  return buf.str();
}

TEST(TraceIoStrictness, EveryPossibleTruncationRejected) {
  // A v1 file cut after ANY byte — i.e. truncation at every field boundary
  // and inside every field — must throw, never yield a partial Trace.
  const std::string full = golden_v1_bytes();
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    std::stringstream cut(full.substr(0, keep));
    EXPECT_THROW(read_binary(cut), std::runtime_error)
        << "accepted a " << keep << "-byte prefix of a "
        << full.size() << "-byte file";
  }
}

TEST(TraceIoStrictness, TrailingGarbageRejected) {
  std::stringstream buf(golden_v1_bytes() + std::string("\x01", 1));
  EXPECT_THROW(read_binary(buf), std::runtime_error);
}

TEST(TraceIoStrictness, AbsurdRecordCountRejectedBeforeAllocating) {
  // Patch the u64 record count (offset 39: magic 8 + app 6 + net 5 + nodes 4
  // + runtime 8 + seed 8) to a value no remaining bytes could ever hold.
  std::string bytes = golden_v1_bytes();
  for (int i = 0; i < 8; ++i) bytes[39 + i] = static_cast<char>(0xFF);
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary(in), std::runtime_error);
}

TEST(TraceIoStrictness, AbsurdStringLengthRejected) {
  std::string bytes = golden_v1_bytes();
  for (int i = 0; i < 4; ++i) bytes[8 + i] = static_cast<char>(0xFF);
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary(in), std::runtime_error);
}

TEST(TraceIoStrictness, InvalidMessageClassRejected) {
  // The record's cls byte sits at offset 67 (47-byte header + id/src/dst/
  // size = 20 bytes into the record).
  std::string bytes = golden_v1_bytes();
  bytes[67] = 7;  // >= kMsgClassCount
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary(in), std::runtime_error);
}

TEST(TraceIoStrictness, AbsurdDependencyCountRejected) {
  // u16 dep count at offset 85 (record header 22 + inject 8 + arrive 8).
  std::string bytes = golden_v1_bytes();
  bytes[85] = static_cast<char>(0xFF);
  bytes[86] = static_cast<char>(0xFF);
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary(in), std::runtime_error);
}

TEST(TraceIoStrictness, ErrorsNameTheByteOffset) {
  const std::string full = golden_v1_bytes();
  std::stringstream cut(full.substr(0, full.size() - 3));
  try {
    read_binary(cut);
    FAIL() << "truncated input accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos)
        << "error message should carry the byte offset: " << e.what();
  }
}

TEST(TraceIo, TextDumpMentionsEveryRecord) {
  Trace t;
  t.app = "demo";
  t.nodes = 2;
  TraceRecord r;
  r.id = 7;
  r.src = 0;
  r.dst = 1;
  r.size_bytes = 64;
  r.inject_time = 10;
  r.arrive_time = 20;
  t.records.push_back(r);
  const auto text = to_text(t);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("0->1"), std::string::npos);
}

TEST(TraceIo, TextDumpPrintsNoCycleSymbolically) {
  // An unset timestamp must never leak as the raw u64 sentinel.
  Trace t;
  t.app = "demo";
  t.nodes = 2;
  TraceRecord r;
  r.id = 1;
  r.src = 0;
  r.dst = 1;
  r.inject_time = 10;
  r.arrive_time = kNoCycle;  // in-flight / never delivered
  t.records.push_back(r);
  const auto text = to_text(t);
  EXPECT_NE(text.find("t=10..none"), std::string::npos) << text;
  EXPECT_EQ(text.find(std::to_string(kNoCycle)), std::string::npos) << text;
}

TEST(DependencyGraphTest, RejectsUnknownParent) {
  Trace t;
  t.nodes = 2;
  TraceRecord r;
  r.id = 1;
  r.src = 0;
  r.dst = 1;
  r.inject_time = 0;
  r.arrive_time = 5;
  r.deps.push_back({999, 0});
  t.records.push_back(r);
  EXPECT_THROW(DependencyGraph g(t), std::invalid_argument);
}

TEST(DependencyGraphTest, RejectsForwardDependency) {
  Trace t;
  t.nodes = 2;
  TraceRecord a;
  a.id = 1;
  a.src = 0;
  a.dst = 1;
  a.inject_time = 0;
  a.arrive_time = 5;
  a.deps.push_back({2, 0});  // depends on a later message
  TraceRecord b;
  b.id = 2;
  b.src = 1;
  b.dst = 0;
  b.inject_time = 5;
  b.arrive_time = 9;
  t.records = {a, b};
  EXPECT_THROW(DependencyGraph g(t), std::invalid_argument);
}

TEST(DependencyGraphTest, RejectsInconsistentSlack) {
  Trace t;
  t.nodes = 2;
  TraceRecord a;
  a.id = 1;
  a.src = 0;
  a.dst = 1;
  a.inject_time = 0;
  a.arrive_time = 5;
  TraceRecord b;
  b.id = 2;
  b.src = 1;
  b.dst = 0;
  b.inject_time = 9;
  b.arrive_time = 15;
  b.deps.push_back({1, 3});  // 5 + 3 != 9
  t.records = {a, b};
  EXPECT_THROW(DependencyGraph g(t), std::invalid_argument);
}

TEST(DependencyGraphTest, ChildrenAndRoots) {
  Trace t;
  t.nodes = 2;
  TraceRecord a;
  a.id = 1;
  a.src = 0;
  a.dst = 1;
  a.inject_time = 0;
  a.arrive_time = 5;
  TraceRecord b;
  b.id = 2;
  b.src = 1;
  b.dst = 0;
  b.inject_time = 7;
  b.arrive_time = 15;
  b.deps.push_back({1, 2});
  t.records = {a, b};
  const DependencyGraph g(t);
  EXPECT_EQ(g.roots().size(), 1u);
  EXPECT_EQ(g.roots()[0], 0u);
  ASSERT_EQ(g.children_of(0).size(), 1u);
  EXPECT_EQ(g.children_of(0)[0], 1u);
  EXPECT_EQ(g.critical_path_length(), 2u);
  EXPECT_EQ(g.index_of(2), 1u);
  EXPECT_THROW(g.index_of(42), std::out_of_range);
}

}  // namespace
}  // namespace sctm::trace
