#include "common/config.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sctm {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void fail(std::string_view what, std::string_view detail) {
  throw std::runtime_error("Config: " + std::string(what) + ": " +
                           std::string(detail));
}

}  // namespace

Config Config::from_string(std::string_view text) {
  Config cfg;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail("missing '=' on line " + std::to_string(line_no), line);
    }
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) fail("empty key on line " + std::to_string(line_no), line);
    std::string k(key);
    if (const auto it = cfg.lines_.find(k); it != cfg.lines_.end()) {
      fail("key '" + k + "' assigned twice (line " + std::to_string(line_no) +
               ", first assigned on line " + std::to_string(it->second) + ")",
           line);
    }
    cfg.set(k, std::string(value));
    cfg.lines_.emplace(std::move(k), line_no);
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open file", path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_string(ss.str());
}

void Config::set(std::string key, std::string value) {
  // A programmatic overwrite invalidates source-line attribution.
  lines_.erase(key);
  values_[std::move(key)] = std::move(value);
}

void Config::set_int(std::string key, std::int64_t value) {
  set(std::move(key), std::to_string(value));
}

void Config::set_double(std::string key, double value) {
  std::ostringstream ss;
  ss.precision(17);
  ss << value;
  set(std::move(key), ss.str());
}

void Config::set_bool(std::string key, bool value) {
  set(std::move(key), value ? "true" : "false");
}

bool Config::contains(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::size_t> Config::source_line(std::string_view key) const {
  const auto it = lines_.find(key);
  if (it == lines_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Config::lookup(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  consumed_.insert(it->first);
  return it->second;
}

std::string Config::get_string(std::string_view key) const {
  auto v = lookup(key);
  if (!v) fail("missing key", key);
  return *v;
}

std::string Config::get_string(std::string_view key, std::string_view def) const {
  auto v = lookup(key);
  return v ? *v : std::string(def);
}

std::int64_t Config::get_int(std::string_view key) const {
  const std::string v = get_string(key);
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    fail("not an integer at key '" + std::string(key) + "'", v);
  }
  return out;
}

std::int64_t Config::get_int(std::string_view key, std::int64_t def) const {
  return contains(key) ? get_int(key) : def;
}

double Config::get_double(std::string_view key) const {
  const std::string v = get_string(key);
  try {
    std::size_t used = 0;
    const double out = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    fail("not a double at key '" + std::string(key) + "'", v);
  }
}

double Config::get_double(std::string_view key, double def) const {
  return contains(key) ? get_double(key) : def;
}

bool Config::get_bool(std::string_view key) const {
  const std::string v = get_string(key);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  fail("not a boolean at key '" + std::string(key) + "'", v);
}

bool Config::get_bool(std::string_view key, bool def) const {
  return contains(key) ? get_bool(key) : def;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) {
    values_[k] = v;
    if (const auto it = other.lines_.find(k); it != other.lines_.end()) {
      lines_[k] = it->second;
    } else {
      lines_.erase(k);
    }
  }
}

void Config::require_keys_in(
    std::string_view prefix,
    std::initializer_list<std::string_view> allowed) const {
  for (const auto& [k, v] : values_) {
    const std::string_view key = k;
    if (key.substr(0, prefix.size()) != prefix) continue;
    const std::string_view suffix = key.substr(prefix.size());
    bool known = false;
    for (const std::string_view a : allowed) {
      if (suffix == a) {
        known = true;
        break;
      }
    }
    if (known) continue;
    std::string where;
    if (const auto it = lines_.find(k); it != lines_.end()) {
      where = " (line " + std::to_string(it->second) + ")";
    }
    std::string vocab;
    for (const std::string_view a : allowed) {
      if (!vocab.empty()) vocab += ", ";
      vocab += std::string(prefix) + std::string(a);
    }
    fail("unknown key '" + k + "'" + where, "expected one of: " + vocab);
  }
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string Config::consumed_dump() const {
  std::ostringstream ss;
  for (const auto& k : consumed_) {
    const auto it = values_.find(k);
    if (it != values_.end()) ss << k << " = " << it->second << '\n';
  }
  return ss.str();
}

std::string Config::dump() const {
  std::ostringstream ss;
  for (const auto& [k, v] : values_) ss << k << " = " << v << '\n';
  return ss.str();
}

}  // namespace sctm
