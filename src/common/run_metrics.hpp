// Machine-readable run metrics: the one document schema every producer in
// the repo emits (sctm_cli --stats-json, the example binaries, and the
// bench_results/*.json files written by bench/).
//
// Document layout (schema "sctm.run_metrics.v1"):
//   {
//     "schema":   "sctm.run_metrics.v1",
//     "manifest": { "tool": "...", "created": "...", "config": {k: v, ...} },
//     "phases":   [ {"name": "...", "wall_seconds": s, "events": n}, ... ],
//     "stats":    { "counters": {...}, "accumulators": {...},
//                   "histograms": {...} },
//     "results":  { ... tool-specific payload ... }
//   }
// `manifest.config` is an ordered echo of whatever identifies the run (app,
// net spec, trace id, replay mode/window, seed). `created` is a timestamp
// string passed in by the caller — this layer never reads the clock, so
// documents stay reproducible under test. `phases` carries per-phase wall
// time and kernel event counts; `stats` is a full StatRegistry snapshot plus
// named latency histograms; `results` is a free-form object each tool builds
// with the same JsonWriter.
//
// validate_metrics_json() is the schema checker the unit tests and the CI
// gate (`sctm_cli validate`) share.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "common/stats.hpp"

namespace sctm {

class JsonWriter;
struct JsonValue;
class Table;

inline constexpr std::string_view kMetricsSchema = "sctm.run_metrics.v1";

/// One pipeline phase: capture, replay iteration, bench stage, ...
struct PhaseMetrics {
  std::string name;
  double wall_seconds = 0.0;
  /// Kernel events executed during the phase; 0 when not applicable.
  std::uint64_t events = 0;
};

/// Provenance header of a metrics document.
struct RunManifest {
  std::string tool;     // producing binary / subcommand, e.g. "sctm_cli replay"
  std::string created;  // caller-supplied timestamp string (may be empty)
  /// Ordered config echo (app, net, trace id, mode, window, seed, ...).
  std::vector<std::pair<std::string, std::string>> config;

  /// Appends or overwrites a config entry, preserving first-set order.
  void set(std::string_view key, std::string value);
  void set(std::string_view key, std::uint64_t value);
  void set(std::string_view key, std::int64_t value);
  void set(std::string_view key, int value) {
    set(key, static_cast<std::int64_t>(value));
  }
};

/// Builder for one metrics document.
class RunMetrics {
 public:
  RunManifest manifest;

  void add_phase(std::string name, double wall_seconds,
                 std::uint64_t events = 0);
  void add_phases(const std::vector<PhaseMetrics>& phases);

  /// Snapshots `reg` into the document's "stats" section.
  void set_stats(const StatRegistry& reg) { stats_ = reg; }

  /// Adds a named histogram under "stats.histograms". With `with_buckets`,
  /// the exact (value, count) pairs are dumped alongside the summary.
  void add_histogram(std::string name, const Histogram& h,
                     bool with_buckets = false);

  /// Installs the tool-specific "results" object: a serialized JSON object
  /// built with JsonWriter (spliced verbatim).
  void set_results_json(std::string fragment) {
    results_json_ = std::move(fragment);
  }

  /// Serializes the full document.
  std::string to_json() const;

  /// Writes to_json() to `path`; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<PhaseMetrics> phases_;
  StatRegistry stats_;
  struct NamedHistogram {
    std::string name;
    Histogram hist;
    bool with_buckets = false;
  };
  std::vector<NamedHistogram> histograms_;
  std::string results_json_;
};

/// Appends a Table as a JSON object value
/// ({"title": ..., "header": [...], "rows": [[...], ...]}) — the shared
/// rendering the bench harness uses inside its "results" objects.
void write_table_json(JsonWriter& w, const Table& t);

/// Schema check over an already-parsed document.
bool validate_metrics_doc(const JsonValue& doc, std::string* err);

/// Parses + schema-checks `text` (the CI entry point).
bool validate_metrics_json(std::string_view text, std::string* err);

}  // namespace sctm
