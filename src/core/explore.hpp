// Design-space exploration over a single captured trace.
//
// The workflow the trace pipeline exists for: capture once on any network,
// then evaluate many candidate network designs at replay speed — in
// parallel, since each candidate replays in its own Simulator. Results come
// back ranked by predicted application-visible runtime.
#pragma once

#include <string>
#include <vector>

#include "core/replay.hpp"
#include "core/driver.hpp"
#include "trace/record.hpp"

namespace sctm::core {

struct Candidate {
  std::string name;
  NetSpec spec;
};

struct ExploreResult {
  std::string name;
  Cycle runtime = 0;
  double mean_latency = 0;
  Cycle p99_latency = 0;
  int iterations = 1;
  double wall_seconds = 0;
};

/// Replays `trace` over every candidate (parallel across `threads` workers;
/// 0 = hardware concurrency) and returns results sorted by runtime
/// ascending (ties by name). Deterministic: thread scheduling cannot change
/// any result, only the wall clock.
std::vector<ExploreResult> explore(const trace::Trace& trace,
                                   const std::vector<Candidate>& candidates,
                                   const ReplayConfig& config = {},
                                   unsigned threads = 0);

}  // namespace sctm::core
