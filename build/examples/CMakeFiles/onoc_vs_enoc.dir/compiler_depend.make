# Empty compiler generated dependencies file for onoc_vs_enoc.
# This may be replaced when dependencies are built.
