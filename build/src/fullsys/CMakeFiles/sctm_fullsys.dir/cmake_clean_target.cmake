file(REMOVE_RECURSE
  "libsctm_fullsys.a"
)
