// Differential tests for the session reset/reuse protocol: a ReplaySession
// recycled through Simulator::reset() + Network::reset() must be
// bit-identical to fresh construction on every network kind and in both
// replay modes, including after rebind() and across randomized walks over
// the design space.
#include "core/replay_session.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/driver.hpp"

namespace sctm::core {
namespace {

fullsys::AppParams small_app(const char* name) {
  fullsys::AppParams app;
  app.name = name;
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  return app;
}

fullsys::FullSysParams small_sys() {
  fullsys::FullSysParams sys;
  sys.l1_sets = 8;
  sys.l1_ways = 2;
  sys.l2_sets = 32;
  sys.l2_ways = 4;
  return sys;
}

NetSpec spec_of(NetKind kind) {
  NetSpec s;
  s.kind = kind;
  return s;
}

constexpr NetKind kAllKinds[] = {NetKind::kIdeal,     NetKind::kEnoc,
                                 NetKind::kOnocToken, NetKind::kOnocSetup,
                                 NetKind::kOnocSwmr,  NetKind::kHybrid};

// One shared capture (the tests only compare replays against each other, so
// a single trace exercises every network kind).
const ReplayTrace& shared_rt() {
  static const trace::Trace trace =
      run_execution(small_app("fft"), spec_of(NetKind::kEnoc), small_sys())
          .trace;
  static const ReplayTrace rt(trace);
  return rt;
}

ReplayConfig config_for(ReplayMode mode) {
  ReplayConfig cfg;
  cfg.mode = mode;
  return cfg;
}

// Full-schedule equality: every replayed time, the derived runtime, the
// kernel event count and the iteration count. This is the "bit-identical"
// acceptance bar — not a summary-statistic comparison.
void expect_identical(const ReplayResult& reused, const ReplayResult& fresh,
                      const std::string& what) {
  EXPECT_EQ(reused.inject_time, fresh.inject_time) << what;
  EXPECT_EQ(reused.arrive_time, fresh.arrive_time) << what;
  EXPECT_EQ(reused.runtime, fresh.runtime) << what;
  EXPECT_EQ(reused.events, fresh.events) << what;
  EXPECT_EQ(reused.iterations, fresh.iterations) << what;
}

class SessionKindMode
    : public ::testing::TestWithParam<std::tuple<NetKind, ReplayMode>> {};

// Reset-reuse differential: one session run repeatedly must reproduce the
// fresh-construction result exactly, on every network kind in both modes.
TEST_P(SessionKindMode, ResetReuseMatchesFresh) {
  const auto [kind, mode] = GetParam();
  const ReplayTrace& rt = shared_rt();
  const NetSpec spec = spec_of(kind);
  const ReplayConfig cfg = config_for(mode);

  const ReplayResult fresh = replay(rt, make_factory(spec), cfg);
  ReplaySession session(rt, make_factory(spec), cfg);
  for (int round = 1; round <= 3; ++round) {
    const ReplayResult& reused = session.run();
    expect_identical(reused, fresh, "run round " + std::to_string(round));
  }
}

// Same differential for the single-pass entry point, which defers the stat
// snapshot (the allocation-free steady-state path).
TEST_P(SessionKindMode, RunPassReuseMatchesReplayOnce) {
  const auto [kind, mode] = GetParam();
  const ReplayTrace& rt = shared_rt();
  const NetSpec spec = spec_of(kind);
  const ReplayConfig cfg = config_for(mode);

  const ReplayResult fresh = replay_once(rt, make_factory(spec), cfg);
  ReplaySession session(rt, make_factory(spec), cfg);
  for (int round = 1; round <= 3; ++round) {
    const ReplayResult& reused = session.run_pass();
    expect_identical(reused, fresh, "pass round " + std::to_string(round));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SessionKindMode,
    ::testing::Combine(::testing::ValuesIn(kAllKinds),
                       ::testing::Values(ReplayMode::kNaive,
                                         ReplayMode::kSelfCorrecting)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) == ReplayMode::kNaive ? "_naive"
                                                            : "_sctm";
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The iterative engine (truncated window, multi-pass refinement) recycles
// prev_inject_ and the pass log across runs; reuse must still converge to
// the identical trajectory.
TEST(ReplaySession, IterativeRefinementMatchesFresh) {
  const ReplayTrace& rt = shared_rt();
  NetSpec target = spec_of(NetKind::kIdeal);
  target.ideal.per_hop_latency = 20;  // force real correction work
  ReplayConfig cfg;
  cfg.dependency_window = 1;
  cfg.max_iterations = 12;
  cfg.convergence_threshold = 0.5;

  const ReplayResult fresh = replay(rt, make_factory(target), cfg);
  ASSERT_GT(fresh.iterations, 1);  // the config must actually iterate

  ReplaySession session(rt, make_factory(target), cfg);
  for (int round = 1; round <= 2; ++round) {
    const ReplayResult& reused = session.run();
    expect_identical(reused, fresh, "iterative round " + std::to_string(round));
    EXPECT_EQ(reused.iteration_log.size(), fresh.iteration_log.size());
    for (std::size_t i = 0; i < fresh.iteration_log.size(); ++i) {
      EXPECT_EQ(reused.iteration_log[i].iter, fresh.iteration_log[i].iter);
      EXPECT_DOUBLE_EQ(reused.iteration_log[i].residual,
                       fresh.iteration_log[i].residual);
      EXPECT_EQ(reused.iteration_log[i].events, fresh.iteration_log[i].events);
    }
  }
}

// rebind() swaps the network under a live session (what exploration does
// between unequal candidates); results before, after, and after rebinding
// back must all match fresh construction.
TEST(ReplaySession, RebindMatchesFresh) {
  const ReplayTrace& rt = shared_rt();
  const ReplayConfig cfg;
  const NetSpec enoc = spec_of(NetKind::kEnoc);
  const NetSpec ideal = spec_of(NetKind::kIdeal);

  const ReplayResult fresh_enoc = replay(rt, make_factory(enoc), cfg);
  const ReplayResult fresh_ideal = replay(rt, make_factory(ideal), cfg);

  ReplaySession session(rt, make_factory(enoc), cfg);
  expect_identical(session.run(), fresh_enoc, "initial enoc");
  session.rebind(make_factory(ideal));
  expect_identical(session.run(), fresh_ideal, "after rebind to ideal");
  session.rebind(make_factory(enoc));
  expect_identical(session.run(), fresh_enoc, "after rebind back to enoc");
}

// Randomized walk: one session driven through a random sequence of network
// kinds (pure reset when the kind repeats, rebind when it changes) must
// match fresh construction at every step. Seeded, so failures reproduce.
TEST(ReplaySession, RandomizedWalkMatchesFresh) {
  const ReplayTrace& rt = shared_rt();
  for (const ReplayMode mode :
       {ReplayMode::kNaive, ReplayMode::kSelfCorrecting}) {
    const ReplayConfig cfg = config_for(mode);
    std::map<int, ReplayResult> fresh;  // keyed by kind index, lazily filled
    Rng rng(0xC0FFEE + static_cast<std::uint64_t>(mode));

    int bound = static_cast<int>(rng.next_below(std::size(kAllKinds)));
    ReplaySession session(rt, make_factory(spec_of(kAllKinds[bound])), cfg);
    for (int step = 0; step < 12; ++step) {
      const int pick = static_cast<int>(rng.next_below(std::size(kAllKinds)));
      if (pick != bound) {
        session.rebind(make_factory(spec_of(kAllKinds[pick])));
        bound = pick;
      }
      auto it = fresh.find(bound);
      if (it == fresh.end()) {
        it = fresh
                 .emplace(bound, replay(rt, make_factory(spec_of(
                                            kAllKinds[bound])),
                                        cfg))
                 .first;
      }
      expect_identical(session.run(), it->second,
                       std::string("step ") + std::to_string(step) + " on " +
                           to_string(kAllKinds[bound]));
    }
  }
}

// take_result() moves the schedule out and the next run must rebuild it
// from scratch — the wrapper API (replay/replay_once) depends on this.
TEST(ReplaySession, TakeResultLeavesSessionReusable) {
  const ReplayTrace& rt = shared_rt();
  const ReplayConfig cfg;
  const NetSpec spec = spec_of(NetKind::kEnoc);

  ReplaySession session(rt, make_factory(spec), cfg);
  session.run();
  const ReplayResult taken = session.take_result();
  EXPECT_EQ(taken.inject_time.size(), rt.size());

  const ReplayResult& again = session.run();
  expect_identical(again, taken, "run after take_result");
}

}  // namespace
}  // namespace sctm::core
