// Minimal task parallelism for experiment sweeps.
//
// Individual simulations are single-threaded and deterministic; sweeps over
// independent configurations (the bench harness, parameter studies) are
// embarrassingly parallel. parallel_for runs fn(i) for i in [0, n) over a
// worker pool with an atomic work counter; the first exception thrown by any
// task is rethrown on the caller after all workers join, and determinism is
// preserved as long as tasks only touch disjoint state (each task owns its
// own Simulator).
//
// The callable is passed by reference through a type-erased (context, thunk)
// pair — no std::function, so dispatching a capture-heavy lambda never heap
// allocates. The callable must outlive the call (it always does: parallel_for
// joins before returning).
#pragma once

#include <cstddef>
#include <memory>

namespace sctm {

/// Number of workers parallel_for uses for `threads == 0` (hardware
/// concurrency, at least 1).
unsigned default_parallelism();

namespace detail {
void parallel_for_impl(std::size_t n, void (*thunk)(void*, std::size_t),
                       void* ctx, unsigned threads);
}  // namespace detail

template <typename Fn>
void parallel_for(std::size_t n, const Fn& fn, unsigned threads = 0) {
  detail::parallel_for_impl(
      n,
      [](void* ctx, std::size_t i) { (*static_cast<const Fn*>(ctx))(i); },
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
      threads);
}

}  // namespace sctm
