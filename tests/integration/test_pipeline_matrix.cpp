// Integration matrix: the full capture -> serialize -> replay pipeline over
// every (capture network, target network) pair, asserting the structural
// invariants that must hold regardless of configuration:
//   * every record is delivered on the target;
//   * the replayed schedule respects every dependency;
//   * replaying on the capture network is the bit-exact fixed point;
//   * serialization round-trips bit-exactly through a temp file.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "core/driver.hpp"
#include "trace/dependency_graph.hpp"
#include "trace/trace_io.hpp"

namespace sctm {
namespace {

using core::NetKind;

struct Pair {
  NetKind capture;
  NetKind target;
};

std::string kind_name(NetKind k) {
  std::string s = core::to_string(k);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class PipelineMatrix : public ::testing::TestWithParam<Pair> {};

TEST_P(PipelineMatrix, CaptureSerializeReplay) {
  const auto [cap_kind, tgt_kind] = GetParam();

  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;

  core::NetSpec cap_spec;
  cap_spec.kind = cap_kind;
  core::NetSpec tgt_spec;
  tgt_spec.kind = tgt_kind;

  const auto exec = core::run_execution(app, cap_spec, {});
  ASSERT_GT(exec.trace.records.size(), 100u);

  // Serialize through a file.
  const std::string path = "/tmp/sctm_matrix_" + kind_name(cap_kind) + "_" +
                           kind_name(tgt_kind) + ".bin";
  trace::write_binary_file(exec.trace, path);
  const auto loaded = trace::read_binary_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded, exec.trace);

  // Replay on the target; every dependency must hold in the new schedule.
  const auto rep = core::run_replay(loaded, tgt_spec, {});
  const trace::DependencyGraph graph(loaded);
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    EXPECT_NE(rep.result.arrive_time[i], kNoCycle);
    for (const auto& d : loaded.records[i].deps) {
      const auto p = graph.index_of(d.parent);
      EXPECT_GE(rep.result.inject_time[i],
                rep.result.arrive_time[p] + d.slack);
    }
  }

  // Same-network replay is the fixed point. It is bit-exact for every
  // network whose arbitration state is fully driven by the replayed
  // messages; the path-setup ONOC carries *hidden* control traffic whose
  // intra-cycle interleaving the trace cannot encode, leaving a small
  // bounded wobble (documented in DESIGN.md), so it gets a tolerance.
  if (cap_kind == tgt_kind) {
    if (cap_kind == NetKind::kOnocSetup) {
      double sum = 0;
      for (std::size_t i = 0; i < loaded.records.size(); ++i) {
        const auto a = rep.result.arrive_time[i];
        const auto b = loaded.records[i].arrive_time;
        sum += static_cast<double>(a > b ? a - b : b - a);
      }
      EXPECT_LT(sum / static_cast<double>(loaded.records.size()), 5.0);
      const double rt_err =
          std::abs(static_cast<double>(rep.result.runtime) -
                   static_cast<double>(loaded.capture_runtime)) /
          static_cast<double>(loaded.capture_runtime);
      EXPECT_LT(rt_err, 0.02);
    } else {
      for (std::size_t i = 0; i < loaded.records.size(); ++i) {
        ASSERT_EQ(rep.result.inject_time[i], loaded.records[i].inject_time);
        ASSERT_EQ(rep.result.arrive_time[i], loaded.records[i].arrive_time);
      }
    }
  }
}

std::vector<Pair> all_pairs() {
  const NetKind kinds[] = {NetKind::kEnoc, NetKind::kOnocToken,
                           NetKind::kOnocSetup, NetKind::kOnocSwmr,
                           NetKind::kHybrid};
  std::vector<Pair> out;
  for (const auto c : kinds) {
    for (const auto t : kinds) out.push_back({c, t});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PipelineMatrix,
                         ::testing::ValuesIn(all_pairs()),
                         [](const auto& info) {
                           return kind_name(info.param.capture) + "_to_" +
                                  kind_name(info.param.target);
                         });

}  // namespace
}  // namespace sctm
