// Table-driven routing: precomputed next-hop tables behind the same
// (source, current, destination) -> ports contract as the stateless routing
// functions.
//
// A RoutingTable wraps one (topology, algorithm) pair. For the coordinate
// algorithms it is a thin dispatcher onto noc::route_ports() — stateless,
// allocation-free, bit-identical to calling the free function. For kTable it
// builds up*/down* shortest-path next-hop tables once at construction
// (network build time), so the per-flit hot path is two array reads.
//
// Up*/down* (Autonet): a BFS spanning tree from node 0 assigns each node a
// level; nodes are totally ordered by (level, id). A hop u -> v is "up" when
// it moves toward the root (ord(v) < ord(u)) and "down" otherwise. Legal
// routes are up-hops followed by down-hops — once a packet takes a down hop
// it may never go up again. Per destination the table stores the shortest
// *legal* route: a free-phase next hop (packet has only gone up so far) and
// a down-committed next hop. The phase at an intermediate node is derived
// from the input port alone (arriving over a down edge commits the packet),
// so routers need no extra header state.
//
// Deadlock freedom: up edges form a DAG (ord strictly decreases) and down
// edges form a DAG (ord strictly increases); since no route ever turns from
// a down edge onto an up edge, every channel-dependency chain walks the up
// DAG then the down DAG and cannot cycle. audit_routes() verifies this
// property — and route termination/minimality — programmatically.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace sctm::noc {

class RoutingTable {
 public:
  /// Builds the next-hop tables when `algo` is kTable; O(1) otherwise.
  RoutingTable(const Topology& topo, RoutingAlgo algo);

  /// Rebinds to a new (topology, algorithm) pair in place — the rebind /
  /// reparameterize path. The object's address is stable (routers keep a
  /// pointer to the network-owned instance).
  void rebuild(const Topology& topo, RoutingAlgo algo);

  /// Admissible output ports, mirroring noc::route_ports()'s contract
  /// (invalid nodes throw std::logic_error, cur == dst returns empty).
  /// `in_port` is the input port the packet occupies at `cur` (-1 for the
  /// injection port); only table routing reads it, to derive the up*/down*
  /// phase. Allocation-free.
  RoutePorts route(NodeId src, NodeId cur, NodeId dst, int in_port) const;

  const Topology& topology() const { return topo_; }
  RoutingAlgo algo() const { return algo_; }
  bool table_backed() const { return algo_ == RoutingAlgo::kTable; }

  /// True when the hop out of `n` through `port` moves toward the spanning
  /// tree root (meaningful only when table_backed()).
  bool up_edge(NodeId n, int port) const {
    return up_[static_cast<std::size_t>(n) * stride_ +
               static_cast<std::size_t>(port)] != 0;
  }

  /// Length of the stored route src -> dst: the shortest *legal* up*/down*
  /// distance for kTable (>= Topology::distance when the escape ordering
  /// forbids a shortest graph path); meaningful only when table_backed().
  int valid_distance(NodeId src, NodeId dst) const {
    return du_[static_cast<std::size_t>(src) * nodes_ +
               static_cast<std::size_t>(dst)];
  }

  /// Walks the deterministic route src -> dst (first candidate per hop,
  /// phase-correct for table routing), calling fn(node, out_port) per hop.
  /// Works for every algorithm — the analytic models and `sctm_cli topo
  /// verify` emit routes through this instead of re-deriving coordinates.
  template <typename Fn>
  void walk(NodeId src, NodeId dst, Fn&& fn) const {
    NodeId cur = src;
    int in_port = -1;
    int guard = 4 * topo_.node_count() + 8;
    while (cur != dst) {
      const int dir = route(src, cur, dst, in_port).front();
      fn(cur, dir);
      const NodeId next = topo_.neighbor(cur, dir);
      in_port = topo_.arrival_port(cur, dir);
      cur = next;
      if (--guard < 0) {
        throw std::logic_error("RoutingTable::walk: route does not terminate");
      }
    }
  }

 private:
  void build_tables();

  Topology topo_;
  RoutingAlgo algo_;
  int nodes_ = 0;
  int stride_ = 0;
  // kTable state; empty for coordinate algorithms.
  std::vector<std::int16_t> free_hop_;  // [cur * nodes + dst]
  std::vector<std::int16_t> down_hop_;  // [cur * nodes + dst]
  std::vector<std::uint16_t> du_;       // shortest legal distance
  std::vector<std::uint8_t> up_;        // [node * stride + port]
};

/// Route-table health report (tests, `sctm_cli topo verify`): every pair's
/// route walked end to end, lengths checked (graph distance for the minimal
/// coordinate algorithms, shortest legal distance for kTable), and the
/// channel-dependency graph of all traversed (link, link) successions
/// checked for cycles.
struct RouteAudit {
  bool ok = false;
  std::string error;        // first failure, empty when ok
  int routes_checked = 0;
  int max_hops = 0;
  bool cdg_acyclic = false;
};

RouteAudit audit_routes(const RoutingTable& rt);

}  // namespace sctm::noc
