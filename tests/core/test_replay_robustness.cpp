// Failure injection on the trace pipeline: corrupt captured traces in every
// way a buggy producer or a damaged file could, and assert that validation
// rejects them loudly instead of replaying garbage. Plus a property sweep:
// the self-correcting schedule respects dependencies for every window size.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "trace/dependency_graph.hpp"

namespace sctm::core {
namespace {

trace::Trace good_trace() {
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  NetSpec spec;
  spec.kind = NetKind::kIdeal;
  return run_execution(app, spec, {}).trace;
}

NetSpec ideal(Cycle per_hop = 4) {
  NetSpec s;
  s.kind = NetKind::kIdeal;
  s.ideal.per_hop_latency = per_hop;
  return s;
}

TEST(ReplayRobustness, DanglingParentRejected) {
  auto t = good_trace();
  // Point some record's dependency at a message that does not exist.
  for (auto& r : t.records) {
    if (!r.deps.empty()) {
      r.deps[0].parent = 0xdeadbeef;
      break;
    }
  }
  EXPECT_THROW(run_replay(t, ideal(), {}), std::invalid_argument);
}

TEST(ReplayRobustness, CorruptedSlackRejected) {
  auto t = good_trace();
  for (auto& r : t.records) {
    if (!r.deps.empty()) {
      r.deps[0].slack += 7;  // breaks arrival+slack == inject
      break;
    }
  }
  EXPECT_THROW(run_replay(t, ideal(), {}), std::invalid_argument);
}

TEST(ReplayRobustness, ForwardDependencyRejected) {
  auto t = good_trace();
  ASSERT_GT(t.records.size(), 10u);
  // Make an early record depend on a much later one.
  auto& victim = t.records[2];
  victim.deps.clear();
  victim.deps.push_back({t.records.back().id, 0});
  EXPECT_THROW(run_replay(t, ideal(), {}), std::invalid_argument);
}

TEST(ReplayRobustness, DuplicateIdRejected) {
  auto t = good_trace();
  ASSERT_GT(t.records.size(), 2u);
  t.records[1].id = t.records[0].id;
  EXPECT_THROW(run_replay(t, ideal(), {}), std::invalid_argument);
}

TEST(ReplayRobustness, CorruptedTimestampRejected) {
  auto t = good_trace();
  for (auto& r : t.records) {
    if (!r.deps.empty()) {
      r.inject_time += 3;  // slack no longer reconstructs the injection
      break;
    }
  }
  EXPECT_THROW(run_replay(t, ideal(), {}), std::invalid_argument);
}

TEST(ReplayRobustness, InvalidEndpointRejectedByNetwork) {
  auto t = good_trace();
  t.records[0].dst = 99;  // off the 16-node fabric
  EXPECT_THROW(run_replay(t, ideal(), {}), std::logic_error);
}

class WindowSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WindowSweep, DependenciesRespectedAtEveryWindow) {
  static const trace::Trace t = good_trace();
  ReplayConfig cfg;
  cfg.dependency_window = GetParam();
  cfg.max_iterations = 8;
  const auto rep = run_replay(t, ideal(8), cfg);
  const trace::DependencyGraph g(t);
  // With any window and iteration budget, the *kept* (enforced) deps must
  // hold exactly; with the full window, all of them.
  std::size_t violations = 0;
  if (GetParam() >= 16) {
    for (std::size_t i = 0; i < t.records.size(); ++i) {
      for (const auto& d : t.records[i].deps) {
        const auto p = g.index_of(d.parent);
        if (rep.result.inject_time[i] < rep.result.arrive_time[p] + d.slack) {
          ++violations;
        }
      }
    }
  }
  EXPECT_EQ(violations, 0u);
  // All delivered, sane runtime.
  for (const auto a : rep.result.arrive_time) EXPECT_NE(a, kNoCycle);
  EXPECT_GT(rep.result.runtime, 0u);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 8u, 16u, 64u));

}  // namespace
}  // namespace sctm::core
