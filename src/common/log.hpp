// Minimal leveled logger.
//
// The simulator is a library first: logging defaults to warnings-and-errors
// on stderr and is globally adjustable. Hot paths guard with is_enabled() so
// formatting cost is only paid when a sink will consume the line.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace sctm {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log {

/// Sets the global threshold; messages below it are dropped.
void set_level(LogLevel level);
LogLevel level();

/// True when `lvl` would currently be emitted.
bool is_enabled(LogLevel lvl);

/// Emits one line (module, level prefix, message) to stderr.
void write(LogLevel lvl, std::string_view module, std::string_view msg);

/// Number of lines emitted at kWarn or above since process start; tests use
/// this to assert that a scenario is warning-free.
std::uint64_t warning_count();

}  // namespace log

/// Stream-style helper: SCTM_LOG(kDebug, "router") << "x=" << x;
class LogLine {
 public:
  LogLine(LogLevel lvl, std::string_view module) : lvl_(lvl), module_(module) {}
  ~LogLine() {
    if (log::is_enabled(lvl_)) log::write(lvl_, module_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (log::is_enabled(lvl_)) os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string module_;
  std::ostringstream os_;
};

#define SCTM_LOG(lvl, module) ::sctm::LogLine(::sctm::LogLevel::lvl, module)

}  // namespace sctm
