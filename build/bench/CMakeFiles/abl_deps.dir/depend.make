# Empty dependencies file for abl_deps.
# This may be replaced when dependencies are built.
