// Experiment driver: the one-stop API the examples and benches use.
//
// Wraps the three simulation modes the paper compares:
//   execution-driven  - CmpSystem over a real network (ground truth, slow)
//   naive trace       - capture once, replay frozen timestamps (fast, wrong)
//   self-correcting   - capture once, dependency-corrected replay
// and builds networks from a small declarative spec so a bench can sweep
// network kinds/parameters in a few lines.
#pragma once

#include <memory>
#include <string>

#include "core/replay.hpp"
#include "enoc/enoc_network.hpp"
#include "fullsys/cmp_system.hpp"
#include "onoc/hybrid_network.hpp"
#include "onoc/onoc_network.hpp"
#include "trace/record.hpp"

namespace sctm::core {

enum class NetKind { kIdeal, kEnoc, kOnocToken, kOnocSetup, kOnocSwmr, kHybrid };

const char* to_string(NetKind k);

struct NetSpec {
  NetKind kind = NetKind::kEnoc;
  noc::Topology topo = noc::Topology::mesh(4, 4);
  noc::IdealNetwork::Params ideal{};
  enoc::EnocParams enoc{};
  onoc::OnocParams onoc{};
  onoc::HybridParams hybrid{};

  std::string describe() const;
};

/// Factory suitable for replay(); also used internally for execution runs.
NetworkFactory make_factory(const NetSpec& spec);

struct ExecutionRun {
  trace::Trace trace;     // capture of the run (also the ground-truth record)
  Cycle runtime = 0;      // application runtime in cycles
  double wall_seconds = 0;
  std::uint64_t events = 0;  // kernel events executed
  /// Full stat-registry dump of the run (gem5-style stats file content).
  std::string stats_report;
};

/// Runs the application execution-driven on `net`, capturing a trace.
ExecutionRun run_execution(const fullsys::AppParams& app, const NetSpec& net,
                           const fullsys::FullSysParams& sys);

struct ReplayRun {
  ReplayResult result;
  double wall_seconds = 0;
};

/// Replays `trace` over a fresh network built from `net`.
ReplayRun run_replay(const trace::Trace& trace, const NetSpec& net,
                     const ReplayConfig& config);

}  // namespace sctm::core
