// R-T2: the case study — real applications on the ONOC vs the baseline
// electrical NoC simulator, execution-driven, at 16 and 64 cores.
//
// Reports application runtime, packet latency, network energy and
// energy-delay product. Expected shape: the optical crossbar wins on
// bandwidth-hungry transfers and large fabrics but pays conversion/
// arbitration latency on short coherence messages and a heavy static power
// floor at small scale.
#include "bench/bench_util.hpp"

#include "common/parallel.hpp"
#include "enoc/power.hpp"
#include "onoc/power.hpp"

namespace {

using namespace sctm;

struct Row {
  Cycle runtime;
  double mean_lat;
  double p99;
  double energy_uj;
};

Row run_case(const fullsys::AppParams& app, const core::NetSpec& spec) {
  Simulator sim;
  auto net = core::make_factory(spec)(sim);
  fullsys::CmpSystem cmp(sim, "cmp", *net, spec.topo, {},
                         fullsys::build_app(app));
  const Cycle runtime = cmp.run_to_completion();
  double pj = 0;
  if (spec.kind == core::NetKind::kEnoc) {
    auto& e = static_cast<enoc::EnocNetwork&>(*net);
    pj = enoc::compute_enoc_energy(sim.stats(), e.name(),
                                   e.topology().node_count(),
                                   e.active_cycles(), {})
             .total_pj();
  } else if (spec.kind == core::NetKind::kHybrid) {
    auto& hy = static_cast<onoc::HybridNetwork&>(*net);
    pj = enoc::compute_enoc_energy(sim.stats(), hy.electrical().name(),
                                   hy.electrical().topology().node_count(),
                                   hy.electrical().active_cycles(), {})
             .total_pj() +
         onoc::compute_onoc_energy(hy.optical(), runtime, sim.stats())
             .total_pj();
  } else {
    auto& o = static_cast<onoc::OnocNetwork&>(*net);
    pj = onoc::compute_onoc_energy(o, runtime, sim.stats()).total_pj();
  }
  return Row{runtime, net->latency_histogram().mean(),
             static_cast<double>(net->latency_histogram().percentile(0.99)),
             pj * 1e-6};
}

}  // namespace

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  Table t("R-T2: case study, execution-driven, ENoC mesh vs ONOC variants");
  t.set_header({"cores", "app", "network", "runtime", "mean lat", "p99 lat",
                "energy (uJ)", "EDP (uJ*kcyc)", "speedup"});

  // Flatten the (cores x app x network) grid into independent cells and run
  // them in parallel; rows are emitted in grid order afterwards.
  struct Cell {
    int cores;
    const char* app;
    const char* label;
    core::NetSpec spec;
    Row result{};
  };
  std::vector<Cell> cells;
  for (const int cores : {16, 64}) {
    const auto topo = cores == 16 ? noc::Topology::mesh(4, 4)
                                  : noc::Topology::mesh(8, 8);
    for (const char* name : {"fft", "jacobi", "sort"}) {
      core::NetSpec swmr;
      swmr.kind = core::NetKind::kOnocSwmr;
      swmr.topo = topo;
      core::NetSpec hybrid;
      hybrid.kind = core::NetKind::kHybrid;
      hybrid.topo = topo;
      for (const auto& [spec, label] :
           {std::pair{enoc_spec(topo), "enoc"},
            std::pair{onoc_token_spec(topo), "onoc-token"},
            std::pair{onoc_setup_spec(topo), "onoc-setup"},
            std::pair{swmr, "onoc-swmr"}, std::pair{hybrid, "hybrid"}}) {
        cells.push_back(Cell{cores, name, label, spec});
      }
    }
  }
  parallel_for(cells.size(), [&](std::size_t i) {
    fullsys::AppParams app;
    app.name = cells[i].app;
    app.cores = cells[i].cores;
    app.lines_per_core = 16;
    app.iterations = 2;
    cells[i].result = run_case(app, cells[i].spec);
  });

  bool ok = true;
  for (const auto& c : cells) {
    // The first cell of each (cores, app) group is the enoc baseline.
    const Row* base = nullptr;
    for (const auto& b : cells) {
      if (b.cores == c.cores && b.app == c.app &&
          std::string(b.label) == "enoc") {
        base = &b.result;
        break;
      }
    }
    const Row& r = c.result;
    const double edp = r.energy_uj * static_cast<double>(r.runtime) * 1e-3;
    ok = ok && r.runtime > 0;
    t.add_row({Table::fmt(static_cast<std::int64_t>(c.cores)), c.app, c.label,
               Table::fmt(static_cast<std::uint64_t>(r.runtime)),
               Table::fmt(r.mean_lat, 1), Table::fmt(r.p99, 0),
               Table::fmt(r.energy_uj, 2), Table::fmt(edp, 2),
               Table::fmt(static_cast<double>(base->runtime) /
                              static_cast<double>(r.runtime),
                          2) + "x"});
  }
  emit(t, "rt2_casestudy");
  return verdict(ok, "R-T2 case study completed on all fabrics");
}
