file(REMOVE_RECURSE
  "libsctm_trace.a"
)
