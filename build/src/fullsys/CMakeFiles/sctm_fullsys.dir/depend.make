# Empty dependencies file for sctm_fullsys.
# This may be replaced when dependencies are built.
