# Empty compiler generated dependencies file for sctm_common.
# This may be replaced when dependencies are built.
