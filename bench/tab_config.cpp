// R-T1: simulated system configuration table.
//
// Prints the configuration of every modeled subsystem plus per-application
// workload statistics (ops, memory accesses, captured messages) measured
// with a quick execution-driven run.
#include "bench/bench_util.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  const fullsys::FullSysParams sys;
  Table cmp("R-T1a: CMP configuration (per node unless noted)");
  cmp.set_header({"parameter", "value"});
  cmp.add_row({"cores", "16 (4x4 tiles; 64-core runs use 8x8)"});
  cmp.add_row({"L1 (private)", std::to_string(sys.l1_sets) + " sets x " +
                                   std::to_string(sys.l1_ways) +
                                   " ways x 64 B = " +
                                   std::to_string(sys.l1_sets * sys.l1_ways *
                                                  64 / 1024) +
                                   " KiB"});
  cmp.add_row({"L2 bank (shared, 1/node)",
               std::to_string(sys.l2_sets) + " sets x " +
                   std::to_string(sys.l2_ways) + " ways x 64 B = " +
                   std::to_string(sys.l2_sets * sys.l2_ways * 64 / 1024) +
                   " KiB"});
  cmp.add_row({"coherence", "MSI, full-map in-bank directory, blocking"});
  cmp.add_row({"L1 hit / miss-detect",
               std::to_string(sys.l1_hit_latency) + " / " +
                   std::to_string(sys.l1_miss_detect) + " cycles"});
  cmp.add_row({"L2 / directory latency",
               std::to_string(sys.l2_latency) + " / " +
                   std::to_string(sys.dir_latency) + " cycles"});
  cmp.add_row({"memory latency / gap", std::to_string(sys.mem_latency) +
                                           " / " +
                                           std::to_string(sys.mem_gap) +
                                           " cycles"});
  cmp.add_row({"memory controllers", "fabric corners"});
  emit(cmp, "rt1a_cmp_config");

  const enoc::EnocParams ep;
  Table en("R-T1b: electrical baseline NoC");
  en.set_header({"parameter", "value"});
  en.add_row({"topology / routing", "4x4 mesh, XY dimension-ordered"});
  en.add_row({"router", "3-stage VC wormhole (RC/VA/SA+ST), credit flow"});
  en.add_row({"vnets x VCs x depth",
              std::to_string(ep.vnets) + " x " + std::to_string(ep.vcs_per_vnet) +
                  " x " + std::to_string(ep.buffer_depth) + " flits"});
  en.add_row({"flit width", std::to_string(ep.flit_bytes) + " B"});
  en.add_row({"link / credit latency", std::to_string(ep.link_latency) + " / " +
                                           std::to_string(ep.credit_latency) +
                                           " cycles"});
  emit(en, "rt1b_enoc_config");

  const onoc::OnocParams op;
  Table on("R-T1c: optical NoC");
  on.set_header({"parameter", "value"});
  on.add_row({"data plane", "WDM MWSR crossbar, 1 rx channel/node"});
  on.add_row({"wavelengths x rate",
              std::to_string(op.wavelengths) + " x " +
                  Table::fmt(op.gbps_per_wavelength, 0) + " Gb/s = " +
                  Table::fmt(op.bytes_per_cycle(), 1) + " B/cycle/channel"});
  on.add_row({"E/O + O/E + guard",
              std::to_string(op.eo_latency) + " + " +
                  std::to_string(op.oe_latency) + " + " +
                  std::to_string(op.guard_cycles) + " cycles"});
  on.add_row({"channel schemes",
              "MWSR token ring (1 hop/cycle) | MWSR electrical path setup "
              "(8 B ctrl) | SWMR per-source | shared pool"});
  on.add_row({"die edge", Table::fmt(op.die_edge_cm, 1) + " cm"});
  emit(on, "rt1c_onoc_config");

  Table apps("R-T1d: workloads (16 cores, standard size)");
  apps.set_header({"app", "pattern", "mem accesses", "messages", "runtime "
                                                                 "(enoc cyc)"});
  const char* patterns[] = {
      "nearest-neighbor stencil", "butterfly all-to-all",
      "panel broadcast (hotspot)", "all-to-all exchange",
      "irregular shared-tree reads", "private streaming (memory-bound)",
      "tree reduction + broadcast", "ring producer-consumer stages",
      "GUPS-like random scatter"};
  int i = 0;
  bool ok = true;
  for (const auto& app : standard_apps()) {
    const auto streams = fullsys::build_app(app);
    const auto exec = core::run_execution(app, enoc_spec(), {});
    ok = ok && !exec.trace.records.empty();
    apps.add_row({app.name, patterns[i++],
                  Table::fmt(fullsys::count_accesses(streams)),
                  Table::fmt(static_cast<std::uint64_t>(
                      exec.trace.records.size())),
                  Table::fmt(static_cast<std::uint64_t>(exec.runtime))});
  }
  emit(apps, "rt1d_workloads");
  return verdict(ok, "R-T1 configuration tables");
}
