#include "analytic/trace_profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace sctm::analytic {

double ClassStats::cv_sq() const {
  if (messages == 0) return 0.0;
  const double m = mean_bytes();
  if (m <= 0.0) return 0.0;
  const double ex2 = sum_bytes_sq / static_cast<double>(messages);
  const double var = ex2 - m * m;
  return var <= 0.0 ? 0.0 : var / (m * m);
}

double TraceProfile::hull_eval(double mean_latency) const {
  if (hull.empty()) return 0.0;
  const auto it =
      std::upper_bound(hull_breaks.begin(), hull_breaks.end(), mean_latency);
  const auto idx = static_cast<std::size_t>(it - hull_breaks.begin());
  return hull[idx].base + hull[idx].depth * mean_latency;
}

namespace {

/// x past which line `b` beats line `a` (requires b.depth > a.depth).
double overtake_x(const TraceProfile::ChainLine& a,
                  const TraceProfile::ChainLine& b) {
  return (a.base - b.base) / (b.depth - a.depth);
}

/// Builds the upper envelope of `lines` (ascending slope, one entry per
/// distinct depth, each already the max base at that depth).
void build_hull(const std::vector<TraceProfile::ChainLine>& lines,
                TraceProfile& out) {
  out.hull.clear();
  for (const auto& l : lines) {
    // Pop the middle line while it is nowhere maximal: the new line
    // overtakes the second-to-last before the last one ever got on top.
    while (out.hull.size() >= 2) {
      const auto& l1 = out.hull[out.hull.size() - 2];
      const auto& l2 = out.hull.back();
      if (overtake_x(l1, l) <= overtake_x(l1, l2)) {
        out.hull.pop_back();
      } else {
        break;
      }
    }
    out.hull.push_back(l);
  }
  out.hull_breaks.clear();
  for (std::size_t i = 0; i + 1 < out.hull.size(); ++i) {
    out.hull_breaks.push_back(overtake_x(out.hull[i], out.hull[i + 1]));
  }
}

}  // namespace

TraceProfile profile_trace(const core::ReplayTrace& rt) {
  if (!rt.finalized()) {
    throw std::logic_error("profile_trace: ReplayTrace not finalized");
  }
  TraceProfile p;
  const std::uint32_t n = rt.size();
  p.records = n;
  p.capture_runtime = rt.capture_runtime();

  // Meta node count, hardened against records addressing beyond it (the
  // load matrices index by node id).
  std::int32_t nodes = rt.nodes();
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes = std::max({nodes, rt.src(i) + 1, rt.dst(i) + 1});
  }
  p.nodes = std::max(nodes, 1);
  const auto nn = static_cast<std::size_t>(p.nodes) *
                  static_cast<std::size_t>(p.nodes);
  p.pair_msgs.assign(nn, 0);
  p.pair_bytes.assign(nn, 0.0);
  p.pair_cls_msgs.assign(nn * noc::kMsgClassCount, 0);
  p.pair_cls_bytes.assign(nn * noc::kMsgClassCount, 0.0);

  if (n == 0) return p;

  p.first_inject = kNoCycle;
  p.last_inject = 0;

  // Dominant-chain DP. Two summaries per record — the chain maximizing the
  // accumulated base and the chain maximizing the depth — both feed the
  // envelope; tracking only one would let the other extreme's chain (which
  // dominates at the opposite end of the latency axis) escape the hull.
  std::vector<double> base_b(n), base_d(n);
  std::vector<std::uint32_t> depth_b(n), depth_d(n);
  // depth -> max base at that depth (dense; depth <= n).
  std::vector<double> best_at_depth;
  double slack_sum = 0;

  for (std::uint32_t i = 0; i < n; ++i) {
    const auto bytes = static_cast<double>(rt.size_bytes(i));
    const auto c = static_cast<std::size_t>(rt.cls(i));
    const Cycle inj = rt.inject_time(i);
    p.first_inject = std::min(p.first_inject, inj);
    p.last_inject = std::max(p.last_inject, inj);

    const std::size_t pi = p.pair_index(rt.src(i), rt.dst(i));
    p.pair_msgs[pi] += 1;
    p.pair_bytes[pi] += bytes;
    p.pair_cls_msgs[pi * noc::kMsgClassCount + c] += 1;
    p.pair_cls_bytes[pi * noc::kMsgClassCount + c] += bytes;
    p.cls[c].messages += 1;
    p.cls[c].sum_bytes += bytes;
    p.cls[c].sum_bytes_sq += bytes * bytes;
    p.size_hist.add(rt.size_bytes(i));

    const std::uint32_t fanin = rt.dep_count(i);
    if (fanin == 0) {
      // Anchored record: replay injects it at its captured time.
      ++p.roots;
      base_b[i] = base_d[i] = static_cast<double>(inj);
      depth_b[i] = depth_d[i] = 1;
    } else {
      double bb = 0, bd = 0;
      std::uint32_t db = 0, dd = 0;
      bool first = true;
      const trace::TraceDep* dep = rt.deps_begin(i);
      for (std::uint32_t k = 0; k < fanin; ++k, ++dep) {
        const std::uint32_t parent = rt.dep_parent_index(i, k);
        const auto slack = static_cast<double>(dep->slack);
        slack_sum += slack;
        // Both parent summaries are candidate chains through this edge.
        const double cand_base[2] = {base_b[parent] + slack,
                                     base_d[parent] + slack};
        const std::uint32_t cand_depth[2] = {depth_b[parent] + 1,
                                             depth_d[parent] + 1};
        for (int v = 0; v < 2; ++v) {
          if (first || cand_base[v] > bb ||
              (cand_base[v] == bb && cand_depth[v] > db)) {
            bb = cand_base[v];
            db = cand_depth[v];
          }
          if (first || cand_depth[v] > dd ||
              (cand_depth[v] == dd && cand_base[v] > bd)) {
            dd = cand_depth[v];
            bd = cand_base[v];
          }
          first = false;
        }
      }
      base_b[i] = bb;
      depth_b[i] = db;
      base_d[i] = bd;
      depth_d[i] = dd;
    }
    p.dep_edges += fanin;
    p.critical_depth = std::max(p.critical_depth, depth_d[i]);

    for (const std::uint32_t d : {depth_b[i], depth_d[i]}) {
      if (best_at_depth.size() < d) best_at_depth.resize(d, -1.0);
      const double b = d == depth_b[i] ? base_b[i] : base_d[i];
      best_at_depth[d - 1] = std::max(best_at_depth[d - 1], b);
    }
  }

  // Compact pair-major flow list (the estimators' iteration surface).
  for (std::size_t pi = 0; pi < nn; ++pi) {
    if (p.pair_msgs[pi] == 0) continue;
    const auto s = static_cast<NodeId>(pi / static_cast<std::size_t>(p.nodes));
    const auto d = static_cast<NodeId>(pi % static_cast<std::size_t>(p.nodes));
    for (int c = 0; c < static_cast<int>(noc::kMsgClassCount); ++c) {
      const std::size_t ci = pi * noc::kMsgClassCount +
                             static_cast<std::size_t>(c);
      const std::uint64_t msgs = p.pair_cls_msgs[ci];
      if (msgs == 0) continue;
      p.flows.push_back({s, d, c, static_cast<double>(msgs),
                         p.pair_cls_bytes[ci] / static_cast<double>(msgs)});
    }
  }

  p.mean_fanin = static_cast<double>(p.dep_edges) / static_cast<double>(n);
  p.mean_slack =
      p.dep_edges == 0 ? 0.0 : slack_sum / static_cast<double>(p.dep_edges);

  std::vector<TraceProfile::ChainLine> lines;
  lines.reserve(best_at_depth.size());
  for (std::size_t d = 0; d < best_at_depth.size(); ++d) {
    if (best_at_depth[d] >= 0.0) {
      lines.push_back({best_at_depth[d], static_cast<double>(d + 1)});
    }
  }
  build_hull(lines, p);
  return p;
}

}  // namespace sctm::analytic
