// Two-tier exploration: analytic screen + replay confirmation.
//
// explore_screened() is the screening-aware front door of the exploration
// pipeline. With ExploreConfig::screen_top_k == 0 it is exactly
// core::explore() (every candidate replayed). With K >= 1 it profiles the
// trace once (O(records)), scores every candidate analytically
// (O(nodes^2) each — microseconds), ranks by estimated runtime, and spends
// full self-correcting replay only on the top K. Every result carries its
// analytic rank and estimates; the K confirmed ones carry replay numbers
// too, and sort ahead of the analytic-only tail.
#pragma once

#include <vector>

#include "analytic/model.hpp"
#include "core/explore.hpp"

namespace sctm::analytic {

/// Screened exploration (see file comment). Deterministic at any thread
/// count: scoring is a pure function per candidate, replay is
/// core::explore(). Throws std::invalid_argument on an empty candidate
/// list, like core::explore().
std::vector<core::ExploreResult> explore_screened(
    const core::ReplayTrace& rt,
    const std::vector<core::Candidate>& candidates,
    const core::ExploreConfig& cfg = {});

}  // namespace sctm::analytic
