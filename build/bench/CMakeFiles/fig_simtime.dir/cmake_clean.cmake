file(REMOVE_RECURSE
  "CMakeFiles/fig_simtime.dir/fig_simtime.cpp.o"
  "CMakeFiles/fig_simtime.dir/fig_simtime.cpp.o.d"
  "fig_simtime"
  "fig_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
