// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (traffic generators, arbitration
// tie-breaks, workload phase jitter) draws from an explicitly seeded Rng so
// that runs are bit-reproducible. The engine is xoshiro256**, which is fast,
// has a 256-bit state and passes BigCrush; we implement it locally to avoid
// depending on unspecified std::mt19937 streaming behaviour across platforms.
#pragma once

#include <cstdint>

namespace sctm {

class Rng {
 public:
  /// Seeds the generator via splitmix64 expansion of `seed` so that nearby
  /// seeds yield uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform draw in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability `p`. Exact at the boundaries: p <= 0
  /// never fires and p >= 1 always fires, neither consuming generator state
  /// (so a zero-rate draw site leaves the stream untouched).
  bool next_bool(double p);

  /// Uniform integer in the inclusive range [lo, hi] (requires lo <= hi).
  /// Well-defined for any such pair, including the full int64 range.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed draw with the given mean (for inter-arrival
  /// gaps in Poisson-like traffic). A mean <= 0 returns exactly 0 without
  /// consuming generator state.
  double next_exponential(double mean);

  /// Creates an independent child stream; used to give each component its own
  /// generator while deriving everything from one root seed.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace sctm
