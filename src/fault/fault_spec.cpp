#include "fault/fault_spec.hpp"

#include <sstream>
#include <stdexcept>

namespace sctm::fault {
namespace {

void check_rate(const char* what, double r) {
  if (!(r >= 0.0 && r <= 1.0)) {
    throw std::invalid_argument(std::string("FaultSpec: ") + what +
                                " must be in [0, 1]");
  }
}

std::string fmt_double(double v) {
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  return ss.str();
}

}  // namespace

bool FaultSpec::enabled() const {
  return enoc_flit_corrupt_rate > 0 || enoc_flit_drop_rate > 0 ||
         enoc_link_stuck_rate > 0 || onoc_token_loss_rate > 0 ||
         onoc_reservation_loss_rate > 0 || onoc_ring_drift_sigma_c > 0 ||
         onoc_laser_degradation_db > 0;
}

void FaultSpec::validate() const {
  check_rate("enoc_flit_corrupt_rate", enoc_flit_corrupt_rate);
  check_rate("enoc_flit_drop_rate", enoc_flit_drop_rate);
  check_rate("enoc_link_stuck_rate", enoc_link_stuck_rate);
  check_rate("onoc_token_loss_rate", onoc_token_loss_rate);
  check_rate("onoc_reservation_loss_rate", onoc_reservation_loss_rate);
  if (onoc_ring_drift_sigma_c < 0) {
    throw std::invalid_argument(
        "FaultSpec: onoc_ring_drift_sigma_c must be >= 0");
  }
  if (onoc_laser_degradation_db < 0) {
    throw std::invalid_argument(
        "FaultSpec: onoc_laser_degradation_db must be >= 0");
  }
  if (enoc_link_stuck_cycles < 1 || onoc_token_regen_cycles < 1 ||
      onoc_reservation_timeout < 1 || nack_cycles < 1) {
    throw std::invalid_argument(
        "FaultSpec: timeouts/durations must be >= 1 cycle");
  }
  if (max_retries < 0) {
    throw std::invalid_argument("FaultSpec: max_retries must be >= 0");
  }
}

FaultSpec FaultSpec::with_seed(std::uint64_t s) const {
  FaultSpec out = *this;
  out.seed = s;
  return out;
}

FaultSpec FaultSpec::from_config(const Config& cfg) {
  cfg.require_keys_in(
      "fault.",
      {"seed", "enoc_flit_corrupt_rate", "enoc_flit_drop_rate",
       "enoc_link_stuck_rate", "enoc_link_stuck_cycles", "onoc_token_loss_rate",
       "onoc_token_regen_cycles", "onoc_reservation_loss_rate",
       "onoc_reservation_timeout", "onoc_ring_drift_sigma_c",
       "onoc_laser_degradation_db", "max_retries", "nack_cycles"});
  FaultSpec s;
  s.seed = static_cast<std::uint64_t>(
      cfg.get_int("fault.seed", static_cast<std::int64_t>(s.seed)));
  s.enoc_flit_corrupt_rate =
      cfg.get_double("fault.enoc_flit_corrupt_rate", s.enoc_flit_corrupt_rate);
  s.enoc_flit_drop_rate =
      cfg.get_double("fault.enoc_flit_drop_rate", s.enoc_flit_drop_rate);
  s.enoc_link_stuck_rate =
      cfg.get_double("fault.enoc_link_stuck_rate", s.enoc_link_stuck_rate);
  s.enoc_link_stuck_cycles = static_cast<Cycle>(cfg.get_int(
      "fault.enoc_link_stuck_cycles",
      static_cast<std::int64_t>(s.enoc_link_stuck_cycles)));
  s.onoc_token_loss_rate =
      cfg.get_double("fault.onoc_token_loss_rate", s.onoc_token_loss_rate);
  s.onoc_token_regen_cycles = static_cast<Cycle>(cfg.get_int(
      "fault.onoc_token_regen_cycles",
      static_cast<std::int64_t>(s.onoc_token_regen_cycles)));
  s.onoc_reservation_loss_rate = cfg.get_double(
      "fault.onoc_reservation_loss_rate", s.onoc_reservation_loss_rate);
  s.onoc_reservation_timeout = static_cast<Cycle>(cfg.get_int(
      "fault.onoc_reservation_timeout",
      static_cast<std::int64_t>(s.onoc_reservation_timeout)));
  s.onoc_ring_drift_sigma_c = cfg.get_double("fault.onoc_ring_drift_sigma_c",
                                             s.onoc_ring_drift_sigma_c);
  s.onoc_laser_degradation_db = cfg.get_double(
      "fault.onoc_laser_degradation_db", s.onoc_laser_degradation_db);
  s.max_retries =
      static_cast<int>(cfg.get_int("fault.max_retries", s.max_retries));
  s.nack_cycles = static_cast<Cycle>(
      cfg.get_int("fault.nack_cycles", static_cast<std::int64_t>(s.nack_cycles)));
  s.validate();
  return s;
}

std::vector<std::pair<std::string, std::string>> FaultSpec::manifest_entries()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  if (!enabled()) return out;
  const FaultSpec def;
  out.emplace_back("fault.seed", std::to_string(seed));
  auto rate = [&out](const char* key, double v, double dv) {
    if (v != dv) out.emplace_back(key, fmt_double(v));
  };
  auto cyc = [&out](const char* key, Cycle v, Cycle dv) {
    if (v != dv) out.emplace_back(key, std::to_string(v));
  };
  rate("fault.enoc_flit_corrupt_rate", enoc_flit_corrupt_rate,
       def.enoc_flit_corrupt_rate);
  rate("fault.enoc_flit_drop_rate", enoc_flit_drop_rate,
       def.enoc_flit_drop_rate);
  rate("fault.enoc_link_stuck_rate", enoc_link_stuck_rate,
       def.enoc_link_stuck_rate);
  cyc("fault.enoc_link_stuck_cycles", enoc_link_stuck_cycles,
      def.enoc_link_stuck_cycles);
  rate("fault.onoc_token_loss_rate", onoc_token_loss_rate,
       def.onoc_token_loss_rate);
  cyc("fault.onoc_token_regen_cycles", onoc_token_regen_cycles,
      def.onoc_token_regen_cycles);
  rate("fault.onoc_reservation_loss_rate", onoc_reservation_loss_rate,
       def.onoc_reservation_loss_rate);
  cyc("fault.onoc_reservation_timeout", onoc_reservation_timeout,
      def.onoc_reservation_timeout);
  rate("fault.onoc_ring_drift_sigma_c", onoc_ring_drift_sigma_c,
       def.onoc_ring_drift_sigma_c);
  rate("fault.onoc_laser_degradation_db", onoc_laser_degradation_db,
       def.onoc_laser_degradation_db);
  if (max_retries != def.max_retries) {
    out.emplace_back("fault.max_retries", std::to_string(max_retries));
  }
  cyc("fault.nack_cycles", nack_cycles, def.nack_cycles);
  return out;
}

}  // namespace sctm::fault
