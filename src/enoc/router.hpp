// Input-queued virtual-channel wormhole router.
//
// Three-stage pipeline, enforced by intra-tick phase ordering (SA/ST first,
// then VA, then RC): a head flit that arrives in cycle t computes its route
// in t, wins an output VC no earlier than t+1 and traverses the switch no
// earlier than t+2 — a 3-cycle router, plus link latency per hop. Body flits
// stream at one per cycle per port through switch allocation only.
//
// Flow control is credit-based: one credit == one flit slot in the
// downstream input VC. Separable switch allocation (input-first then
// output arbitration) with per-port round-robin or matrix arbiters.
//
// The datapath is allocation-free in steady state: input VCs are
// fixed-capacity rings sized to buffer_depth, injection staging is a
// capacity-retaining ring, allocator request/grant scratch lives in member
// vectors sized at construction, and route computation uses the fixed
// RoutePorts set. Ticking an idle router (has_work() == false) is a no-op —
// the owning network exploits this with an activity scoreboard and only
// ticks routers that hold flits.
//
// Deadlock discipline:
//  * protocol: message classes are split across virtual networks,
//  * routing: XY/YX/odd-even are turn-restricted on meshes; torus DOR and
//    ring shortest use dateline VC subclasses — a packet moves to subclass 1
//    when it traverses a wrap link and resets on a dimension change.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "enoc/arbiter.hpp"
#include "enoc/flit.hpp"
#include "enoc/params.hpp"
#include "noc/message.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "sim/component.hpp"

namespace sctm::enoc {

/// Callbacks into the owning network (link traversal, credits, ejection).
class RouterCallbacks {
 public:
  virtual ~RouterCallbacks() = default;
  /// Flit leaves `node` through directional port `out_dir`; the network
  /// schedules its arrival at the neighbor after link latency.
  virtual void forward_flit(NodeId node, int out_dir, const Flit& flit) = 0;
  /// Flit ejected at `node` (out port == local).
  virtual void eject_flit(NodeId node, const Flit& flit) = 0;
  /// Credit for (node's input port `in_dir`, vc) must return to the upstream
  /// router after credit latency.
  virtual void return_credit(NodeId node, int in_dir, int vc) = 0;
};

/// Growable FIFO ring of flits. Capacity is retained across drain/fill
/// cycles, so a warmed-up queue never touches the heap again — unlike
/// std::deque, which releases its blocks whenever it empties.
class FlitRing {
 public:
  void reserve(std::size_t cap) {
    if (cap > buf_.size()) regrow(cap);
  }
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  Flit& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  const Flit& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }
  void push_back(const Flit& f) {
    if (count_ == buf_.size()) regrow(buf_.empty() ? 8 : buf_.size() * 2);
    buf_[(head_ + count_) % buf_.size()] = f;
    ++count_;
  }
  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) % buf_.size();
    --count_;
  }
  /// Empties the ring, retaining its buffer (session reset path).
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void regrow(std::size_t cap) {
    std::vector<Flit> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = buf_[(head_ + i) % buf_.size()];
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<Flit> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

class Router : public Component {
 public:
  Router(Simulator& sim, std::string name, NodeId id,
         const noc::Topology& topo, const EnocParams& params,
         RouterCallbacks& callbacks);

  /// One clock cycle of the pipeline. Returns true when the router still
  /// holds any flit afterwards (activity hint; false means every further
  /// tick is a no-op until new work arrives).
  bool tick();

  /// Flit arrives on input port `in_port` in VC flit.vc (link delivery or,
  /// for the local port, injection placement by inject_*).
  void receive_flit(int in_port, Flit flit);

  /// Credit arrives for output (out_port, vc).
  void receive_credit(int out_port, int vc);

  /// Stages a packet's flits for injection (unbounded source queue; the
  /// router moves them into local-port VCs as space frees). Flits are
  /// synthesized straight into the staging ring — no intermediate container.
  void inject(const noc::Message& msg, std::uint32_t nflits);

  /// Session reset: restores freshly-constructed datapath state (VC fifos,
  /// RC/VA results, credits, arbiter pointers, injection staging) without
  /// releasing any buffer capacity. Cached stat references stay valid — the
  /// owning simulator zeroes values via StatRegistry::zero().
  void reset();

  NodeId id() const { return id_; }
  bool has_work() const;
  std::size_t injection_backlog() const { return inj_queue_.size(); }

  /// Free credits on output port `port` across all VCs (adaptive metric).
  int free_credits(int port) const;

 private:
  struct InputVc {
    FlitRing fifo;           // fixed capacity == params.buffer_depth
    int out_port = -1;       // RC result; -1 = unrouted
    int out_vc = -1;         // VA result; -1 = unallocated
    std::uint8_t next_dateline = 0;  // subclass the packet occupies downstream
  };
  struct OutputVc {
    int credits = 0;
    bool busy = false;       // held by a packet until its tail is sent
  };

  int vc_index(int port, int vc) const { return port * vcount_ + vc; }
  InputVc& in_vc(int port, int vc) { return inputs_[vc_index(port, vc)]; }
  const InputVc& in_vc(int port, int vc) const {
    return inputs_[vc_index(port, vc)];
  }
  OutputVc& out_vc(int port, int vc) { return outputs_[vc_index(port, vc)]; }

  /// Allowed VC range [first, last) for a packet of class `cls` whose
  /// dateline subclass will be `dateline` at the downstream buffer.
  std::pair<int, int> allowed_vcs(noc::MsgClass cls, std::uint8_t dateline) const;

  int vnet_of(noc::MsgClass cls) const;
  bool is_wrap_link(int out_dir) const;
  static int axis_of(int dir);

  void phase_switch_allocation();
  void phase_vc_allocation();
  void phase_route_compute();
  void phase_injection();

  void send_flit(int in_port, int in_vc_idx);

  NodeId id_;
  noc::Topology topo_;
  EnocParams params_;
  RouterCallbacks& cb_;

  int ports_;    // radix + 1 (local last)
  int vcount_;   // VCs per port
  bool needs_dateline_;

  std::vector<InputVc> inputs_;    // [port][vc]
  std::vector<OutputVc> outputs_;  // [port][vc]

  // Switch-allocation arbiters: one per input port (VC selection) and one
  // per output port (input selection).
  std::vector<std::unique_ptr<Arbiter>> sa_input_arb_;
  std::vector<std::unique_ptr<Arbiter>> sa_output_arb_;
  // VC-allocation arbiters: one per output port.
  std::vector<std::unique_ptr<Arbiter>> va_arb_;

  // Allocator scratch, reused every tick (capacity fixed at construction).
  std::vector<bool> req_vc_;       // [vcount]
  std::vector<bool> req_port_;     // [ports]
  std::vector<bool> req_pv_;       // [ports * vcount]
  std::vector<int> sa_nominee_;    // per input port: nominated VC
  std::vector<int> sa_winner_;     // per output port: granted input port

  // Injection source queue + which local VC each in-progress packet streams
  // into (msg -> vc), to keep wormhole continuity at the local port.
  FlitRing inj_queue_;
  int inj_active_vc_ = -1;     // local VC of the packet currently streaming
  MsgId inj_active_msg_ = kInvalidMsg;

  // Hot-path stat counters, cached once (StatRegistry nodes are stable).
  std::uint64_t& stat_buffer_writes_;
  std::uint64_t& stat_buffer_reads_;
  std::uint64_t& stat_xbar_;
  std::uint64_t& stat_link_;
  std::uint64_t& stat_sa_grants_;
  std::uint64_t& stat_va_grants_;
  std::uint64_t& stat_rc_;
};

}  // namespace sctm::enoc
