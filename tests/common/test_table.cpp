#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace sctm {
namespace {

TEST(Table, AsciiContainsTitleHeaderAndCells) {
  Table t("demo");
  t.set_header({"app", "latency"});
  t.add_row({"fft", "12.5"});
  const auto s = t.to_ascii();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("app"), std::string::npos);
  EXPECT_NE(s.find("fft"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
}

TEST(Table, CsvRoundTripShape) {
  Table t("x");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::fmt(std::int64_t{-3}), "-3");
  EXPECT_EQ(Table::pct(0.256, 1), "25.6%");
}

TEST(Table, RowCount) {
  Table t("x");
  t.set_header({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, WriteCsvCreatesFile) {
  Table t("x");
  t.set_header({"a"});
  t.add_row({"1"});
  const std::string path = "/tmp/sctm_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::remove(path.c_str());
}

TEST(Table, AsciiAlignsColumns) {
  Table t("x");
  t.set_header({"long-header", "b"});
  t.add_row({"v", "w"});
  const auto s = t.to_ascii();
  // Every rendered row has equal width.
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  bool first_line = true;
  while (pos < s.size()) {
    const auto nl = s.find('\n', pos);
    const std::string line = s.substr(pos, nl - pos);
    pos = nl + 1;
    if (first_line) {  // title line differs
      first_line = false;
      continue;
    }
    if (first_len == std::string::npos) first_len = line.size();
    EXPECT_EQ(line.size(), first_len) << line;
  }
}

}  // namespace
}  // namespace sctm
