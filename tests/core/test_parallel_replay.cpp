// Determinism matrix for parallel replay: a ReplaySession with any worker
// thread count must produce bit-identical results — full schedules, derived
// runtime, kernel event counts AND the complete final stat registry — on
// every network kind. Every per-phase grain is forced to 0 so every
// shardable phase actually shards on this small trace: the ENoC router
// tick, the ONoC channel arbitration (token and SWMR; hybrid shards both
// planes), the session's seed scan, the per-cycle delivered-dependency
// scan, the eligibility-batch sort, and the iterative bound/residual
// recompute. The matrix also pins the in-place rebind fast path against
// fresh construction, and the ReplayConfig::threads convention (1 = serial
// default, 0 = hardware) against resolve_threads().
#include "core/replay_session.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/driver.hpp"
#include "enoc/enoc_network.hpp"
#include "noc/routing.hpp"

namespace sctm::core {
namespace {

fullsys::AppParams small_app(const char* name) {
  fullsys::AppParams app;
  app.name = name;
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  return app;
}

fullsys::FullSysParams small_sys() {
  fullsys::FullSysParams sys;
  sys.l1_sets = 8;
  sys.l1_ways = 2;
  sys.l2_sets = 32;
  sys.l2_ways = 4;
  return sys;
}

NetSpec spec_of(NetKind kind) {
  NetSpec s;
  s.kind = kind;
  return s;
}

constexpr NetKind kAllKinds[] = {NetKind::kIdeal,     NetKind::kEnoc,
                                 NetKind::kOnocToken, NetKind::kOnocSetup,
                                 NetKind::kOnocSwmr,  NetKind::kHybrid};

const ReplayTrace& shared_rt() {
  static const trace::Trace trace =
      run_execution(small_app("jacobi"), spec_of(NetKind::kEnoc), small_sys())
          .trace;
  static const ReplayTrace rt(trace);
  return rt;
}

/// Runs one full replay with `threads` tick workers and returns the result
/// plus the rendered final stat registry (every counter the components
/// registered — a divergence anywhere in the datapath shows up here even if
/// the schedule happens to match).
struct MatrixRun {
  ReplayResult result;
  std::string stats_report;
};

MatrixRun run_spec_with_threads(const ReplayTrace& rt, const NetSpec& spec,
                                unsigned threads) {
  ReplayConfig cfg;
  cfg.threads = threads;
  ReplaySession session(rt, spec, cfg);
  session.set_parallel_grains_for_test(0);  // shard every phase, every cycle
  session.run();
  MatrixRun out;
  out.stats_report = session.result().stats.report();
  out.result = session.take_result();
  return out;
}

MatrixRun run_with_threads(NetKind kind, unsigned threads) {
  return run_spec_with_threads(shared_rt(), spec_of(kind), threads);
}

class ParallelReplayMatrix : public ::testing::TestWithParam<NetKind> {};

TEST_P(ParallelReplayMatrix, AnyThreadCountIsBitIdenticalToSerial) {
  const NetKind kind = GetParam();
  const MatrixRun serial = run_with_threads(kind, /*threads=*/1);
  ASSERT_FALSE(serial.result.arrive_time.empty());
  for (const unsigned threads : {2u, 3u, 8u}) {
    const MatrixRun par = run_with_threads(kind, threads);
    const std::string what = "threads=" + std::to_string(threads);
    EXPECT_EQ(par.result.inject_time, serial.result.inject_time) << what;
    EXPECT_EQ(par.result.arrive_time, serial.result.arrive_time) << what;
    EXPECT_EQ(par.result.runtime, serial.result.runtime) << what;
    EXPECT_EQ(par.result.events, serial.result.events) << what;
    EXPECT_EQ(par.result.iterations, serial.result.iterations) << what;
    EXPECT_EQ(par.stats_report, serial.stats_report) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ParallelReplayMatrix,
                         ::testing::ValuesIn(kAllKinds), [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Topology determinism matrix ------------------------------------------

// The graph-backed fabrics go through the same guarantee: every network
// kind, on a 3D lattice and on a file-defined irregular fabric, replays
// bit-identically at any worker thread count. Traces are captured per
// topology (the replay engine requires the trace's core count to match the
// fabric), with the fabric's natural routing algorithm.
NetSpec spec_on(NetKind kind, const noc::Topology& topo) {
  NetSpec s;
  s.kind = kind;
  s.topo = topo;
  s.enoc.routing = noc::default_algo(topo);
  s.hybrid.electrical.routing = s.enoc.routing;
  return s;
}

const ReplayTrace& trace_on(const noc::Topology& topo) {
  static std::map<std::string, std::unique_ptr<ReplayTrace>> cache;
  auto& slot = cache[topo.describe()];
  if (!slot) {
    fullsys::AppParams app = small_app("jacobi");
    app.cores = topo.node_count();
    slot = std::make_unique<ReplayTrace>(
        run_execution(app, spec_on(NetKind::kEnoc, topo), small_sys()).trace);
  }
  return *slot;
}

/// The shipped 12-node dragonfly-style fabric, located from this source
/// file's absolute path (same idiom as ShippedConfigsParse).
const noc::Topology* shipped_file_topology() {
  static const std::unique_ptr<noc::Topology> topo = [] {
    std::string root = __FILE__;
    const auto cut = root.rfind("tests/");
    if (cut == std::string::npos) return std::unique_ptr<noc::Topology>();
    try {
      return std::make_unique<noc::Topology>(
          noc::Topology::from_file(root.substr(0, cut) +
                                   "configs/group12.topo"));
    } catch (const std::exception&) {
      return std::unique_ptr<noc::Topology>();
    }
  }();
  return topo.get();
}

class TopologyReplayMatrix : public ::testing::TestWithParam<NetKind> {};

TEST_P(TopologyReplayMatrix, Mesh3DIsBitIdenticalAtAnyThreadCount) {
  const NetSpec spec = spec_on(GetParam(), noc::Topology::mesh3d(4, 4, 2));
  const ReplayTrace& rt = trace_on(spec.topo);
  const MatrixRun serial = run_spec_with_threads(rt, spec, /*threads=*/1);
  ASSERT_FALSE(serial.result.arrive_time.empty());
  for (const unsigned threads : {2u, 8u}) {
    const MatrixRun par = run_spec_with_threads(rt, spec, threads);
    const std::string what = "threads=" + std::to_string(threads);
    EXPECT_EQ(par.result.inject_time, serial.result.inject_time) << what;
    EXPECT_EQ(par.result.arrive_time, serial.result.arrive_time) << what;
    EXPECT_EQ(par.result.runtime, serial.result.runtime) << what;
    EXPECT_EQ(par.result.events, serial.result.events) << what;
    EXPECT_EQ(par.result.iterations, serial.result.iterations) << what;
    EXPECT_EQ(par.stats_report, serial.stats_report) << what;
  }
}

TEST_P(TopologyReplayMatrix, FileFabricIsBitIdenticalAtAnyThreadCount) {
  const noc::Topology* topo = shipped_file_topology();
  if (topo == nullptr) GTEST_SKIP() << "configs/group12.topo not reachable";
  const NetSpec spec = spec_on(GetParam(), *topo);
  const ReplayTrace& rt = trace_on(spec.topo);
  const MatrixRun serial = run_spec_with_threads(rt, spec, /*threads=*/1);
  ASSERT_FALSE(serial.result.arrive_time.empty());
  for (const unsigned threads : {2u, 8u}) {
    const MatrixRun par = run_spec_with_threads(rt, spec, threads);
    const std::string what = "threads=" + std::to_string(threads);
    EXPECT_EQ(par.result.inject_time, serial.result.inject_time) << what;
    EXPECT_EQ(par.result.arrive_time, serial.result.arrive_time) << what;
    EXPECT_EQ(par.result.runtime, serial.result.runtime) << what;
    EXPECT_EQ(par.result.events, serial.result.events) << what;
    EXPECT_EQ(par.result.iterations, serial.result.iterations) << what;
    EXPECT_EQ(par.stats_report, serial.stats_report) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TopologyReplayMatrix,
                         ::testing::ValuesIn(kAllKinds), [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Sharded eligibility / dispatch phases --------------------------------

// The session's own sharded phases (seed scan, delivered-dependency scan,
// batch sort, bound/residual recompute) must be bit-identical to serial
// independent of the network's tick sharding: run the ENoC with its tick
// grain left at the default (so small cycles tick serially) while the
// session grains are forced to 0 — only the replay-engine phases shard.
TEST(ShardedEligibility, SessionPhasesAloneAreBitIdenticalToSerial) {
  const ReplayTrace& rt = shared_rt();
  ReplayConfig serial_cfg;
  ReplaySession serial(rt, spec_of(NetKind::kEnoc), serial_cfg);
  serial.run();
  const std::string serial_stats = serial.result().stats.report();

  for (const unsigned threads : {2u, 3u, 8u}) {
    ReplayConfig cfg;
    cfg.threads = threads;
    ReplaySession session(rt, spec_of(NetKind::kEnoc), cfg);
    session.set_parallel_grains_for_test(0);
    session.network().set_parallel_grain(2);  // network: default adaptive
    session.run();
    const std::string what = "threads=" + std::to_string(threads);
    EXPECT_EQ(session.result().inject_time, serial.result().inject_time)
        << what;
    EXPECT_EQ(session.result().arrive_time, serial.result().arrive_time)
        << what;
    EXPECT_EQ(session.result().events, serial.result().events) << what;
    EXPECT_EQ(session.result().stats.report(), serial_stats) << what;
  }
}

// Truncated-window iterative refinement exercises the sharded bound and
// residual recomputes between passes; the trajectory (iteration count and
// per-pass residuals) must match serial exactly.
TEST(ShardedEligibility, IterativeRefinementMatchesSerial) {
  const ReplayTrace& rt = shared_rt();
  ReplayConfig base;
  base.dependency_window = 1;  // truncate so run() actually iterates
  ReplaySession serial(rt, spec_of(NetKind::kEnoc), base);
  serial.run();

  ReplayConfig cfg = base;
  cfg.threads = 4;
  ReplaySession sharded(rt, spec_of(NetKind::kEnoc), cfg);
  sharded.set_parallel_grains_for_test(0);
  sharded.run();

  EXPECT_EQ(sharded.result().iterations, serial.result().iterations);
  EXPECT_EQ(sharded.result().residual, serial.result().residual);
  EXPECT_EQ(sharded.result().inject_time, serial.result().inject_time);
  ASSERT_EQ(sharded.result().iteration_log.size(),
            serial.result().iteration_log.size());
  for (std::size_t i = 0; i < serial.result().iteration_log.size(); ++i) {
    EXPECT_EQ(sharded.result().iteration_log[i].residual,
              serial.result().iteration_log[i].residual)
        << "pass " << i;
  }
}

// The ReplayConfig::threads convention (asserted per the doc in
// replay.hpp): default 1 = serial, 0 = one lane per hardware thread, and
// every `0 = hardware` knob resolves through the same resolve_threads().
TEST(ShardedEligibility, ThreadsConventionIsSerialDefaultZeroHardware) {
  EXPECT_EQ(ReplayConfig{}.threads, 1u);
  EXPECT_EQ(resolve_threads(0), default_parallelism());
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(5), 5u);
  EXPECT_EQ(WorkerPool(0).size(), default_parallelism());
  EXPECT_EQ(WorkerPool(3).size(), 3u);
}

// --- In-place rebind fast path -------------------------------------------

void expect_identical(const ReplayResult& a, const ReplayResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.inject_time, b.inject_time) << what;
  EXPECT_EQ(a.arrive_time, b.arrive_time) << what;
  EXPECT_EQ(a.runtime, b.runtime) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
}

// Parameter-only spec changes must patch the network in place and still be
// bit-identical to a freshly built session, including the walk back to the
// original parameters.
TEST(InPlaceRebind, EnocParameterChangesMatchFresh) {
  const ReplayTrace& rt = shared_rt();
  const ReplayConfig cfg;

  NetSpec base = spec_of(NetKind::kEnoc);
  NetSpec wide = base;
  wide.enoc.vcs_per_vnet = 4;  // resizes every per-VC structure
  wide.enoc.buffer_depth = 2;
  NetSpec matrix = base;
  matrix.enoc.arbiter = enoc::ArbiterKind::kMatrix;

  ReplaySession session(rt, base, cfg);
  for (const NetSpec* spec : {&wide, &matrix, &base}) {
    session.rebind(*spec);
    EXPECT_TRUE(session.last_rebind_in_place());
    const ReplayResult fresh = replay(rt, make_factory(*spec), cfg);
    expect_identical(session.run(), fresh, spec->describe());
  }
}

TEST(InPlaceRebind, IdealParameterChangesMatchFresh) {
  const ReplayTrace& rt = shared_rt();
  const ReplayConfig cfg;

  NetSpec base = spec_of(NetKind::kIdeal);
  NetSpec slow = base;
  slow.ideal.per_hop_latency = 7;
  slow.ideal.bytes_per_cycle = 4;

  ReplaySession session(rt, base, cfg);
  session.rebind(slow);
  EXPECT_TRUE(session.last_rebind_in_place());
  expect_identical(session.run(), replay(rt, make_factory(slow), cfg),
                   "ideal reparam");
  session.rebind(base);
  EXPECT_TRUE(session.last_rebind_in_place());
  expect_identical(session.run(), replay(rt, make_factory(base), cfg),
                   "ideal back to base");
}

// Kind or topology changes — and the parameter-baked ONoC backends — must
// fall back to the full rebuild, transparently.
TEST(InPlaceRebind, StructuralChangesFallBackToRebuild) {
  const ReplayTrace& rt = shared_rt();
  const ReplayConfig cfg;

  ReplaySession session(rt, spec_of(NetKind::kEnoc), cfg);
  session.rebind(spec_of(NetKind::kIdeal));  // kind change
  EXPECT_FALSE(session.last_rebind_in_place());
  expect_identical(session.run(),
                   replay(rt, make_factory(spec_of(NetKind::kIdeal)), cfg),
                   "kind change");

  NetSpec onoc_a = spec_of(NetKind::kOnocToken);
  session.rebind(onoc_a);
  EXPECT_FALSE(session.last_rebind_in_place());
  NetSpec onoc_b = onoc_a;
  onoc_b.onoc.wavelengths += 4;  // ONoC params are construction-baked
  session.rebind(onoc_b);
  EXPECT_FALSE(session.last_rebind_in_place());
  expect_identical(session.run(), replay(rt, make_factory(onoc_b), cfg),
                   "onoc param change rebuilds");

  NetSpec torus = spec_of(NetKind::kEnoc);
  torus.topo = noc::Topology::torus(4, 4);
  torus.enoc.routing = noc::RoutingAlgo::kTorusDor;
  session.rebind(torus);
  EXPECT_FALSE(session.last_rebind_in_place());  // topology change
  expect_identical(session.run(), replay(rt, make_factory(torus), cfg),
                   "topology change rebuilds");
}

// An equal spec is a no-op rebind (the pure reset-reuse path).
TEST(InPlaceRebind, EqualSpecIsNoop) {
  const ReplayTrace& rt = shared_rt();
  const ReplayConfig cfg;
  const NetSpec spec = spec_of(NetKind::kEnoc);

  ReplaySession session(rt, spec, cfg);
  const ReplayResult fresh = replay(rt, make_factory(spec), cfg);
  expect_identical(session.run(), fresh, "before");
  const noc::Network* before = &session.network();
  session.rebind(spec);
  EXPECT_TRUE(session.last_rebind_in_place());
  EXPECT_EQ(&session.network(), before);  // same object, not rebuilt
  expect_identical(session.run(), fresh, "after noop rebind");
}

}  // namespace
}  // namespace sctm::core
