#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "core/driver.hpp"
#include "trace/trace_io.hpp"
#include "tracestore/trace_store.hpp"

namespace sctm::tracestore {
namespace {

// ---------------------------------------------------------------------------
// Primitives

TEST(Format, ZigzagKnownValuesAndRoundTrip) {
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
  EXPECT_EQ(zigzag(-2), 3u);
  const std::int64_t cases[] = {0,  1,  -1, 63, -64, 1 << 20, -(1 << 20),
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const auto v : cases) {
    EXPECT_EQ(unzigzag(zigzag(v)), v) << v;
  }
}

TEST(Format, WrapDeltaRoundTripsAnyU64Pair) {
  const std::uint64_t cases[] = {0, 1, 42, kNoCycle, kNoCycle - 1,
                                 0x8000000000000000ull};
  for (const auto a : cases) {
    for (const auto b : cases) {
      // decode side: prev + delta (wrapping) must reconstruct `a` exactly.
      const std::uint64_t back =
          b + static_cast<std::uint64_t>(unzigzag(zigzag(wrap_delta(a, b))));
      EXPECT_EQ(back, a) << a << " vs " << b;
    }
  }
}

TEST(Format, VarintEncodesMinimally) {
  std::vector<char> buf;
  put_varint(buf, 0);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(Format, Crc32MatchesKnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  Crc32 inc;
  inc.update("12345", 5);
  inc.update("6789", 4);
  EXPECT_EQ(inc.value(), 0xCBF43926u);
}

TEST(Format, Fnv1a64MatchesKnownVectors) {
  EXPECT_EQ(Fnv1a64{}.value(), 0xcbf29ce484222325ull);
  Fnv1a64 h;
  h.update("a", 1);
  EXPECT_EQ(h.value(), 0xaf63dc4c8601ec8cull);
}

TEST(Format, HashHexRoundTrip) {
  EXPECT_EQ(hash_hex(0xaf63dc4c8601ec8cull), "af63dc4c8601ec8c");
  EXPECT_EQ(hash_hex(0x1ull), "0000000000000001");
  std::uint64_t v = 0;
  ASSERT_TRUE(parse_hash_hex("af63dc4c8601ec8c", &v));
  EXPECT_EQ(v, 0xaf63dc4c8601ec8cull);
  EXPECT_FALSE(parse_hash_hex("", &v));
  EXPECT_FALSE(parse_hash_hex("xyz", &v));
  EXPECT_FALSE(parse_hash_hex("0123456789abcdef0", &v));  // 17 digits
}

// ---------------------------------------------------------------------------
// Golden layout

trace::Trace tiny_trace() {
  trace::Trace t;
  t.app = "ab";
  t.capture_network = "m";
  t.nodes = 2;
  t.capture_runtime = 100;
  t.seed = 7;
  trace::TraceRecord r;
  r.id = 7;
  r.src = 0;
  r.dst = 1;
  r.size_bytes = 64;
  r.cls = noc::MsgClass::kData;  // = 2
  r.proto = 9;
  r.inject_time = 10;
  r.arrive_time = 20;
  r.deps.push_back({3, 5});
  t.records.push_back(r);
  return t;
}

TEST(TraceStoreV2, GoldenByteLayoutIsStable) {
  // The exact container bytes for the same tiny trace the v1 golden test
  // pins, hand-checked against the layout comment in format.hpp. Guards the
  // writer (and any rewrite) against silent format drift: v2 files written
  // by old builds must stay readable bit-for-bit.
  static const unsigned char kExpected[] = {
      // magic, u32 flags, u32 chunk_target (4096)
      0x53, 0x43, 0x54, 0x4d, 0x54, 0x52, 0x43, 0x32, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x10, 0x00, 0x00,
      // app "ab", net "m", i32 nodes, u64 runtime, u64 seed
      0x02, 0x00, 0x00, 0x00, 0x61, 0x62, 0x01, 0x00, 0x00, 0x00, 0x6d, 0x02,
      0x00, 0x00, 0x00, 0x64, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // u32 header_crc
      0x2a, 0xb6, 0xe1, 0xc7,
      // chunk 0 header: payload crc, payload_len=11, record_count=1,
      // first_record=0, min_cycle=10, max_cycle=20
      0x5a, 0xd5, 0x60, 0x7d, 0x0b, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // payload: vz(7-0)=14, vz(src 0), vz(dst 1)=2, v(64), cls 2, proto 9,
      // vz(inject 10)=20, vz(arrive-inject 10)=20, v(deps 1),
      // vz(id-parent 4)=8, v(slack 5)
      0x0e, 0x00, 0x02, 0x40, 0x02, 0x09, 0x14, 0x14, 0x01, 0x08, 0x05,
      // index: u32 index_crc, u32 index_len=40, then one 40-byte entry
      // (file_offset=0x33, payload_len, record_count, first, min, max)
      0x71, 0xcb, 0xf4, 0x22, 0x28, 0x00, 0x00, 0x00, 0x33, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x0b, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // footer: index_offset=0x62, chunk_count=1, record_count=1,
      // content_hash, footer_crc, trailer "SCTMEND2"
      0x62, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x67, 0xd8, 0xe8, 0x93, 0xc1, 0x37, 0xee, 0x91, 0x11, 0xed, 0xc6, 0xc7,
      0x53, 0x43, 0x54, 0x4d, 0x45, 0x4e, 0x44, 0x32,
  };

  std::ostringstream ss;
  write_v2(tiny_trace(), ss);
  const std::string bytes = ss.str();
  ASSERT_EQ(bytes.size(), sizeof kExpected);
  for (std::size_t i = 0; i < sizeof kExpected; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(bytes[i]), kExpected[i])
        << "byte " << i << " diverged from the golden layout";
  }

  // And the pinned bytes parse back to the identical trace.
  TraceReader reader(memory_source(
      reinterpret_cast<const char*>(kExpected), sizeof kExpected));
  EXPECT_EQ(reader.read_all(), tiny_trace());
}

// ---------------------------------------------------------------------------
// Round trips

trace::Trace random_trace(std::mt19937_64& rng, std::size_t n) {
  trace::Trace t;
  t.app = "rnd";
  t.capture_network = "synthetic";
  t.nodes = 64;
  t.capture_runtime = rng();
  t.seed = rng();
  MsgId id = rng() % 1000;
  Cycle inject = rng() % 1000;
  t.records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace::TraceRecord r;
    id += 1 + rng() % 50;
    r.id = id;
    r.src = static_cast<NodeId>(rng() % 64);
    r.dst = static_cast<NodeId>(rng() % 64);
    r.size_bytes = static_cast<std::uint32_t>(rng() % 100000);
    r.cls = static_cast<noc::MsgClass>(rng() % noc::kMsgClassCount);
    r.proto = static_cast<std::uint8_t>(rng() % 256);
    // Mostly monotone timestamps (the case the delta coder targets), with
    // occasional arbitrary u64s to stress the wrapping-delta path.
    inject += rng() % 2000;
    r.inject_time = (rng() % 16 == 0) ? rng() : inject;
    r.arrive_time =
        (rng() % 10 == 0) ? kNoCycle : r.inject_time + rng() % 500;
    // The codec does not interpret dependencies; any parent/slack must
    // survive the trip.
    const std::size_t deps = rng() % 4;
    for (std::size_t d = 0; d < deps && !t.records.empty(); ++d) {
      r.deps.push_back({t.records[rng() % t.records.size()].id, rng()});
    }
    t.records.push_back(std::move(r));
  }
  return t;
}

TEST(TraceStoreV2, RandomizedRoundTripsAcrossChunkSizes) {
  std::mt19937_64 rng(12345);
  for (const std::uint32_t chunk : {1u, 7u, 64u, kDefaultChunkRecords}) {
    const trace::Trace t = random_trace(rng, 200);
    std::ostringstream ss;
    write_v2(t, ss, chunk);
    const std::string bytes = ss.str();
    TraceReader reader(memory_source(bytes.data(), bytes.size()));
    EXPECT_EQ(reader.record_count(), t.records.size());
    if (chunk == 7) EXPECT_EQ(reader.chunk_count(), (200 + 6) / 7);
    EXPECT_EQ(reader.read_all(/*parallel=*/false), t) << "chunk=" << chunk;
    EXPECT_EQ(reader.read_all(/*parallel=*/true), t) << "chunk=" << chunk;
  }
}

TEST(TraceStoreV2, EmptyTraceRoundTrips) {
  trace::Trace t;
  t.app = "empty";
  t.capture_network = "none";
  t.nodes = 4;
  std::ostringstream ss;
  write_v2(t, ss);
  const std::string bytes = ss.str();
  TraceReader reader(memory_source(bytes.data(), bytes.size()));
  EXPECT_EQ(reader.chunk_count(), 0u);
  EXPECT_EQ(reader.read_all(), t);
}

TEST(TraceStoreV2, ChunkCursorMatchesReadAllWithAndWithoutPrefetch) {
  std::mt19937_64 rng(99);
  const trace::Trace t = random_trace(rng, 150);
  std::ostringstream ss;
  write_v2(t, ss, 16);
  const std::string bytes = ss.str();
  const TraceReader reader(memory_source(bytes.data(), bytes.size()));
  for (const bool prefetch : {false, true}) {
    ChunkCursor cursor(reader, prefetch);
    std::vector<trace::TraceRecord> chunk;
    std::vector<trace::TraceRecord> all;
    while (cursor.next(chunk)) {
      all.insert(all.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(all, t.records) << "prefetch=" << prefetch;
  }
}

TEST(TraceStoreV2, ReadBinaryDispatchesOnMagic) {
  // The legacy entry points accept v2 transparently.
  const trace::Trace t = tiny_trace();
  std::stringstream ss;
  write_v2(t, ss);
  EXPECT_EQ(trace::read_binary(ss), t);

  const std::string path = "/tmp/sctm_tracestore_dispatch.trc2";
  write_v2_file(t, path);
  EXPECT_EQ(trace::sniff_format(path), trace::TraceFormat::kV2);
  EXPECT_EQ(trace::read_binary_file(path), t);
  std::remove(path.c_str());
}

TEST(TraceStoreV2, WriterStreamsAndHashesIncrementally) {
  std::mt19937_64 rng(7);
  const trace::Trace t = random_trace(rng, 60);
  TraceMeta meta;
  meta.app = t.app;
  meta.capture_network = t.capture_network;
  meta.nodes = t.nodes;
  meta.capture_runtime = t.capture_runtime;
  meta.seed = t.seed;
  std::ostringstream ss;
  TraceWriter w(ss, meta, 10);
  for (const auto& r : t.records) w.append(r);
  w.finish();
  EXPECT_EQ(w.records_written(), t.records.size());
  EXPECT_EQ(w.content_hash(), content_hash(t));
  EXPECT_THROW(w.finish(), std::logic_error);
  EXPECT_THROW(w.append(t.records[0]), std::logic_error);

  const std::string bytes = ss.str();
  const TraceReader reader(memory_source(bytes.data(), bytes.size()));
  EXPECT_EQ(reader.stored_content_hash(), content_hash(t));
  EXPECT_EQ(reader.read_all(), t);
}

TEST(TraceStoreV2, ContentHashIsFormatIndependent) {
  const trace::Trace t = tiny_trace();
  const std::string v1 = "/tmp/sctm_hash_check.bin";
  const std::string v2 = "/tmp/sctm_hash_check.trc2";
  trace::write_file(t, v1, trace::TraceFormat::kV1);
  trace::write_file(t, v2, trace::TraceFormat::kV2);
  // Loading either file yields the same logical trace, hence the same
  // content address; v2 additionally stores it in the footer.
  EXPECT_EQ(content_hash(trace::read_binary_file(v1)),
            content_hash(trace::read_binary_file(v2)));
  EXPECT_EQ(TraceReader::open_file(v2).stored_content_hash(),
            content_hash(t));
  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

// ---------------------------------------------------------------------------
// Corruption

TEST(TraceStoreV2, EveryOneByteCorruptionIsDetectedAndAttributed) {
  std::mt19937_64 rng(4242);
  const trace::Trace t = random_trace(rng, 30);
  const std::string path = "/tmp/sctm_corrupt_sweep.trc2";
  write_v2_file(t, path, /*chunk_records=*/8);

  std::string clean;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    clean = buf.str();
  }
  const VerifyReport ok = verify_v2_file(path);
  ASSERT_TRUE(ok.ok) << ok.error;
  ASSERT_GE(ok.chunks, 3u);

  // Byte ranges owned by each chunk (header + payload): corruption there
  // must be attributed to exactly that chunk.
  const TraceReader reader = TraceReader::open_file(path);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
    const auto& c = reader.chunk_info(i);
    spans.push_back(
        {c.file_offset, c.file_offset + kChunkHeaderBytes + c.payload_len});
  }

  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string bad = clean;
    bad[i] = static_cast<char>(bad[i] ^ 0xFF);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    const VerifyReport rep = verify_v2_file(path);
    ASSERT_FALSE(rep.ok) << "corruption at byte " << i << " went undetected";
    std::int64_t expected_chunk = -1;
    for (std::size_t c = 0; c < spans.size(); ++c) {
      if (i >= spans[c].first && i < spans[c].second) {
        expected_chunk = static_cast<std::int64_t>(c);
      }
    }
    EXPECT_EQ(rep.bad_chunk, expected_chunk)
        << "byte " << i << ": " << rep.error;
  }
  std::remove(path.c_str());
}

TEST(TraceStoreV2, TruncationRejected) {
  std::ostringstream ss;
  write_v2(tiny_trace(), ss);
  const std::string full = ss.str();
  for (const std::size_t keep : {0ul, 7ul, 20ul, full.size() / 2,
                                 full.size() - 1}) {
    EXPECT_THROW(
        TraceReader reader(memory_source(full.data(), keep)),
        TraceStoreError)
        << "accepted a " << keep << "-byte prefix";
  }
}

// ---------------------------------------------------------------------------
// Streamed replay equivalence (the acceptance criterion: replaying from a
// streamed v2 container is bit-identical to replaying the in-memory trace).

TEST(TraceStoreV2, StreamedReplayMatchesInMemoryReplayBitExactly) {
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  fullsys::FullSysParams sys;
  sys.l1_sets = 8;
  sys.l1_ways = 2;
  sys.l2_sets = 32;
  sys.l2_ways = 4;
  core::NetSpec net;
  net.kind = core::NetKind::kEnoc;
  const trace::Trace t = core::run_execution(app, net, sys).trace;
  ASSERT_GT(t.records.size(), 100u);

  const std::string path = "/tmp/sctm_streamed_replay.trc2";
  write_v2_file(t, path, /*chunk_records=*/128);  // force many chunks

  core::NetSpec target;
  target.kind = core::NetKind::kOnocToken;
  const auto mem = core::run_replay(t, target, {});
  const auto streamed =
      core::run_replay(core::load_replay_trace(path), target, {});
  EXPECT_EQ(streamed.result.inject_time, mem.result.inject_time);
  EXPECT_EQ(streamed.result.arrive_time, mem.result.arrive_time);
  EXPECT_EQ(streamed.result.runtime, mem.result.runtime);
  EXPECT_EQ(streamed.result.events, mem.result.events);
  std::remove(path.c_str());
}

TEST(ReplayTraceTest, MirrorsDependencyGraphValidation) {
  trace::Trace t;
  t.nodes = 2;
  trace::TraceRecord a;
  a.id = 1;
  a.src = 0;
  a.dst = 1;
  a.inject_time = 0;
  a.arrive_time = 5;
  trace::TraceRecord b;
  b.id = 2;
  b.src = 1;
  b.dst = 0;
  b.inject_time = 7;
  b.arrive_time = 15;
  b.deps.push_back({1, 2});
  t.records = {a, b};
  const core::ReplayTrace rt(t);  // must validate cleanly
  EXPECT_EQ(rt.size(), 2u);
  EXPECT_EQ(rt.dep_count(1), 1u);
  EXPECT_EQ(rt.dep_parent_index(1, 0), 0u);
  ASSERT_EQ(rt.children_end(0) - rt.children_begin(0), 1);
  EXPECT_EQ(*rt.children_begin(0), 1u);

  auto bad = t;
  bad.records[1].deps[0].parent = 999;  // unknown parent
  EXPECT_THROW(core::ReplayTrace{bad}, std::invalid_argument);
  bad = t;
  bad.records[1].deps[0].slack = 3;  // 5 + 3 != 7
  EXPECT_THROW(core::ReplayTrace{bad}, std::invalid_argument);
  bad = t;
  bad.records[1].id = 1;  // duplicate id
  bad.records[1].deps.clear();
  EXPECT_THROW(core::ReplayTrace{bad}, std::invalid_argument);
  bad = t;
  bad.records[0].deps.push_back({2, 0});  // forward dependency
  bad.records[0].inject_time = 15;
  EXPECT_THROW(core::ReplayTrace{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace sctm::tracestore
