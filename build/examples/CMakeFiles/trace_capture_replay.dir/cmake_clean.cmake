file(REMOVE_RECURSE
  "CMakeFiles/trace_capture_replay.dir/trace_capture_replay.cpp.o"
  "CMakeFiles/trace_capture_replay.dir/trace_capture_replay.cpp.o.d"
  "trace_capture_replay"
  "trace_capture_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_capture_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
