#include "enoc/router.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace sctm::enoc {
namespace {

constexpr int kInfiniteCredits = std::numeric_limits<int>::max() / 2;

std::unique_ptr<Arbiter> make_arbiter(ArbiterKind kind, int width) {
  if (kind == ArbiterKind::kMatrix) {
    return std::make_unique<MatrixArbiter>(width);
  }
  return std::make_unique<RoundRobinArbiter>(width);
}

}  // namespace

Router::Router(Simulator& sim, std::string name, NodeId id,
               const noc::Topology& topo, const noc::RoutingTable& routes,
               const EnocParams& params)
    : Component(sim, std::move(name)),
      id_(id),
      topo_(topo),
      routes_(&routes),
      params_(params),
      ports_(topo.radix(id) + 1),
      local_(topo.radix(id)),
      vcount_(params.total_vcs()),
      needs_dateline_(topo.has_wrap_links()),
      stat_buffer_writes_(counter("buffer_writes")),
      stat_buffer_reads_(counter("buffer_reads")),
      stat_xbar_(counter("xbar_traversals")),
      stat_link_(counter("link_traversals")),
      stat_sa_grants_(counter("sa_grants")),
      stat_va_grants_(counter("va_grants")),
      stat_rc_(counter("rc_count")) {
  params_.validate(needs_dateline_);
  configure();
}

void Router::configure() {
  const auto nvc = static_cast<std::size_t>(ports_) * vcount_;
  inputs_.assign(nvc, InputVc{});
  outputs_.assign(nvc, OutputVc{});
  for (auto& ivc : inputs_) {
    ivc.fifo.reserve(static_cast<std::size_t>(params_.buffer_depth));
  }
  occ_.assign((nvc + 63) / 64, 0);
  sa_input_arb_.clear();
  sa_output_arb_.clear();
  va_arb_.clear();
  for (int p = 0; p < ports_; ++p) {
    sa_input_arb_.push_back(make_arbiter(params_.arbiter, vcount_));
    sa_output_arb_.push_back(make_arbiter(params_.arbiter, ports_));
    va_arb_.push_back(make_arbiter(params_.arbiter, ports_ * vcount_));
  }
  req_vc_.assign(static_cast<std::size_t>(vcount_), false);
  req_port_.assign(static_cast<std::size_t>(ports_), false);
  req_pv_.assign(nvc, false);
  sa_nominee_.assign(static_cast<std::size_t>(ports_), -1);
  sa_winner_.assign(static_cast<std::size_t>(ports_), -1);
  va_list_.reserve(nvc);
  rc_list_.reserve(nvc);
  sa_reexposed_.reserve(static_cast<std::size_t>(ports_));
  reset();
}

void Router::reparameterize(const EnocParams& params) {
  params.validate(needs_dateline_);
  params_ = params;
  vcount_ = params_.total_vcs();
  configure();
}

void Router::reset() {
  for (auto& ivc : inputs_) {
    ivc.fifo.clear();
    ivc.out_port = -1;
    ivc.out_vc = -1;
    ivc.next_dateline = 0;
  }
  for (auto& w : occ_) w = 0;
  for (int p = 0; p < ports_; ++p) {
    const bool ejection = (p == local_);
    for (int v = 0; v < vcount_; ++v) {
      auto& ovc = out_vc(p, v);
      ovc.credits = ejection ? kInfiniteCredits : params_.buffer_depth;
      ovc.busy = false;
    }
    sa_input_arb_[static_cast<std::size_t>(p)]->reset();
    sa_output_arb_[static_cast<std::size_t>(p)]->reset();
    va_arb_[static_cast<std::size_t>(p)]->reset();
  }
  va_list_.clear();
  rc_list_.clear();
  sa_reexposed_.clear();
  inj_queue_.clear();
  inj_active_vc_ = -1;
  inj_active_msg_ = kInvalidMsg;
}

int Router::vnet_of(noc::MsgClass cls) const {
  if (params_.vnets < 2) return 0;
  switch (cls) {
    case noc::MsgClass::kRequest:
    case noc::MsgClass::kControl:
      return 0;
    case noc::MsgClass::kReply:
    case noc::MsgClass::kData:
      return 1;
  }
  return 0;
}

std::pair<int, int> Router::allowed_vcs(noc::MsgClass cls,
                                        std::uint8_t dateline) const {
  const int base = vnet_of(cls) * params_.vcs_per_vnet;
  if (!needs_dateline_) return {base, base + params_.vcs_per_vnet};
  const int half = params_.vcs_per_vnet / 2;
  const int lo = base + (dateline ? half : 0);
  return {lo, lo + half};
}

void Router::receive_flit(int in_port, Flit flit) {
  assert(in_port >= 0 && in_port < ports_);
  assert(flit.vc >= 0 && flit.vc < vcount_);
  const int idx = vc_index(in_port, flit.vc);
  auto& ivc = inputs_[static_cast<std::size_t>(idx)];
  if (static_cast<int>(ivc.fifo.size()) >= params_.buffer_depth) {
    throw std::logic_error(name() + ": input buffer overflow (credit bug)");
  }
  ivc.fifo.push_back(flit);
  mark_occupied(idx);
  ++stat_buffer_writes_;
}

void Router::receive_credit(int out_port, int vc) {
  auto& ovc = out_vc(out_port, vc);
  ++ovc.credits;
  if (ovc.credits > params_.buffer_depth && out_port != local_) {
    throw std::logic_error(name() + ": credit overflow");
  }
}

void Router::inject(const noc::Message& msg, std::uint32_t nflits) {
  Flit f;
  f.msg = msg.id;
  f.src = msg.src;
  f.dst = msg.dst;
  f.cls = msg.cls;
  f.injected_at = msg.inject_time;
  for (std::uint32_t i = 0; i < nflits; ++i) {
    f.seq = i;
    f.is_head = (i == 0);
    f.is_tail = (i == nflits - 1);
    inj_queue_.push_back(f);
  }
}

bool Router::has_work() const {
  if (!inj_queue_.empty()) return true;
  for (const std::uint64_t w : occ_) {
    if (w != 0) return true;
  }
  return false;
}

int Router::free_credits(int port) const {
  if (port == local_) return kInfiniteCredits;
  int total = 0;
  for (int v = 0; v < vcount_; ++v) total += outputs_[vc_index(port, v)].credits;
  return total;
}

bool Router::tick(RouterOutbox& out) {
  out_ = &out;
  phase_fused_gather_sa();
  phase_vc_allocation();
  phase_route_compute();
  phase_injection();
  out_ = nullptr;
  return has_work();
}

void Router::phase_fused_gather_sa() {
  // Single pass over occupied VCs in ascending vc_index order — the same
  // lexicographic (port, vc) order the full phase scans used. Each occupied
  // VC is classified once: routed + allocated VCs become SA stage-1 requests
  // (credit check evaluated lazily, only here), routed-unallocated VCs queue
  // for VA, unrouted VCs queue for RC. SA reads pre-SA state by
  // construction (this scan precedes every state change of the cycle).
  va_list_.clear();
  rc_list_.clear();
  sa_reexposed_.clear();
  std::fill(sa_nominee_.begin(), sa_nominee_.end(), -1);

  int cur_port = -1;
  bool cur_any = false;
  bool any_nominee = false;
  auto close_port = [&] {
    if (cur_port >= 0 && cur_any) {
      const int nom = sa_input_arb_[static_cast<std::size_t>(cur_port)]->grant(
          req_vc_);
      sa_nominee_[static_cast<std::size_t>(cur_port)] = nom;
      if (nom >= 0) any_nominee = true;
      std::fill(req_vc_.begin(), req_vc_.end(), false);
    }
  };
  for (std::size_t w = 0; w < occ_.size(); ++w) {
    std::uint64_t bits = occ_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const int idx = static_cast<int>((w << 6)) + b;
      const int p = idx / vcount_;
      const int v = idx % vcount_;
      const auto& ivc = inputs_[static_cast<std::size_t>(idx)];
      if (ivc.out_vc >= 0) {
        // SA candidate iff the downstream buffer has a credit (lazy scan:
        // only occupied, allocated VCs ever look at credit counters).
        if (outputs_[vc_index(ivc.out_port, ivc.out_vc)].credits > 0) {
          if (p != cur_port) {
            close_port();
            cur_port = p;
            cur_any = false;
          }
          req_vc_[static_cast<std::size_t>(v)] = true;
          cur_any = true;
        }
      } else if (ivc.out_port >= 0) {
        va_list_.push_back(idx);
      } else {
        rc_list_.push_back(idx);
      }
    }
  }
  close_port();
  if (!any_nominee) return;

  // Stage 2: each output port grants one nominated input port (unchanged
  // from the phase-ordered engine; nominations are at most `ports_` wide).
  auto& winner_in = sa_winner_;  // input port per output port
  std::fill(winner_in.begin(), winner_in.end(), -1);
  for (int q = 0; q < ports_; ++q) {
    std::fill(req_port_.begin(), req_port_.end(), false);
    bool any = false;
    for (int p = 0; p < ports_; ++p) {
      const int nom = sa_nominee_[static_cast<std::size_t>(p)];
      if (nom < 0) continue;
      if (in_vc(p, nom).out_port == q) {
        req_port_[static_cast<std::size_t>(p)] = true;
        any = true;
      }
    }
    if (any) {
      const int w = sa_output_arb_[q]->grant(req_port_);
      if (w >= 0) winner_in[static_cast<std::size_t>(q)] = w;
    }
  }

  for (int q = 0; q < ports_; ++q) {
    const int w = winner_in[static_cast<std::size_t>(q)];
    if (w >= 0) {
      send_flit(w, sa_nominee_[static_cast<std::size_t>(w)]);
      ++stat_sa_grants_;
    }
  }
}

void Router::send_flit(int in_port, int in_vc_idx) {
  const int idx = vc_index(in_port, in_vc_idx);
  auto& ivc = inputs_[static_cast<std::size_t>(idx)];
  Flit f = ivc.fifo.front();
  ivc.fifo.pop_front();
  if (ivc.fifo.empty()) mark_vacant(idx);
  ++stat_buffer_reads_;
  ++stat_xbar_;

  const int out = ivc.out_port;
  auto& ovc = outputs_[vc_index(out, ivc.out_vc)];
  f.vc = static_cast<std::int16_t>(ivc.out_vc);
  f.dateline = ivc.next_dateline;

  const bool ejecting = (out == local_);
  if (!ejecting) {
    --ovc.credits;
    ++stat_link_;
    out_->forward(id_, out, f);
  } else {
    out_->eject(id_, f);
  }

  if (f.is_tail) {
    ovc.busy = false;
    ivc.out_port = -1;
    ivc.out_vc = -1;
    // The next packet's head (if buffered behind the tail) becomes an RC
    // candidate this same cycle — the one candidate set SA can grow.
    if (!ivc.fifo.empty()) sa_reexposed_.push_back(idx);
  }

  // Return a credit upstream for the slot we just freed (links only; the
  // local injection path reads buffer occupancy directly).
  if (in_port != local_) {
    out_->credit(id_, in_port, in_vc_idx);
  }
}

void Router::phase_vc_allocation() {
  if (va_list_.empty()) return;
  // One grant per output port per cycle, arbitrated over the gathered
  // candidates. The candidate *set* is fixed at gather time (SA only
  // touches allocated VCs, so it cannot add or remove routed-unallocated
  // VCs), but busy bits are read live here — post-SA — so an output VC
  // freed by a departing tail this cycle is grantable, exactly as in the
  // phase-ordered engine. Gather-then-grant per output port is equivalent
  // to the old interleaved full scan: a grant for port q touches only q's
  // busy bits and the winner's out_vc, neither of which any other port's
  // request set reads.
  for (int q = 0; q < ports_; ++q) {
    bool any = false;
    for (const int idx : va_list_) {
      const auto& ivc = inputs_[static_cast<std::size_t>(idx)];
      if (ivc.out_port != q || ivc.out_vc >= 0) continue;
      // A free VC in the packet's allowed range must exist.
      const auto [lo, hi] = allowed_vcs(ivc.fifo.front().cls, ivc.next_dateline);
      bool free_exists = false;
      for (int ov = lo; ov < hi; ++ov) {
        if (!outputs_[vc_index(q, ov)].busy) {
          free_exists = true;
          break;
        }
      }
      if (free_exists) {
        req_pv_[static_cast<std::size_t>(idx)] = true;
        any = true;
      }
    }
    if (!any) continue;
    const int g = va_arb_[q]->grant(req_pv_);
    for (const int idx : va_list_) {  // lazy scratch: clear only what we set
      req_pv_[static_cast<std::size_t>(idx)] = false;
    }
    if (g < 0) continue;
    const int p = g / vcount_;
    const int v = g % vcount_;
    auto& ivc = in_vc(p, v);
    const auto [lo, hi] = allowed_vcs(ivc.fifo.front().cls, ivc.next_dateline);
    for (int ov = lo; ov < hi; ++ov) {
      auto& ovc = outputs_[vc_index(q, ov)];
      if (!ovc.busy) {
        ovc.busy = true;
        ivc.out_vc = ov;
        ++stat_va_grants_;
        break;
      }
    }
  }
}

void Router::phase_route_compute() {
  for (const int idx : rc_list_) route_one(idx);
  // VCs re-exposed by SA tail departures are routed after the gathered list
  // rather than merge-sorted into it: RC is per-VC pure (it reads the head
  // flit and live credit counts, which RC never modifies, and writes only
  // that VC's route fields), so RC order across VCs is unobservable.
  for (const int idx : sa_reexposed_) route_one(idx);
}

void Router::route_one(int idx) {
  auto& ivc = inputs_[static_cast<std::size_t>(idx)];
  if (ivc.fifo.empty() || ivc.out_port >= 0) return;
  const int p = idx / vcount_;
  const Flit& head = ivc.fifo.front();
  if (!head.is_head) {
    throw std::logic_error(name() + ": body flit at unrouted VC head");
  }
  ++stat_rc_;
  if (head.dst == id_) {
    ivc.out_port = local_;
    ivc.next_dateline = 0;
    return;
  }
  const auto candidates =
      routes_->route(head.src, id_, head.dst, p == local_ ? -1 : p);
  int chosen = candidates.front();
  if (params_.adaptive && candidates.size() > 1) {
    int best = -1;
    for (const int c : candidates) {
      const int fc = free_credits(c);
      if (fc > best) {
        best = fc;
        chosen = c;
      }
    }
  }
  ivc.out_port = chosen;
  if (topo_.wrap_link(id_, chosen)) {
    ivc.next_dateline = 1;
  } else if (p != local_ && p < local_ &&
             topo_.port_axis(id_, p) != topo_.port_axis(id_, chosen)) {
    ivc.next_dateline = 0;  // dimension change resets the subclass
  } else {
    ivc.next_dateline = head.dateline;
  }
}

void Router::phase_injection() {
  if (inj_queue_.empty()) return;
  Flit& f = inj_queue_.front();
  // Only pull flits injected strictly before this cycle: the pull instant
  // then depends on the injection *cycle* alone, never on how the inject
  // event was ordered against this tick within the cycle — a requirement
  // for the trace-replay fixed-point property.
  if (f.injected_at >= now()) return;
  const int local = local_;

  if (f.is_head) {
    assert(inj_active_msg_ == kInvalidMsg);
    const auto [lo, hi] = allowed_vcs(f.cls, 0);
    for (int v = lo; v < hi; ++v) {
      auto& ivc = in_vc(local, v);
      if (ivc.fifo.empty() && ivc.out_port < 0) {
        Flit head = f;
        head.vc = static_cast<std::int16_t>(v);
        inj_queue_.pop_front();
        if (!head.is_tail) {
          inj_active_vc_ = v;
          inj_active_msg_ = head.msg;
        }
        receive_flit(local, head);
        return;  // local port bandwidth: one flit per cycle
      }
    }
    return;  // no free VC; head blocks the injection queue
  }

  assert(inj_active_msg_ == f.msg && inj_active_vc_ >= 0);
  auto& ivc = in_vc(local, inj_active_vc_);
  if (static_cast<int>(ivc.fifo.size()) >= params_.buffer_depth) return;
  Flit body = f;
  body.vc = static_cast<std::int16_t>(inj_active_vc_);
  inj_queue_.pop_front();
  if (body.is_tail) {
    inj_active_vc_ = -1;
    inj_active_msg_ = kInvalidMsg;
  }
  receive_flit(local, body);
}

}  // namespace sctm::enoc
