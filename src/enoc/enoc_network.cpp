#include "enoc/enoc_network.hpp"

#include <bit>
#include <stdexcept>

namespace sctm::enoc {

EnocNetwork::EnocNetwork(Simulator& sim, std::string name,
                         const noc::Topology& topo, const EnocParams& params)
    : Network(sim, std::move(name), topo.node_count()),
      topo_(topo),
      params_(params) {
  if (!noc::compatible(topo_, params_.routing)) {
    throw std::invalid_argument(this->name() +
                                ": routing algorithm incompatible with " +
                                topo_.describe());
  }
  routers_.reserve(static_cast<std::size_t>(topo_.node_count()));
  for (NodeId n = 0; n < topo_.node_count(); ++n) {
    routers_.push_back(std::make_unique<Router>(
        sim, this->name() + ".r" + std::to_string(n), n, topo_, params_,
        static_cast<RouterCallbacks&>(*this)));
  }
  active_bits_.assign((static_cast<std::size_t>(topo_.node_count()) + 63) / 64,
                      0);
  pending_.reserve(64);
}

void EnocNetwork::reset() {
  Network::reset();
  for (auto& r : routers_) r->reset();
  pending_.clear();
  for (auto& w : active_bits_) w = 0;
  in_flight_ = 0;
  // The tick event (if any) died with the simulator's queue reset; the next
  // inject re-arms the clock.
  ticking_ = false;
  active_cycles_ = 0;
  router_ticks_ = 0;
  activity_hash_ = 0;
}

void EnocNetwork::mark_active(NodeId n) {
  active_bits_[static_cast<std::size_t>(n) >> 6] |=
      std::uint64_t{1} << (static_cast<std::size_t>(n) & 63);
}

void EnocNetwork::inject(noc::Message msg) {
  note_injected(msg);
  const std::uint32_t nflits = params_.flits_for(msg.size_bytes);
  pending_.insert(msg.id, PendingMsg{msg, nflits});
  routers_[static_cast<std::size_t>(msg.src)]->inject(msg, nflits);
  mark_active(msg.src);
  ++in_flight_;
  ensure_ticking();
}

namespace {
// FNV-1a style mixing for the activity hash.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

void EnocNetwork::forward_flit(NodeId node, int out_dir, const Flit& flit) {
  activity_hash_ = mix(activity_hash_,
                       (static_cast<std::uint64_t>(sim().now()) << 24) ^
                           (flit.msg << 8) ^
                           (static_cast<std::uint64_t>(flit.seq) << 4) ^
                           static_cast<std::uint64_t>(node * 8 + out_dir));
  if (probe_) probe_(sim().now(), out_dir, flit.msg, node);
  const NodeId next = topo_.neighbor(node, out_dir);
  if (next == kInvalidNode) {
    throw std::logic_error(name() + ": flit forwarded off the fabric edge");
  }
  const int arrival_port =
      topo_.kind() == noc::Topology::Kind::kRing
          ? (out_dir == noc::kRingCw ? noc::kRingCcw : noc::kRingCw)
          : noc::Topology::opposite(out_dir);
  Flit f = flit;
  auto ev = [this, next, arrival_port, f] {
    routers_[static_cast<std::size_t>(next)]->receive_flit(arrival_port, f);
    mark_active(next);
  };
  static_assert(InlineFn::fits_inline<decltype(ev)>(),
                "link-traversal closure must stay within the event SBO budget");
  sim().schedule_in(params_.link_latency, std::move(ev));
}

void EnocNetwork::eject_flit(NodeId node, const Flit& flit) {
  activity_hash_ = mix(activity_hash_,
                       (static_cast<std::uint64_t>(sim().now()) << 24) ^
                           (flit.msg << 8) ^
                           (static_cast<std::uint64_t>(flit.seq) << 4) ^
                           static_cast<std::uint64_t>(node * 8 + 7));
  if (probe_) probe_(sim().now(), -1, flit.msg, node);
  PendingMsg* pm = pending_.find(flit.msg);
  if (pm == nullptr) {
    throw std::logic_error(name() + ": ejected flit of unknown message");
  }
  if (pm->msg.dst != node) {
    throw std::logic_error(name() + ": flit ejected at wrong node");
  }
  if (--pm->flits_remaining == 0) {
    noc::Message msg = pm->msg;
    pending_.erase(flit.msg);
    --in_flight_;
    deliver(msg);
  }
}

void EnocNetwork::return_credit(NodeId node, int in_dir, int vc) {
  // The credit goes to the upstream router that feeds our input port
  // `in_dir`: that is our neighbor through `in_dir` itself, and the flit left
  // it through the opposite port.
  const NodeId up = topo_.neighbor(node, in_dir);
  if (up == kInvalidNode) {
    throw std::logic_error(name() + ": credit to nonexistent neighbor");
  }
  const int up_out =
      topo_.kind() == noc::Topology::Kind::kRing
          ? (in_dir == noc::kRingCw ? noc::kRingCcw : noc::kRingCw)
          : noc::Topology::opposite(in_dir);
  // A credit can unblock a router, but never *activate* one: a
  // credit-starved router still holds the blocked flits, so has_work() keeps
  // it in the active set until they drain.
  sim().schedule_in(params_.credit_latency, [this, up, up_out, vc] {
    routers_[static_cast<std::size_t>(up)]->receive_credit(up_out, vc);
  });
}

void EnocNetwork::ensure_ticking() {
  if (ticking_) return;
  ticking_ = true;
  sim().schedule_in(1, [this] { tick(); });
}

void EnocNetwork::tick() {
  ++active_cycles_;
  if (exhaustive_tick_) {
    // Seed policy (kept as a test oracle): tick every router every cycle.
    for (std::size_t w = 0; w < active_bits_.size(); ++w) active_bits_[w] = 0;
    for (auto& r : routers_) {
      if (r->tick()) mark_active(r->id());
      ++router_ticks_;
    }
  } else {
    // Drain the active set in ascending router-id order (bit order), the
    // same order the exhaustive loop visits routers, so arbitration history
    // stays bit-identical. A tick may *synchronously* activate a router:
    // ejection delivers to the endpoint, which can reply immediately with a
    // fresh inject (always at the delivering node). Bits are therefore
    // cleared one at a time on the live word — never by overwriting a
    // snapshot — so a mark_active() fired mid-scan is never lost. Clearing
    // only when tick() reports no work is safe because any synchronous
    // activation of the ticked router leaves it with flits, which tick()'s
    // has_work() return already reflects; and a tick skipped or added for a
    // router whose flits were injected *this* cycle is a no-op either way
    // (the injection phase only pulls flits injected on earlier cycles).
    for (std::size_t w = 0; w < active_bits_.size(); ++w) {
      std::uint64_t bits = active_bits_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const auto idx = (w << 6) | static_cast<std::size_t>(b);
        if (!routers_[idx]->tick()) {
          active_bits_[w] &= ~(std::uint64_t{1} << b);
        }
        ++router_ticks_;
      }
    }
  }
  if (in_flight_ > 0) {
    sim().schedule_in(1, [this] { tick(); });
  } else {
    ticking_ = false;
  }
}

}  // namespace sctm::enoc
