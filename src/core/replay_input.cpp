#include "core/replay_input.hpp"

#include <stdexcept>
#include <unordered_map>

#include "tracestore/trace_store.hpp"

namespace sctm::core {

ReplayTrace::ReplayTrace(const trace::Trace& t) {
  set_meta(t.app, t.capture_network, t.nodes, t.capture_runtime, t.seed);
  reserve(t.records.size());
  for (const auto& r : t.records) append(r);
  finalize();
}

ReplayTrace ReplayTrace::from_store(const tracestore::TraceReader& reader,
                                    bool prefetch) {
  ReplayTrace rt;
  const tracestore::TraceMeta& m = reader.meta();
  rt.set_meta(m.app, m.capture_network, m.nodes, m.capture_runtime, m.seed);
  rt.reserve(reader.record_count());
  tracestore::ChunkCursor cursor(reader, prefetch);
  std::vector<trace::TraceRecord> chunk;
  while (cursor.next(chunk)) {
    for (const auto& r : chunk) rt.append(r);
  }
  rt.finalize();
  return rt;
}

void ReplayTrace::set_meta(std::string app, std::string capture_network,
                           std::int32_t nodes, Cycle capture_runtime,
                           std::uint64_t seed) {
  tracestore::Fnv1a64 h(hash_state_);
  tracestore::hash_meta(h, app, capture_network, nodes, capture_runtime, seed);
  hash_state_ = h.value();
  app_ = std::move(app);
  capture_network_ = std::move(capture_network);
  nodes_ = nodes;
  capture_runtime_ = capture_runtime;
  seed_ = seed;
}

void ReplayTrace::reserve(std::uint64_t records) {
  const auto n = static_cast<std::size_t>(records);
  id_.reserve(n);
  src_.reserve(n);
  dst_.reserve(n);
  size_bytes_.reserve(n);
  cls_.reserve(n);
  inject_.reserve(n);
  arrive_.reserve(n);
  dep_offset_.reserve(n + 1);
}

void ReplayTrace::append(const trace::TraceRecord& r) {
  if (finalized_) {
    throw std::logic_error("ReplayTrace: append after finalize");
  }
  if (dep_offset_.empty()) dep_offset_.push_back(0);
  tracestore::Fnv1a64 h(hash_state_);
  tracestore::hash_record(h, r);
  hash_state_ = h.value();
  id_.push_back(r.id);
  src_.push_back(r.src);
  dst_.push_back(r.dst);
  size_bytes_.push_back(r.size_bytes);
  cls_.push_back(r.cls);
  inject_.push_back(r.inject_time);
  arrive_.push_back(r.arrive_time);
  deps_.insert(deps_.end(), r.deps.begin(), r.deps.end());
  dep_offset_.push_back(static_cast<std::uint32_t>(deps_.size()));
}

void ReplayTrace::finalize() {
  if (finalized_) throw std::logic_error("ReplayTrace: finalize called twice");
  if (dep_offset_.empty()) dep_offset_.push_back(0);
  const std::uint32_t n = size();

  // The id index is transient: dependencies are resolved to record indices
  // here, so no per-id lookup structure outlives the build.
  std::unordered_map<MsgId, std::uint32_t> index;
  index.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!index.emplace(id_[i], i).second) {
      throw std::invalid_argument("ReplayTrace: duplicate message id");
    }
  }

  dep_parent_idx_.resize(deps_.size());
  std::vector<std::uint32_t> child_count(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t k = dep_offset_[i]; k < dep_offset_[i + 1]; ++k) {
      const trace::TraceDep& d = deps_[k];
      const auto it = index.find(d.parent);
      if (it == index.end()) {
        throw std::invalid_argument("ReplayTrace: unknown parent");
      }
      const std::uint32_t p = it->second;
      if (id_[p] >= id_[i]) {
        throw std::invalid_argument(
            "ReplayTrace: dependency does not precede dependent");
      }
      if (arrive_[p] + d.slack != inject_[i]) {
        throw std::invalid_argument(
            "ReplayTrace: slack inconsistent with capture times");
      }
      dep_parent_idx_[k] = p;
      ++child_count[p];
    }
  }

  // Reverse CSR, filled in ascending dependent order — the same order
  // DependencyGraph pushed children, so replay dispatch is bit-identical.
  child_offset_.assign(n + 1, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    child_offset_[i + 1] = child_offset_[i] + child_count[i];
  }
  children_.resize(deps_.size());
  std::vector<std::uint32_t> cursor(child_offset_.begin(),
                                    child_offset_.end() - 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t k = dep_offset_[i]; k < dep_offset_[i + 1]; ++k) {
      children_[cursor[dep_parent_idx_[k]]++] = i;
    }
  }
  finalized_ = true;
}

}  // namespace sctm::core
