#include "core/driver.hpp"

#include <chrono>

#include "trace/capture.hpp"

namespace sctm::core {
namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

}  // namespace

const char* to_string(NetKind k) {
  switch (k) {
    case NetKind::kIdeal: return "ideal";
    case NetKind::kEnoc: return "enoc";
    case NetKind::kOnocToken: return "onoc-token";
    case NetKind::kOnocSetup: return "onoc-setup";
    case NetKind::kOnocSwmr: return "onoc-swmr";
    case NetKind::kHybrid: return "hybrid";
  }
  return "?";
}

std::string NetSpec::describe() const {
  return std::string(to_string(kind)) + " " + topo.describe();
}

NetworkFactory make_factory(const NetSpec& spec) {
  switch (spec.kind) {
    case NetKind::kIdeal:
      return [spec](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<noc::IdealNetwork>(sim, "net", spec.topo,
                                                   spec.ideal);
      };
    case NetKind::kEnoc:
      return [spec](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<enoc::EnocNetwork>(sim, "net", spec.topo,
                                                   spec.enoc);
      };
    case NetKind::kOnocToken: {
      NetSpec s = spec;
      s.onoc.arbitration = onoc::Arbitration::kTokenRing;
      return [s](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<onoc::OnocNetwork>(sim, "net", s.topo, s.onoc);
      };
    }
    case NetKind::kOnocSetup: {
      NetSpec s = spec;
      s.onoc.arbitration = onoc::Arbitration::kPathSetup;
      return [s](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<onoc::OnocNetwork>(sim, "net", s.topo, s.onoc);
      };
    }
    case NetKind::kOnocSwmr: {
      NetSpec s = spec;
      s.onoc.arbitration = onoc::Arbitration::kSwmr;
      return [s](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<onoc::OnocNetwork>(sim, "net", s.topo, s.onoc);
      };
    }
    case NetKind::kHybrid:
      return [spec](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<onoc::HybridNetwork>(sim, "net", spec.topo,
                                                     spec.hybrid);
      };
  }
  throw std::invalid_argument("make_factory: bad NetKind");
}

ExecutionRun run_execution(const fullsys::AppParams& app, const NetSpec& net,
                           const fullsys::FullSysParams& sys) {
  const auto t0 = std::chrono::steady_clock::now();
  Simulator sim;
  auto network = make_factory(net)(sim);
  fullsys::CmpSystem cmp(sim, "cmp", *network, net.topo, sys,
                         fullsys::build_app(app));
  trace::TraceCapture capture(cmp, app.name, net.describe(),
                              net.topo.node_count());
  ExecutionRun out;
  out.runtime = cmp.run_to_completion();
  out.trace = std::move(capture).finalize(out.runtime);
  out.trace.seed = app.seed;
  out.events = sim.events_executed();
  out.stats_report = sim.stats().report();
  out.wall_seconds = seconds_since(t0);
  return out;
}

ReplayRun run_replay(const trace::Trace& trace, const NetSpec& net,
                     const ReplayConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  ReplayRun out;
  out.result = replay(trace, make_factory(net), config);
  out.wall_seconds = seconds_since(t0);
  return out;
}

}  // namespace sctm::core
