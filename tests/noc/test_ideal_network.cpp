#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "noc/network.hpp"

namespace sctm::noc {
namespace {

Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes,
                 MsgClass cls = MsgClass::kData) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = cls;
  return m;
}

TEST(IdealNetwork, LatencyFormula) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  IdealNetwork::Params p{.base_latency = 3, .per_hop_latency = 2,
                         .bytes_per_cycle = 16};
  IdealNetwork net(sim, "net", t, p);
  const auto m = make_msg(1, 0, 15, 64);
  // hops=6, ser=4 -> 3 + 12 + 4 = 19.
  EXPECT_EQ(net.model_latency(m), 19u);
}

TEST(IdealNetwork, SerializationRoundsUp) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  IdealNetwork net(sim, "net", t, {});
  auto m = make_msg(1, 0, 1, 17);  // 17/16 -> 2 cycles
  EXPECT_EQ(net.model_latency(m), 2u + 1u + 2u);
}

TEST(IdealNetwork, DeliversAtModelLatency) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  IdealNetwork net(sim, "net", t, {});
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  const auto m = make_msg(7, 0, 3, 32);
  const Cycle expect = net.model_latency(m);
  net.inject(m);
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 7u);
  EXPECT_EQ(got[0].latency(), expect);
  EXPECT_EQ(got[0].arrive_time, expect);
}

TEST(IdealNetwork, TracksInFlightAndIdle) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  IdealNetwork net(sim, "net", t, {});
  EXPECT_TRUE(net.idle());
  net.inject(make_msg(1, 0, 3, 8));
  EXPECT_FALSE(net.idle());
  sim.run();
  EXPECT_TRUE(net.idle());
}

TEST(IdealNetwork, LatencyHistogramPerClass) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  IdealNetwork net(sim, "net", t, {});
  net.inject(make_msg(1, 0, 3, 8, MsgClass::kRequest));
  net.inject(make_msg(2, 0, 3, 64, MsgClass::kData));
  sim.run();
  EXPECT_EQ(net.latency_histogram().count(), 2u);
  EXPECT_EQ(net.latency_histogram(MsgClass::kRequest).count(), 1u);
  EXPECT_EQ(net.latency_histogram(MsgClass::kData).count(), 1u);
  EXPECT_EQ(net.latency_histogram(MsgClass::kReply).count(), 0u);
}

TEST(IdealNetwork, RejectsInvalidEndpoints) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  IdealNetwork net(sim, "net", t, {});
  EXPECT_THROW(net.inject(make_msg(1, 0, 9, 8)), std::logic_error);
  EXPECT_THROW(net.inject(make_msg(1, -1, 0, 8)), std::logic_error);
}

TEST(IdealNetwork, SelfMessageAllowed) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  IdealNetwork net(sim, "net", t, {});
  int delivered = 0;
  net.set_deliver_callback([&](const Message&) { ++delivered; });
  net.inject(make_msg(1, 2, 2, 8));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace sctm::noc
