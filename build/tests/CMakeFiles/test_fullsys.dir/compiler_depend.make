# Empty compiler generated dependencies file for test_fullsys.
# This may be replaced when dependencies are built.
