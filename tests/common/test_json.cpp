// JSON layer schema tests: writer/parser round trips, escaping of
// pathological stat names, NaN/Inf handling, and validation of the
// run-metrics document every producer in the repo emits.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/run_metrics.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace sctm {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriter, EmitsNestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("fft");
  w.key("rows");
  w.begin_array();
  w.value(1);
  w.value(2.5);
  w.begin_object();
  w.key("ok");
  w.value(true);
  w.end_object();
  w.end_array();
  w.key("none");
  w.null();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(std::move(w).str(),
            R"({"name":"fft","rows":[1,2.5,{"ok":true}],"none":null})");
}

TEST(JsonWriter, QuoteEscapesPathologicalNames) {
  // Stat names can contain anything a Component chose to register.
  EXPECT_EQ(JsonWriter::quote("plain"), "\"plain\"");
  EXPECT_EQ(JsonWriter::quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonWriter::quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(JsonWriter::quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonWriter::quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(JsonWriter::quote(std::string_view("nul\0byte", 8)),
            "\"nul\\u0000byte\"");
  EXPECT_EQ(JsonWriter::quote("\x01"), "\"\\u0001\"");
  // Non-ASCII UTF-8 passes through untouched.
  EXPECT_EQ(JsonWriter::quote("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST(JsonWriter, PathologicalKeyRoundTripsThroughParser) {
  const std::string evil = "router[0].\"weird\\name\"\n\ttail";
  JsonWriter w;
  w.begin_object();
  w.key(evil);
  w.value(1);
  w.end_object();
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(std::move(w).str(), &doc, &err)) << err;
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.object.size(), 1u);
  EXPECT_EQ(doc.object[0].first, evil);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  // A valid JSON document must never contain bare NaN/Infinity tokens.
  EXPECT_EQ(JsonWriter::format_double(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::format_double(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(JsonWriter::format_double(-std::numeric_limits<double>::infinity()),
            "null");
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(std::move(w).str(), "[null]");
}

TEST(JsonWriter, DoublesRoundTripExactly) {
  for (const double d : {0.0, -0.0, 1.0 / 3.0, 0.1, 1e-300, 6.02214076e23,
                         -123456.789, 2.2250738585072014e-308}) {
    const std::string s = JsonWriter::format_double(d);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), d) << s;
  }
  // Integral doubles render without a decimal exponent blow-up.
  EXPECT_EQ(JsonWriter::format_double(42.0), "42");
}

// ---------------------------------------------------------------------------
// json_parse
// ---------------------------------------------------------------------------

TEST(JsonParse, ParsesScalarsAndContainers) {
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(R"({"a": [1, -2.5e2, "s", true, false, null]})",
                         &doc, &err))
      << err;
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 6u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[1].number, -250.0);
  EXPECT_EQ(a->array[2].string, "s");
  EXPECT_TRUE(a->array[3].boolean);
  EXPECT_EQ(a->array[5].kind, JsonValue::Kind::kNull);
}

TEST(JsonParse, DecodesEscapes) {
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(R"(["a\"b\\c\n\t\u0041\u00e9"])", &doc, &err)) << err;
  EXPECT_EQ(doc.array[0].string, "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput) {
  JsonValue doc;
  for (const char* bad : {
           "",                  // empty
           "{",                 // unterminated
           "[1,]",              // trailing comma
           "{\"a\":1,}",        // trailing comma in object
           "{\"a\":1} tail",    // trailing garbage
           "NaN",               // bare NaN is not JSON
           "[Infinity]",        // neither is Infinity
           "[-Infinity]",       //
           "[nan]",             //
           "{'a':1}",           // single quotes
           "[01]",              // leading zero
           "[1.]",              // digitless fraction
           "[\"\x01\"]",        // raw control char inside string
           "{\"a\":1,\"a\":2}"  // duplicate key
       }) {
    std::string err;
    EXPECT_FALSE(json_parse(bad, &doc, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

// ---------------------------------------------------------------------------
// Run-metrics document schema
// ---------------------------------------------------------------------------

/// Representative document: stats with a hostile name, phases, histogram.
RunMetrics sample_metrics() {
  RunMetrics m;
  m.manifest.tool = "test_json";
  m.manifest.created = "2026-01-01T00:00:00Z";
  m.manifest.set("app", std::string("fft"));
  m.manifest.set("seed", std::uint64_t{42});
  m.add_phase("build", 0.25, 0);
  m.add_phase("execute", 1.5, 1234);
  StatRegistry reg;
  reg.counter("net.flits") = 7;
  reg.counter("weird\"name\n") = 1;
  reg.accumulator("lat\tacc").add(3.0);
  m.set_stats(reg);
  Histogram h;
  h.add(1);
  h.add(100);
  m.add_histogram("latency", h, /*with_buckets=*/true);
  JsonWriter results;
  results.begin_object();
  results.key("runtime_cycles");
  results.value(std::uint64_t{99});
  results.end_object();
  m.set_results_json(std::move(results).str());
  return m;
}

TEST(RunMetricsDoc, SerializesRequiredKeysAndValidates) {
  const std::string doc_text = sample_metrics().to_json();
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(doc_text, &doc, &err)) << err;

  const JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, kMetricsSchema);

  const JsonValue* manifest = doc.find("manifest");
  ASSERT_NE(manifest, nullptr);
  EXPECT_EQ(manifest->find("tool")->string, "test_json");
  const JsonValue* config = manifest->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("app")->string, "fft");
  EXPECT_EQ(config->find("seed")->string, "42");

  const JsonValue* phases = doc.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(), 2u);
  EXPECT_EQ(phases->array[1].find("name")->string, "execute");
  EXPECT_DOUBLE_EQ(phases->array[1].find("wall_seconds")->number, 1.5);
  EXPECT_DOUBLE_EQ(phases->array[1].find("events")->number, 1234.0);

  const JsonValue* stats = doc.find("stats");
  ASSERT_NE(stats, nullptr);
  const JsonValue* counters = stats->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("net.flits")->number, 7.0);
  // The hostile counter name survives escaping + parsing intact.
  EXPECT_NE(counters->find("weird\"name\n"), nullptr);
  const JsonValue* acc = stats->find("accumulators")->find("lat\tacc");
  ASSERT_NE(acc, nullptr);
  EXPECT_DOUBLE_EQ(acc->find("mean")->number, 3.0);
  const JsonValue* hist = stats->find("histograms")->find("latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(hist->find("p99")->number, 100.0);
  const JsonValue* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->array.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->array[0].array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(buckets->array[0].array[1].number, 1.0);

  EXPECT_DOUBLE_EQ(doc.find("results")->find("runtime_cycles")->number, 99.0);

  EXPECT_TRUE(validate_metrics_doc(doc, &err)) << err;
  EXPECT_TRUE(validate_metrics_json(doc_text, &err)) << err;
}

TEST(RunMetricsDoc, EmptyDocumentStillValidates) {
  RunMetrics m;
  m.manifest.tool = "bare";
  std::string err;
  EXPECT_TRUE(validate_metrics_json(m.to_json(), &err)) << err;
}

TEST(RunMetricsDoc, ValidatorRejectsBrokenDocuments) {
  std::string err;
  EXPECT_FALSE(validate_metrics_json("not json", &err));
  EXPECT_FALSE(validate_metrics_json("[]", &err));
  EXPECT_FALSE(validate_metrics_json(R"({"schema":"other.v1"})", &err));
  // Right schema string but missing sections.
  EXPECT_FALSE(
      validate_metrics_json(R"({"schema":"sctm.run_metrics.v1"})", &err));
  // Empty manifest.tool.
  EXPECT_FALSE(validate_metrics_json(
      R"({"schema":"sctm.run_metrics.v1","manifest":{"tool":"","created":"",)"
      R"("config":{}},"phases":[],"stats":{"counters":{},"accumulators":{},)"
      R"("histograms":{}},"results":{}})",
      &err));
  // Phase with negative wall time.
  EXPECT_FALSE(validate_metrics_json(
      R"({"schema":"sctm.run_metrics.v1","manifest":{"tool":"t","created":"",)"
      R"("config":{}},"phases":[{"name":"x","wall_seconds":-1,"events":0}],)"
      R"("stats":{"counters":{},"accumulators":{},"histograms":{}},)"
      R"("results":{}})",
      &err));
  // Non-numeric counter.
  EXPECT_FALSE(validate_metrics_json(
      R"({"schema":"sctm.run_metrics.v1","manifest":{"tool":"t","created":"",)"
      R"("config":{}},"phases":[],"stats":{"counters":{"c":"oops"},)"
      R"("accumulators":{},"histograms":{}},"results":{}})",
      &err));
}

TEST(RunMetricsDoc, TableJsonEmbedsHeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  JsonWriter w;
  write_table_json(w, t);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(std::move(w).str(), &doc, &err)) << err;
  EXPECT_EQ(doc.find("title")->string, "demo");
  ASSERT_EQ(doc.find("header")->array.size(), 2u);
  ASSERT_EQ(doc.find("rows")->array.size(), 2u);
  EXPECT_EQ(doc.find("rows")->array[1].array[1].string, "y");
}

}  // namespace
}  // namespace sctm
