// Tier-0 analytic latency estimators, one per NetKind.
//
// Each model maps a TraceProfile plus a candidate NetSpec to an
// AnalyticResult in O(nodes^2 * classes) — no events, no records. The
// estimators follow the priority-class queueing treatment of Mandal et al.
// ("Analytical Performance Models for NoCs with Multiple Priority Traffic
// Classes"): each shared resource (a mesh link, an optical receive/source
// channel, the shared pool) is an M/G/1-style station fed by the profile's
// offered-load matrix, and a message's latency is its zero-load path time
// plus the waiting terms of every station on its path. DESIGN.md §12 gives
// the per-kind equations and the known blind spots.
//
// Estimates are consistent with replay in the two regimes the tests pin
// down: they agree exactly with replay on a contention-free single-flow
// trace over the ideal network, and they are monotone in offered load and
// in `link_latency`.
#pragma once

#include <array>
#include <memory>

#include "analytic/trace_profile.hpp"
#include "core/driver.hpp"

namespace sctm::analytic {

struct AnalyticResult {
  /// Estimated application-visible runtime (last arrival), cycles.
  double est_runtime = 0;
  /// Estimated mean / p99 message latency, cycles.
  double est_mean_latency = 0;
  double est_p99 = 0;
  /// Mean latency per message class (0 for classes absent from the trace).
  std::array<double, noc::kMsgClassCount> per_class{};
};

/// One latency estimator, bound to a candidate's topology and parameters.
class AnalyticModel {
 public:
  virtual ~AnalyticModel() = default;
  virtual const char* name() const = 0;

  /// Full estimate: latency core plus the profile's critical-path envelope
  /// and throughput bound combined into est_runtime.
  AnalyticResult estimate(const TraceProfile& p) const;

  /// Intermediate per-message quantities, exposed for the hybrid mix and
  /// the tests. `weight` is the message count this core covers (the hybrid
  /// steers disjoint subsets through two cores and recombines by weight).
  struct LatencyCore {
    double weight = 0;
    double mean_latency = 0;   // includes waiting
    double mean_wait = 0;      // waiting share of mean_latency
    double max_zero_load = 0;  // slowest pair at zero load
    double bottleneck_busy = 0;  // busy cycles on the most-loaded resource
    std::array<double, noc::kMsgClassCount> class_weight{};
    std::array<double, noc::kMsgClassCount> class_latency{};  // means
  };
  virtual LatencyCore core(const TraceProfile& p) const = 0;
};

/// Builds the estimator for `spec` (resolving NetKind to the arbitration
/// scheme exactly as core::make_factory does). Throws on unsupported
/// topologies, mirroring the simulators' own constructors.
std::unique_ptr<AnalyticModel> make_model(const core::NetSpec& spec);

/// One-shot convenience: make_model(spec)->estimate(p).
AnalyticResult estimate(const TraceProfile& p, const core::NetSpec& spec);

}  // namespace sctm::analytic
