#include "enoc/power.hpp"

#include <gtest/gtest.h>

#include "enoc/enoc_network.hpp"
#include "noc/traffic.hpp"

namespace sctm::enoc {
namespace {

TEST(EnocPower, ZeroActivityOnlyLeaks) {
  StatRegistry stats;
  const auto e = compute_enoc_energy(stats, "net", 16, 1000, {});
  EXPECT_DOUBLE_EQ(e.buffer_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.link_pj, 0.0);
  EXPECT_GT(e.static_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.total_pj(), e.static_pj);
}

TEST(EnocPower, CountsScaleEnergy) {
  StatRegistry stats;
  stats.counter("net.r0.buffer_writes") = 100;
  stats.counter("net.r0.buffer_reads") = 100;
  stats.counter("net.r1.xbar_traversals") = 50;
  stats.counter("net.r1.link_traversals") = 50;
  stats.counter("net.r1.sa_grants") = 50;
  EnocEnergyParams p;
  const auto e = compute_enoc_energy(stats, "net", 2, 0, p);
  EXPECT_NEAR(e.buffer_pj, 100 * p.buffer_write_pj + 100 * p.buffer_read_pj,
              1e-9);
  EXPECT_NEAR(e.xbar_pj, 50 * p.xbar_traversal_pj, 1e-9);
  EXPECT_NEAR(e.link_pj, 50 * p.link_traversal_pj, 1e-9);
  EXPECT_NEAR(e.arbiter_pj, 50 * p.arbitration_pj, 1e-9);
  EXPECT_DOUBLE_EQ(e.static_pj, 0.0);
}

TEST(EnocPower, IgnoresOtherNetworks) {
  StatRegistry stats;
  stats.counter("other.r0.buffer_writes") = 100;
  const auto e = compute_enoc_energy(stats, "net", 1, 0, {});
  EXPECT_DOUBLE_EQ(e.buffer_pj, 0.0);
}

TEST(EnocPower, WattsConversion) {
  EnergyBreakdown e;
  e.link_pj = 2000.0;  // 2 nJ over 1000 cycles at 2 GHz = 500 ns -> 4 mW
  EXPECT_NEAR(e.watts(1000, 2.0), 0.004, 1e-9);
  EXPECT_DOUBLE_EQ(e.watts(0, 2.0), 0.0);
}

TEST(EnocPower, EndToEndFromSimulation) {
  Simulator sim;
  const auto topo = noc::Topology::mesh(4, 4);
  EnocNetwork net(sim, "enoc", topo, EnocParams{});
  noc::TrafficGenerator::Params tp;
  tp.injection_rate = 0.1;
  tp.warmup = 100;
  tp.measure = 1000;
  noc::TrafficGenerator gen(sim, "gen", net, topo, tp);
  gen.run_to_completion();
  const auto e = compute_enoc_energy(sim.stats(), "enoc", topo.node_count(),
                                     net.active_cycles(), {});
  EXPECT_GT(e.buffer_pj, 0.0);
  EXPECT_GT(e.link_pj, 0.0);
  EXPECT_GT(e.xbar_pj, 0.0);
  EXPECT_GT(e.static_pj, 0.0);
  // More traffic -> more dynamic energy.
  Simulator sim2;
  EnocNetwork net2(sim2, "enoc", topo, EnocParams{});
  noc::TrafficGenerator::Params tp2 = tp;
  tp2.injection_rate = 0.3;
  noc::TrafficGenerator gen2(sim2, "gen", net2, topo, tp2);
  gen2.run_to_completion();
  const auto e2 = compute_enoc_energy(sim2.stats(), "enoc", topo.node_count(),
                                      net2.active_cycles(), {});
  EXPECT_GT(e2.buffer_pj + e2.link_pj, e.buffer_pj + e.link_pj);
}

}  // namespace
}  // namespace sctm::enoc
