# Empty compiler generated dependencies file for sweep_injection.
# This may be replaced when dependencies are built.
