# Empty compiler generated dependencies file for sctm_sim.
# This may be replaced when dependencies are built.
