// Parallel application kernels — the "real workload" substitute.
//
// Each kernel materializes a deterministic per-core operation stream whose
// sharing and communication pattern mirrors a SPLASH-2-era workload class:
//
//   jacobi  nearest-neighbor stencil: boundary exchange with ring neighbors
//   fft     butterfly: stage s exchanges with partner (core XOR 2^s)
//   lu      panel broadcast: per step, one owner writes, all others read
//   sort    sample-sort all-to-all exchange
//   barnes  irregular reads concentrated on a shared tree top (Zipf-ish)
//   stream  private streaming (memory-bound, no sharing)
//
// Line-number construction controls homing: line = node + k * node_count is
// homed at `node` under the modulo-interleaved home map, so "core c's block"
// means lines homed at c's bank. Regions are disjoint per array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sctm::fullsys {

enum class OpKind : std::uint8_t {
  kCompute,  // arg = cycles
  kLoad,     // arg = line number
  kStore,    // arg = line number
  kBarrier,
  kDone,
};

struct Op {
  OpKind kind = OpKind::kDone;
  std::uint64_t arg = 0;
};

struct AppParams {
  std::string name = "jacobi";
  int cores = 16;
  /// Scales per-phase problem size (lines touched per core per iteration).
  int lines_per_core = 32;
  int iterations = 4;
  /// Cycles of compute inserted per touched line.
  int compute_per_line = 8;
  /// Deterministic seed for the irregular kernels.
  std::uint64_t seed = 1;
};

/// Names accepted by build_app().
std::vector<std::string> app_names();

/// Builds the per-core op streams. Throws std::invalid_argument on an
/// unknown name or non-positive sizes. Every stream ends with kBarrier +
/// kDone so all cores finish together (app runtime = last barrier release).
std::vector<std::vector<Op>> build_app(const AppParams& params);

/// Total loads+stores across all cores of a built app (test/report helper).
std::uint64_t count_accesses(const std::vector<std::vector<Op>>& app);

}  // namespace sctm::fullsys
