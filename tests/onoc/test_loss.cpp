#include "onoc/loss.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "onoc/devices.hpp"

namespace sctm::onoc {
namespace {

TEST(Devices, TimeOfFlightScalesWithLength) {
  WaveguideParams wg;
  const double t1 = time_of_flight_s(1.0, wg);
  const double t2 = time_of_flight_s(2.0, wg);
  EXPECT_NEAR(t2, 2 * t1, 1e-18);
  // 1 cm at group index 4.2: ~140 ps.
  EXPECT_NEAR(t1, 1.4e-10, 1e-11);
}

TEST(Devices, RingCountFormula) {
  // 16 nodes, 15 writable channels each, 8 lambdas:
  // modulators 16*15*8 + filters 16*8.
  EXPECT_EQ(total_ring_count(16, 15, 8), 16L * 15 * 8 + 16 * 8);
}

TEST(Loss, ComponentsAreAdditive) {
  LossBudgetInputs in;
  const auto b = compute_loss(in);
  EXPECT_NEAR(b.total_db(),
              b.coupler_db + b.propagation_db + b.through_rings_db +
                  b.crossings_db + b.insertion_db + b.drop_db,
              1e-12);
  EXPECT_GT(b.total_db(), 0.0);
}

TEST(Loss, MoreNodesMoreThroughLoss) {
  LossBudgetInputs small;
  small.nodes = 16;
  LossBudgetInputs big = small;
  big.nodes = 64;
  EXPECT_GT(compute_loss(big).through_rings_db,
            compute_loss(small).through_rings_db);
  EXPECT_GT(compute_loss(big).total_db(), compute_loss(small).total_db());
}

TEST(Loss, MoreWavelengthsMoreThroughLoss) {
  LossBudgetInputs a;
  a.wavelengths = 8;
  LossBudgetInputs b = a;
  b.wavelengths = 64;
  EXPECT_GT(compute_loss(b).through_rings_db, compute_loss(a).through_rings_db);
}

TEST(Laser, PowerCoversLossPlusSensitivityPlusMargin) {
  LossBudgetInputs in;
  const auto budget = compute_loss(in);
  const auto laser = compute_laser(in);
  EXPECT_NEAR(laser.per_wavelength_dbm,
              in.detector.sensitivity_dbm + budget.total_db() +
                  in.laser.power_margin_db,
              1e-12);
}

TEST(Laser, ElectricalExceedsOpticalByEfficiency) {
  LossBudgetInputs in;
  const auto laser = compute_laser(in);
  EXPECT_NEAR(laser.total_electrical_mw * in.laser.wall_plug_efficiency,
              laser.total_optical_mw, 1e-9);
  EXPECT_GT(laser.total_electrical_mw, laser.total_optical_mw);
}

TEST(Laser, PowerGrowsSuperlinearlyWithRadix) {
  LossBudgetInputs a;
  a.nodes = 16;
  a.channels_per_node = 15;
  LossBudgetInputs b = a;
  b.nodes = 64;
  b.channels_per_node = 63;
  const auto pa = compute_laser(a);
  const auto pb = compute_laser(b);
  // 4x nodes -> more than 4x optical power (loss grows too).
  EXPECT_GT(pb.total_optical_mw, 4.0 * pa.total_optical_mw);
}

TEST(Laser, RingHeatingTracksRingCount) {
  LossBudgetInputs in;
  const auto laser = compute_laser(in);
  EXPECT_EQ(laser.ring_count,
            total_ring_count(in.nodes, in.channels_per_node, in.wavelengths));
  EXPECT_NEAR(laser.ring_heating_mw,
              static_cast<double>(laser.ring_count) * in.ring.heating_uw * 1e-3,
              1e-9);
}

}  // namespace
}  // namespace sctm::onoc
