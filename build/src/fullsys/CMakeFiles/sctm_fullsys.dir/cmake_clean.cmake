file(REMOVE_RECURSE
  "CMakeFiles/sctm_fullsys.dir/app.cpp.o"
  "CMakeFiles/sctm_fullsys.dir/app.cpp.o.d"
  "CMakeFiles/sctm_fullsys.dir/barrier.cpp.o"
  "CMakeFiles/sctm_fullsys.dir/barrier.cpp.o.d"
  "CMakeFiles/sctm_fullsys.dir/cache.cpp.o"
  "CMakeFiles/sctm_fullsys.dir/cache.cpp.o.d"
  "CMakeFiles/sctm_fullsys.dir/cmp_system.cpp.o"
  "CMakeFiles/sctm_fullsys.dir/cmp_system.cpp.o.d"
  "CMakeFiles/sctm_fullsys.dir/core_model.cpp.o"
  "CMakeFiles/sctm_fullsys.dir/core_model.cpp.o.d"
  "CMakeFiles/sctm_fullsys.dir/l2bank.cpp.o"
  "CMakeFiles/sctm_fullsys.dir/l2bank.cpp.o.d"
  "CMakeFiles/sctm_fullsys.dir/memctrl.cpp.o"
  "CMakeFiles/sctm_fullsys.dir/memctrl.cpp.o.d"
  "CMakeFiles/sctm_fullsys.dir/params.cpp.o"
  "CMakeFiles/sctm_fullsys.dir/params.cpp.o.d"
  "CMakeFiles/sctm_fullsys.dir/protocol.cpp.o"
  "CMakeFiles/sctm_fullsys.dir/protocol.cpp.o.d"
  "libsctm_fullsys.a"
  "libsctm_fullsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctm_fullsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
