#include "enoc/arbiter.hpp"

#include <cassert>

namespace sctm::enoc {

int RoundRobinArbiter::grant(const std::vector<bool>& requests) {
  assert(static_cast<int>(requests.size()) == width_);
  for (int off = 0; off < width_; ++off) {
    const int idx = (next_ + off) % width_;
    if (requests[idx]) {
      next_ = (idx + 1) % width_;
      return idx;
    }
  }
  return -1;
}

MatrixArbiter::MatrixArbiter(int width) : width_(width) { reset(); }

void MatrixArbiter::reset() {
  prio_.assign(width_, std::vector<bool>(width_, false));
  // Initial total order: lower index beats higher.
  for (int i = 0; i < width_; ++i) {
    for (int j = i + 1; j < width_; ++j) prio_[i][j] = true;
  }
}

int MatrixArbiter::grant(const std::vector<bool>& requests) {
  assert(static_cast<int>(requests.size()) == width_);
  int winner = -1;
  for (int i = 0; i < width_; ++i) {
    if (!requests[i]) continue;
    bool beaten = false;
    for (int j = 0; j < width_; ++j) {
      if (j != i && requests[j] && prio_[j][i]) {
        beaten = true;
        break;
      }
    }
    if (!beaten) {
      winner = i;
      break;
    }
  }
  if (winner >= 0) {
    // Winner becomes lowest priority: everyone beats it, it beats no one.
    for (int j = 0; j < width_; ++j) {
      prio_[winner][j] = false;
      if (j != winner) prio_[j][winner] = true;
    }
  }
  return winner;
}

}  // namespace sctm::enoc
