
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_config.cpp" "tests/CMakeFiles/test_common.dir/common/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_config.cpp.o.d"
  "/root/repo/tests/common/test_histogram.cpp" "tests/CMakeFiles/test_common.dir/common/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_histogram.cpp.o.d"
  "/root/repo/tests/common/test_parallel.cpp" "tests/CMakeFiles/test_common.dir/common/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_parallel.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "/root/repo/tests/common/test_units.cpp" "tests/CMakeFiles/test_common.dir/common/test_units.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sctm_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sctm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/fullsys/CMakeFiles/sctm_fullsys.dir/DependInfo.cmake"
  "/root/repo/build/src/onoc/CMakeFiles/sctm_onoc.dir/DependInfo.cmake"
  "/root/repo/build/src/enoc/CMakeFiles/sctm_enoc.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/sctm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sctm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
