#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace sctm {
namespace {

TEST(EventQueue, EmptyState) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kNoCycle);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, InterleavedPushPopKeepsStability) {
  EventQueue q;
  std::vector<int> order;
  q.push(1, [&] { order.push_back(0); });
  q.push(2, [&] { order.push_back(1); });
  q.pop().fn();
  q.push(2, [&] { order.push_back(2); });
  q.push(2, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, NextTimeTracksHead) {
  EventQueue q;
  q.push(7, [] {});
  q.push(3, [] {});
  EXPECT_EQ(q.next_time(), 3u);
  q.pop();
  EXPECT_EQ(q.next_time(), 7u);
}

TEST(EventQueue, ClearEmpties) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TotalPushedCounts) {
  EventQueue q;
  EXPECT_EQ(q.total_pushed(), 0u);
  q.push(1, [] {});
  q.push(1, [] {});
  q.pop();
  EXPECT_EQ(q.total_pushed(), 2u);
}

// ---------------------------------------------------------------------------
// Two-level structure properties: the wheel/far-heap split must be invisible.
// ---------------------------------------------------------------------------

constexpr Cycle kHorizon = EventQueue::kWheelSize;

TEST(EventQueue, FifoTieAcrossWheelHeapBoundary) {
  // First push to cycle T lands beyond the horizon (far heap); after the
  // window slides past T - kWheelSize, later pushes to the same T land in
  // the wheel. FIFO among the tie must still hold: far entries were pushed
  // first, so they run first.
  EventQueue q;
  const Cycle kT = 100;
  std::vector<int> order;
  q.push(kT, [&] { order.push_back(0); });  // far: 100 >= horizon 64
  q.push(50, [&] { order.push_back(-1); });
  auto p = q.pop();  // services cycle 50, sliding the window to [50, 114)
  p.fn();
  EXPECT_EQ(p.time, 50u);
  q.push(kT, [&] { order.push_back(1); });  // wheel entry for the same cycle
  q.push(kT, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto e = q.pop();
    EXPECT_EQ(e.time, kT);
    e.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(EventQueue, LateBandRunsAfterNormalWithinCycle) {
  EventQueue q;
  std::vector<int> order;
  q.push(5, [&] { order.push_back(10); }, EventQueue::kLate);
  q.push(5, [&] { order.push_back(0); });
  q.push(5, [&] { order.push_back(11); }, EventQueue::kLate);
  q.push(5, [&] { order.push_back(1); });
  q.push(6, [&] { order.push_back(20); }, EventQueue::kLate);
  q.push(6, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 2, 20}));
}

TEST(EventQueue, LateBandOrderHoldsAcrossWheelHeapBoundary) {
  // A far-heap late event still runs after a wheel normal event of the same
  // cycle, even though its sequence number is smaller: band outranks seq.
  EventQueue q;
  const Cycle kT = 200;
  std::vector<int> order;
  q.push(kT, [&] { order.push_back(9); }, EventQueue::kLate);  // far
  q.push(150, [&] { order.push_back(0); });
  q.pop().fn();                             // window now [150, 214)
  q.push(kT, [&] { order.push_back(1); });  // wheel, normal band, larger seq
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 9}));
}

TEST(EventQueue, WheelWrapAroundAtHorizonEdges) {
  // Cycles c and c + kWheelSize share a bucket index; the far heap must keep
  // them separated until the window reaches each.
  EventQueue q;
  std::vector<Cycle> popped;
  for (const Cycle t : {kHorizon - 1, Cycle{0}, 2 * kHorizon - 1, kHorizon,
                        3 * kHorizon}) {
    q.push(t, [] {});
  }
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, (std::vector<Cycle>{0, kHorizon - 1, kHorizon,
                                        2 * kHorizon - 1, 3 * kHorizon}));
}

TEST(EventQueue, HorizonBoundaryPushLandsInFarHeapThenMigrates) {
  EventQueue q;
  std::vector<Cycle> popped;
  q.push(kHorizon, [] {});      // exactly one past the window [0, 64)
  q.push(kHorizon - 1, [] {});  // last wheel slot
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, (std::vector<Cycle>{kHorizon - 1, kHorizon}));
}

TEST(EventQueue, PushBehindWindowStillExecutesInOrder) {
  // The standalone queue (no Simulator in front) accepts pushes behind an
  // already-serviced cycle; they take the far-heap path and still pop in
  // global (time, band, seq) order.
  EventQueue q;
  q.push(90, [] {});
  auto p = q.pop();  // window slides to 90
  EXPECT_EQ(p.time, 90u);
  q.push(10, [] {});
  q.push(5, [] {});
  q.push(91, [] {});
  EXPECT_EQ(q.pop().time, 5u);
  EXPECT_EQ(q.pop().time, 10u);
  EXPECT_EQ(q.pop().time, 91u);
}

TEST(EventQueue, DrainCycleRunsWholeCycleIncludingSameCycleAppends) {
  EventQueue q;
  std::vector<int> order;
  bool stop = false;
  q.push(4, [&] {
    order.push_back(0);
    // Same-cycle append during the drain: runs later this cycle, before the
    // late band.
    q.push(4, [&] { order.push_back(2); });
  });
  q.push(4, [&] { order.push_back(1); });
  q.push(4, [&] { order.push_back(3); }, EventQueue::kLate);
  q.push(5, [&] { order.push_back(4); });
  const auto n = q.drain_cycle(4, stop);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 5u);
}

TEST(EventQueue, DrainCycleRechecksNormalBandBeforeEachLateEvent) {
  // A late event scheduling a same-cycle normal event: the normal band runs
  // first again before the remaining late events — the exact order the old
  // per-event heap produced from its (time, band, seq) comparator.
  EventQueue q;
  std::vector<int> order;
  bool stop = false;
  q.push(7, [&] { order.push_back(0); });
  q.push(7, [&] {
    order.push_back(10);
    q.push(7, [&] { order.push_back(1); });
  }, EventQueue::kLate);
  q.push(7, [&] { order.push_back(11); }, EventQueue::kLate);
  q.drain_cycle(7, stop);
  EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 11}));
}

TEST(EventQueue, DrainCycleStopsMidCycleAndLeavesRemainder) {
  EventQueue q;
  std::vector<int> order;
  bool stop = false;
  q.push(3, [&] { order.push_back(0); });
  q.push(3, [&] {
    order.push_back(1);
    stop = true;
  });
  q.push(3, [&] { order.push_back(2); });
  const auto n = q.drain_cycle(3, stop);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 3u);
  stop = false;
  EXPECT_EQ(q.drain_cycle(3, stop), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(q.empty());
}

// Reference model: the original single std::priority_queue keyed on
// (time, band, seq). The two-level queue must be observationally identical.
struct RefModel {
  struct Entry {
    Cycle time;
    int band;
    std::uint64_t seq;
  };
  std::vector<Entry> entries;
  std::uint64_t next_seq = 0;

  void push(Cycle t, int band) { entries.push_back({t, band, next_seq++}); }
  Entry pop() {
    auto best = entries.begin();
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->time != best->time ? it->time < best->time
          : it->band != best->band ? it->band < best->band
                                   : it->seq < best->seq) {
        best = it;
      }
    }
    Entry out = *best;
    entries.erase(best);
    return out;
  }
};

TEST(EventQueue, RandomizedEquivalenceWithReferenceModel) {
  // Drive the real queue and the reference model with an identical random
  // schedule — bursty same-cycle batches, near/far mixtures, interleaved
  // pops — and require the exact same (time, seq) pop sequence.
  Rng rng(1234);
  EventQueue q;
  RefModel ref;
  std::vector<std::uint64_t> popped_seq;
  Cycle now = 0;

  for (int round = 0; round < 2000; ++round) {
    const auto n_push = rng.next_below(4);
    for (std::uint64_t i = 0; i < n_push; ++i) {
      // Mix: mostly near-future (same cycle / within the wheel), a tail of
      // far-future beyond the horizon, crossing wrap boundaries.
      const auto r = rng.next_below(100);
      Cycle dt;
      if (r < 40) {
        dt = 0;
      } else if (r < 80) {
        dt = rng.next_below(kHorizon);
      } else {
        dt = kHorizon - 2 + rng.next_below(3 * kHorizon);
      }
      const int band = rng.next_below(5) == 0 ? EventQueue::kLate
                                              : EventQueue::kNormal;
      const std::uint64_t seq = ref.next_seq;
      ref.push(now + dt, band);
      const auto got = q.push(
          now + dt, [seq, &popped_seq] { popped_seq.push_back(seq); },
          static_cast<EventQueue::Band>(band));
      ASSERT_EQ(got, seq);
    }
    const auto n_pop = rng.next_below(4);
    for (std::uint64_t i = 0; i < n_pop && !q.empty(); ++i) {
      auto real = q.pop();
      const auto expect = ref.pop();
      ASSERT_EQ(real.time, expect.time) << "round " << round;
      real.fn();
      ASSERT_EQ(popped_seq.back(), expect.seq) << "round " << round;
      ASSERT_GE(real.time, now);
      now = real.time;
    }
    ASSERT_EQ(q.size(), ref.entries.size());
    ASSERT_EQ(q.empty(), ref.entries.empty());
    if (!q.empty()) {
      auto ref_next = ref.entries.front().time;
      for (const auto& e : ref.entries) ref_next = std::min(ref_next, e.time);
      ASSERT_EQ(q.next_time(), ref_next);
    }
  }
  // Drain the rest.
  while (!q.empty()) {
    auto real = q.pop();
    const auto expect = ref.pop();
    ASSERT_EQ(real.time, expect.time);
    real.fn();
    ASSERT_EQ(popped_seq.back(), expect.seq);
  }
}

}  // namespace
}  // namespace sctm
