#include "tracestore/chunk_codec.hpp"

#include <stdexcept>
#include <string>

#include "tracestore/format.hpp"

namespace sctm::tracestore {
namespace {

/// Bounds-checked LEB128 cursor for decode.
class VarintReader {
 public:
  VarintReader(const char* data, std::size_t len) : data_(data), len_(len) {}

  std::uint64_t get() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= len_) {
        throw std::runtime_error("chunk payload truncated at byte " +
                                 std::to_string(pos_));
      }
      const auto b = static_cast<unsigned char>(data_[pos_++]);
      if (shift == 63 && b > 1) {
        throw std::runtime_error("overlong varint at byte " +
                                 std::to_string(pos_ - 1));
      }
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) {
        throw std::runtime_error("overlong varint at byte " +
                                 std::to_string(pos_ - 1));
      }
    }
  }

  std::uint8_t get_byte() {
    if (pos_ >= len_) {
      throw std::runtime_error("chunk payload truncated at byte " +
                               std::to_string(pos_));
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return len_ - pos_; }

 private:
  const char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace

void ChunkEncoder::add(const trace::TraceRecord& r) {
  put_varint(buf_, zigzag(wrap_delta(r.id, prev_id_)));
  put_varint(buf_, zigzag(r.src));
  put_varint(buf_, zigzag(r.dst));
  put_varint(buf_, r.size_bytes);
  buf_.push_back(static_cast<char>(r.cls));
  buf_.push_back(static_cast<char>(r.proto));
  put_varint(buf_, zigzag(wrap_delta(r.inject_time, prev_inject_)));
  put_varint(buf_, zigzag(wrap_delta(r.arrive_time, r.inject_time)));
  put_varint(buf_, r.deps.size());
  for (const auto& d : r.deps) {
    put_varint(buf_, zigzag(wrap_delta(r.id, d.parent)));
    put_varint(buf_, d.slack);
  }
  prev_id_ = r.id;
  prev_inject_ = r.inject_time;
}

void decode_chunk(const char* data, std::size_t len,
                  std::uint32_t expect_count,
                  std::vector<trace::TraceRecord>& out) {
  VarintReader in(data, len);
  std::uint64_t prev_id = 0;
  std::uint64_t prev_inject = 0;
  out.reserve(out.size() + expect_count);
  for (std::uint32_t i = 0; i < expect_count; ++i) {
    trace::TraceRecord r;
    r.id = prev_id + static_cast<std::uint64_t>(unzigzag(in.get()));
    const auto src = unzigzag(in.get());
    const auto dst = unzigzag(in.get());
    if (src < INT32_MIN || src > INT32_MAX || dst < INT32_MIN ||
        dst > INT32_MAX) {
      throw std::runtime_error("node id out of range in record " +
                               std::to_string(i));
    }
    r.src = static_cast<NodeId>(src);
    r.dst = static_cast<NodeId>(dst);
    const auto size = in.get();
    if (size > UINT32_MAX) {
      throw std::runtime_error("message size out of range in record " +
                               std::to_string(i));
    }
    r.size_bytes = static_cast<std::uint32_t>(size);
    const auto cls = in.get_byte();
    if (cls >= noc::kMsgClassCount) {
      throw std::runtime_error("invalid message class in record " +
                               std::to_string(i));
    }
    r.cls = static_cast<noc::MsgClass>(cls);
    r.proto = in.get_byte();
    r.inject_time =
        prev_inject + static_cast<std::uint64_t>(unzigzag(in.get()));
    r.arrive_time =
        r.inject_time + static_cast<std::uint64_t>(unzigzag(in.get()));
    const auto deps = in.get();
    // Each dependency is at least 2 bytes; a count past the remaining
    // payload is corruption, not a large trace.
    if (deps > in.remaining() / 2 + 1) {
      throw std::runtime_error("dependency count " + std::to_string(deps) +
                               " exceeds remaining payload in record " +
                               std::to_string(i));
    }
    r.deps.reserve(deps);
    for (std::uint64_t d = 0; d < deps; ++d) {
      trace::TraceDep dep;
      dep.parent = r.id - static_cast<std::uint64_t>(unzigzag(in.get()));
      dep.slack = in.get();
      r.deps.push_back(dep);
    }
    prev_id = r.id;
    prev_inject = r.inject_time;
    out.push_back(std::move(r));
  }
  if (in.remaining() != 0) {
    throw std::runtime_error(std::to_string(in.remaining()) +
                             " trailing bytes after last record in chunk");
  }
}

}  // namespace sctm::tracestore
