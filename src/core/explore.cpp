#include "core/explore.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "common/parallel.hpp"
#include "core/replay_session.hpp"

namespace sctm::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One worker: drains candidates off the shared counter with a single
/// long-lived ReplaySession. The session's spec-aware rebind diffs each
/// candidate against the bound network: equal specs reuse it through the
/// reset protocol, parameter-only changes on the same kind/topology patch
/// it in place, and everything else rebuilds — always keeping the session's
/// trace binding, dependency CSR and pass buffers.
void evaluate_candidates(const ReplayTrace& rt,
                         const std::vector<Candidate>& candidates,
                         const ReplayConfig& config,
                         std::atomic<std::size_t>& next,
                         std::vector<ExploreResult>& out) {
  std::optional<ReplaySession> session;
  for (;;) {
    const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
    if (i >= candidates.size()) return;
    const auto t0 = std::chrono::steady_clock::now();
    const NetSpec& spec = candidates[i].spec;
    if (!session) {
      session.emplace(rt, spec, config);
    } else {
      session->rebind(spec);
    }
    const ReplayResult& res = session->run();
    const Histogram h = res.latency_histogram();
    out[i] = ExploreResult{candidates[i].name,     res.runtime,
                           h.mean(),               h.percentile(0.99),
                           res.iterations,         seconds_since(t0)};
  }
}

}  // namespace

std::vector<ExploreResult> explore(const trace::Trace& trace,
                                   const std::vector<Candidate>& candidates,
                                   const ReplayConfig& config,
                                   unsigned threads) {
  std::vector<ExploreResult> out(candidates.size());
  if (candidates.empty()) return out;

  // Ingest (and validate) the trace once; every worker replays the same
  // read-only ReplayTrace.
  const ReplayTrace rt(trace);
  if (rt.empty()) {
    // Mirror replay()'s empty-trace contract: no network is ever built.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i].name = candidates[i].name;
    }
  } else {
    // Same `--threads 0` resolution as WorkerPool lane counts (S2: one
    // convention everywhere), then clamped to the available work.
    unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(resolve_threads(threads), candidates.size()));
    std::atomic<std::size_t> next{0};
    if (n <= 1) {
      evaluate_candidates(rt, candidates, config, next, out);
    } else {
      // Hand-rolled pool (parallel_for has no per-worker state): each worker
      // owns one session; the first exception wins and is rethrown after
      // every worker has joined.
      std::mutex err_mu;
      std::exception_ptr first_error;
      auto worker = [&] {
        try {
          evaluate_candidates(rt, candidates, config, next, out);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
          // Let the counter drain so sibling workers exit promptly.
          next.store(candidates.size(), std::memory_order_relaxed);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(n);
      for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
      for (auto& t : pool) t.join();
      if (first_error) std::rethrow_exception(first_error);
    }
  }

  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.runtime != b.runtime) return a.runtime < b.runtime;
    return a.name < b.name;
  });
  return out;
}

}  // namespace sctm::core
