// Kernel-swap determinism regression (guards DESIGN.md §4 rules (1)-(2)).
//
// The event kernel's ordering contract — (time, band, seq) dispatch, late
// band after every normal event of the cycle — is what makes (a) execution
// runs bit-reproducible and (b) SCTM replay on the capture network a
// bit-exact fixed point. This suite pins both properties across every
// network backend whose arbitration is fully driven by replayed messages
// (ideal, electrical, ONOC-token, ONOC-SWMR, hybrid), so any future queue
// change that perturbs intra-cycle order fails loudly here rather than as a
// silent accuracy drift in the paper figures.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/driver.hpp"

namespace sctm {
namespace {

using core::NetKind;

struct Case {
  NetKind kind;
  const char* app;
};

std::string case_name(const Case& c) {
  std::string s = std::string(core::to_string(c.kind)) + "_" + c.app;
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class KernelDeterminism : public ::testing::TestWithParam<Case> {};

TEST_P(KernelDeterminism, ReExecutionAndFixedPointAreBitExact) {
  const auto [kind, app_name] = GetParam();

  fullsys::AppParams app;
  app.name = app_name;
  app.cores = 16;
  app.lines_per_core = 6;
  app.iterations = 1;

  core::NetSpec spec;
  spec.kind = kind;

  // Rule-level guard 1: execution-driven runs are bit-reproducible — the
  // kernel never lets container internals break same-cycle ties.
  const auto first = core::run_execution(app, spec, {});
  const auto second = core::run_execution(app, spec, {});
  ASSERT_GT(first.trace.records.size(), 50u);
  EXPECT_EQ(first.runtime, second.runtime);
  EXPECT_EQ(first.events, second.events);
  ASSERT_EQ(first.trace, second.trace);

  // Rule-level guard 2: SCTM replay on the capture network reproduces the
  // captured schedule exactly (late-band injection flushes in capture order,
  // router pickup on the cycle after injection).
  const auto rep = core::run_replay(first.trace, spec, {});
  ASSERT_EQ(rep.result.inject_time.size(), first.trace.records.size());
  for (std::size_t i = 0; i < first.trace.records.size(); ++i) {
    ASSERT_EQ(rep.result.inject_time[i], first.trace.records[i].inject_time)
        << "record " << i << " injected off the captured cycle";
    ASSERT_EQ(rep.result.arrive_time[i], first.trace.records[i].arrive_time)
        << "record " << i << " arrived off the captured cycle";
  }
  EXPECT_EQ(rep.result.runtime, first.trace.capture_runtime);
}

std::vector<Case> all_cases() {
  const NetKind kinds[] = {NetKind::kIdeal, NetKind::kEnoc,
                           NetKind::kOnocToken, NetKind::kOnocSwmr,
                           NetKind::kHybrid};
  std::vector<Case> out;
  for (const auto k : kinds) {
    out.push_back({k, "fft"});
  }
  // A second traffic shape (nearest-neighbor stencil) on the two kinds with
  // the most intra-cycle arbitration.
  out.push_back({NetKind::kEnoc, "jacobi"});
  out.push_back({NetKind::kOnocToken, "jacobi"});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, KernelDeterminism,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return case_name(info.param); });

}  // namespace
}  // namespace sctm
