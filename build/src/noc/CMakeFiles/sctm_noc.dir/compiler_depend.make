# Empty compiler generated dependencies file for sctm_noc.
# This may be replaced when dependencies are built.
