file(REMOVE_RECURSE
  "CMakeFiles/sctm_enoc.dir/arbiter.cpp.o"
  "CMakeFiles/sctm_enoc.dir/arbiter.cpp.o.d"
  "CMakeFiles/sctm_enoc.dir/enoc_network.cpp.o"
  "CMakeFiles/sctm_enoc.dir/enoc_network.cpp.o.d"
  "CMakeFiles/sctm_enoc.dir/params.cpp.o"
  "CMakeFiles/sctm_enoc.dir/params.cpp.o.d"
  "CMakeFiles/sctm_enoc.dir/power.cpp.o"
  "CMakeFiles/sctm_enoc.dir/power.cpp.o.d"
  "CMakeFiles/sctm_enoc.dir/router.cpp.o"
  "CMakeFiles/sctm_enoc.dir/router.cpp.o.d"
  "libsctm_enoc.a"
  "libsctm_enoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctm_enoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
