#include "noc/routing.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace sctm::noc {
namespace {

// Walks a packet from src to dst always taking the given candidate index
// (mod candidate count); asserts progress and returns the hop count.
int walk(const Topology& topo, RoutingAlgo algo, NodeId src, NodeId dst,
         int pick = 0) {
  NodeId cur = src;
  int hops = 0;
  while (cur != dst) {
    const auto cands = route_candidates(topo, algo, src, cur, dst);
    EXPECT_FALSE(cands.empty());
    const int dir = cands[static_cast<std::size_t>(pick) % cands.size()];
    const NodeId next = topo.neighbor(cur, dir);
    EXPECT_NE(next, kInvalidNode);
    // Minimal routing: every hop reduces distance by exactly one.
    EXPECT_EQ(topo.distance(next, dst), topo.distance(cur, dst) - 1)
        << "non-minimal hop " << cur << "->" << next;
    cur = next;
    if (++hops > topo.node_count() * 2) {
      ADD_FAILURE() << "routing loop " << src << "->" << dst;
      break;
    }
  }
  return hops;
}

TEST(Routing, XYReachesEveryPairMinimally) {
  const auto t = Topology::mesh(4, 4);
  for (NodeId s = 0; s < t.node_count(); ++s) {
    for (NodeId d = 0; d < t.node_count(); ++d) {
      if (s == d) continue;
      EXPECT_EQ(walk(t, RoutingAlgo::kXY, s, d), t.distance(s, d));
    }
  }
}

TEST(Routing, XYGoesXFirst) {
  const auto t = Topology::mesh(4, 4);
  // From (0,0) to (2,2): must start east.
  EXPECT_EQ(route_first(t, RoutingAlgo::kXY, 0, 0, 10), kEast);
  // Same column: goes vertical.
  EXPECT_EQ(route_first(t, RoutingAlgo::kXY, 0, 0, 8), kSouth);
}

TEST(Routing, YXGoesYFirst) {
  const auto t = Topology::mesh(4, 4);
  EXPECT_EQ(route_first(t, RoutingAlgo::kYX, 0, 0, 10), kSouth);
  EXPECT_EQ(route_first(t, RoutingAlgo::kYX, 0, 0, 2), kEast);
}

TEST(Routing, YXReachesEveryPairMinimally) {
  const auto t = Topology::mesh(3, 5);
  for (NodeId s = 0; s < t.node_count(); ++s) {
    for (NodeId d = 0; d < t.node_count(); ++d) {
      if (s != d) EXPECT_EQ(walk(t, RoutingAlgo::kYX, s, d), t.distance(s, d));
    }
  }
}

TEST(Routing, OddEvenMinimalAndComplete) {
  const auto t = Topology::mesh(5, 5);
  for (NodeId s = 0; s < t.node_count(); ++s) {
    for (NodeId d = 0; d < t.node_count(); ++d) {
      if (s == d) continue;
      // Exercise both extreme adaptive choices.
      EXPECT_EQ(walk(t, RoutingAlgo::kOddEven, s, d, 0), t.distance(s, d));
      EXPECT_EQ(walk(t, RoutingAlgo::kOddEven, s, d, 1), t.distance(s, d));
    }
  }
}

TEST(Routing, OddEvenForbidsEastTurnsInEvenColumns) {
  const auto t = Topology::mesh(6, 6);
  for (NodeId s = 0; s < t.node_count(); ++s) {
    for (NodeId d = 0; d < t.node_count(); ++d) {
      if (s == d) continue;
      for (NodeId cur = 0; cur < t.node_count(); ++cur) {
        const Coord c = t.coords(cur);
        const Coord dc = t.coords(d);
        const Coord sc = t.coords(s);
        if (dc.x <= c.x) continue;           // only eastbound cases
        if (c.x % 2 != 0 || c.x == sc.x) continue;  // rule applies: even, not source col
        if (dc.y == c.y) continue;
        const auto cands = route_candidates(t, RoutingAlgo::kOddEven, s, cur, d);
        for (const int dir : cands) {
          EXPECT_TRUE(dir == kEast)
              << "EN/ES turn allowed in even column at " << cur;
        }
      }
    }
  }
}

TEST(Routing, RingShortestPicksShortArc) {
  const auto t = Topology::ring(8);
  EXPECT_EQ(route_first(t, RoutingAlgo::kRingShortest, 0, 0, 2), kRingCw);
  EXPECT_EQ(route_first(t, RoutingAlgo::kRingShortest, 0, 0, 6), kRingCcw);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId d = 0; d < 8; ++d) {
      if (s != d) {
        EXPECT_EQ(walk(t, RoutingAlgo::kRingShortest, s, d), t.distance(s, d));
      }
    }
  }
}

TEST(Routing, TorusDorMinimal) {
  const auto t = Topology::torus(4, 4);
  for (NodeId s = 0; s < t.node_count(); ++s) {
    for (NodeId d = 0; d < t.node_count(); ++d) {
      if (s != d) {
        EXPECT_EQ(walk(t, RoutingAlgo::kTorusDor, s, d), t.distance(s, d));
      }
    }
  }
}

TEST(Routing, TorusDorFinishesXBeforeY) {
  const auto t = Topology::torus(4, 4);
  // 0 -> 5 needs x then y; first hop must be in x.
  const int dir = route_first(t, RoutingAlgo::kTorusDor, 0, 0, 5);
  EXPECT_TRUE(dir == kEast || dir == kWest);
}

TEST(Routing, SelfRouteIsEmpty) {
  const auto t = Topology::mesh(3, 3);
  EXPECT_TRUE(route_candidates(t, RoutingAlgo::kXY, 4, 4, 4).empty());
}

TEST(Routing, InvalidNodeThrows) {
  const auto t = Topology::mesh(3, 3);
  EXPECT_THROW(route_candidates(t, RoutingAlgo::kXY, 0, 0, 99),
               std::logic_error);
}

TEST(Routing, CompatibilityMatrix) {
  EXPECT_TRUE(compatible(Topology::mesh(2, 2), RoutingAlgo::kXY));
  EXPECT_FALSE(compatible(Topology::torus(2, 2), RoutingAlgo::kXY));
  EXPECT_TRUE(compatible(Topology::torus(2, 2), RoutingAlgo::kTorusDor));
  EXPECT_TRUE(compatible(Topology::ring(4), RoutingAlgo::kRingShortest));
  EXPECT_FALSE(compatible(Topology::ring(4), RoutingAlgo::kOddEven));
}

TEST(Routing, DefaultAlgoPerTopology) {
  EXPECT_EQ(default_algo(Topology::mesh(2, 2)), RoutingAlgo::kXY);
  EXPECT_EQ(default_algo(Topology::torus(2, 2)), RoutingAlgo::kTorusDor);
  EXPECT_EQ(default_algo(Topology::ring(4)), RoutingAlgo::kRingShortest);
}

}  // namespace
}  // namespace sctm::noc
