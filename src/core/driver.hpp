// Experiment driver: the one-stop API the examples and benches use.
//
// Wraps the three simulation modes the paper compares:
//   execution-driven  - CmpSystem over a real network (ground truth, slow)
//   naive trace       - capture once, replay frozen timestamps (fast, wrong)
//   self-correcting   - capture once, dependency-corrected replay
// and builds networks from a small declarative spec so a bench can sweep
// network kinds/parameters in a few lines.
#pragma once

#include <memory>
#include <string>

#include "common/run_metrics.hpp"
#include "core/replay.hpp"
#include "enoc/enoc_network.hpp"
#include "fault/fault_spec.hpp"
#include "fullsys/cmp_system.hpp"
#include "onoc/hybrid_network.hpp"
#include "onoc/onoc_network.hpp"
#include "trace/record.hpp"

namespace sctm::core {

enum class NetKind { kIdeal, kEnoc, kOnocToken, kOnocSetup, kOnocSwmr, kHybrid };

const char* to_string(NetKind k);

struct NetSpec {
  NetKind kind = NetKind::kEnoc;
  noc::Topology topo = noc::Topology::mesh(4, 4);
  noc::IdealNetwork::Params ideal{};
  enoc::EnocParams enoc{};
  onoc::OnocParams onoc{};
  onoc::HybridParams hybrid{};
  /// Fault regime (default-constructed = inert: no model installed, the
  /// fault-free paths and --stats-json output are byte-identical to before
  /// this field existed).
  fault::FaultSpec fault{};

  std::string describe() const;

  /// Memberwise equality across kind, topology and every parameter block.
  /// Exploration keys session reuse on this: equal specs may share one
  /// constructed network across resets, unequal specs force a rebuild
  /// (parameters are baked into components at construction).
  bool operator==(const NetSpec&) const = default;
};

/// Factory suitable for replay(); also used internally for execution runs.
NetworkFactory make_factory(const NetSpec& spec);

struct ExecutionRun {
  trace::Trace trace;     // capture of the run (also the ground-truth record)
  Cycle runtime = 0;      // application runtime in cycles
  double wall_seconds = 0;
  std::uint64_t events = 0;  // kernel events executed
  /// Full stat-registry dump of the run (gem5-style stats file content).
  std::string stats_report;
  /// Snapshot of the run's stat registry (network counters, cache/core/mc
  /// stats — everything Components registered) for JSON export.
  StatRegistry stats;
  /// Per-phase timing: "build" (network + CMP construction), "execute"
  /// (kernel run, with its event count), "finalize_trace" (validation).
  std::vector<PhaseMetrics> phases;
};

/// Runs the application execution-driven on `net`, capturing a trace.
ExecutionRun run_execution(const fullsys::AppParams& app, const NetSpec& net,
                           const fullsys::FullSysParams& sys);

struct ReplayRun {
  ReplayResult result;
  double wall_seconds = 0;
  /// Per-phase timing: one "iter N" phase per replay pass (events = kernel
  /// events of that pass).
  std::vector<PhaseMetrics> phases;
};

/// Replays `trace` over a fresh network built from `net`.
ReplayRun run_replay(const trace::Trace& trace, const NetSpec& net,
                     const ReplayConfig& config);

/// Same over an already-ingested ReplayTrace — the streaming path: build it
/// once (load_replay_trace / ReplayTrace::from_store) and reuse it across
/// target networks without re-validating or re-resolving dependencies.
ReplayRun run_replay(const ReplayTrace& rt, const NetSpec& net,
                     const ReplayConfig& config);

/// Loads a trace file straight into replay form, dispatching on the on-disk
/// format: v2 containers stream chunk-at-a-time into the flat arrays (peak
/// memory is the replay representation plus one decoded chunk, not the whole
/// record vector-of-vectors), v1 monoliths go through the in-memory reader.
ReplayTrace load_replay_trace(const std::string& path);

/// Short provenance string identifying `trace` in run manifests
/// ("<app>@<capture-net>/seed=S/records=N").
std::string trace_id(const trace::Trace& trace);
std::string trace_id(const ReplayTrace& rt);

/// Assembles the standard metrics document for an execution-driven run:
/// manifest (tool, caller-supplied timestamp, app/net config echo), the
/// run's phases, full stat-registry snapshot, a "latency" histogram, and a
/// results object with runtime/messages/events.
RunMetrics metrics_for_execution(const fullsys::AppParams& app,
                                 const NetSpec& net, const ExecutionRun& run,
                                 std::string tool, std::string created);

/// Same for a replay run: manifest echoes the trace id, target net, and
/// replay mode/window; phases carry the per-iteration records; results hold
/// runtime/iterations/residual plus the per-iteration convergence log.
RunMetrics metrics_for_replay(const trace::Trace& trace, const NetSpec& net,
                              const ReplayConfig& config, const ReplayRun& run,
                              std::string tool, std::string created);
RunMetrics metrics_for_replay(const ReplayTrace& rt, const NetSpec& net,
                              const ReplayConfig& config, const ReplayRun& run,
                              std::string tool, std::string created);

}  // namespace sctm::core
