#include "analytic/screen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "core/driver.hpp"
#include "core/explore.hpp"
#include "fullsys/app.hpp"

namespace sctm::analytic {
namespace {

using core::Candidate;
using core::ExploreConfig;
using core::NetKind;
using core::NetSpec;

core::ReplayTrace capture(const std::string& app_name) {
  fullsys::AppParams app;
  app.name = app_name;
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  NetSpec spec;
  spec.kind = NetKind::kEnoc;
  return core::ReplayTrace(core::run_execution(app, spec, {}).trace);
}

/// One candidate per network kind — the design space the recall gate runs.
std::vector<Candidate> all_kinds_space() {
  std::vector<Candidate> out;
  for (const auto kind :
       {NetKind::kIdeal, NetKind::kEnoc, NetKind::kOnocToken,
        NetKind::kOnocSetup, NetKind::kOnocSwmr, NetKind::kHybrid}) {
    NetSpec s;
    s.kind = kind;
    out.push_back({core::to_string(kind), s});
  }
  return out;
}

TEST(Screen, EmptyCandidateListThrows) {
  const auto rt = capture("fft");
  EXPECT_THROW(explore_screened(rt, {}, {}), std::invalid_argument);
  ExploreConfig cfg;
  cfg.screen_top_k = 2;
  EXPECT_THROW(explore_screened(rt, {}, cfg), std::invalid_argument);
}

TEST(Screen, DisabledScreenMatchesFullExplore) {
  const auto rt = capture("fft");
  const auto space = all_kinds_space();
  const auto full = core::explore(rt, space, {});
  const auto screened = explore_screened(rt, space, {});  // top_k = 0
  ASSERT_EQ(full.size(), screened.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].name, screened[i].name);
    EXPECT_EQ(full[i].runtime, screened[i].runtime);
    EXPECT_TRUE(screened[i].replayed);
    EXPECT_EQ(screened[i].analytic_rank, 0u);  // no screen ran
  }
}

TEST(Screen, OversizedTopKDelegatesToFullReplay) {
  const auto rt = capture("fft");
  const auto space = all_kinds_space();
  ExploreConfig cfg;
  cfg.screen_top_k = space.size() + 5;
  const auto results = explore_screened(rt, space, cfg);
  for (const auto& r : results) {
    EXPECT_TRUE(r.replayed);
    EXPECT_EQ(r.analytic_rank, 0u);
  }
}

TEST(Screen, ConfirmsExactlyTopK) {
  const auto rt = capture("fft");
  const auto space = all_kinds_space();
  ExploreConfig cfg;
  cfg.screen_top_k = 2;
  const auto results = explore_screened(rt, space, cfg);
  ASSERT_EQ(results.size(), space.size());
  std::size_t replayed = 0;
  std::set<std::size_t> ranks;
  for (const auto& r : results) {
    replayed += r.replayed ? 1 : 0;
    ASSERT_GE(r.analytic_rank, 1u);
    ASSERT_LE(r.analytic_rank, space.size());
    ranks.insert(r.analytic_rank);
    if (r.replayed) {
      EXPECT_GT(r.runtime, 0u);
      // Only analytic winners get replayed.
      EXPECT_LE(r.analytic_rank, cfg.screen_top_k);
    } else {
      EXPECT_EQ(r.runtime, 0u);
      EXPECT_GT(r.est_runtime, 0.0);
    }
  }
  EXPECT_EQ(replayed, 2u);
  EXPECT_EQ(ranks.size(), space.size());  // a permutation of 1..n
  // Confirmed candidates lead the table; the analytic tail is sorted by
  // estimate.
  for (std::size_t i = 0; i + 1 < results.size(); ++i) {
    EXPECT_GE(results[i].replayed, results[i + 1].replayed);
    if (!results[i].replayed && !results[i + 1].replayed) {
      EXPECT_LE(results[i].est_runtime, results[i + 1].est_runtime);
    }
  }
}

TEST(Screen, Deterministic) {
  const auto rt = capture("lu");
  const auto space = all_kinds_space();
  ExploreConfig cfg;
  cfg.screen_top_k = 3;
  const auto a = explore_screened(rt, space, cfg);
  const auto b = explore_screened(rt, space, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].replayed, b[i].replayed);
    EXPECT_EQ(a[i].analytic_rank, b[i].analytic_rank);
    EXPECT_EQ(a[i].runtime, b[i].runtime);
    EXPECT_DOUBLE_EQ(a[i].est_runtime, b[i].est_runtime);
  }
}

TEST(Screen, TopThreeRecallAcrossShippedWorkloads) {
  // The headline accuracy gate (mirrored at bench scale by
  // fig_screen_error): for every shipped workload, at least 2 of the true
  // top-3 designs under full replay must survive a top-3 analytic screen
  // over all six network kinds.
  const auto space = all_kinds_space();
  for (const auto& app : fullsys::app_names()) {
    SCOPED_TRACE(app);
    const auto rt = capture(app);
    const auto truth = core::explore(rt, space, {});
    ExploreConfig cfg;
    cfg.screen_top_k = 3;
    const auto screened = explore_screened(rt, space, cfg);
    std::set<std::string> confirmed;
    for (const auto& r : screened) {
      if (r.replayed) confirmed.insert(r.name);
    }
    int hits = 0;
    for (std::size_t i = 0; i < 3 && i < truth.size(); ++i) {
      hits += confirmed.count(truth[i].name) ? 1 : 0;
    }
    EXPECT_GE(hits, 2) << "top-3 recall below 2/3 for " << app;
  }
}

TEST(Screen, ShippedScreenConfigParses) {
  // Locate configs/ from this source file (same resolution as
  // Experiment.ShippedConfigsParse).
  std::string root = __FILE__;
  const auto cut = root.rfind("tests/");
  root = cut == std::string::npos ? std::string() : root.substr(0, cut);
  const std::string path = root + "configs/explore_screen.cfg";
  Config cfg;
  try {
    cfg = Config::from_file(path);
  } catch (const std::exception&) {
    GTEST_SKIP() << "configs/ not reachable from build layout";
  }
  const auto candidates = core::candidates_from_config(cfg, path);
  EXPECT_GE(candidates.size(), 6u);
  const auto ecfg = core::explore_config_from(cfg);
  EXPECT_EQ(ecfg.screen_top_k, 3u);
}

}  // namespace
}  // namespace sctm::analytic
