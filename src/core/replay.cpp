#include "core/replay.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"
#include "core/replay_session.hpp"

namespace sctm::core {

void EligibilityBatcher::sort_batch(std::vector<std::uint32_t>& batch) {
  WorkerPool* pool = sort_pool_;
  std::size_t nshards = 1;
  if (pool != nullptr && pool->size() > 1 &&
      batch.size() >= static_cast<std::size_t>(sort_grain_) * pool->size()) {
    nshards = std::min<std::size_t>(pool->size(), batch.size());
  }
  if (nshards <= 1) {
    std::sort(batch.begin(), batch.end());
    return;
  }

  // Per-lane chunk sort over contiguous ranges...
  const std::size_t n = batch.size();
  pool->run([&](unsigned lane) {
    if (lane >= nshards) return;
    std::sort(batch.begin() + static_cast<std::ptrdiff_t>(n * lane / nshards),
              batch.begin() +
                  static_cast<std::ptrdiff_t>(n * (lane + 1) / nshards));
  });

  // ...then a serial k-way merge into the retained scratch. Record indices
  // are unique, so min-picking is strict and the output equals what one
  // std::sort over the whole batch produces — sharding is unobservable.
  // (std::inplace_merge would allocate; this path must stay heap-free in
  // steady state.)
  merge_scratch_.clear();
  if (merge_cursor_.size() < nshards) merge_cursor_.resize(nshards);
  for (std::size_t s = 0; s < nshards; ++s) {
    merge_cursor_[s] = n * s / nshards;
  }
  for (std::size_t out = 0; out < n; ++out) {
    std::size_t best = nshards;
    std::uint32_t best_v = 0;
    for (std::size_t s = 0; s < nshards; ++s) {
      if (merge_cursor_[s] >= n * (s + 1) / nshards) continue;
      const std::uint32_t v = batch[merge_cursor_[s]];
      if (best == nshards || v < best_v) {
        best = s;
        best_v = v;
      }
    }
    merge_scratch_.push_back(best_v);
    ++merge_cursor_[best];
  }
  batch.swap(merge_scratch_);
}

const char* to_string(ReplayMode m) {
  switch (m) {
    case ReplayMode::kNaive: return "naive";
    case ReplayMode::kSelfCorrecting: return "self-correcting";
  }
  return "?";
}

Histogram ReplayResult::latency_histogram() const {
  Histogram h;
  for (std::size_t i = 0; i < inject_time.size(); ++i) {
    h.add(arrive_time[i] - inject_time[i]);
  }
  return h;
}

KeptDepsCsr build_kept_deps(const ReplayTrace& rt,
                            const ReplayConfig& config) {
  const std::uint32_t n = rt.size();
  const bool naive = (config.mode == ReplayMode::kNaive);
  const std::uint32_t window = config.dependency_window;

  KeptDepsCsr csr;
  csr.offset.assign(n + 1, 0);
  if (naive) return csr;

  std::size_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    total += std::min<std::size_t>(rt.dep_count(i), window);
  }
  csr.deps.reserve(total);

  // Scratch reused across records: sort a record's full dependency list by
  // (slack, parent) only when it overflows the window.
  std::vector<trace::TraceDep> scratch;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (rt.dep_count(i) <= window) {
      csr.deps.insert(csr.deps.end(), rt.deps_begin(i), rt.deps_end(i));
    } else {
      // The `window` smallest-slack dependencies (ties broken by parent id
      // for determinism).
      scratch.assign(rt.deps_begin(i), rt.deps_end(i));
      std::sort(scratch.begin(), scratch.end(),
                [](const auto& a, const auto& b) {
                  if (a.slack != b.slack) return a.slack < b.slack;
                  return a.parent < b.parent;
                });
      csr.deps.insert(csr.deps.end(), scratch.begin(), scratch.begin() + window);
    }
    csr.offset[i + 1] = static_cast<std::uint32_t>(csr.deps.size());
  }
  return csr;
}

// Both engines are thin wrappers over a throwaway ReplaySession — the
// session owns the simulator, the network and every pass buffer, and is the
// single implementation of the pass loop (see core/replay_session.hpp).
// Long-lived callers (iterative sweeps, exploration) construct a session
// directly and reuse it across passes and candidates.

ReplayResult replay_once(const ReplayTrace& rt, const NetworkFactory& factory,
                         const ReplayConfig& config,
                         const std::vector<Cycle>* baseline,
                         const KeptDepsCsr* kept) {
  ReplaySession session(rt, factory, config, kept);
  session.run_pass(baseline);
  session.snapshot_stats();
  return session.take_result();
}

ReplayResult replay(const ReplayTrace& rt, const NetworkFactory& factory,
                    const ReplayConfig& config) {
  if (!rt.finalized()) {
    throw std::logic_error("replay: ReplayTrace not finalized");
  }
  if (rt.empty()) {
    // The factory is never called for an empty trace.
    ReplayResult empty;
    return empty;
  }
  ReplaySession session(rt, factory, config);
  session.run();
  return session.take_result();
}

ReplayResult replay(const trace::Trace& trace, const NetworkFactory& factory,
                    const ReplayConfig& config) {
  return replay(ReplayTrace(trace), factory, config);
}

}  // namespace sctm::core
