#include "fault/fault_model.hpp"

namespace sctm::fault {
namespace {

// splitmix64 finalizer over (seed, stream id): distinct, decorrelated child
// seeds for the per-class and per-channel streams. Stream ids are stable
// constants, so the same spec always derives the same stream family.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kStreamEnoc = 0;
constexpr std::uint64_t kStreamResv = 1;
constexpr std::uint64_t kStreamOpt = 2;
constexpr std::uint64_t kStreamChanBase = 16;

}  // namespace

FaultModel::FaultModel(const FaultSpec& spec, StatRegistry& stats,
                       const std::string& stat_prefix, int channels)
    : spec_(spec),
      enoc_rng_(derive_seed(spec.seed, kStreamEnoc)),
      resv_rng_(derive_seed(spec.seed, kStreamResv)),
      opt_rng_(derive_seed(spec.seed, kStreamOpt)),
      stat_flit_corrupt_(stats.counter(stat_prefix + ".flit_corrupt")),
      stat_flit_drop_(stats.counter(stat_prefix + ".flit_drop")),
      stat_link_stuck_(stats.counter(stat_prefix + ".link_stuck")),
      stat_token_loss_(stats.counter(stat_prefix + ".token_loss")),
      stat_reservation_loss_(stats.counter(stat_prefix + ".reservation_loss")),
      stat_optical_corrupt_(stats.counter(stat_prefix + ".optical_corrupt")),
      stat_retransmissions_(stats.counter(stat_prefix + ".retransmissions")),
      stat_messages_lost_(stats.counter(stat_prefix + ".messages_lost")),
      stat_messages_recovered_(
          stats.counter(stat_prefix + ".messages_recovered")),
      stat_recovery_penalty_(
          stats.accumulator(stat_prefix + ".recovery_penalty_cycles")) {
  spec_.validate();
  chan_rng_.reserve(static_cast<std::size_t>(channels > 0 ? channels : 0));
  for (int c = 0; c < channels; ++c) {
    chan_rng_.emplace_back(
        derive_seed(spec_.seed, kStreamChanBase + static_cast<std::uint64_t>(c)));
  }
  retries_.reserve(16);
}

void FaultModel::reset() {
  enoc_rng_ = Rng(derive_seed(spec_.seed, kStreamEnoc));
  resv_rng_ = Rng(derive_seed(spec_.seed, kStreamResv));
  opt_rng_ = Rng(derive_seed(spec_.seed, kStreamOpt));
  for (std::size_t c = 0; c < chan_rng_.size(); ++c) {
    chan_rng_[c] = Rng(derive_seed(spec_.seed, kStreamChanBase + c));
  }
  retries_.clear();
}

bool FaultModel::draw_flit_corrupt() {
  if (spec_.enoc_flit_corrupt_rate <= 0) return false;
  if (!enoc_rng_.next_bool(spec_.enoc_flit_corrupt_rate)) return false;
  ++stat_flit_corrupt_;
  return true;
}

bool FaultModel::draw_flit_drop() {
  if (spec_.enoc_flit_drop_rate <= 0) return false;
  if (!enoc_rng_.next_bool(spec_.enoc_flit_drop_rate)) return false;
  ++stat_flit_drop_;
  return true;
}

bool FaultModel::draw_link_stuck_onset() {
  if (spec_.enoc_link_stuck_rate <= 0) return false;
  if (!enoc_rng_.next_bool(spec_.enoc_link_stuck_rate)) return false;
  ++stat_link_stuck_;
  return true;
}

void FaultModel::note_stuck_hit() { ++stat_flit_corrupt_; }

bool FaultModel::draw_token_loss(int channel) {
  if (spec_.onoc_token_loss_rate <= 0) return false;
  return chan_rng_[static_cast<std::size_t>(channel)].next_bool(
      spec_.onoc_token_loss_rate);
}

void FaultModel::note_token_losses(std::uint64_t n) { stat_token_loss_ += n; }

bool FaultModel::draw_reservation_loss() {
  if (spec_.onoc_reservation_loss_rate <= 0) return false;
  if (!resv_rng_.next_bool(spec_.onoc_reservation_loss_rate)) return false;
  ++stat_reservation_loss_;
  return true;
}

bool FaultModel::draw_optical_corrupt(double p) {
  if (p <= 0) return false;
  if (!opt_rng_.next_bool(p)) return false;
  ++stat_optical_corrupt_;
  return true;
}

FaultModel::Action FaultModel::on_corrupt_message(MsgId id, Cycle now) {
  RetryState* st = retries_.find(id);
  if (st == nullptr) st = &retries_.insert(id, RetryState{0, now});
  ++st->attempts;
  if (st->attempts > spec_.max_retries) {
    ++stat_messages_lost_;
    stat_recovery_penalty_.add(static_cast<double>(now - st->first_detect));
    retries_.erase(id);
    return Action::kGiveUp;
  }
  ++stat_retransmissions_;
  return Action::kRetransmit;
}

void FaultModel::on_clean_delivery(MsgId id, Cycle now) {
  const RetryState* st = retries_.find(id);
  if (st == nullptr) return;
  ++stat_messages_recovered_;
  stat_recovery_penalty_.add(static_cast<double>(now - st->first_detect));
  retries_.erase(id);
}

}  // namespace sctm::fault
