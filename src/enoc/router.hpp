// Input-queued virtual-channel wormhole router.
//
// Three-stage pipeline, enforced by intra-tick phase ordering (SA/ST first,
// then VA, then RC): a head flit that arrives in cycle t computes its route
// in t, wins an output VC no earlier than t+1 and traverses the switch no
// earlier than t+2 — a 3-cycle router, plus link latency per hop. Body flits
// stream at one per cycle per port through switch allocation only.
//
// Flow control is credit-based: one credit == one flit slot in the
// downstream input VC. Separable switch allocation (input-first then
// output arbitration) with per-port round-robin or matrix arbiters.
//
// The tick is a fused single pass over *occupied* VCs: an occupancy bitmap
// (bit per (port, vc), maintained on every fifo push/pop) is scanned once in
// ascending index order — the exact lexicographic (port, vc) order the
// original phase loops used — classifying each occupied VC as an SA request
// (routed + allocated, with a lazy downstream-credit check), a VA candidate
// (routed, unallocated) or an RC candidate (unrouted). Arbiters are only
// consulted for ports that actually have requests. VA and RC then evaluate
// their gathered candidates against live post-SA state (busy bits freed by a
// departing tail, credits consumed by this cycle's sends), which is exactly
// what the phase-ordered full scans observed. Cost per tick is O(occupied
// VCs), not O(ports * vcs).
//
// Side effects leave through a RouterOutbox instead of mutating the network
// directly: forwarded flits, ejections and upstream credits are recorded in
// emission order and the owning network drains them at its cycle barrier in
// ascending router-id order — the serial visit order — which is what makes
// sharded parallel ticking bit-identical to the serial engine (the tick
// itself touches only router-local state).
//
// The datapath is allocation-free in steady state: input VCs are
// fixed-capacity rings sized to buffer_depth, injection staging is a
// capacity-retaining ring, allocator request/grant scratch and the gather
// lists live in member vectors sized at construction, and route computation
// uses the fixed RoutePorts set. Ticking an idle router (has_work() ==
// false) is a no-op — the owning network exploits this with an activity
// scoreboard and only ticks routers that hold flits.
//
// Deadlock discipline:
//  * protocol: message classes are split across virtual networks,
//  * routing: XY/YX/odd-even are turn-restricted on meshes; torus DOR and
//    ring shortest use dateline VC subclasses — a packet moves to subclass 1
//    when it traverses a wrap link and resets on a dimension change.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "enoc/arbiter.hpp"
#include "enoc/flit.hpp"
#include "enoc/params.hpp"
#include "noc/message.hpp"
#include "noc/route_table.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "sim/component.hpp"

namespace sctm::enoc {

/// Deferred router side effects for one cycle, recorded in emission order.
/// One outbox per shard: routers of a shard append in ascending-id order, so
/// draining shards in ascending order replays the exact side-effect sequence
/// of the serial engine (per-router emission order interleaved at router
/// granularity). The entry vector retains capacity across cycles.
struct RouterOutbox {
  struct Entry {
    enum class Kind : std::uint8_t { kForward, kEject, kCredit };
    Kind kind = Kind::kForward;
    std::uint8_t port = 0;  // kForward: out_dir; kCredit: input port
    std::int16_t vc = -1;   // kCredit: the freed VC
    NodeId node = kInvalidNode;  // emitting router
    Flit flit;              // kForward / kEject payload
  };

  std::vector<Entry> entries;

  void forward(NodeId node, int out_dir, const Flit& f) {
    entries.push_back({Entry::Kind::kForward, static_cast<std::uint8_t>(out_dir),
                       -1, node, f});
  }
  void eject(NodeId node, const Flit& f) {
    entries.push_back({Entry::Kind::kEject, 0, -1, node, f});
  }
  void credit(NodeId node, int in_dir, int vc) {
    entries.push_back({Entry::Kind::kCredit, static_cast<std::uint8_t>(in_dir),
                       static_cast<std::int16_t>(vc), node, Flit{}});
  }
  void clear() { entries.clear(); }
};

/// Growable FIFO ring of flits. Capacity is retained across drain/fill
/// cycles, so a warmed-up queue never touches the heap again — unlike
/// std::deque, which releases its blocks whenever it empties.
class FlitRing {
 public:
  void reserve(std::size_t cap) {
    if (cap > buf_.size()) regrow(cap);
  }
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  Flit& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  const Flit& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }
  void push_back(const Flit& f) {
    if (count_ == buf_.size()) regrow(buf_.empty() ? 8 : buf_.size() * 2);
    buf_[(head_ + count_) % buf_.size()] = f;
    ++count_;
  }
  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) % buf_.size();
    --count_;
  }
  /// Empties the ring, retaining its buffer (session reset path).
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void regrow(std::size_t cap) {
    std::vector<Flit> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = buf_[(head_ + i) % buf_.size()];
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<Flit> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

class Router : public Component {
 public:
  /// `routes` is the network-owned routing table (stable address; rebuilt in
  /// place on reparameterize). Route computation goes through it, which is a
  /// transparent dispatch to the stateless functions for the coordinate
  /// algorithms and a table lookup for kTable.
  Router(Simulator& sim, std::string name, NodeId id,
         const noc::Topology& topo, const noc::RoutingTable& routes,
         const EnocParams& params);

  /// One clock cycle of the pipeline. Side effects (forwards, ejections,
  /// credits) are appended to `out` in emission order; nothing outside this
  /// router is touched, so ticks of distinct routers may run concurrently.
  /// Returns true when the router still holds any flit afterwards (activity
  /// hint; false means every further tick is a no-op until new work
  /// arrives).
  bool tick(RouterOutbox& out);

  /// Flit arrives on input port `in_port` in VC flit.vc (link delivery or,
  /// for the local port, injection placement by inject_*).
  void receive_flit(int in_port, Flit flit);

  /// Credit arrives for output (out_port, vc).
  void receive_credit(int out_port, int vc);

  /// Stages a packet's flits for injection (unbounded source queue; the
  /// router moves them into local-port VCs as space frees). Flits are
  /// synthesized straight into the staging ring — no intermediate container.
  void inject(const noc::Message& msg, std::uint32_t nflits);

  /// Session reset: restores freshly-constructed datapath state (VC fifos,
  /// RC/VA results, credits, arbiter pointers, injection staging, occupancy
  /// bitmap) without releasing any buffer capacity. Cached stat references
  /// stay valid — the owning simulator zeroes values via
  /// StatRegistry::zero().
  void reset();

  /// In-place re-parameterization (the rebind fast path): rebuilds the
  /// datapath for `params` — VC count, buffer depth, arbiter kind, routing —
  /// without reconstructing the Router, so its identity, topology binding
  /// and registered stat entries survive. Ends in the reset() state; only
  /// call on an idle router. May allocate (it is a reconfiguration, not a
  /// steady-state path).
  void reparameterize(const EnocParams& params);

  NodeId id() const { return id_; }
  bool has_work() const;
  std::size_t injection_backlog() const { return inj_queue_.size(); }

  /// Free credits on output port `port` across all VCs (adaptive metric).
  int free_credits(int port) const;

 private:
  struct InputVc {
    FlitRing fifo;           // fixed capacity == params.buffer_depth
    int out_port = -1;       // RC result; -1 = unrouted
    int out_vc = -1;         // VA result; -1 = unallocated
    std::uint8_t next_dateline = 0;  // subclass the packet occupies downstream
  };
  struct OutputVc {
    int credits = 0;
    bool busy = false;       // held by a packet until its tail is sent
  };

  int vc_index(int port, int vc) const { return port * vcount_ + vc; }
  InputVc& in_vc(int port, int vc) { return inputs_[vc_index(port, vc)]; }
  const InputVc& in_vc(int port, int vc) const {
    return inputs_[vc_index(port, vc)];
  }
  OutputVc& out_vc(int port, int vc) { return outputs_[vc_index(port, vc)]; }

  void mark_occupied(int idx) {
    occ_[static_cast<std::size_t>(idx) >> 6] |=
        std::uint64_t{1} << (idx & 63);
  }
  void mark_vacant(int idx) {
    occ_[static_cast<std::size_t>(idx) >> 6] &=
        ~(std::uint64_t{1} << (idx & 63));
  }

  /// (Re)builds every size-dependent structure for the current params_ and
  /// leaves the router in the reset() state. Shared by the constructor and
  /// reparameterize().
  void configure();

  /// Allowed VC range [first, last) for a packet of class `cls` whose
  /// dateline subclass will be `dateline` at the downstream buffer.
  std::pair<int, int> allowed_vcs(noc::MsgClass cls, std::uint8_t dateline) const;

  int vnet_of(noc::MsgClass cls) const;

  /// The fused gather-plus-SA pass: one scan over occupied VCs builds the
  /// per-port SA request vectors (nominating via the input arbiters as each
  /// port's bits end) and collects VA/RC candidates, then runs SA output
  /// arbitration and the winning switch traversals.
  void phase_fused_gather_sa();
  void phase_vc_allocation();    // over va_list_, live post-SA busy state
  void phase_route_compute();    // over rc_list_ + VCs re-exposed by SA tails
  void phase_injection();
  void route_one(int idx);

  void send_flit(int in_port, int in_vc_idx);

  NodeId id_;
  noc::Topology topo_;  // cheap copy: the graph tables are shared
  const noc::RoutingTable* routes_;
  EnocParams params_;

  int ports_;    // radix + 1 (local last)
  int local_;    // local port index (== topo.local_port())
  int vcount_;   // VCs per port
  bool needs_dateline_;

  std::vector<InputVc> inputs_;    // [port][vc]
  std::vector<OutputVc> outputs_;  // [port][vc]

  /// Occupancy bitmap over vc_index: bit set iff that input VC holds flits.
  /// The tick scans set bits instead of all (port, vc) pairs.
  std::vector<std::uint64_t> occ_;

  // Switch-allocation arbiters: one per input port (VC selection) and one
  // per output port (input selection).
  std::vector<std::unique_ptr<Arbiter>> sa_input_arb_;
  std::vector<std::unique_ptr<Arbiter>> sa_output_arb_;
  // VC-allocation arbiters: one per output port.
  std::vector<std::unique_ptr<Arbiter>> va_arb_;

  // Allocator scratch, reused every tick (capacity fixed at construction).
  std::vector<bool> req_vc_;       // [vcount]
  std::vector<bool> req_port_;     // [ports]
  std::vector<bool> req_pv_;       // [ports * vcount]
  std::vector<int> sa_nominee_;    // per input port: nominated VC
  std::vector<int> sa_winner_;     // per output port: granted input port

  // Gather lists filled by the fused scan (ascending vc_index order) and a
  // list of VCs whose tail left in SA this cycle, re-exposing the next
  // packet's head to RC — the one candidate set SA can grow.
  std::vector<int> va_list_;
  std::vector<int> rc_list_;
  std::vector<int> sa_reexposed_;

  /// Outbox of the in-progress tick (valid only inside tick()).
  RouterOutbox* out_ = nullptr;

  // Injection source queue + which local VC each in-progress packet streams
  // into (msg -> vc), to keep wormhole continuity at the local port.
  FlitRing inj_queue_;
  int inj_active_vc_ = -1;     // local VC of the packet currently streaming
  MsgId inj_active_msg_ = kInvalidMsg;

  // Hot-path stat counters, cached once (StatRegistry nodes are stable).
  std::uint64_t& stat_buffer_writes_;
  std::uint64_t& stat_buffer_reads_;
  std::uint64_t& stat_xbar_;
  std::uint64_t& stat_link_;
  std::uint64_t& stat_sa_grants_;
  std::uint64_t& stat_va_grants_;
  std::uint64_t& stat_rc_;
};

}  // namespace sctm::enoc
