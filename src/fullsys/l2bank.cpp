#include "fullsys/l2bank.hpp"

#include <stdexcept>

namespace sctm::fullsys {

L2Bank::L2Bank(Simulator& sim, std::string name, NodeId id,
               const FullSysParams& params, Fabric& fabric)
    : Component(sim, std::move(name)),
      id_(id),
      params_(params),
      fabric_(fabric),
      data_(params.l2_sets, params.l2_ways),
      stat_requests_(counter("requests")),
      stat_recalls_(counter("recalls")),
      stat_invs_(counter("invalidations")),
      stat_mem_reads_(counter("mem_reads")),
      stat_mem_writes_(counter("mem_writes")) {}

std::vector<std::tuple<std::uint64_t, int, NodeId, int, int>>
L2Bank::busy_snapshot() const {
  std::vector<std::tuple<std::uint64_t, int, NodeId, int, int>> out;
  for (const auto& [line, txn] : busy_) {
    const auto dit = deferred_.find(line);
    const int dcount =
        dit == deferred_.end() ? 0 : static_cast<int>(dit->second.size());
    out.emplace_back(line, static_cast<int>(txn.phase), txn.requester,
                     txn.pending_acks, dcount);
  }
  return out;
}

void L2Bank::send_after(Cycle delay, ProtoMsg type, NodeId dst,
                        std::uint64_t line, std::vector<MsgId> causes) {
  auto ev = [this, type, dst, line, causes = std::move(causes)] {
    fabric_.send(type, id_, dst, line, causes);
  };
  static_assert(InlineFn::fits_inline<decltype(ev)>(),
                "coherence send closure must stay within the event SBO budget");
  sim().schedule_in(delay, std::move(ev));
}

void L2Bank::data_insert(std::uint64_t line, bool dirty, MsgId cause) {
  const auto evicted =
      data_.insert(line, dirty ? LineState::kM : LineState::kS);
  if (evicted && evicted->state == LineState::kM) {
    ++stat_mem_writes_;
    send_after(params_.l2_latency, ProtoMsg::kMemWrite,
               fabric_.mc_for(evicted->line_no), evicted->line_no,
               cause == kInvalidMsg ? std::vector<MsgId>{}
                                    : std::vector<MsgId>{cause});
  }
}

void L2Bank::on_message(ProtoMsg type, NodeId src, std::uint64_t line,
                        MsgId msg_id) {
  switch (type) {
    case ProtoMsg::kGetS:
    case ProtoMsg::kGetM:
    case ProtoMsg::kPutM:
      handle_request(type, src, line, msg_id);
      return;
    case ProtoMsg::kInvAck: {
      auto it = busy_.find(line);
      if (it == busy_.end() || it->second.phase != Phase::kWaitInv) {
        throw std::logic_error(name() + ": stray InvAck");
      }
      Txn& txn = it->second;
      txn.ack_causes.push_back(msg_id);
      if (--txn.pending_acks == 0) {
        DirEntry& e = dir_[line];
        e.state = LineState::kM;
        e.owner = txn.requester;
        e.sharers.clear();
        send_after(params_.dir_latency, ProtoMsg::kDataM, txn.requester, line,
                   txn.ack_causes);
        txn.phase = Phase::kWaitUnblock;
      }
      return;
    }
    case ProtoMsg::kUnblock: {
      auto it = busy_.find(line);
      if (it == busy_.end() || it->second.phase != Phase::kWaitUnblock ||
          it->second.requester != src) {
        throw std::logic_error(name() + ": stray Unblock");
      }
      complete(line);
      return;
    }
    case ProtoMsg::kRecallData: {
      auto it = busy_.find(line);
      if (it == busy_.end() || it->second.phase != Phase::kWaitRecall) {
        throw std::logic_error(name() + ": stray RecallData");
      }
      it->second.last_cause = msg_id;
      data_insert(line, /*dirty=*/true, msg_id);
      grant(line, it->second);
      return;
    }
    case ProtoMsg::kRecallStale: {
      auto it = busy_.find(line);
      if (it != busy_.end() && it->second.phase == Phase::kWaitRecall) {
        // The PutM that crossed our Recall has not arrived yet; remember
        // that the stale answer came first and finish when the PutM lands.
        it->second.expect_stale = false;  // consumed
        it->second.phase = Phase::kWaitRecall;
        return;
      }
      // Stale answer after the crossing PutM already completed the recall.
      return;
    }
    case ProtoMsg::kMemData: {
      auto it = busy_.find(line);
      if (it == busy_.end() || it->second.phase != Phase::kWaitMem) {
        throw std::logic_error(name() + ": stray MemData");
      }
      it->second.last_cause = msg_id;
      data_insert(line, /*dirty=*/false, msg_id);
      Txn& txn = it->second;
      if (txn.is_getm) {
        // Data present now; invalidate sharers if any remain.
        DirEntry& e = dir_[line];
        std::vector<NodeId> to_inv(e.sharers.begin(), e.sharers.end());
        std::erase(to_inv, txn.requester);
        if (!to_inv.empty()) {
          txn.phase = Phase::kWaitInv;
          txn.pending_acks = static_cast<int>(to_inv.size());
          for (const NodeId s : to_inv) {
            ++stat_invs_;
            send_after(params_.dir_latency, ProtoMsg::kInv, s, line, {msg_id});
          }
          return;
        }
      }
      grant(line, txn);
      return;
    }
    default:
      throw std::logic_error(name() + ": unexpected message " +
                             std::string(to_string(type)));
  }
}

void L2Bank::handle_request(ProtoMsg type, NodeId src, std::uint64_t line,
                            MsgId msg_id) {
  ++stat_requests_;
  const auto it = busy_.find(line);
  if (it != busy_.end()) {
    if (type == ProtoMsg::kPutM && it->second.phase == Phase::kWaitRecall) {
      // PutM crossed our Recall: treat it as the recall data and ack the
      // writeback; the RecallStale answer (before or after) is dropped.
      Txn& txn = it->second;
      txn.expect_stale = true;
      txn.last_cause = msg_id;
      send_after(params_.dir_latency, ProtoMsg::kWbAck, src, line, {msg_id});
      data_insert(line, /*dirty=*/true, msg_id);
      grant(line, txn);
      return;
    }
    deferred_[line].push_back(Deferred{type, src, msg_id});
    return;
  }
  switch (type) {
    case ProtoMsg::kGetS: handle_gets(src, line, msg_id); return;
    case ProtoMsg::kGetM: handle_getm(src, line, msg_id); return;
    case ProtoMsg::kPutM: handle_putm_idle(src, line, msg_id); return;
    default: throw std::logic_error(name() + ": bad request type");
  }
}

void L2Bank::handle_gets(NodeId src, std::uint64_t line, MsgId cause) {
  DirEntry& e = dir_[line];
  if (e.state == LineState::kM) {
    ++stat_recalls_;
    Txn txn;
    txn.phase = Phase::kWaitRecall;
    txn.requester = src;
    txn.is_getm = false;
    busy_.emplace(line, txn);
    send_after(params_.dir_latency, ProtoMsg::kRecall, e.owner, line, {cause});
    return;
  }
  if (data_.lookup(line) == LineState::kI) {
    ++stat_mem_reads_;
    Txn txn;
    txn.phase = Phase::kWaitMem;
    txn.requester = src;
    txn.is_getm = false;
    busy_.emplace(line, txn);
    send_after(params_.l2_latency, ProtoMsg::kMemRead, fabric_.mc_for(line),
               line, {cause});
    return;
  }
  e.state = LineState::kS;
  e.sharers.insert(src);
  Txn txn;
  txn.phase = Phase::kWaitUnblock;
  txn.requester = src;
  txn.is_getm = false;
  busy_.emplace(line, txn);
  send_after(params_.l2_latency, ProtoMsg::kData, src, line, {cause});
}

void L2Bank::handle_getm(NodeId src, std::uint64_t line, MsgId cause) {
  DirEntry& e = dir_[line];
  if (e.state == LineState::kM) {
    if (e.owner == src) {
      throw std::logic_error(name() + ": owner re-requesting M");
    }
    ++stat_recalls_;
    Txn txn;
    txn.phase = Phase::kWaitRecall;
    txn.requester = src;
    txn.is_getm = true;
    busy_.emplace(line, txn);
    send_after(params_.dir_latency, ProtoMsg::kRecall, e.owner, line, {cause});
    return;
  }
  if (data_.lookup(line) == LineState::kI) {
    ++stat_mem_reads_;
    Txn txn;
    txn.phase = Phase::kWaitMem;
    txn.requester = src;
    txn.is_getm = true;
    busy_.emplace(line, txn);
    send_after(params_.l2_latency, ProtoMsg::kMemRead, fabric_.mc_for(line),
               line, {cause});
    return;
  }
  std::vector<NodeId> to_inv(e.sharers.begin(), e.sharers.end());
  std::erase(to_inv, src);
  if (!to_inv.empty()) {
    Txn txn;
    txn.phase = Phase::kWaitInv;
    txn.requester = src;
    txn.is_getm = true;
    txn.pending_acks = static_cast<int>(to_inv.size());
    busy_.emplace(line, txn);
    for (const NodeId s : to_inv) {
      ++stat_invs_;
      send_after(params_.dir_latency, ProtoMsg::kInv, s, line, {cause});
    }
    return;
  }
  e.state = LineState::kM;
  e.owner = src;
  e.sharers.clear();
  Txn txn;
  txn.phase = Phase::kWaitUnblock;
  txn.requester = src;
  txn.is_getm = true;
  busy_.emplace(line, txn);
  send_after(params_.l2_latency, ProtoMsg::kDataM, src, line, {cause});
}

void L2Bank::handle_putm_idle(NodeId src, std::uint64_t line, MsgId cause) {
  DirEntry& e = dir_[line];
  if (e.state != LineState::kM || e.owner != src) {
    throw std::logic_error(name() + ": PutM from non-owner");
  }
  e.state = LineState::kI;
  e.owner = kInvalidNode;
  e.sharers.clear();
  data_insert(line, /*dirty=*/true, cause);
  send_after(params_.dir_latency, ProtoMsg::kWbAck, src, line, {cause});
}

void L2Bank::grant(std::uint64_t line, Txn& txn) {
  DirEntry& e = dir_[line];
  const MsgId cause = txn.last_cause;
  if (txn.is_getm) {
    e.state = LineState::kM;
    e.owner = txn.requester;
    e.sharers.clear();
    send_after(params_.l2_latency, ProtoMsg::kDataM, txn.requester, line,
               cause == kInvalidMsg ? std::vector<MsgId>{}
                                    : std::vector<MsgId>{cause});
  } else {
    e.state = LineState::kS;
    e.owner = kInvalidNode;
    if (txn.phase == Phase::kWaitRecall) {
      // The old owner's copy was just recalled; the requester is the only
      // sharer now.
      e.sharers = {txn.requester};
    } else {
      // Memory refetch after a silent L2 data eviction: existing S copies
      // remain valid, so keep them registered.
      e.sharers.insert(txn.requester);
    }
    send_after(params_.l2_latency, ProtoMsg::kData, txn.requester, line,
               cause == kInvalidMsg ? std::vector<MsgId>{}
                                    : std::vector<MsgId>{cause});
  }
  txn.phase = Phase::kWaitUnblock;
}

void L2Bank::complete(std::uint64_t line) {
  busy_.erase(line);
  // Drain deferred requests until one makes the line busy again (or the
  // queue empties). Requests that are served immediately (e.g. a GetS
  // hitting present data) must not strand the rest of the queue.
  while (busy_.find(line) == busy_.end()) {
    const auto it = deferred_.find(line);
    if (it == deferred_.end() || it->second.empty()) {
      if (it != deferred_.end()) deferred_.erase(it);
      return;
    }
    const Deferred d = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) deferred_.erase(it);
    handle_request(d.type, d.src, line, d.msg_id);
  }
}

}  // namespace sctm::fullsys
