#include "noc/network.hpp"

#include <stdexcept>

namespace sctm::noc {

void Network::note_injected(Message& msg) {
  if (msg.src < 0 || msg.src >= node_count_ || msg.dst < 0 ||
      msg.dst >= node_count_) {
    throw std::logic_error(name() + ": inject with invalid src/dst");
  }
  msg.inject_time = sim().now();
  ++injected_;
}

void Network::install_fault_model(const fault::FaultSpec& spec) {
  fault_ = std::make_unique<fault::FaultModel>(
      spec, sim().stats(), name() + ".fault", node_count_);
}

// Pure virtual with a body: subclasses' overrides delegate here for the
// counters/histograms the base owns. The delivery callback is deliberately
// kept — a session re-runs against the same sink. The fault model (if any)
// rewinds its streams so a reused session replays the fresh fault schedule.
void Network::reset() {
  injected_ = 0;
  delivered_ = 0;
  latency_.reset();
  for (auto& h : latency_by_class_) h.reset();
  if (fault_) fault_->reset();
}

void Network::deliver(Message msg) {
  msg.arrive_time = sim().now();
  ++delivered_;
  const Cycle lat = msg.latency();
  latency_.add(lat);
  latency_by_class_[static_cast<int>(msg.cls)].add(lat);
  if (deliver_) deliver_(msg);
}

IdealNetwork::IdealNetwork(Simulator& sim, std::string name,
                           const Topology& topo, const Params& params)
    : Network(sim, std::move(name), topo.node_count()),
      topo_(topo),
      params_(params) {}

void IdealNetwork::reset() {
  Network::reset();
  in_flight_ = 0;
}

Cycle IdealNetwork::model_latency(const Message& msg) const {
  const int hops = msg.src == msg.dst ? 0 : topo_.distance(msg.src, msg.dst);
  const double ser =
      static_cast<double>(msg.size_bytes) / params_.bytes_per_cycle;
  auto ser_cycles = static_cast<Cycle>(ser);
  if (static_cast<double>(ser_cycles) < ser) ++ser_cycles;
  return params_.base_latency +
         params_.per_hop_latency * static_cast<Cycle>(hops) + ser_cycles;
}

void IdealNetwork::inject(Message msg) {
  note_injected(msg);
  const Cycle lat = model_latency(msg);
  ++in_flight_;
  auto ev = [this, msg]() mutable {
    --in_flight_;
    deliver(msg);
  };
  static_assert(InlineFn::fits_inline<decltype(ev)>(),
                "delivery closure must stay within the event SBO budget");
  sim().schedule_in(lat, std::move(ev));
}

}  // namespace sctm::noc
