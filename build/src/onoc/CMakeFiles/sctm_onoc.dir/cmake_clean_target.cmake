file(REMOVE_RECURSE
  "libsctm_onoc.a"
)
