// Reliability sweep: self-correction under injected faults (DESIGN.md §11).
//
// Replays one captured workload over every fault-capable fabric at a sweep
// of fault rates, with every fault class armed in proportion to the swept
// rate (flit corruption/drop and stuck-at links on the electrical plane;
// token loss, reservation loss and thermally-eroded optical BER on the
// optical plane). Reports the runtime cost of recovery and the fault /
// retransmission / loss counters the model records.
//
// Verdicts (always enforced — this bench is a correctness gate first):
//  * completion  — every faulted replay runs to completion; the bounded
//                  retry budget means no fault regime can hang the fabric.
//  * determinism — the heaviest regime per fabric is bit-identical between
//                  a serial and a 2-thread run (schedules AND stats).
//  * zero-rate   — an armed-but-zero FaultSpec reproduces the fault-free
//                  run exactly, stats report included.
//  * cost        — the heaviest regime is no faster than fault-free.
//
// Emits bench_results/TAB_reliability.{csv,json}; `--smoke` runs a reduced
// sweep for CI.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "core/replay_session.hpp"

namespace sctm {
namespace {

/// All fault classes armed in proportion to one swept rate. The thermal
/// drift is stepped onto the Q-factor cliff only for nonzero rates (within
/// the design margin the BER stays ~1e-12 and nothing would fire).
fault::FaultSpec regime(double rate) {
  fault::FaultSpec fs;
  fs.seed = 7;
  fs.enoc_flit_corrupt_rate = rate;
  fs.enoc_flit_drop_rate = rate / 2;
  fs.enoc_link_stuck_rate = rate / 10;
  fs.onoc_token_loss_rate = rate;
  fs.onoc_reservation_loss_rate = rate;
  fs.onoc_ring_drift_sigma_c = rate > 0 ? 25.0 : 0.0;
  return fs;
}

/// Sums `<prefix>.fault.<leaf>` across planes (hybrid registers one fault
/// block per layer: net.el.fault.* and net.op.fault.*).
std::uint64_t fault_counter(const StatRegistry& stats, const char* leaf) {
  std::uint64_t total = 0;
  const std::string want = std::string(".fault.") + leaf;
  for (const std::string& name : stats.names()) {
    if (name.size() >= want.size() &&
        name.compare(name.size() - want.size(), want.size(), want) == 0) {
      total += stats.counter_value(name);
    }
  }
  return total;
}

/// Mean recovery penalty across every plane's fault accumulator.
double penalty_mean(StatRegistry& stats) {
  double sum = 0;
  std::uint64_t n = 0;
  for (const std::string& name : stats.names()) {
    const std::string want = ".fault.recovery_penalty_cycles";
    if (name.size() >= want.size() &&
        name.compare(name.size() - want.size(), want.size(), want) == 0) {
      const Accumulator& a = stats.accumulator(name);
      sum += a.sum();
      n += a.count();
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

struct Cell {
  const char* kind_label;
  core::NetKind kind;
  double rate;
  core::ReplayResult result{};
  std::string stats_report;
};

core::NetSpec spec_for(const Cell& c) {
  core::NetSpec spec;
  spec.kind = c.kind;
  spec.fault = regime(c.rate);
  return spec;
}

int run(bool smoke) {
  using bench::verdict;

  fullsys::AppParams app;
  app.name = "jacobi";
  app.cores = 16;
  app.lines_per_core = smoke ? 8 : 16;
  app.iterations = smoke ? 1 : 2;
  fullsys::FullSysParams sys;
  if (smoke) {
    sys.l1_sets = 8;
    sys.l1_ways = 2;
    sys.l2_sets = 32;
    sys.l2_ways = 4;
  }
  const trace::Trace trace = core::run_execution(app, core::NetSpec{}, sys).trace;
  const core::ReplayTrace rt(trace);

  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.02}
            : std::vector<double>{0.0, 0.001, 0.005, 0.02};
  constexpr std::pair<const char*, core::NetKind> kKinds[] = {
      {"enoc", core::NetKind::kEnoc},
      {"onoc-token", core::NetKind::kOnocToken},
      {"onoc-setup", core::NetKind::kOnocSetup},
      {"hybrid", core::NetKind::kHybrid},
  };

  std::vector<Cell> cells;
  for (const auto& [label, kind] : kKinds) {
    for (const double rate : rates) {
      cells.push_back(Cell{label, kind, rate, {}, {}});
    }
  }
  parallel_for(cells.size(), [&](std::size_t i) {
    core::ReplaySession session(rt, spec_for(cells[i]), core::ReplayConfig{});
    session.run();
    cells[i].stats_report = session.result().stats.report();
    cells[i].result = session.take_result();
  });

  Table table("reliability: self-correction under injected faults");
  table.set_header({"network", "rate", "runtime", "slowdown", "faults",
                    "retrans", "recovered", "lost", "penalty (cyc)"});
  bool completion = true, cost = true;
  for (Cell& c : cells) {
    const Cell* base = nullptr;  // the kind's rate-0 row
    for (const Cell& b : cells) {
      if (b.kind == c.kind && b.rate == 0.0) base = &b;
    }
    completion = completion && c.result.runtime > 0 &&
                 !c.result.arrive_time.empty();
    if (c.rate == rates.back()) {
      cost = cost && c.result.runtime >= base->result.runtime;
    }
    StatRegistry& st = c.result.stats;
    const std::uint64_t fired = fault_counter(st, "flit_corrupt") +
                                fault_counter(st, "flit_drop") +
                                fault_counter(st, "token_loss") +
                                fault_counter(st, "reservation_loss") +
                                fault_counter(st, "optical_corrupt");
    table.add_row(
        {c.kind_label, Table::fmt(c.rate, 3),
         Table::fmt(static_cast<std::uint64_t>(c.result.runtime)),
         Table::fmt(static_cast<double>(c.result.runtime) /
                        static_cast<double>(base->result.runtime),
                    2) + "x",
         Table::fmt(fired), Table::fmt(fault_counter(st, "retransmissions")),
         Table::fmt(fault_counter(st, "messages_recovered")),
         Table::fmt(fault_counter(st, "messages_lost")),
         Table::fmt(penalty_mean(st), 1)});
  }

  // Determinism gate: the heaviest regime per fabric, serial vs 2 threads.
  bool deterministic = true;
  for (const auto& [label, kind] : kKinds) {
    const Cell heavy{label, kind, rates.back(), {}, {}};
    core::ReplayConfig par;
    par.threads = 2;
    core::ReplaySession session(rt, spec_for(heavy), par);
    session.set_parallel_grains_for_test(0);
    session.run();
    const Cell* serial = nullptr;
    for (const Cell& c : cells) {
      if (c.kind == kind && c.rate == rates.back()) serial = &c;
    }
    deterministic = deterministic &&
                    session.result().arrive_time == serial->result.arrive_time &&
                    session.result().runtime == serial->result.runtime &&
                    session.result().stats.report() == serial->stats_report;
  }

  // Zero-rate identity gate: rate 0 equals a spec with no fault field at all.
  bool zero_identity = true;
  for (const auto& [label, kind] : kKinds) {
    core::NetSpec plain;
    plain.kind = kind;
    core::ReplaySession session(rt, plain, core::ReplayConfig{});
    session.run();
    const Cell* zero = nullptr;
    for (const Cell& c : cells) {
      if (c.kind == kind && c.rate == 0.0) zero = &c;
    }
    zero_identity = zero_identity &&
                    session.result().arrive_time == zero->result.arrive_time &&
                    session.result().stats.report() == zero->stats_report;
  }

  RunMetrics m = bench::bench_metrics(table, "TAB_reliability");
  m.manifest.set("app", app.name);
  m.manifest.set("smoke", smoke ? "1" : "0");
  for (const auto& [k, v] : regime(rates.back()).manifest_entries()) {
    m.manifest.set("max_" + k, v);
  }
  bench::emit(table, "TAB_reliability", m);

  int rc = 0;
  rc |= verdict(completion, "every faulted replay ran to completion");
  rc |= verdict(deterministic,
                "heaviest regime bit-identical serial vs 2 threads");
  rc |= verdict(zero_identity, "zero-rate regime identical to fault-free");
  rc |= verdict(cost, "recovery never makes the faulted fabric faster");
  return rc;
}

}  // namespace
}  // namespace sctm

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return sctm::run(smoke);
}
