// Optical NoC configuration.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/config.hpp"
#include "common/units.hpp"
#include "enoc/params.hpp"
#include "onoc/devices.hpp"

namespace sctm::onoc {

/// Channel organization / arbitration scheme of the data plane.
enum class Arbitration {
  kTokenRing,  // MWSR: Corona-style circulating token per receiver channel
  kPathSetup,  // MWSR: circuit setup/grant over an electrical control mesh
  kSwmr,       // SWMR: every *source* owns a channel (Firefly-style); no
               // inter-node arbitration, only head-of-line at the source.
               // Receivers are modeled contention-free (broadband drop
               // filters), the scheme's optimistic assumption.
  kSharedPool, // FlexiShare-style: a pool of `pool_channels` channels shared
               // by all pairs; a transfer takes the earliest-free channel
               // after a token round of arbitration. Trades channel count
               // (rings, laser power) against queueing.
};

const char* to_string(Arbitration a);

struct OnocParams {
  int wavelengths = 16;
  double gbps_per_wavelength = 10.0;
  double clock_ghz = 2.0;

  Cycle eo_latency = 1;   // electrical->optical conversion
  Cycle oe_latency = 1;   // optical->electrical conversion
  Cycle guard_cycles = 1; // channel guard band between transmissions
  Cycle token_hop_latency = 1;

  Arbitration arbitration = Arbitration::kTokenRing;
  /// Channel-pool size for kSharedPool (must be >= 1).
  int pool_channels = 8;

  double die_edge_cm = 2.0;
  MicroringParams ring;
  WaveguideParams waveguide;
  PhotodetectorParams detector;
  LaserParams laser;

  /// Control-message payload for path setup/grant (bytes).
  std::uint32_t ctrl_msg_bytes = 8;
  /// Electrical control mesh parameters (path-setup mode only).
  enoc::EnocParams ctrl;

  bool operator==(const OnocParams&) const = default;

  /// Channel bandwidth in bytes per core cycle.
  double bytes_per_cycle() const {
    return static_cast<double>(wavelengths) * gbps_per_wavelength /
           (8.0 * clock_ghz);
  }

  /// Serialization time of a message (>= 1 cycle).
  Cycle ser_cycles(std::uint32_t bytes) const {
    const double c = static_cast<double>(bytes) / bytes_per_cycle();
    auto out = static_cast<Cycle>(c);
    if (static_cast<double>(out) < c) ++out;
    return out == 0 ? 1 : out;
  }

  /// Time of flight between two tiles `tile_hops` apart on a die of
  /// `fabric_width` tiles per edge (>= 1 cycle).
  Cycle tof_cycles(int tile_hops, int fabric_width) const;

  /// One full token circulation past `nodes` writers — the arbitration
  /// round of the token-ring and shared-pool schemes. Half a round is the
  /// mean wait for a free token requested at a uniformly random moment.
  Cycle token_round_cycles(int nodes) const {
    return token_hop_latency * static_cast<Cycle>(nodes);
  }

  void validate() const {
    if (wavelengths < 1 || gbps_per_wavelength <= 0 || clock_ghz <= 0) {
      throw std::invalid_argument("OnocParams: non-positive channel spec");
    }
    if (eo_latency < 1 || oe_latency < 1 || token_hop_latency < 1) {
      throw std::invalid_argument("OnocParams: latencies must be >= 1");
    }
  }

  /// Reads "onoc.*" keys with these defaults.
  static OnocParams from_config(const Config& cfg);
};

}  // namespace sctm::onoc
