// Config-driven experiments: build workloads, networks and replay settings
// from a flat Config so whole studies are reproducible from one text file.
//
// Key groups:
//   app.name / app.cores / app.lines_per_core / app.iterations / app.seed
//   capture.kind, target.kind   (ideal|enoc|onoc-token|onoc-setup|
//                                onoc-swmr|hybrid)
//   net.topology  (mesh|torus|ring|mesh3d|torus3d|file; default mesh)
//   net.mesh_width / net.mesh_height / net.mesh_depth  (lattice extents)
//   net.ring_nodes                    (ring size; default width*height)
//   net.topology.file                 (edge-list file for net.topology=file)
//   enoc.* / onoc.* / fullsys.*       (forwarded to the module parsers)
//   fault.*                           (fault injection; see fault/fault_spec)
//   replay.mode (naive|sctm), replay.window, replay.max_iterations
//   experiment.mode = exec | replay | accuracy
#pragma once

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/driver.hpp"
#include "core/error_metrics.hpp"

namespace sctm::core {

/// Parses a network kind name; throws std::invalid_argument on junk.
NetKind net_kind_from(const std::string& name);

/// Fabric from config: net.topology selects the kind (default mesh),
/// net.mesh_width/height/depth and net.ring_nodes size the lattice kinds,
/// net.topology.file names the edge-list file for net.topology = file.
/// Errors carry the config source line when one is known.
noc::Topology topology_from_config(const Config& cfg);

/// NetSpec from config: `<which>.kind` selects the network, the fabric comes
/// from topology_from_config(), module parameters from enoc.*/onoc.*, and
/// the fault regime from fault.* (absent keys = inert spec). When the config
/// has no explicit enoc.routing key the spec gets the topology's natural
/// algorithm (noc::default_algo), so 3D and file fabrics run without extra
/// keys.
NetSpec netspec_from_config(const Config& cfg, const std::string& which);

fullsys::AppParams app_from_config(const Config& cfg);
ReplayConfig replay_from_config(const Config& cfg);

/// Runs the experiment the config describes and returns the result rows:
///   exec     - execution-driven run on `target`
///   replay   - capture on `capture`, replay on `target`
///   accuracy - capture on `capture`, naive+sctm replay on `target`,
///              execution-driven truth on `target`, error report
Table run_experiment(const Config& cfg);

}  // namespace sctm::core
