#include "fullsys/protocol.hpp"

namespace sctm::fullsys {

const char* to_string(ProtoMsg t) {
  switch (t) {
    case ProtoMsg::kGetS: return "GetS";
    case ProtoMsg::kGetM: return "GetM";
    case ProtoMsg::kPutM: return "PutM";
    case ProtoMsg::kWbAck: return "WbAck";
    case ProtoMsg::kData: return "Data";
    case ProtoMsg::kDataM: return "DataM";
    case ProtoMsg::kInv: return "Inv";
    case ProtoMsg::kInvAck: return "InvAck";
    case ProtoMsg::kRecall: return "Recall";
    case ProtoMsg::kRecallData: return "RecallData";
    case ProtoMsg::kRecallStale: return "RecallStale";
    case ProtoMsg::kMemRead: return "MemRead";
    case ProtoMsg::kMemWrite: return "MemWrite";
    case ProtoMsg::kMemData: return "MemData";
    case ProtoMsg::kBarArrive: return "BarArrive";
    case ProtoMsg::kBarRelease: return "BarRelease";
    case ProtoMsg::kUnblock: return "Unblock";
  }
  return "?";
}

}  // namespace sctm::fullsys
