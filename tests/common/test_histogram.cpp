#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace sctm {
namespace {

TEST(Histogram, EmptyBehaviour) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, BasicMoments) {
  Histogram h;
  for (const std::uint64_t v : {1, 2, 3, 4, 5}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 5u);
}

TEST(Histogram, MedianOddAndEven) {
  Histogram odd;
  for (const std::uint64_t v : {1, 2, 3, 4, 5}) odd.add(v);
  EXPECT_EQ(odd.percentile(0.5), 3u);

  Histogram even;
  for (const std::uint64_t v : {1, 2, 3, 4}) even.add(v);
  EXPECT_EQ(even.percentile(0.5), 2u);  // smallest v covering half the mass
}

TEST(Histogram, PercentileEdges) {
  Histogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 99u);
  EXPECT_EQ(h.percentile(0.99), 98u);
}

TEST(Histogram, OverflowRegionExact) {
  Histogram h(/*dense_limit=*/16);
  h.add(10);
  h.add(1000);
  h.add(1000000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 1000000u);
  EXPECT_EQ(h.percentile(1.0), 1000000u);
  EXPECT_EQ(h.count_at(1000), 1u);
  EXPECT_EQ(h.count_at(999), 0u);
}

TEST(Histogram, PercentilesMatchSortedVector) {
  Rng rng(99);
  Histogram h(64);
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_below(500);
    h.add(v);
    vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    std::size_t rank = static_cast<std::size_t>(q * vals.size());
    if (static_cast<double>(rank) < q * static_cast<double>(vals.size())) {
      ++rank;
    }
    if (rank == 0) rank = 1;
    EXPECT_EQ(h.percentile(q), vals[rank - 1]) << "q=" << q;
  }
}

TEST(Histogram, MergePreservesCountsAndShape) {
  Histogram a, b;
  for (std::uint64_t v = 0; v < 10; ++v) a.add(v);
  for (std::uint64_t v = 10; v < 20; ++v) b.add(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 19u);
  EXPECT_DOUBLE_EQ(a.mean(), 9.5);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.add(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SummaryMentionsKeyFields) {
  Histogram h;
  h.add(7);
  const auto s = h.summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("p50=7"), std::string::npos);
}

}  // namespace
}  // namespace sctm
