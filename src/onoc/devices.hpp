// Photonic device models.
//
// Parameter defaults are era-typical published constants (Corona/Firefly/
// FlexiShare generation, ~2008-2012): silicon microring modulators/filters,
// SOI waveguides, off-chip comb laser. The loss budget (loss.hpp) composes
// these into a worst-case optical path and a laser power requirement, which
// is what the power comparison experiments consume.
#pragma once

namespace sctm::onoc {

struct MicroringParams {
  double through_loss_db = 0.01;   // per ring passed in the through state
  double drop_loss_db = 0.5;       // dropping into the receiver
  double insertion_loss_db = 0.5;  // modulator insertion
  double heating_uw = 26.0;        // thermal trimming per ring (static)
  double modulation_fj_per_bit = 50.0;
  double detection_fj_per_bit = 25.0;

  bool operator==(const MicroringParams&) const = default;
};

struct WaveguideParams {
  double propagation_db_per_cm = 1.0;
  double crossing_loss_db = 0.05;  // per waveguide crossing
  double bend_loss_db = 0.005;     // per 90-degree bend
  double coupler_loss_db = 1.0;    // fiber-to-chip coupler (x2 per path)
  /// Group index of the SOI waveguide (light speed divisor).
  double group_index = 4.2;

  bool operator==(const WaveguideParams&) const = default;
};

struct PhotodetectorParams {
  double sensitivity_dbm = -20.0;  // minimum detectable power per lambda

  bool operator==(const PhotodetectorParams&) const = default;
};

struct LaserParams {
  double wall_plug_efficiency = 0.3;  // electrical->optical
  double power_margin_db = 1.0;       // engineering margin on the budget

  bool operator==(const LaserParams&) const = default;
};

/// Time of flight in seconds for a waveguide of `length_cm`.
double time_of_flight_s(double length_cm, const WaveguideParams& wg);

/// Rings needed by a single-writer-per-channel WDM crossbar:
/// each node carries modulator rings for every wavelength of every channel
/// it can write, plus filter rings for every wavelength it can receive.
long total_ring_count(int nodes, int channels_per_node, int wavelengths);

}  // namespace sctm::onoc
