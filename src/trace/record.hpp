// Trace records: the on-disk/in-memory form of a captured workload.
//
// A record is one network message with its capture timing and its causal
// dependency annotations. The dependency is the paper's key addition over a
// plain timestamped trace: `parent` is the message whose *arrival at this
// record's source node* gated the injection, and `slack` is the endpoint
// processing/compute time between that arrival and the injection. Replay
// reconstructs injection times from dependencies instead of trusting the
// frozen timestamps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "noc/message.hpp"

namespace sctm::trace {

struct TraceDep {
  MsgId parent = kInvalidMsg;
  Cycle slack = 0;

  bool operator==(const TraceDep&) const = default;
};

struct TraceRecord {
  MsgId id = kInvalidMsg;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t size_bytes = 0;
  noc::MsgClass cls = noc::MsgClass::kRequest;
  /// Protocol type byte (fullsys::ProtoMsg value); opaque to this layer.
  std::uint8_t proto = 0;

  Cycle inject_time = kNoCycle;  // capture-network injection time
  Cycle arrive_time = kNoCycle;  // capture-network arrival time

  std::vector<TraceDep> deps;

  Cycle latency() const { return arrive_time - inject_time; }
  bool operator==(const TraceRecord&) const = default;
};

struct Trace {
  // Metadata (provenance of the capture run).
  std::string app;
  std::string capture_network;
  std::int32_t nodes = 0;
  Cycle capture_runtime = 0;  // application runtime on the capture network
  std::uint64_t seed = 0;

  /// Records in injection order (ids strictly increase with capture order).
  std::vector<TraceRecord> records;

  bool operator==(const Trace&) const = default;
};

}  // namespace sctm::trace
