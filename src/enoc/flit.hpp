// Flit: the unit of electrical-NoC flow control.
//
// A message is segmented into one head flit (carrying routing state) plus
// body flits and a tail flit. Flits carry only what the datapath needs; the
// owning EnocNetwork keeps the full Message until tail ejection.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "noc/message.hpp"

namespace sctm::enoc {

struct Flit {
  MsgId msg = kInvalidMsg;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  noc::MsgClass cls = noc::MsgClass::kRequest;

  std::uint32_t seq = 0;        // flit index within the packet
  bool is_head = false;
  bool is_tail = false;

  /// Dateline subclass (torus/ring VC discipline): 0 before crossing the
  /// wrap link of the current dimension, 1 after. Reset on dimension change.
  std::uint8_t dateline = 0;

  /// VC the flit occupies at its *current* input buffer (set on arrival).
  std::int16_t vc = -1;

  Cycle injected_at = kNoCycle;  // network acceptance time (head of packet)
};

}  // namespace sctm::enoc
