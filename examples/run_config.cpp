// Config-file experiment runner: the reproducible-study entry point.
//
//   ./build/examples/run_config configs/accuracy_fft_onoc.cfg
//                               [--stats-json <file>]
//
// The config describes the workload, the capture/target networks and the
// replay settings; the result table prints here and the exact set of
// consumed keys is echoed for provenance. With --stats-json, the table and
// the consumed-key echo also land in a machine-readable run-metrics
// document.
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>

#include "common/json.hpp"
#include "common/run_metrics.hpp"
#include "core/experiment.hpp"

namespace {

std::string now_iso8601() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cfg_path;
  std::string stats_json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_json = argv[++i];
    } else if (cfg_path.empty()) {
      cfg_path = argv[i];
    } else {
      cfg_path.clear();
      break;
    }
  }
  if (cfg_path.empty()) {
    std::fprintf(stderr,
                 "usage: run_config <experiment.cfg> [--stats-json <file>]\n");
    return 2;
  }
  try {
    const auto cfg = sctm::Config::from_file(cfg_path);
    const auto table = sctm::core::run_experiment(cfg);
    std::fputs(table.to_ascii().c_str(), stdout);
    std::puts("-- consumed configuration --");
    std::fputs(cfg.consumed_dump().c_str(), stdout);

    if (!stats_json.empty()) {
      sctm::RunMetrics m;
      m.manifest.tool = "run_config";
      m.manifest.created = now_iso8601();
      m.manifest.set("config_file", cfg_path);
      sctm::JsonWriter results;
      results.begin_object();
      results.key("table");
      sctm::write_table_json(results, table);
      results.key("consumed_config");
      results.value(cfg.consumed_dump());
      results.end_object();
      m.set_results_json(std::move(results).str());
      m.write_file(stats_json);
      std::printf("run metrics json -> %s\n", stats_json.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
