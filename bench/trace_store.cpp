// Trace-store bench: v1 monolith vs v2 chunked container.
//
// Measures encode/decode throughput of both on-disk formats (all in memory,
// so the numbers are codec-bound, not filesystem-bound) plus the v2
// chunk-streamed path used by replay ingestion, on two traces: a real
// workload capture (where id/time locality makes the delta codec shine) and
// a synthetic uniform-traffic trace (the adversarial-ish case: random
// src/dst, jittered timestamps). The captured-trace compression ratio v1/v2
// is the headline number and carries the floor.
//
// Emits bench_results/BENCH_trace_store.json and exits non-zero if any
// round-trip is not bit-identical or the captured-trace compression ratio
// falls below the 1.5x floor. `--smoke` runs a reduced configuration for CI.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/run_metrics.hpp"
#include "trace/trace_io.hpp"
#include "tracestore/trace_store.hpp"

namespace sctm {
namespace {

/// Best-of-N wall time of fn, in seconds.
double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

double mrec_per_s(std::size_t records, double s) {
  return s > 0 ? static_cast<double>(records) / s / 1e6 : 0.0;
}

/// Uniform random traffic with jittered timestamps and 0-2 deps/record:
/// none of the capture-time locality, so it shows the codec's worst side.
trace::Trace synthetic_trace(std::size_t records) {
  Rng rng(42);
  trace::Trace t;
  t.app = "synthetic-uniform";
  t.capture_network = "none";
  t.nodes = 64;
  t.seed = 42;
  MsgId id = 0;
  Cycle now = 0;
  std::vector<MsgId> recent;
  for (std::size_t i = 0; i < records; ++i) {
    trace::TraceRecord r;
    id += 1 + rng.next_below(9);
    now += rng.next_below(200);
    r.id = id;
    r.src = static_cast<NodeId>(rng.next_below(64));
    r.dst = static_cast<NodeId>(rng.next_below(64));
    r.size_bytes = 8u << rng.next_below(7);
    r.cls = rng.next_bool(0.5) ? noc::MsgClass::kData : noc::MsgClass::kReply;
    r.inject_time = now;
    r.arrive_time = now + 10 + rng.next_below(500);
    const std::size_t ndeps = rng.next_below(3);
    for (std::size_t k = 0; k < ndeps && k < recent.size(); ++k) {
      trace::TraceDep d;
      d.parent = recent[recent.size() - 1 - k];
      d.slack = rng.next_below(1000);
      r.deps.push_back(d);
    }
    recent.push_back(r.id);
    t.records.push_back(r);
  }
  t.capture_runtime = now + 1000;
  return t;
}

struct PathResult {
  std::string name;
  std::size_t bytes = 0;
  double encode_s = 0;
  double decode_s = 0;
};

struct TraceResults {
  std::string label;
  std::size_t records = 0;
  std::vector<PathResult> paths;  // v1, v2, v2 parallel dec, v2 streamed dec
  double ratio = 0;
  bool round_trips_ok = false;
  bool hash_ok = false;
};

TraceResults measure(const std::string& label, const trace::Trace& t,
                     int reps) {
  TraceResults out;
  out.label = label;
  const std::size_t n = t.records.size();
  out.records = n;

  PathResult v1{"v1 monolith"};
  std::string v1_bytes;
  v1.encode_s = best_seconds(reps, [&] {
    std::ostringstream os;
    trace::write_binary(t, os);
    v1_bytes = std::move(os).str();
  });
  v1.bytes = v1_bytes.size();
  trace::Trace v1_back;
  v1.decode_s = best_seconds(reps, [&] {
    std::istringstream is(v1_bytes);
    v1_back = trace::read_binary(is);
  });

  PathResult v2{"v2 chunked"};
  std::string v2_bytes;
  v2.encode_s = best_seconds(reps, [&] {
    std::ostringstream os;
    tracestore::write_v2(t, os);
    v2_bytes = std::move(os).str();
  });
  v2.bytes = v2_bytes.size();
  trace::Trace v2_back;
  v2.decode_s = best_seconds(reps, [&] {
    tracestore::TraceReader reader(
        tracestore::memory_source(v2_bytes.data(), v2_bytes.size()));
    v2_back = reader.read_all(false);
  });

  PathResult v2p{"v2 parallel dec"};
  v2p.bytes = v2.bytes;
  v2p.encode_s = v2.encode_s;
  v2p.decode_s = best_seconds(reps, [&] {
    tracestore::TraceReader reader(
        tracestore::memory_source(v2_bytes.data(), v2_bytes.size()));
    trace::Trace got = reader.read_all(true);
    if (got.records.size() != n) std::abort();
  });

  PathResult v2s{"v2 streamed dec"};
  v2s.bytes = v2.bytes;
  v2s.encode_s = v2.encode_s;
  std::size_t streamed = 0;
  v2s.decode_s = best_seconds(reps, [&] {
    tracestore::TraceReader reader(
        tracestore::memory_source(v2_bytes.data(), v2_bytes.size()));
    tracestore::ChunkCursor cursor(reader, /*prefetch=*/true);
    std::vector<trace::TraceRecord> chunk;
    streamed = 0;
    while (cursor.next(chunk)) streamed += chunk.size();
  });

  out.paths = {v1, v2, v2p, v2s};
  out.ratio = v2.bytes > 0 ? static_cast<double>(v1.bytes) / v2.bytes : 0.0;
  out.round_trips_ok = v1_back == t && v2_back == t && streamed == n;
  out.hash_ok =
      tracestore::content_hash(t) ==
      tracestore::TraceReader(
          tracestore::memory_source(v2_bytes.data(), v2_bytes.size()))
          .stored_content_hash();
  return out;
}

void results_json(JsonWriter& w, const TraceResults& r) {
  w.begin_object();
  w.key("trace");
  w.value(r.label);
  w.key("records");
  w.value(static_cast<std::uint64_t>(r.records));
  w.key("v1_bytes");
  w.value(static_cast<std::uint64_t>(r.paths[0].bytes));
  w.key("v2_bytes");
  w.value(static_cast<std::uint64_t>(r.paths[1].bytes));
  w.key("compression_ratio");
  w.value(r.ratio);
  w.key("v1_encode_mrec_s");
  w.value(mrec_per_s(r.records, r.paths[0].encode_s));
  w.key("v1_decode_mrec_s");
  w.value(mrec_per_s(r.records, r.paths[0].decode_s));
  w.key("v2_encode_mrec_s");
  w.value(mrec_per_s(r.records, r.paths[1].encode_s));
  w.key("v2_decode_mrec_s");
  w.value(mrec_per_s(r.records, r.paths[1].decode_s));
  w.key("v2_parallel_decode_mrec_s");
  w.value(mrec_per_s(r.records, r.paths[2].decode_s));
  w.key("v2_streamed_decode_mrec_s");
  w.value(mrec_per_s(r.records, r.paths[3].decode_s));
  w.end_object();
}

int run(bool smoke) {
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = smoke ? 1 : 6;
  const auto exec = core::run_execution(app, bench::enoc_spec(), {});
  const int reps = smoke ? 3 : 7;

  const TraceResults captured =
      measure("captured (fft @ enoc 4x4)", exec.trace, reps);
  const TraceResults synthetic = measure(
      "synthetic uniform", synthetic_trace(smoke ? 4000 : 50000), reps);

  Table table("trace container formats: v1 monolith vs v2 chunked");
  table.set_header(
      {"trace", "path", "bytes", "B/record", "enc Mrec/s", "dec Mrec/s"});
  for (const TraceResults* r : {&captured, &synthetic}) {
    for (const PathResult& p : r->paths) {
      table.add_row(
          {r->label, p.name, std::to_string(p.bytes),
           Table::fmt(r->records
                          ? static_cast<double>(p.bytes) / r->records
                          : 0.0,
                      2),
           Table::fmt(mrec_per_s(r->records, p.encode_s), 2),
           Table::fmt(mrec_per_s(r->records, p.decode_s), 2)});
    }
  }

  RunMetrics m = bench::bench_metrics(table, "BENCH_trace_store");
  {
    JsonWriter results;
    results.begin_object();
    results.key("table");
    write_table_json(results, table);
    results.key("traces");
    results.begin_array();
    results_json(results, captured);
    results_json(results, synthetic);
    results.end_array();
    results.key("bars");
    results.begin_array();
    results.begin_object();
    results.key("name");
    results.value("captured_compression_ratio_v1_over_v2");
    results.key("value");
    results.value(captured.ratio);
    results.key("floor");
    results.value(1.5);
    results.end_object();
    results.end_array();
    results.end_object();
    m.set_results_json(std::move(results).str());
  }
  bench::emit(table, "BENCH_trace_store", m);

  std::printf("\ncompression ratio v1/v2: captured %.2fx, synthetic %.2fx\n",
              captured.ratio, synthetic.ratio);

  int rc = 0;
  rc |= bench::verdict(captured.round_trips_ok,
                       "captured trace: all round-trips bit-identical");
  rc |= bench::verdict(synthetic.round_trips_ok,
                       "synthetic trace: all round-trips bit-identical");
  rc |= bench::verdict(captured.hash_ok && synthetic.hash_ok,
                       "stored content hashes match recomputation");
  rc |= bench::verdict(captured.ratio >= 1.5,
                       "captured compression ratio >= 1.5x floor");
  return rc;
}

}  // namespace
}  // namespace sctm

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return sctm::run(smoke);
}
