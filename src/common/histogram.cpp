#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace sctm {

Histogram::Histogram(std::uint64_t dense_limit) : dense_limit_(dense_limit) {}

void Histogram::add(std::uint64_t value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_lo_ += value;
  if (value < dense_limit_) {
    // Geometric growth: a slowly rising max (packet latencies creeping up
    // under load) costs O(log max) reallocations over a run, not one per new
    // maximum — the delivery path must stay allocation-free in steady state.
    if (dense_.size() <= value) dense_.resize(std::bit_ceil(value + 1), 0);
    ++dense_[value];
  } else {
    ++overflow_[value];
  }
}

void Histogram::merge(const Histogram& other) {
  for (std::uint64_t v = 0; v < other.dense_.size(); ++v) {
    for (std::uint64_t i = 0; i < other.dense_[v]; ++i) add(v);
  }
  for (const auto& [v, n] : other.overflow_) {
    for (std::uint64_t i = 0; i < n; ++i) add(v);
  }
}

void Histogram::reset() {
  dense_.clear();
  overflow_.clear();
  count_ = sum_lo_ = min_ = max_ = 0;
}

double Histogram::mean() const {
  return count_ ? static_cast<double>(sum_lo_) / static_cast<double>(count_)
                : 0.0;
}

std::uint64_t Histogram::min() const { return count_ ? min_ : 0; }
std::uint64_t Histogram::max() const { return count_ ? max_ : 0; }

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; ceil(q * count) with a floor of 1.
  const double exact = q * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;

  std::uint64_t seen = 0;
  for (std::uint64_t v = 0; v < dense_.size(); ++v) {
    seen += dense_[v];
    if (seen >= rank) return v;
  }
  for (const auto& [v, n] : overflow_) {
    seen += n;
    if (seen >= rank) return v;
  }
  return max_;
}

std::uint64_t Histogram::count_at(std::uint64_t value) const {
  if (value < dense_.size()) return dense_[value];
  const auto it = overflow_.find(value);
  return it == overflow_.end() ? 0 : it->second;
}

std::string Histogram::summary() const {
  std::ostringstream ss;
  ss << "n=" << count_ << " mean=" << mean() << " p50=" << percentile(0.5)
     << " p95=" << percentile(0.95) << " p99=" << percentile(0.99)
     << " max=" << max();
  return ss.str();
}

}  // namespace sctm
