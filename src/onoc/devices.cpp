#include "onoc/devices.hpp"

namespace sctm::onoc {

double time_of_flight_s(double length_cm, const WaveguideParams& wg) {
  constexpr double kC_cm_per_s = 2.99792458e10;
  return length_cm * wg.group_index / kC_cm_per_s;
}

long total_ring_count(int nodes, int channels_per_node, int wavelengths) {
  // Modulator rings: every node writes every channel (MWSR) -> per node,
  // (nodes-1) destination channels x wavelengths. Filter rings: each node's
  // receiver drops its own channel's wavelengths.
  const long mod = static_cast<long>(nodes) * channels_per_node * wavelengths;
  const long filt = static_cast<long>(nodes) * wavelengths;
  return mod + filt;
}

}  // namespace sctm::onoc
