# Empty dependencies file for sctm_enoc.
# This may be replaced when dependencies are built.
