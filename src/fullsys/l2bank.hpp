// Shared L2 bank with an in-bank full-map MSI directory.
//
// Blocking directory: one transaction per line at a time; requests that hit
// a busy line are deferred FIFO and replayed on completion. The data array
// is finite (presence/dirty only — dataless protocol); the directory map is
// unbounded ("perfect directory", a documented simplification). Dirty L2
// victims are written back to memory (MemWrite, no reply).
//
// Transaction phases:
//   WaitMem     - line fetched from the memory controller
//   WaitRecall  - dirty owner recalled (GetS/GetM vs. M); a crossing PutM is
//                 accepted as the recall data and the later RecallStale is
//                 dropped
//   WaitInv     - sharers invalidated before granting M
//   WaitUnblock - data sent; the transaction closes only on the requester's
//                 Unblock receipt, so no later Inv/Recall can overtake the
//                 grant it would chase (the race the protocol fuzzer found)
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>

#include "fullsys/cache.hpp"
#include "fullsys/fabric.hpp"
#include "fullsys/params.hpp"
#include "sim/component.hpp"

namespace sctm::fullsys {

class L2Bank : public Component {
 public:
  L2Bank(Simulator& sim, std::string name, NodeId id,
         const FullSysParams& params, Fabric& fabric);

  /// Protocol messages addressed to this bank.
  void on_message(ProtoMsg type, NodeId src, std::uint64_t line, MsgId msg_id);

  std::uint64_t l2_hits() const { return data_.hits(); }
  std::uint64_t l2_misses() const { return data_.misses(); }
  std::size_t directory_entries() const { return dir_.size(); }
  bool quiescent() const { return busy_.empty(); }

  /// Diagnostic snapshot of in-flight transactions:
  /// (line, phase as int, requester, pending_acks, deferred_count).
  std::vector<std::tuple<std::uint64_t, int, NodeId, int, int>>
  busy_snapshot() const;

  /// Calls `fn(line, state, owner, sharers)` for each directory entry
  /// (audit; only meaningful when quiescent()).
  template <typename Fn>
  void for_each_dir_entry(Fn&& fn) const {
    for (const auto& [line, e] : dir_) fn(line, e.state, e.owner, e.sharers);
  }

 private:
  struct DirEntry {
    LineState state = LineState::kI;  // kS: sharers valid; kM: owner valid
    std::set<NodeId> sharers;
    NodeId owner = kInvalidNode;
  };
  enum class Phase : std::uint8_t {
    kWaitMem,
    kWaitRecall,
    kWaitInv,
    kWaitUnblock,  // data sent; waiting for the requester's receipt
  };
  struct Txn {
    Phase phase = Phase::kWaitMem;
    NodeId requester = kInvalidNode;
    bool is_getm = false;
    int pending_acks = 0;
    bool expect_stale = false;  // PutM crossed the Recall
    MsgId last_cause = kInvalidMsg;
    std::vector<MsgId> ack_causes;
  };
  struct Deferred {
    ProtoMsg type;
    NodeId src;
    MsgId msg_id;
  };

  void handle_request(ProtoMsg type, NodeId src, std::uint64_t line,
                      MsgId msg_id);
  void handle_gets(NodeId src, std::uint64_t line, MsgId cause);
  void handle_getm(NodeId src, std::uint64_t line, MsgId cause);
  void handle_putm_idle(NodeId src, std::uint64_t line, MsgId cause);
  /// After data is guaranteed present: finish a GetS/GetM transaction.
  void grant(std::uint64_t line, Txn& txn);
  void complete(std::uint64_t line);
  /// Inserts into the data array, writing dirty victims back to memory.
  void data_insert(std::uint64_t line, bool dirty, MsgId cause);
  void send_after(Cycle delay, ProtoMsg type, NodeId dst, std::uint64_t line,
                  std::vector<MsgId> causes);

  NodeId id_;
  FullSysParams params_;
  Fabric& fabric_;
  Cache data_;  // kS = clean present, kM = dirty present
  std::unordered_map<std::uint64_t, DirEntry> dir_;
  std::unordered_map<std::uint64_t, Txn> busy_;
  std::unordered_map<std::uint64_t, std::deque<Deferred>> deferred_;

  std::uint64_t& stat_requests_;
  std::uint64_t& stat_recalls_;
  std::uint64_t& stat_invs_;
  std::uint64_t& stat_mem_reads_;
  std::uint64_t& stat_mem_writes_;
};

}  // namespace sctm::fullsys
