// Design-space exploration over a single captured trace.
//
// The workflow the trace pipeline exists for: capture once on any network,
// then evaluate many candidate network designs at replay speed — in
// parallel, since each candidate replays in its own Simulator. Results come
// back ranked by predicted application-visible runtime.
//
// Two tiers (DESIGN.md §12): full replay of every candidate (this file),
// and analytic screening (src/analytic/screen.hpp), which scores every
// candidate from a one-pass TraceProfile and confirms only the top-K with
// replay. ExploreConfig carries the knobs for both so one config travels
// the whole pipeline; screen_top_k is interpreted by the screening layer.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/run_metrics.hpp"
#include "core/replay.hpp"
#include "core/driver.hpp"
#include "trace/record.hpp"

namespace sctm::core {

struct Candidate {
  std::string name;
  NetSpec spec;
};

struct ExploreResult {
  std::string name;
  Cycle runtime = 0;
  double mean_latency = 0;
  Cycle p99_latency = 0;
  int iterations = 1;
  double wall_seconds = 0;

  /// True when the numbers above come from full replay; false for
  /// analytic-only (screened-out) candidates, whose replay fields are 0.
  bool replayed = true;
  /// 1-based position in the analytic ranking (0 when no screen ran).
  std::size_t analytic_rank = 0;
  /// Tier-0 estimates (populated only when a screen ran).
  double est_runtime = 0;
  double est_mean_latency = 0;
  double est_p99 = 0;
  /// Wall seconds of the analytic scoring for this candidate.
  double analytic_seconds = 0;
};

struct ExploreConfig {
  ReplayConfig replay{};
  /// Candidate-level workers (0 = hardware concurrency).
  unsigned threads = 0;
  /// 0 = replay every candidate. K >= 1 = rank all candidates analytically
  /// and confirm only the top K with full replay (analytic::explore_screened).
  std::size_t screen_top_k = 0;
};

/// Reads the "explore.screen.*" keys ("explore.screen.top_k") on top of
/// `base`. An explicit top_k of 0 (or a negative value) hard-errors with
/// the key's source line: a screen that confirms nothing is a config bug,
/// not a request for an empty table.
ExploreConfig explore_config_from(const Config& cfg,
                                  const ExploreConfig& base = {});

/// Parses a candidates config ("candidate.<name>.<param>" namespaces using
/// the experiment-config vocabulary) into named NetSpecs. Hard-errors — with
/// `source`-prefixed, line-numbered messages — on malformed keys, on
/// per-candidate specs that fail to build, and on a file defining no
/// candidates at all (an empty design space is a config bug, never an empty
/// table). Keys under "explore." are reserved for explore_config_from and
/// skipped here; any other unknown top-level key is an error.
std::vector<Candidate> candidates_from_config(const Config& cfg,
                                              const std::string& source);

/// Replays `rt` over every candidate (parallel across cfg.threads workers;
/// 0 = hardware concurrency) and returns results sorted by runtime
/// ascending (ties by name). Deterministic: thread scheduling cannot change
/// any result, only the wall clock. Throws std::invalid_argument on an
/// empty candidate list. cfg.screen_top_k is ignored here — screening
/// lives in analytic::explore_screened, which delegates to this.
std::vector<ExploreResult> explore(const ReplayTrace& rt,
                                   const std::vector<Candidate>& candidates,
                                   const ExploreConfig& cfg = {});

/// In-memory convenience overload (ingests the trace, then explores).
std::vector<ExploreResult> explore(const trace::Trace& trace,
                                   const std::vector<Candidate>& candidates,
                                   const ReplayConfig& config = {},
                                   unsigned threads = 0);

/// Standard metrics document for an exploration: manifest identifies the
/// exact trace (id + content hash), the resolved candidate count, replay
/// mode and screen setting; results.ranking carries one entry per candidate
/// with both the analytic and (when replayed) full-replay numbers.
RunMetrics metrics_for_explore(const ReplayTrace& rt,
                               const std::vector<Candidate>& candidates,
                               const ExploreConfig& cfg,
                               const std::vector<ExploreResult>& results,
                               std::string tool, std::string created);

}  // namespace sctm::core
