#include "noc/routing.hpp"

#include <stdexcept>

namespace sctm::noc {
namespace {

RoutePorts xy_route(const Topology& topo, NodeId cur, NodeId dst,
                    bool x_first) {
  const Coord c = topo.coords(cur);
  const Coord d = topo.coords(dst);
  RoutePorts out;
  auto push_x = [&] {
    if (d.x > c.x) out.push_back(kEast);
    else if (d.x < c.x) out.push_back(kWest);
  };
  auto push_y = [&] {
    if (d.y > c.y) out.push_back(kSouth);
    else if (d.y < c.y) out.push_back(kNorth);
  };
  if (x_first) {
    push_x();
    if (out.empty()) push_y();
  } else {
    push_y();
    if (out.empty()) push_x();
  }
  return out;
}

// Chiu's odd-even minimal adaptive routing (IEEE TPDS 2000, Fig. 3).
// Even columns forbid EN/ES turns; odd columns forbid NW/SW turns. The
// vertical direction sign does not affect the rules, so our y-down
// convention is immaterial.
RoutePorts odd_even_route(const Topology& topo, NodeId src, NodeId cur,
                          NodeId dst) {
  const Coord c = topo.coords(cur);
  const Coord d = topo.coords(dst);
  const Coord s = topo.coords(src);
  RoutePorts out;
  const int e0 = d.x - c.x;
  const int e1 = d.y - c.y;
  const int vertical = e1 > 0 ? kSouth : kNorth;

  if (e0 == 0) {
    if (e1 != 0) out.push_back(vertical);
    return out;
  }
  if (e0 > 0) {  // eastbound
    if (e1 == 0) {
      out.push_back(kEast);
    } else {
      if (c.x % 2 == 1 || c.x == s.x) out.push_back(vertical);
      if (d.x % 2 == 1 || e0 != 1) out.push_back(kEast);
    }
  } else {  // westbound
    out.push_back(kWest);
    if (c.x % 2 == 0 && e1 != 0) out.push_back(vertical);
  }
  return out;
}

RoutePorts ring_route(const Topology& topo, NodeId cur, NodeId dst) {
  const int count = topo.node_count();
  const int fwd = (static_cast<int>(dst) - cur + count) % count;
  const int bwd = count - fwd;
  RoutePorts out;
  out.push_back(fwd <= bwd ? kRingCw : kRingCcw);
  return out;
}

// Dimension-ordered x -> y -> z. On mesh3d each dimension has one
// productive direction; on torus3d the shorter way wins (ties break toward
// the positive direction, matching torus_dor_route).
RoutePorts xyz_route(const Topology& topo, NodeId cur, NodeId dst) {
  const Coord c = topo.coords(cur);
  const Coord d = topo.coords(dst);
  const bool wraps = topo.kind() == Topology::Kind::kTorus3D;
  RoutePorts out;
  const auto resolve = [&](int cc, int dc, int extent, int pos, int neg) {
    if (cc == dc) return false;
    if (wraps) {
      const int fwd = ((dc - cc) % extent + extent) % extent;
      out.push_back(fwd <= extent - fwd ? pos : neg);
    } else {
      out.push_back(dc > cc ? pos : neg);
    }
    return true;
  };
  if (resolve(c.x, d.x, topo.width(), kEast, kWest)) return out;
  if (resolve(c.y, d.y, topo.height(), kSouth, kNorth)) return out;
  resolve(c.z, d.z, topo.depth(), kUp, kDown);
  return out;
}

RoutePorts torus_dor_route(const Topology& topo, NodeId cur, NodeId dst) {
  const Coord c = topo.coords(cur);
  const Coord d = topo.coords(dst);
  RoutePorts out;
  if (c.x != d.x) {
    const int w = topo.width();
    const int east_hops = ((d.x - c.x) % w + w) % w;
    const int west_hops = w - east_hops;
    out.push_back(east_hops <= west_hops ? kEast : kWest);
    return out;
  }
  const int h = topo.height();
  const int south_hops = ((d.y - c.y) % h + h) % h;
  const int north_hops = h - south_hops;
  out.push_back(south_hops <= north_hops ? kSouth : kNorth);
  return out;
}

}  // namespace

RoutePorts route_ports(const Topology& topo, RoutingAlgo algo, NodeId src,
                       NodeId cur, NodeId dst) {
  if (!topo.valid_node(cur) || !topo.valid_node(dst) || !topo.valid_node(src)) {
    throw std::logic_error("route_candidates: invalid node");
  }
  if (cur == dst) return {};
  RoutePorts out;
  switch (algo) {
    case RoutingAlgo::kXY: out = xy_route(topo, cur, dst, /*x_first=*/true); break;
    case RoutingAlgo::kYX: out = xy_route(topo, cur, dst, /*x_first=*/false); break;
    case RoutingAlgo::kOddEven: out = odd_even_route(topo, src, cur, dst); break;
    case RoutingAlgo::kRingShortest: out = ring_route(topo, cur, dst); break;
    case RoutingAlgo::kTorusDor: out = torus_dor_route(topo, cur, dst); break;
    case RoutingAlgo::kXyz: out = xyz_route(topo, cur, dst); break;
    case RoutingAlgo::kTable:
      throw std::logic_error(
          "route_ports: table routing needs a RoutingTable (owned by the "
          "network); the stateless entry point cannot serve it");
  }
  if (out.empty()) {
    throw std::logic_error("route_candidates: no admissible port");
  }
  return out;
}

std::vector<int> route_candidates(const Topology& topo, RoutingAlgo algo,
                                  NodeId src, NodeId cur, NodeId dst) {
  const RoutePorts p = route_ports(topo, algo, src, cur, dst);
  return std::vector<int>(p.begin(), p.end());
}

int route_first(const Topology& topo, RoutingAlgo algo, NodeId src, NodeId cur,
                NodeId dst) {
  return route_ports(topo, algo, src, cur, dst).front();
}

bool compatible(const Topology& topo, RoutingAlgo algo) {
  using Kind = Topology::Kind;
  switch (algo) {
    case RoutingAlgo::kXY:
    case RoutingAlgo::kYX:
    case RoutingAlgo::kOddEven:
      return topo.kind() == Kind::kMesh;
    case RoutingAlgo::kRingShortest:
      return topo.kind() == Kind::kRing;
    case RoutingAlgo::kTorusDor:
      return topo.kind() == Kind::kTorus;
    case RoutingAlgo::kXyz:
      return topo.kind() == Kind::kMesh3D || topo.kind() == Kind::kTorus3D;
    case RoutingAlgo::kTable:
      return true;  // the escape ordering exists on any connected graph
  }
  return false;
}

RoutingAlgo default_algo(const Topology& topo) {
  switch (topo.kind()) {
    case Topology::Kind::kMesh: return RoutingAlgo::kXY;
    case Topology::Kind::kTorus: return RoutingAlgo::kTorusDor;
    case Topology::Kind::kRing: return RoutingAlgo::kRingShortest;
    case Topology::Kind::kMesh3D:
    case Topology::Kind::kTorus3D:
      return RoutingAlgo::kXyz;
    case Topology::Kind::kFile: return RoutingAlgo::kTable;
  }
  return RoutingAlgo::kXY;
}

const char* to_string(RoutingAlgo algo) {
  switch (algo) {
    case RoutingAlgo::kXY: return "xy";
    case RoutingAlgo::kYX: return "yx";
    case RoutingAlgo::kOddEven: return "odd-even";
    case RoutingAlgo::kRingShortest: return "ring-shortest";
    case RoutingAlgo::kTorusDor: return "torus-dor";
    case RoutingAlgo::kXyz: return "xyz";
    case RoutingAlgo::kTable: return "table";
  }
  return "?";
}

}  // namespace sctm::noc
