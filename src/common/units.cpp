#include "common/units.hpp"

#include <cmath>

namespace sctm::units {

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

double linear_to_db(double ratio) { return 10.0 * std::log10(ratio); }

double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

}  // namespace sctm::units
