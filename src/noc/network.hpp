// Abstract network interface + an ideal (contention-free) reference network.
//
// Everything above the network (full-system engine, trace replay, traffic
// generators) talks to this interface, so the electrical baseline, the ONOC
// and the ideal model are interchangeable per experiment.
#pragma once

#include <memory>
#include <string>

#include "common/histogram.hpp"
#include "common/inline_fn.hpp"
#include "fault/fault_model.hpp"
#include "noc/message.hpp"
#include "noc/topology.hpp"
#include "sim/component.hpp"

namespace sctm {
class WorkerPool;
}

namespace sctm::noc {

class Network : public Component {
 public:
  /// Delivery callback, invoked once per delivered message on the hot path.
  /// Move-only with a 56-byte inline capture budget (no heap allocation for
  /// the usual [this]-style captures); see common/inline_fn.hpp.
  using DeliverFn = BasicInlineFn<void(const Message&)>;

  Network(Simulator& sim, std::string name, int node_count)
      : Component(sim, std::move(name)), node_count_(node_count) {}

  /// Hands a message to the network at sim().now(). The network owns the
  /// copy until delivery; `inject_time`/`arrive_time` are filled here and at
  /// delivery respectively. Networks are lossless: every injected message is
  /// eventually delivered (tests assert this). This holds even under fault
  /// injection — a message whose retransmission budget is exhausted is still
  /// surfaced (and counted in <name>.fault.messages_lost), so replay can
  /// never hang on a record that will not arrive.
  virtual void inject(Message msg) = 0;

  /// Called once per delivered message, at arrival time.
  void set_deliver_callback(DeliverFn fn) { deliver_ = std::move(fn); }

  int node_count() const { return node_count_; }

  /// True when no message is in flight (used by drivers to detect drain).
  virtual bool idle() const = 0;

  /// Session reset: returns the network to its freshly-constructed state
  /// while retaining allocated capacity (buffers, tables, histograms keep
  /// their storage). The delivery callback is preserved. Call after (or
  /// together with) Simulator::reset() — any in-flight events the queue
  /// dropped are forgotten here too. Overrides must call Network::reset().
  virtual void reset() = 0;

  // --- Partitioned-tick contract -------------------------------------------
  //
  // A backend that clocks per cycle may shard one cycle's router work across
  // the Simulator's WorkerPool: its own tick event runs
  // tick_partitioned(s, n) for every shard s in [0, n) between two barriers
  // (pure per-shard work, side effects recorded into per-shard outboxes) and
  // then calls drain_ticks() serially on the dispatching thread, which
  // applies the recorded side effects in ascending shard — hence ascending
  // router-id — order. That drain order equals the serial engine's visit
  // order, so event scheduling, delivery order and every tie-break are
  // bit-identical regardless of shard count. The defaults implement the
  // serial fallback for event-driven backends (Ideal, ONoC, Hybrid): they
  // have no per-cycle tick to shard, ignore the pool entirely, and keep
  // their ordinary event paths.

  /// True when this backend actually shards its tick over a worker pool.
  virtual bool partitioned_tick_supported() const { return false; }

  /// Ticks shard `shard` of `nshards`. Called either serially (shard 0 of 1)
  /// or concurrently from pool lanes; implementations must touch only
  /// shard-local state. Default: nothing to tick.
  virtual void tick_partitioned(unsigned shard, unsigned nshards) {
    (void)shard;
    (void)nshards;
  }

  /// Applies all side effects recorded by the preceding tick_partitioned
  /// calls, in ascending shard order, on the event-dispatching thread.
  virtual void drain_ticks() {}

  /// Minimum work items *per pool lane* before a cycle is sharded across the
  /// worker pool (ENoC: active routers; ONoC: queued arbitration requests).
  /// Below the threshold the cycle runs serially — bit-identical either way,
  /// so this is purely a cost knob. 0 shards every cycle whenever a pool is
  /// installed (tests use this to exercise the parallel path on small
  /// workloads). Backends without a partitioned tick ignore it; composites
  /// (Hybrid) forward it to every layer.
  virtual void set_parallel_grain(unsigned grain) { (void)grain; }

  // -------------------------------------------------------------------------

  /// Installs a fault model built from `spec` (must be enabled() — inert
  /// specs build no model so the fault-free path stays byte-identical).
  /// Counters register under "<name>.fault.*". Call once, before traffic;
  /// the model survives reset() (streams rewound, same schedule as fresh).
  /// Backends that model no faults (Ideal) run fault-transparent: the model
  /// is installed but nothing draws from it. Composites (Hybrid) override to
  /// hand each layer its own model with a derived seed.
  virtual void install_fault_model(const fault::FaultSpec& spec);

  fault::FaultModel* fault_model() { return fault_.get(); }
  const fault::FaultModel* fault_model() const { return fault_.get(); }

  std::uint64_t injected_count() const { return injected_; }
  std::uint64_t delivered_count() const { return delivered_; }
  const Histogram& latency_histogram() const { return latency_; }

  /// Per-class latency view (request/reply/data/control).
  const Histogram& latency_histogram(MsgClass cls) const {
    return latency_by_class_[static_cast<int>(cls)];
  }

 protected:
  /// Subclasses call this at arrival time; it stamps arrive_time, records
  /// latency and invokes the delivery callback.
  void deliver(Message msg);

  void note_injected(Message& msg);

 private:
  int node_count_;
  DeliverFn deliver_;
  /// Null unless install_fault_model() ran — the common case pays one
  /// pointer test at most.
  std::unique_ptr<fault::FaultModel> fault_;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  Histogram latency_;
  Histogram latency_by_class_[kMsgClassCount];
};

/// Contention-free network: latency = base + per_hop * distance +
/// size/bandwidth. Useful as a ground-truth in unit tests and as the
/// "infinite bandwidth" limit in sweeps.
class IdealNetwork final : public Network {
 public:
  struct Params {
    Cycle base_latency = 2;        // fixed overhead (cycles)
    Cycle per_hop_latency = 1;     // per topological hop
    double bytes_per_cycle = 16;   // serialization bandwidth

    bool operator==(const Params&) const = default;
  };

  IdealNetwork(Simulator& sim, std::string name, const Topology& topo,
               const Params& params);

  void inject(Message msg) override;
  bool idle() const override { return in_flight_ == 0; }
  void reset() override;

  /// Deterministic latency this model assigns to a message.
  Cycle model_latency(const Message& msg) const;

  const Params& params() const { return params_; }

  /// Re-parameterizes the model in place (the rebind fast path: same
  /// topology, new latency/bandwidth knobs). Parameters are only read at
  /// inject time, so this is safe whenever the network is idle — callers
  /// reset the session afterwards anyway.
  void set_params(const Params& params) { params_ = params; }

 private:
  Topology topo_;
  Params params_;
  std::uint64_t in_flight_ = 0;
};

}  // namespace sctm::noc
