#include "tracestore/trace_store.hpp"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/parallel.hpp"

namespace sctm::tracestore {
namespace {

// --- little-endian scalar packing into a byte buffer --------------------

template <typename T>
void put(std::vector<char>& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = buf.size();
  buf.resize(n + sizeof v);
  std::memcpy(buf.data() + n, &v, sizeof v);
}

/// Bounds-checked fixed-width cursor (header/index/footer parsing).
class SpanReader {
 public:
  SpanReader(const char* data, std::size_t len) : data_(data), len_(len) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (len_ - pos_ < sizeof(T)) {
      throw TraceStoreError("trace-store: truncated structure at byte " +
                            std::to_string(pos_));
    }
    T v{};
    std::memcpy(&v, data_ + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  std::string get_string(std::uint32_t len) {
    if (len_ - pos_ < len) {
      throw TraceStoreError("trace-store: truncated string at byte " +
                            std::to_string(pos_));
    }
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return len_ - pos_; }

 private:
  const char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace

// --- canonical content hashing ------------------------------------------
// The hash is over the *logical* trace (meta + records in v1 field order),
// not the container bytes, so a trace hashes identically in v1 and v2 form
// and `sctm_cli trace hash` is a format-independent identity. Declared in
// trace_store.hpp so streaming hashers (core::ReplayTrace) fold the same
// canonical field stream incrementally.

void hash_meta(Fnv1a64& h, const std::string& app, const std::string& net,
               std::int32_t nodes, Cycle runtime, std::uint64_t seed) {
  h.update_scalar(static_cast<std::uint32_t>(app.size()));
  h.update(app.data(), app.size());
  h.update_scalar(static_cast<std::uint32_t>(net.size()));
  h.update(net.data(), net.size());
  h.update_scalar(nodes);
  h.update_scalar(static_cast<std::uint64_t>(runtime));
  h.update_scalar(seed);
}

void hash_record(Fnv1a64& h, const trace::TraceRecord& r) {
  h.update_scalar(r.id);
  h.update_scalar(r.src);
  h.update_scalar(r.dst);
  h.update_scalar(r.size_bytes);
  h.update_scalar(static_cast<std::uint8_t>(r.cls));
  h.update_scalar(r.proto);
  h.update_scalar(static_cast<std::uint64_t>(r.inject_time));
  h.update_scalar(static_cast<std::uint64_t>(r.arrive_time));
  h.update_scalar(static_cast<std::uint64_t>(r.deps.size()));
  for (const auto& d : r.deps) {
    h.update_scalar(static_cast<std::uint64_t>(d.parent));
    h.update_scalar(static_cast<std::uint64_t>(d.slack));
  }
}

namespace {

// --- byte sources --------------------------------------------------------

class MemorySource final : public ByteSource {
 public:
  MemorySource(const char* data, std::size_t len) : data_(data), len_(len) {}
  std::uint64_t size() const override { return len_; }
  void read_at(std::uint64_t off, void* dst, std::size_t n) override {
    if (off > len_ || len_ - off < n) {
      throw TraceStoreError("trace-store: read past end of buffer (offset " +
                            std::to_string(off) + ")");
    }
    std::memcpy(dst, data_ + off, n);
  }

 private:
  const char* data_;
  std::size_t len_;
};

class FileSource final : public ByteSource {
 public:
  explicit FileSource(const std::string& path)
      : in_(path, std::ios::binary), path_(path) {
    if (!in_) {
      throw TraceStoreError("trace-store: cannot open " + path);
    }
    in_.seekg(0, std::ios::end);
    size_ = static_cast<std::uint64_t>(in_.tellg());
  }
  std::uint64_t size() const override { return size_; }
  void read_at(std::uint64_t off, void* dst, std::size_t n) override {
    // Serialized so parallel chunk decode can share the source; decode
    // itself (the expensive part) runs outside this lock.
    std::lock_guard<std::mutex> lock(mu_);
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(off));
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n) {
      throw TraceStoreError("trace-store: short read from " + path_ +
                            " at offset " + std::to_string(off));
    }
  }

 private:
  std::ifstream in_;
  std::string path_;
  std::uint64_t size_ = 0;
  std::mutex mu_;
};

}  // namespace

std::unique_ptr<ByteSource> open_file_source(const std::string& path) {
  return std::make_unique<FileSource>(path);
}

std::unique_ptr<ByteSource> memory_source(const char* data, std::size_t len) {
  return std::make_unique<MemorySource>(data, len);
}

std::string hash_hex(std::uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[h & 0xf];
    h >>= 4;
  }
  return s;
}

bool parse_hash_hex(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
  }
  if (out) *out = v;
  return true;
}

bool is_v2_magic(const char* data, std::size_t len) {
  return len >= sizeof kMagicV2 &&
         std::memcmp(data, kMagicV2, sizeof kMagicV2) == 0;
}

std::uint64_t content_hash(const trace::Trace& t) {
  Fnv1a64 h;
  hash_meta(h, t.app, t.capture_network, t.nodes, t.capture_runtime, t.seed);
  for (const auto& r : t.records) hash_record(h, r);
  return h.value();
}

// ---------------------------------------------------------------------------
// TraceWriter

TraceWriter::TraceWriter(std::ostream& out, TraceMeta meta,
                         std::uint32_t chunk_records)
    : out_(out), chunk_records_(chunk_records == 0 ? 1 : chunk_records) {
  std::vector<char> hdr;
  hdr.insert(hdr.end(), kMagicV2, kMagicV2 + sizeof kMagicV2);
  put<std::uint32_t>(hdr, 0);  // flags
  put<std::uint32_t>(hdr, chunk_records_);
  put<std::uint32_t>(hdr, static_cast<std::uint32_t>(meta.app.size()));
  hdr.insert(hdr.end(), meta.app.begin(), meta.app.end());
  put<std::uint32_t>(hdr,
                     static_cast<std::uint32_t>(meta.capture_network.size()));
  hdr.insert(hdr.end(), meta.capture_network.begin(),
             meta.capture_network.end());
  put<std::int32_t>(hdr, meta.nodes);
  put<std::uint64_t>(hdr, meta.capture_runtime);
  put<std::uint64_t>(hdr, meta.seed);
  put<std::uint32_t>(hdr, crc32(hdr.data(), hdr.size()));
  out_.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
  if (!out_) throw TraceStoreError("trace-store: header write failed");
  offset_ = hdr.size();
  hash_meta(hash_, meta.app, meta.capture_network, meta.nodes,
            meta.capture_runtime, meta.seed);
  encoder_.reset();
}

TraceWriter::~TraceWriter() = default;

void TraceWriter::append(const trace::TraceRecord& r) {
  if (finished_) {
    throw std::logic_error("trace-store: append after finish");
  }
  encoder_.add(r);
  hash_record(hash_, r);
  if (r.inject_time != kNoCycle) {
    chunk_min_ = (chunk_min_ == kNoCycle) ? r.inject_time
                                          : std::min(chunk_min_, r.inject_time);
  }
  if (r.arrive_time != kNoCycle) {
    chunk_max_ = (chunk_max_ == kNoCycle) ? r.arrive_time
                                          : std::max(chunk_max_, r.arrive_time);
  }
  ++records_;
  if (++in_chunk_ == chunk_records_) flush_chunk();
}

void TraceWriter::flush_chunk() {
  const auto& payload = encoder_.bytes();
  ChunkInfo info;
  info.file_offset = offset_;
  info.payload_len = static_cast<std::uint32_t>(payload.size());
  info.record_count = in_chunk_;
  info.first_record = records_ - in_chunk_;
  info.min_cycle = chunk_min_;
  info.max_cycle = chunk_max_;

  std::vector<char> hdr;
  hdr.reserve(kChunkHeaderBytes);
  put<std::uint32_t>(hdr, crc32(payload.data(), payload.size()));
  put<std::uint32_t>(hdr, info.payload_len);
  put<std::uint32_t>(hdr, info.record_count);
  put<std::uint64_t>(hdr, info.first_record);
  put<std::uint64_t>(hdr, info.min_cycle);
  put<std::uint64_t>(hdr, info.max_cycle);
  out_.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out_) throw TraceStoreError("trace-store: chunk write failed");
  offset_ += hdr.size() + payload.size();

  chunks_.push_back(info);
  encoder_.reset();
  in_chunk_ = 0;
  chunk_min_ = kNoCycle;
  chunk_max_ = kNoCycle;
}

void TraceWriter::finish() {
  if (finished_) {
    throw std::logic_error("trace-store: finish called twice");
  }
  if (in_chunk_ > 0) flush_chunk();
  finished_ = true;

  const std::uint64_t index_offset = offset_;
  std::vector<char> index;
  index.reserve(chunks_.size() * kIndexEntryBytes);
  for (const auto& c : chunks_) {
    put<std::uint64_t>(index, c.file_offset);
    put<std::uint32_t>(index, c.payload_len);
    put<std::uint32_t>(index, c.record_count);
    put<std::uint64_t>(index, c.first_record);
    put<std::uint64_t>(index, c.min_cycle);
    put<std::uint64_t>(index, c.max_cycle);
  }
  std::vector<char> tail;
  put<std::uint32_t>(tail, crc32(index.data(), index.size()));
  put<std::uint32_t>(tail, static_cast<std::uint32_t>(index.size()));
  tail.insert(tail.end(), index.begin(), index.end());

  std::vector<char> footer;
  put<std::uint64_t>(footer, index_offset);
  put<std::uint64_t>(footer, static_cast<std::uint64_t>(chunks_.size()));
  put<std::uint64_t>(footer, records_);
  put<std::uint64_t>(footer, hash_.value());
  put<std::uint32_t>(footer, crc32(footer.data(), footer.size()));
  footer.insert(footer.end(), kTrailerV2, kTrailerV2 + sizeof kTrailerV2);

  out_.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  out_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  if (!out_) throw TraceStoreError("trace-store: footer write failed");
  offset_ += tail.size() + footer.size();
}

void write_v2(const trace::Trace& t, std::ostream& out,
              std::uint32_t chunk_records) {
  TraceMeta meta;
  meta.app = t.app;
  meta.capture_network = t.capture_network;
  meta.nodes = t.nodes;
  meta.capture_runtime = t.capture_runtime;
  meta.seed = t.seed;
  TraceWriter w(out, std::move(meta), chunk_records);
  for (const auto& r : t.records) w.append(r);
  w.finish();
}

void write_v2_file(const trace::Trace& t, const std::string& path,
                   std::uint32_t chunk_records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw TraceStoreError("trace-store: cannot open " + path);
  write_v2(t, out, chunk_records);
}

// ---------------------------------------------------------------------------
// TraceReader

TraceReader::TraceReader(std::unique_ptr<ByteSource> source)
    : source_(std::move(source)) {
  const std::uint64_t sz = source_->size();
  // Smallest valid file: 48-byte header (empty strings), empty index (8),
  // footer (44).
  constexpr std::uint64_t kMinHeader = 8 + 4 + 4 + 4 + 4 + 4 + 8 + 8 + 4;
  if (sz < kMinHeader + 8 + kFooterBytes) {
    throw TraceStoreError("trace-store: file too small to be a v2 container (" +
                          std::to_string(sz) + " bytes)");
  }

  // Footer.
  char fbuf[kFooterBytes];
  source_->read_at(sz - kFooterBytes, fbuf, sizeof fbuf);
  if (std::memcmp(fbuf + 36, kTrailerV2, sizeof kTrailerV2) != 0) {
    throw TraceStoreError("trace-store: bad trailer magic (truncated file?)");
  }
  SpanReader fr(fbuf, sizeof fbuf);
  const auto index_offset = fr.get<std::uint64_t>();
  const auto chunk_count = fr.get<std::uint64_t>();
  record_count_ = fr.get<std::uint64_t>();
  content_hash_ = fr.get<std::uint64_t>();
  const auto footer_crc = fr.get<std::uint32_t>();
  if (crc32(fbuf, 32) != footer_crc) {
    throw TraceStoreError("trace-store: footer checksum mismatch");
  }
  if (chunk_count > (sz / kChunkHeaderBytes) + 1 ||
      index_offset + 8 + chunk_count * kIndexEntryBytes != sz - kFooterBytes) {
    throw TraceStoreError("trace-store: index span inconsistent with footer");
  }

  // Index.
  std::vector<char> ibuf(8 + chunk_count * kIndexEntryBytes);
  source_->read_at(index_offset, ibuf.data(), ibuf.size());
  SpanReader ir(ibuf.data(), ibuf.size());
  const auto index_crc = ir.get<std::uint32_t>();
  const auto index_len = ir.get<std::uint32_t>();
  if (index_len != chunk_count * kIndexEntryBytes) {
    throw TraceStoreError("trace-store: index length field mismatch");
  }
  if (crc32(ibuf.data() + 8, index_len) != index_crc) {
    throw TraceStoreError("trace-store: index checksum mismatch");
  }
  chunks_.resize(chunk_count);
  std::uint64_t running_records = 0;
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    ChunkInfo& c = chunks_[i];
    c.file_offset = ir.get<std::uint64_t>();
    c.payload_len = ir.get<std::uint32_t>();
    c.record_count = ir.get<std::uint32_t>();
    c.first_record = ir.get<std::uint64_t>();
    c.min_cycle = ir.get<std::uint64_t>();
    c.max_cycle = ir.get<std::uint64_t>();
    if (c.first_record != running_records || c.record_count == 0) {
      throw TraceStoreError("trace-store: chunk " + std::to_string(i) +
                            " record range inconsistent");
    }
    running_records += c.record_count;
    const std::uint64_t end = c.file_offset + kChunkHeaderBytes +
                              c.payload_len;
    if (end > index_offset) {
      throw TraceStoreError("trace-store: chunk " + std::to_string(i) +
                            " extends past the index");
    }
    if (i > 0) {
      const ChunkInfo& p = chunks_[i - 1];
      if (p.file_offset + kChunkHeaderBytes + p.payload_len !=
          c.file_offset) {
        throw TraceStoreError("trace-store: chunk " + std::to_string(i) +
                              " is not contiguous with its predecessor");
      }
    }
  }
  if (running_records != record_count_) {
    throw TraceStoreError("trace-store: chunk record counts do not sum to "
                          "the footer record count");
  }
  if (!chunks_.empty()) {
    const ChunkInfo& last = chunks_.back();
    if (last.file_offset + kChunkHeaderBytes + last.payload_len !=
        index_offset) {
      throw TraceStoreError(
          "trace-store: gap between the last chunk and the index");
    }
  }

  // Header (its exact length is the first chunk's offset).
  const std::uint64_t header_len =
      chunks_.empty() ? index_offset : chunks_.front().file_offset;
  if (header_len < kMinHeader || header_len > (1u << 22)) {
    throw TraceStoreError("trace-store: implausible header length " +
                          std::to_string(header_len));
  }
  std::vector<char> hbuf(header_len);
  source_->read_at(0, hbuf.data(), hbuf.size());
  if (!is_v2_magic(hbuf.data(), hbuf.size())) {
    throw TraceStoreError("trace-store: bad magic (not an SCTMTRC2 file)");
  }
  SpanReader hr(hbuf.data(), hbuf.size());
  hr.get_string(sizeof kMagicV2);  // skip magic
  const auto flags = hr.get<std::uint32_t>();
  if (flags != 0) {
    throw TraceStoreError("trace-store: unknown header flags " +
                          std::to_string(flags));
  }
  chunk_target_ = hr.get<std::uint32_t>();
  const auto app_len = hr.get<std::uint32_t>();
  meta_.app = hr.get_string(app_len);
  const auto net_len = hr.get<std::uint32_t>();
  meta_.capture_network = hr.get_string(net_len);
  meta_.nodes = hr.get<std::int32_t>();
  meta_.capture_runtime = hr.get<std::uint64_t>();
  meta_.seed = hr.get<std::uint64_t>();
  const std::size_t crc_pos = hr.pos();
  const auto header_crc = hr.get<std::uint32_t>();
  if (hr.remaining() != 0) {
    throw TraceStoreError("trace-store: header length mismatch");
  }
  if (crc32(hbuf.data(), crc_pos) != header_crc) {
    throw TraceStoreError("trace-store: header checksum mismatch");
  }
}

void TraceReader::read_payload(std::size_t i, std::vector<char>& buf) const {
  const ChunkInfo& info = chunks_[i];
  char hdr[kChunkHeaderBytes];
  source_->read_at(info.file_offset, hdr, sizeof hdr);
  SpanReader hr(hdr, sizeof hdr);
  const auto payload_crc = hr.get<std::uint32_t>();
  const auto payload_len = hr.get<std::uint32_t>();
  const auto record_count = hr.get<std::uint32_t>();
  const auto first_record = hr.get<std::uint64_t>();
  const auto min_cycle = hr.get<std::uint64_t>();
  const auto max_cycle = hr.get<std::uint64_t>();
  if (payload_len != info.payload_len || record_count != info.record_count ||
      first_record != info.first_record || min_cycle != info.min_cycle ||
      max_cycle != info.max_cycle) {
    throw TraceStoreError("trace-store: chunk " + std::to_string(i) +
                              " header disagrees with the index",
                          static_cast<std::int64_t>(i));
  }
  buf.resize(payload_len);
  source_->read_at(info.file_offset + kChunkHeaderBytes, buf.data(),
                   payload_len);
  if (crc32(buf.data(), buf.size()) != payload_crc) {
    throw TraceStoreError("trace-store: chunk " + std::to_string(i) +
                              " payload checksum mismatch",
                          static_cast<std::int64_t>(i));
  }
}

void TraceReader::read_chunk(std::size_t i,
                             std::vector<trace::TraceRecord>& out) const {
  std::vector<char> payload;
  read_payload(i, payload);
  try {
    decode_chunk(payload.data(), payload.size(), chunks_[i].record_count,
                 out);
  } catch (const std::runtime_error& e) {
    throw TraceStoreError("trace-store: chunk " + std::to_string(i) +
                              " decode failed: " + e.what(),
                          static_cast<std::int64_t>(i));
  }
}

trace::Trace TraceReader::read_all(bool parallel) const {
  trace::Trace t;
  t.app = meta_.app;
  t.capture_network = meta_.capture_network;
  t.nodes = meta_.nodes;
  t.capture_runtime = meta_.capture_runtime;
  t.seed = meta_.seed;
  if (chunks_.empty()) return t;

  if (!parallel || chunks_.size() == 1) {
    t.records.reserve(record_count_);
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      read_chunk(i, t.records);
    }
    return t;
  }

  // Chunks decode independently; each lands at its indexed slot, so the
  // result is bit-identical to the sequential path.
  t.records.resize(record_count_);
  parallel_for(chunks_.size(), [&](std::size_t i) {
    std::vector<trace::TraceRecord> local;
    read_chunk(i, local);
    const std::size_t base = chunks_[i].first_record;
    for (std::size_t k = 0; k < local.size(); ++k) {
      t.records[base + k] = std::move(local[k]);
    }
  });
  return t;
}

// ---------------------------------------------------------------------------
// ChunkCursor

struct ChunkCursor::Prefetcher {
  explicit Prefetcher(const TraceReader& reader) : reader_(reader) {
    worker_ = std::thread([this] { run(); });
  }

  ~Prefetcher() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  void run() {
    const std::size_t n = reader_.chunk_count();
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<trace::TraceRecord> chunk;
      try {
        reader_.read_chunk(i, chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        error_ = std::current_exception();
        done_ = true;
        cv_.notify_all();
        return;
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return ready_.size() < 2 || stop_; });
      if (stop_) return;
      ready_.push_back(std::move(chunk));
      cv_.notify_all();
    }
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
    cv_.notify_all();
  }

  /// False at end; rethrows worker errors on the consumer thread.
  bool next(std::vector<trace::TraceRecord>& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !ready_.empty() || done_; });
    if (ready_.empty()) {
      if (error_) std::rethrow_exception(error_);
      return false;
    }
    out = std::move(ready_.front());
    ready_.pop_front();
    cv_.notify_all();
    return true;
  }

  const TraceReader& reader_;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<trace::TraceRecord>> ready_;
  std::exception_ptr error_;
  bool done_ = false;
  bool stop_ = false;
};

ChunkCursor::ChunkCursor(const TraceReader& reader, bool prefetch)
    : reader_(reader) {
  if (prefetch && reader.chunk_count() > 1) {
    prefetcher_ = std::make_unique<Prefetcher>(reader);
  }
}

ChunkCursor::~ChunkCursor() = default;

bool ChunkCursor::next(std::vector<trace::TraceRecord>& out) {
  if (prefetcher_) return prefetcher_->next(out);
  if (next_chunk_ >= reader_.chunk_count()) return false;
  out.clear();
  reader_.read_chunk(next_chunk_++, out);
  return true;
}

// ---------------------------------------------------------------------------
// verify

VerifyReport verify_v2_file(const std::string& path, bool deep) {
  VerifyReport rep;
  std::optional<TraceReader> reader;
  try {
    reader.emplace(open_file_source(path));
  } catch (const TraceStoreError& e) {
    rep.error = e.what();
    rep.bad_chunk = e.chunk();
    return rep;
  }
  rep.chunks = reader->chunk_count();
  Fnv1a64 h;
  const TraceMeta& m = reader->meta();
  hash_meta(h, m.app, m.capture_network, m.nodes, m.capture_runtime, m.seed);
  std::vector<trace::TraceRecord> scratch;
  for (std::size_t i = 0; i < reader->chunk_count(); ++i) {
    scratch.clear();
    try {
      reader->read_chunk(i, scratch);
    } catch (const TraceStoreError& e) {
      rep.error = e.what();
      rep.bad_chunk = e.chunk();
      return rep;
    }
    rep.records += scratch.size();
    if (deep) {
      for (const auto& r : scratch) hash_record(h, r);
    }
  }
  if (deep) {
    rep.hash_checked = true;
    if (h.value() != reader->stored_content_hash()) {
      rep.error = "content hash mismatch: stored " +
                  hash_hex(reader->stored_content_hash()) + ", computed " +
                  hash_hex(h.value());
      return rep;
    }
  }
  rep.ok = true;
  return rep;
}

}  // namespace sctm::tracestore
