file(REMOVE_RECURSE
  "CMakeFiles/ext_flexishare.dir/ext_flexishare.cpp.o"
  "CMakeFiles/ext_flexishare.dir/ext_flexishare.cpp.o.d"
  "ext_flexishare"
  "ext_flexishare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_flexishare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
