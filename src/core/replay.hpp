// Trace replay engines: the naive timestamped strawman and the
// Self-Correction Trace Model (the paper's contribution).
//
// Naive replay injects every record at its captured timestamp. It is fast
// but frozen: when the target network is faster or slower than the capture
// network, the injected load no longer matches what a real system would do.
//
// Self-correcting replay rebuilds injection times from the dependency
// annotations on the fly: record r becomes eligible when all of its parents
// have arrived *in the replay*, and is injected at
//     t'(r) = max over deps (arrival'(parent) + slack).
// Dependency-free records anchor at their captured timestamps. Because the
// dependency graph is a DAG in capture order, a single event-driven pass
// yields the exact fixed point when dependencies are complete — replaying on
// the capture network reproduces the captured schedule bit-exactly (tested).
//
// Truncated dependencies model a bounded capture/replay budget: only the `W`
// tightest (smallest-slack) dependencies are enforced online; each record
// also carries a baseline time (initially the captured timestamp) that acts
// as a lower bound. The driver then iterates: after each pass the baselines
// are re-derived from the full dependency list evaluated against the
// previous pass's arrival times, until injection times stop moving — the
// "self-correction ... in a reasonable period of time" trade-off knob.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/flat_map.hpp"
#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "core/replay_input.hpp"
#include "noc/network.hpp"
#include "trace/record.hpp"

namespace sctm {
class WorkerPool;
}

namespace sctm::core {

enum class ReplayMode { kNaive, kSelfCorrecting };

const char* to_string(ReplayMode m);

struct ReplayConfig {
  ReplayMode mode = ReplayMode::kSelfCorrecting;
  /// Max dependencies enforced online per record (smallest-slack first).
  /// Unlimited by default; ignored in naive mode.
  std::uint32_t dependency_window = std::numeric_limits<std::uint32_t>::max();
  /// Iterative refinement for truncated windows (see IterativeReplayer).
  int max_iterations = 8;
  /// Converged when the mean |Δinject| between passes drops below this.
  double convergence_threshold = 0.5;
  /// Worker threads for the sharded replay phases — network ticking,
  /// delivered-dependency scan, seed scan and eligibility-batch sorting
  /// (ReplaySession owns the pool). The convention, asserted in
  /// test_parallel_replay.cpp: the default `1` means serial (no pool is
  /// built); `0` means one lane per hardware thread, resolved through
  /// resolve_threads() in common/parallel.hpp exactly like every other
  /// `--threads 0` knob; any other value is the literal lane count. Results
  /// are bit-identical for every value — see the partitioned-tick contract
  /// in noc/network.hpp and DESIGN.md §10 — so this is purely a speed knob.
  unsigned threads = 1;
};

/// Outcome of one replay pass.
struct ReplayResult {
  /// Per-iteration observability record (the convergence trajectory the
  /// metrics document exports): pass number, mean |Δinject| against the
  /// previous pass (0 for the first / exactly-converged passes), kernel
  /// events executed by the pass, and its wall time.
  struct IterationRecord {
    int iter = 1;
    double residual = 0.0;
    std::uint64_t events = 0;
    double wall_seconds = 0.0;
  };

  /// Per record (same order as the trace): replayed times.
  std::vector<Cycle> inject_time;
  std::vector<Cycle> arrive_time;
  /// Predicted application runtime (latest arrival).
  Cycle runtime = 0;
  /// Kernel events executed across all passes (cost metric, R-A2).
  std::uint64_t events = 0;
  /// Iterations actually used (1 for single-pass engines).
  int iterations = 1;
  /// Mean |Δinject| of the final iteration (0 when exactly converged).
  double residual = 0.0;
  /// One record per pass, in pass order.
  std::vector<IterationRecord> iteration_log;
  /// Stat-registry snapshot of the (final) pass's simulator — the target
  /// network's counters (transmissions, arbitration waits, scoreboard
  /// activity), surfaced in the run-metrics document.
  StatRegistry stats;

  Histogram latency_histogram() const;
};

/// Runs one replay pass of `trace` over a fresh network built by `factory`.
/// The factory is called once per pass with the Simulator to use; it must
/// return a network with trace.nodes endpoints.
using NetworkFactory =
    std::function<std::unique_ptr<noc::Network>(Simulator&)>;

/// Per-record enforced-dependency sets in CSR form: record i's kept
/// dependencies are deps[offset[i] .. offset[i+1]). Built once per trace
/// (two flat arrays) instead of one std::vector copy per record per pass —
/// the iterative engine replays the same trace many times.
struct KeptDepsCsr {
  std::vector<std::uint32_t> offset;  // size records+1
  std::vector<trace::TraceDep> deps;  // flat, grouped by record

  std::uint32_t count(std::uint32_t rec) const {
    return offset[rec + 1] - offset[rec];
  }
  const trace::TraceDep* begin(std::uint32_t rec) const {
    return deps.data() + offset[rec];
  }
  const trace::TraceDep* end(std::uint32_t rec) const {
    return deps.data() + offset[rec + 1];
  }
};

/// Builds the enforced-dependency CSR for `rt` under `config` (empty sets
/// in naive mode; the `window` smallest-slack deps per record otherwise).
KeptDepsCsr build_kept_deps(const ReplayTrace& rt, const ReplayConfig& config);

/// Batches records that become eligible at the same cycle so they can be
/// injected in capture order (same-cycle arbitration ties must resolve as
/// they did at capture). Allocation-free in steady state, upholding the
/// kernel invariant (DESIGN.md §7): the cycle→batch index is a
/// capacity-retaining FlatMap and batch storage is drawn from a recycled
/// vector pool — unlike the former std::unordered_map<Cycle, std::vector>,
/// which put a node allocation plus vector churn on every batch open/close.
class EligibilityBatcher {
 public:
  /// Appends `idx` to cycle `t`'s batch. Returns true when `t` had no open
  /// batch — the caller must then schedule the flush event for `t`.
  bool add(Cycle t, std::uint32_t idx) {
    if (const std::uint32_t* slot = slot_at_.find(t)) {
      pool_[*slot].push_back(idx);
      return false;
    }
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    } else {
      slot = free_.back();
      free_.pop_back();
    }
    pool_[slot].push_back(idx);
    slot_at_.insert(t, slot);
    return true;
  }

  /// Sorts cycle `t`'s batch ascending (record/capture order), invokes
  /// fn(idx) for each entry, and recycles the batch slot. No-op when `t` has
  /// no open batch. The mapping is retired before dispatch, so a re-entrant
  /// add() for the same cycle opens a fresh batch instead of corrupting the
  /// one being drained.
  template <typename Fn>
  void flush(Cycle t, Fn&& fn) {
    const std::uint32_t* found = slot_at_.find(t);
    if (found == nullptr) return;
    const std::uint32_t slot = *found;
    slot_at_.erase(t);
    sort_batch(pool_[slot]);
    // Index-based: fn may grow the pool (re-entrant add for another cycle).
    for (std::size_t i = 0; i < pool_[slot].size(); ++i) fn(pool_[slot][i]);
    pool_[slot].clear();
    free_.push_back(slot);
  }

  /// Installs a worker pool used to sort large batches in parallel (per-lane
  /// chunk sort + k-way merge; record indices are unique, so the merged
  /// output is the same fully sorted sequence serial std::sort produces at
  /// any lane count). `grain` is the minimum batch size per lane before a
  /// sort shards; 0 shards every sort. nullptr reverts to serial sorting.
  void set_sort_pool(WorkerPool* pool, unsigned grain) {
    sort_pool_ = pool;
    sort_grain_ = grain;
  }

  /// Levels every pooled batch's capacity up to the high-water batch size.
  /// The slot->cycle assignment permutes across passes (LIFO free-list
  /// recycling), so without this a slot that only ever held small batches
  /// re-grows when a later identical pass hands it a large one — capacities
  /// converge only after several passes. The session calls this at pass end
  /// so that pass 2 onward batches without touching the heap.
  void equalize() {
    std::size_t cap = 0;
    for (const auto& b : pool_) cap = std::max(cap, b.capacity());
    for (auto& b : pool_) b.reserve(cap);
    // The merge scratch swaps capacities with batch slots, so level it too —
    // otherwise a small-capacity scratch migrates into a slot that later
    // holds a large batch and re-grows mid-pass.
    merge_scratch_.reserve(std::max(cap, merge_scratch_.capacity()));
  }

  std::size_t open_batches() const { return slot_at_.size(); }

 private:
  /// Sorts one batch ascending — serial std::sort, or sharded over
  /// sort_pool_ when the batch is large enough (defined in replay.cpp).
  void sort_batch(std::vector<std::uint32_t>& batch);

  FlatMap<Cycle, std::uint32_t> slot_at_;
  std::vector<std::vector<std::uint32_t>> pool_;
  std::vector<std::uint32_t> free_;
  WorkerPool* sort_pool_ = nullptr;
  unsigned sort_grain_ = 256;
  std::vector<std::uint32_t> merge_scratch_;
  std::vector<std::size_t> merge_cursor_;
};

/// Single-pass replay (naive, or self-correcting with an optional window;
/// `baseline` overrides the per-record lower bounds — pass captured inject
/// times for the first iteration). `kept` may carry the precomputed
/// dependency CSR; when null it is built internally for this pass. `rt` must
/// be finalized.
ReplayResult replay_once(const ReplayTrace& rt, const NetworkFactory& factory,
                         const ReplayConfig& config,
                         const std::vector<Cycle>* baseline = nullptr,
                         const KeptDepsCsr* kept = nullptr);

/// Full engine: naive mode and full-window self-correcting mode run one
/// pass; truncated windows iterate to a fixed point per the config.
ReplayResult replay(const ReplayTrace& rt, const NetworkFactory& factory,
                    const ReplayConfig& config);

/// Convenience wrapper: builds the ReplayTrace (validating the dependency
/// annotations) and runs the full engine. Prefer the ReplayTrace overload
/// when replaying the same trace more than once or streaming from a v2
/// container.
ReplayResult replay(const trace::Trace& trace, const NetworkFactory& factory,
                    const ReplayConfig& config);

}  // namespace sctm::core
