// Deterministic, seeded fault injection.
//
// One FaultModel instance lives on one network (composites give each layer
// its own, with a derived seed). It owns the fault randomness and the
// message-layer retry bookkeeping; the *semantics* of each fault class stay
// in the network that draws it (enoc/onoc code decides what a corrupted flit
// or a lost token means for its datapath).
//
// Determinism at any thread count is a stream-placement argument, mirroring
// the engine's own invariant (DESIGN.md §10/§11):
//
//  * Serial streams (ENoC flit faults, reservation loss, optical data
//    corruption) are consumed only at serial points — the outbox drain and
//    event dispatch — whose order is bit-identical to the serial engine at
//    any shard count, so one stream per class suffices.
//  * The per-channel stream family (token loss) is consumed inside
//    tick_partitioned() lanes. Each channel is owned by exactly one shard
//    and its request order is the shard-invariant per-channel arrival
//    subsequence, so giving every channel its own child stream makes the
//    draw sequence per channel — and hence every grant — independent of the
//    shard count. Lane code must never touch shared counters; shards count
//    locally and fold the totals in at drain (note_token_losses).
//
// reset() re-derives every stream from the spec seed and clears the retry
// table in place, so a reset-reused session replays the exact fault schedule
// of a fresh one (the session protocol zeroes the stat registry alongside).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "fault/fault_spec.hpp"

namespace sctm::fault {

class FaultModel {
 public:
  /// Registers counters under "<stat_prefix>.*" in `stats` (the registry
  /// must outlive the model; Simulator::reset zeroes the values in place so
  /// the cached references stay valid). `channels` sizes the per-channel
  /// token-loss stream family — pass the network's node count.
  FaultModel(const FaultSpec& spec, StatRegistry& stats,
             const std::string& stat_prefix, int channels);

  /// Rewinds every stream to its construction state and clears the retry
  /// table, retaining capacity. Counters are zeroed by the registry owner
  /// (Simulator::reset), exactly like every other component stat.
  void reset();

  const FaultSpec& spec() const { return spec_; }

  // --- ENoC plane: call only from the serial outbox drain ------------------
  bool draw_flit_corrupt();
  bool draw_flit_drop();
  bool draw_link_stuck_onset();
  /// A flit crossed a link inside a stuck-at episode (counted as corruption
  /// attributed to the stuck link; no draw).
  void note_stuck_hit();

  // --- ONoC plane ----------------------------------------------------------
  /// Token-loss draw for one arbitration request on `channel`. Safe from a
  /// pool lane: touches only the channel's own stream, counts nothing.
  bool draw_token_loss(int channel);
  /// Folds shard-local token-loss counts into the registry. Serial drain only.
  void note_token_losses(std::uint64_t n);

  /// Reservation (path-setup grant) loss. Serial control path only.
  bool draw_reservation_loss();

  /// Whole-transfer optical corruption with probability `p` (the caller
  /// derives p from the BER the loss budget implies for this message's
  /// length). Serial delivery path only.
  bool draw_optical_corrupt(double p);

  // --- Message-layer recovery ----------------------------------------------
  enum class Action {
    kRetransmit,  // re-inject after nack_delay()
    kGiveUp,      // retry budget exhausted: surface the message, count it lost
  };

  /// A completed message failed its integrity check at `now`. Bumps the
  /// retry ladder and decides recovery; on kGiveUp the episode is closed
  /// (counted in messages_lost) and the caller must still deliver the
  /// message so the fabric stays lossless.
  Action on_corrupt_message(MsgId id, Cycle now);

  /// A message completed clean at `now`. Closes any open retry episode
  /// (counted in messages_recovered, with the detect-to-delivery penalty
  /// recorded); no-op for messages that were never corrupted.
  void on_clean_delivery(MsgId id, Cycle now);

  Cycle nack_delay() const { return spec_.nack_cycles; }

  /// Messages with an open retry episode (in-flight retransmissions).
  std::size_t open_retries() const { return retries_.size(); }

 private:
  struct RetryState {
    int attempts = 0;
    Cycle first_detect = 0;
  };

  FaultSpec spec_;
  Rng enoc_rng_;
  Rng resv_rng_;
  Rng opt_rng_;
  std::vector<Rng> chan_rng_;
  FlatMap<MsgId, RetryState> retries_;

  std::uint64_t& stat_flit_corrupt_;
  std::uint64_t& stat_flit_drop_;
  std::uint64_t& stat_link_stuck_;
  std::uint64_t& stat_token_loss_;
  std::uint64_t& stat_reservation_loss_;
  std::uint64_t& stat_optical_corrupt_;
  std::uint64_t& stat_retransmissions_;
  std::uint64_t& stat_messages_lost_;
  std::uint64_t& stat_messages_recovered_;
  Accumulator& stat_recovery_penalty_;
};

}  // namespace sctm::fault
