// Routing functions.
//
// A routing function maps (source, current node, destination) to the set of
// *admissible* output ports; the router picks among candidates using local
// congestion state (free credits). Determinism: candidates are returned in a
// fixed preference order, and a router with no better information takes the
// first.
//
// Deadlock freedom: XY and YX are dimension-ordered (cyclic turn sequences
// are impossible); odd-even restricts turns per Chiu's odd-even rules (needs
// the packet's source column, hence the src parameter); torus DOR, XYZ on
// torus3d and ring shortest-path rely on the router's dateline VC discipline
// (see enoc::Router). Table routing (kTable) is up*/down* escape-ordered —
// see noc/route_table.hpp for the tables and the deadlock argument.
#pragma once

#include <array>
#include <vector>

#include "noc/topology.hpp"

namespace sctm::noc {

enum class RoutingAlgo {
  kXY,
  kYX,
  kOddEven,
  kRingShortest,
  kTorusDor,
  /// Dimension-ordered x -> y -> z on the 3D kinds (wrap-aware on torus3d,
  /// shorter way per dimension like kTorusDor).
  kXyz,
  /// Up*/down* shortest-path next-hop tables for irregular (file) fabrics.
  /// Needs a prebuilt RoutingTable; the stateless route_ports() entry point
  /// rejects it.
  kTable,
};

/// Fixed-capacity admissible-port set. Every routing function here is
/// minimal, so at most two output ports are ever admissible (the two
/// productive directions of a mesh quadrant under odd-even); returning this
/// by value keeps the router's per-flit route computation off the heap.
struct RoutePorts {
  std::array<int, 2> ports{};
  int count = 0;

  void push_back(int p) { ports[static_cast<std::size_t>(count++)] = p; }
  bool empty() const { return count == 0; }
  int size() const { return count; }
  int front() const { return ports[0]; }
  const int* begin() const { return ports.data(); }
  const int* end() const { return ports.data() + count; }
};

/// Admissible output ports (directional indices; never the local port — the
/// caller ejects when cur == dst). Empty result is a contract violation and
/// throws std::logic_error. Allocation-free (datapath hot path). kTable is
/// rejected here: table routes live in a RoutingTable owned by the network.
RoutePorts route_ports(const Topology& topo, RoutingAlgo algo, NodeId src,
                       NodeId cur, NodeId dst);

/// Vector-returning convenience wrapper over route_ports() (tests, tools).
std::vector<int> route_candidates(const Topology& topo, RoutingAlgo algo,
                                  NodeId src, NodeId cur, NodeId dst);

/// First candidate — the deterministic route used by oblivious routers.
int route_first(const Topology& topo, RoutingAlgo algo, NodeId src, NodeId cur,
                NodeId dst);

/// Checks that `algo` is usable on `topo` (e.g. kXY requires a mesh).
bool compatible(const Topology& topo, RoutingAlgo algo);

/// Default algorithm for a topology (XY on mesh, DOR on torus, shortest on
/// ring, XYZ on the 3D kinds, up*/down* tables on file fabrics).
RoutingAlgo default_algo(const Topology& topo);

const char* to_string(RoutingAlgo algo);

}  // namespace sctm::noc
