// R-A2 ablation: replay-engine overhead accounting.
//
// Kernel events, trace memory footprint and wall time of self-correcting
// replay vs naive replay vs the execution-driven front end, per application.
// The claim under test: the correction machinery adds bounded overhead on
// top of naive replay (it is the same event-driven network simulation plus
// O(deps) bookkeeping per message).
#include "bench/bench_util.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  // Capture on the ideal network and replay on the detailed electrical mesh
  // so the two replay modes produce genuinely different schedules (replaying
  // on the capture network itself would make them identical by the
  // fixed-point property).
  Table t("R-A2: cost accounting per mode (capture: ideal, target: enoc "
          "mesh)");
  t.set_header({"app", "msgs", "deps/msg", "exec events", "naive events",
                "sctm events", "sctm/naive events", "trace MiB"});

  bool ok = true;
  for (const auto& app : standard_apps(16, 32, 4)) {
    const auto capture = core::run_execution(app, ideal_spec(2), {});
    core::ReplayConfig naive_cfg;
    naive_cfg.mode = core::ReplayMode::kNaive;
    const auto naive = core::run_replay(capture.trace, enoc_spec(), naive_cfg);
    const auto sctm = core::run_replay(capture.trace, enoc_spec(), {});
    // Reference: the full execution-driven run on the same target.
    const auto exec_target = core::run_execution(app, enoc_spec(), {});

    std::uint64_t deps = 0, bytes = 0;
    for (const auto& r : capture.trace.records) {
      deps += r.deps.size();
      bytes += 38 + 16 * r.deps.size();  // serialized size
    }
    const double ratio = static_cast<double>(sctm.result.events) /
                         static_cast<double>(naive.result.events);
    ok = ok && ratio < 2.0 && sctm.result.events <= exec_target.events;
    t.add_row({app.name,
               Table::fmt(static_cast<std::uint64_t>(
                   capture.trace.records.size())),
               Table::fmt(static_cast<double>(deps) /
                              static_cast<double>(capture.trace.records.size()),
                          2),
               Table::fmt(exec_target.events), Table::fmt(naive.result.events),
               Table::fmt(sctm.result.events), Table::fmt(ratio, 2) + "x",
               Table::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 2)});
  }
  emit(t, "ra2_overhead");
  return verdict(ok, "R-A2 sctm event overhead < 2x naive and below "
                     "execution-driven cost");
}
