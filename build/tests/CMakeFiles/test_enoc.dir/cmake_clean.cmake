file(REMOVE_RECURSE
  "CMakeFiles/test_enoc.dir/enoc/test_arbiter.cpp.o"
  "CMakeFiles/test_enoc.dir/enoc/test_arbiter.cpp.o.d"
  "CMakeFiles/test_enoc.dir/enoc/test_enoc_network.cpp.o"
  "CMakeFiles/test_enoc.dir/enoc/test_enoc_network.cpp.o.d"
  "CMakeFiles/test_enoc.dir/enoc/test_enoc_params.cpp.o"
  "CMakeFiles/test_enoc.dir/enoc/test_enoc_params.cpp.o.d"
  "CMakeFiles/test_enoc.dir/enoc/test_enoc_properties.cpp.o"
  "CMakeFiles/test_enoc.dir/enoc/test_enoc_properties.cpp.o.d"
  "CMakeFiles/test_enoc.dir/enoc/test_power.cpp.o"
  "CMakeFiles/test_enoc.dir/enoc/test_power.cpp.o.d"
  "test_enoc"
  "test_enoc.pdb"
  "test_enoc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
