# Empty dependencies file for ext_dse.
# This may be replaced when dependencies are built.
