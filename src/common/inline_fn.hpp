// BasicInlineFn: a move-only callable with small-buffer optimization, built
// for the simulator's hot paths.
//
// std::function heap-allocates any capture larger than (typically) two
// pointers, which put one malloc/free pair on every scheduled event (and on
// every delivery-callback installation). BasicInlineFn instead embeds up to
// kInlineCapacity bytes of capture state directly in the object — sized so
// the simulator's hottest closures ([this, noc::Message] and
// [this, NodeId, int, enoc::Flit], both 56 bytes) fit exactly and the whole
// callable occupies a single 64-byte cache line. Oversized or over-aligned
// captures fall back to one heap allocation; the fallback is counted so tests
// can assert the common path never allocates (see heap_fallbacks()).
//
// The template is parameterized on the call signature: the event kernel uses
// InlineFn (= BasicInlineFn<void()>), the per-message delivery path uses
// BasicInlineFn<void(const noc::Message&)> (noc::Network::DeliverFn). All
// instantiations share one process-wide heap-fallback counter.
//
// Differences from std::function, on purpose:
//  * move-only (no copy; the queue never copies events, and requiring
//    copyability forces vector captures to deep-copy),
//  * invoking an empty BasicInlineFn is undefined (the queue never stores
//    one),
//  * no target()/target_type() RTTI machinery.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace sctm {

namespace detail {

/// One process-wide fallback counter shared by every BasicInlineFn
/// instantiation, so alloc-counting tests see a single number.
struct InlineFnFallbacks {
  inline static std::atomic<std::uint64_t> count{0};
};

}  // namespace detail

template <typename Sig>
class BasicInlineFn;

template <typename R, typename... Args>
class BasicInlineFn<R(Args...)> {
 public:
  /// Inline capture budget. 56 bytes + the 8-byte ops pointer = 64 bytes.
  static constexpr std::size_t kInlineCapacity = 56;
  static constexpr std::size_t kInlineAlign = 8;

  BasicInlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicInlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  BasicInlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for EventFn
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &ops_for<Fn, /*kHeap=*/false>;
    } else {
      Fn* p = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      ops_ = &ops_for<Fn, /*kHeap=*/true>;
      detail::InlineFnFallbacks::count.fetch_add(1, std::memory_order_relaxed);
    }
  }

  BasicInlineFn(BasicInlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  BasicInlineFn& operator=(BasicInlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  BasicInlineFn(const BasicInlineFn&) = delete;
  BasicInlineFn& operator=(const BasicInlineFn&) = delete;

  ~BasicInlineFn() { reset(); }

  R operator()(Args... args) {
    assert(ops_ != nullptr && "invoking an empty BasicInlineFn");
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Whether a callable of type F would be stored inline (no allocation).
  template <typename F>
  static constexpr bool fits_inline() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  /// Allocation-counting test hook: total heap fallbacks taken process-wide
  /// (shared across all signatures). Steady-state kernel tests assert the
  /// delta across a run is zero.
  static std::uint64_t heap_fallbacks() noexcept {
    return detail::InlineFnFallbacks::count.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;  // move into dst, end src
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn, bool kHeap>
  static Fn* target(void* storage) noexcept {
    if constexpr (kHeap) {
      Fn* p;
      std::memcpy(&p, storage, sizeof(p));
      return p;
    } else {
      return static_cast<Fn*>(storage);
    }
  }

  template <typename Fn, bool kHeap>
  static constexpr Ops ops_for = {
      // invoke
      [](void* s, Args&&... args) -> R {
        return (*target<Fn, kHeap>(s))(std::forward<Args>(args)...);
      },
      // relocate
      [](void* d, void* s) noexcept {
        if constexpr (kHeap || std::is_trivially_copyable_v<Fn>) {
          std::memcpy(d, s, kHeap ? sizeof(Fn*) : sizeof(Fn));
        } else {
          Fn* src = target<Fn, kHeap>(s);
          ::new (d) Fn(std::move(*src));
          src->~Fn();
        }
      },
      // destroy
      [](void* s) noexcept {
        if constexpr (kHeap) {
          delete target<Fn, kHeap>(s);
        } else {
          target<Fn, kHeap>(s)->~Fn();
        }
      },
  };

  const Ops* ops_ = nullptr;
  alignas(kInlineAlign) unsigned char buf_[kInlineCapacity];
};

/// The event kernel's callable type (see sim/event_queue.hpp).
using InlineFn = BasicInlineFn<void()>;

static_assert(sizeof(InlineFn) == 64, "InlineFn should be one cache line");

}  // namespace sctm
