#include "common/units.hpp"

#include <gtest/gtest.h>

namespace sctm {
namespace {

TEST(Units, CyclesToSeconds) {
  EXPECT_DOUBLE_EQ(units::cycles_to_seconds(2'000'000'000ULL, 2e9), 1.0);
}

TEST(Units, SecondsToCyclesRoundsUp) {
  EXPECT_EQ(units::seconds_to_cycles(1.0, 2e9), 2'000'000'000ULL);
  EXPECT_EQ(units::seconds_to_cycles(1.0000000001, 2e9), 2'000'000'001ULL);
  EXPECT_EQ(units::seconds_to_cycles(0.0, 2e9), 0ULL);
}

TEST(Units, DbLinearRoundTrip) {
  for (const double db : {-30.0, -3.0, 0.0, 3.0, 10.0}) {
    EXPECT_NEAR(units::linear_to_db(units::db_to_linear(db)), db, 1e-9);
  }
  EXPECT_NEAR(units::db_to_linear(3.0), 1.9952623, 1e-6);
  EXPECT_DOUBLE_EQ(units::db_to_linear(0.0), 1.0);
}

TEST(Units, DbmMilliwattRoundTrip) {
  EXPECT_DOUBLE_EQ(units::mw_to_dbm(1.0), 0.0);
  EXPECT_NEAR(units::dbm_to_mw(10.0), 10.0, 1e-9);
  for (const double dbm : {-10.0, 0.0, 5.0}) {
    EXPECT_NEAR(units::mw_to_dbm(units::dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

TEST(Units, Sentinels) {
  EXPECT_GT(kNoCycle, Cycle{1} << 62);
  EXPECT_LT(kInvalidNode, 0);
}

}  // namespace
}  // namespace sctm
