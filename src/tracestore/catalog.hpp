// Content-addressed trace catalog: a directory of v2 containers keyed by
// their FNV-1a/64 content hash, each with a small JSON manifest recording
// provenance (app, capture network, seed, record count, chunk geometry,
// checksum) following the `sctm.run_metrics.v1` conventions — manifests are
// written with the shared JsonWriter and parsed back with json_parse.
//
// Layout of a catalog directory:
//   <dir>/<hash16>.trc2   the container (always v2, regardless of import
//                         format)
//   <dir>/<hash16>.json   the manifest (schema "sctm.trace_manifest.v1")
//
// The hash is over the logical trace content (trace_store.hpp), so the same
// workload captured twice — or imported once as v1 and once as v2 — lands
// on a single entry: adds are idempotent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "tracestore/trace_store.hpp"

namespace sctm::tracestore {

inline constexpr std::string_view kManifestSchema = "sctm.trace_manifest.v1";

struct CatalogEntry {
  std::string hash;  // 16 lowercase hex digits (the content address)
  std::string file;  // container path (absolute or catalog-relative)
  std::string created;  // caller-supplied timestamp (may be empty)
  std::string app;
  std::string capture_network;
  std::int32_t nodes = 0;
  Cycle capture_runtime = 0;
  std::uint64_t seed = 0;
  std::uint64_t records = 0;
  std::uint32_t chunk_target = 0;
  std::uint64_t chunks = 0;
  std::uint64_t file_bytes = 0;

  std::string manifest_json() const;
};

/// Parses a manifest document; throws std::runtime_error on schema
/// violations (wrong schema string, missing/mistyped fields).
CatalogEntry parse_manifest(const std::string& json);

class TraceCatalog {
 public:
  /// Opens (creating if needed) the catalog directory.
  explicit TraceCatalog(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Stores `t` as a v2 container plus manifest; returns the entry. When
  /// the content hash is already present the existing entry is returned
  /// untouched (content addressing makes adds idempotent).
  /// (Import of an on-disk file in either format is a caller composition:
  /// load with trace::read_binary_file — which dispatches v1/v2 — then
  /// add(). The catalog itself only ever writes v2.)
  CatalogEntry add(const trace::Trace& t, const std::string& created,
                   std::uint32_t chunk_records = kDefaultChunkRecords);

  /// All entries, sorted by hash. Manifests that fail to parse are skipped
  /// (a catalog survives a half-written entry).
  std::vector<CatalogEntry> list() const;

  /// Unique entry whose hash starts with `hash_prefix` (case-insensitive);
  /// nullopt when absent or ambiguous.
  std::optional<CatalogEntry> find(const std::string& hash_prefix) const;

  /// Absolute path of an entry's container file.
  std::string container_path(const CatalogEntry& e) const;

 private:
  std::string dir_;
};

}  // namespace sctm::tracestore
