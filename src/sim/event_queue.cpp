#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iterator>
#include <utility>

namespace sctm {

std::uint64_t EventQueue::push(Cycle t, EventFn fn, Band band) {
  const std::uint64_t seq = next_seq_++;
  ++size_;
  if (in_window(t)) {
    Bucket& b = wheel_[t & kWheelMask];
    b.band[band].push_back(Slot{seq, std::move(fn)});
    occupied_ |= std::uint64_t{1} << (t & kWheelMask);
    ++wheel_count_;
  } else {
    // Beyond the horizon — or, for the standalone queue only, behind the
    // window (the Simulator rejects past schedules before they get here).
    far_.push_back(FarEntry{t, band, seq, std::move(fn)});
    std::push_heap(far_.begin(), far_.end(), FarLater{});
  }
  return seq;
}

Cycle EventQueue::next_time() const {
  Cycle best = far_.empty() ? kNoCycle : far_.front().time;
  if (wheel_count_ != 0) {
    const auto rot = std::rotr(occupied_, static_cast<int>(wheel_base_ & kWheelMask));
    const Cycle wheel_next =
        wheel_base_ + static_cast<Cycle>(std::countr_zero(rot));
    if (wheel_next < best) best = wheel_next;
  }
  return best;
}

void EventQueue::service(Cycle t) {
  assert(t >= wheel_base_);
  // Every bucket in [wheel_base_, t) is empty — t is the earliest pending
  // time — so the window slides forward without scanning. Existing wheel
  // entries all lie in [t, old_base + kWheelSize) ⊆ [t, t + kWheelSize), so
  // their bucket mapping (cycle & kWheelMask) stays valid.
  wheel_base_ = t;

  if (far_.empty() || far_.front().time != t) return;

  // Fold the far entries for cycle t into the front of its bucket. They were
  // all pushed before t entered the window (the window never moves backwards),
  // so their seqs precede every direct wheel entry for t: prepending in heap
  // pop order restores exact (band, seq) order.
  Bucket& b = wheel_[t & kWheelMask];
  assert(b.head[0] == 0 && b.head[1] == 0);
  std::size_t migrated = 0;
  while (!far_.empty() && far_.front().time == t) {
    std::pop_heap(far_.begin(), far_.end(), FarLater{});
    FarEntry e = std::move(far_.back());
    far_.pop_back();
    migrate_scratch_[e.band].push_back(Slot{e.seq, std::move(e.fn)});
    ++migrated;
  }
  for (int band = 0; band < 2; ++band) {
    auto& scratch = migrate_scratch_[band];
    if (scratch.empty()) continue;
    auto& v = b.band[band];
    v.insert(v.begin(), std::make_move_iterator(scratch.begin()),
             std::make_move_iterator(scratch.end()));
    scratch.clear();
  }
  wheel_count_ += migrated;
  occupied_ |= std::uint64_t{1} << (t & kWheelMask);
}

void EventQueue::retire_bucket(Bucket& b, Cycle t) {
  b.band[0].clear();  // keeps capacity: steady state reuses the storage
  b.band[1].clear();
  b.head[0] = b.head[1] = 0;
  occupied_ &= ~(std::uint64_t{1} << (t & kWheelMask));
}

EventQueue::Popped EventQueue::pop() {
  assert(!empty());
  const Cycle t = next_time();
  if (t < wheel_base_) return pop_far();
  service(t);
  Bucket& b = wheel_[t & kWheelMask];
  for (int band = 0; band < 2; ++band) {
    auto& v = b.band[band];
    std::size_t& h = b.head[band];
    if (h < v.size()) {
      Popped out{t, std::move(v[h].fn)};
      ++h;
      --wheel_count_;
      --size_;
      if (b.head[0] == b.band[0].size() && b.head[1] == b.band[1].size()) {
        retire_bucket(b, t);
      }
      return out;
    }
  }
  assert(false && "next_time() pointed at an empty bucket");
  return pop_far();
}

EventQueue::Popped EventQueue::pop_far() {
  std::pop_heap(far_.begin(), far_.end(), FarLater{});
  FarEntry e = std::move(far_.back());
  far_.pop_back();
  --size_;
  return Popped{e.time, std::move(e.fn)};
}

std::uint64_t EventQueue::drain_cycle(Cycle t, const bool& stop,
                                      std::uint64_t* executed) {
  std::uint64_t n = 0;
  if (t < wheel_base_) {
    // Behind the window: only far entries can live here (standalone-queue
    // usage; the Simulator never schedules into the past). Events executed
    // here may push more work onto cycle t — those also land in the far
    // heap, so the loop re-checks the top each iteration.
    while (!stop && !far_.empty() && far_.front().time == t) {
      Popped p = pop_far();
      p.fn();
      if (executed != nullptr) ++*executed;
      ++n;
    }
    return n;
  }

  service(t);
  Bucket& b = wheel_[t & kWheelMask];
  // Dispatch loop. Events may append to either band of this same bucket
  // (schedule_in(0), late flushes), so sizes are re-read every iteration and
  // the normal band is re-checked before each late event — identical order
  // to popping one event at a time. The callable is moved out of the slot
  // before invocation because a same-cycle push can reallocate the vector
  // mid-call.
  while (!stop) {
    int band;
    if (b.head[0] < b.band[0].size()) {
      band = 0;
    } else if (b.head[1] < b.band[1].size()) {
      band = 1;
    } else {
      break;
    }
    EventFn fn = std::move(b.band[band][b.head[band]].fn);
    ++b.head[band];
    --wheel_count_;
    --size_;
    fn();
    if (executed != nullptr) ++*executed;
    ++n;
  }
  if (b.head[0] == b.band[0].size() && b.head[1] == b.band[1].size()) {
    retire_bucket(b, t);
  }
  return n;
}

void EventQueue::clear() {
  for (Cycle c = 0; c < kWheelSize; ++c) {
    retire_bucket(wheel_[c], c);
  }
  far_.clear();
  occupied_ = 0;
  wheel_count_ = 0;
  wheel_base_ = 0;
  size_ = 0;
}

void EventQueue::reset() {
  clear();
  next_seq_ = 0;
}

}  // namespace sctm
