// Electrical NoC energy model (Orion-era constants).
//
// Dynamic energy is charged per micro-operation (buffer write/read, crossbar
// traversal, link traversal, allocator decision); static power leaks on every
// active network cycle per router. Absolute joules are only as good as the
// constants, but the ENoC-vs-ONOC *comparisons* (R-T2, R-T3) depend on the
// ratio structure, which these per-op models capture.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"

namespace sctm::enoc {

struct EnocEnergyParams {
  // Per-operation dynamic energies in picojoules (45 nm-era, per flit of
  // 16 bytes; Orion 2.0 ballpark).
  double buffer_write_pj = 1.2;
  double buffer_read_pj = 1.0;
  double xbar_traversal_pj = 2.1;
  double link_traversal_pj = 3.5;   // 1 mm link at 16 B phit
  double arbitration_pj = 0.18;     // per SA/VA grant
  // Static leakage per router per cycle (all buffers + control), picojoules.
  double router_leakage_pj_per_cycle = 0.9;
  double clock_ghz = 2.0;
};

struct EnergyBreakdown {
  double buffer_pj = 0;
  double xbar_pj = 0;
  double link_pj = 0;
  double arbiter_pj = 0;
  double static_pj = 0;
  double total_pj() const {
    return buffer_pj + xbar_pj + link_pj + arbiter_pj + static_pj;
  }
  /// Average power in watts over `cycles` at `clock_ghz`.
  double watts(std::uint64_t cycles, double clock_ghz) const;
};

/// Sums the per-router counters registered under `<network>.r*` prefixes in
/// `stats` and applies the per-op energies. `active_cycles` is the number of
/// cycles the network clock ran; `router_count` scales leakage.
EnergyBreakdown compute_enoc_energy(const StatRegistry& stats,
                                    const std::string& network_name,
                                    int router_count,
                                    std::uint64_t active_cycles,
                                    const EnocEnergyParams& params);

}  // namespace sctm::enoc
