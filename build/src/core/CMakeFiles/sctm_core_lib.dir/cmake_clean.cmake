file(REMOVE_RECURSE
  "CMakeFiles/sctm_core_lib.dir/driver.cpp.o"
  "CMakeFiles/sctm_core_lib.dir/driver.cpp.o.d"
  "CMakeFiles/sctm_core_lib.dir/error_metrics.cpp.o"
  "CMakeFiles/sctm_core_lib.dir/error_metrics.cpp.o.d"
  "CMakeFiles/sctm_core_lib.dir/experiment.cpp.o"
  "CMakeFiles/sctm_core_lib.dir/experiment.cpp.o.d"
  "CMakeFiles/sctm_core_lib.dir/explore.cpp.o"
  "CMakeFiles/sctm_core_lib.dir/explore.cpp.o.d"
  "CMakeFiles/sctm_core_lib.dir/replay.cpp.o"
  "CMakeFiles/sctm_core_lib.dir/replay.cpp.o.d"
  "libsctm_core_lib.a"
  "libsctm_core_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctm_core_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
