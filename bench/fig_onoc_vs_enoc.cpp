// R-F5: synthetic load-latency curves — electrical mesh vs ONOC variants.
//
// Context figure for the case study: where each network saturates under
// open-loop uniform and hotspot traffic, for short (64 B) and long (512 B)
// packets. Expected shape: the ONOC's huge channel bandwidth pays off for
// long packets; its per-message arbitration cost hurts short-packet
// saturation; the electrical mesh sits in between.
#include "bench/bench_util.hpp"

#include "noc/traffic.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  bool ok = true;
  for (const auto& [pattern, pname] :
       {std::pair{noc::TrafficPattern::kUniform, "uniform"},
        std::pair{noc::TrafficPattern::kHotspot, "hotspot"}}) {
    for (const std::uint32_t bytes : {64u, 512u}) {
      Table t(std::string("R-F5: load sweep, ") + pname + ", " +
              std::to_string(bytes) + " B packets, 4x4 fabric");
      t.set_header({"rate", "enoc lat", "enoc thr", "token lat", "token thr",
                    "setup lat", "setup thr"});
      for (const double rate : {0.02, 0.05, 0.10, 0.20, 0.30}) {
        std::vector<std::string> row{Table::fmt(rate, 2)};
        for (const auto kind :
             {core::NetKind::kEnoc, core::NetKind::kOnocToken,
              core::NetKind::kOnocSetup}) {
          core::NetSpec spec;
          spec.kind = kind;
          Simulator sim;
          auto net = core::make_factory(spec)(sim);
          noc::TrafficGenerator::Params tp;
          tp.pattern = pattern;
          tp.packet_bytes = bytes;
          tp.injection_rate = rate;
          tp.warmup = 500;
          tp.measure = 4000;
          tp.seed = 99;
          noc::TrafficGenerator gen(sim, "gen", *net, spec.topo, tp);
          gen.run_to_completion();
          ok = ok && net->injected_count() == net->delivered_count();
          row.push_back(Table::fmt(gen.latency().mean(), 1));
          row.push_back(Table::fmt(gen.throughput(), 3));
        }
        t.add_row(row);
      }
      emit(t, std::string("rf5_load_") + pname + "_" + std::to_string(bytes));
    }
  }
  return verdict(ok, "R-F5 all sweeps lossless");
}
