#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/json.hpp"

namespace sctm {

Histogram::Histogram(std::uint64_t dense_limit) : dense_limit_(dense_limit) {}

void Histogram::add(std::uint64_t value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_lo_ += value;
  if (value < dense_limit_) {
    // Geometric growth: a slowly rising max (packet latencies creeping up
    // under load) costs O(log max) reallocations over a run, not one per new
    // maximum — the delivery path must stay allocation-free in steady state.
    if (dense_.size() <= value) dense_.resize(std::bit_ceil(value + 1), 0);
    ++dense_[value];
  } else {
    ++overflow_[value];
  }
}

void Histogram::add_count(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_lo_ += value * n;
  if (value < dense_limit_) {
    if (dense_.size() <= value) dense_.resize(std::bit_ceil(value + 1), 0);
    dense_[value] += n;
  } else {
    overflow_[value] += n;
  }
}

void Histogram::merge(const Histogram& other) {
  // Count-wise fold: one add_count per distinct value in `other`, so merging
  // per-worker/per-candidate histograms for sweep-level stats costs
  // O(distinct values), not O(total samples). add_count re-buckets under
  // this histogram's dense_limit_, which makes mismatched-limit operands
  // exact: a value dense in `other` may land in our overflow map and vice
  // versa. Guard against self-merge (iterating containers we mutate).
  if (&other == this) {
    Histogram copy = other;
    merge(copy);
    return;
  }
  for (std::uint64_t v = 0; v < other.dense_.size(); ++v) {
    add_count(v, other.dense_[v]);
  }
  for (const auto& [v, n] : other.overflow_) add_count(v, n);
}

void Histogram::reset() {
  dense_.clear();
  overflow_.clear();
  count_ = sum_lo_ = min_ = max_ = 0;
}

double Histogram::mean() const {
  return count_ ? static_cast<double>(sum_lo_) / static_cast<double>(count_)
                : 0.0;
}

std::uint64_t Histogram::min() const { return count_ ? min_ : 0; }
std::uint64_t Histogram::max() const { return count_ ? max_ : 0; }

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  // NaN first: std::clamp on NaN is unspecified and the rank cast below
  // would be UB. Treat it like q <= 0 (the smallest recorded value).
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; ceil(q * count) with a floor of 1.
  const double exact = q * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;

  std::uint64_t seen = 0;
  for (std::uint64_t v = 0; v < dense_.size(); ++v) {
    seen += dense_[v];
    if (seen >= rank) return v;
  }
  for (const auto& [v, n] : overflow_) {
    seen += n;
    if (seen >= rank) return v;
  }
  return max_;
}

std::uint64_t Histogram::count_at(std::uint64_t value) const {
  if (value < dense_.size()) return dense_[value];
  const auto it = overflow_.find(value);
  return it == overflow_.end() ? 0 : it->second;
}

std::string Histogram::summary() const {
  std::ostringstream ss;
  ss << "n=" << count_ << " mean=" << mean() << " p50=" << percentile(0.5)
     << " p95=" << percentile(0.95) << " p99=" << percentile(0.99)
     << " max=" << max();
  return ss.str();
}

void Histogram::write_json(JsonWriter& w, bool with_buckets) const {
  w.begin_object();
  w.key("count");
  w.value(count_);
  w.key("mean");
  w.value(mean());
  w.key("min");
  w.value(min());
  w.key("max");
  w.value(max());
  w.key("p50");
  w.value(percentile(0.5));
  w.key("p95");
  w.value(percentile(0.95));
  w.key("p99");
  w.value(percentile(0.99));
  if (with_buckets) {
    w.key("buckets");
    w.begin_array();
    for (std::uint64_t v = 0; v < dense_.size(); ++v) {
      if (dense_[v] == 0) continue;
      w.begin_array();
      w.value(v);
      w.value(dense_[v]);
      w.end_array();
    }
    for (const auto& [v, n] : overflow_) {
      w.begin_array();
      w.value(v);
      w.value(n);
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();
}

}  // namespace sctm
