#include "core/replay_session.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/parallel.hpp"

namespace sctm::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Shards for a phase of `items` work units under `grain` items per lane
/// (the adaptive-grain rule shared by every replay phase): 1 when there is
/// no pool or the phase is too sparse to pay the barrier for.
unsigned shard_count(WorkerPool* pool, std::size_t items, unsigned grain) {
  if (pool == nullptr || pool->size() <= 1 || items == 0) return 1;
  if (items < static_cast<std::size_t>(grain) * pool->size()) return 1;
  return static_cast<unsigned>(std::min<std::size_t>(pool->size(), items));
}

/// Runs fn(shard) for every shard — over the pool when sharded, inline when
/// serial. Both paths execute the identical per-shard body.
template <typename Fn>
void run_phase(WorkerPool* pool, unsigned nshards, const Fn& fn) {
  if (nshards > 1) {
    pool->run([&](unsigned lane) {
      if (lane < nshards) fn(lane);
    });
  } else {
    fn(0);
  }
}

}  // namespace

ReplaySession::ReplaySession(const ReplayTrace& rt,
                             const NetworkFactory& factory,
                             const ReplayConfig& config,
                             const KeptDepsCsr* kept)
    : rt_(rt),
      config_(config),
      naive_(config.mode == ReplayMode::kNaive) {
  if (!rt_.finalized()) {
    throw std::logic_error("replay: ReplayTrace not finalized");
  }
  if (kept != nullptr) {
    kept_ = kept;
  } else {
    own_csr_ = build_kept_deps(rt_, config_);
    kept_ = &own_csr_;
  }
  const std::uint32_t n = rt_.size();
  pending_.assign(n, 0);
  ready_.assign(n, 0);
  bound_.assign(n, 0);
  prev_inject_.assign(n, 0);
  result_.inject_time.reserve(n);
  result_.arrive_time.reserve(n);
  if (config_.threads != 1) {
    pool_ = std::make_unique<WorkerPool>(config_.threads);
    sim_.set_worker_pool(pool_.get());
    scan_shards_.resize(pool_->size());
    seed_shards_.resize(pool_->size());
    residual_shards_.resize(pool_->size());
    eligible_.set_sort_pool(pool_.get(), /*grain=*/256);
  }
  bind_network(factory);
}

ReplaySession::ReplaySession(const ReplayTrace& rt, const NetSpec& spec,
                             const ReplayConfig& config,
                             const KeptDepsCsr* kept)
    : ReplaySession(rt, make_factory(spec), config, kept) {
  bound_spec_ = spec;
  has_spec_ = true;
}

ReplaySession::~ReplaySession() = default;

void ReplaySession::bind_network(const NetworkFactory& factory) {
  net_ = factory(sim_);
  if (!net_) throw std::logic_error("replay: factory returned null network");
  if (net_->node_count() != rt_.nodes()) {
    throw std::invalid_argument("replay: network size != trace nodes");
  }
  auto cb = [this](const noc::Message& msg) { on_deliver(msg); };
  static_assert(noc::Network::DeliverFn::fits_inline<decltype(cb)>(),
                "delivery callback must stay within the SBO budget");
  net_->set_deliver_callback(std::move(cb));
}

void ReplaySession::rebind(const NetworkFactory& factory) {
  // Destroy the old network before erasing the stat entries its components
  // hold references into, then rewind the kernel for the fresh build.
  net_.reset();
  sim_.stats().reset();
  sim_.reset();
  has_spec_ = false;
  last_rebind_in_place_ = false;
  bind_network(factory);
}

void ReplaySession::rebind(const NetSpec& spec) {
  if (has_spec_ && bound_spec_ == spec) {
    // Nothing changed; the next pass's reset protocol is all that's needed.
    last_rebind_in_place_ = true;
    return;
  }
  // The in-place paths keep the constructed network (and any installed
  // FaultModel) alive, so they additionally require an unchanged fault
  // regime — a new spec means new streams, rates and registered counters,
  // which only a rebuild delivers.
  const bool same_shape = has_spec_ && bound_spec_.kind == spec.kind &&
                          bound_spec_.topo == spec.topo &&
                          bound_spec_.fault == spec.fault;
  if (same_shape && spec.kind == NetKind::kIdeal) {
    // Parameters are only read at inject time — patch and reset.
    sim_.reset();
    net_->reset();
    static_cast<noc::IdealNetwork&>(*net_).set_params(spec.ideal);
    last_rebind_in_place_ = true;
  } else if (same_shape && spec.kind == NetKind::kEnoc) {
    // Rebuild router datapaths in place; stat entries and delivery callback
    // survive. Kernel reset first — the tick event lives in its queue.
    sim_.reset();
    static_cast<enoc::EnocNetwork&>(*net_).reparameterize(spec.enoc);
    last_rebind_in_place_ = true;
  } else {
    // Kind/topology changes — and the ONoC/Hybrid backends, whose parameters
    // are baked into token rings and channel tables at construction — take
    // the full rebuild path.
    rebind(make_factory(spec));
  }
  bound_spec_ = spec;
  has_spec_ = true;
}

void ReplaySession::inject_record(std::uint32_t idx) {
  noc::Message m;
  m.id = rt_.id(idx);
  m.src = rt_.src(idx);
  m.dst = rt_.dst(idx);
  m.size_bytes = rt_.size_bytes(idx);
  m.cls = rt_.cls(idx);
  m.tag = idx;
  result_.inject_time[idx] = sim_.now();
  net_->inject(m);
}

// Same-cycle injections must enter the network in capture order (record ids
// increase with capture event order), or arbitration ties resolve
// differently and the fixed-point property breaks. Eligible records are
// therefore batched per cycle and flushed sorted from the cycle's unified
// late-band event (on_cycle), which drains the cycle's deliveries first —
// so children unlocked by a same-cycle delivery land in the same sorted
// batch, never in a second sub-batch that would split the capture order.
void ReplaySession::mark_eligible(std::uint32_t idx, Cycle t) {
  if (eligible_.add(t, idx)) ensure_cycle_event(t);
}

void ReplaySession::ensure_cycle_event(Cycle t) {
  if (cycle_event_at_.find(t) != nullptr) return;
  cycle_event_at_.insert(t, 1);
  auto ev = [this, t] { on_cycle(t); };
  static_assert(InlineFn::fits_inline<decltype(ev)>());
  sim_.schedule_late(t, std::move(ev));
}

// The per-cycle merge point: all of cycle t's deliveries ran in the normal
// band, so the delivered buffer is complete when this late event fires. A
// delivery that slips in afterwards (a zero-latency network injecting from
// the flush below) re-arms the event — the late band keeps draining until
// empty, so nothing waits a cycle.
void ReplaySession::on_cycle(Cycle t) {
  drain_deliveries();
  // Retire the sentinel only after the scan: a child the scan makes eligible
  // at this same cycle must join the batch flushed below, not re-arm.
  cycle_event_at_.erase(t);
  eligible_.flush(t, [this](std::uint32_t i) { inject_record(i); });
}

void ReplaySession::on_deliver(const noc::Message& msg) {
  const auto idx = static_cast<std::uint32_t>(msg.tag);
  result_.arrive_time[idx] = msg.arrive_time;
  if (naive_) return;
  if (rt_.children_begin(idx) == rt_.children_end(idx)) return;
  delivered_.push_back(idx);
  ensure_cycle_event(sim_.now());
}

// The eligibility scan over this cycle's deliveries. Parallel phase: each
// shard walks a contiguous range of the delivered buffer and appends
// (child, arrive + slack) hits to its own list — reads only (the trace,
// the CSR, arrival times written before the barrier), no shared writes.
// Serial drain in ascending shard order then applies the max/decrement and
// fires mark_eligible exactly as the serial per-delivery handler did, in
// the same order — which delivery unlocks a child is timing-independent,
// because a pending count only reaches zero once every kept parent of the
// cycle has been applied.
void ReplaySession::drain_deliveries() {
  const std::size_t k = delivered_.size();
  if (k == 0) return;
  WorkerPool* pool = sim_.worker_pool();
  const unsigned nshards = shard_count(pool, k, scan_grain_);
  if (scan_shards_.size() < nshards) scan_shards_.resize(nshards);
  run_phase(pool, nshards, [&](unsigned shard) {
    const std::size_t lo = k * shard / nshards;
    const std::size_t hi = k * (shard + 1) / nshards;
    std::vector<DepHit>& out = scan_shards_[shard];
    for (std::size_t d = lo; d < hi; ++d) {
      const std::uint32_t idx = delivered_[d];
      const MsgId pid = rt_.id(idx);
      const Cycle arrive = result_.arrive_time[idx];
      for (const std::uint32_t* cp = rt_.children_begin(idx);
           cp != rt_.children_end(idx); ++cp) {
        const std::uint32_t c = *cp;
        // Is this parent one of c's enforced deps? (kept sets are tiny)
        for (auto it = kept_->begin(c); it != kept_->end(c); ++it) {
          if (it->parent != pid) continue;
          out.push_back({c, arrive + it->slack});
          break;
        }
      }
    }
  });
  delivered_.clear();
  for (unsigned s = 0; s < nshards; ++s) {
    for (const DepHit& h : scan_shards_[s]) {
      ready_[h.child] = std::max(ready_[h.child], h.ready);
      if (--pending_[h.child] == 0) {
        mark_eligible(h.child,
                      std::max({ready_[h.child], bound_[h.child], sim_.now()}));
      }
    }
    scan_shards_[s].clear();
  }
}

void ReplaySession::set_parallel_grains_for_test(unsigned grain) {
  scan_grain_ = grain;
  record_grain_ = grain;
  if (pool_) eligible_.set_sort_pool(pool_.get(), grain);
  if (net_) net_->set_parallel_grain(grain);
}

void ReplaySession::run_pass_prepared() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t n = rt_.size();

  // The whole point: reset, don't rebuild. Both calls retain capacity, so
  // after a warmup pass this entire function is allocation-free.
  sim_.reset();
  net_->reset();

  result_.inject_time.assign(n, kNoCycle);
  result_.arrive_time.assign(n, kNoCycle);
  delivered_.clear();
  cycle_event_at_.clear();

  // Seed scan: fill the pending counts and collect the records without
  // pending kept deps. The parallel phase writes disjoint ranges and
  // per-shard seed lists; the ascending-shard drain then marks eligibility
  // in ascending record order — the serial loop's exact order.
  WorkerPool* pool = sim_.worker_pool();
  const unsigned nshards = shard_count(pool, n, record_grain_);
  if (seed_shards_.size() < nshards) seed_shards_.resize(nshards);
  run_phase(pool, nshards, [&](unsigned shard) {
    const std::uint32_t lo = static_cast<std::uint32_t>(
        std::uint64_t{n} * shard / nshards);
    const std::uint32_t hi = static_cast<std::uint32_t>(
        std::uint64_t{n} * (shard + 1) / nshards);
    std::vector<std::uint32_t>& seeds = seed_shards_[shard];
    for (std::uint32_t i = lo; i < hi; ++i) {
      pending_[i] = kept_->count(i);
      ready_[i] = 0;
      if (pending_[i] == 0) seeds.push_back(i);
    }
  });

  // Seed: everything without pending kept deps starts at its bound.
  for (unsigned s = 0; s < nshards; ++s) {
    for (const std::uint32_t i : seed_shards_[s]) mark_eligible(i, bound_[i]);
    seed_shards_[s].clear();
  }

  sim_.run();
  eligible_.equalize();  // next pass batches allocation-free in any slot

  for (std::uint32_t i = 0; i < n; ++i) {
    if (result_.arrive_time[i] == kNoCycle) {
      throw std::logic_error(
          "replay: record never delivered (dependency cycle or lost "
          "message), id=" + std::to_string(rt_.id(i)));
    }
  }
  result_.runtime =
      n == 0 ? 0
             : *std::max_element(result_.arrive_time.begin(),
                                 result_.arrive_time.end());
  result_.events = sim_.events_executed();
  pass_wall_ = seconds_since(t0);
}

const ReplayResult& ReplaySession::run_pass(const std::vector<Cycle>* baseline) {
  const std::uint32_t n = rt_.size();
  if (baseline != nullptr) {
    for (std::uint32_t i = 0; i < n; ++i) bound_[i] = (*baseline)[i];
  } else {
    // First pass: anchor dependency-less schedules at the captured times.
    for (std::uint32_t i = 0; i < n; ++i) {
      bound_[i] = kept_->count(i) == 0 ? rt_.inject_time(i) : 0;
    }
  }
  run_pass_prepared();
  result_.iterations = 1;
  result_.residual = 0.0;
  result_.iteration_log.clear();
  result_.iteration_log.push_back({1, 0.0, result_.events, pass_wall_});
  return result_;
}

const ReplayResult& ReplaySession::run() {
  const std::uint32_t n = rt_.size();
  std::uint32_t max_deps = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    max_deps = std::max(max_deps, rt_.dep_count(i));
  }
  const bool single_pass = naive_ || config_.dependency_window >= max_deps;

  for (std::uint32_t i = 0; i < n; ++i) {
    bound_[i] = kept_->count(i) == 0 ? rt_.inject_time(i) : 0;
  }
  run_pass_prepared();
  log_.clear();
  log_.push_back({1, 0.0, result_.events, pass_wall_});
  result_.iterations = 1;
  result_.residual = 0.0;
  std::uint64_t total_events = result_.events;

  if (!single_pass) {
    // Iterative self-correction for truncated windows: re-derive each
    // record's lower bound from its *full* dependency list evaluated against
    // the previous pass's arrival times, then replay again, until injection
    // times stop moving.
    for (int iter = 2; iter <= config_.max_iterations; ++iter) {
      // Bound recompute: disjoint per-record writes against the previous
      // pass's (now read-only) arrival times — shards freely.
      WorkerPool* pool = sim_.worker_pool();
      const unsigned nshards = shard_count(pool, n, record_grain_);
      run_phase(pool, nshards, [&](unsigned shard) {
        const std::uint32_t lo = static_cast<std::uint32_t>(
            std::uint64_t{n} * shard / nshards);
        const std::uint32_t hi = static_cast<std::uint32_t>(
            std::uint64_t{n} * (shard + 1) / nshards);
        for (std::uint32_t i = lo; i < hi; ++i) {
          const std::uint32_t dc = rt_.dep_count(i);
          if (dc == 0) {
            bound_[i] = rt_.inject_time(i);  // anchors never move
            continue;
          }
          Cycle b = 0;
          const trace::TraceDep* deps = rt_.deps_begin(i);
          for (std::uint32_t k = 0; k < dc; ++k) {
            // Parents were resolved to record indices at finalize() — no id
            // lookup in the iteration hot loop.
            const std::uint32_t p = rt_.dep_parent_index(i, k);
            b = std::max(b, result_.arrive_time[p] + deps[k].slack);
          }
          bound_[i] = b;
        }
      });
      prev_inject_.swap(result_.inject_time);
      run_pass_prepared();
      total_events += result_.events;

      // Residual: per-shard partial sums, added in ascending shard order.
      // Cycle deltas are integer-valued doubles, so regrouping the sum is
      // exact and the residual matches the serial reduction bit-for-bit.
      if (residual_shards_.size() < nshards) residual_shards_.resize(nshards);
      run_phase(pool, nshards, [&](unsigned shard) {
        const std::uint32_t lo = static_cast<std::uint32_t>(
            std::uint64_t{n} * shard / nshards);
        const std::uint32_t hi = static_cast<std::uint32_t>(
            std::uint64_t{n} * (shard + 1) / nshards);
        double part = 0;
        for (std::uint32_t i = lo; i < hi; ++i) {
          const auto a = result_.inject_time[i];
          const auto b = prev_inject_[i];
          part += static_cast<double>(a > b ? a - b : b - a);
        }
        residual_shards_[shard] = part;
      });
      double shift = 0;
      for (unsigned s = 0; s < nshards; ++s) shift += residual_shards_[s];
      shift /= static_cast<double>(n);
      log_.push_back({iter, shift, result_.events, pass_wall_});
      result_.iterations = iter;
      result_.residual = shift;
      if (shift < config_.convergence_threshold) break;
    }
  }
  result_.events = total_events;
  result_.iteration_log = log_;
  snapshot_stats();
  return result_;
}

void ReplaySession::snapshot_stats() { result_.stats = sim_.stats(); }

ReplayResult ReplaySession::take_result() {
  ReplayResult out = std::move(result_);
  result_ = ReplayResult{};
  return out;
}

}  // namespace sctm::core
