# Empty dependencies file for test_onoc.
# This may be replaced when dependencies are built.
