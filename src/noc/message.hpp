// Network-visible message: the unit the full-system layer, trace layer and
// both network simulators exchange. Flit segmentation is an electrical-NoC
// implementation detail and lives in src/enoc.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.hpp"

namespace sctm::noc {

/// Message class; networks may prioritize or route classes differently and
/// the coherence layer relies on request/reply separation for deadlock
/// avoidance (two virtual networks).
enum class MsgClass : std::uint8_t {
  kRequest = 0,   // coherence/memory requests (short, latency-critical)
  kReply,         // control replies / acks (short)
  kData,          // cache-line or bulk data (long)
  kControl,       // network-internal control (path setup etc.)
};

inline constexpr int kMsgClassCount = 4;

constexpr std::string_view to_string(MsgClass c) {
  switch (c) {
    case MsgClass::kRequest: return "request";
    case MsgClass::kReply: return "reply";
    case MsgClass::kData: return "data";
    case MsgClass::kControl: return "control";
  }
  return "?";
}

struct Message {
  MsgId id = kInvalidMsg;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t size_bytes = 0;
  MsgClass cls = MsgClass::kRequest;

  /// Filled by the network layer.
  Cycle inject_time = kNoCycle;  // when inject() accepted the message
  Cycle arrive_time = kNoCycle;  // when the tail arrived at dst

  /// Opaque tag threaded through for upper layers (full-system transaction
  /// ids, trace record ids). The network never interprets it.
  std::uint64_t tag = 0;

  Cycle latency() const {
    return (arrive_time == kNoCycle || inject_time == kNoCycle)
               ? kNoCycle
               : arrive_time - inject_time;
  }
};

}  // namespace sctm::noc
