file(REMOVE_RECURSE
  "CMakeFiles/tab_config.dir/tab_config.cpp.o"
  "CMakeFiles/tab_config.dir/tab_config.cpp.o.d"
  "tab_config"
  "tab_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
