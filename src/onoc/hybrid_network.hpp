// Path-adaptive opto-electronic hybrid NoC (extension).
//
// The ONOC paper's authors' follow-up design (ISPA 2013): instead of
// dividing cores into optically-connected clusters, overlay a full optical
// layer on a full electrical mesh and let the *injection point* decide per
// message which layer to use. The stock policy sends a message optical when
// it travels far or carries much data (both favor the ONOC's
// distance-insensitive, high-bandwidth channels) and electrical otherwise
// (short control messages suffer the E/O + arbitration overhead).
//
// The hybrid is itself a noc::Network, so the full-system substrate, trace
// capture and self-correcting replay all work over it unchanged.
#pragma once

#include <memory>

#include "enoc/enoc_network.hpp"
#include "onoc/onoc_network.hpp"

namespace sctm::onoc {

struct HybridParams {
  enoc::EnocParams electrical{};
  OnocParams optical{};
  /// Messages with topological distance >= this go optical.
  int distance_threshold = 3;
  /// Messages with payload >= this many bytes go optical regardless.
  std::uint32_t size_threshold = 64;

  bool operator==(const HybridParams&) const = default;
};

class HybridNetwork final : public noc::Network {
 public:
  HybridNetwork(Simulator& sim, std::string name, const noc::Topology& topo,
                const HybridParams& params);

  void inject(noc::Message msg) override;
  bool idle() const override;

  /// Session reset: both layers and the steering counters return to
  /// freshly-constructed state (capacity retained). Reset the Simulator first.
  void reset() override;

  /// Both planes tick partitioned: each layer owns its own per-cycle flush
  /// event (ENoC router tick, ONoC arbitration flush) and shards it over the
  /// shared Simulator worker pool independently — the hybrid itself has no
  /// tick of its own to shard, so the layer events are the whole story.
  bool partitioned_tick_supported() const override {
    return electrical_->partitioned_tick_supported() ||
           optical_->partitioned_tick_supported();
  }
  void set_parallel_grain(unsigned grain) override {
    electrical_->set_parallel_grain(grain);
    optical_->set_parallel_grain(grain);
  }

  /// Faults install per layer (counters under "<name>.el.fault.*" /
  /// "<name>.op.fault.*"), with decorrelated root seeds so both planes draw
  /// independent fault schedules from one configured seed. The hybrid shell
  /// itself keeps no model — inject() only steers.
  void install_fault_model(const fault::FaultSpec& spec) override;

  /// The policy, exposed for tests and the steering ablation.
  bool goes_optical(const noc::Message& msg) const;

  const HybridParams& params() const { return params_; }
  enoc::EnocNetwork& electrical() { return *electrical_; }
  OnocNetwork& optical() { return *optical_; }
  const enoc::EnocNetwork& electrical() const { return *electrical_; }
  const OnocNetwork& optical() const { return *optical_; }

  std::uint64_t optical_count() const { return optical_count_; }
  std::uint64_t electrical_count() const { return electrical_count_; }
  /// Fraction of injected messages steered to the optical layer.
  double optical_fraction() const;

 private:
  void install_deliver_up(noc::Network& layer);

  noc::Topology topo_;
  HybridParams params_;
  std::unique_ptr<enoc::EnocNetwork> electrical_;
  std::unique_ptr<OnocNetwork> optical_;
  std::uint64_t optical_count_ = 0;
  std::uint64_t electrical_count_ = 0;
};

}  // namespace sctm::onoc
