// Determinism matrix for fault injection (DESIGN.md §11): with every fault
// class armed, a replay must be bit-identical — schedules, runtime, events,
// and the complete final stat registry including the fault counters — at any
// worker thread count, on every network kind, with every shardable phase
// forced to shard (grain 0). The matrix also pins the session reset-reuse
// protocol (a reused session replays the fresh fault schedule), the
// zero-rate identity (an inert FaultSpec leaves results and stats
// byte-identical to a run without the fault field), and the manifest echo of
// the fault regime in the metrics document.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/replay_session.hpp"
#include "fault/fault_spec.hpp"

namespace sctm::core {
namespace {

fullsys::AppParams small_app(const char* name) {
  fullsys::AppParams app;
  app.name = name;
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  return app;
}

fullsys::FullSysParams small_sys() {
  fullsys::FullSysParams sys;
  sys.l1_sets = 8;
  sys.l1_ways = 2;
  sys.l2_sets = 32;
  sys.l2_ways = 4;
  return sys;
}

/// Every fault class armed at rates that actually fire on the small trace.
/// The drift is deep in the Q-factor cliff on purpose: within the design
/// margin the BER stays ~1e-12 and no optical corruption would ever fire.
fault::FaultSpec all_faults() {
  fault::FaultSpec fs;
  fs.seed = 7;
  fs.enoc_flit_corrupt_rate = 0.02;
  fs.enoc_flit_drop_rate = 0.01;
  fs.enoc_link_stuck_rate = 0.002;
  fs.onoc_token_loss_rate = 0.02;
  fs.onoc_reservation_loss_rate = 0.05;
  fs.onoc_ring_drift_sigma_c = 25.0;
  return fs;
}

NetSpec faulted_spec(NetKind kind) {
  NetSpec s;
  s.kind = kind;
  s.fault = all_faults();
  return s;
}

constexpr NetKind kAllKinds[] = {NetKind::kIdeal,     NetKind::kEnoc,
                                 NetKind::kOnocToken, NetKind::kOnocSetup,
                                 NetKind::kOnocSwmr,  NetKind::kHybrid};

const ReplayTrace& shared_rt() {
  static const trace::Trace trace = run_execution(small_app("jacobi"),
                                                  NetSpec{}, small_sys())
                                        .trace;
  static const ReplayTrace rt(trace);
  return rt;
}

struct MatrixRun {
  ReplayResult result;
  std::string stats_report;
};

MatrixRun run_with_threads(const NetSpec& spec, unsigned threads) {
  ReplayConfig cfg;
  cfg.threads = threads;
  ReplaySession session(shared_rt(), spec, cfg);
  session.set_parallel_grains_for_test(0);  // shard every phase, every cycle
  session.run();
  MatrixRun out;
  out.stats_report = session.result().stats.report();
  out.result = session.take_result();
  return out;
}

class FaultedReplayMatrix : public ::testing::TestWithParam<NetKind> {};

TEST_P(FaultedReplayMatrix, AnyThreadCountIsBitIdenticalToSerial) {
  const NetSpec spec = faulted_spec(GetParam());
  const MatrixRun serial = run_with_threads(spec, /*threads=*/1);
  ASSERT_FALSE(serial.result.arrive_time.empty());
  for (const unsigned threads : {2u, 8u}) {
    const MatrixRun par = run_with_threads(spec, threads);
    const std::string what = "threads=" + std::to_string(threads);
    EXPECT_EQ(par.result.inject_time, serial.result.inject_time) << what;
    EXPECT_EQ(par.result.arrive_time, serial.result.arrive_time) << what;
    EXPECT_EQ(par.result.runtime, serial.result.runtime) << what;
    EXPECT_EQ(par.result.events, serial.result.events) << what;
    EXPECT_EQ(par.result.iterations, serial.result.iterations) << what;
    EXPECT_EQ(par.stats_report, serial.stats_report) << what;
  }
}

// A reset-reused session must replay the fresh fault schedule: run() twice
// on one session, both bit-identical to a freshly built replay.
TEST_P(FaultedReplayMatrix, ResetReuseReplaysTheFreshFaultSchedule) {
  const NetSpec spec = faulted_spec(GetParam());
  const ReplayConfig cfg;
  const ReplayResult fresh = replay(shared_rt(), make_factory(spec), cfg);

  ReplaySession session(shared_rt(), spec, cfg);
  for (const char* pass : {"first run", "rerun after reset"}) {
    const ReplayResult& got = session.run();
    EXPECT_EQ(got.inject_time, fresh.inject_time) << pass;
    EXPECT_EQ(got.arrive_time, fresh.arrive_time) << pass;
    EXPECT_EQ(got.runtime, fresh.runtime) << pass;
    EXPECT_EQ(got.events, fresh.events) << pass;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FaultedReplayMatrix,
                         ::testing::ValuesIn(kAllKinds), [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Rebinding to a different fault regime must rebuild the fault streams: the
// reused session matches a fresh build for the new spec, and walking back to
// the original regime reproduces the original results exactly.
TEST(FaultedReplay, RebindAcrossFaultRegimesMatchesFresh) {
  const ReplayConfig cfg;
  NetSpec clean;
  clean.kind = NetKind::kEnoc;
  NetSpec faulted = faulted_spec(NetKind::kEnoc);
  NetSpec reseeded = faulted;
  reseeded.fault = reseeded.fault.with_seed(99);

  ReplaySession session(shared_rt(), clean, cfg);
  for (const NetSpec* spec : {&faulted, &reseeded, &clean}) {
    session.rebind(*spec);
    const ReplayResult fresh = replay(shared_rt(), make_factory(*spec), cfg);
    const ReplayResult& got = session.run();
    const std::string what = spec->describe();
    EXPECT_EQ(got.inject_time, fresh.inject_time) << what;
    EXPECT_EQ(got.arrive_time, fresh.arrive_time) << what;
    EXPECT_EQ(got.runtime, fresh.runtime) << what;
  }
}

// Different fault seeds are different fault schedules (the knob is live),
// and faults visibly perturb the replay against the clean baseline.
TEST(FaultedReplay, SeedAndRegimeActuallyMatter) {
  const ReplayConfig cfg;
  NetSpec clean;
  clean.kind = NetKind::kEnoc;
  const NetSpec faulted = faulted_spec(NetKind::kEnoc);
  NetSpec reseeded = faulted;
  reseeded.fault = reseeded.fault.with_seed(99);

  const ReplayResult r_clean = replay(shared_rt(), make_factory(clean), cfg);
  const ReplayResult r_fault = replay(shared_rt(), make_factory(faulted), cfg);
  const ReplayResult r_seed = replay(shared_rt(), make_factory(reseeded), cfg);
  EXPECT_GT(r_fault.runtime, r_clean.runtime);  // recovery costs cycles
  EXPECT_NE(r_seed.arrive_time, r_fault.arrive_time);
}

// An all-zero-rate FaultSpec (even with a non-default seed) installs no
// model: results AND the rendered stat registry are byte-identical to a spec
// without the fault field — the fault-free path is untouched.
TEST(FaultedReplay, ZeroRateSpecIsByteIdenticalToBaseline) {
  NetSpec plain;
  plain.kind = NetKind::kEnoc;
  NetSpec zero = plain;
  zero.fault.seed = 1234;  // inert: no rate armed
  ASSERT_FALSE(zero.fault.enabled());

  const MatrixRun base = run_with_threads(plain, 1);
  const MatrixRun zeroed = run_with_threads(zero, 1);
  EXPECT_EQ(zeroed.result.inject_time, base.result.inject_time);
  EXPECT_EQ(zeroed.result.arrive_time, base.result.arrive_time);
  EXPECT_EQ(zeroed.result.runtime, base.result.runtime);
  EXPECT_EQ(zeroed.stats_report, base.stats_report);
  EXPECT_EQ(zeroed.stats_report.find("fault."), std::string::npos);
}

// The metrics document names the fault regime it ran under and carries the
// fault counters; zero-rate runs echo nothing.
TEST(FaultedReplay, MetricsCarryFaultRegimeAndCounters) {
  const NetSpec spec = faulted_spec(NetKind::kEnoc);
  const ReplayConfig cfg;
  const trace::Trace trace =
      run_execution(small_app("jacobi"), NetSpec{}, small_sys()).trace;
  const ReplayRun run = run_replay(trace, spec, cfg);
  const RunMetrics m =
      metrics_for_replay(trace, spec, cfg, run, "test", "2026-08-09");
  const std::string json = m.to_json();
  std::string err;
  EXPECT_TRUE(validate_metrics_json(json, &err)) << err;
  EXPECT_NE(json.find("\"fault.seed\""), std::string::npos);
  EXPECT_NE(json.find("\"fault.onoc_token_loss_rate\""), std::string::npos);
  EXPECT_NE(json.find("net.fault.retransmissions"), std::string::npos);

  NetSpec clean;
  clean.kind = NetKind::kEnoc;
  const RunMetrics m0 = metrics_for_replay(trace, clean, cfg,
                                           run_replay(trace, clean, cfg),
                                           "test", "2026-08-09");
  EXPECT_EQ(m0.to_json().find("fault."), std::string::npos);
}

// Execution-driven capture with faults: the captured trace replays, and the
// fault counters ride in the execution metrics document.
TEST(FaultedReplay, ExecutionCaptureUnderFaultsProducesReplayableTrace) {
  const NetSpec spec = faulted_spec(NetKind::kEnoc);
  const fullsys::AppParams app = small_app("fft");
  const ExecutionRun run = run_execution(app, spec, small_sys());
  EXPECT_GT(run.stats.counter_value("net.fault.retransmissions"), 0u);
  const RunMetrics m =
      metrics_for_execution(app, spec, run, "test", "2026-08-09");
  std::string err;
  EXPECT_TRUE(validate_metrics_json(m.to_json(), &err)) << err;

  NetSpec clean;
  clean.kind = NetKind::kEnoc;
  const ReplayRun rr = run_replay(run.trace, clean, ReplayConfig{});
  EXPECT_GT(rr.result.runtime, 0u);
}

}  // namespace
}  // namespace sctm::core
