#include "fullsys/app.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace sctm::fullsys {
namespace {

AppParams small(const std::string& name) {
  AppParams p;
  p.name = name;
  p.cores = 8;
  p.lines_per_core = 16;
  p.iterations = 2;
  return p;
}

TEST(App, AllNamesBuild) {
  for (const auto& name : app_names()) {
    const auto app = build_app(small(name));
    EXPECT_EQ(app.size(), 8u) << name;
    for (const auto& stream : app) {
      ASSERT_GE(stream.size(), 2u) << name;
      EXPECT_EQ(stream.back().kind, OpKind::kDone) << name;
      EXPECT_EQ(stream[stream.size() - 2].kind, OpKind::kBarrier) << name;
    }
    EXPECT_GT(count_accesses(app), 0u) << name;
  }
}

TEST(App, UnknownNameThrows) {
  EXPECT_THROW(build_app(small("quake")), std::invalid_argument);
}

TEST(App, BadSizesThrow) {
  auto p = small("fft");
  p.cores = 1;
  EXPECT_THROW(build_app(p), std::invalid_argument);
  p = small("fft");
  p.iterations = 0;
  EXPECT_THROW(build_app(p), std::invalid_argument);
}

TEST(App, Deterministic) {
  const auto a = build_app(small("barnes"));
  const auto b = build_app(small("barnes"));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].size(), b[c].size());
    for (std::size_t i = 0; i < a[c].size(); ++i) {
      EXPECT_EQ(a[c][i].kind, b[c][i].kind);
      EXPECT_EQ(a[c][i].arg, b[c][i].arg);
    }
  }
}

TEST(App, SeedChangesBarnes) {
  auto p = small("barnes");
  const auto a = build_app(p);
  p.seed = 99;
  const auto b = build_app(p);
  bool differs = false;
  for (std::size_t c = 0; c < a.size() && !differs; ++c) {
    if (a[c].size() != b[c].size()) {
      differs = true;
      break;
    }
    for (std::size_t i = 0; i < a[c].size(); ++i) {
      if (a[c][i].arg != b[c][i].arg) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(App, BarrierCountsMatchAcrossCores) {
  for (const auto& name : app_names()) {
    const auto app = build_app(small(name));
    std::set<std::size_t> counts;
    for (const auto& stream : app) {
      std::size_t n = 0;
      for (const auto& op : stream) {
        if (op.kind == OpKind::kBarrier) ++n;
      }
      counts.insert(n);
    }
    EXPECT_EQ(counts.size(), 1u) << name << ": unequal barrier counts";
  }
}

TEST(App, FftTouchesPartnerLines) {
  auto p = small("fft");
  const auto app = build_app(p);
  // Stage 0 partner of core 0 is core 1: first load of core 0 must be a line
  // homed at node 1 (line % cores == 1).
  const auto& s0 = app[0];
  for (const auto& op : s0) {
    if (op.kind == OpKind::kLoad) {
      EXPECT_EQ(op.arg % 8, 1u);
      break;
    }
  }
}

TEST(App, JacobiOwnBlockHomedLocally) {
  const auto app = build_app(small("jacobi"));
  // Core 2's stores all target lines homed at node 2.
  for (const auto& op : app[2]) {
    if (op.kind == OpKind::kStore) EXPECT_EQ(op.arg % 8, 2u);
  }
}

TEST(App, StreamIsPrivate) {
  const auto app = build_app(small("stream"));
  // Core c only touches lines homed at c (private blocks).
  for (int c = 0; c < 8; ++c) {
    for (const auto& op : app[static_cast<std::size_t>(c)]) {
      if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) {
        EXPECT_EQ(op.arg % 8, static_cast<std::uint64_t>(c));
      }
    }
  }
}

TEST(App, LuConcentratesReadsOnOwner) {
  const auto app = build_app(small("lu"));
  // In step 0 the owner is core 0; every other core's first loads are lines
  // homed at node 0.
  for (int c = 1; c < 8; ++c) {
    for (const auto& op : app[static_cast<std::size_t>(c)]) {
      if (op.kind == OpKind::kLoad) {
        EXPECT_EQ(op.arg % 8, 0u);
        break;
      }
    }
  }
}

TEST(App, ReduceFanInStructure) {
  const auto app = build_app(small("reduce"));
  // Core 0 (the root) reads partials from cores 1, 2 and 4 across the
  // fan-in levels: its loads include lines homed at those nodes.
  std::set<std::uint64_t> homes;
  for (const auto& op : app[0]) {
    if (op.kind == OpKind::kLoad) homes.insert(op.arg % 8);
  }
  EXPECT_TRUE(homes.count(1));
  EXPECT_TRUE(homes.count(2));
  EXPECT_TRUE(homes.count(4));
  // Every non-root core reads the broadcast result homed at node 0.
  for (int c = 1; c < 8; ++c) {
    bool reads_root = false;
    for (const auto& op : app[static_cast<std::size_t>(c)]) {
      if (op.kind == OpKind::kLoad && op.arg % 8 == 0) reads_root = true;
    }
    EXPECT_TRUE(reads_root) << "core " << c;
  }
}

TEST(App, MoreIterationsMoreAccesses) {
  auto p = small("sort");
  const auto a = count_accesses(build_app(p));
  p.iterations = 4;
  const auto b = count_accesses(build_app(p));
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace sctm::fullsys
