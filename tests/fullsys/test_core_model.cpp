// Core-model unit tests against a recording fake fabric: op folding, miss
// issue, writeback-before-request ordering, probe handling, unblock
// emission — the core's contract with the directory, pinned message by
// message.
#include "fullsys/core_model.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace sctm::fullsys {
namespace {

struct SentMsg {
  ProtoMsg type;
  NodeId dst;
  std::uint64_t line;
  Cycle at;
};

class FakeFabric : public Fabric {
 public:
  explicit FakeFabric(Simulator& sim) : sim_(sim) {}
  MsgId send(ProtoMsg type, NodeId, NodeId dst, std::uint64_t line,
             const std::vector<MsgId>&) override {
    sent.push_back({type, dst, line, sim_.now()});
    return next_id++;
  }
  NodeId home_of(std::uint64_t line) const override {
    return static_cast<NodeId>(line % 4);
  }
  NodeId mc_for(std::uint64_t) const override { return 3; }

  Simulator& sim_;
  std::vector<SentMsg> sent;
  MsgId next_id = 1000;
};

FullSysParams tiny() {
  FullSysParams p;
  p.l1_sets = 1;
  p.l1_ways = 2;
  return p;
}

TEST(CoreModel, ComputeOnlyFinishesWithoutTraffic) {
  Simulator sim;
  FakeFabric fabric(sim);
  Core core(sim, "core", 0,
            {{OpKind::kCompute, 100}, {OpKind::kDone, 0}}, tiny(), fabric);
  core.start();
  sim.run();
  EXPECT_TRUE(core.done());
  EXPECT_EQ(core.finish_time(), 100u);
  EXPECT_TRUE(fabric.sent.empty());
}

TEST(CoreModel, LoadMissIssuesGetSAfterDetectLatency) {
  Simulator sim;
  FakeFabric fabric(sim);
  FullSysParams p = tiny();
  Core core(sim, "core", 0, {{OpKind::kLoad, 5}, {OpKind::kDone, 0}}, p,
            fabric);
  core.start();
  sim.run();
  ASSERT_EQ(fabric.sent.size(), 1u);
  EXPECT_EQ(fabric.sent[0].type, ProtoMsg::kGetS);
  EXPECT_EQ(fabric.sent[0].dst, 1);  // home of line 5
  EXPECT_EQ(fabric.sent[0].at, p.l1_hit_latency + p.l1_miss_detect);
  EXPECT_FALSE(core.done());  // blocked on the miss
  EXPECT_EQ(core.l1_misses(), 1u);
}

TEST(CoreModel, DataReplyUnblocksAndSendsUnblock) {
  Simulator sim;
  FakeFabric fabric(sim);
  Core core(sim, "core", 0, {{OpKind::kLoad, 5}, {OpKind::kDone, 0}}, tiny(),
            fabric);
  core.start();
  sim.run();
  core.on_message(ProtoMsg::kData, 5, 1);
  sim.run();
  EXPECT_TRUE(core.done());
  ASSERT_EQ(fabric.sent.size(), 2u);
  EXPECT_EQ(fabric.sent[1].type, ProtoMsg::kUnblock);
}

TEST(CoreModel, StoreOnSharedLineUpgrades) {
  Simulator sim;
  FakeFabric fabric(sim);
  Core core(sim, "core", 0,
            {{OpKind::kLoad, 5}, {OpKind::kStore, 5}, {OpKind::kDone, 0}},
            tiny(), fabric);
  core.start();
  sim.run();
  core.on_message(ProtoMsg::kData, 5, 1);  // now S
  sim.run();
  // The store on the S line must miss (upgrade) with a GetM.
  ASSERT_EQ(fabric.sent.size(), 3u);
  EXPECT_EQ(fabric.sent[2].type, ProtoMsg::kGetM);
  core.on_message(ProtoMsg::kDataM, 5, 2);
  sim.run();
  EXPECT_TRUE(core.done());
  // Cache-level: the upgrade lookup finds the S line (a hit); the cold load
  // was the only cache miss. The upgrade is a *core*-level miss only.
  EXPECT_EQ(core.l1_misses(), 1u);
}

TEST(CoreModel, StoreHitOnOwnedLine) {
  Simulator sim;
  FakeFabric fabric(sim);
  Core core(sim, "core", 0,
            {{OpKind::kStore, 5}, {OpKind::kStore, 5}, {OpKind::kDone, 0}},
            tiny(), fabric);
  core.start();
  sim.run();
  core.on_message(ProtoMsg::kDataM, 5, 1);
  sim.run();
  EXPECT_TRUE(core.done());
  EXPECT_EQ(core.l1_hits(), 1u);  // second store hits in M
}

TEST(CoreModel, DirtyVictimWritesBackBeforeDemandRequest) {
  Simulator sim;
  FakeFabric fabric(sim);
  // 1-set 2-way L1: three dirty lines force an eviction.
  Core core(sim, "core", 0,
            {{OpKind::kStore, 4},
             {OpKind::kStore, 8},
             {OpKind::kStore, 12},
             {OpKind::kDone, 0}},
            tiny(), fabric);
  core.start();
  sim.run();
  core.on_message(ProtoMsg::kDataM, 4, 1);
  sim.run();
  core.on_message(ProtoMsg::kDataM, 8, 2);
  sim.run();
  // Third store: victim (line 4, dirty) must PutM first.
  const auto& putm = fabric.sent.back();
  EXPECT_EQ(putm.type, ProtoMsg::kPutM);
  EXPECT_EQ(putm.line, 4u);
  // The GetM for line 12 is *not* sent until WbAck.
  core.on_message(ProtoMsg::kWbAck, 4, 3);
  sim.run();
  EXPECT_EQ(fabric.sent.back().type, ProtoMsg::kGetM);
  EXPECT_EQ(fabric.sent.back().line, 12u);
  core.on_message(ProtoMsg::kDataM, 12, 4);
  sim.run();
  EXPECT_TRUE(core.done());
}

TEST(CoreModel, InvAckedEvenWhenLineAbsent) {
  Simulator sim;
  FakeFabric fabric(sim);
  Core core(sim, "core", 0, {{OpKind::kDone, 0}}, tiny(), fabric);
  core.start();
  sim.run();
  core.on_message(ProtoMsg::kInv, 77, 9);
  sim.run();
  ASSERT_EQ(fabric.sent.size(), 1u);
  EXPECT_EQ(fabric.sent[0].type, ProtoMsg::kInvAck);
  EXPECT_EQ(fabric.sent[0].dst, 1);  // home of 77
}

TEST(CoreModel, RecallOnDirtyLineReturnsData) {
  Simulator sim;
  FakeFabric fabric(sim);
  Core core(sim, "core", 0,
            {{OpKind::kStore, 5}, {OpKind::kCompute, 1000}, {OpKind::kDone, 0}},
            tiny(), fabric);
  core.start();
  sim.run();
  core.on_message(ProtoMsg::kDataM, 5, 1);
  sim.run_until(50);
  core.on_message(ProtoMsg::kRecall, 5, 2);
  sim.run();
  bool recall_data = false;
  for (const auto& m : fabric.sent) {
    if (m.type == ProtoMsg::kRecallData && m.line == 5) recall_data = true;
  }
  EXPECT_TRUE(recall_data);
}

TEST(CoreModel, RecallOnAbsentLineReturnsStale) {
  Simulator sim;
  FakeFabric fabric(sim);
  Core core(sim, "core", 0, {{OpKind::kDone, 0}}, tiny(), fabric);
  core.start();
  sim.run();
  core.on_message(ProtoMsg::kRecall, 5, 1);
  sim.run();
  ASSERT_EQ(fabric.sent.size(), 1u);
  EXPECT_EQ(fabric.sent[0].type, ProtoMsg::kRecallStale);
}

TEST(CoreModel, BarrierBlocksUntilRelease) {
  Simulator sim;
  FakeFabric fabric(sim);
  Core core(sim, "core", 2, {{OpKind::kBarrier, 0}, {OpKind::kDone, 0}},
            tiny(), fabric);
  core.start();
  sim.run();
  ASSERT_EQ(fabric.sent.size(), 1u);
  EXPECT_EQ(fabric.sent[0].type, ProtoMsg::kBarArrive);
  EXPECT_EQ(fabric.sent[0].dst, 0);
  EXPECT_FALSE(core.done());
  core.on_message(ProtoMsg::kBarRelease, 0, 1);
  sim.run();
  EXPECT_TRUE(core.done());
}

TEST(CoreModel, UnexpectedMessagesThrow) {
  Simulator sim;
  FakeFabric fabric(sim);
  Core core(sim, "core", 0, {{OpKind::kDone, 0}}, tiny(), fabric);
  core.start();
  sim.run();
  EXPECT_THROW(core.on_message(ProtoMsg::kData, 5, 1), std::logic_error);
  EXPECT_THROW(core.on_message(ProtoMsg::kWbAck, 5, 2), std::logic_error);
  EXPECT_THROW(core.on_message(ProtoMsg::kBarRelease, 0, 3), std::logic_error);
}

TEST(CoreModel, ComputeTimeAccumulatesBetweenMisses) {
  Simulator sim;
  FakeFabric fabric(sim);
  FullSysParams p = tiny();
  Core core(sim, "core", 0,
            {{OpKind::kCompute, 50}, {OpKind::kLoad, 5}, {OpKind::kDone, 0}},
            p, fabric);
  core.start();
  sim.run();
  ASSERT_EQ(fabric.sent.size(), 1u);
  EXPECT_EQ(fabric.sent[0].at, 50 + p.l1_hit_latency + p.l1_miss_detect);
}

}  // namespace
}  // namespace sctm::fullsys
