#include "common/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sctm {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const auto cfg = Config::from_string("a = 1\nb.c = hello\n");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_string("b.c"), "hello");
}

TEST(Config, IgnoresCommentsAndBlankLines) {
  const auto cfg = Config::from_string("# comment\n\n a = 2 # trailing\n");
  EXPECT_EQ(cfg.get_int("a"), 2);
}

TEST(Config, DuplicateKeyIsAHardError) {
  // A key assigned twice in one file is almost always a stale edit; silently
  // honoring the later line made the earlier one a lie. The error names both
  // lines.
  try {
    Config::from_string("a = 1\nb = 2\na = 3\n");
    FAIL() << "expected duplicate-key error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'a'"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  }
}

TEST(Config, ProgrammaticSetStillOverwrites) {
  // set() (and merge(), below) keep last-wins semantics: sweeps patch parsed
  // configs programmatically, and that is not the stale-edit failure mode the
  // duplicate-line error guards against.
  auto cfg = Config::from_string("a = 1\n");
  cfg.set_int("a", 2);
  EXPECT_EQ(cfg.get_int("a"), 2);
}

TEST(Config, RequireKeysInAcceptsKnownAndForeignKeys) {
  const auto cfg =
      Config::from_string("fault.seed = 3\nonoc.wavelengths = 64\n");
  // Keys outside the prefix are someone else's vocabulary; known keys pass.
  EXPECT_NO_THROW(cfg.require_keys_in("fault.", {"seed", "max_retries"}));
}

TEST(Config, RequireKeysInRejectsUnknownKeyWithLine) {
  const auto cfg = Config::from_string("x = 1\nfault.sede = 3\n");
  try {
    cfg.require_keys_in("fault.", {"seed"});
    FAIL() << "expected unknown-key error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fault.sede"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("fault.seed"), std::string::npos) << what;
  }
}

TEST(Config, MissingKeyThrowsWithoutDefault) {
  const Config cfg;
  EXPECT_THROW(cfg.get_int("nope"), std::runtime_error);
  EXPECT_THROW(cfg.get_string("nope"), std::runtime_error);
}

TEST(Config, DefaultsUsedWhenAbsent) {
  const Config cfg;
  EXPECT_EQ(cfg.get_int("nope", 7), 7);
  EXPECT_EQ(cfg.get_string("nope", "x"), "x");
  EXPECT_TRUE(cfg.get_bool("nope", true));
  EXPECT_DOUBLE_EQ(cfg.get_double("nope", 1.5), 1.5);
}

TEST(Config, TypeErrorsThrow) {
  const auto cfg = Config::from_string("a = zebra\n");
  EXPECT_THROW(cfg.get_int("a"), std::runtime_error);
  EXPECT_THROW(cfg.get_double("a"), std::runtime_error);
  EXPECT_THROW(cfg.get_bool("a"), std::runtime_error);
}

TEST(Config, BoolSpellings) {
  const auto cfg =
      Config::from_string("a = true\nb = 0\nc = yes\nd = off\n");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::from_string("just a token\n"), std::runtime_error);
  EXPECT_THROW(Config::from_string("= value\n"), std::runtime_error);
}

TEST(Config, MergeOverrides) {
  auto a = Config::from_string("x = 1\ny = 2\n");
  const auto b = Config::from_string("y = 3\nz = 4\n");
  a.merge(b);
  EXPECT_EQ(a.get_int("x"), 1);
  EXPECT_EQ(a.get_int("y"), 3);
  EXPECT_EQ(a.get_int("z"), 4);
}

TEST(Config, ConsumedDumpTracksReads) {
  const auto cfg = Config::from_string("a = 1\nb = 2\n");
  (void)cfg.get_int("a");
  const std::string dump = cfg.consumed_dump();
  EXPECT_NE(dump.find("a = 1"), std::string::npos);
  EXPECT_EQ(dump.find("b = 2"), std::string::npos);
}

TEST(Config, SettersRoundTrip) {
  Config cfg;
  cfg.set_int("i", -5);
  cfg.set_double("d", 0.25);
  cfg.set_bool("b", true);
  EXPECT_EQ(cfg.get_int("i"), -5);
  EXPECT_DOUBLE_EQ(cfg.get_double("d"), 0.25);
  EXPECT_TRUE(cfg.get_bool("b"));
}

TEST(Config, DumpListsAllKeysSorted) {
  const auto cfg = Config::from_string("b = 2\na = 1\n");
  EXPECT_EQ(cfg.dump(), "a = 1\nb = 2\n");
}

}  // namespace
}  // namespace sctm
