// In-order core with a private L1 and blocking misses.
//
// The core consumes its op stream, folding consecutive hits and computes
// into a single scheduled event (idle-cheap). A load/store miss issues one
// outstanding transaction (MSHR = 1) and blocks until the reply; a barrier
// blocks until release. Dirty victims write back *before* the demand request
// leaves (PutM -> WbAck -> GetS/GetM), which closes most writeback races;
// the line is marked invalid the moment PutM leaves, so a crossing Recall is
// answered with RecallStale and the directory resolves the rest.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fullsys/app.hpp"
#include "fullsys/cache.hpp"
#include "fullsys/fabric.hpp"
#include "fullsys/params.hpp"
#include "sim/component.hpp"

namespace sctm::fullsys {

class Core : public Component {
 public:
  Core(Simulator& sim, std::string name, NodeId id, std::vector<Op> stream,
       const FullSysParams& params, Fabric& fabric);

  /// Schedules the first step. Call once before running the simulation.
  void start();

  /// Protocol messages addressed to this core (Data/DataM/WbAck/Inv/Recall/
  /// BarRelease). `msg_id` identifies the arrival for causal chaining.
  void on_message(ProtoMsg type, std::uint64_t line, MsgId msg_id);

  bool done() const { return done_; }
  Cycle finish_time() const { return finish_time_; }

  std::uint64_t l1_hits() const { return l1_.hits(); }
  std::uint64_t l1_misses() const { return l1_.misses(); }
  const Cache& l1() const { return l1_; }

 private:
  enum class Blocked : std::uint8_t {
    kNone,
    kWriteback,  // waiting WbAck before issuing the demand request
    kMiss,       // waiting Data/DataM
    kBarrier,    // waiting BarRelease
  };

  void step();
  void issue_miss();

  NodeId id_;
  std::vector<Op> stream_;
  std::size_t pc_ = 0;
  FullSysParams params_;
  Fabric& fabric_;
  Cache l1_;

  Blocked blocked_ = Blocked::kNone;
  std::uint64_t miss_line_ = 0;
  bool miss_is_write_ = false;
  /// kPerCycle mode: cycles left in the compute op being interpreted.
  Cycle compute_remaining_ = 0;

  /// Arrival that most recently unblocked this core (causal parent of the
  /// next send); kInvalidMsg before the first unblock.
  MsgId last_unblock_ = kInvalidMsg;


  bool done_ = false;
  Cycle finish_time_ = kNoCycle;

  std::uint64_t& stat_loads_;
  std::uint64_t& stat_stores_;
  std::uint64_t& stat_writebacks_;
  std::uint64_t& stat_barriers_;
};

}  // namespace sctm::fullsys
