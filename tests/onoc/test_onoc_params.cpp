#include "onoc/params.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sctm::onoc {
namespace {

TEST(OnocParams, BandwidthMath) {
  OnocParams p;  // 16 lambda x 10 Gb/s at 2 GHz
  EXPECT_DOUBLE_EQ(p.bytes_per_cycle(), 10.0);
  EXPECT_EQ(p.ser_cycles(0), 1u);
  EXPECT_EQ(p.ser_cycles(10), 1u);
  EXPECT_EQ(p.ser_cycles(11), 2u);
  EXPECT_EQ(p.ser_cycles(4096), 410u);
}

TEST(OnocParams, TofAtLeastOneCycle) {
  OnocParams p;
  EXPECT_EQ(p.tof_cycles(0, 4), 1u);
  EXPECT_GE(p.tof_cycles(6, 4), 1u);
  // Longer paths never take less time.
  EXPECT_LE(p.tof_cycles(1, 4), p.tof_cycles(6, 4));
}

TEST(OnocParams, ValidationRejectsBadValues) {
  OnocParams p;
  p.wavelengths = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = OnocParams{};
  p.eo_latency = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(OnocParams, FromConfigDefaults) {
  const auto p = OnocParams::from_config(Config{});
  EXPECT_EQ(p.wavelengths, 16);
  EXPECT_EQ(p.arbitration, Arbitration::kTokenRing);
  EXPECT_EQ(p.ctrl.vnets, 1);  // control mesh runs one vnet by default
  EXPECT_EQ(p.pool_channels, 8);
}

TEST(OnocParams, FromConfigOverrides) {
  const auto cfg = Config::from_string(
      "onoc.wavelengths = 64\nonoc.gbps_per_wavelength = 20\n"
      "onoc.arbitration = shared-pool\nonoc.pool_channels = 4\n"
      "onoc.eo_latency = 2\nonoc.die_edge_cm = 1.5\n");
  const auto p = OnocParams::from_config(cfg);
  EXPECT_EQ(p.wavelengths, 64);
  EXPECT_DOUBLE_EQ(p.gbps_per_wavelength, 20.0);
  EXPECT_EQ(p.arbitration, Arbitration::kSharedPool);
  EXPECT_EQ(p.pool_channels, 4);
  EXPECT_EQ(p.eo_latency, 2u);
  EXPECT_DOUBLE_EQ(p.die_edge_cm, 1.5);
}

TEST(OnocParams, FromConfigRejectsUnknownScheme) {
  EXPECT_THROW(OnocParams::from_config(
                   Config::from_string("onoc.arbitration = semaphore\n")),
               std::invalid_argument);
}

TEST(OnocParams, SchemeNames) {
  EXPECT_STREQ(to_string(Arbitration::kTokenRing), "token-ring");
  EXPECT_STREQ(to_string(Arbitration::kPathSetup), "path-setup");
  EXPECT_STREQ(to_string(Arbitration::kSwmr), "swmr");
  EXPECT_STREQ(to_string(Arbitration::kSharedPool), "shared-pool");
}

}  // namespace
}  // namespace sctm::onoc
