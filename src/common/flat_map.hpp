// FlatMap: open-addressing hash map for the simulator's hot bookkeeping
// tables (in-flight message state, arrival-time records).
//
// std::unordered_map allocates one node per insert and frees it on erase, so
// a steady stream of messages puts a malloc/free pair on every message even
// when the *population* of the table is constant. FlatMap stores slots in one
// flat array with linear probing and backward-shift deletion: capacity is
// retained across erase/insert cycles, so the steady-state message path is
// allocation-free (the table only allocates when the high-water population
// grows past the load-factor limit).
//
// Restrictions, on purpose (this is a kernel container, not a general map):
//  * Key is an unsigned integer type; one key value is reserved as the empty
//    sentinel and must never be inserted (defaults to the all-ones value,
//    matching kInvalidMsg / kNoCycle).
//  * Value must be movable; slots hold Value by value.
//  * Iteration order is unspecified (the simulator never iterates these
//    tables on a determinism-relevant path).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

namespace sctm {

template <typename Key, typename Value,
          Key kEmptyKey = std::numeric_limits<Key>::max()>
class FlatMap {
  static_assert(std::is_unsigned_v<Key>, "FlatMap keys are unsigned integers");

 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `n` live entries without rehash.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  Value* find(Key key) {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = probe_start(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
    }
  }
  const Value* find(Key key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Inserts (key -> value); the key must not be present (assert).
  Value& insert(Key key, Value value) {
    assert(key != kEmptyKey && "FlatMap: reserved sentinel key");
    if (slots_.empty() || (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    for (std::size_t i = probe_start(key);; i = next(i)) {
      Slot& s = slots_[i];
      assert(s.key != key && "FlatMap: duplicate key");
      if (s.key == kEmptyKey) {
        s.key = key;
        s.value = std::move(value);
        ++size_;
        return s.value;
      }
    }
  }

  /// Inserts or overwrites.
  Value& insert_or_assign(Key key, Value value) {
    if (Value* v = find(key)) {
      *v = std::move(value);
      return *v;
    }
    return insert(key, std::move(value));
  }

  /// Removes `key` if present; returns whether it was. Backward-shift
  /// deletion keeps probe chains intact without tombstones, so lookup cost
  /// stays bounded by the live load factor forever.
  bool erase(Key key) {
    if (slots_.empty()) return false;
    std::size_t i = probe_start(key);
    for (;; i = next(i)) {
      if (slots_[i].key == key) break;
      if (slots_[i].key == kEmptyKey) return false;
    }
    std::size_t hole = i;
    for (std::size_t j = next(hole);; j = next(j)) {
      Slot& cand = slots_[j];
      if (cand.key == kEmptyKey) break;
      const std::size_t home = probe_start(cand.key);
      // cand may fill the hole only if the hole lies on cand's probe path
      // (cyclically between its home slot and its current slot).
      const bool movable = (j >= home) ? (hole >= home && hole < j)
                                       : (hole >= home || hole < j);
      if (movable) {
        slots_[hole].key = cand.key;
        slots_[hole].value = std::move(cand.value);
        cand.key = kEmptyKey;
        hole = j;
      }
    }
    slots_[hole].key = kEmptyKey;
    slots_[hole].value = Value{};
    --size_;
    return true;
  }

  void clear() {
    for (Slot& s : slots_) {
      s.key = kEmptyKey;
      s.value = Value{};
    }
    size_ = 0;
  }

  /// Calls fn(key, value&) for every live entry (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    Key key = kEmptyKey;
    Value value{};
  };

  static constexpr std::size_t kMinCapacity = 16;
  // Max load factor 7/8: probes stay short, growth stays rare.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  std::size_t probe_start(Key key) const {
    // Fibonacci hashing spreads sequential ids (the common MsgId pattern)
    // across the table.
    const std::uint64_t h =
        static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> shift_);
  }
  std::size_t next(std::size_t i) const { return (i + 1) & mask_; }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    shift_ = 64 - log2_of(new_cap);
    size_ = 0;
    for (Slot& s : old) {
      if (s.key != kEmptyKey) insert(s.key, std::move(s.value));
    }
  }

  static unsigned log2_of(std::size_t pow2) {
    unsigned b = 0;
    while ((std::size_t{1} << b) < pow2) ++b;
    return b;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
};

}  // namespace sctm
