// R-T3: optical power and loss budget breakdown.
//
// For fabrics of 16 and 64 endpoints and 8..64 wavelengths: worst-case
// optical path loss by component, required laser power per wavelength, total
// electrical laser power, ring count and trimming power. Expected shape:
// through-ring loss scales with nodes x wavelengths, so laser power grows
// superlinearly with radix — the classic ONOC static-power wall.
#include "bench/bench_util.hpp"

#include "onoc/loss.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  Table t("R-T3: ONOC loss budget and static power");
  t.set_header({"nodes", "lambdas", "loss total (dB)", "prop", "rings",
                "laser/lambda (dBm)", "laser total (mW el.)", "ring count",
                "trim (mW)"});

  bool ok = true;
  double p16 = 0, p64 = 0;
  for (const int nodes : {16, 64}) {
    for (const int lambdas : {8, 16, 32, 64}) {
      onoc::LossBudgetInputs in;
      in.nodes = nodes;
      in.channels_per_node = nodes - 1;
      in.wavelengths = lambdas;
      const auto budget = onoc::compute_loss(in);
      const auto laser = onoc::compute_laser(in);
      t.add_row({Table::fmt(static_cast<std::int64_t>(nodes)),
                 Table::fmt(static_cast<std::int64_t>(lambdas)),
                 Table::fmt(budget.total_db(), 2),
                 Table::fmt(budget.propagation_db, 2),
                 Table::fmt(budget.through_rings_db, 2),
                 Table::fmt(laser.per_wavelength_dbm, 1),
                 Table::fmt(laser.total_electrical_mw, 1),
                 Table::fmt(static_cast<std::int64_t>(laser.ring_count)),
                 Table::fmt(laser.ring_heating_mw, 1)});
      ok = ok && budget.total_db() > 0 && laser.total_electrical_mw > 0;
      if (lambdas == 16) {
        if (nodes == 16) p16 = laser.total_electrical_mw;
        if (nodes == 64) p64 = laser.total_electrical_mw;
      }
    }
  }
  emit(t, "rt3_power");
  ok = ok && p64 > 4.0 * p16;  // superlinear radix scaling
  return verdict(ok, "R-T3 laser power scales superlinearly with radix");
}
