#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "noc/traffic.hpp"
#include "onoc/onoc_network.hpp"

namespace sctm::onoc {
namespace {

using noc::Message;
using noc::Topology;

Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = noc::MsgClass::kData;
  return m;
}

OnocParams swmr_params() {
  OnocParams p;
  p.arbitration = Arbitration::kSwmr;
  return p;
}

TEST(Swmr, SingleMessageAtZeroLoadLatency) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, swmr_params());
  Message got;
  net.set_deliver_callback([&](const Message& m) { got = m; });
  net.inject(make_msg(1, 0, 15, 64));
  sim.run();
  EXPECT_EQ(got.latency(), net.zero_load_latency(got));
}

TEST(Swmr, SameSourceSerializes) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, swmr_params());
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  // Two large messages from node 0 to distinct receivers: the shared source
  // channel forces serialization even though the receivers differ.
  net.inject(make_msg(1, 0, 12, 640));
  net.inject(make_msg(2, 0, 13, 640));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  const Cycle ser = net.params().ser_cycles(640);
  const Cycle a0 = std::min(got[0].arrive_time, got[1].arrive_time);
  const Cycle a1 = std::max(got[0].arrive_time, got[1].arrive_time);
  EXPECT_GE(a1, a0 + ser);
}

TEST(Swmr, DifferentSourcesToSameDestinationProceedInParallel) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, swmr_params());
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  // The MWSR bottleneck case is free under SWMR (modeled receivers are
  // contention-free).
  net.inject(make_msg(1, 0, 15, 640));
  net.inject(make_msg(2, 1, 15, 640));
  net.inject(make_msg(3, 2, 15, 640));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  for (const auto& m : got) {
    EXPECT_LE(m.latency(), net.zero_load_latency(m) + 2);
  }
}

TEST(Swmr, LosslessUnderSyntheticLoad) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, swmr_params());
  noc::TrafficGenerator::Params tp;
  tp.injection_rate = 0.2;
  tp.warmup = 200;
  tp.measure = 2000;
  tp.seed = 41;
  noc::TrafficGenerator gen(sim, "gen", net, t, tp);
  gen.run_to_completion();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.injected_count(), net.delivered_count());
}

TEST(Swmr, FixedPointThroughDriver) {
  using namespace core;
  fullsys::AppParams app;
  app.name = "sort";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  NetSpec spec;
  spec.kind = NetKind::kOnocSwmr;
  const auto exec = run_execution(app, spec, {});
  const auto rep = run_replay(exec.trace, spec, {});
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < exec.trace.records.size(); ++i) {
    if (rep.result.inject_time[i] != exec.trace.records[i].inject_time ||
        rep.result.arrive_time[i] != exec.trace.records[i].arrive_time) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(Swmr, BeatsTokenOnReceiverHotspot) {
  // The scheme's raison d'etre: fan-in to one node has no channel conflict.
  auto hotspot_latency = [](Arbitration arb) {
    Simulator sim;
    const auto t = Topology::mesh(4, 4);
    OnocParams p;
    p.arbitration = arb;
    OnocNetwork net(sim, "onoc", t, p);
    noc::TrafficGenerator::Params tp;
    tp.pattern = noc::TrafficPattern::kHotspot;
    tp.hotspot_fraction = 0.6;
    tp.injection_rate = 0.08;
    tp.warmup = 300;
    tp.measure = 3000;
    tp.seed = 43;
    noc::TrafficGenerator gen(sim, "gen", net, t, tp);
    gen.run_to_completion();
    return gen.latency().mean();
  };
  EXPECT_LT(hotspot_latency(Arbitration::kSwmr),
            hotspot_latency(Arbitration::kTokenRing));
}

}  // namespace
}  // namespace sctm::onoc
