#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json.hpp"

namespace sctm {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Accumulator::reset() { *this = Accumulator{}; }

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  // Sample variance: m2_ accumulates the sum of squared deviations, Bessel's
  // correction divides by n-1 (see header for the rationale).
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("n");
  w.value(n_);
  w.key("mean");
  w.value(mean());
  w.key("min");
  w.value(min());
  w.key("max");
  w.value(max());
  w.key("stddev");
  w.value(stddev());
  w.end_object();
}

std::uint64_t& StatRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), 0).first->second;
}

Accumulator& StatRegistry::accumulator(std::string_view name) {
  const auto it = accumulators_.find(name);
  if (it != accumulators_.end()) return it->second;
  return accumulators_.emplace(std::string(name), Accumulator{}).first->second;
}

bool StatRegistry::has_counter(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

bool StatRegistry::has_accumulator(std::string_view name) const {
  return accumulators_.find(name) != accumulators_.end();
}

std::uint64_t StatRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::string> StatRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size() + accumulators_.size());
  for (const auto& [k, v] : counters_) out.push_back(k);
  for (const auto& [k, v] : accumulators_) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}

std::string StatRegistry::report() const {
  std::ostringstream ss;
  for (const auto& [k, v] : counters_) ss << k << " = " << v << '\n';
  for (const auto& [k, a] : accumulators_) {
    ss << k << " : n=" << a.count() << " mean=" << a.mean()
       << " min=" << a.min() << " max=" << a.max() << " sd=" << a.stddev()
       << '\n';
  }
  return ss.str();
}

void StatRegistry::write_counters_json(JsonWriter& w) const {
  w.begin_object();
  for (const auto& [k, v] : counters_) {
    w.key(k);
    w.value(v);
  }
  w.end_object();
}

void StatRegistry::write_accumulators_json(JsonWriter& w) const {
  w.begin_object();
  for (const auto& [k, a] : accumulators_) {
    w.key(k);
    a.write_json(w);
  }
  w.end_object();
}

void StatRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  write_counters_json(w);
  w.key("accumulators");
  write_accumulators_json(w);
  w.end_object();
}

void StatRegistry::reset() {
  counters_.clear();
  accumulators_.clear();
}

void StatRegistry::zero() {
  for (auto& [k, v] : counters_) v = 0;
  for (auto& [k, a] : accumulators_) a.reset();
}

}  // namespace sctm
