file(REMOVE_RECURSE
  "CMakeFiles/fig_convergence.dir/fig_convergence.cpp.o"
  "CMakeFiles/fig_convergence.dir/fig_convergence.cpp.o.d"
  "fig_convergence"
  "fig_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
