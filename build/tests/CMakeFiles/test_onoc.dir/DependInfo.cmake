
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/onoc/test_hybrid.cpp" "tests/CMakeFiles/test_onoc.dir/onoc/test_hybrid.cpp.o" "gcc" "tests/CMakeFiles/test_onoc.dir/onoc/test_hybrid.cpp.o.d"
  "/root/repo/tests/onoc/test_loss.cpp" "tests/CMakeFiles/test_onoc.dir/onoc/test_loss.cpp.o" "gcc" "tests/CMakeFiles/test_onoc.dir/onoc/test_loss.cpp.o.d"
  "/root/repo/tests/onoc/test_onoc_network.cpp" "tests/CMakeFiles/test_onoc.dir/onoc/test_onoc_network.cpp.o" "gcc" "tests/CMakeFiles/test_onoc.dir/onoc/test_onoc_network.cpp.o.d"
  "/root/repo/tests/onoc/test_onoc_params.cpp" "tests/CMakeFiles/test_onoc.dir/onoc/test_onoc_params.cpp.o" "gcc" "tests/CMakeFiles/test_onoc.dir/onoc/test_onoc_params.cpp.o.d"
  "/root/repo/tests/onoc/test_onoc_power.cpp" "tests/CMakeFiles/test_onoc.dir/onoc/test_onoc_power.cpp.o" "gcc" "tests/CMakeFiles/test_onoc.dir/onoc/test_onoc_power.cpp.o.d"
  "/root/repo/tests/onoc/test_shared_pool.cpp" "tests/CMakeFiles/test_onoc.dir/onoc/test_shared_pool.cpp.o" "gcc" "tests/CMakeFiles/test_onoc.dir/onoc/test_shared_pool.cpp.o.d"
  "/root/repo/tests/onoc/test_swmr.cpp" "tests/CMakeFiles/test_onoc.dir/onoc/test_swmr.cpp.o" "gcc" "tests/CMakeFiles/test_onoc.dir/onoc/test_swmr.cpp.o.d"
  "/root/repo/tests/onoc/test_token.cpp" "tests/CMakeFiles/test_onoc.dir/onoc/test_token.cpp.o" "gcc" "tests/CMakeFiles/test_onoc.dir/onoc/test_token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sctm_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sctm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/fullsys/CMakeFiles/sctm_fullsys.dir/DependInfo.cmake"
  "/root/repo/build/src/onoc/CMakeFiles/sctm_onoc.dir/DependInfo.cmake"
  "/root/repo/build/src/enoc/CMakeFiles/sctm_enoc.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/sctm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sctm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
