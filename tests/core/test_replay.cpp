#include "core/replay.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "core/error_metrics.hpp"
#include "trace/dependency_graph.hpp"

namespace sctm::core {
namespace {

fullsys::AppParams small_app(const char* name) {
  fullsys::AppParams app;
  app.name = name;
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  return app;
}

fullsys::FullSysParams small_sys() {
  fullsys::FullSysParams sys;
  sys.l1_sets = 8;
  sys.l1_ways = 2;
  sys.l2_sets = 32;
  sys.l2_ways = 4;
  return sys;
}

NetSpec enoc_spec() {
  NetSpec s;
  s.kind = NetKind::kEnoc;
  return s;
}

NetSpec ideal_spec(Cycle per_hop = 1) {
  NetSpec s;
  s.kind = NetKind::kIdeal;
  s.ideal.per_hop_latency = per_hop;
  return s;
}

// The central correctness property of the Self-Correction Trace Model:
// replaying a trace on the *capture* network reproduces the captured
// schedule exactly (injections AND arrivals), because every dependency
// resolves at exactly its captured time.
TEST(Replay, FixedPointOnCaptureNetworkIdeal) {
  const auto exec = run_execution(small_app("fft"), ideal_spec(), small_sys());
  const auto rep = run_replay(exec.trace, ideal_spec(), {});
  ASSERT_EQ(rep.result.inject_time.size(), exec.trace.records.size());
  for (std::size_t i = 0; i < exec.trace.records.size(); ++i) {
    EXPECT_EQ(rep.result.inject_time[i], exec.trace.records[i].inject_time)
        << "record " << i;
    EXPECT_EQ(rep.result.arrive_time[i], exec.trace.records[i].arrive_time)
        << "record " << i;
  }
  EXPECT_EQ(rep.result.runtime, exec.trace.capture_runtime);
  EXPECT_EQ(rep.result.iterations, 1);
}

class FixedPointAllApps : public ::testing::TestWithParam<const char*> {};

// The paper's central soundness property, on the *real* electrical NoC with
// arbitration, VCs and credit stalls — every captured injection and arrival
// must reproduce bit-exactly when the replay target equals the capture
// network.
TEST_P(FixedPointAllApps, EnocReplayBitExact) {
  const auto exec =
      run_execution(small_app(GetParam()), enoc_spec(), small_sys());
  const auto rep = run_replay(exec.trace, enoc_spec(), {});
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < exec.trace.records.size(); ++i) {
    if (rep.result.inject_time[i] != exec.trace.records[i].inject_time ||
        rep.result.arrive_time[i] != exec.trace.records[i].arrive_time) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, FixedPointAllApps,
                         ::testing::Values("jacobi", "fft", "lu", "sort",
                                           "barnes", "stream"),
                         [](const auto& info) { return info.param; });

TEST(Replay, FixedPointOnOnocTokenNetwork) {
  NetSpec onoc;
  onoc.kind = NetKind::kOnocToken;
  const auto exec = run_execution(small_app("fft"), onoc, small_sys());
  const auto rep = run_replay(exec.trace, onoc, {});
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < exec.trace.records.size(); ++i) {
    if (rep.result.inject_time[i] != exec.trace.records[i].inject_time ||
        rep.result.arrive_time[i] != exec.trace.records[i].arrive_time) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(Replay, NaiveAlsoExactOnCaptureNetworkIdeal) {
  // On an uncontended ideal network, frozen timestamps happen to be right —
  // the strawman only breaks when the target differs from the capture net.
  const auto exec = run_execution(small_app("fft"), ideal_spec(), small_sys());
  ReplayConfig cfg;
  cfg.mode = ReplayMode::kNaive;
  const auto rep = run_replay(exec.trace, ideal_spec(), cfg);
  for (std::size_t i = 0; i < exec.trace.records.size(); ++i) {
    EXPECT_EQ(rep.result.inject_time[i], exec.trace.records[i].inject_time);
  }
}

TEST(Replay, SelfCorrectingTracksSlowerTarget) {
  // Capture on a fast network; replay on one 20x slower per hop. SCTM must
  // stretch the schedule (runtime grows); naive must keep captured
  // injection times (it cannot react).
  const auto exec = run_execution(small_app("fft"), ideal_spec(1), small_sys());

  ReplayConfig naive;
  naive.mode = ReplayMode::kNaive;
  const auto rep_naive = run_replay(exec.trace, ideal_spec(20), naive);
  const auto rep_sctm = run_replay(exec.trace, ideal_spec(20), {});

  EXPECT_GT(rep_sctm.result.runtime, exec.trace.capture_runtime * 2);
  for (std::size_t i = 0; i < exec.trace.records.size(); ++i) {
    EXPECT_EQ(rep_naive.result.inject_time[i],
              exec.trace.records[i].inject_time);
    EXPECT_GE(rep_sctm.result.inject_time[i],
              exec.trace.records[i].inject_time);
  }
}

TEST(Replay, SelfCorrectingTracksFasterTarget) {
  // Capture slow, replay fast: SCTM must compress the schedule.
  const auto exec =
      run_execution(small_app("jacobi"), ideal_spec(20), small_sys());
  const auto rep = run_replay(exec.trace, ideal_spec(1), {});
  EXPECT_LT(rep.result.runtime, exec.trace.capture_runtime);
}

TEST(Replay, SctmBeatsNaiveAgainstGroundTruth) {
  // Capture on the electrical mesh, target the slow ideal network; ground
  // truth = execution-driven on the target. SCTM's runtime prediction must
  // be markedly closer than naive's.
  const auto app = small_app("fft");
  const auto sys = small_sys();
  const auto exec_capture = run_execution(app, enoc_spec(), sys);
  const auto exec_truth = run_execution(app, ideal_spec(20), sys);

  ReplayConfig naive;
  naive.mode = ReplayMode::kNaive;
  const auto rep_naive = run_replay(exec_capture.trace, ideal_spec(20), naive);
  const auto rep_sctm = run_replay(exec_capture.trace, ideal_spec(20), {});

  const auto truth = summarize(exec_truth.trace);
  const auto e_naive =
      compare(truth, summarize(exec_capture.trace, rep_naive.result));
  const auto e_sctm =
      compare(truth, summarize(exec_capture.trace, rep_sctm.result));
  EXPECT_LT(e_sctm.runtime_err, e_naive.runtime_err * 0.5);
  EXPECT_LT(e_sctm.runtime_err, 0.15);
}

TEST(Replay, DependencyRespectedInReplaySchedule) {
  const auto exec = run_execution(small_app("sort"), enoc_spec(), small_sys());
  const auto rep = run_replay(exec.trace, ideal_spec(5), {});
  const trace::DependencyGraph g(exec.trace);
  for (std::size_t i = 0; i < exec.trace.records.size(); ++i) {
    for (const auto& d : exec.trace.records[i].deps) {
      const auto p = g.index_of(d.parent);
      EXPECT_GE(rep.result.inject_time[i],
                rep.result.arrive_time[p] + d.slack)
          << "dependency violated at record " << i;
    }
  }
}

TEST(Replay, WindowZeroFirstPassIsNaive) {
  const auto exec = run_execution(small_app("fft"), ideal_spec(), small_sys());
  ReplayConfig cfg;
  cfg.dependency_window = 0;
  cfg.max_iterations = 1;
  const auto rep = run_replay(exec.trace, ideal_spec(), cfg);
  for (std::size_t i = 0; i < exec.trace.records.size(); ++i) {
    EXPECT_EQ(rep.result.inject_time[i], exec.trace.records[i].inject_time);
  }
}

TEST(Replay, TruncatedWindowConvergesWithIterations) {
  const auto exec = run_execution(small_app("fft"), ideal_spec(1), small_sys());
  ReplayConfig cfg;
  cfg.dependency_window = 1;
  cfg.max_iterations = 12;
  cfg.convergence_threshold = 0.5;
  const auto rep = run_replay(exec.trace, ideal_spec(20), cfg);
  EXPECT_GT(rep.result.iterations, 1);
  EXPECT_LE(rep.result.iterations, 12);
  // Converged result must closely match the full-window single-pass result.
  const auto full = run_replay(exec.trace, ideal_spec(20), {});
  const double rt_gap =
      std::abs(static_cast<double>(rep.result.runtime) -
               static_cast<double>(full.result.runtime)) /
      static_cast<double>(full.result.runtime);
  EXPECT_LT(rt_gap, 0.05);
}

TEST(Replay, ReplayIsDeterministic) {
  const auto exec = run_execution(small_app("lu"), enoc_spec(), small_sys());
  const auto a = run_replay(exec.trace, enoc_spec(), {});
  const auto b = run_replay(exec.trace, enoc_spec(), {});
  EXPECT_EQ(a.result.inject_time, b.result.inject_time);
  EXPECT_EQ(a.result.arrive_time, b.result.arrive_time);
}

TEST(Replay, EmptyTraceYieldsEmptyResult) {
  trace::Trace t;
  t.nodes = 4;
  const auto res = replay(t, make_factory(ideal_spec()), {});
  EXPECT_TRUE(res.inject_time.empty());
  EXPECT_EQ(res.runtime, 0u);
}

TEST(Replay, MismatchedNetworkSizeThrows) {
  const auto exec = run_execution(small_app("fft"), ideal_spec(), small_sys());
  NetSpec wrong = ideal_spec();
  wrong.topo = noc::Topology::mesh(2, 2);
  EXPECT_THROW(run_replay(exec.trace, wrong, {}), std::invalid_argument);
}

TEST(ErrorMetrics, IdenticalRunsZeroError) {
  RunSummary s;
  s.messages = 10;
  s.mean_latency = 20;
  s.p50_latency = 18;
  s.p99_latency = 60;
  s.runtime = 1000;
  const auto e = compare(s, s);
  EXPECT_DOUBLE_EQ(e.worst(), 0.0);
}

TEST(ErrorMetrics, RelativeErrorComputation) {
  RunSummary truth;
  truth.mean_latency = 100;
  truth.p50_latency = 100;
  truth.p99_latency = 100;
  truth.runtime = 1000;
  RunSummary model = truth;
  model.mean_latency = 110;
  model.runtime = 800;
  const auto e = compare(truth, model);
  EXPECT_NEAR(e.mean_latency_err, 0.1, 1e-12);
  EXPECT_NEAR(e.runtime_err, 0.2, 1e-12);
  EXPECT_NEAR(e.worst(), 0.2, 1e-12);
}

// Zero-truth components fall back to the absolute error |model| (an exact
// match still scores 0), so a degenerate metric can't pin the report at a
// constant and worst() stays monotone in the size of the miss.
TEST(ErrorMetrics, ZeroTruthUsesAbsoluteError) {
  RunSummary truth;  // everything zero
  RunSummary exact = truth;
  const auto e0 = compare(truth, exact);
  EXPECT_DOUBLE_EQ(e0.worst(), 0.0);

  RunSummary small = truth;
  small.mean_latency = 2.0;
  RunSummary big = truth;
  big.mean_latency = 50.0;
  const auto es = compare(truth, small);
  const auto eb = compare(truth, big);
  EXPECT_NEAR(es.mean_latency_err, 2.0, 1e-12);
  EXPECT_NEAR(eb.mean_latency_err, 50.0, 1e-12);
  EXPECT_LT(es.worst(), eb.worst());  // monotone in the miss size
}

TEST(ErrorMetrics, ZeroTruthComponentsAreIndependent) {
  RunSummary truth;
  truth.mean_latency = 100;
  truth.p50_latency = 0;  // degenerate component
  truth.p99_latency = 100;
  truth.runtime = 1000;
  RunSummary model = truth;
  model.p50_latency = 7;
  model.runtime = 1100;
  const auto e = compare(truth, model);
  EXPECT_NEAR(e.p50_latency_err, 7.0, 1e-12);   // absolute fallback
  EXPECT_NEAR(e.runtime_err, 0.1, 1e-12);       // ordinary relative error
  EXPECT_DOUBLE_EQ(e.mean_latency_err, 0.0);
}

}  // namespace
}  // namespace sctm::core
