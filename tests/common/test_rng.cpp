#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sctm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(13), 13u);
  }
  EXPECT_EQ(r.next_below(1), 0u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(3);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 1000; ++i) seen[r.next_below(8)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, RangeInclusive) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  Rng a2(21);
  (void)a2.next_u64();  // same position as `a` after split
  // The child stream must not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == a2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace sctm
