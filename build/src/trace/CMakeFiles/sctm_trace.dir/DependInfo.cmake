
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/capture.cpp" "src/trace/CMakeFiles/sctm_trace.dir/capture.cpp.o" "gcc" "src/trace/CMakeFiles/sctm_trace.dir/capture.cpp.o.d"
  "/root/repo/src/trace/dependency_graph.cpp" "src/trace/CMakeFiles/sctm_trace.dir/dependency_graph.cpp.o" "gcc" "src/trace/CMakeFiles/sctm_trace.dir/dependency_graph.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/sctm_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/sctm_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fullsys/CMakeFiles/sctm_fullsys.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/sctm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sctm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
