# Empty dependencies file for ext_flexishare.
# This may be replaced when dependencies are built.
