#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "tracestore/trace_store.hpp"

namespace sctm::trace {
namespace {

constexpr char kMagic[8] = {'S', 'C', 'T', 'M', 'T', 'R', 'C', '1'};

// v1 serialization is fully buffered: the writer encodes the whole trace
// into one byte vector and issues a single ostream::write; the reader
// slurps the stream once and decodes from a memory cursor. The encoded
// bytes are field-for-field identical to the original per-field stream I/O
// (the golden round-trip test pins the layout).
//
// The reader is strict: every length and count is validated against the
// bytes actually present before anything is allocated, and every error
// names the byte offset where decoding stopped — a truncated or corrupted
// file can never come back as a silently shorter Trace.

class ByteWriter {
 public:
  void reserve(std::size_t n) { buf_.reserve(n); }

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = buf_.size();
    buf_.resize(n + sizeof v);
    std::memcpy(buf_.data() + n, &v, sizeof v);
  }

  void put_bytes(const char* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  void put_string(const std::string& s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    put_bytes(s.data(), s.size());
  }

  const std::vector<char>& bytes() const { return buf_; }

 private:
  std::vector<char> buf_;
};

[[noreturn]] void fail_at(std::size_t pos, const std::string& what) {
  throw std::runtime_error("trace: " + what + " at byte " +
                           std::to_string(pos));
}

class ByteReader {
 public:
  ByteReader(const char* data, std::size_t len) : data_(data), len_(len) {}

  template <typename T>
  T get(const char* field) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (len_ - pos_ < sizeof(T)) {
      fail_at(pos_, std::string("truncated input reading ") + field +
                        " (need " + std::to_string(sizeof(T)) + " bytes, " +
                        std::to_string(len_ - pos_) + " left)");
    }
    T v{};
    std::memcpy(&v, data_ + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  void skip(std::size_t n) {
    if (len_ - pos_ < n) fail_at(pos_, "truncated input");
    pos_ += n;
  }

  std::string get_string(const char* field) {
    const auto len = get<std::uint32_t>(field);
    if (len > (1u << 20)) {
      fail_at(pos_ - 4, std::string("absurd length ") + std::to_string(len) +
                            " for " + field);
    }
    if (len_ - pos_ < len) {
      fail_at(pos_, std::string("truncated ") + field);
    }
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return len_ - pos_; }

 private:
  const char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// Decodes a v1 byte image (post-magic validation happens in the caller).
Trace read_v1_bytes(const char* data, std::size_t len) {
  ByteReader r(data, len);
  r.skip(sizeof kMagic);

  Trace t;
  t.app = r.get_string("app name");
  t.capture_network = r.get_string("capture network");
  t.nodes = r.get<std::int32_t>("node count");
  if (t.nodes < 0) {
    fail_at(r.pos() - 4, "negative node count");
  }
  t.capture_runtime = r.get<std::uint64_t>("capture runtime");
  t.seed = r.get<std::uint64_t>("seed");
  const auto count = r.get<std::uint64_t>("record count");
  // Every record occupies at least 40 bytes; a count beyond what the
  // remaining bytes can hold is corruption, not a large trace — reject it
  // before reserving anything.
  constexpr std::size_t kMinRecordBytes = 8 + 4 + 4 + 4 + 1 + 1 + 8 + 8 + 2;
  if (count > r.remaining() / kMinRecordBytes) {
    fail_at(r.pos() - 8, "record count " + std::to_string(count) +
                             " exceeds remaining " +
                             std::to_string(r.remaining()) + " bytes");
  }
  t.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord rec;
    rec.id = r.get<std::uint64_t>("record id");
    rec.src = r.get<std::int32_t>("src");
    rec.dst = r.get<std::int32_t>("dst");
    rec.size_bytes = r.get<std::uint32_t>("size");
    const auto cls = r.get<std::uint8_t>("class");
    if (cls >= noc::kMsgClassCount) {
      fail_at(r.pos() - 1, "invalid message class " + std::to_string(cls) +
                               " in record " + std::to_string(i));
    }
    rec.cls = static_cast<noc::MsgClass>(cls);
    rec.proto = r.get<std::uint8_t>("proto");
    rec.inject_time = r.get<std::uint64_t>("inject time");
    rec.arrive_time = r.get<std::uint64_t>("arrive time");
    const auto deps = r.get<std::uint16_t>("dependency count");
    if (deps * std::size_t{16} > r.remaining()) {
      fail_at(r.pos() - 2, "dependency count " + std::to_string(deps) +
                               " exceeds remaining " +
                               std::to_string(r.remaining()) +
                               " bytes in record " + std::to_string(i));
    }
    rec.deps.reserve(deps);
    for (int d = 0; d < deps; ++d) {
      TraceDep dep;
      dep.parent = r.get<std::uint64_t>("dependency parent");
      dep.slack = r.get<std::uint64_t>("dependency slack");
      rec.deps.push_back(dep);
    }
    t.records.push_back(std::move(rec));
  }
  if (r.remaining() != 0) {
    fail_at(r.pos(), std::to_string(r.remaining()) +
                         " trailing bytes after the last record");
  }
  return t;
}

std::size_t encoded_size(const Trace& trace) {
  // magic + 2 length-prefixed strings + nodes/runtime/seed/count header.
  std::size_t n = sizeof kMagic + 4 + trace.app.size() + 4 +
                  trace.capture_network.size() + 4 + 8 + 8 + 8;
  for (const auto& r : trace.records) {
    n += 8 + 4 + 4 + 4 + 1 + 1 + 8 + 8 + 2 + r.deps.size() * 16;
  }
  return n;
}

}  // namespace

const char* to_string(TraceFormat f) {
  switch (f) {
    case TraceFormat::kV1: return "v1";
    case TraceFormat::kV2: return "v2";
  }
  return "?";
}

void write_binary(const Trace& trace, std::ostream& out) {
  ByteWriter w;
  w.reserve(encoded_size(trace));
  w.put_bytes(kMagic, sizeof kMagic);
  w.put_string(trace.app);
  w.put_string(trace.capture_network);
  w.put<std::int32_t>(trace.nodes);
  w.put<std::uint64_t>(trace.capture_runtime);
  w.put<std::uint64_t>(trace.seed);
  w.put<std::uint64_t>(trace.records.size());
  for (const auto& r : trace.records) {
    w.put<std::uint64_t>(r.id);
    w.put<std::int32_t>(r.src);
    w.put<std::int32_t>(r.dst);
    w.put<std::uint32_t>(r.size_bytes);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(r.cls));
    w.put<std::uint8_t>(r.proto);
    w.put<std::uint64_t>(r.inject_time);
    w.put<std::uint64_t>(r.arrive_time);
    w.put<std::uint16_t>(static_cast<std::uint16_t>(r.deps.size()));
    for (const auto& d : r.deps) {
      w.put<std::uint64_t>(d.parent);
      w.put<std::uint64_t>(d.slack);
    }
  }
  out.write(w.bytes().data(),
            static_cast<std::streamsize>(w.bytes().size()));
  if (!out) throw std::runtime_error("trace: write failed");
}

Trace read_binary(std::istream& in) {
  std::vector<char> bytes;
  {
    char chunk[1 << 16];
    while (in) {
      in.read(chunk, sizeof chunk);
      bytes.insert(bytes.end(), chunk, chunk + in.gcount());
    }
    if (in.bad()) throw std::runtime_error("trace: read failed");
  }
  if (bytes.size() >= sizeof kMagic &&
      tracestore::is_v2_magic(bytes.data(), bytes.size())) {
    tracestore::TraceReader reader(
        tracestore::memory_source(bytes.data(), bytes.size()));
    return reader.read_all();
  }
  if (bytes.size() < sizeof kMagic ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("trace: bad magic (not an SCTM trace?)");
  }
  return read_v1_bytes(bytes.data(), bytes.size());
}

void write_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  write_binary(trace, out);
}

Trace read_binary_file(const std::string& path) {
  if (sniff_format(path) == TraceFormat::kV2) {
    // Seeking reader + parallel chunk decode; no whole-file slurp.
    return tracestore::TraceReader::open_file(path).read_all();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return read_binary(in);
}

void write_file(const Trace& trace, const std::string& path, TraceFormat f) {
  if (f == TraceFormat::kV1) {
    write_binary_file(trace, path);
    return;
  }
  tracestore::write_v2_file(trace, path);
}

TraceFormat sniff_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  char magic[8] = {};
  in.read(magic, sizeof magic);
  if (in.gcount() == sizeof magic) {
    if (std::memcmp(magic, kMagic, sizeof kMagic) == 0) {
      return TraceFormat::kV1;
    }
    if (tracestore::is_v2_magic(magic, sizeof magic)) {
      return TraceFormat::kV2;
    }
  }
  throw std::runtime_error("trace: " + path +
                           " starts with neither SCTMTRC1 nor SCTMTRC2");
}

std::string to_text(const Trace& trace) {
  const auto cyc = [](Cycle c) {
    return c == kNoCycle ? std::string("none") : std::to_string(c);
  };
  std::ostringstream ss;
  ss << "# app=" << trace.app << " net=" << trace.capture_network
     << " nodes=" << trace.nodes << " runtime=" << cyc(trace.capture_runtime)
     << " records=" << trace.records.size() << '\n';
  for (const auto& r : trace.records) {
    ss << r.id << ' ' << r.src << "->" << r.dst << " bytes=" << r.size_bytes
       << " cls=" << noc::to_string(r.cls) << " t=" << cyc(r.inject_time)
       << ".." << cyc(r.arrive_time) << " deps=[";
    for (std::size_t i = 0; i < r.deps.size(); ++i) {
      if (i) ss << ',';
      ss << r.deps[i].parent << '+' << r.deps[i].slack;
    }
    ss << "]\n";
  }
  return ss.str();
}

}  // namespace sctm::trace
