#include "tracestore/catalog.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace sctm::tracestore {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("catalog: cannot read " + p.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const JsonValue& require(const JsonValue& doc, const char* key,
                         JsonValue::Kind kind) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr || v->kind != kind) {
    throw std::runtime_error(std::string("trace manifest: missing or "
                                         "mistyped field '") +
                             key + "'");
  }
  return *v;
}

std::uint64_t require_u64(const JsonValue& doc, const char* key) {
  const auto& v = require(doc, key, JsonValue::Kind::kNumber);
  if (v.number < 0) {
    throw std::runtime_error(std::string("trace manifest: negative '") + key +
                             "'");
  }
  return static_cast<std::uint64_t>(v.number);
}

}  // namespace

std::string CatalogEntry::manifest_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kManifestSchema);
  w.key("hash");
  w.value(hash);
  w.key("file");
  w.value(file);
  w.key("created");
  w.value(created);
  w.key("app");
  w.value(app);
  w.key("capture_network");
  w.value(capture_network);
  w.key("nodes");
  w.value(nodes);
  w.key("capture_runtime");
  w.value(std::uint64_t{capture_runtime});
  w.key("seed");
  w.value(seed);
  w.key("records");
  w.value(records);
  w.key("chunk_target");
  w.value(chunk_target);
  w.key("chunks");
  w.value(chunks);
  w.key("file_bytes");
  w.value(file_bytes);
  w.end_object();
  return std::move(w).str();
}

CatalogEntry parse_manifest(const std::string& json) {
  JsonValue doc;
  std::string err;
  if (!json_parse(json, &doc, &err)) {
    throw std::runtime_error("trace manifest: parse error: " + err);
  }
  if (!doc.is_object()) {
    throw std::runtime_error("trace manifest: document is not an object");
  }
  const auto& schema = require(doc, "schema", JsonValue::Kind::kString);
  if (schema.string != kManifestSchema) {
    throw std::runtime_error("trace manifest: unknown schema '" +
                             schema.string + "'");
  }
  CatalogEntry e;
  e.hash = require(doc, "hash", JsonValue::Kind::kString).string;
  if (!parse_hash_hex(e.hash, nullptr) || e.hash.size() != 16) {
    throw std::runtime_error("trace manifest: malformed hash '" + e.hash +
                             "'");
  }
  e.file = require(doc, "file", JsonValue::Kind::kString).string;
  e.created = require(doc, "created", JsonValue::Kind::kString).string;
  e.app = require(doc, "app", JsonValue::Kind::kString).string;
  e.capture_network =
      require(doc, "capture_network", JsonValue::Kind::kString).string;
  e.nodes = static_cast<std::int32_t>(
      require(doc, "nodes", JsonValue::Kind::kNumber).number);
  e.capture_runtime = require_u64(doc, "capture_runtime");
  e.seed = require_u64(doc, "seed");
  e.records = require_u64(doc, "records");
  e.chunk_target = static_cast<std::uint32_t>(require_u64(doc, "chunk_target"));
  e.chunks = require_u64(doc, "chunks");
  e.file_bytes = require_u64(doc, "file_bytes");
  return e;
}

TraceCatalog::TraceCatalog(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("catalog: cannot create directory " + dir_ +
                             ": " + ec.message());
  }
}

CatalogEntry TraceCatalog::add(const trace::Trace& t,
                               const std::string& created,
                               std::uint32_t chunk_records) {
  const std::string hex = hash_hex(content_hash(t));
  if (auto existing = find(hex)) return *existing;

  const fs::path container = fs::path(dir_) / (hex + ".trc2");
  const fs::path manifest = fs::path(dir_) / (hex + ".json");
  write_v2_file(t, container.string(), chunk_records);

  CatalogEntry e;
  e.hash = hex;
  e.file = hex + ".trc2";
  e.created = created;
  e.app = t.app;
  e.capture_network = t.capture_network;
  e.nodes = t.nodes;
  e.capture_runtime = t.capture_runtime;
  e.seed = t.seed;
  e.records = t.records.size();
  e.chunk_target = chunk_records == 0 ? 1 : chunk_records;
  e.chunks = e.records == 0 ? 0 : (e.records + e.chunk_target - 1) /
                                      e.chunk_target;
  std::error_code ec;
  e.file_bytes = fs::file_size(container, ec);

  std::ofstream out(manifest, std::ios::binary);
  if (!out) {
    throw std::runtime_error("catalog: cannot write " + manifest.string());
  }
  out << e.manifest_json() << '\n';
  if (!out) {
    throw std::runtime_error("catalog: write failed for " +
                             manifest.string());
  }
  return e;
}

std::vector<CatalogEntry> TraceCatalog::list() const {
  std::vector<CatalogEntry> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& p = it->path();
    if (p.extension() != ".json") continue;
    try {
      out.push_back(parse_manifest(slurp(p)));
    } catch (const std::exception&) {
      // Half-written or foreign .json: skip, the catalog stays usable.
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CatalogEntry& a, const CatalogEntry& b) {
              return a.hash < b.hash;
            });
  return out;
}

std::optional<CatalogEntry> TraceCatalog::find(
    const std::string& hash_prefix) const {
  std::string needle = hash_prefix;
  std::transform(needle.begin(), needle.end(), needle.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (!parse_hash_hex(needle, nullptr)) return std::nullopt;
  std::optional<CatalogEntry> found;
  for (auto& e : list()) {
    if (e.hash.rfind(needle, 0) != 0) continue;
    if (found) return std::nullopt;  // ambiguous prefix
    found = std::move(e);
  }
  return found;
}

std::string TraceCatalog::container_path(const CatalogEntry& e) const {
  const fs::path f(e.file);
  return f.is_absolute() ? f.string() : (fs::path(dir_) / f).string();
}

}  // namespace sctm::tracestore
