
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fullsys/test_app.cpp" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_app.cpp.o" "gcc" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_app.cpp.o.d"
  "/root/repo/tests/fullsys/test_cache.cpp" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_cache.cpp.o" "gcc" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_cache.cpp.o.d"
  "/root/repo/tests/fullsys/test_cmp_system.cpp" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_cmp_system.cpp.o" "gcc" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_cmp_system.cpp.o.d"
  "/root/repo/tests/fullsys/test_core_model.cpp" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_core_model.cpp.o" "gcc" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_core_model.cpp.o.d"
  "/root/repo/tests/fullsys/test_fullsys_params.cpp" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_fullsys_params.cpp.o" "gcc" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_fullsys_params.cpp.o.d"
  "/root/repo/tests/fullsys/test_l2bank.cpp" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_l2bank.cpp.o" "gcc" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_l2bank.cpp.o.d"
  "/root/repo/tests/fullsys/test_protocol_fuzz.cpp" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_protocol_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_fullsys.dir/fullsys/test_protocol_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sctm_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sctm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/fullsys/CMakeFiles/sctm_fullsys.dir/DependInfo.cmake"
  "/root/repo/build/src/onoc/CMakeFiles/sctm_onoc.dir/DependInfo.cmake"
  "/root/repo/build/src/enoc/CMakeFiles/sctm_enoc.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/sctm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sctm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
