// Trace capture: subscribes to a CmpSystem's injection and delivery
// observers and materializes a Trace.
#pragma once

#include <string>
#include <unordered_map>

#include "fullsys/cmp_system.hpp"
#include "trace/record.hpp"
#include "trace/trace_io.hpp"

namespace sctm::trace {

class TraceCapture {
 public:
  /// Attaches to `cmp` (installs both observers — do not install others).
  TraceCapture(fullsys::CmpSystem& cmp, std::string app_name,
               std::string network_desc, int nodes);

  /// Validates and returns the trace; call after the capture run finished.
  /// `capture_runtime` is the application runtime on the capture network.
  /// Throws std::logic_error when any message never arrived or dependencies
  /// are acausal. When `wall_seconds` is non-null it receives the host time
  /// spent validating/materializing the trace (the "finalize_trace" phase of
  /// the run-metrics document).
  Trace finalize(Cycle capture_runtime, double* wall_seconds = nullptr) &&;

  /// finalize(), then emit the trace to `path` — v2 goes through the
  /// streaming chunked TraceWriter (the capture-farm path: records flow
  /// into the container without a second serialized copy in memory). The
  /// validated trace is still returned for in-process use.
  Trace finalize_to_file(Cycle capture_runtime, const std::string& path,
                         TraceFormat format = TraceFormat::kV2,
                         double* wall_seconds = nullptr) &&;

  std::size_t captured() const { return trace_.records.size(); }

 private:
  Trace trace_;
  std::unordered_map<MsgId, std::size_t> index_;
};

}  // namespace sctm::trace
