# Empty dependencies file for trace_capture_replay.
# This may be replaced when dependencies are built.
