// Interface the CMP endpoints (cores, banks, memory controllers, barrier)
// use to send protocol messages, with causal annotation.
//
// `causes` lists the MsgIds of the arrivals at this node that gate the send
// (usually one: the message being answered; several for fan-in points like
// barrier release or invalidation-ack collection). The implementation
// (CmpSystem) turns causes into dependency records for trace capture: each
// dependency's slack is send_time - cause_arrival_time, i.e. the endpoint
// processing/compute time, which trace replay treats as fixed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "fullsys/protocol.hpp"

namespace sctm::fullsys {

class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Sends a protocol message now; returns its MsgId.
  virtual MsgId send(ProtoMsg type, NodeId src, NodeId dst, std::uint64_t line,
                     const std::vector<MsgId>& causes) = 0;

  /// Home bank of a line (modulo interleave).
  virtual NodeId home_of(std::uint64_t line) const = 0;

  /// Memory controller serving a line.
  virtual NodeId mc_for(std::uint64_t line) const = 0;
};

}  // namespace sctm::fullsys
