// Replay-side trace representation: a flat structure-of-arrays plus
// dependency CSRs, built either from an in-memory trace::Trace or streamed
// chunk-at-a-time out of a v2 container (src/tracestore).
//
// The replay engine used to walk trace.records directly, which forced the
// whole Trace — one heap-allocated deps vector per record — to live next to
// the engine's own per-record state. ReplayTrace replaces that with seven
// POD arrays and two CSRs (full dependencies, with parents pre-resolved to
// record indices; reverse children edges), so streamed ingestion decodes
// one chunk at a time into the flat arrays and the decoded chunk buffer is
// recycled: peak memory is the SoA plus a single chunk, independent of how
// the trace reached us.
//
// finalize() enforces the same invariants DependencyGraph does (and with
// the same exception types): parents must exist, precede their dependents
// in id order, and carry slacks consistent with the capture times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace sctm::tracestore {
class TraceReader;
}

namespace sctm::core {

class ReplayTrace {
 public:
  ReplayTrace() = default;

  /// One-shot construction from an in-memory trace (meta + every record +
  /// finalize()).
  explicit ReplayTrace(const trace::Trace& t);

  /// Streams every chunk of `reader` through append(); with `prefetch`, a
  /// background thread decodes the next chunk while this one is ingested.
  static ReplayTrace from_store(const tracestore::TraceReader& reader,
                                bool prefetch = true);

  // -- streaming builder --------------------------------------------------
  void set_meta(std::string app, std::string capture_network,
                std::int32_t nodes, Cycle capture_runtime,
                std::uint64_t seed);
  void reserve(std::uint64_t records);
  void append(const trace::TraceRecord& r);
  /// Validates and builds the dependency CSRs; append() is invalid after.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Canonical trace identity: identical to tracestore::content_hash() of
  /// the trace these records came from, folded incrementally as set_meta()
  /// and append() stream by (so the streaming path never materializes a
  /// trace::Trace just to hash it). Run manifests record it so a ranking is
  /// attributable to an exact trace, and it keys the tracestore catalog.
  std::uint64_t content_hash() const { return hash_state_; }

  // -- meta ---------------------------------------------------------------
  const std::string& app() const { return app_; }
  const std::string& capture_network() const { return capture_network_; }
  std::int32_t nodes() const { return nodes_; }
  Cycle capture_runtime() const { return capture_runtime_; }
  std::uint64_t seed() const { return seed_; }

  // -- per-record fields --------------------------------------------------
  std::uint32_t size() const { return static_cast<std::uint32_t>(id_.size()); }
  bool empty() const { return id_.empty(); }
  MsgId id(std::uint32_t i) const { return id_[i]; }
  NodeId src(std::uint32_t i) const { return src_[i]; }
  NodeId dst(std::uint32_t i) const { return dst_[i]; }
  std::uint32_t size_bytes(std::uint32_t i) const { return size_bytes_[i]; }
  noc::MsgClass cls(std::uint32_t i) const { return cls_[i]; }
  Cycle inject_time(std::uint32_t i) const { return inject_[i]; }
  Cycle arrive_time(std::uint32_t i) const { return arrive_[i]; }

  // -- full dependencies (CSR; parent_index parallels deps) ---------------
  std::uint32_t dep_count(std::uint32_t i) const {
    return dep_offset_[i + 1] - dep_offset_[i];
  }
  const trace::TraceDep* deps_begin(std::uint32_t i) const {
    return deps_.data() + dep_offset_[i];
  }
  const trace::TraceDep* deps_end(std::uint32_t i) const {
    return deps_.data() + dep_offset_[i + 1];
  }
  /// Record index of deps_begin(i)[k]'s parent (resolved in finalize()).
  std::uint32_t dep_parent_index(std::uint32_t i, std::uint32_t k) const {
    return dep_parent_idx_[dep_offset_[i] + k];
  }

  // -- reverse edges (who depends on record i) ----------------------------
  const std::uint32_t* children_begin(std::uint32_t i) const {
    return children_.data() + child_offset_[i];
  }
  const std::uint32_t* children_end(std::uint32_t i) const {
    return children_.data() + child_offset_[i + 1];
  }

 private:
  std::string app_;
  std::string capture_network_;
  std::int32_t nodes_ = 0;
  Cycle capture_runtime_ = 0;
  std::uint64_t seed_ = 0;

  std::vector<MsgId> id_;
  std::vector<NodeId> src_;
  std::vector<NodeId> dst_;
  std::vector<std::uint32_t> size_bytes_;
  std::vector<noc::MsgClass> cls_;
  std::vector<Cycle> inject_;
  std::vector<Cycle> arrive_;

  std::vector<std::uint32_t> dep_offset_;  // size()+1 after finalize
  std::vector<trace::TraceDep> deps_;
  std::vector<std::uint32_t> dep_parent_idx_;

  std::vector<std::uint32_t> child_offset_;  // size()+1 after finalize
  std::vector<std::uint32_t> children_;

  /// FNV-1a/64 state (offset basis before any update), advanced by
  /// set_meta()/append() through the tracestore canonical-hash helpers.
  std::uint64_t hash_state_ = 0xcbf29ce484222325ull;

  bool finalized_ = false;
};

}  // namespace sctm::core
