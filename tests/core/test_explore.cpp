#include "core/explore.hpp"

#include <gtest/gtest.h>

namespace sctm::core {
namespace {

trace::Trace capture_fft() {
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  NetSpec spec;
  spec.kind = NetKind::kEnoc;
  return run_execution(app, spec, {}).trace;
}

std::vector<Candidate> small_space() {
  std::vector<Candidate> out;
  for (const auto kind : {NetKind::kEnoc, NetKind::kOnocToken,
                          NetKind::kOnocSwmr}) {
    NetSpec s;
    s.kind = kind;
    out.push_back({to_string(kind), s});
  }
  NetSpec fat;
  fat.kind = NetKind::kOnocSwmr;
  fat.onoc.wavelengths = 64;
  out.push_back({"swmr-64", fat});
  return out;
}

TEST(Explore, EvaluatesEveryCandidate) {
  const auto trace = capture_fft();
  const auto results = explore(trace, small_space());
  EXPECT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_GT(r.runtime, 0u);
    EXPECT_GT(r.mean_latency, 0.0);
  }
}

TEST(Explore, SortedByRuntime) {
  const auto trace = capture_fft();
  const auto results = explore(trace, small_space());
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].runtime, results[i].runtime);
  }
}

TEST(Explore, ThreadCountInvariant) {
  // One worker with one long-lived session versus the full hardware pool
  // (threads=0 -> default_parallelism()): the partitioning of candidates
  // onto sessions — and therefore which results come from a pure reset
  // versus a rebind versus a fresh session — must not leak into any metric.
  const auto trace = capture_fft();
  const auto serial = explore(trace, small_space(), {}, 1);
  const auto parallel = explore(trace, small_space(), {}, 0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].runtime, parallel[i].runtime);
    EXPECT_DOUBLE_EQ(serial[i].mean_latency, parallel[i].mean_latency);
    EXPECT_EQ(serial[i].p99_latency, parallel[i].p99_latency);
    EXPECT_EQ(serial[i].iterations, parallel[i].iterations);
  }
}

TEST(Explore, EqualSpecCandidatesYieldIdenticalResults) {
  // Duplicated specs interleaved with a different one drive a single worker
  // session through both reuse paths: pure reset (equal spec follows equal
  // spec) and rebind (spec changes, then changes back). Every duplicate must
  // score exactly like the first evaluation of its spec.
  const auto trace = capture_fft();
  NetSpec enoc;
  enoc.kind = NetKind::kEnoc;
  NetSpec swmr;
  swmr.kind = NetKind::kOnocSwmr;
  const std::vector<Candidate> space = {
      {"enoc-a", enoc}, {"enoc-b", enoc}, {"swmr", swmr}, {"enoc-c", enoc}};
  const auto results = explore(trace, space, {}, 1);
  ASSERT_EQ(results.size(), 4u);
  const ExploreResult* first = nullptr;
  for (const auto& r : results) {
    if (r.name.rfind("enoc-", 0) != 0) continue;
    if (first == nullptr) {
      first = &r;
      continue;
    }
    EXPECT_EQ(r.runtime, first->runtime) << r.name;
    EXPECT_DOUBLE_EQ(r.mean_latency, first->mean_latency) << r.name;
    EXPECT_EQ(r.p99_latency, first->p99_latency) << r.name;
    EXPECT_EQ(r.iterations, first->iterations) << r.name;
  }
}

TEST(Explore, EmptySpaceIsAnError) {
  const auto trace = capture_fft();
  EXPECT_THROW(explore(trace, {}), std::invalid_argument);
}

TEST(Explore, MoreWavelengthsRankHigher) {
  const auto trace = capture_fft();
  std::vector<Candidate> space;
  for (const int l : {8, 64}) {
    NetSpec s;
    s.kind = NetKind::kOnocSwmr;
    s.onoc.wavelengths = l;
    space.push_back({"l" + std::to_string(l), s});
  }
  const auto results = explore(trace, space);
  EXPECT_EQ(results.front().name, "l64");
}

// -- candidate-config parsing (the CLI's error surface) ----------------------

TEST(ExploreConfigParse, ValidCandidatesAndScreenKey) {
  const auto cfg = Config::from_string(
      "explore.screen.top_k = 2\n"
      "candidate.base.net.kind = enoc\n"
      "candidate.wide.net.kind = onoc-token\n"
      "candidate.wide.onoc.wavelengths = 64\n");
  const auto cands = candidates_from_config(cfg, "cands.cfg");
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].name, "base");
  EXPECT_EQ(cands[1].name, "wide");
  EXPECT_EQ(cands[1].spec.onoc.wavelengths, 64);
  EXPECT_EQ(explore_config_from(cfg).screen_top_k, 2u);
}

TEST(ExploreConfigParse, EmptyDesignSpaceIsAnError) {
  try {
    candidates_from_config(Config::from_string("# only comments\n"),
                           "empty.cfg");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("empty.cfg"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("no candidate"), std::string::npos);
  }
}

TEST(ExploreConfigParse, MalformedKeysCarrySourceLine) {
  // Line 2 holds the malformed key; the message must point at it.
  try {
    candidates_from_config(
        Config::from_string("candidate.a.net.kind = enoc\ncandidate.b = 1\n"),
        "bad.cfg");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad.cfg:2"), std::string::npos);
  }
  // Unknown top-level namespaces are errors too, not silently ignored.
  EXPECT_THROW(candidates_from_config(
                   Config::from_string("candidates.a.net.kind = enoc\n"),
                   "typo.cfg"),
               std::runtime_error);
}

TEST(ExploreConfigParse, UnbuildableCandidateNamesItself) {
  try {
    candidates_from_config(
        Config::from_string("candidate.bad.net.kind = warp-drive\n"),
        "space.cfg");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("space.cfg:1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("candidate 'bad'"),
              std::string::npos);
  }
}

TEST(ExploreConfigParse, ZeroTopKIsAnError) {
  EXPECT_THROW(
      explore_config_from(Config::from_string("explore.screen.top_k = 0\n")),
      std::runtime_error);
  EXPECT_THROW(
      explore_config_from(Config::from_string("explore.screen.top_k = -3\n")),
      std::runtime_error);
  EXPECT_THROW(
      explore_config_from(Config::from_string("explore.screen.topk = 2\n")),
      std::runtime_error);
}

}  // namespace
}  // namespace sctm::core
