#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sctm {
namespace {

TEST(EventQueue, EmptyState) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kNoCycle);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, InterleavedPushPopKeepsStability) {
  EventQueue q;
  std::vector<int> order;
  q.push(1, [&] { order.push_back(0); });
  q.push(2, [&] { order.push_back(1); });
  q.pop().fn();
  q.push(2, [&] { order.push_back(2); });
  q.push(2, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, NextTimeTracksHead) {
  EventQueue q;
  q.push(7, [] {});
  q.push(3, [] {});
  EXPECT_EQ(q.next_time(), 3u);
  q.pop();
  EXPECT_EQ(q.next_time(), 7u);
}

TEST(EventQueue, ClearEmpties) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TotalPushedCounts) {
  EventQueue q;
  EXPECT_EQ(q.total_pushed(), 0u);
  q.push(1, [] {});
  q.push(1, [] {});
  q.pop();
  EXPECT_EQ(q.total_pushed(), 2u);
}

}  // namespace
}  // namespace sctm
