// Property suite for the table-driven routing layer (DESIGN.md §13).
//
// The up*/down* tables are checked against an *independent* reference: a
// BFS over the (node, phase) product graph built from this test's own
// level/order computation — not the table's internals — so a bug in the
// builder's dd/du recursion cannot hide. Note the reference is the shortest
// *legal* distance: on wrap-around fabrics the escape ordering can forbid
// every shortest graph path, so comparing against plain Dijkstra distance
// would be wrong (see LegalDistanceCanExceedGraphDistance).
#include "noc/route_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace sctm::noc {
namespace {

/// Random connected graph: a random spanning tree plus `extra` random
/// chords, rendered in the topology-file grammar.
Topology random_graph(std::uint64_t seed, int nodes, int extra) {
  Rng rng(seed);
  std::set<std::pair<int, int>> edges;
  for (int i = 1; i < nodes; ++i) {
    const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i)));
    edges.insert({std::min(i, j), std::max(i, j)});
  }
  for (int k = 0; k < extra; ++k) {
    const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes)));
    const int b = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes)));
    if (a != b) edges.insert({std::min(a, b), std::max(a, b)});
  }
  std::ostringstream text;
  text << "nodes " << nodes << "\n";
  for (const auto& [a, b] : edges) text << "edge " << a << " " << b << "\n";
  return Topology::from_text(text.str(), "random" + std::to_string(seed));
}

/// Independent legal-distance reference. Recomputes BFS levels from node 0
/// and the (level, id) total order, then BFSes the (node, committed) product
/// graph: free states may go up (stay free) or down (commit); committed
/// states only go down.
std::vector<int> legal_distances_from(const Topology& t, NodeId src) {
  const int n = t.node_count();
  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::deque<NodeId> q{0};
  level[0] = 0;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop_front();
    for (int p = 0; p < t.radix(u); ++p) {
      const NodeId v = t.neighbor(u, p);
      if (v != kInvalidNode && level[static_cast<std::size_t>(v)] < 0) {
        level[static_cast<std::size_t>(v)] =
            level[static_cast<std::size_t>(u)] + 1;
        q.push_back(v);
      }
    }
  }
  const auto up = [&](NodeId from, NodeId to) {
    const int lf = level[static_cast<std::size_t>(from)];
    const int lt = level[static_cast<std::size_t>(to)];
    return lt < lf || (lt == lf && to < from);
  };
  // Product BFS: state = node * 2 + committed.
  std::vector<int> dist(static_cast<std::size_t>(n) * 2, -1);
  std::deque<int> pq{static_cast<int>(src) * 2};
  dist[static_cast<std::size_t>(src) * 2] = 0;
  while (!pq.empty()) {
    const int s = pq.front();
    pq.pop_front();
    const NodeId u = static_cast<NodeId>(s / 2);
    const bool committed = (s % 2) != 0;
    for (int p = 0; p < t.radix(u); ++p) {
      const NodeId v = t.neighbor(u, p);
      if (v == kInvalidNode) continue;
      if (committed && up(u, v)) continue;  // down may never turn up
      const int ns = static_cast<int>(v) * 2 + (up(u, v) ? 0 : 1);
      if (dist[static_cast<std::size_t>(ns)] >= 0) continue;
      dist[static_cast<std::size_t>(ns)] = dist[static_cast<std::size_t>(s)] + 1;
      pq.push_back(ns);
    }
  }
  std::vector<int> best(static_cast<std::size_t>(n), -1);
  for (NodeId v = 0; v < n; ++v) {
    const int f = dist[static_cast<std::size_t>(v) * 2];
    const int c = dist[static_cast<std::size_t>(v) * 2 + 1];
    best[static_cast<std::size_t>(v)] =
        f < 0 ? c : (c < 0 ? f : std::min(f, c));
  }
  best[static_cast<std::size_t>(src)] = 0;
  return best;
}

TEST(RouteTable, RandomGraphsMatchIndependentLegalShortestPaths) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 977);
    const int nodes = 5 + static_cast<int>(rng.next_below(20));
    const int extra = nodes / 2 + static_cast<int>(rng.next_below(8));
    const auto t = random_graph(seed, nodes, extra);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + t.describe());
    const RoutingTable rt(t, RoutingAlgo::kTable);

    for (NodeId s = 0; s < t.node_count(); ++s) {
      const auto ref = legal_distances_from(t, s);
      for (NodeId d = 0; d < t.node_count(); ++d) {
        if (s == d) continue;
        // Every route terminates, at exactly the legal shortest length.
        int hops = 0;
        rt.walk(s, d, [&](NodeId, int) { ++hops; });
        EXPECT_EQ(hops, ref[static_cast<std::size_t>(d)])
            << s << " -> " << d;
        EXPECT_EQ(rt.valid_distance(s, d), ref[static_cast<std::size_t>(d)])
            << s << " -> " << d;
        EXPECT_GE(rt.valid_distance(s, d), t.distance(s, d));
      }
    }

    // Escape ordering: no route ever turns from a down edge onto an up
    // edge, and the whole channel-dependency graph is acyclic.
    const auto audit = audit_routes(rt);
    EXPECT_TRUE(audit.ok) << audit.error;
    EXPECT_TRUE(audit.cdg_acyclic);
    EXPECT_EQ(audit.routes_checked, t.node_count() * (t.node_count() - 1));
  }
}

TEST(RouteTable, LegalDistanceCanExceedGraphDistance) {
  // A 6-ring expressed as a file fabric: the up*/down* ordering forbids the
  // short arc between the two spanning-tree leaves, so 2 -> 4 is 4 legal
  // hops even though the graph distance is 2. (This is exactly why the
  // audit checks table routes against valid_distance, not distance.)
  const auto t = Topology::from_text(
      "nodes 6\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\nedge 5 0\n",
      "ring6");
  const RoutingTable rt(t, RoutingAlgo::kTable);
  EXPECT_EQ(t.distance(2, 4), 2);
  EXPECT_EQ(rt.valid_distance(2, 4), 4);
  int hops = 0;
  rt.walk(2, 4, [&](NodeId, int) { ++hops; });
  EXPECT_EQ(hops, 4);
  EXPECT_TRUE(audit_routes(rt).ok);
}

TEST(RouteTable, CoordinateAlgorithmsAuditCleanOnEveryKind) {
  const struct {
    Topology topo;
    RoutingAlgo algo;
  } cases[] = {
      {Topology::mesh(4, 4), RoutingAlgo::kXY},
      {Topology::mesh(4, 4), RoutingAlgo::kYX},
      {Topology::mesh(5, 5), RoutingAlgo::kOddEven},
      {Topology::torus(4, 4), RoutingAlgo::kTorusDor},
      {Topology::ring(8), RoutingAlgo::kRingShortest},
      {Topology::mesh3d(3, 3, 3), RoutingAlgo::kXyz},
      {Topology::torus3d(4, 4, 2), RoutingAlgo::kXyz},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.topo.describe() + " / " + to_string(c.algo));
    const RoutingTable rt(c.topo, c.algo);
    const auto audit = audit_routes(rt);
    EXPECT_TRUE(audit.ok) << audit.error;
    EXPECT_TRUE(audit.cdg_acyclic);
  }
}

TEST(RouteTable, DispatchesCoordinateAlgosToStatelessFunctions) {
  const auto t = Topology::mesh(4, 4);
  const RoutingTable rt(t, RoutingAlgo::kXY);
  for (NodeId s = 0; s < t.node_count(); ++s) {
    for (NodeId d = 0; d < t.node_count(); ++d) {
      const auto a = rt.route(s, s, d, -1);
      const auto b = route_ports(t, RoutingAlgo::kXY, s, s, d);
      ASSERT_EQ(a.size(), b.size());
      for (int i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.ports[static_cast<std::size_t>(i)],
                  b.ports[static_cast<std::size_t>(i)]);
      }
    }
  }
}

TEST(RouteTable, XyzRoutesDimensionOrderAndMinimal) {
  const auto t = Topology::mesh3d(4, 3, 2);
  const RoutingTable rt(t, RoutingAlgo::kXyz);
  for (NodeId s = 0; s < t.node_count(); ++s) {
    for (NodeId d = 0; d < t.node_count(); ++d) {
      if (s == d) continue;
      int hops = 0;
      int prev_axis = -1;
      rt.walk(s, d, [&](NodeId cur, int dir) {
        ++hops;
        const int axis = t.port_axis(cur, dir);
        EXPECT_GE(axis, prev_axis) << "XYZ must resolve x, then y, then z";
        prev_axis = axis;
      });
      EXPECT_EQ(hops, t.distance(s, d));
    }
  }
}

TEST(RouteTable, XyzOnTorus3DTakesTheShortWay) {
  const auto t = Topology::torus3d(4, 4, 4);
  const RoutingTable rt(t, RoutingAlgo::kXyz);
  for (NodeId s = 0; s < t.node_count(); ++s) {
    for (NodeId d = 0; d < t.node_count(); ++d) {
      if (s == d) continue;
      int hops = 0;
      rt.walk(s, d, [&](NodeId, int) { ++hops; });
      EXPECT_EQ(hops, t.distance(s, d));
    }
  }
}

TEST(RouteTable, RebuildRebindsInPlace) {
  RoutingTable rt(Topology::mesh(3, 3), RoutingAlgo::kXY);
  EXPECT_FALSE(rt.table_backed());
  rt.rebuild(Topology::from_text("nodes 3\nedge 0 1\nedge 1 2\n"),
             RoutingAlgo::kTable);
  EXPECT_TRUE(rt.table_backed());
  EXPECT_EQ(rt.valid_distance(0, 2), 2);
  EXPECT_TRUE(audit_routes(rt).ok);
  rt.rebuild(Topology::mesh3d(2, 2, 2), RoutingAlgo::kXyz);
  EXPECT_TRUE(audit_routes(rt).ok);
}

TEST(RouteTable, StatelessEntryPointRejectsTableAlgo) {
  const auto t = Topology::from_text("nodes 2\nedge 0 1\n");
  EXPECT_THROW((void)route_ports(t, RoutingAlgo::kTable, 0, 0, 1),
               std::logic_error);
  EXPECT_TRUE(compatible(t, RoutingAlgo::kTable));
  EXPECT_EQ(default_algo(t), RoutingAlgo::kTable);
  EXPECT_EQ(default_algo(Topology::mesh3d(2, 2, 2)), RoutingAlgo::kXyz);
  EXPECT_EQ(default_algo(Topology::torus3d(2, 2, 2)), RoutingAlgo::kXyz);
}

TEST(RouteTable, SelfRouteEmptyAndInvalidThrows) {
  const auto t = Topology::from_text("nodes 3\nedge 0 1\nedge 1 2\n");
  const RoutingTable rt(t, RoutingAlgo::kTable);
  EXPECT_TRUE(rt.route(1, 1, 1, -1).empty());
  EXPECT_THROW((void)rt.route(0, 0, 99, -1), std::logic_error);
}

}  // namespace
}  // namespace sctm::noc
