// Delta/varint codec for one chunk of trace records.
//
// Records inside a chunk are encoded relative to their predecessor
// (chunk-local state, so every chunk decodes standalone): ids and injection
// times are near-monotone per record.hpp, so their zigzagged deltas are
// 1-byte varints almost always; arrival is stored as latency relative to
// the record's own injection; dependency parents are stored as the (small,
// positive) distance below the record's own id. All deltas use wrapping
// u64 arithmetic, so the codec round-trips arbitrary field values exactly
// — including kNoCycle sentinels — it is merely *small* for well-formed
// traces.
//
// Per record:
//   vz(id - prev_id) vz(src) vz(dst) v(size_bytes) u8(cls) u8(proto)
//   vz(inject - prev_inject) vz(arrive - inject)
//   v(dep_count) { vz(id - parent) v(slack) } * dep_count
// where v = LEB128 varint, vz = varint of zigzag(delta).
#pragma once

#include <cstddef>
#include <vector>

#include "trace/record.hpp"

namespace sctm::tracestore {

/// Streaming chunk encoder; reset() starts a new chunk.
class ChunkEncoder {
 public:
  void reset() {
    buf_.clear();
    prev_id_ = 0;
    prev_inject_ = 0;
  }

  void add(const trace::TraceRecord& r);

  const std::vector<char>& bytes() const { return buf_; }

 private:
  std::vector<char> buf_;
  std::uint64_t prev_id_ = 0;
  std::uint64_t prev_inject_ = 0;
};

/// Decodes a chunk payload holding exactly `expect_count` records, appending
/// to `out` (which is NOT cleared — the streaming ingester decodes straight
/// into its working set). Throws std::runtime_error on any malformation:
/// truncated varint, overlong varint, dependency count exceeding the
/// remaining payload, or trailing bytes after the last record.
void decode_chunk(const char* data, std::size_t len,
                  std::uint32_t expect_count,
                  std::vector<trace::TraceRecord>& out);

}  // namespace sctm::tracestore
