// R-F1: accuracy of the trace models per application.
//
// Pipeline per app: capture on the electrical mesh; replay naively and
// self-correctingly on the optical NoC; compare both against execution-
// driven ground truth on that same ONOC. The paper's claim: SCTM achieves
// "high precision" where the frozen-timestamp trace does not.
#include "bench/bench_util.hpp"

#include "common/parallel.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  Table t("R-F1: trace-model error vs execution-driven truth "
          "(capture: enoc mesh -> target: onoc token crossbar)");
  t.set_header({"app", "truth runtime", "naive rt err", "sctm rt err",
                "naive lat err", "sctm lat err", "naive p99 err",
                "sctm p99 err"});

  // Apps are independent studies: evaluate them in parallel and emit rows
  // in app order afterwards (thread-count invariant results).
  const auto apps = standard_apps();
  struct Row {
    core::RunSummary truth;
    core::ErrorReport naive;
    core::ErrorReport sctm;
  };
  std::vector<Row> rows(apps.size());
  parallel_for(apps.size(), [&](std::size_t i) {
    const auto& app = apps[i];
    const auto capture = core::run_execution(app, enoc_spec(), {});
    const auto truth_run = core::run_execution(app, onoc_token_spec(), {});

    core::ReplayConfig naive_cfg;
    naive_cfg.mode = core::ReplayMode::kNaive;
    const auto naive =
        core::run_replay(capture.trace, onoc_token_spec(), naive_cfg);
    const auto sctm = core::run_replay(capture.trace, onoc_token_spec(), {});

    rows[i].truth = core::summarize(truth_run.trace);
    rows[i].naive = core::compare(
        rows[i].truth, core::summarize(capture.trace, naive.result));
    rows[i].sctm = core::compare(
        rows[i].truth, core::summarize(capture.trace, sctm.result));
  });

  double naive_rt_sum = 0, sctm_rt_sum = 0;
  double naive_lat_sum = 0, sctm_lat_sum = 0;
  int n = 0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& [truth, en, es] = rows[i];
    t.add_row({apps[i].name,
               Table::fmt(static_cast<std::uint64_t>(truth.runtime)),
               Table::pct(en.runtime_err), Table::pct(es.runtime_err),
               Table::pct(en.mean_latency_err), Table::pct(es.mean_latency_err),
               Table::pct(en.p99_latency_err), Table::pct(es.p99_latency_err)});
    naive_rt_sum += en.runtime_err;
    sctm_rt_sum += es.runtime_err;
    naive_lat_sum += en.mean_latency_err;
    sctm_lat_sum += es.mean_latency_err;
    ++n;
  }
  emit(t, "rf1_accuracy");
  std::printf("mean error: runtime naive %.1f%% / sctm %.1f%%; "
              "packet latency naive %.1f%% / sctm %.1f%%\n",
              100 * naive_rt_sum / n, 100 * sctm_rt_sum / n,
              100 * naive_lat_sum / n, 100 * sctm_lat_sum / n);
  std::puts("note: hotspot kernels (lu) expose the model's documented limit: "
            "endpoint-contention waits are frozen in the captured slacks "
            "(DESIGN.md sec. 4); self-correction still roughly halves the "
            "naive error there.");

  // Shape check: SCTM clearly more accurate on the packet-latency metric
  // (the quantity an NoC study reads off the simulator).
  const bool ok = sctm_lat_sum < 0.6 * naive_lat_sum;
  return verdict(ok, "R-F1 self-correction beats the naive trace on packet "
                     "latency accuracy");
}
