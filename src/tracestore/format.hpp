// On-disk primitives of the v2 trace container ("SCTMTRC2"): LEB128
// varints, zigzag mapping for signed deltas, CRC32 (IEEE 802.3, the zlib
// polynomial) for per-chunk integrity, and FNV-1a/64 for content addressing.
// All hand-rolled — the container must build with zero external
// dependencies, like every other subsystem in the repo.
//
// File layout (little-endian; varints only inside chunk payloads):
//
//   magic "SCTMTRC2" (8 bytes)
//   u32 flags (reserved, 0)
//   u32 chunk_target          max records per chunk
//   u32 app_len, app bytes
//   u32 net_len, net bytes
//   i32 nodes, u64 capture_runtime, u64 seed
//   u32 header_crc            CRC32 of every preceding byte
//   per chunk:
//     u32 crc32(payload), u32 payload_len, u32 record_count,
//     u64 first_record, u64 min_cycle, u64 max_cycle,
//     payload bytes           (delta/varint-encoded records, chunk_codec.hpp)
//   index:
//     u32 index_crc, u32 index_len,
//     per chunk: u64 file_offset, u32 payload_len, u32 record_count,
//                u64 first_record, u64 min_cycle, u64 max_cycle
//   footer (fixed 44 bytes at EOF):
//     u64 index_offset, u64 chunk_count, u64 record_count,
//     u64 content_hash, u32 footer_crc, trailer "SCTMEND2"
//
// Every byte of the file is covered by exactly one checksum (header_crc,
// a chunk crc, index_crc, or footer_crc — chunk headers are covered by
// being duplicated in the crc-protected index), so any one-byte corruption
// is detectable and attributable. See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <cstddef>
#include <array>
#include <string>
#include <vector>

namespace sctm::tracestore {

inline constexpr char kMagicV2[8] = {'S', 'C', 'T', 'M', 'T', 'R', 'C', '2'};
inline constexpr char kTrailerV2[8] = {'S', 'C', 'T', 'M', 'E', 'N', 'D', '2'};

/// Default records per chunk: big enough to amortize the 36-byte chunk
/// header and give the delta coder a long run, small enough that a
/// streaming reader holds ~100 KiB of decoded records at a time.
inline constexpr std::uint32_t kDefaultChunkRecords = 4096;

/// Serialized sizes (the reader seeks by these).
inline constexpr std::size_t kChunkHeaderBytes = 4 + 4 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kIndexEntryBytes = 8 + 4 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kFooterBytes = 8 + 8 + 8 + 8 + 4 + 8;

// ---------------------------------------------------------------------------
// Varint + zigzag

/// Appends `v` as an LEB128 varint (1..10 bytes).
inline void put_varint(std::vector<char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Maps a signed delta onto an unsigned varint-friendly value: 0,-1,1,-2 ->
/// 0,1,2,3. Deltas are computed with wrapping u64 subtraction, so the
/// round trip is exact for *any* pair of u64s (including kNoCycle).
inline std::uint64_t zigzag(std::int64_t n) {
  return (static_cast<std::uint64_t>(n) << 1) ^
         static_cast<std::uint64_t>(n >> 63);
}

inline std::int64_t unzigzag(std::uint64_t z) {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

/// Wrapping difference a - b reinterpreted as a signed delta.
inline std::int64_t wrap_delta(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::int64_t>(a - b);
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 / zlib polynomial, reflected, init/xorout 0xFFFFFFFF)

namespace detail {
consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}
inline constexpr auto kCrc32Table = make_crc32_table();
}  // namespace detail

/// Incremental CRC32; crc32("123456789") == 0xCBF43926.
class Crc32 {
 public:
  void update(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < len; ++i) {
      c = detail::kCrc32Table[(c ^ p[i]) & 0xff] ^ (c >> 8);
    }
    state_ = c;
  }
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

inline std::uint32_t crc32(const void* data, std::size_t len) {
  Crc32 c;
  c.update(data, len);
  return c.value();
}

// ---------------------------------------------------------------------------
// FNV-1a/64 (content addressing)

/// Incremental FNV-1a over 64 bits; fnv("") == 0xcbf29ce484222325.
class Fnv1a64 {
 public:
  Fnv1a64() = default;
  /// Resumes hashing from a previously exported value() — incremental
  /// hashers (core::ReplayTrace) carry the raw state between updates.
  explicit Fnv1a64(std::uint64_t state) : state_(state) {}

  void update(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
    state_ = h;
  }
  /// Hashes the little-endian bytes of a trivially-copyable scalar.
  template <typename T>
  void update_scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    update(&v, sizeof v);  // the repo targets little-endian hosts throughout
  }
  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;
};

/// 16-hex-digit lowercase rendering of a content hash (catalog file stems).
std::string hash_hex(std::uint64_t h);

/// Inverse of hash_hex; returns false unless `s` is 1..16 hex digits.
bool parse_hash_hex(const std::string& s, std::uint64_t* out);

}  // namespace sctm::tracestore
