file(REMOVE_RECURSE
  "libsctm_common.a"
)
