// R-E3 (extension): shared-channel-pool sizing (FlexiShare direction).
//
// Sweep the pooled channel count and report performance vs the static
// optical cost it buys (ring count / laser power scale with channels).
// Expected shape: diminishing returns — a small pool saturates the fabric's
// demand, so most of a full per-node channel set is wasted static power at
// these loads.
#include "bench/bench_util.hpp"

#include "onoc/loss.hpp"
#include "onoc/onoc_network.hpp"

namespace {

using namespace sctm;

Cycle run_app_on_pool(const fullsys::AppParams& app, int channels) {
  Simulator sim;
  onoc::OnocParams p;
  p.arbitration = onoc::Arbitration::kSharedPool;
  p.pool_channels = channels;
  const auto topo = noc::Topology::mesh(4, 4);
  onoc::OnocNetwork net(sim, "net", topo, p);
  fullsys::CmpSystem cmp(sim, "cmp", net, topo, {}, fullsys::build_app(app));
  return cmp.run_to_completion();
}

}  // namespace

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = 2;

  Table t("R-E3: shared channel pool sizing (fft, 16 cores)");
  t.set_header({"channels", "runtime", "slowdown vs 16ch",
                "rings (vs 16ch)", "laser mW (vs 16ch)"});

  const Cycle full = run_app_on_pool(app, 16);
  onoc::LossBudgetInputs ref;
  ref.channels_per_node = 1;  // pool channels are global, count them directly
  bool ok = true;
  double laser16 = 0;
  for (const int ch : {1, 2, 4, 8, 16}) {
    const Cycle rt = run_app_on_pool(app, ch);
    onoc::LossBudgetInputs in = ref;
    // Modulators: every node can write every pool channel.
    in.nodes = 16;
    in.channels_per_node = ch;
    const auto laser = onoc::compute_laser(in);
    // Laser scales with the per-channel comb count = ch (not nodes).
    const double laser_mw = units::dbm_to_mw(laser.per_wavelength_dbm) *
                            in.wavelengths * ch /
                            in.laser.wall_plug_efficiency;
    if (ch == 16) laser16 = laser_mw;
    t.add_row({Table::fmt(static_cast<std::int64_t>(ch)),
               Table::fmt(static_cast<std::uint64_t>(rt)),
               Table::fmt(static_cast<double>(rt) / static_cast<double>(full),
                          2) + "x",
               Table::fmt(laser.ring_count),
               Table::fmt(laser_mw, 1)});
    ok = ok && rt >= full;
  }
  // Diminishing returns: 8 channels should already be within 5% of 16.
  const Cycle eight = run_app_on_pool(app, 8);
  ok = ok &&
       static_cast<double>(eight) < 1.05 * static_cast<double>(full) &&
       laser16 > 0;
  emit(t, "re3_flexishare");
  return verdict(ok, "R-E3 pool sizing shows diminishing returns by 8 "
                     "channels");
}
