// Dependency-graph view over a trace: children lists, validation, and
// structural statistics. The replay engine uses the children lists to wake
// dependent records when a parent arrives; the validator enforces the
// invariants that make one-pass self-correcting replay exact.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/record.hpp"

namespace sctm::trace {

class DependencyGraph {
 public:
  /// Builds and validates. Throws std::invalid_argument when a dependency
  /// points to an unknown or non-earlier message (the graph must be a DAG
  /// ordered by capture id), or when a slack is inconsistent with capture
  /// times.
  explicit DependencyGraph(const Trace& trace);

  std::size_t size() const { return children_.size(); }

  /// Record indices (into trace.records) that depend on record `idx`.
  const std::vector<std::uint32_t>& children_of(std::uint32_t idx) const {
    return children_[idx];
  }

  /// Index of a record by message id; throws std::out_of_range when absent.
  std::uint32_t index_of(MsgId id) const;

  std::uint32_t dep_count(std::uint32_t idx) const { return dep_count_[idx]; }

  /// Records with no dependencies (the replay anchors).
  const std::vector<std::uint32_t>& roots() const { return roots_; }

  /// Longest dependency chain length (critical path, in records).
  std::size_t critical_path_length() const;

  /// Mean dependencies per record.
  double mean_deps() const;

 private:
  const Trace& trace_;
  std::unordered_map<MsgId, std::uint32_t> index_;
  std::vector<std::vector<std::uint32_t>> children_;
  std::vector<std::uint32_t> dep_count_;
  std::vector<std::uint32_t> roots_;
};

}  // namespace sctm::trace
