src/onoc/CMakeFiles/sctm_onoc.dir/devices.cpp.o: \
 /root/repo/src/onoc/devices.cpp /usr/include/stdc-predef.h \
 /root/repo/src/onoc/devices.hpp
