file(REMOVE_RECURSE
  "CMakeFiles/sctm_noc.dir/network.cpp.o"
  "CMakeFiles/sctm_noc.dir/network.cpp.o.d"
  "CMakeFiles/sctm_noc.dir/routing.cpp.o"
  "CMakeFiles/sctm_noc.dir/routing.cpp.o.d"
  "CMakeFiles/sctm_noc.dir/topology.cpp.o"
  "CMakeFiles/sctm_noc.dir/topology.cpp.o.d"
  "CMakeFiles/sctm_noc.dir/traffic.cpp.o"
  "CMakeFiles/sctm_noc.dir/traffic.cpp.o.d"
  "libsctm_noc.a"
  "libsctm_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctm_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
