#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sctm::trace {
namespace {

constexpr char kMagic[8] = {'S', 'C', 'T', 'M', 'T', 'R', 'C', '1'};

template <typename T>
void put(std::ostream& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("trace: truncated input");
  return v;
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& in) {
  const auto len = get<std::uint32_t>(in);
  if (len > (1u << 20)) throw std::runtime_error("trace: absurd string length");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw std::runtime_error("trace: truncated string");
  return s;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  put_string(out, trace.app);
  put_string(out, trace.capture_network);
  put<std::int32_t>(out, trace.nodes);
  put<std::uint64_t>(out, trace.capture_runtime);
  put<std::uint64_t>(out, trace.seed);
  put<std::uint64_t>(out, trace.records.size());
  for (const auto& r : trace.records) {
    put<std::uint64_t>(out, r.id);
    put<std::int32_t>(out, r.src);
    put<std::int32_t>(out, r.dst);
    put<std::uint32_t>(out, r.size_bytes);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(r.cls));
    put<std::uint8_t>(out, r.proto);
    put<std::uint64_t>(out, r.inject_time);
    put<std::uint64_t>(out, r.arrive_time);
    put<std::uint16_t>(out, static_cast<std::uint16_t>(r.deps.size()));
    for (const auto& d : r.deps) {
      put<std::uint64_t>(out, d.parent);
      put<std::uint64_t>(out, d.slack);
    }
  }
  if (!out) throw std::runtime_error("trace: write failed");
}

Trace read_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("trace: bad magic (not an SCTM trace?)");
  }
  Trace t;
  t.app = get_string(in);
  t.capture_network = get_string(in);
  t.nodes = get<std::int32_t>(in);
  t.capture_runtime = get<std::uint64_t>(in);
  t.seed = get<std::uint64_t>(in);
  const auto count = get<std::uint64_t>(in);
  t.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.id = get<std::uint64_t>(in);
    r.src = get<std::int32_t>(in);
    r.dst = get<std::int32_t>(in);
    r.size_bytes = get<std::uint32_t>(in);
    r.cls = static_cast<noc::MsgClass>(get<std::uint8_t>(in));
    r.proto = get<std::uint8_t>(in);
    r.inject_time = get<std::uint64_t>(in);
    r.arrive_time = get<std::uint64_t>(in);
    const auto deps = get<std::uint16_t>(in);
    r.deps.reserve(deps);
    for (int d = 0; d < deps; ++d) {
      TraceDep dep;
      dep.parent = get<std::uint64_t>(in);
      dep.slack = get<std::uint64_t>(in);
      r.deps.push_back(dep);
    }
    t.records.push_back(std::move(r));
  }
  return t;
}

void write_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  write_binary(trace, out);
}

Trace read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return read_binary(in);
}

std::string to_text(const Trace& trace) {
  std::ostringstream ss;
  ss << "# app=" << trace.app << " net=" << trace.capture_network
     << " nodes=" << trace.nodes << " runtime=" << trace.capture_runtime
     << " records=" << trace.records.size() << '\n';
  for (const auto& r : trace.records) {
    ss << r.id << ' ' << r.src << "->" << r.dst << " bytes=" << r.size_bytes
       << " cls=" << noc::to_string(r.cls) << " t=" << r.inject_time << ".."
       << r.arrive_time << " deps=[";
    for (std::size_t i = 0; i < r.deps.size(); ++i) {
      if (i) ss << ',';
      ss << r.deps[i].parent << '+' << r.deps[i].slack;
    }
    ss << "]\n";
  }
  return ss.str();
}

}  // namespace sctm::trace
