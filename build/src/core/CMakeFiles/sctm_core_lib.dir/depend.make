# Empty dependencies file for sctm_core_lib.
# This may be replaced when dependencies are built.
