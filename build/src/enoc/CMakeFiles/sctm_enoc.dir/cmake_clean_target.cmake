file(REMOVE_RECURSE
  "libsctm_enoc.a"
)
