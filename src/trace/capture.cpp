#include "trace/capture.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>

#include "tracestore/trace_store.hpp"

namespace sctm::trace {

TraceCapture::TraceCapture(fullsys::CmpSystem& cmp, std::string app_name,
                           std::string network_desc, int nodes) {
  trace_.app = std::move(app_name);
  trace_.capture_network = std::move(network_desc);
  trace_.nodes = nodes;

  cmp.set_inject_observer([this](const fullsys::InjectionEvent& ev) {
    TraceRecord r;
    r.id = ev.msg.id;
    r.src = ev.msg.src;
    r.dst = ev.msg.dst;
    r.size_bytes = ev.msg.size_bytes;
    r.cls = ev.msg.cls;
    r.proto = static_cast<std::uint8_t>(ev.proto);
    r.inject_time = ev.msg.inject_time;
    r.deps.reserve(ev.deps.size());
    for (const auto& d : ev.deps) r.deps.push_back({d.parent, d.slack});
    index_.emplace(r.id, trace_.records.size());
    trace_.records.push_back(std::move(r));
  });
  cmp.set_deliver_observer([this](const noc::Message& m) {
    const auto it = index_.find(m.id);
    if (it == index_.end()) {
      throw std::logic_error("TraceCapture: delivery of unrecorded message");
    }
    trace_.records[it->second].arrive_time = m.arrive_time;
  });
}

Trace TraceCapture::finalize(Cycle capture_runtime, double* wall_seconds) && {
  const auto t0 = std::chrono::steady_clock::now();
  trace_.capture_runtime = capture_runtime;
  for (const auto& r : trace_.records) {
    if (r.arrive_time == kNoCycle) {
      throw std::logic_error("TraceCapture: message " + std::to_string(r.id) +
                             " never arrived");
    }
    for (const auto& d : r.deps) {
      const auto it = index_.find(d.parent);
      if (it == index_.end()) {
        throw std::logic_error("TraceCapture: dependency on unknown message");
      }
      const TraceRecord& p = trace_.records[it->second];
      // Capture-time invariant: slack was computed as inject - arrival, so
      // every dependency reconstructs the injection time exactly.
      if (p.arrive_time + d.slack != r.inject_time) {
        throw std::logic_error(
            "TraceCapture: inconsistent dependency slack for message " +
            std::to_string(r.id));
      }
    }
  }
  if (wall_seconds) {
    *wall_seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  }
  return std::move(trace_);
}

Trace TraceCapture::finalize_to_file(Cycle capture_runtime,
                                     const std::string& path,
                                     TraceFormat format,
                                     double* wall_seconds) && {
  Trace t = std::move(*this).finalize(capture_runtime, wall_seconds);
  if (format == TraceFormat::kV1) {
    write_binary_file(t, path);
    return t;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  tracestore::TraceMeta meta;
  meta.app = t.app;
  meta.capture_network = t.capture_network;
  meta.nodes = t.nodes;
  meta.capture_runtime = t.capture_runtime;
  meta.seed = t.seed;
  tracestore::TraceWriter w(out, std::move(meta));
  for (const auto& r : t.records) w.append(r);
  w.finish();
  return t;
}

}  // namespace sctm::trace
