// Minimal task parallelism for experiment sweeps.
//
// Individual simulations are single-threaded and deterministic; sweeps over
// independent configurations (the bench harness, parameter studies) are
// embarrassingly parallel. parallel_for runs fn(i) for i in [0, n) over a
// worker pool with an atomic work counter; the first exception thrown by any
// task is rethrown on the caller after all workers join, and determinism is
// preserved as long as tasks only touch disjoint state (each task owns its
// own Simulator).
#pragma once

#include <cstddef>
#include <functional>

namespace sctm {

/// Number of workers parallel_for uses for `threads == 0` (hardware
/// concurrency, at least 1).
unsigned default_parallelism();

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace sctm
