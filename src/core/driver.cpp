#include "core/driver.hpp"

#include <chrono>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "trace/capture.hpp"
#include "trace/trace_io.hpp"
#include "tracestore/trace_store.hpp"

namespace sctm::core {
namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

}  // namespace

const char* to_string(NetKind k) {
  switch (k) {
    case NetKind::kIdeal: return "ideal";
    case NetKind::kEnoc: return "enoc";
    case NetKind::kOnocToken: return "onoc-token";
    case NetKind::kOnocSetup: return "onoc-setup";
    case NetKind::kOnocSwmr: return "onoc-swmr";
    case NetKind::kHybrid: return "hybrid";
  }
  return "?";
}

std::string NetSpec::describe() const {
  return std::string(to_string(kind)) + " " + topo.describe();
}

namespace {

NetworkFactory make_base_factory(const NetSpec& spec) {
  switch (spec.kind) {
    case NetKind::kIdeal:
      return [spec](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<noc::IdealNetwork>(sim, "net", spec.topo,
                                                   spec.ideal);
      };
    case NetKind::kEnoc:
      return [spec](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<enoc::EnocNetwork>(sim, "net", spec.topo,
                                                   spec.enoc);
      };
    case NetKind::kOnocToken: {
      NetSpec s = spec;
      s.onoc.arbitration = onoc::Arbitration::kTokenRing;
      return [s](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<onoc::OnocNetwork>(sim, "net", s.topo, s.onoc);
      };
    }
    case NetKind::kOnocSetup: {
      NetSpec s = spec;
      s.onoc.arbitration = onoc::Arbitration::kPathSetup;
      return [s](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<onoc::OnocNetwork>(sim, "net", s.topo, s.onoc);
      };
    }
    case NetKind::kOnocSwmr: {
      NetSpec s = spec;
      s.onoc.arbitration = onoc::Arbitration::kSwmr;
      return [s](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<onoc::OnocNetwork>(sim, "net", s.topo, s.onoc);
      };
    }
    case NetKind::kHybrid:
      return [spec](Simulator& sim) -> std::unique_ptr<noc::Network> {
        return std::make_unique<onoc::HybridNetwork>(sim, "net", spec.topo,
                                                     spec.hybrid);
      };
  }
  throw std::invalid_argument("make_factory: bad NetKind");
}

}  // namespace

NetworkFactory make_factory(const NetSpec& spec) {
  NetworkFactory build = make_base_factory(spec);
  // Inert fault specs wrap nothing: the factory — and everything it builds —
  // is exactly the pre-fault code path.
  if (!spec.fault.enabled()) return build;
  spec.fault.validate();
  const fault::FaultSpec fs = spec.fault;
  return [build = std::move(build), fs](Simulator& sim) {
    auto net = build(sim);
    net->install_fault_model(fs);
    return net;
  };
}

ExecutionRun run_execution(const fullsys::AppParams& app, const NetSpec& net,
                           const fullsys::FullSysParams& sys) {
  const auto t0 = std::chrono::steady_clock::now();
  Simulator sim;
  auto network = make_factory(net)(sim);
  fullsys::CmpSystem cmp(sim, "cmp", *network, net.topo, sys,
                         fullsys::build_app(app));
  trace::TraceCapture capture(cmp, app.name, net.describe(),
                              net.topo.node_count());
  ExecutionRun out;
  const double build_seconds = seconds_since(t0);
  out.runtime = cmp.run_to_completion();
  double finalize_seconds = 0;
  out.trace = std::move(capture).finalize(out.runtime, &finalize_seconds);
  out.trace.seed = app.seed;
  out.events = sim.events_executed();
  out.stats_report = sim.stats().report();
  out.stats = sim.stats();
  out.phases.push_back({"build", build_seconds, 0});
  out.phases.push_back({"execute", cmp.run_wall_seconds(), cmp.run_events()});
  out.phases.push_back({"finalize_trace", finalize_seconds, 0});
  out.wall_seconds = seconds_since(t0);
  return out;
}

ReplayRun run_replay(const trace::Trace& trace, const NetSpec& net,
                     const ReplayConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  ReplayRun out;
  out.result = replay(trace, make_factory(net), config);
  for (const auto& it : out.result.iteration_log) {
    out.phases.push_back(
        {"iter " + std::to_string(it.iter), it.wall_seconds, it.events});
  }
  out.wall_seconds = seconds_since(t0);
  return out;
}

ReplayRun run_replay(const ReplayTrace& rt, const NetSpec& net,
                     const ReplayConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  ReplayRun out;
  out.result = replay(rt, make_factory(net), config);
  for (const auto& it : out.result.iteration_log) {
    out.phases.push_back(
        {"iter " + std::to_string(it.iter), it.wall_seconds, it.events});
  }
  out.wall_seconds = seconds_since(t0);
  return out;
}

ReplayTrace load_replay_trace(const std::string& path) {
  if (trace::sniff_format(path) == trace::TraceFormat::kV2) {
    const tracestore::TraceReader reader =
        tracestore::TraceReader::open_file(path);
    return ReplayTrace::from_store(reader);
  }
  return ReplayTrace(trace::read_binary_file(path));
}

std::string trace_id(const trace::Trace& trace) {
  return trace.app + "@" + trace.capture_network +
         "/seed=" + std::to_string(trace.seed) +
         "/records=" + std::to_string(trace.records.size());
}

std::string trace_id(const ReplayTrace& rt) {
  return rt.app() + "@" + rt.capture_network() +
         "/seed=" + std::to_string(rt.seed()) +
         "/records=" + std::to_string(rt.size());
}

RunMetrics metrics_for_execution(const fullsys::AppParams& app,
                                 const NetSpec& net, const ExecutionRun& run,
                                 std::string tool, std::string created) {
  RunMetrics m;
  m.manifest.tool = std::move(tool);
  m.manifest.created = std::move(created);
  m.manifest.set("mode", "execution-driven");
  m.manifest.set("app", app.name);
  m.manifest.set("net", net.describe());
  m.manifest.set("cores", app.cores);
  m.manifest.set("lines_per_core", app.lines_per_core);
  m.manifest.set("iterations", app.iterations);
  m.manifest.set("seed", std::uint64_t{app.seed});
  // Fault regime echo (empty for inert specs, so fault-free documents are
  // byte-identical to pre-fault builds).
  for (const auto& [k, v] : net.fault.manifest_entries()) m.manifest.set(k, v);
  m.add_phases(run.phases);
  m.set_stats(run.stats);

  Histogram lat;
  for (const auto& r : run.trace.records) lat.add(r.latency());
  m.add_histogram("latency", lat);

  JsonWriter results;
  results.begin_object();
  results.key("runtime_cycles");
  results.value(std::uint64_t{run.runtime});
  results.key("messages");
  results.value(static_cast<std::uint64_t>(run.trace.records.size()));
  results.key("events");
  results.value(run.events);
  results.key("wall_seconds");
  results.value(run.wall_seconds);
  results.end_object();
  m.set_results_json(std::move(results).str());
  return m;
}

namespace {

RunMetrics replay_metrics_impl(std::string trace_ident, std::int32_t nodes,
                               const NetSpec& net, const ReplayConfig& config,
                               const ReplayRun& run, std::string tool,
                               std::string created) {
  RunMetrics m;
  m.manifest.tool = std::move(tool);
  m.manifest.created = std::move(created);
  m.manifest.set("mode", std::string("replay-") + to_string(config.mode));
  m.manifest.set("trace", std::move(trace_ident));
  m.manifest.set("net", net.describe());
  m.manifest.set("nodes", nodes);
  if (config.mode != ReplayMode::kNaive) {
    m.manifest.set("dependency_window",
                   std::uint64_t{config.dependency_window});
    m.manifest.set("max_iterations", config.max_iterations);
  }
  // Resolved tick-thread count (0 = hardware) — recorded for provenance even
  // though results are thread-count invariant by construction.
  m.manifest.set("tick_threads", std::uint64_t{resolve_threads(config.threads)});
  for (const auto& [k, v] : net.fault.manifest_entries()) m.manifest.set(k, v);
  m.add_phases(run.phases);
  m.set_stats(run.result.stats);
  m.add_histogram("latency", run.result.latency_histogram());

  JsonWriter results;
  results.begin_object();
  results.key("runtime_cycles");
  results.value(std::uint64_t{run.result.runtime});
  results.key("messages");
  results.value(static_cast<std::uint64_t>(run.result.inject_time.size()));
  results.key("events");
  results.value(run.result.events);
  results.key("iterations");
  results.value(run.result.iterations);
  results.key("residual");
  results.value(run.result.residual);
  results.key("wall_seconds");
  results.value(run.wall_seconds);
  results.key("iteration_log");
  results.begin_array();
  for (const auto& it : run.result.iteration_log) {
    results.begin_object();
    results.key("iter");
    results.value(it.iter);
    results.key("residual");
    results.value(it.residual);
    results.key("events");
    results.value(it.events);
    results.key("wall_seconds");
    results.value(it.wall_seconds);
    results.end_object();
  }
  results.end_array();
  results.end_object();
  m.set_results_json(std::move(results).str());
  return m;
}

}  // namespace

RunMetrics metrics_for_replay(const trace::Trace& trace, const NetSpec& net,
                              const ReplayConfig& config, const ReplayRun& run,
                              std::string tool, std::string created) {
  RunMetrics m = replay_metrics_impl(trace_id(trace), trace.nodes, net, config,
                                     run, std::move(tool), std::move(created));
  m.manifest.set("trace_content_hash",
                 tracestore::hash_hex(tracestore::content_hash(trace)));
  return m;
}

RunMetrics metrics_for_replay(const ReplayTrace& rt, const NetSpec& net,
                              const ReplayConfig& config, const ReplayRun& run,
                              std::string tool, std::string created) {
  RunMetrics m = replay_metrics_impl(trace_id(rt), rt.nodes(), net, config,
                                     run, std::move(tool), std::move(created));
  m.manifest.set("trace_content_hash", tracestore::hash_hex(rt.content_hash()));
  return m;
}

}  // namespace sctm::core
