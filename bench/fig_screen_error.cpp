// BENCH_analytic_screen — tier-0 estimator error and screening recall.
//
// For every standard workload, captures a trace on the ENoC baseline, then
// ranks a 10-candidate design space (all six network kinds plus parameter
// variants, including an ENoC over a 3D mesh of the same node count) twice:
// the ground truth with full self-correcting replay, and
// the tier-0 analytic screen. Reports, per candidate, estimated versus
// replayed runtime and the relative error; per network kind, the mean
// error; per workload, the top-3 recall of the screen.
//
// Gates (CI runs --smoke):
//   * top-3 recall >= 2/3 on every workload,
//   * analytic scoring >= 100x faster than one replay pass,
//   * per-kind mean relative runtime error under the recorded ceiling.
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analytic/model.hpp"
#include "analytic/trace_profile.hpp"
#include "bench/bench_util.hpp"
#include "core/explore.hpp"

namespace {

using namespace sctm;

struct Cand {
  core::Candidate c;
  const char* kind;  // manifest key slug
};

std::vector<Cand> design_space() {
  std::vector<Cand> out;
  const auto add = [&](const char* name, core::NetKind kind,
                       const char* slug) {
    core::NetSpec s;
    s.kind = kind;
    out.push_back({{name, s}, slug});
  };
  add("ideal", core::NetKind::kIdeal, "ideal");
  add("enoc-base", core::NetKind::kEnoc, "enoc");
  add("enoc-wide", core::NetKind::kEnoc, "enoc");
  out.back().c.spec.enoc.flit_bytes = 32;
  add("enoc-slow", core::NetKind::kEnoc, "enoc");
  out.back().c.spec.enoc.link_latency = 4;
  add("enoc-mesh3d", core::NetKind::kEnoc, "enoc-3d");
  // Same 16 nodes folded into a 4x2x2 lattice (the trace pins the node
  // count), XYZ-routed: the estimator must hold its ceiling on 3D kinds too.
  out.back().c.spec.topo = noc::Topology::mesh3d(4, 2, 2);
  out.back().c.spec.enoc.routing = noc::default_algo(out.back().c.spec.topo);
  add("onoc-token", core::NetKind::kOnocToken, "onoc-token");
  add("onoc-setup", core::NetKind::kOnocSetup, "onoc-setup");
  add("onoc-swmr", core::NetKind::kOnocSwmr, "onoc-swmr");
  add("onoc-swmr-64", core::NetKind::kOnocSwmr, "onoc-swmr");
  out.back().c.spec.onoc.wavelengths = 64;
  add("hybrid", core::NetKind::kHybrid, "hybrid");
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const auto apps = smoke ? bench::standard_apps(16, 8, 1)
                          : bench::standard_apps();
  const auto space = design_space();
  std::vector<core::Candidate> candidates;
  for (const auto& s : space) candidates.push_back(s.c);

  Table t("analytic_screen");
  t.set_header({"app", "candidate", "kind", "est_runtime", "replay_runtime",
                "rel_err", "analytic_us", "replay_ms"});

  std::map<std::string, std::pair<double, int>> kind_err;  // slug -> (sum, n)
  int min_recall = 3;
  double worst_speedup = 1e300;
  bool ok = true;

  for (const auto& app : apps) {
    const auto rt = core::ReplayTrace(
        core::run_execution(app, bench::enoc_spec(), {}).trace);

    // Ground truth: one full replay per candidate.
    const auto truth = core::explore(rt, candidates, {});
    std::map<std::string, const core::ExploreResult*> by_name;
    for (const auto& r : truth) by_name[r.name] = &r;

    // Tier 0: profile once, score every candidate. One untimed warmup pass
    // first so the timed pass measures steady-state scoring cost, not the
    // first-call instruction-cache misses.
    const analytic::TraceProfile profile = analytic::profile_trace(rt);
    for (const auto& s : space) analytic::estimate(profile, s.c.spec);
    double analytic_total = 0;
    double replay_total = 0;
    std::vector<std::pair<double, std::string>> est_rank;
    for (std::size_t i = 0; i < space.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto est = analytic::estimate(profile, space[i].c.spec);
      const double est_secs = seconds_since(t0);
      const auto& tr = *by_name.at(space[i].c.name);
      // Single-pass replay cost: the session's wall divided by its
      // self-correction iterations.
      const double replay_secs =
          tr.wall_seconds / std::max(1, tr.iterations);
      analytic_total += est_secs;
      replay_total += replay_secs;
      const double err =
          std::abs(est.est_runtime - static_cast<double>(tr.runtime)) /
          static_cast<double>(tr.runtime);
      auto& acc = kind_err[space[i].kind];
      acc.first += err;
      acc.second += 1;
      est_rank.push_back({est.est_runtime, space[i].c.name});
      t.add_row({app.name, space[i].c.name, space[i].kind,
                 Table::fmt(est.est_runtime, 0),
                 Table::fmt(std::uint64_t{tr.runtime}), Table::fmt(err, 3),
                 Table::fmt(est_secs * 1e6, 1),
                 Table::fmt(replay_secs * 1e3, 2)});
    }

    // Top-3 recall of the analytic ranking against replay truth.
    std::sort(est_rank.begin(), est_rank.end());
    std::set<std::string> top3;
    for (std::size_t i = 0; i < 3; ++i) top3.insert(est_rank[i].second);
    int hits = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      hits += top3.count(truth[i].name) ? 1 : 0;
    }
    min_recall = std::min(min_recall, hits);
    if (hits < 2) {
      std::printf("[FAIL] %s: top-3 recall %d/3\n", app.name.c_str(), hits);
      ok = false;
    }
    const double speedup =
        replay_total / std::max(analytic_total, 1e-12) ;
    worst_speedup = std::min(worst_speedup, speedup);
    std::printf("%s: top-3 recall %d/3, analytic %.1fx faster than one "
                "replay pass\n",
                app.name.c_str(), hits, speedup);
  }

  // Per-kind error ceiling: the M/G/1 treatment is coarse near saturation
  // (DESIGN.md §12); anything beyond this says the estimator regressed, not
  // that queueing theory got harder.
  const double kErrCeiling = 0.35;
  RunMetrics m = bench::bench_metrics(t, "BENCH_analytic_screen");
  for (const auto& [slug, acc] : kind_err) {
    const double err = acc.first / acc.second;
    m.manifest.set("mean_rel_err." + slug, Table::fmt(err, 4));
    std::printf("kind %s: mean relative runtime error %.3f\n", slug.c_str(),
                err);
    if (!(err < kErrCeiling)) {
      std::printf("[FAIL] kind %s error %.3f >= ceiling %.2f\n", slug.c_str(),
                  err, kErrCeiling);
      ok = false;
    }
  }
  m.manifest.set("min_top3_recall", static_cast<std::int64_t>(min_recall));
  m.manifest.set("worst_speedup", Table::fmt(worst_speedup, 1));
  m.manifest.set("err_ceiling", Table::fmt(kErrCeiling, 2));
  bench::emit(t, "BENCH_analytic_screen", m);

  if (worst_speedup < 100.0) {
    std::printf("[FAIL] analytic scoring only %.0fx faster than replay\n",
                worst_speedup);
    ok = false;
  }
  return bench::verdict(
      ok, "analytic screen: recall >= 2/3, speedup >= 100x, per-kind error "
          "under ceiling");
}
