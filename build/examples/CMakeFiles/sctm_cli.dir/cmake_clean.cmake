file(REMOVE_RECURSE
  "CMakeFiles/sctm_cli.dir/sctm_cli.cpp.o"
  "CMakeFiles/sctm_cli.dir/sctm_cli.cpp.o.d"
  "sctm_cli"
  "sctm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
