#include "enoc/enoc_network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace sctm::enoc {
namespace {

using noc::Message;
using noc::MsgClass;
using noc::Topology;

Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes,
                 MsgClass cls = MsgClass::kData) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = cls;
  return m;
}

EnocParams small_params() {
  EnocParams p;
  p.vnets = 2;
  p.vcs_per_vnet = 2;
  p.buffer_depth = 4;
  return p;
}

TEST(EnocNetwork, DeliversSingleMessage) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  EnocNetwork net(sim, "enoc", t, small_params());
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  net.inject(make_msg(1, 0, 15, 64));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 1u);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.injected_count(), 1u);
  EXPECT_EQ(net.delivered_count(), 1u);
}

TEST(EnocNetwork, LatencyRespectsLowerBound) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  const auto p = small_params();
  EnocNetwork net(sim, "enoc", t, p);
  Message got;
  net.set_deliver_callback([&](const Message& m) { got = m; });
  net.inject(make_msg(1, 0, 15, 64));
  sim.run();
  // 6 hops, >=3 cycles router pipeline + 1 cycle link each, plus
  // serialization of 5 flits and injection/ejection overheads.
  const int hops = t.distance(0, 15);
  const Cycle min_bound = static_cast<Cycle>(hops) * (3 + 1);
  EXPECT_GE(got.latency(), min_bound);
  EXPECT_LT(got.latency(), min_bound + 40);
}

TEST(EnocNetwork, ShortMessageIsSingleFlit) {
  const auto p = small_params();
  EXPECT_EQ(p.flits_for(8), 1u);    // 8+8 header = 16 = 1 flit
  EXPECT_EQ(p.flits_for(64), 5u);   // 72 bytes -> 5 flits
  EXPECT_EQ(p.flits_for(0), 1u);
}

TEST(EnocNetwork, SelfMessageDelivered) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  EnocNetwork net(sim, "enoc", t, small_params());
  int n = 0;
  net.set_deliver_callback([&](const Message&) { ++n; });
  net.inject(make_msg(1, 1, 1, 32));
  sim.run();
  EXPECT_EQ(n, 1);
}

TEST(EnocNetwork, ManyMessagesAllDelivered) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  EnocNetwork net(sim, "enoc", t, small_params());
  int delivered = 0;
  net.set_deliver_callback([&](const Message&) { ++delivered; });
  MsgId id = 1;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s != d) net.inject(make_msg(id++, s, d, 64));
    }
  }
  sim.run();
  EXPECT_EQ(delivered, 16 * 15);
  EXPECT_TRUE(net.idle());
}

TEST(EnocNetwork, MessagesArriveIntactAndAtRightNode) {
  Simulator sim;
  const auto t = Topology::mesh(3, 3);
  EnocNetwork net(sim, "enoc", t, small_params());
  std::map<MsgId, Message> got;
  net.set_deliver_callback([&](const Message& m) { got[m.id] = m; });
  net.inject(make_msg(10, 0, 8, 64, MsgClass::kData));
  net.inject(make_msg(11, 8, 0, 8, MsgClass::kRequest));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[10].dst, 8);
  EXPECT_EQ(got[10].size_bytes, 64u);
  EXPECT_EQ(got[10].cls, MsgClass::kData);
  EXPECT_EQ(got[11].dst, 0);
}

TEST(EnocNetwork, FifoOrderPerSrcDstPairSameClass) {
  Simulator sim;
  const auto t = Topology::mesh(4, 1);
  EnocNetwork net(sim, "enoc", t, small_params());
  std::vector<MsgId> order;
  net.set_deliver_callback([&](const Message& m) { order.push_back(m.id); });
  for (MsgId i = 1; i <= 8; ++i) net.inject(make_msg(i, 0, 3, 64));
  sim.run();
  ASSERT_EQ(order.size(), 8u);
  // Wormhole + deterministic XY on a line: same-pair packets cannot
  // reorder... but they CAN use different VCs. Only head-of-line delivery
  // order of the *first* packet is guaranteed; check monotone arrival of
  // ids is not required. Instead assert all ids present.
  std::vector<MsgId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (MsgId i = 1; i <= 8; ++i) EXPECT_EQ(sorted[i - 1], i);
}

TEST(EnocNetwork, TorusDeliversAcrossWrapLinks) {
  Simulator sim;
  const auto t = Topology::torus(4, 4);
  EnocParams p = small_params();
  p.routing = noc::RoutingAlgo::kTorusDor;
  EnocNetwork net(sim, "enoc", t, p);
  int delivered = 0;
  net.set_deliver_callback([&](const Message&) { ++delivered; });
  // 0 -> 3 goes through the x wrap link (1 hop).
  net.inject(make_msg(1, 0, 3, 64));
  // 0 -> 12 through the y wrap (1 hop).
  net.inject(make_msg(2, 0, 12, 64));
  sim.run();
  EXPECT_EQ(delivered, 2);
}

TEST(EnocNetwork, RingDeliversBothDirections) {
  Simulator sim;
  const auto t = Topology::ring(8);
  EnocParams p = small_params();
  p.routing = noc::RoutingAlgo::kRingShortest;
  EnocNetwork net(sim, "enoc", t, p);
  int delivered = 0;
  net.set_deliver_callback([&](const Message&) { ++delivered; });
  net.inject(make_msg(1, 0, 2, 64));
  net.inject(make_msg(2, 0, 6, 64));
  net.inject(make_msg(3, 7, 1, 64));  // crosses the wrap
  sim.run();
  EXPECT_EQ(delivered, 3);
}

TEST(EnocNetwork, IncompatibleRoutingThrows) {
  Simulator sim;
  const auto t = Topology::torus(4, 4);
  EnocParams p = small_params();
  p.routing = noc::RoutingAlgo::kXY;
  EXPECT_THROW(EnocNetwork(sim, "enoc", t, p), std::invalid_argument);
}

TEST(EnocNetwork, DatelineRequiresEvenVcs) {
  Simulator sim;
  const auto t = Topology::torus(2, 2);
  EnocParams p = small_params();
  p.routing = noc::RoutingAlgo::kTorusDor;
  p.vcs_per_vnet = 3;
  EXPECT_THROW(EnocNetwork(sim, "enoc", t, p), std::invalid_argument);
}

TEST(EnocNetwork, AdaptiveRoutingStillDeliversAll) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  EnocParams p = small_params();
  p.routing = noc::RoutingAlgo::kOddEven;
  p.adaptive = true;
  EnocNetwork net(sim, "enoc", t, p);
  int delivered = 0;
  net.set_deliver_callback([&](const Message&) { ++delivered; });
  MsgId id = 1;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s != d) net.inject(make_msg(id++, s, d, 64));
    }
  }
  sim.run();
  EXPECT_EQ(delivered, 240);
}

TEST(EnocNetwork, StatsCountersPopulated) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  EnocNetwork net(sim, "enoc", t, small_params());
  net.inject(make_msg(1, 0, 3, 64));
  sim.run();
  EXPECT_GT(sim.stats().counter_value("enoc.r0.buffer_writes"), 0u);
  EXPECT_GT(sim.stats().counter_value("enoc.r0.sa_grants"), 0u);
  EXPECT_GT(net.active_cycles(), 0u);
}

}  // namespace
}  // namespace sctm::enoc
