// Trace workflow example: capture a trace to disk, inspect it, reload it,
// and replay it on a different network — the decoupled workflow the
// full-system simulator supports (capture once on the slow execution-driven
// front end, then explore many network designs at trace speed).
//
// Build & run:  ./build/examples/trace_capture_replay [trace-file]
//                                                     [--stats-json <file>]
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>

#include "core/driver.hpp"
#include "trace/dependency_graph.hpp"
#include "trace/trace_io.hpp"

namespace {

std::string now_iso8601() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sctm;
  std::string path = "/tmp/sctm_example_trace.bin";
  std::string stats_json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_json = argv[++i];
    } else {
      path = argv[i];
    }
  }

  // --- capture ---
  fullsys::AppParams app;
  app.name = "sort";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = 2;
  core::NetSpec capture_net;
  capture_net.kind = core::NetKind::kEnoc;
  const auto exec = core::run_execution(app, capture_net, {});
  trace::write_binary_file(exec.trace, path);
  std::printf("captured %zu messages from '%s' -> %s\n",
              exec.trace.records.size(), app.name.c_str(), path.c_str());

  // --- inspect ---
  const auto loaded = trace::read_binary_file(path);
  const trace::DependencyGraph graph(loaded);
  std::printf("trace: app=%s capture-net='%s' nodes=%d runtime=%llu\n",
              loaded.app.c_str(), loaded.capture_network.c_str(), loaded.nodes,
              static_cast<unsigned long long>(loaded.capture_runtime));
  std::printf("dependency graph: %.2f deps/record, %zu roots, critical path "
              "%zu records\n",
              graph.mean_deps(), graph.roots().size(),
              graph.critical_path_length());

  // --- replay on three different targets ---
  for (const auto kind : {core::NetKind::kEnoc, core::NetKind::kOnocToken,
                          core::NetKind::kOnocSetup}) {
    core::NetSpec target;
    target.kind = kind;
    const auto rep = core::run_replay(loaded, target, {});
    std::printf("replay on %-10s : runtime %7llu cycles, mean latency %6.1f, "
                "%.4f s wall\n",
                core::to_string(kind),
                static_cast<unsigned long long>(rep.result.runtime),
                rep.result.latency_histogram().mean(), rep.wall_seconds);
  }

  // --- the self-correction fixed point ---
  // Replaying on the capture network reproduces every captured injection and
  // arrival bit-exactly.
  const auto back = core::run_replay(loaded, capture_net, {});
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    if (back.result.inject_time[i] != loaded.records[i].inject_time ||
        back.result.arrive_time[i] != loaded.records[i].arrive_time) {
      ++mismatches;
    }
  }
  std::printf("fixed-point check on the capture network: %zu/%zu records "
              "mismatch (expect 0)\n",
              mismatches, loaded.records.size());

  if (!stats_json.empty()) {
    auto m = core::metrics_for_replay(loaded, capture_net, {}, back,
                                      "trace_capture_replay", now_iso8601());
    m.manifest.set("trace_file", path);
    m.manifest.set("fixed_point_mismatches",
                   static_cast<std::uint64_t>(mismatches));
    m.write_file(stats_json);
    std::printf("run metrics json -> %s\n", stats_json.c_str());
  }
  return mismatches == 0 ? 0 : 1;
}
