
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fullsys/app.cpp" "src/fullsys/CMakeFiles/sctm_fullsys.dir/app.cpp.o" "gcc" "src/fullsys/CMakeFiles/sctm_fullsys.dir/app.cpp.o.d"
  "/root/repo/src/fullsys/barrier.cpp" "src/fullsys/CMakeFiles/sctm_fullsys.dir/barrier.cpp.o" "gcc" "src/fullsys/CMakeFiles/sctm_fullsys.dir/barrier.cpp.o.d"
  "/root/repo/src/fullsys/cache.cpp" "src/fullsys/CMakeFiles/sctm_fullsys.dir/cache.cpp.o" "gcc" "src/fullsys/CMakeFiles/sctm_fullsys.dir/cache.cpp.o.d"
  "/root/repo/src/fullsys/cmp_system.cpp" "src/fullsys/CMakeFiles/sctm_fullsys.dir/cmp_system.cpp.o" "gcc" "src/fullsys/CMakeFiles/sctm_fullsys.dir/cmp_system.cpp.o.d"
  "/root/repo/src/fullsys/core_model.cpp" "src/fullsys/CMakeFiles/sctm_fullsys.dir/core_model.cpp.o" "gcc" "src/fullsys/CMakeFiles/sctm_fullsys.dir/core_model.cpp.o.d"
  "/root/repo/src/fullsys/l2bank.cpp" "src/fullsys/CMakeFiles/sctm_fullsys.dir/l2bank.cpp.o" "gcc" "src/fullsys/CMakeFiles/sctm_fullsys.dir/l2bank.cpp.o.d"
  "/root/repo/src/fullsys/memctrl.cpp" "src/fullsys/CMakeFiles/sctm_fullsys.dir/memctrl.cpp.o" "gcc" "src/fullsys/CMakeFiles/sctm_fullsys.dir/memctrl.cpp.o.d"
  "/root/repo/src/fullsys/params.cpp" "src/fullsys/CMakeFiles/sctm_fullsys.dir/params.cpp.o" "gcc" "src/fullsys/CMakeFiles/sctm_fullsys.dir/params.cpp.o.d"
  "/root/repo/src/fullsys/protocol.cpp" "src/fullsys/CMakeFiles/sctm_fullsys.dir/protocol.cpp.o" "gcc" "src/fullsys/CMakeFiles/sctm_fullsys.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/sctm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sctm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
