#include "core/replay_session.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/parallel.hpp"

namespace sctm::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ReplaySession::ReplaySession(const ReplayTrace& rt,
                             const NetworkFactory& factory,
                             const ReplayConfig& config,
                             const KeptDepsCsr* kept)
    : rt_(rt),
      config_(config),
      naive_(config.mode == ReplayMode::kNaive) {
  if (!rt_.finalized()) {
    throw std::logic_error("replay: ReplayTrace not finalized");
  }
  if (kept != nullptr) {
    kept_ = kept;
  } else {
    own_csr_ = build_kept_deps(rt_, config_);
    kept_ = &own_csr_;
  }
  const std::uint32_t n = rt_.size();
  pending_.assign(n, 0);
  ready_.assign(n, 0);
  bound_.assign(n, 0);
  prev_inject_.assign(n, 0);
  result_.inject_time.reserve(n);
  result_.arrive_time.reserve(n);
  if (config_.threads != 1) {
    pool_ = std::make_unique<WorkerPool>(config_.threads);
    sim_.set_worker_pool(pool_.get());
  }
  bind_network(factory);
}

ReplaySession::ReplaySession(const ReplayTrace& rt, const NetSpec& spec,
                             const ReplayConfig& config,
                             const KeptDepsCsr* kept)
    : ReplaySession(rt, make_factory(spec), config, kept) {
  bound_spec_ = spec;
  has_spec_ = true;
}

ReplaySession::~ReplaySession() = default;

void ReplaySession::bind_network(const NetworkFactory& factory) {
  net_ = factory(sim_);
  if (!net_) throw std::logic_error("replay: factory returned null network");
  if (net_->node_count() != rt_.nodes()) {
    throw std::invalid_argument("replay: network size != trace nodes");
  }
  auto cb = [this](const noc::Message& msg) { on_deliver(msg); };
  static_assert(noc::Network::DeliverFn::fits_inline<decltype(cb)>(),
                "delivery callback must stay within the SBO budget");
  net_->set_deliver_callback(std::move(cb));
}

void ReplaySession::rebind(const NetworkFactory& factory) {
  // Destroy the old network before erasing the stat entries its components
  // hold references into, then rewind the kernel for the fresh build.
  net_.reset();
  sim_.stats().reset();
  sim_.reset();
  has_spec_ = false;
  last_rebind_in_place_ = false;
  bind_network(factory);
}

void ReplaySession::rebind(const NetSpec& spec) {
  if (has_spec_ && bound_spec_ == spec) {
    // Nothing changed; the next pass's reset protocol is all that's needed.
    last_rebind_in_place_ = true;
    return;
  }
  const bool same_shape =
      has_spec_ && bound_spec_.kind == spec.kind && bound_spec_.topo == spec.topo;
  if (same_shape && spec.kind == NetKind::kIdeal) {
    // Parameters are only read at inject time — patch and reset.
    sim_.reset();
    net_->reset();
    static_cast<noc::IdealNetwork&>(*net_).set_params(spec.ideal);
    last_rebind_in_place_ = true;
  } else if (same_shape && spec.kind == NetKind::kEnoc) {
    // Rebuild router datapaths in place; stat entries and delivery callback
    // survive. Kernel reset first — the tick event lives in its queue.
    sim_.reset();
    static_cast<enoc::EnocNetwork&>(*net_).reparameterize(spec.enoc);
    last_rebind_in_place_ = true;
  } else {
    // Kind/topology changes — and the ONoC/Hybrid backends, whose parameters
    // are baked into token rings and channel tables at construction — take
    // the full rebuild path.
    rebind(make_factory(spec));
  }
  bound_spec_ = spec;
  has_spec_ = true;
}

void ReplaySession::inject_record(std::uint32_t idx) {
  noc::Message m;
  m.id = rt_.id(idx);
  m.src = rt_.src(idx);
  m.dst = rt_.dst(idx);
  m.size_bytes = rt_.size_bytes(idx);
  m.cls = rt_.cls(idx);
  m.tag = idx;
  result_.inject_time[idx] = sim_.now();
  net_->inject(m);
}

// Same-cycle injections must enter the network in capture order (record ids
// increase with capture event order), or arbitration ties resolve
// differently and the fixed-point property breaks. Eligible records are
// therefore batched per cycle and flushed sorted; the flush event is created
// when a cycle first gains a record, and network deliveries at a cycle
// always precede it (link latencies are >= 1, so all deliveries for cycle t
// were enqueued before t began).
void ReplaySession::mark_eligible(std::uint32_t idx, Cycle t) {
  if (eligible_.add(t, idx)) {
    auto flush = [this, t] {
      eligible_.flush(t, [this](std::uint32_t i) { inject_record(i); });
    };
    static_assert(InlineFn::fits_inline<decltype(flush)>());
    sim_.schedule_late(t, std::move(flush));
  }
}

void ReplaySession::on_deliver(const noc::Message& msg) {
  const auto idx = static_cast<std::uint32_t>(msg.tag);
  result_.arrive_time[idx] = msg.arrive_time;
  if (naive_) return;
  const MsgId pid = rt_.id(idx);
  for (const std::uint32_t* cp = rt_.children_begin(idx);
       cp != rt_.children_end(idx); ++cp) {
    const std::uint32_t c = *cp;
    // Is this parent one of c's enforced deps? (kept sets are tiny)
    for (auto it = kept_->begin(c); it != kept_->end(c); ++it) {
      const auto& d = *it;
      if (d.parent != pid) continue;
      ready_[c] = std::max(ready_[c], msg.arrive_time + d.slack);
      if (--pending_[c] == 0) {
        const Cycle t = std::max({ready_[c], bound_[c], sim_.now()});
        mark_eligible(c, t);
      }
      break;
    }
  }
}

void ReplaySession::run_pass_prepared() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t n = rt_.size();

  // The whole point: reset, don't rebuild. Both calls retain capacity, so
  // after a warmup pass this entire function is allocation-free.
  sim_.reset();
  net_->reset();

  result_.inject_time.assign(n, kNoCycle);
  result_.arrive_time.assign(n, kNoCycle);
  for (std::uint32_t i = 0; i < n; ++i) {
    pending_[i] = kept_->count(i);
    ready_[i] = 0;
  }

  // Seed: everything without pending kept deps starts at its bound.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (pending_[i] == 0) mark_eligible(i, bound_[i]);
  }

  sim_.run();
  eligible_.equalize();  // next pass batches allocation-free in any slot

  for (std::uint32_t i = 0; i < n; ++i) {
    if (result_.arrive_time[i] == kNoCycle) {
      throw std::logic_error(
          "replay: record never delivered (dependency cycle or lost "
          "message), id=" + std::to_string(rt_.id(i)));
    }
  }
  result_.runtime =
      n == 0 ? 0
             : *std::max_element(result_.arrive_time.begin(),
                                 result_.arrive_time.end());
  result_.events = sim_.events_executed();
  pass_wall_ = seconds_since(t0);
}

const ReplayResult& ReplaySession::run_pass(const std::vector<Cycle>* baseline) {
  const std::uint32_t n = rt_.size();
  if (baseline != nullptr) {
    for (std::uint32_t i = 0; i < n; ++i) bound_[i] = (*baseline)[i];
  } else {
    // First pass: anchor dependency-less schedules at the captured times.
    for (std::uint32_t i = 0; i < n; ++i) {
      bound_[i] = kept_->count(i) == 0 ? rt_.inject_time(i) : 0;
    }
  }
  run_pass_prepared();
  result_.iterations = 1;
  result_.residual = 0.0;
  result_.iteration_log.clear();
  result_.iteration_log.push_back({1, 0.0, result_.events, pass_wall_});
  return result_;
}

const ReplayResult& ReplaySession::run() {
  const std::uint32_t n = rt_.size();
  std::uint32_t max_deps = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    max_deps = std::max(max_deps, rt_.dep_count(i));
  }
  const bool single_pass = naive_ || config_.dependency_window >= max_deps;

  for (std::uint32_t i = 0; i < n; ++i) {
    bound_[i] = kept_->count(i) == 0 ? rt_.inject_time(i) : 0;
  }
  run_pass_prepared();
  log_.clear();
  log_.push_back({1, 0.0, result_.events, pass_wall_});
  result_.iterations = 1;
  result_.residual = 0.0;
  std::uint64_t total_events = result_.events;

  if (!single_pass) {
    // Iterative self-correction for truncated windows: re-derive each
    // record's lower bound from its *full* dependency list evaluated against
    // the previous pass's arrival times, then replay again, until injection
    // times stop moving.
    for (int iter = 2; iter <= config_.max_iterations; ++iter) {
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t dc = rt_.dep_count(i);
        if (dc == 0) {
          bound_[i] = rt_.inject_time(i);  // anchors never move
          continue;
        }
        Cycle b = 0;
        const trace::TraceDep* deps = rt_.deps_begin(i);
        for (std::uint32_t k = 0; k < dc; ++k) {
          // Parents were resolved to record indices at finalize() — no id
          // lookup in the iteration hot loop.
          const std::uint32_t p = rt_.dep_parent_index(i, k);
          b = std::max(b, result_.arrive_time[p] + deps[k].slack);
        }
        bound_[i] = b;
      }
      prev_inject_.swap(result_.inject_time);
      run_pass_prepared();
      total_events += result_.events;

      double shift = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto a = result_.inject_time[i];
        const auto b = prev_inject_[i];
        shift += static_cast<double>(a > b ? a - b : b - a);
      }
      shift /= static_cast<double>(n);
      log_.push_back({iter, shift, result_.events, pass_wall_});
      result_.iterations = iter;
      result_.residual = shift;
      if (shift < config_.convergence_threshold) break;
    }
  }
  result_.events = total_events;
  result_.iteration_log = log_;
  snapshot_stats();
  return result_;
}

void ReplaySession::snapshot_stats() { result_.stats = sim_.stats(); }

ReplayResult ReplaySession::take_result() {
  ReplayResult out = std::move(result_);
  result_ = ReplayResult{};
  return out;
}

}  // namespace sctm::core
