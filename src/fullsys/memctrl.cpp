#include "fullsys/memctrl.hpp"

#include <stdexcept>

namespace sctm::fullsys {

MemCtrl::MemCtrl(Simulator& sim, std::string name, NodeId id,
                 const FullSysParams& params, Fabric& fabric)
    : Component(sim, std::move(name)),
      id_(id),
      params_(params),
      fabric_(fabric),
      stat_reads_(counter("reads")),
      stat_writes_(counter("writes")),
      stat_queue_wait_(accumulator("queue_wait")) {}

void MemCtrl::on_message(ProtoMsg type, NodeId src, std::uint64_t line,
                         MsgId msg_id) {
  const Cycle slot = next_slot_ > now() ? next_slot_ : now();
  next_slot_ = slot + params_.mem_gap;
  stat_queue_wait_.add(static_cast<double>(slot - now()));

  switch (type) {
    case ProtoMsg::kMemRead: {
      ++stat_reads_;
      const Cycle reply_at = slot + params_.mem_latency;
      sim().schedule_at(reply_at, [this, src, line, msg_id] {
        fabric_.send(ProtoMsg::kMemData, id_, src, line, {msg_id});
      });
      return;
    }
    case ProtoMsg::kMemWrite:
      ++stat_writes_;
      return;  // posted write, no reply
    default:
      throw std::logic_error(name() + ": unexpected message " +
                             std::string(to_string(type)));
  }
}

}  // namespace sctm::fullsys
