#include "noc/topology.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace sctm::noc {

Topology::Topology(Kind kind, int width, int height)
    : kind_(kind), width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Topology: non-positive dimension");
  }
}

Topology Topology::mesh(int width, int height) {
  return Topology(Kind::kMesh, width, height);
}

Topology Topology::torus(int width, int height) {
  return Topology(Kind::kTorus, width, height);
}

Topology Topology::ring(int nodes) {
  if (nodes < 2) throw std::invalid_argument("Topology: ring needs >= 2 nodes");
  return Topology(Kind::kRing, nodes, 1);
}

int Topology::radix() const { return kind_ == Kind::kRing ? 2 : 4; }

Coord Topology::coords(NodeId n) const {
  return Coord{static_cast<int>(n) % width_, static_cast<int>(n) / width_};
}

NodeId Topology::node_at(Coord c) const { return c.y * width_ + c.x; }

NodeId Topology::neighbor(NodeId n, int dir) const {
  if (!valid_node(n) || dir < 0 || dir >= radix()) return kInvalidNode;
  if (kind_ == Kind::kRing) {
    const int count = node_count();
    return dir == kRingCw ? (n + 1) % count : (n + count - 1) % count;
  }
  Coord c = coords(n);
  switch (dir) {
    case kEast: c.x += 1; break;
    case kWest: c.x -= 1; break;
    case kNorth: c.y -= 1; break;
    case kSouth: c.y += 1; break;
    default: return kInvalidNode;
  }
  if (kind_ == Kind::kTorus) {
    c.x = (c.x + width_) % width_;
    c.y = (c.y + height_) % height_;
  } else if (c.x < 0 || c.x >= width_ || c.y < 0 || c.y >= height_) {
    return kInvalidNode;
  }
  return node_at(c);
}

int Topology::opposite(int dir) {
  switch (dir) {
    case kEast: return kWest;
    case kWest: return kEast;
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    default: return -1;
  }
}

int Topology::distance(NodeId a, NodeId b) const {
  if (kind_ == Kind::kRing) {
    const int count = node_count();
    const int fwd = (static_cast<int>(b) - a + count) % count;
    return std::min(fwd, count - fwd);
  }
  const Coord ca = coords(a);
  const Coord cb = coords(b);
  int dx = std::abs(ca.x - cb.x);
  int dy = std::abs(ca.y - cb.y);
  if (kind_ == Kind::kTorus) {
    dx = std::min(dx, width_ - dx);
    dy = std::min(dy, height_ - dy);
  }
  return dx + dy;
}

double Topology::mean_distance() const {
  const int n = node_count();
  std::uint64_t total = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b) total += static_cast<std::uint64_t>(distance(a, b));
    }
  }
  const std::uint64_t pairs = static_cast<std::uint64_t>(n) * (n - 1);
  return pairs ? static_cast<double>(total) / static_cast<double>(pairs) : 0.0;
}

std::string Topology::describe() const {
  switch (kind_) {
    case Kind::kMesh:
      return "mesh " + std::to_string(width_) + "x" + std::to_string(height_);
    case Kind::kTorus:
      return "torus " + std::to_string(width_) + "x" + std::to_string(height_);
    case Kind::kRing:
      return "ring " + std::to_string(node_count());
  }
  return "?";
}

}  // namespace sctm::noc
