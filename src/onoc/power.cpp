#include "onoc/power.hpp"

#include "enoc/power.hpp"

namespace sctm::onoc {

double OnocEnergyBreakdown::watts(std::uint64_t cycles,
                                  double clock_ghz) const {
  if (cycles == 0) return 0.0;
  const double seconds = static_cast<double>(cycles) / (clock_ghz * 1e9);
  return total_pj() * 1e-12 / seconds;
}

LossBudgetInputs budget_inputs_for(const OnocNetwork& net) {
  const OnocParams& p = net.params();
  LossBudgetInputs in;
  in.nodes = net.node_count();
  in.wavelengths = p.wavelengths;
  in.channels_per_node = net.node_count() - 1;
  in.die_edge_cm = p.die_edge_cm;
  in.ring = p.ring;
  in.waveguide = p.waveguide;
  in.detector = p.detector;
  in.laser = p.laser;
  return in;
}

OnocEnergyBreakdown compute_onoc_energy(const OnocNetwork& net,
                                        std::uint64_t elapsed_cycles,
                                        const StatRegistry& stats) {
  const OnocParams& p = net.params();
  const LaserRequirement laser = compute_laser(budget_inputs_for(net));
  const double seconds =
      static_cast<double>(elapsed_cycles) / (p.clock_ghz * 1e9);

  OnocEnergyBreakdown out;
  out.laser_pj = laser.total_electrical_mw * 1e-3 * seconds * 1e12;
  out.tuning_pj = laser.ring_heating_mw * 1e-3 * seconds * 1e12;

  const double bits = static_cast<double>(net.data_bytes()) * 8.0;
  out.dynamic_pj = bits *
                   (p.ring.modulation_fj_per_bit + p.ring.detection_fj_per_bit) *
                   1e-3;  // fJ -> pJ

  if (const auto* ctrl = net.control_network()) {
    const auto e = enoc::compute_enoc_energy(
        stats, ctrl->name(), ctrl->node_count(), ctrl->active_cycles(), {});
    out.ctrl_pj = e.total_pj();
  }
  return out;
}

}  // namespace sctm::onoc
