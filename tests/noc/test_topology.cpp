#include "noc/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sctm::noc {
namespace {

TEST(Topology, MeshBasics) {
  const auto t = Topology::mesh(4, 3);
  EXPECT_EQ(t.node_count(), 12);
  EXPECT_EQ(t.radix(), 4);
  EXPECT_EQ(t.local_port(), 4);
  EXPECT_EQ(t.port_count(), 5);
}

TEST(Topology, CoordRoundTrip) {
  const auto t = Topology::mesh(5, 4);
  for (NodeId n = 0; n < t.node_count(); ++n) {
    EXPECT_EQ(t.node_at(t.coords(n)), n);
  }
}

TEST(Topology, MeshNeighborsAndEdges) {
  const auto t = Topology::mesh(3, 3);
  // Center node 4 at (1,1).
  EXPECT_EQ(t.neighbor(4, kEast), 5);
  EXPECT_EQ(t.neighbor(4, kWest), 3);
  EXPECT_EQ(t.neighbor(4, kNorth), 1);
  EXPECT_EQ(t.neighbor(4, kSouth), 7);
  // Corners have no neighbors off the edge.
  EXPECT_EQ(t.neighbor(0, kWest), kInvalidNode);
  EXPECT_EQ(t.neighbor(0, kNorth), kInvalidNode);
  EXPECT_EQ(t.neighbor(8, kEast), kInvalidNode);
  EXPECT_EQ(t.neighbor(8, kSouth), kInvalidNode);
}

TEST(Topology, TorusWraps) {
  const auto t = Topology::torus(3, 3);
  EXPECT_EQ(t.neighbor(2, kEast), 0);
  EXPECT_EQ(t.neighbor(0, kWest), 2);
  EXPECT_EQ(t.neighbor(0, kNorth), 6);
  EXPECT_EQ(t.neighbor(6, kSouth), 0);
}

TEST(Topology, RingNeighbors) {
  const auto t = Topology::ring(5);
  EXPECT_EQ(t.radix(), 2);
  EXPECT_EQ(t.neighbor(4, kRingCw), 0);
  EXPECT_EQ(t.neighbor(0, kRingCcw), 4);
}

TEST(Topology, OppositeDirections) {
  EXPECT_EQ(Topology::opposite(kEast), kWest);
  EXPECT_EQ(Topology::opposite(kWest), kEast);
  EXPECT_EQ(Topology::opposite(kNorth), kSouth);
  EXPECT_EQ(Topology::opposite(kSouth), kNorth);
}

TEST(Topology, MeshDistanceIsManhattan) {
  const auto t = Topology::mesh(4, 4);
  EXPECT_EQ(t.distance(0, 15), 6);
  EXPECT_EQ(t.distance(0, 3), 3);
  EXPECT_EQ(t.distance(5, 5), 0);
}

TEST(Topology, TorusDistanceUsesWrap) {
  const auto t = Topology::torus(4, 4);
  EXPECT_EQ(t.distance(0, 3), 1);   // wrap in x
  EXPECT_EQ(t.distance(0, 12), 1);  // wrap in y
  EXPECT_EQ(t.distance(0, 15), 2);
}

TEST(Topology, RingDistanceShortestWay) {
  const auto t = Topology::ring(6);
  EXPECT_EQ(t.distance(0, 3), 3);
  EXPECT_EQ(t.distance(0, 5), 1);
  EXPECT_EQ(t.distance(1, 4), 3);
}

TEST(Topology, MeanDistanceMatchesClosedFormForRing) {
  // Ring of n=4: distances from any node: 1,2,1 -> mean 4/3.
  const auto t = Topology::ring(4);
  EXPECT_NEAR(t.mean_distance(), 4.0 / 3.0, 1e-12);
}

TEST(Topology, InvalidArgumentsThrow) {
  EXPECT_THROW(Topology::mesh(0, 3), std::invalid_argument);
  EXPECT_THROW(Topology::ring(1), std::invalid_argument);
  EXPECT_THROW(Topology::mesh3d(0, 2, 2), std::invalid_argument);
  EXPECT_THROW(Topology::torus3d(2, 2, 0), std::invalid_argument);
}

TEST(Topology, DescribeMentionsShape) {
  EXPECT_NE(Topology::mesh(2, 2).describe().find("mesh"), std::string::npos);
  EXPECT_NE(Topology::torus(2, 2).describe().find("torus"), std::string::npos);
  EXPECT_NE(Topology::ring(4).describe().find("ring"), std::string::npos);
  EXPECT_NE(Topology::mesh3d(2, 2, 2).describe().find("mesh3d"),
            std::string::npos);
  EXPECT_NE(Topology::torus3d(2, 2, 2).describe().find("torus3d"),
            std::string::npos);
}

TEST(Topology, Mesh3DBasics) {
  const auto t = Topology::mesh3d(4, 3, 2);
  EXPECT_EQ(t.node_count(), 24);
  EXPECT_EQ(t.radix(), 6);
  EXPECT_EQ(t.local_port(), 6);
  EXPECT_EQ(t.port_count(), 7);
  for (NodeId n = 0; n < t.node_count(); ++n) {
    EXPECT_EQ(t.node_at(t.coords(n)), n);
  }
  // Node (1,1,0) = 5: z-neighbor one layer up is node 5 + 12.
  EXPECT_EQ(t.neighbor(5, kUp), 17);
  EXPECT_EQ(t.neighbor(5, kDown), kInvalidNode);  // z = 0 boundary
  EXPECT_EQ(t.neighbor(17, kDown), 5);
  EXPECT_EQ(t.neighbor(17, kUp), kInvalidNode);   // z = 1 boundary
  EXPECT_EQ(Topology::opposite(kUp), kDown);
  EXPECT_EQ(Topology::opposite(kDown), kUp);
}

TEST(Topology, Mesh3DDistanceIsManhattan) {
  const auto t = Topology::mesh3d(4, 4, 4);
  // (0,0,0) -> (3,3,3).
  EXPECT_EQ(t.distance(0, t.node_count() - 1), 9);
  EXPECT_EQ(t.distance(0, 16), 1);  // one layer up
}

TEST(Topology, Torus3DWrapsInAllDimensions) {
  const auto t = Topology::torus3d(3, 3, 3);
  EXPECT_EQ(t.neighbor(0, kWest), 2);
  EXPECT_EQ(t.neighbor(0, kNorth), 6);
  EXPECT_EQ(t.neighbor(0, kDown), 18);  // z wraps 0 -> 2
  EXPECT_EQ(t.neighbor(18, kUp), 0);
  EXPECT_EQ(t.distance(0, 18), 1);
  EXPECT_TRUE(t.has_wrap_links());
  EXPECT_FALSE(Topology::mesh3d(3, 3, 3).has_wrap_links());
}

TEST(Topology, WrapLinkFlagsMarkTheSeam) {
  const auto t = Topology::torus3d(3, 3, 2);
  EXPECT_TRUE(t.wrap_link(2, kEast));    // x = 2 -> 0 crosses the seam
  EXPECT_FALSE(t.wrap_link(1, kEast));
  EXPECT_TRUE(t.wrap_link(0, kWest));
  // depth 2: both z hops cross the (single) seam in one direction pair.
  const auto m = Topology::mesh3d(3, 3, 2);
  for (NodeId n = 0; n < m.node_count(); ++n) {
    for (int d = 0; d < m.radix(); ++d) EXPECT_FALSE(m.wrap_link(n, d));
  }
}

TEST(Topology, ArrivalPortIsOppositeOnLattices) {
  for (const auto& t : {Topology::mesh(3, 4), Topology::torus(3, 3),
                        Topology::mesh3d(2, 3, 2), Topology::torus3d(2, 2, 2)}) {
    for (NodeId n = 0; n < t.node_count(); ++n) {
      for (int d = 0; d < t.radix(); ++d) {
        if (t.neighbor(n, d) == kInvalidNode) continue;
        EXPECT_EQ(t.arrival_port(n, d), Topology::opposite(d));
      }
    }
  }
  // Ring: leaving clockwise arrives on the counter-clockwise port.
  const auto r = Topology::ring(5);
  EXPECT_EQ(r.arrival_port(0, kRingCw), kRingCcw);
  EXPECT_EQ(r.arrival_port(0, kRingCcw), kRingCw);
}

TEST(Topology, PortAxes) {
  const auto t = Topology::mesh3d(2, 2, 2);
  EXPECT_EQ(t.port_axis(0, kEast), 0);
  EXPECT_EQ(t.port_axis(7, kWest), 0);
  EXPECT_EQ(t.port_axis(0, kSouth), 1);
  EXPECT_EQ(t.port_axis(0, kUp), 2);
  const auto r = Topology::ring(4);
  EXPECT_EQ(r.port_axis(0, kRingCw), 0);
  EXPECT_EQ(r.port_axis(0, kRingCcw), 0);
}

// Closed-form mean distances (over ordered src != dst pairs): per-dimension
// mean absolute difference is (k^2-1)/(3k) on a line and
// floor(k^2/4)/k on a cycle; the BFS-based mean_distance() must agree.
double line_term(int k) {
  const double kk = k;
  return (kk * kk - 1.0) / (3.0 * kk);
}
double cycle_term(int k) {
  return static_cast<double>((k * k) / 4) / static_cast<double>(k);
}
double pairs_mean(double sum_all_ordered, int n) {
  // sum over ordered pairs incl. self (self adds 0) -> mean over src != dst.
  return sum_all_ordered * n / (static_cast<double>(n) * (n - 1.0));
}

TEST(Topology, MeanDistanceMatchesClosedForm) {
  {
    const auto t = Topology::mesh(4, 3);
    const int n = t.node_count();
    EXPECT_NEAR(t.mean_distance(),
                pairs_mean((line_term(4) + line_term(3)) * n, n), 1e-9);
  }
  {
    const auto t = Topology::torus(4, 4);
    const int n = t.node_count();
    EXPECT_NEAR(t.mean_distance(),
                pairs_mean((cycle_term(4) + cycle_term(4)) * n, n), 1e-9);
  }
  {
    const auto t = Topology::torus(5, 3);
    const int n = t.node_count();
    EXPECT_NEAR(t.mean_distance(),
                pairs_mean((cycle_term(5) + cycle_term(3)) * n, n), 1e-9);
  }
  {
    const auto t = Topology::ring(7);
    EXPECT_NEAR(t.mean_distance(), pairs_mean(cycle_term(7) * 7, 7), 1e-9);
  }
  {
    const auto t = Topology::mesh3d(3, 2, 4);
    const int n = t.node_count();
    EXPECT_NEAR(
        t.mean_distance(),
        pairs_mean((line_term(3) + line_term(2) + line_term(4)) * n, n), 1e-9);
  }
}

TEST(Topology, DiameterAndLinkCount) {
  EXPECT_EQ(Topology::mesh(4, 4).diameter(), 6);
  EXPECT_EQ(Topology::torus(4, 4).diameter(), 4);
  EXPECT_EQ(Topology::ring(8).diameter(), 4);
  EXPECT_EQ(Topology::mesh3d(4, 4, 2).diameter(), 7);
  // mesh 4x4: 2 * 4 * 3 = 24 edges -> 48 directed links.
  EXPECT_EQ(Topology::mesh(4, 4).link_count(), 48);
  EXPECT_EQ(Topology::ring(6).link_count(), 12);
}

// ---------------------------------------------------------------------------
// File-defined fabrics.

constexpr const char* kDiamond =
    "# 4-node diamond with a chord\n"
    "nodes 4\n"
    "edge 0 1\n"
    "edge 0 2\n"
    "edge 1 3\n"
    "edge 2 3\n"
    "edge 1 2\n"
    "coord 0 0 0\n"
    "coord 1 1 0\n"
    "coord 2 0 1\n"
    "coord 3 1 1\n";

TEST(Topology, FromTextBuildsAdjacency) {
  const auto t = Topology::from_text(kDiamond, "diamond");
  EXPECT_EQ(t.kind(), Topology::Kind::kFile);
  EXPECT_EQ(t.node_count(), 4);
  EXPECT_EQ(t.link_count(), 10);  // 5 undirected edges
  EXPECT_EQ(t.radix(), 3);        // max degree (nodes 1 and 2)
  EXPECT_EQ(t.radix(1), 3);
  EXPECT_EQ(t.radix(0), 2);
  // Ports follow edge declaration order: node 0's port 0 is the 0-1 edge.
  EXPECT_EQ(t.neighbor(0, 0), 1);
  EXPECT_EQ(t.neighbor(0, 1), 2);
  EXPECT_EQ(t.neighbor(0, 2), kInvalidNode);  // hole past the degree
  // Symmetric arrival ports: the 0-1 edge is node 1's port 0 too.
  EXPECT_EQ(t.arrival_port(0, 0), 0);
  EXPECT_EQ(t.neighbor(1, t.arrival_port(0, 0)), 0);
  EXPECT_FALSE(t.has_wrap_links());
  EXPECT_EQ(t.distance(0, 3), 2);
  EXPECT_EQ(t.coords(3), (Coord{1, 1, 0}));
  EXPECT_EQ(t.node_at({1, 0, 0}), 1);
}

TEST(Topology, FromTextDefaultCoordsAndEquality) {
  const auto a = Topology::from_text("nodes 3\nedge 0 1\nedge 1 2\n");
  EXPECT_EQ(a.coords(2).x, 2);  // default placement: x = node id
  const auto b = Topology::from_text("nodes 3\nedge 0 1\nedge 1 2\n");
  EXPECT_EQ(a, b);  // structural equality
  const auto c = Topology::from_text("nodes 3\nedge 1 2\nedge 0 1\n");
  EXPECT_FALSE(a == c);  // different port order is a different fabric
  EXPECT_FALSE(a == Topology::mesh(3, 1));
}

TEST(Topology, FromTextErrorsAreLineAnchored) {
  const auto expect_error = [](const char* text, const char* needle) {
    try {
      (void)Topology::from_text(text, "bad.topo");
      ADD_FAILURE() << "no throw for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("nodes 2\nfrobnicate 1\n", "bad.topo:2");
  expect_error("nodes 2\nfrobnicate 1\n", "known: nodes, edge, coord");
  expect_error("edge 0 1\n", "bad.topo:1");            // edge before nodes
  expect_error("nodes 2\nedge 0 2\n", "bad.topo:2");   // node out of range
  expect_error("nodes 2\nedge 0 0\n", "bad.topo:2");   // self edge
  expect_error("nodes 2\nedge 0 1\nedge 1 0\n", "bad.topo:3");  // duplicate
  expect_error("nodes 3\nedge 0 1\n", "");             // disconnected
  expect_error("nodes 2\n", "");                       // no edges at all
  expect_error("nodes 0\n", "bad.topo:1");
}

TEST(Topology, FromFileMissingPathThrows) {
  EXPECT_THROW(Topology::from_file("/nonexistent/fabric.topo"),
               std::runtime_error);
}

}  // namespace
}  // namespace sctm::noc
