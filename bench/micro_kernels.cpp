// Microbenchmarks (google-benchmark) for the simulator's hot kernels:
// event queue, RNG, cache lookups, router cycle under load, ONOC token
// arbitration, and end-to-end replay cost per message. These guard the
// performance that makes trace replay worthwhile in the first place.
//
// In addition to the google-benchmark suite, main() first runs two
// controlled before/after comparisons and writes machine-readable results
// under bench_results/ so future PRs can track the perf trajectory:
//
//  * event kernel (BENCH_micro_kernels.json): the banded calendar queue with
//    InlineFn callables against the seed implementation (std::function
//    closures in a single std::priority_queue), on a uniform and a
//    same-cycle-heavy (bursty) schedule. Bar: >= 1.5x on the bursty one.
//  * data plane (BENCH_data_plane.json): the quiescence-aware activity
//    scoreboard (tick only routers holding flits) against the seed policy of
//    ticking every router every cycle, on a sparse low-load workload and at
//    saturation. The workloads are deterministic pre-computed injection
//    schedules — not the open-loop TrafficGenerator, whose per-node-per-
//    cycle generator events would mask the network-advance cost being
//    measured. Bars: >= 2.0x sparse, >= 0.95x saturated; both modes must
//    also produce identical activity hashes (bit-exact datapath).
//
// The binary exits non-zero if any bar fails. Pass --smoke to run only the
// two comparisons (reduced reps, same bars) and skip the google-benchmark
// suite — the Release CI job uses this as a perf regression gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/driver.hpp"
#include "enoc/enoc_network.hpp"
#include "fullsys/cache.hpp"
#include "noc/traffic.hpp"
#include "onoc/token.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace sctm;

// ---------------------------------------------------------------------------
// Event-kernel before/after harness
// ---------------------------------------------------------------------------

/// The seed event queue, verbatim: heap-allocating std::function closures in
/// one (time, band, seq)-keyed std::priority_queue. Kept here as the
/// reference point the banded calendar queue is measured against.
class LegacyEventQueue {
 public:
  using Fn = std::function<void()>;
  enum Band : int { kNormal = 0, kLate = 1 };

  std::uint64_t push(Cycle t, Fn fn, Band band = kNormal) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{t, band, seq, std::move(fn)});
    return seq;
  }
  bool empty() const { return heap_.empty(); }
  Cycle next_time() const { return heap_.empty() ? kNoCycle : heap_.top().time; }
  struct Popped {
    Cycle time;
    Fn fn;
  };
  Popped pop() {
    Entry& top = const_cast<Entry&>(heap_.top());
    Popped out{top.time, std::move(top.fn)};
    heap_.pop();
    return out;
  }

 private:
  struct Entry {
    Cycle time;
    int band;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.band != b.band) return a.band > b.band;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Message-sized payload: the shape the networks capture on every delivery
/// event ([this, noc::Message] = 56 bytes with the queue's SBO budget; the
/// same closure forces a heap allocation under std::function).
struct Payload {
  std::uint64_t a = 1, b = 2, c = 3, d = 4, e = 5;
  std::uint32_t f = 6, g = 7;
};

struct KernelWorkload {
  const char* name;
  int cycles;
  int events_per_cycle;
  Cycle horizon;  // 0: all events land on the current cycle (bursty);
                  // else: uniform in [1, horizon] ahead
};

constexpr KernelWorkload kWorkloads[] = {
    // The replay/router pattern the tentpole optimizes for: bursts of
    // same-cycle work (schedule_in(0)) plus short hops.
    {"bursty_same_cycle", 8000, 48, 0},
    // Uniformly spread near/far mixture crossing the wheel horizon.
    {"uniform_spread", 30000, 12, 96},
};

/// Drives one workload through the banded EventQueue using the shipped
/// batch-dispatch path (drain_cycle). Returns checksum to defeat DCE.
std::uint64_t run_banded(const KernelWorkload& w, std::uint64_t& sink) {
  EventQueue q;
  Rng rng(42);
  const bool stop = false;
  std::uint64_t executed = 0;
  for (int c = 0; c < w.cycles; ++c) {
    const auto t = static_cast<Cycle>(c);
    for (int k = 0; k < w.events_per_cycle; ++k) {
      const Cycle at =
          w.horizon == 0 ? t : t + 1 + rng.next_below(w.horizon);
      Payload p;
      p.a = static_cast<std::uint64_t>(k);
      q.push(at, [p, &sink] { sink += p.a + p.g; });
    }
    while (!q.empty() && q.next_time() == t) {
      executed += q.drain_cycle(t, stop);
    }
  }
  // Drain the tail beyond the last generator cycle.
  while (!q.empty()) {
    const Cycle t = q.next_time();
    executed += q.drain_cycle(t, stop);
  }
  return executed;
}

/// Same workload through the seed kernel's per-event pop loop.
std::uint64_t run_legacy(const KernelWorkload& w, std::uint64_t& sink) {
  LegacyEventQueue q;
  Rng rng(42);
  std::uint64_t executed = 0;
  for (int c = 0; c < w.cycles; ++c) {
    const auto t = static_cast<Cycle>(c);
    for (int k = 0; k < w.events_per_cycle; ++k) {
      const Cycle at =
          w.horizon == 0 ? t : t + 1 + rng.next_below(w.horizon);
      Payload p;
      p.a = static_cast<std::uint64_t>(k);
      q.push(at, [p, &sink] { sink += p.a + p.g; });
    }
    while (!q.empty() && q.next_time() == t) {
      auto e = q.pop();
      e.fn();
      ++executed;
    }
  }
  while (!q.empty()) {
    auto e = q.pop();
    e.fn();
    ++executed;
  }
  return executed;
}

struct KernelResult {
  std::string name;
  std::uint64_t events = 0;
  double legacy_meps = 0;  // million events/second
  double banded_meps = 0;
  double speedup = 0;
};

template <typename F>
double best_of_meps(F&& run, std::uint64_t events, int reps) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double meps = static_cast<double>(events) / sec / 1e6;
    if (meps > best) best = meps;
  }
  return best;
}

int run_event_kernel_comparison(int reps) {
  std::vector<KernelResult> results;
  std::uint64_t sink = 0;
  for (const auto& w : kWorkloads) {
    // Warmup + event-count agreement check.
    const std::uint64_t n_banded = run_banded(w, sink);
    const std::uint64_t n_legacy = run_legacy(w, sink);
    if (n_banded != n_legacy) {
      std::fprintf(stderr,
                   "event-kernel bench: %s executed %llu (banded) vs %llu "
                   "(legacy) events\n",
                   w.name, static_cast<unsigned long long>(n_banded),
                   static_cast<unsigned long long>(n_legacy));
      return 1;
    }
    KernelResult r;
    r.name = w.name;
    r.events = n_banded;
    r.banded_meps = best_of_meps([&] { run_banded(w, sink); }, r.events, reps);
    r.legacy_meps = best_of_meps([&] { run_legacy(w, sink); }, r.events, reps);
    r.speedup = r.banded_meps / r.legacy_meps;
    results.push_back(r);
  }
  benchmark::DoNotOptimize(sink);

  std::printf("\nevent kernel: banded calendar queue vs seed priority queue\n");
  std::printf("%-20s %12s %14s %14s %9s\n", "workload", "events",
              "legacy Mev/s", "banded Mev/s", "speedup");
  for (const auto& r : results) {
    std::printf("%-20s %12llu %14.2f %14.2f %8.2fx\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.legacy_meps,
                r.banded_meps, r.speedup);
  }

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    RunMetrics m;
    m.manifest.tool = "bench/micro_kernels event_kernel";
    m.manifest.created = bench::now_iso8601();
    m.manifest.set("kernel",
                   std::string("banded calendar wheel + InlineFn vs "
                               "std::priority_queue + std::function"));
    JsonWriter jw;
    jw.begin_object();
    jw.key("workloads");
    jw.begin_array();
    for (const auto& r : results) {
      jw.begin_object();
      jw.key("name");
      jw.value(r.name);
      jw.key("events");
      jw.value(r.events);
      jw.key("legacy_meps");
      jw.value(r.legacy_meps);
      jw.key("banded_meps");
      jw.value(r.banded_meps);
      jw.key("speedup");
      jw.value(r.speedup);
      jw.end_object();
    }
    jw.end_array();
    jw.key("bar");
    jw.begin_object();
    jw.key("workload");
    jw.value("bursty_same_cycle");
    jw.key("required_speedup");
    jw.value(1.5);
    jw.end_object();
    jw.end_object();
    m.set_results_json(std::move(jw).str());
    m.write_file("bench_results/BENCH_micro_kernels.json");
  }

  const double bursty = results.front().speedup;
  const bool ok = bursty >= 1.5;
  std::printf("[%s] event kernel speedup on same-cycle-heavy workload: "
              "%.2fx (bar: 1.50x)\n\n",
              ok ? "OK" : "FAIL", bursty);
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Data-plane (activity scoreboard) before/after harness
// ---------------------------------------------------------------------------

struct ScheduledMsg {
  Cycle at;
  NodeId src;
  NodeId dst;
  std::uint32_t bytes;
};

struct DataPlaneWorkload {
  const char* name;
  int width;
  int height;
  std::vector<ScheduledMsg> msgs;
};

/// Sparse: a 256-router mesh where at most a handful of routers ever hold
/// flits at once — one short message every ~30 cycles over a long horizon.
/// This is the trace-replay shape the scoreboard targets: the clock runs,
/// but almost every router is idle on almost every cycle.
DataPlaneWorkload sparse_workload(int scale) {
  DataPlaneWorkload w{"sparse_low_load", 16, 16, {}};
  Rng rng(101);
  const int n = w.width * w.height;
  const int count = 1500 * scale;
  Cycle t = 0;
  for (int i = 0; i < count; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(n));
    auto dst = static_cast<NodeId>(rng.next_below(n));
    if (dst == src) dst = (dst + 1) % n;
    w.msgs.push_back({t, src, dst, 64});
    t += 25 + static_cast<Cycle>(rng.next_below(10));
  }
  return w;
}

/// Saturated: every cycle, a quarter of a 64-router mesh injects — the
/// active set is essentially the whole fabric, so the scoreboard's win is
/// gone and the bench guards that its bookkeeping costs (nearly) nothing.
DataPlaneWorkload saturated_workload(int scale) {
  DataPlaneWorkload w{"saturated", 8, 8, {}};
  Rng rng(202);
  const int n = w.width * w.height;
  const Cycle horizon = static_cast<Cycle>(1500) * scale;
  for (Cycle t = 0; t < horizon; ++t) {
    for (int k = 0; k < 16; ++k) {
      const auto src = static_cast<NodeId>(rng.next_below(n));
      auto dst = static_cast<NodeId>(rng.next_below(n));
      if (dst == src) dst = (dst + 1) % n;
      w.msgs.push_back({t, src, dst, 64});
    }
  }
  return w;
}

struct DataPlaneRun {
  std::uint64_t activity_hash = 0;
  std::uint64_t active_cycles = 0;
  std::uint64_t router_ticks = 0;
  std::uint64_t delivered = 0;
};

DataPlaneRun run_data_plane(const DataPlaneWorkload& w, bool exhaustive) {
  Simulator sim;
  const auto topo = noc::Topology::mesh(w.width, w.height);
  enoc::EnocNetwork net(sim, "enoc", topo, enoc::EnocParams{});
  net.set_exhaustive_tick_for_test(exhaustive);
  MsgId next_id = 1;
  for (const auto& m : w.msgs) {
    sim.schedule_at(m.at, [&net, &next_id, &m] {
      noc::Message msg;
      msg.id = next_id++;
      msg.src = m.src;
      msg.dst = m.dst;
      msg.size_bytes = m.bytes;
      msg.cls = noc::MsgClass::kData;
      net.inject(msg);
    });
  }
  sim.run();
  DataPlaneRun out;
  out.activity_hash = net.activity_hash();
  out.active_cycles = net.active_cycles();
  out.router_ticks = net.router_ticks();
  out.delivered = net.delivered_count();
  return out;
}

struct DataPlaneResult {
  std::string name;
  std::uint64_t active_cycles = 0;
  std::uint64_t delivered = 0;
  std::uint64_t ticks_exhaustive = 0;
  std::uint64_t ticks_scoreboard = 0;
  double exhaustive_mcps = 0;  // million simulated network cycles/second
  double scoreboard_mcps = 0;
  double speedup = 0;
};

int run_data_plane_comparison(int reps, int scale) {
  struct Case {
    DataPlaneWorkload workload;
    double bar;
  };
  const Case cases[] = {
      {sparse_workload(scale), 2.0},
      {saturated_workload(scale), 0.95},
  };

  std::vector<DataPlaneResult> results;
  bool all_ok = true;
  for (const auto& c : cases) {
    const auto& w = c.workload;
    // Correctness cross-check doubles as warmup: both scheduling policies
    // must move every flit identically.
    const DataPlaneRun sb = run_data_plane(w, /*exhaustive=*/false);
    const DataPlaneRun ex = run_data_plane(w, /*exhaustive=*/true);
    if (sb.activity_hash != ex.activity_hash ||
        sb.active_cycles != ex.active_cycles ||
        sb.delivered != ex.delivered) {
      std::fprintf(stderr,
                   "data-plane bench: %s diverged between scoreboard and "
                   "exhaustive ticking\n",
                   w.name);
      return 1;
    }
    DataPlaneResult r;
    r.name = w.name;
    r.active_cycles = sb.active_cycles;
    r.delivered = sb.delivered;
    r.ticks_exhaustive = ex.router_ticks;
    r.ticks_scoreboard = sb.router_ticks;
    r.scoreboard_mcps = best_of_meps(
        [&] { run_data_plane(w, false); }, r.active_cycles, reps);
    r.exhaustive_mcps = best_of_meps(
        [&] { run_data_plane(w, true); }, r.active_cycles, reps);
    r.speedup = r.scoreboard_mcps / r.exhaustive_mcps;
    if (r.speedup < c.bar) all_ok = false;
    results.push_back(r);
  }

  std::printf("\ndata plane: activity scoreboard vs tick-all-routers\n");
  std::printf("%-18s %10s %9s %13s %13s %12s %12s %9s\n", "workload",
              "cycles", "msgs", "ticks(all)", "ticks(sb)", "all Mcyc/s",
              "sb Mcyc/s", "speedup");
  for (const auto& r : results) {
    std::printf("%-18s %10llu %9llu %13llu %13llu %12.2f %12.2f %8.2fx\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.active_cycles),
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.ticks_exhaustive),
                static_cast<unsigned long long>(r.ticks_scoreboard),
                r.exhaustive_mcps, r.scoreboard_mcps, r.speedup);
  }

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    RunMetrics m;
    m.manifest.tool = "bench/micro_kernels data_plane";
    m.manifest.created = bench::now_iso8601();
    m.manifest.set("kernel",
                   std::string("quiescence-aware activity scoreboard vs "
                               "exhaustive per-cycle router ticking"));
    JsonWriter jw;
    jw.begin_object();
    jw.key("workloads");
    jw.begin_array();
    for (const auto& r : results) {
      jw.begin_object();
      jw.key("name");
      jw.value(r.name);
      jw.key("active_cycles");
      jw.value(r.active_cycles);
      jw.key("messages");
      jw.value(r.delivered);
      jw.key("router_ticks_exhaustive");
      jw.value(r.ticks_exhaustive);
      jw.key("router_ticks_scoreboard");
      jw.value(r.ticks_scoreboard);
      jw.key("exhaustive_mcps");
      jw.value(r.exhaustive_mcps);
      jw.key("scoreboard_mcps");
      jw.value(r.scoreboard_mcps);
      jw.key("speedup");
      jw.value(r.speedup);
      jw.end_object();
    }
    jw.end_array();
    jw.key("bars");
    jw.begin_array();
    for (const auto& [workload, bar] :
         {std::pair{"sparse_low_load", 2.0}, std::pair{"saturated", 0.95}}) {
      jw.begin_object();
      jw.key("workload");
      jw.value(workload);
      jw.key("required_speedup");
      jw.value(bar);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    m.set_results_json(std::move(jw).str());
    m.write_file("bench_results/BENCH_data_plane.json");
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    const double bar = cases[i].bar;
    const bool ok = results[i].speedup >= bar;
    std::printf("[%s] data-plane speedup on %s: %.2fx (bar: %.2fx)\n",
                ok ? "OK" : "FAIL", results[i].name.c_str(),
                results[i].speedup, bar);
  }
  std::printf("\n");
  return all_ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// google-benchmark suite
// ---------------------------------------------------------------------------

void BM_EventQueuePushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  EventQueue q;
  Rng rng(1);
  Cycle base = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      q.push(base + rng.next_below(1000), [] {});
    }
    while (!q.empty()) base = q.pop().time;
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024);

void BM_EventQueueSameCycleDrain(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  EventQueue q;
  const bool stop = false;
  Cycle t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      Payload p;
      q.push(t, [p, &sink] { sink += p.a; });
    }
    q.drain_cycle(t, stop);
    ++t;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueSameCycleDrain)->Arg(64)->Arg(1024);

void BM_RngU64(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngU64);

void BM_CacheLookup(benchmark::State& state) {
  fullsys::Cache cache(64, 4);
  Rng rng(3);
  for (int i = 0; i < 256; ++i) {
    cache.insert(rng.next_below(512), fullsys::LineState::kS);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(rng.next_below(512)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void BM_TokenAcquire(benchmark::State& state) {
  onoc::TokenRing ring(64, 1);
  Cycle t = 0;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.acquire(static_cast<NodeId>(rng.next_below(64)), t, 4));
    t += 8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenAcquire);

void BM_EnocSaturatedCycle(benchmark::State& state) {
  // Cost of one simulated network-cycle at moderate load, amortized:
  // run a fixed traffic experiment per iteration.
  for (auto _ : state) {
    Simulator sim;
    const auto topo = noc::Topology::mesh(4, 4);
    enoc::EnocNetwork net(sim, "enoc", topo, enoc::EnocParams{});
    noc::TrafficGenerator::Params tp;
    tp.injection_rate = 0.15;
    tp.warmup = 0;
    tp.measure = 500;
    tp.seed = 11;
    noc::TrafficGenerator gen(sim, "gen", net, topo, tp);
    gen.run_to_completion();
    benchmark::DoNotOptimize(net.delivered_count());
  }
}
BENCHMARK(BM_EnocSaturatedCycle)->Unit(benchmark::kMillisecond);

struct ReplayFixture {
  trace::Trace trace;
  ReplayFixture() {
    fullsys::AppParams app;
    app.name = "fft";
    app.cores = 16;
    app.lines_per_core = 16;
    app.iterations = 2;
    core::NetSpec spec;
    spec.kind = core::NetKind::kEnoc;
    trace = core::run_execution(app, spec, {}).trace;
  }
};

void BM_SctmReplayPerMessage(benchmark::State& state) {
  static const ReplayFixture fx;
  core::NetSpec target;
  target.kind = core::NetKind::kOnocToken;
  for (auto _ : state) {
    const auto rep = core::run_replay(fx.trace, target, {});
    benchmark::DoNotOptimize(rep.result.runtime);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.trace.records.size()));
}
BENCHMARK(BM_SctmReplayPerMessage)->Unit(benchmark::kMillisecond);

void BM_NaiveReplayPerMessage(benchmark::State& state) {
  static const ReplayFixture fx;
  core::NetSpec target;
  target.kind = core::NetKind::kOnocToken;
  core::ReplayConfig cfg;
  cfg.mode = core::ReplayMode::kNaive;
  for (auto _ : state) {
    const auto rep = core::run_replay(fx.trace, target, cfg);
    benchmark::DoNotOptimize(rep.result.runtime);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.trace.records.size()));
}
BENCHMARK(BM_NaiveReplayPerMessage)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  const int reps = smoke ? 3 : 5;
  const int scale = smoke ? 1 : 2;
  const int kernel_rc = run_event_kernel_comparison(reps);
  const int data_plane_rc = run_data_plane_comparison(reps, scale);
  if (smoke) return kernel_rc != 0 || data_plane_rc != 0 ? 1 : 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return kernel_rc != 0 || data_plane_rc != 0 ? 1 : 0;
}
