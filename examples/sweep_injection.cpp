// Synthetic-traffic characterization example: classic load/latency curves
// for the electrical mesh and both ONOC arbitration schemes under uniform
// random traffic. Useful for sanity-checking a network configuration before
// committing to a long full-system run.
//
// Build & run:  ./build/examples/sweep_injection [--stats-json <file>]
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>

#include "common/json.hpp"
#include "common/run_metrics.hpp"
#include "common/table.hpp"
#include "core/driver.hpp"
#include "noc/traffic.hpp"

namespace {

std::string now_iso8601() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sctm;
  std::string stats_json;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0) stats_json = argv[i + 1];
  }

  Table table("uniform-random load sweep, 4x4 fabric, 64 B packets");
  table.set_header({"rate (pkt/node/cyc)", "network", "mean lat", "p99 lat",
                    "throughput"});

  for (const double rate : {0.02, 0.05, 0.10, 0.20, 0.35}) {
    for (const auto kind : {core::NetKind::kEnoc, core::NetKind::kOnocToken,
                            core::NetKind::kOnocSetup}) {
      core::NetSpec spec;
      spec.kind = kind;
      Simulator sim;
      auto net = core::make_factory(spec)(sim);
      noc::TrafficGenerator::Params tp;
      tp.injection_rate = rate;
      tp.packet_bytes = 64;
      tp.warmup = 500;
      tp.measure = 5000;
      tp.seed = 7;
      noc::TrafficGenerator gen(sim, "gen", *net, spec.topo, tp);
      gen.run_to_completion();
      table.add_row({Table::fmt(rate, 2), core::to_string(kind),
                     Table::fmt(gen.latency().mean(), 1),
                     Table::fmt(gen.latency().percentile(0.99)),
                     Table::fmt(gen.throughput(), 3)});
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  if (!stats_json.empty()) {
    RunMetrics m;
    m.manifest.tool = "sweep_injection";
    m.manifest.created = now_iso8601();
    m.manifest.set("fabric", std::string("4x4"));
    m.manifest.set("packet_bytes", 64);
    JsonWriter results;
    results.begin_object();
    results.key("table");
    write_table_json(results, table);
    results.end_object();
    m.set_results_json(std::move(results).str());
    m.write_file(stats_json);
    std::printf("run metrics json -> %s\n", stats_json.c_str());
  }
  return 0;
}
