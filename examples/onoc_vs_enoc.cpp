// Case-study example: run the same parallel applications on the electrical
// baseline mesh and on both ONOC variants, execution-driven, and report
// application runtime, packet latency and network energy side by side.
//
// This is the "simple case-study" of the paper's abstract in example form
// (the full sweep lives in bench/tab_casestudy.cpp).
//
// Build & run:  ./build/examples/onoc_vs_enoc [--stats-json <file>]
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>

#include "common/json.hpp"
#include "common/run_metrics.hpp"
#include "common/table.hpp"
#include "core/driver.hpp"
#include "core/error_metrics.hpp"
#include "enoc/power.hpp"
#include "onoc/power.hpp"

namespace {

using namespace sctm;

std::string now_iso8601() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

struct NetResult {
  Cycle runtime;
  double mean_latency;
  double energy_uj;
};

NetResult run_on(const fullsys::AppParams& app, const core::NetSpec& spec) {
  Simulator sim;
  auto net = core::make_factory(spec)(sim);
  fullsys::CmpSystem cmp(sim, "cmp", *net, spec.topo, {},
                         fullsys::build_app(app));
  const Cycle runtime = cmp.run_to_completion();

  double energy_pj = 0;
  if (spec.kind == core::NetKind::kEnoc) {
    auto& e = static_cast<enoc::EnocNetwork&>(*net);
    energy_pj = enoc::compute_enoc_energy(sim.stats(), e.name(),
                                          e.topology().node_count(),
                                          e.active_cycles(), {})
                    .total_pj();
  } else {
    auto& o = static_cast<onoc::OnocNetwork&>(*net);
    energy_pj = onoc::compute_onoc_energy(o, runtime, sim.stats()).total_pj();
  }
  return NetResult{runtime, net->latency_histogram().mean(), energy_pj * 1e-6};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sctm;
  std::string stats_json;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0) stats_json = argv[i + 1];
  }

  Table table("case study: 16-core apps, electrical mesh vs optical crossbar");
  table.set_header({"app", "network", "runtime (cyc)", "mean pkt lat",
                    "net energy (uJ)", "speedup vs enoc"});

  for (const char* name : {"fft", "jacobi", "sort"}) {
    fullsys::AppParams app;
    app.name = name;
    app.cores = 16;
    app.lines_per_core = 16;
    app.iterations = 2;

    core::NetSpec enoc;
    enoc.kind = core::NetKind::kEnoc;
    core::NetSpec token;
    token.kind = core::NetKind::kOnocToken;
    core::NetSpec setup;
    setup.kind = core::NetKind::kOnocSetup;

    const auto base = run_on(app, enoc);
    for (const auto& [spec, label] :
         {std::pair{enoc, "enoc-mesh"}, std::pair{token, "onoc-token"},
          std::pair{setup, "onoc-setup"}}) {
      const auto r = run_on(app, spec);
      table.add_row({name, label, Table::fmt(static_cast<std::uint64_t>(r.runtime)),
                     Table::fmt(r.mean_latency, 1), Table::fmt(r.energy_uj, 2),
                     Table::fmt(static_cast<double>(base.runtime) /
                                    static_cast<double>(r.runtime),
                                2) + "x"});
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  if (!stats_json.empty()) {
    RunMetrics m;
    m.manifest.tool = "onoc_vs_enoc";
    m.manifest.created = now_iso8601();
    m.manifest.set("apps", std::string("fft jacobi sort"));
    m.manifest.set("cores", 16);
    JsonWriter results;
    results.begin_object();
    results.key("table");
    write_table_json(results, table);
    results.end_object();
    m.set_results_json(std::move(results).str());
    m.write_file(stats_json);
    std::printf("run metrics json -> %s\n", stats_json.c_str());
  }
  return 0;
}
