// R-F2: trace-model error as a function of the capture-vs-target speed gap.
//
// The naive trace is frozen at capture-network speed, so its error must grow
// with the gap between capture and target network latency; self-correcting
// replay re-times itself and should stay flat. Capture network: ideal model
// at 2 cycles/hop; targets: 1..32 cycles/hop (ground truth re-executed per
// target).
#include "bench/bench_util.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = 2;

  const auto capture = core::run_execution(app, ideal_spec(2), {});

  Table t("R-F2: runtime error vs target network speed "
          "(capture at 2 cyc/hop, app=fft)");
  t.set_header({"target cyc/hop", "truth runtime", "naive runtime",
                "sctm runtime", "naive err", "sctm err"});

  bool ok = true;
  double naive_err_at_32 = 0, sctm_err_at_32 = 0;
  for (const Cycle per_hop : {1, 2, 4, 8, 16, 32}) {
    const auto truth_run = core::run_execution(app, ideal_spec(per_hop), {});
    core::ReplayConfig naive_cfg;
    naive_cfg.mode = core::ReplayMode::kNaive;
    const auto naive =
        core::run_replay(capture.trace, ideal_spec(per_hop), naive_cfg);
    const auto sctm = core::run_replay(capture.trace, ideal_spec(per_hop), {});

    const auto truth = core::summarize(truth_run.trace);
    const auto en =
        core::compare(truth, core::summarize(capture.trace, naive.result));
    const auto es =
        core::compare(truth, core::summarize(capture.trace, sctm.result));
    t.add_row({Table::fmt(static_cast<std::uint64_t>(per_hop)),
               Table::fmt(static_cast<std::uint64_t>(truth.runtime)),
               Table::fmt(static_cast<std::uint64_t>(naive.result.runtime)),
               Table::fmt(static_cast<std::uint64_t>(sctm.result.runtime)),
               Table::pct(en.runtime_err), Table::pct(es.runtime_err)});
    ok = ok && es.runtime_err < 0.10;
    if (per_hop == 32) {
      naive_err_at_32 = en.runtime_err;
      sctm_err_at_32 = es.runtime_err;
    }
  }
  emit(t, "rf2_speed_gap");
  ok = ok && naive_err_at_32 > 5 * sctm_err_at_32;
  return verdict(ok, "R-F2 sctm error stays <10% across the speed gap; naive "
                     "error diverges");
}
