#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sctm {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroTasksIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsMatchSerial) {
  std::vector<double> par(256), ser(256);
  auto work = [](std::size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 100; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  parallel_for(256, [&](std::size_t i) { par[i] = work(i); });
  for (std::size_t i = 0; i < 256; ++i) ser[i] = work(i);
  EXPECT_EQ(par, ser);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(64,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanTasks) {
  std::atomic<int> count{0};
  parallel_for(3, [&](std::size_t) { count.fetch_add(1); }, /*threads=*/64);
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, DefaultParallelismPositive) {
  EXPECT_GE(default_parallelism(), 1u);
}

TEST(WorkerPool, EveryLaneRunsExactlyOnce) {
  WorkerPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](unsigned lane) {
    ASSERT_LT(lane, 4u);
    hits[lane].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossManyPhases) {
  // The whole point of the pool: thousands of barrier-synced phases on the
  // same resident threads, no spawn per phase.
  WorkerPool pool(3);
  std::vector<std::uint64_t> sums(pool.size(), 0);
  for (int phase = 0; phase < 2000; ++phase) {
    pool.run([&](unsigned lane) { sums[lane] += 1; });
  }
  for (const auto s : sums) EXPECT_EQ(s, 2000u);
}

TEST(WorkerPool, PhasesAreBarrierSynced) {
  // run() returning is a full barrier: writes from every lane in phase k
  // must be visible to every lane in phase k+1.
  WorkerPool pool(4);
  // Double-buffered neighbor propagation: each phase, every lane reads its
  // neighbor's cell from the previous phase and writes its own. Only the
  // inter-phase barrier makes the neighbor's prior write visible; a torn or
  // overlapped phase desynchronizes the cells.
  std::vector<std::uint64_t> a(4, 0), b(4, 0);
  std::vector<std::uint64_t>* src = &a;
  std::vector<std::uint64_t>* dst = &b;
  for (int phase = 0; phase < 500; ++phase) {
    pool.run([&](unsigned lane) { (*dst)[lane] = (*src)[(lane + 1) % 4] + 1; });
    std::swap(src, dst);
  }
  for (const auto c : *src) EXPECT_EQ(c, 500u);
}

TEST(WorkerPool, SizeOneRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::thread::id id;
  pool.run([&](unsigned lane) {
    EXPECT_EQ(lane, 0u);
    id = std::this_thread::get_id();
  });
  EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(WorkerPool, RethrowsFirstException) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.run([](unsigned lane) {
    if (lane == 2) throw std::runtime_error("lane boom");
  }),
               std::runtime_error);
  // The pool stays usable after an exceptional phase.
  std::atomic<int> count{0};
  pool.run([&](unsigned) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(WorkerPool, DefaultSizeUsesHardware) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), default_parallelism());
}

}  // namespace
}  // namespace sctm
