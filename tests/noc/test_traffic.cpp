#include "noc/traffic.hpp"

#include <gtest/gtest.h>

#include <map>

namespace sctm::noc {
namespace {

TEST(Patterns, NeverReturnsSelf) {
  const auto t = Topology::mesh(4, 4);
  Rng rng(1);
  for (const auto p :
       {TrafficPattern::kUniform, TrafficPattern::kTranspose,
        TrafficPattern::kBitComplement, TrafficPattern::kBitReverse,
        TrafficPattern::kTornado, TrafficPattern::kNeighbor,
        TrafficPattern::kHotspot, TrafficPattern::kShuffle,
        TrafficPattern::kBitRotate}) {
    for (NodeId s = 0; s < t.node_count(); ++s) {
      for (int i = 0; i < 8; ++i) {
        const NodeId d = pattern_destination(t, p, s, rng);
        EXPECT_NE(d, s) << to_string(p);
        EXPECT_TRUE(t.valid_node(d)) << to_string(p);
      }
    }
  }
}

TEST(Patterns, TransposeMapsCoordinates) {
  const auto t = Topology::mesh(4, 4);
  Rng rng(1);
  // (1,2) = node 9 -> (2,1) = node 6.
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kTranspose, 9, rng), 6);
}

TEST(Patterns, BitComplementIsInvolutionAcrossFabric) {
  const auto t = Topology::mesh(4, 4);
  Rng rng(1);
  const NodeId d = pattern_destination(t, TrafficPattern::kBitComplement, 0, rng);
  EXPECT_EQ(d, 15);
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kBitComplement, 15, rng), 0);
}

TEST(Patterns, TornadoHalfwayShift) {
  const auto t = Topology::mesh(4, 4);
  Rng rng(1);
  // (0,0) -> (2,2) = node 10.
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kTornado, 0, rng), 10);
}

TEST(Patterns, NeighborIsAdjacentInX) {
  const auto t = Topology::mesh(4, 4);
  Rng rng(1);
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kNeighbor, 5, rng), 6);
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kNeighbor, 3, rng), 0);
}

TEST(Patterns, ShuffleRotatesIndexLeft) {
  const auto t = Topology::mesh(4, 4);
  Rng rng(1);
  // 16 nodes = 4 bits. 5 = 0101 -> 1010 = 10.
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kShuffle, 5, rng), 10);
  // 12 = 1100 -> 1001 = 9.
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kShuffle, 12, rng), 9);
}

TEST(Patterns, BitRotateRotatesIndexRight) {
  const auto t = Topology::mesh(4, 4);
  Rng rng(1);
  // 5 = 0101 -> 1010 = 10 (right-rotate of 4 bits).
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kBitRotate, 5, rng), 10);
  // 6 = 0110 -> 0011 = 3.
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kBitRotate, 6, rng), 3);
}

TEST(Patterns, HotspotConcentratesTraffic) {
  const auto t = Topology::mesh(4, 4);
  Rng rng(5);
  std::map<NodeId, int> hits;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits[pattern_destination(t, TrafficPattern::kHotspot, 5, rng,
                             /*hotspot=*/0, /*fraction=*/0.5)]++;
  }
  // Node 0 should receive roughly half plus its uniform share.
  EXPECT_GT(hits[0], n * 4 / 10);
  EXPECT_LT(hits[0], n * 6 / 10);
}

TEST(Patterns, UniformSpreadsTraffic) {
  const auto t = Topology::mesh(4, 4);
  Rng rng(6);
  std::map<NodeId, int> hits;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    hits[pattern_destination(t, TrafficPattern::kUniform, 5, rng)]++;
  }
  const double expect = static_cast<double>(n) / 15.0;
  for (NodeId d = 0; d < 16; ++d) {
    if (d == 5) continue;
    EXPECT_NEAR(hits[d], expect, expect * 0.2) << d;
  }
}

TEST(Patterns, Legacy2DDestinationsPinned) {
  // Full destination map of every deterministic pattern on the legacy 4x4
  // mesh, hardcoded. The graph-backed topology refactor must not move a
  // single destination on the 2D kinds; -1 marks sources where the pattern
  // self-maps and falls back to a uniform draw.
  const auto t = Topology::mesh(4, 4);
  const struct {
    TrafficPattern pattern;
    int expect[16];
  } pinned[] = {
      {TrafficPattern::kTranspose,
       {-1, 4, 8, 12, 1, -1, 9, 13, 2, 6, -1, 14, 3, 7, 11, -1}},
      {TrafficPattern::kTornado,
       {10, 11, 8, 9, 14, 15, 12, 13, 2, 3, 0, 1, 6, 7, 4, 5}},
      {TrafficPattern::kNeighbor,
       {1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12}},
      {TrafficPattern::kBitComplement,
       {15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0}},
  };
  for (const auto& p : pinned) {
    Rng rng(1);
    for (NodeId s = 0; s < 16; ++s) {
      if (p.expect[s] < 0) continue;
      EXPECT_EQ(pattern_destination(t, p.pattern, s, rng),
                static_cast<NodeId>(p.expect[s]))
          << to_string(p.pattern) << " src " << s;
    }
  }
}

TEST(Patterns, ValidOnEveryFabricShape) {
  // The patterns generalize to non-square, 3D and irregular fabrics: always
  // a valid node, never the source, on every shape.
  const Topology shapes[] = {
      Topology::mesh(5, 3),
      Topology::torus(4, 2),
      Topology::ring(7),
      Topology::mesh3d(3, 2, 4),
      Topology::torus3d(4, 4, 2),
      Topology::from_text(
          "nodes 5\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 0\n"
          "edge 1 3\n",
          "pentagon"),
  };
  Rng rng(9);
  for (const auto& t : shapes) {
    SCOPED_TRACE(t.describe());
    for (const auto p :
         {TrafficPattern::kUniform, TrafficPattern::kTranspose,
          TrafficPattern::kBitComplement, TrafficPattern::kBitReverse,
          TrafficPattern::kTornado, TrafficPattern::kNeighbor,
          TrafficPattern::kHotspot, TrafficPattern::kShuffle,
          TrafficPattern::kBitRotate}) {
      for (NodeId s = 0; s < t.node_count(); ++s) {
        for (int i = 0; i < 4; ++i) {
          const NodeId d = pattern_destination(t, p, s, rng);
          EXPECT_NE(d, s) << to_string(p) << " src " << s;
          EXPECT_TRUE(t.valid_node(d)) << to_string(p) << " src " << s;
        }
      }
    }
  }
}

TEST(Patterns, TornadoShiftsHalfwayInEveryLatticeDimension) {
  // mesh3d(4,4,2): (0,0,0) -> (2,2,1) = 2 + 2*4 + 1*16 = 26.
  const auto t = Topology::mesh3d(4, 4, 2);
  Rng rng(1);
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kTornado, 0, rng), 26);
  // Irregular fabrics shift half-way around the index space: 5 nodes, 1+2=3.
  const auto f = Topology::from_text(
      "nodes 5\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 0\n");
  EXPECT_EQ(pattern_destination(f, TrafficPattern::kTornado, 1, rng), 3);
}

TEST(Patterns, NeighborWrapsWithinARowOnLattices) {
  const auto t = Topology::mesh3d(3, 2, 2);
  Rng rng(1);
  // (2,1,1) = node 11 -> (0,1,1) = node 9.
  EXPECT_EQ(pattern_destination(t, TrafficPattern::kNeighbor, 11, rng), 9);
}

TEST(TrafficGenerator, RejectsBadRate) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  IdealNetwork net(sim, "net", t, {});
  TrafficGenerator::Params p;
  p.injection_rate = 1.5;
  EXPECT_THROW(TrafficGenerator(sim, "gen", net, t, p),
               std::invalid_argument);
}

TEST(TrafficGenerator, DeliversEverythingOnIdealNetwork) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  IdealNetwork net(sim, "net", t, {});
  TrafficGenerator::Params p;
  p.injection_rate = 0.2;
  p.warmup = 100;
  p.measure = 1000;
  p.seed = 42;
  TrafficGenerator gen(sim, "gen", net, t, p);
  gen.run_to_completion();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.injected_count(), net.delivered_count());
  EXPECT_GT(gen.offered(), 0u);
  // Ideal network delivers everything offered during measurement; all of it
  // shows up in the latency sample (throughput misses only the window tail).
  EXPECT_EQ(gen.latency().count(), gen.offered());
  // Throughput window shifts by the pipeline fill: agreement within 2%.
  EXPECT_NEAR(static_cast<double>(gen.measured_delivered()),
              static_cast<double>(gen.offered()),
              0.02 * static_cast<double>(gen.offered()));
}

TEST(TrafficGenerator, ThroughputTracksRateWhenUncongested) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  IdealNetwork net(sim, "net", t, {});
  TrafficGenerator::Params p;
  p.injection_rate = 0.1;
  p.warmup = 200;
  p.measure = 5000;
  p.seed = 7;
  TrafficGenerator gen(sim, "gen", net, t, p);
  gen.run_to_completion();
  EXPECT_NEAR(gen.throughput(), 0.1, 0.01);
}

TEST(TrafficGenerator, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    const auto t = Topology::mesh(4, 4);
    IdealNetwork net(sim, "net", t, {});
    TrafficGenerator::Params p;
    p.injection_rate = 0.15;
    p.warmup = 50;
    p.measure = 500;
    p.seed = seed;
    TrafficGenerator gen(sim, "gen", net, t, p);
    gen.run_to_completion();
    return std::pair{gen.offered(), gen.latency().mean()};
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

}  // namespace
}  // namespace sctm::noc
