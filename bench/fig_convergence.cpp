// R-F4: iterative self-correction under truncated dependency windows.
//
// With the full dependency list, one replay pass is the exact fixed point.
// With a bounded window W, the engine iterates — this figure reports, per W,
// the passes needed to converge and the residual runtime error against the
// full-window result.
#include "bench/bench_util.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = 2;

  const auto capture = core::run_execution(app, ideal_spec(2), {});
  // Target: much slower network, so frozen anchors are badly wrong and the
  // correction has real work to do.
  const auto target = ideal_spec(16);
  const auto full = core::run_replay(capture.trace, target, {});

  Table t("R-F4: truncated-window convergence (fft, capture 2 cyc/hop -> "
          "target 16 cyc/hop)");
  t.set_header({"window W", "iterations", "residual (cyc)", "runtime",
                "err vs full-window"});

  bool ok = true;
  for (const std::uint32_t w : {0u, 1u, 2u, 4u}) {
    core::ReplayConfig cfg;
    cfg.dependency_window = w;
    cfg.max_iterations = 16;
    cfg.convergence_threshold = 0.5;
    const auto rep = core::run_replay(capture.trace, target, cfg);
    const double err =
        std::abs(static_cast<double>(rep.result.runtime) -
                 static_cast<double>(full.result.runtime)) /
        static_cast<double>(full.result.runtime);
    t.add_row({Table::fmt(static_cast<std::uint64_t>(w)),
               Table::fmt(static_cast<std::int64_t>(rep.result.iterations)),
               Table::fmt(rep.result.residual, 2),
               Table::fmt(static_cast<std::uint64_t>(rep.result.runtime)),
               Table::pct(err)});
    // W=0 (offline-only correction) propagates delay a single dependency
    // level per pass, so it needs O(critical-path-depth) passes — the row is
    // kept to show exactly why the online window is the load-bearing piece.
    if (w >= 1) ok = ok && err < 0.05 && rep.result.iterations <= 4;
  }
  t.add_row({"full", "1", "0.00",
             Table::fmt(static_cast<std::uint64_t>(full.result.runtime)),
             "0.0%"});
  emit(t, "rf4_convergence");
  return verdict(ok, "R-F4 every window converges to within 5% of the "
                     "full-window fixed point");
}
