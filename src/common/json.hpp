// Dependency-free JSON support for the run-metrics observability layer.
//
// Two halves:
//  * JsonWriter — a streaming emitter (objects/arrays/strings/numbers) that
//    every metrics producer in the repo shares, so bench_results/*.json and
//    --stats-json documents are escaped and formatted identically. Doubles
//    are written with round-trippable precision (shortest representation
//    that parses back to the same value); non-finite doubles are emitted as
//    null — a JSON document must never contain a bare NaN/Infinity token.
//  * JsonValue / json_parse — a minimal recursive-descent reader used by the
//    schema tests and the `sctm_cli validate` CI gate. It accepts exactly
//    RFC-8259 JSON (no comments, no trailing commas) and is not meant to be
//    fast; the simulator only ever parses its own small documents.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sctm {

/// Streaming JSON emitter. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("fft");
///   w.key("rows"); w.begin_array(); w.value(1.5); w.end_array();
///   w.end_object();
///   std::string doc = std::move(w).str();
/// The writer inserts commas and validates nesting with asserts; misuse is a
/// programming error, not a runtime condition.
class JsonWriter {
 public:
  JsonWriter();

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value/container.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool b);
  void null();

  /// Splices a pre-serialized JSON fragment (itself produced by a
  /// JsonWriter) as the next value. The fragment is trusted verbatim.
  void raw(std::string_view fragment);

  /// Escapes `s` per RFC 8259 (quotes, backslash, control characters as
  /// \uXXXX) and returns it wrapped in double quotes.
  static std::string quote(std::string_view s);

  /// Shortest decimal form of `d` that round-trips through strtod; "null"
  /// for NaN/Inf. Integral values render without an exponent where possible.
  static std::string format_double(double d);

  bool complete() const { return depth_ == 0 && emitted_; }
  /// The serialized document; call once finished (asserted complete).
  std::string str() &&;
  const std::string& buffer() const { return out_; }

 private:
  void comma_for_value();
  std::string out_;
  // One bit per nesting level: true = object (expects keys), false = array.
  std::vector<bool> in_object_;
  std::vector<bool> has_item_;
  bool pending_key_ = false;
  int depth_ = 0;
  bool emitted_ = false;
};

/// Parsed JSON document node (tests / validation only).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered object members (duplicate keys rejected at parse).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses `text` into a document. Returns false (and fills `err` when given)
/// on any syntax violation, including trailing garbage, duplicate object
/// keys, and bare NaN/Infinity tokens.
bool json_parse(std::string_view text, JsonValue* out, std::string* err);

}  // namespace sctm
