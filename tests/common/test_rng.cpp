#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace sctm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(13), 13u);
  }
  EXPECT_EQ(r.next_below(1), 0u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(3);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 1000; ++i) seen[r.next_below(8)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, RangeInclusive) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, BoolDegenerateProbabilitiesAreExact) {
  // p <= 0 never fires and p >= 1 always fires — exactly, not "with high
  // probability" — and the degenerate cases consume no stream state, so a
  // fault spec with a 0.0 rate leaves every other draw untouched.
  Rng r(23);
  const std::uint64_t before = Rng(23).next_u64();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_FALSE(r.next_bool(-1.0));
    EXPECT_TRUE(r.next_bool(1.0));
    EXPECT_TRUE(r.next_bool(2.0));
  }
  EXPECT_EQ(r.next_u64(), before);  // no state consumed by the loop above
}

TEST(Rng, BoolHandlesNonFiniteProbability) {
  Rng r(29);
  EXPECT_FALSE(r.next_bool(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(r.next_bool(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(r.next_bool(-std::numeric_limits<double>::infinity()));
}

TEST(Rng, RangeFullInt64SpanNoOverflow) {
  // lo = INT64_MIN, hi = INT64_MAX: the span + 1 would overflow a uint64;
  // the implementation must special-case it rather than wrap to
  // next_below(0).
  Rng r(31);
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.next_range(
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max());
    saw_negative |= v < 0;
    saw_positive |= v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(Rng, RangeExtremeBoundsStayInRange) {
  Rng r(37);
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(r.next_range(lo, lo + 1), lo + 1);
    EXPECT_GE(r.next_range(lo, lo + 1), lo);
  }
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(r.next_range(hi, hi), hi);
  EXPECT_EQ(r.next_range(lo, lo), lo);
}

TEST(Rng, ExponentialDegenerateMeans) {
  // mean <= 0 (or NaN) returns 0 rather than NaN/-inf, consuming no state.
  Rng r(41);
  const std::uint64_t before = Rng(41).next_u64();
  EXPECT_EQ(r.next_exponential(0.0), 0.0);
  EXPECT_EQ(r.next_exponential(-3.0), 0.0);
  EXPECT_EQ(r.next_exponential(std::numeric_limits<double>::quiet_NaN()), 0.0);
  EXPECT_EQ(r.next_u64(), before);
}

TEST(Rng, ExponentialAlwaysFiniteNonNegative) {
  Rng r(43);
  for (int i = 0; i < 100000; ++i) {
    const double v = r.next_exponential(2.0);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  Rng a2(21);
  (void)a2.next_u64();  // same position as `a` after split
  // The child stream must not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == a2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace sctm
