file(REMOVE_RECURSE
  "CMakeFiles/fig_onoc_vs_enoc.dir/fig_onoc_vs_enoc.cpp.o"
  "CMakeFiles/fig_onoc_vs_enoc.dir/fig_onoc_vs_enoc.cpp.o.d"
  "fig_onoc_vs_enoc"
  "fig_onoc_vs_enoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_onoc_vs_enoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
