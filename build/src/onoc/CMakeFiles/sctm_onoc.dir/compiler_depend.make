# Empty compiler generated dependencies file for sctm_onoc.
# This may be replaced when dependencies are built.
