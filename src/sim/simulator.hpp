// The simulation kernel: one clock, one event queue, one stat registry.
//
// Single-threaded by design. Components schedule closures; the kernel
// advances time to the earliest event and never backwards. A run ends when
// the queue drains, a deadline passes, or a component calls stop().
//
// The event path is allocation-free in steady state: closures are move-only
// InlineFn callables (56-byte small-buffer budget — keep captures within it,
// see common/inline_fn.hpp) and run_until() drains one cycle at a time from
// the queue's calendar wheel (batch dispatch), so no per-event heap traffic
// and no per-event priority-queue maintenance.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace sctm {

class WorkerPool;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Cycle now() const { return now_; }

  /// Schedules `fn` at absolute cycle `t`; `t` must be >= now().
  void schedule_at(Cycle t, EventFn fn);

  /// Schedules `fn` `delta` cycles from now (delta may be 0: runs later this
  /// cycle, after all currently pending same-cycle events).
  void schedule_in(Cycle delta, EventFn fn);

  /// Schedules `fn` in the *late band* of cycle `t`: it runs after every
  /// normally-scheduled event of that cycle regardless of scheduling order.
  void schedule_late(Cycle t, EventFn fn);

  /// Runs until the queue drains or a deadline/stop fires.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs events with time <= deadline. Time is left at
  /// min(deadline, last event time) — i.e. it does not jump past the deadline
  /// when the queue still has later events.
  std::uint64_t run_until(Cycle deadline);

  /// Executes exactly one event if any is pending; returns whether it did.
  bool step();

  /// Requests termination; takes effect before the next event dispatch.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Clears the queue and resets time to zero. Stats are left intact so a
  /// driver can reset between warmup and measurement phases independently.
  void reset_time();

  /// Full session reset: the kernel becomes observationally identical to a
  /// freshly constructed Simulator — queue emptied with its sequence counter
  /// rewound (tie-break order repeats bit-exactly), time/executed-count/stop
  /// flag zeroed, and every registered stat *value* zeroed. Stat registry
  /// *entries* survive, so components holding cached counter/accumulator
  /// references (routers, networks) stay valid across resets; capacity of
  /// the queue's wheel buckets and far heap is retained. Components whose
  /// events were dropped by the queue clear must be reset too (see
  /// noc::Network::reset()).
  void reset();

  /// Installs a worker pool (non-owning; nullptr reverts to serial) that
  /// components may use to shard one cycle's work between two barriers. The
  /// kernel itself stays single-threaded: events are dispatched serially and
  /// a component that consults the pool must drain all side effects back on
  /// the dispatching thread before its event returns (see the
  /// noc::Network::tick_partitioned contract). Survives reset() — the pool
  /// is session infrastructure, not simulation state.
  void set_worker_pool(WorkerPool* pool) { pool_ = pool; }
  WorkerPool* worker_pool() const { return pool_; }

  StatRegistry& stats() { return stats_; }
  const StatRegistry& stats() const { return stats_; }

  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return queue_.total_pushed(); }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  StatRegistry stats_;
  WorkerPool* pool_ = nullptr;
  Cycle now_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace sctm
