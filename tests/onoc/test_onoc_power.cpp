#include "onoc/power.hpp"

#include <gtest/gtest.h>

namespace sctm::onoc {
namespace {

using noc::Topology;

OnocNetwork make_net(Simulator& sim, Arbitration arb) {
  OnocParams p;
  p.arbitration = arb;
  return OnocNetwork(sim, "onoc", Topology::mesh(4, 4), p);
}

noc::Message msg(MsgId id, NodeId s, NodeId d, std::uint32_t bytes) {
  noc::Message m;
  m.id = id;
  m.src = s;
  m.dst = d;
  m.size_bytes = bytes;
  m.cls = noc::MsgClass::kData;
  return m;
}

TEST(OnocPower, StaticFloorWithoutTraffic) {
  Simulator sim;
  auto net = make_net(sim, Arbitration::kTokenRing);
  const auto e = compute_onoc_energy(net, 10000, sim.stats());
  EXPECT_GT(e.laser_pj, 0.0);
  EXPECT_GT(e.tuning_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.dynamic_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.ctrl_pj, 0.0);
}

TEST(OnocPower, DynamicScalesWithBytes) {
  Simulator sim;
  auto net = make_net(sim, Arbitration::kTokenRing);
  net.inject(msg(1, 0, 15, 1024));
  sim.run();
  const auto e1 = compute_onoc_energy(net, sim.now(), sim.stats());
  EXPECT_GT(e1.dynamic_pj, 0.0);

  Simulator sim2;
  auto net2 = make_net(sim2, Arbitration::kTokenRing);
  net2.inject(msg(1, 0, 15, 1024));
  net2.inject(msg(2, 1, 14, 1024));
  sim2.run();
  const auto e2 = compute_onoc_energy(net2, sim2.now(), sim2.stats());
  EXPECT_NEAR(e2.dynamic_pj, 2.0 * e1.dynamic_pj, 1e-6);
}

TEST(OnocPower, ControlMeshChargedInSetupMode) {
  Simulator sim;
  auto net = make_net(sim, Arbitration::kPathSetup);
  net.inject(msg(1, 0, 15, 256));
  sim.run();
  const auto e = compute_onoc_energy(net, sim.now(), sim.stats());
  EXPECT_GT(e.ctrl_pj, 0.0);
}

TEST(OnocPower, StaticDominatesAtLowUtilization) {
  Simulator sim;
  auto net = make_net(sim, Arbitration::kTokenRing);
  net.inject(msg(1, 0, 15, 64));
  sim.run();
  // One cache line over a window of 100k cycles: laser+tuning >> dynamic.
  const auto e = compute_onoc_energy(net, 100000, sim.stats());
  EXPECT_GT(e.laser_pj + e.tuning_pj, 100.0 * e.dynamic_pj);
}

TEST(OnocPower, WattsConversion) {
  OnocEnergyBreakdown e;
  e.laser_pj = 1e6;  // 1 uJ over 2e5 cycles at 2 GHz (100 us) = 10 mW
  EXPECT_NEAR(e.watts(200000, 2.0), 0.01, 1e-9);
}

TEST(OnocPower, BudgetInputsMirrorNetwork) {
  Simulator sim;
  auto net = make_net(sim, Arbitration::kTokenRing);
  const auto in = budget_inputs_for(net);
  EXPECT_EQ(in.nodes, 16);
  EXPECT_EQ(in.channels_per_node, 15);
  EXPECT_EQ(in.wavelengths, net.params().wavelengths);
}

}  // namespace
}  // namespace sctm::onoc
