#include "sim/simulator.hpp"

#include <stdexcept>

namespace sctm {

void Simulator::schedule_at(Cycle t, EventFn fn) {
  if (t < now_) {
    throw std::logic_error("Simulator: scheduling into the past (t=" +
                           std::to_string(t) + " < now=" +
                           std::to_string(now_) + ")");
  }
  queue_.push(t, std::move(fn));
}

void Simulator::schedule_in(Cycle delta, EventFn fn) {
  schedule_at(now_ + delta, std::move(fn));
}

void Simulator::schedule_late(Cycle t, EventFn fn) {
  if (t < now_) {
    throw std::logic_error("Simulator: scheduling into the past (late band)");
  }
  queue_.push(t, std::move(fn), EventQueue::kLate);
}

std::uint64_t Simulator::run() { return run_until(kNoCycle); }

std::uint64_t Simulator::run_until(Cycle deadline) {
  // Batch dispatch: advance to the earliest pending cycle once, then drain
  // that whole cycle from its wheel bucket without re-consulting the queue's
  // front between events.
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty()) {
    const Cycle t = queue_.next_time();
    if (t > deadline) break;
    now_ = t;
    n += queue_.drain_cycle(t, stopped_, &executed_);
  }
  if (!stopped_ && deadline != kNoCycle && now_ < deadline &&
      (queue_.empty() || queue_.next_time() > deadline)) {
    now_ = deadline;
  }
  return n;
}

bool Simulator::step() {
  if (stopped_ || queue_.empty()) return false;
  auto [t, fn] = queue_.pop();
  now_ = t;
  fn();
  ++executed_;
  return true;
}

void Simulator::reset_time() {
  queue_.clear();
  now_ = 0;
  stopped_ = false;
}

void Simulator::reset() {
  queue_.reset();
  stats_.zero();
  now_ = 0;
  executed_ = 0;
  stopped_ = false;
}

}  // namespace sctm
