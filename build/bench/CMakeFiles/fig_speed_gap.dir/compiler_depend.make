# Empty compiler generated dependencies file for fig_speed_gap.
# This may be replaced when dependencies are built.
