// Microbenchmarks (google-benchmark) for the simulator's hot kernels:
// event queue, RNG, cache lookups, router cycle under load, ONOC token
// arbitration, and end-to-end replay cost per message. These guard the
// performance that makes trace replay worthwhile in the first place.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/driver.hpp"
#include "enoc/enoc_network.hpp"
#include "fullsys/cache.hpp"
#include "noc/traffic.hpp"
#include "onoc/token.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace sctm;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  EventQueue q;
  Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      q.push(rng.next_below(1000), [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024);

void BM_RngU64(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngU64);

void BM_CacheLookup(benchmark::State& state) {
  fullsys::Cache cache(64, 4);
  Rng rng(3);
  for (int i = 0; i < 256; ++i) {
    cache.insert(rng.next_below(512), fullsys::LineState::kS);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(rng.next_below(512)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void BM_TokenAcquire(benchmark::State& state) {
  onoc::TokenRing ring(64, 1);
  Cycle t = 0;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.acquire(static_cast<NodeId>(rng.next_below(64)), t, 4));
    t += 8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenAcquire);

void BM_EnocSaturatedCycle(benchmark::State& state) {
  // Cost of one simulated network-cycle at moderate load, amortized:
  // run a fixed traffic experiment per iteration.
  for (auto _ : state) {
    Simulator sim;
    const auto topo = noc::Topology::mesh(4, 4);
    enoc::EnocNetwork net(sim, "enoc", topo, enoc::EnocParams{});
    noc::TrafficGenerator::Params tp;
    tp.injection_rate = 0.15;
    tp.warmup = 0;
    tp.measure = 500;
    tp.seed = 11;
    noc::TrafficGenerator gen(sim, "gen", net, topo, tp);
    gen.run_to_completion();
    benchmark::DoNotOptimize(net.delivered_count());
  }
}
BENCHMARK(BM_EnocSaturatedCycle)->Unit(benchmark::kMillisecond);

struct ReplayFixture {
  trace::Trace trace;
  ReplayFixture() {
    fullsys::AppParams app;
    app.name = "fft";
    app.cores = 16;
    app.lines_per_core = 16;
    app.iterations = 2;
    core::NetSpec spec;
    spec.kind = core::NetKind::kEnoc;
    trace = core::run_execution(app, spec, {}).trace;
  }
};

void BM_SctmReplayPerMessage(benchmark::State& state) {
  static const ReplayFixture fx;
  core::NetSpec target;
  target.kind = core::NetKind::kOnocToken;
  for (auto _ : state) {
    const auto rep = core::run_replay(fx.trace, target, {});
    benchmark::DoNotOptimize(rep.result.runtime);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.trace.records.size()));
}
BENCHMARK(BM_SctmReplayPerMessage)->Unit(benchmark::kMillisecond);

void BM_NaiveReplayPerMessage(benchmark::State& state) {
  static const ReplayFixture fx;
  core::NetSpec target;
  target.kind = core::NetKind::kOnocToken;
  core::ReplayConfig cfg;
  cfg.mode = core::ReplayMode::kNaive;
  for (auto _ : state) {
    const auto rep = core::run_replay(fx.trace, target, cfg);
    benchmark::DoNotOptimize(rep.result.runtime);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.trace.records.size()));
}
BENCHMARK(BM_NaiveReplayPerMessage)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
