#include "analytic/screen.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "analytic/trace_profile.hpp"

namespace sctm::analytic {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::vector<core::ExploreResult> explore_screened(
    const core::ReplayTrace& rt,
    const std::vector<core::Candidate>& candidates,
    const core::ExploreConfig& cfg) {
  if (candidates.empty()) {
    throw std::invalid_argument(
        "explore: empty candidate list (nothing to rank)");
  }
  // A screen wider than the field, a disabled screen, or an empty trace
  // (nothing to profile) all collapse to plain full replay.
  if (cfg.screen_top_k == 0 || cfg.screen_top_k >= candidates.size() ||
      rt.empty()) {
    return core::explore(rt, candidates, cfg);
  }
  const std::size_t k = cfg.screen_top_k;
  const std::size_t n = candidates.size();

  // Tier 0: one streaming pass over the trace, then O(nodes^2 * classes)
  // per candidate — no Simulator, no network, no events.
  const TraceProfile profile = profile_trace(rt);
  std::vector<core::ExploreResult> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const AnalyticResult est = estimate(profile, candidates[i].spec);
    out[i].name = candidates[i].name;
    out[i].replayed = false;
    out[i].est_runtime = est.est_runtime;
    out[i].est_mean_latency = est.est_mean_latency;
    out[i].est_p99 = est.est_p99;
    out[i].analytic_seconds = seconds_since(t0);
  }

  // Analytic ranking: estimated runtime ascending, ties by name — the same
  // tie-break core::explore uses, so the two tiers order identically when
  // the estimator agrees with replay.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (out[a].est_runtime != out[b].est_runtime) {
      return out[a].est_runtime < out[b].est_runtime;
    }
    return out[a].name < out[b].name;
  });
  for (std::size_t r = 0; r < n; ++r) out[order[r]].analytic_rank = r + 1;

  // Tier 1: confirm the analytic top-K with full self-correcting replay.
  std::vector<core::Candidate> top;
  top.reserve(k);
  for (std::size_t r = 0; r < k; ++r) top.push_back(candidates[order[r]]);
  const std::vector<core::ExploreResult> confirmed =
      core::explore(rt, top, cfg);

  // Overlay replay numbers onto the screened entries. Names within the
  // top-K may repeat (callers are free to hand-build duplicate candidate
  // lists), so each replay result claims the first still-unclaimed screened
  // entry with its name.
  std::unordered_map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t r = 0; r < k; ++r) {
    by_name[candidates[order[r]].name].push_back(order[r]);
  }
  for (const auto& c : confirmed) {
    auto& slots = by_name.at(c.name);
    const std::size_t i = slots.back();
    slots.pop_back();
    out[i].replayed = true;
    out[i].runtime = c.runtime;
    out[i].mean_latency = c.mean_latency;
    out[i].p99_latency = c.p99_latency;
    out[i].iterations = c.iterations;
    out[i].wall_seconds = c.wall_seconds;
  }

  // Final order: confirmed candidates first (by replayed runtime, the
  // trustworthy number), then the analytic-only tail by estimate.
  std::sort(out.begin(), out.end(),
            [](const core::ExploreResult& a, const core::ExploreResult& b) {
              if (a.replayed != b.replayed) return a.replayed;
              if (a.replayed) {
                if (a.runtime != b.runtime) return a.runtime < b.runtime;
              } else if (a.est_runtime != b.est_runtime) {
                return a.est_runtime < b.est_runtime;
              }
              return a.name < b.name;
            });
  return out;
}

}  // namespace sctm::analytic
