// Streaming statistics and a named-stat registry.
//
// Components register counters and accumulators under dotted names
// ("enoc.router.3.flits_routed"); the registry snapshots into report tables.
// Accumulator uses Welford's algorithm so variance is numerically stable over
// billions of samples.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sctm {

class JsonWriter;

/// Streaming mean/variance/min/max over double samples.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);
  void reset();

  std::uint64_t count() const { return n_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// *Sample* variance (Bessel-corrected, divides by n-1); 0 with fewer than
  /// 2 samples. The registry's accumulators hold samples of an underlying
  /// process (latencies, queue waits), so `sd=` in reports is the sample
  /// statistic an experimenter would compute from the same data — dividing
  /// by n would systematically understate spread for small n.
  double variance() const;
  /// Sample standard deviation, sqrt(variance()).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Emits {"n":..,"mean":..,"min":..,"max":..,"stddev":..} as the writer's
  /// next value.
  void write_json(JsonWriter& w) const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Registry of named counters and accumulators. Not thread-safe by design:
/// the simulation kernel is single-threaded; benches aggregate across runs by
/// snapshotting.
class StatRegistry {
 public:
  /// Returns the counter registered under `name`, creating it at zero.
  std::uint64_t& counter(std::string_view name);

  /// Returns the accumulator registered under `name`, creating it empty.
  Accumulator& accumulator(std::string_view name);

  bool has_counter(std::string_view name) const;
  bool has_accumulator(std::string_view name) const;

  /// Value of a counter; 0 when absent.
  std::uint64_t counter_value(std::string_view name) const;

  /// All registered names (counters then accumulators), sorted.
  std::vector<std::string> names() const;

  /// Human-readable dump, one stat per line, sorted by name.
  std::string report() const;

  /// Emits {"counters": {...}, "accumulators": {...}} as the writer's next
  /// value (names sorted — std::map order).
  void write_json(JsonWriter& w) const;

  /// Finer-grained emitters for callers composing a larger "stats" object:
  /// each writes one {"name": value} object as the writer's next value.
  void write_counters_json(JsonWriter& w) const;
  void write_accumulators_json(JsonWriter& w) const;

  /// Erases every entry. Only safe when no component still holds a reference
  /// returned by counter()/accumulator() — i.e. when the components are being
  /// rebuilt too. For in-place reuse, use zero().
  void reset();

  /// Zeroes every registered value in place, keeping the entries (and thus
  /// every reference handed out by counter()/accumulator()) valid. This is
  /// the session-reset path: components cache stat references at
  /// construction, so a reused simulator must not erase the map nodes.
  void zero();

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Accumulator, std::less<>> accumulators_;
};

}  // namespace sctm
