// Flat key-value configuration store.
//
// All simulator parameters flow through a Config so that experiments are
// reproducible from a single text blob. Keys are dotted paths
// ("enoc.vc_count"), values are typed on read. Unknown keys are an error on
// read unless a default is supplied; reads are recorded so a run can dump the
// exact configuration it used (consumed_dump), which the bench harness prints
// for table R-T1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace sctm {

class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines. '#' starts a comment; blank lines ignored.
  /// Later assignments override earlier ones. Throws std::runtime_error on
  /// malformed lines.
  static Config from_string(std::string_view text);

  /// Loads from a file; throws std::runtime_error when unreadable.
  static Config from_file(const std::string& path);

  void set(std::string key, std::string value);
  void set_int(std::string key, std::int64_t value);
  void set_double(std::string key, double value);
  void set_bool(std::string key, bool value);

  bool contains(std::string_view key) const;

  /// Typed getters. The no-default overloads throw std::runtime_error when
  /// the key is absent; all throw when the value fails to parse.
  std::string get_string(std::string_view key) const;
  std::string get_string(std::string_view key, std::string_view def) const;
  std::int64_t get_int(std::string_view key) const;
  std::int64_t get_int(std::string_view key, std::int64_t def) const;
  double get_double(std::string_view key) const;
  double get_double(std::string_view key, double def) const;
  bool get_bool(std::string_view key) const;
  bool get_bool(std::string_view key, bool def) const;

  /// Merges `other` on top of this config (other wins on conflicts).
  void merge(const Config& other);

  /// All keys in sorted order.
  std::vector<std::string> keys() const;

  /// "key = value" lines for every key that has been *read* so far, sorted.
  std::string consumed_dump() const;

  /// "key = value" lines for every key, sorted.
  std::string dump() const;

 private:
  std::optional<std::string> lookup(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
  mutable std::set<std::string, std::less<>> consumed_;
};

}  // namespace sctm
