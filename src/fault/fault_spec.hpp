// Fault-injection configuration.
//
// A FaultSpec is the declarative description of an unreliable fabric: static
// per-event probabilities for each fault class, the timeout constants of the
// recovery protocol, and one root seed from which every fault stream is
// derived. The spec is plain data with memberwise equality so it can ride in
// core::NetSpec (exploration keys session reuse on spec equality) and be
// parsed from the same "fault.*" config vocabulary everywhere (CLI --faults
// files, experiment configs, explore candidates). A default-constructed spec
// is inert: enabled() is false and no FaultModel is built from it, so
// fault-free runs execute byte-for-byte the code they always did.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/units.hpp"

namespace sctm::fault {

struct FaultSpec {
  /// Root seed of every fault stream (child streams are derived per fault
  /// class and per channel, see FaultModel).
  std::uint64_t seed = 1;

  // --- ENoC plane: drawn once per flit link traversal ----------------------
  double enoc_flit_corrupt_rate = 0.0;  // payload corrupted crossing a link
  double enoc_flit_drop_rate = 0.0;     // flit symbol lost on a link
  double enoc_link_stuck_rate = 0.0;    // stuck-at episode onset probability
  /// Duration of one stuck-at episode: every flit crossing the link while it
  /// is stuck is corrupted.
  Cycle enoc_link_stuck_cycles = 32;

  // --- ONoC plane ----------------------------------------------------------
  double onoc_token_loss_rate = 0.0;  // per arbitration request
  /// A lost token regenerates at the ring's home node after this timeout;
  /// the channel is unusable while it does.
  Cycle onoc_token_regen_cycles = 64;
  double onoc_reservation_loss_rate = 0.0;  // per path-setup grant
  /// Writer-side timeout before a lost grant is re-requested.
  Cycle onoc_reservation_timeout = 128;
  /// Residual microring thermal drift (deg C RMS, after trimming). Raises
  /// the optical bit-error rate through the loss budget (onoc/loss.hpp).
  double onoc_ring_drift_sigma_c = 0.0;
  /// Laser power degradation (aging) in dB, eroding the budget margin.
  double onoc_laser_degradation_db = 0.0;

  // --- Message-layer recovery ----------------------------------------------
  /// Retransmissions attempted per message before it is surfaced anyway and
  /// reported lost (the fabric stays lossless so replay never hangs).
  int max_retries = 3;
  /// Detection + NACK turnaround before a corrupted message is re-injected.
  Cycle nack_cycles = 16;

  bool operator==(const FaultSpec&) const = default;

  /// True when any fault class can actually fire. Disabled specs build no
  /// FaultModel, so the fault-free path is untouched (and --stats-json
  /// output is byte-identical to a build without faults).
  bool enabled() const;

  /// Throws std::invalid_argument on out-of-range fields (rates outside
  /// [0,1], non-positive timeouts, negative retry budget).
  void validate() const;

  /// Returns a copy with a different root seed (composite networks give each
  /// layer its own derived stream family).
  FaultSpec with_seed(std::uint64_t s) const;

  /// Reads "fault.*" keys with these defaults. Unknown "fault.*" keys are a
  /// hard error (Config::require_keys_in), so a typo'd rate can't silently
  /// leave the fabric perfect. Validates before returning.
  static FaultSpec from_config(const Config& cfg);

  /// ("fault.<key>", value) pairs for every non-default field — what run
  /// manifests echo so a metrics document names the fault regime it ran
  /// under. Empty when disabled.
  std::vector<std::pair<std::string, std::string>> manifest_entries() const;
};

}  // namespace sctm::fault
