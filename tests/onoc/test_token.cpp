#include "onoc/token.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sctm::onoc {
namespace {

TEST(TokenRing, GrantImmediateWhenTokenAtRequester) {
  TokenRing ring(8, 1);
  // Token starts at node 0.
  EXPECT_EQ(ring.acquire(0, 0, 10), 0u);
}

TEST(TokenRing, WaitsForTokenToTravel) {
  TokenRing ring(8, 1);
  // Token at 0, requester at 5 -> 5 hops.
  EXPECT_EQ(ring.acquire(5, 0, 10), 5u);
}

TEST(TokenRing, HopLatencyScalesWait) {
  TokenRing ring(8, 4);
  EXPECT_EQ(ring.acquire(5, 0, 10), 20u);
}

TEST(TokenRing, ChannelHoldDelaysNextGrant) {
  TokenRing ring(8, 1);
  const Cycle g1 = ring.acquire(0, 0, 100);  // holds [0, 100)
  EXPECT_EQ(g1, 0u);
  // Node 1 requests at t=10: token frees at 100 at pos 0... then 1 hop.
  EXPECT_EQ(ring.acquire(1, 10, 5), 101u);
}

TEST(TokenRing, TokenRotatesWhileIdle) {
  TokenRing ring(8, 1);
  (void)ring.acquire(0, 0, 4);  // free at 4, pos 0
  // At t=10 the token has idled 6 cycles -> position 6.
  EXPECT_EQ(ring.position_at(10), 6);
  // Requester 6 at t=10 gets it instantly.
  EXPECT_EQ(ring.acquire(6, 10, 1), 10u);
}

TEST(TokenRing, WrapAroundDistance) {
  TokenRing ring(8, 1);
  (void)ring.acquire(5, 0, 1);  // grant at 5, free at 6, pos 5
  // Node 3 at t=6: distance (3-5) mod 8 = 6.
  EXPECT_EQ(ring.acquire(3, 6, 1), 12u);
}

TEST(TokenRing, SequentialRequestsSerialize) {
  TokenRing ring(4, 1);
  const Cycle g1 = ring.acquire(1, 0, 10);
  const Cycle g2 = ring.acquire(2, 0, 10);
  const Cycle g3 = ring.acquire(3, 0, 10);
  EXPECT_EQ(g1, 1u);
  EXPECT_EQ(g2, g1 + 10 + 1);  // one hop 1->2 after hold
  EXPECT_EQ(g3, g2 + 10 + 1);
  EXPECT_EQ(ring.grants(), 3u);
}

TEST(TokenRing, OutOfOrderCallThrows) {
  TokenRing ring(4, 1);
  (void)ring.acquire(1, 10, 1);
  EXPECT_THROW(ring.acquire(2, 5, 1), std::logic_error);
}

TEST(TokenRing, InvalidArgsThrow) {
  EXPECT_THROW(TokenRing(0, 1), std::invalid_argument);
  EXPECT_THROW(TokenRing(4, 0), std::invalid_argument);
  TokenRing ring(4, 1);
  EXPECT_THROW(ring.acquire(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(ring.acquire(-1, 0, 1), std::invalid_argument);
}

TEST(TokenRing, GrantNeverBeforeRequest) {
  TokenRing ring(16, 2);
  Cycle t = 0;
  for (int i = 0; i < 100; ++i) {
    const NodeId s = (i * 7) % 16;
    const Cycle g = ring.acquire(s, t, 3);
    EXPECT_GE(g, t);
    t += 5;
  }
}

}  // namespace
}  // namespace sctm::onoc
