#include "onoc/onoc_network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "noc/traffic.hpp"

namespace sctm::onoc {
namespace {

using noc::Message;
using noc::MsgClass;
using noc::Topology;

Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = MsgClass::kData;
  return m;
}

OnocParams token_params() {
  OnocParams p;
  p.arbitration = Arbitration::kTokenRing;
  return p;
}

OnocParams setup_params() {
  OnocParams p;
  p.arbitration = Arbitration::kPathSetup;
  return p;
}

TEST(OnocNetwork, ChannelsKeyOffNodeCountNotLayout) {
  // The crossbar is keyed by node id, so any topology kind works as the tile
  // layout — here a ring, which the pre-graph implementation rejected.
  Simulator sim;
  OnocNetwork net(sim, "onoc", Topology::ring(8), token_params());
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  net.inject(make_msg(1, 0, 5, 64));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].dst, 5);
}

TEST(OnocNetwork, TokenModeDeliversSingleMessage) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, token_params());
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  net.inject(make_msg(1, 0, 15, 64));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(net.idle());
  EXPECT_GE(got[0].latency(), net.zero_load_latency(got[0]) - 1);
}

TEST(OnocNetwork, SetupModeDeliversSingleMessage) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, setup_params());
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  net.inject(make_msg(1, 0, 15, 64));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(net.idle());
  // Setup adds two control traversals: latency well above zero-load.
  EXPECT_GT(got[0].latency(), net.zero_load_latency(got[0]));
}

TEST(OnocNetwork, ZeroLoadLatencyFormula) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocParams p = token_params();
  p.wavelengths = 16;          // 16 * 10 Gb/s / 8 / 2GHz = 10 B/cycle
  p.eo_latency = 2;
  p.oe_latency = 3;
  OnocNetwork net(sim, "onoc", t, p);
  const auto m = make_msg(1, 0, 15, 100);  // ser = 10 cycles
  const Cycle tof = p.tof_cycles(t.distance(0, 15), t.width());
  EXPECT_EQ(net.zero_load_latency(m), 2u + 10u + tof + 3u);
}

TEST(OnocNetwork, SelfMessageSkipsArbitration) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  OnocNetwork net(sim, "onoc", t, token_params());
  Message got;
  net.set_deliver_callback([&](const Message& m) { got = m; });
  net.inject(make_msg(1, 3, 3, 64));
  sim.run();
  EXPECT_EQ(got.latency(), net.zero_load_latency(got));
}

TEST(OnocNetwork, TokenContentionSerializesSameDestination) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, token_params());
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  // Three writers to node 15 at the same time: transfers must serialize.
  net.inject(make_msg(1, 0, 15, 640));
  net.inject(make_msg(2, 1, 15, 640));
  net.inject(make_msg(3, 2, 15, 640));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  std::vector<Cycle> arrivals;
  for (const auto& m : got) arrivals.push_back(m.arrive_time);
  std::sort(arrivals.begin(), arrivals.end());
  const Cycle ser = net.params().ser_cycles(640);
  EXPECT_GE(arrivals[1], arrivals[0] + ser);
  EXPECT_GE(arrivals[2], arrivals[1] + ser);
}

TEST(OnocNetwork, SetupContentionSerializesSameDestination) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, setup_params());
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  net.inject(make_msg(1, 0, 15, 640));
  net.inject(make_msg(2, 1, 15, 640));
  net.inject(make_msg(3, 2, 15, 640));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  std::vector<Cycle> arrivals;
  for (const auto& m : got) arrivals.push_back(m.arrive_time);
  std::sort(arrivals.begin(), arrivals.end());
  const Cycle ser = net.params().ser_cycles(640);
  EXPECT_GE(arrivals[1], arrivals[0] + ser);
  EXPECT_GE(arrivals[2], arrivals[1] + ser);
}

TEST(OnocNetwork, DistinctDestinationsProceedInParallel) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, token_params());
  std::vector<Message> got;
  net.set_deliver_callback([&](const Message& m) { got.push_back(m); });
  net.inject(make_msg(1, 0, 12, 640));
  net.inject(make_msg(2, 1, 13, 640));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  // No cross-channel interference: both near zero-load latency.
  for (const auto& m : got) {
    EXPECT_LE(m.latency(), net.zero_load_latency(m) + 16);
  }
}

TEST(OnocNetwork, LargeTransferFasterThanEnocWouldBe) {
  // ONOC bandwidth at 16 lambdas = 10 B/cycle; a 4 KiB transfer finishes in
  // ~410 cycles + overheads, far beyond what a 16 B/flit wormhole mesh does
  // per hop chain — sanity-check the bandwidth math only.
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, token_params());
  Message got;
  net.set_deliver_callback([&](const Message& m) { got = m; });
  net.inject(make_msg(1, 0, 15, 4096));
  sim.run();
  const Cycle ser = net.params().ser_cycles(4096);
  EXPECT_NEAR(static_cast<double>(got.latency()), static_cast<double>(ser),
              30.0);
}

TEST(OnocNetwork, LosslessUnderSyntheticLoadTokenMode) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, token_params());
  noc::TrafficGenerator::Params tp;
  tp.injection_rate = 0.2;
  tp.warmup = 200;
  tp.measure = 2000;
  tp.seed = 11;
  noc::TrafficGenerator gen(sim, "gen", net, t, tp);
  gen.run_to_completion();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.injected_count(), net.delivered_count());
}

TEST(OnocNetwork, LosslessUnderSyntheticLoadSetupMode) {
  Simulator sim;
  const auto t = Topology::mesh(4, 4);
  OnocNetwork net(sim, "onoc", t, setup_params());
  noc::TrafficGenerator::Params tp;
  tp.injection_rate = 0.15;
  tp.warmup = 200;
  tp.measure = 2000;
  tp.seed = 12;
  noc::TrafficGenerator gen(sim, "gen", net, t, tp);
  gen.run_to_completion();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.injected_count(), net.delivered_count());
}

TEST(OnocNetwork, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim;
    const auto t = Topology::mesh(4, 4);
    OnocNetwork net(sim, "onoc", t, setup_params());
    noc::TrafficGenerator::Params tp;
    tp.injection_rate = 0.1;
    tp.warmup = 100;
    tp.measure = 1000;
    tp.seed = 21;
    noc::TrafficGenerator gen(sim, "gen", net, t, tp);
    gen.run_to_completion();
    return std::pair{gen.latency().mean(), sim.now()};
  };
  EXPECT_EQ(run(), run());
}

TEST(OnocNetwork, MoreWavelengthsCutSerialization) {
  OnocParams a = token_params();
  a.wavelengths = 8;
  OnocParams b = token_params();
  b.wavelengths = 64;
  EXPECT_GT(a.ser_cycles(4096), b.ser_cycles(4096));
  EXPECT_NEAR(static_cast<double>(a.ser_cycles(4096)),
              8.0 * static_cast<double>(b.ser_cycles(4096)), 8.0);
}

TEST(OnocNetwork, DataBytesAccounted) {
  Simulator sim;
  const auto t = Topology::mesh(2, 2);
  OnocNetwork net(sim, "onoc", t, token_params());
  net.inject(make_msg(1, 0, 3, 100));
  net.inject(make_msg(2, 1, 2, 50));
  sim.run();
  EXPECT_EQ(net.data_bytes(), 150u);
}

}  // namespace
}  // namespace sctm::onoc
