file(REMOVE_RECURSE
  "CMakeFiles/test_onoc.dir/onoc/test_hybrid.cpp.o"
  "CMakeFiles/test_onoc.dir/onoc/test_hybrid.cpp.o.d"
  "CMakeFiles/test_onoc.dir/onoc/test_loss.cpp.o"
  "CMakeFiles/test_onoc.dir/onoc/test_loss.cpp.o.d"
  "CMakeFiles/test_onoc.dir/onoc/test_onoc_network.cpp.o"
  "CMakeFiles/test_onoc.dir/onoc/test_onoc_network.cpp.o.d"
  "CMakeFiles/test_onoc.dir/onoc/test_onoc_params.cpp.o"
  "CMakeFiles/test_onoc.dir/onoc/test_onoc_params.cpp.o.d"
  "CMakeFiles/test_onoc.dir/onoc/test_onoc_power.cpp.o"
  "CMakeFiles/test_onoc.dir/onoc/test_onoc_power.cpp.o.d"
  "CMakeFiles/test_onoc.dir/onoc/test_shared_pool.cpp.o"
  "CMakeFiles/test_onoc.dir/onoc/test_shared_pool.cpp.o.d"
  "CMakeFiles/test_onoc.dir/onoc/test_swmr.cpp.o"
  "CMakeFiles/test_onoc.dir/onoc/test_swmr.cpp.o.d"
  "CMakeFiles/test_onoc.dir/onoc/test_token.cpp.o"
  "CMakeFiles/test_onoc.dir/onoc/test_token.cpp.o.d"
  "test_onoc"
  "test_onoc.pdb"
  "test_onoc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_onoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
