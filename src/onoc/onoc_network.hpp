// Optical Network-on-Chip simulator.
//
// Architecture: a WDM multiple-writer single-reader (MWSR) crossbar — every
// node owns one receive channel that every other node can modulate onto.
// Transfer latency = arbitration wait + E/O + serialization + time-of-flight
// + O/E. Two arbitration schemes are modeled:
//
//  * kTokenRing — a token per channel circulates the writers (Corona-like);
//    arbitration is fully optical and needs no electrical network, but the
//    token round-trip grows with radix.
//  * kPathSetup — a writer first sends a setup request over an electrical
//    control mesh (a full EnocNetwork instance carrying 1-flit control
//    packets); the receiver grants FCFS and the grant travels back before
//    data moves. Setup costs two electrical traversals but arbitrates
//    precisely and supports back-to-back streaming to distinct receivers.
//
// The data plane is event-driven (no per-cycle clock): an idle ONOC costs
// zero events, so trace replay over it is fast.
//
// Channel-sharded arbitration: token-ring and SWMR arbitration are
// *per-channel independent* — one TokenRing per receive channel, one busy
// horizon per source channel — so a cycle's requests can be arbitrated in
// parallel. inject() queues the request on its channel and schedules one
// late-band flush per cycle; the flush shards contiguous channel ranges
// across the Simulator's WorkerPool (grants recorded into per-shard
// outboxes, never scheduled from a lane) and then drains the outboxes in
// ascending shard — hence ascending channel — order on the dispatching
// thread. Serial and sharded flushes walk channels in the same ascending
// order through the same code path, so grant times, stat order and event
// scheduling are bit-identical at any lane count. See DESIGN.md §10.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"

#include "enoc/enoc_network.hpp"
#include "noc/network.hpp"
#include "onoc/params.hpp"
#include "onoc/token.hpp"

namespace sctm::onoc {

class OnocNetwork : public noc::Network {
 public:
  /// `topo` fixes the tile layout (time-of-flight distances) and, in
  /// path-setup mode, the control mesh. Mesh topologies only.
  OnocNetwork(Simulator& sim, std::string name, const noc::Topology& topo,
              const OnocParams& params);

  void inject(noc::Message msg) override;
  bool idle() const override;

  /// Session reset: arbitration state (token rings / channel horizons /
  /// receiver queues), the control mesh (when present), pending tables and
  /// id counters return to freshly-constructed state, retaining capacity.
  /// The owning Simulator must be reset first.
  void reset() override;

  /// Token-ring and SWMR arbitration shard per receive/source channel.
  bool partitioned_tick_supported() const override {
    return params_.arbitration == Arbitration::kTokenRing ||
           params_.arbitration == Arbitration::kSwmr;
  }
  void tick_partitioned(unsigned shard, unsigned nshards) override;
  void drain_ticks() override;
  void set_parallel_grain(unsigned grain) override { parallel_grain_ = grain; }

  /// Fault injection (DESIGN.md §11) on the optical plane: token loss
  /// (timeout-regenerated at the ring's home node), path-setup grant loss
  /// (receiver re-issues after the reservation timeout), and whole-transfer
  /// data corruption at the BER the eroded loss budget implies (ring thermal
  /// drift + laser degradation), recovered by NACK + re-arbitration under
  /// the spec's retry budget. The electrical control mesh itself runs
  /// fault-free — control-plane loss is modeled abstractly by the
  /// reservation-loss class. Token-loss draws come from per-channel child
  /// streams so sharded arbitration stays bit-identical to serial.
  void install_fault_model(const fault::FaultSpec& spec) override;

  /// BER the installed fault spec implies for the worst-case optical link
  /// (0 without a model or with drift/degradation unset).
  double optical_bit_error_rate() const { return optical_ber_; }

  const OnocParams& params() const { return params_; }
  const noc::Topology& topology() const { return topo_; }

  /// Control mesh (null in token mode); exposed for power accounting.
  const enoc::EnocNetwork* control_network() const { return ctrl_.get(); }

  /// Deterministic no-contention latency for a message (unit-test oracle and
  /// the "zero-load" reference): E/O + serialization + ToF + O/E.
  Cycle zero_load_latency(const noc::Message& msg) const;

  /// Total bytes moved over the optical data plane (power accounting).
  std::uint64_t data_bytes() const { return data_bytes_; }

 private:
  struct Pending {
    noc::Message msg;
    /// Grant re-issues consumed by reservation-loss faults for this setup.
    std::uint32_t resv_retries = 0;
  };
  enum class CtrlKind : std::uint64_t { kSetup = 1, kGrant = 2 };

  void route_to_arbitration(const noc::Message& msg);
  void start_transmission(noc::Message msg);
  void complete_transmission(noc::Message msg);
  void on_ctrl_deliver(const noc::Message& ctrl);
  void send_ctrl(CtrlKind kind, NodeId from, NodeId to, std::uint64_t pending_id);
  void send_grant(NodeId dst, std::uint64_t pending_id);
  void receiver_freed(NodeId dst);
  void queue_arbitration(const noc::Message& msg, NodeId channel);
  void arb_flush();

  noc::Topology topo_;
  OnocParams params_;

  // Token mode: one ring per destination channel.
  std::vector<TokenRing> tokens_;

  // SWMR mode: per-source channel busy horizon.
  std::vector<Cycle> src_channel_free_;

  /// One granted request: externally visible effects (the arb-wait stat add
  /// and the transmission-start event) recorded by a shard, applied at
  /// drain. Shards only read channel state they own, so this is the only
  /// crossing point.
  struct Grant {
    noc::Message msg;
    Cycle start = 0;
    Cycle wait = 0;
  };
  struct ArbShard {
    std::vector<Grant> grants;
    /// Token losses drawn by this shard's lanes; folded into the fault
    /// model's counter at drain (lanes never touch shared counters).
    std::uint64_t token_losses = 0;
  };

  /// Per-channel request queues for the current cycle (token: keyed by dst,
  /// SWMR: keyed by src), in arrival order — exactly the per-channel
  /// subsequence of the old immediate-acquire call order. Capacity retained.
  std::vector<std::vector<noc::Message>> arb_chan_;
  std::vector<ArbShard> arb_shards_;
  unsigned arb_shards_in_use_ = 0;
  std::size_t arb_queued_ = 0;  // requests queued this cycle (grain input)
  bool arb_scheduled_ = false;
  unsigned parallel_grain_ = 2;

  // Shared-pool mode: busy horizon per pooled channel.
  std::vector<Cycle> pool_free_;

  // Path-setup mode.
  std::unique_ptr<enoc::EnocNetwork> ctrl_;
  struct Receiver {
    bool busy = false;
    std::deque<std::uint64_t> queue;  // pending ids waiting for a grant
  };
  std::vector<Receiver> receivers_;
  /// Path-setup transactions in flight, keyed by pending id (allocation-free
  /// in steady state; see common/flat_map.hpp).
  FlatMap<std::uint64_t, Pending> pending_;
  std::uint64_t next_pending_id_ = 1;
  std::uint64_t next_ctrl_msg_id_ = 1;

  std::uint64_t in_flight_ = 0;
  std::uint64_t data_bytes_ = 0;
  /// Worst-case link BER under the installed fault spec (0 = error-free).
  /// Spec-derived, not session state: survives reset().
  double optical_ber_ = 0.0;

  Accumulator& stat_arb_wait_;
  Accumulator& stat_ser_;
  std::uint64_t& stat_transmissions_;
};

}  // namespace sctm::onoc
