#include "core/explore.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "core/experiment.hpp"
#include "core/replay_session.hpp"
#include "tracestore/format.hpp"

namespace sctm::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One worker: drains candidates off the shared counter with a single
/// long-lived ReplaySession. The session's spec-aware rebind diffs each
/// candidate against the bound network: equal specs reuse it through the
/// reset protocol, parameter-only changes on the same kind/topology patch
/// it in place, and everything else rebuilds — always keeping the session's
/// trace binding, dependency CSR and pass buffers.
void evaluate_candidates(const ReplayTrace& rt,
                         const std::vector<Candidate>& candidates,
                         const ReplayConfig& config,
                         std::atomic<std::size_t>& next,
                         std::vector<ExploreResult>& out) {
  std::optional<ReplaySession> session;
  for (;;) {
    const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
    if (i >= candidates.size()) return;
    const auto t0 = std::chrono::steady_clock::now();
    const NetSpec& spec = candidates[i].spec;
    if (!session) {
      session.emplace(rt, spec, config);
    } else {
      session->rebind(spec);
    }
    const ReplayResult& res = session->run();
    const Histogram h = res.latency_histogram();
    out[i].name = candidates[i].name;
    out[i].runtime = res.runtime;
    out[i].mean_latency = h.mean();
    out[i].p99_latency = h.percentile(0.99);
    out[i].iterations = res.iterations;
    out[i].wall_seconds = seconds_since(t0);
  }
}

/// "<source>:<line>: " / "<source>: " prefix for candidate-config errors.
std::string at(const std::string& source, const Config& cfg,
               const std::string& key) {
  if (const auto line = cfg.source_line(key)) {
    return source + ":" + std::to_string(*line) + ": ";
  }
  return source + ": ";
}

}  // namespace

ExploreConfig explore_config_from(const Config& cfg,
                                  const ExploreConfig& base) {
  ExploreConfig out = base;
  for (const auto& key : cfg.keys()) {
    constexpr std::string_view kPrefix = "explore.";
    if (key.rfind(kPrefix, 0) != 0) continue;
    if (key != "explore.screen.top_k") {
      throw std::runtime_error(at("explore config", cfg, key) +
                               "unknown key '" + key +
                               "' (known: explore.screen.top_k)");
    }
  }
  if (cfg.contains("explore.screen.top_k")) {
    const std::int64_t k = cfg.get_int("explore.screen.top_k");
    if (k < 1) {
      throw std::runtime_error(
          at("explore config", cfg, "explore.screen.top_k") +
          "explore.screen.top_k must be >= 1 (a screen that confirms no "
          "candidate is a config bug), got " + std::to_string(k));
    }
    out.screen_top_k = static_cast<std::size_t>(k);
  }
  return out;
}

std::vector<Candidate> candidates_from_config(const Config& cfg,
                                              const std::string& source) {
  std::map<std::string, Config> subs;       // name -> per-candidate config
  std::map<std::string, std::string> anchor;  // name -> first source key
  for (const auto& key : cfg.keys()) {
    constexpr std::string_view kPrefix = "candidate.";
    if (key.rfind("explore.", 0) == 0) continue;  // explore_config_from's
    if (key.rfind(kPrefix, 0) != 0) {
      throw std::runtime_error(at(source, cfg, key) + "unknown key '" + key +
                               "' (expected candidate.<name>.<param> or "
                               "explore.*)");
    }
    const std::string rest = key.substr(kPrefix.size());
    const auto dot = rest.find('.');
    if (dot == std::string::npos || dot == 0) {
      throw std::runtime_error(at(source, cfg, key) +
                               "expected candidate.<name>.<param>, got '" +
                               key + "'");
    }
    const std::string name = rest.substr(0, dot);
    subs[name].set(rest.substr(dot + 1), cfg.get_string(key));
    anchor.emplace(name, key);  // keeps the first (lowest) key per candidate
  }
  if (subs.empty()) {
    throw std::runtime_error(
        source + ": no candidate.<name>.* keys — an empty design space is a "
                 "config error, not an empty ranking");
  }
  std::vector<Candidate> out;
  out.reserve(subs.size());
  for (auto& [name, sub] : subs) {
    try {
      out.push_back({name, netspec_from_config(sub, "net")});
    } catch (const std::exception& e) {
      throw std::runtime_error(at(source, cfg, anchor.at(name)) +
                               "candidate '" + name + "': " + e.what());
    }
  }
  return out;
}

std::vector<ExploreResult> explore(const ReplayTrace& rt,
                                   const std::vector<Candidate>& candidates,
                                   const ExploreConfig& cfg) {
  if (candidates.empty()) {
    throw std::invalid_argument(
        "explore: empty candidate list (nothing to rank)");
  }
  std::vector<ExploreResult> out(candidates.size());

  if (rt.empty()) {
    // Mirror replay()'s empty-trace contract: no network is ever built.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i].name = candidates[i].name;
    }
  } else {
    // Same `--threads 0` resolution as WorkerPool lane counts (S2: one
    // convention everywhere), then clamped to the available work.
    unsigned n = static_cast<unsigned>(std::min<std::size_t>(
        resolve_threads(cfg.threads), candidates.size()));
    std::atomic<std::size_t> next{0};
    if (n <= 1) {
      evaluate_candidates(rt, candidates, cfg.replay, next, out);
    } else {
      // Hand-rolled pool (parallel_for has no per-worker state): each worker
      // owns one session; the first exception wins and is rethrown after
      // every worker has joined.
      std::mutex err_mu;
      std::exception_ptr first_error;
      auto worker = [&] {
        try {
          evaluate_candidates(rt, candidates, cfg.replay, next, out);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
          // Let the counter drain so sibling workers exit promptly.
          next.store(candidates.size(), std::memory_order_relaxed);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(n);
      for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
      for (auto& t : pool) t.join();
      if (first_error) std::rethrow_exception(first_error);
    }
  }

  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.runtime != b.runtime) return a.runtime < b.runtime;
    return a.name < b.name;
  });
  return out;
}

std::vector<ExploreResult> explore(const trace::Trace& trace,
                                   const std::vector<Candidate>& candidates,
                                   const ReplayConfig& config,
                                   unsigned threads) {
  if (candidates.empty()) {
    throw std::invalid_argument(
        "explore: empty candidate list (nothing to rank)");
  }
  // Ingest (and validate) the trace once; every worker replays the same
  // read-only ReplayTrace.
  const ReplayTrace rt(trace);
  ExploreConfig cfg;
  cfg.replay = config;
  cfg.threads = threads;
  return explore(rt, candidates, cfg);
}

RunMetrics metrics_for_explore(const ReplayTrace& rt,
                               const std::vector<Candidate>& candidates,
                               const ExploreConfig& cfg,
                               const std::vector<ExploreResult>& results,
                               std::string tool, std::string created) {
  RunMetrics m;
  m.manifest.tool = std::move(tool);
  m.manifest.created = std::move(created);
  m.manifest.set("trace", trace_id(rt));
  // Content hash of the exact trace (tracestore catalog identity): a
  // screened ranking is attributable to one trace, not just its app name.
  m.manifest.set("trace_content_hash", tracestore::hash_hex(rt.content_hash()));
  m.manifest.set("candidates", static_cast<std::int64_t>(candidates.size()));
  m.manifest.set("mode", to_string(cfg.replay.mode));
  m.manifest.set("screen_top_k",
                 static_cast<std::int64_t>(cfg.screen_top_k));

  JsonWriter results_json;
  results_json.begin_object();
  results_json.key("ranking");
  results_json.begin_array();
  for (const auto& r : results) {
    results_json.begin_object();
    results_json.key("name");
    results_json.value(r.name);
    results_json.key("replayed");
    results_json.value(r.replayed);
    if (r.replayed) {
      results_json.key("runtime_cycles");
      results_json.value(std::uint64_t{r.runtime});
      results_json.key("latency_mean");
      results_json.value(r.mean_latency);
      results_json.key("latency_p99");
      results_json.value(std::uint64_t{r.p99_latency});
      results_json.key("iterations");
      results_json.value(static_cast<std::int64_t>(r.iterations));
      results_json.key("wall_seconds");
      results_json.value(r.wall_seconds);
    }
    if (r.analytic_rank != 0) {
      results_json.key("analytic_rank");
      results_json.value(static_cast<std::uint64_t>(r.analytic_rank));
      results_json.key("est_runtime");
      results_json.value(r.est_runtime);
      results_json.key("est_latency_mean");
      results_json.value(r.est_mean_latency);
      results_json.key("est_latency_p99");
      results_json.value(r.est_p99);
      results_json.key("analytic_seconds");
      results_json.value(r.analytic_seconds);
    }
    results_json.end_object();
  }
  results_json.end_array();
  results_json.end_object();
  m.set_results_json(std::move(results_json).str());
  return m;
}

}  // namespace sctm::core
