// Flat key-value configuration store.
//
// All simulator parameters flow through a Config so that experiments are
// reproducible from a single text blob. Keys are dotted paths
// ("enoc.vc_count"), values are typed on read. Unknown keys are an error on
// read unless a default is supplied; reads are recorded so a run can dump the
// exact configuration it used (consumed_dump), which the bench harness prints
// for table R-T1.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace sctm {

class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines. '#' starts a comment; blank lines ignored.
  /// Throws std::runtime_error on malformed lines and on a key assigned
  /// twice (the error names both lines): a silent first-or-last-wins would
  /// turn a copy-paste slip in an experiment file into a quietly different
  /// run. Programmatic overrides go through set()/merge(), which keep their
  /// last-wins semantics.
  static Config from_string(std::string_view text);

  /// Loads from a file; throws std::runtime_error when unreadable.
  static Config from_file(const std::string& path);

  void set(std::string key, std::string value);
  void set_int(std::string key, std::int64_t value);
  void set_double(std::string key, double value);
  void set_bool(std::string key, bool value);

  bool contains(std::string_view key) const;

  /// Typed getters. The no-default overloads throw std::runtime_error when
  /// the key is absent; all throw when the value fails to parse.
  std::string get_string(std::string_view key) const;
  std::string get_string(std::string_view key, std::string_view def) const;
  std::int64_t get_int(std::string_view key) const;
  std::int64_t get_int(std::string_view key, std::int64_t def) const;
  double get_double(std::string_view key) const;
  double get_double(std::string_view key, double def) const;
  bool get_bool(std::string_view key) const;
  bool get_bool(std::string_view key, bool def) const;

  /// Merges `other` on top of this config (other wins on conflicts).
  void merge(const Config& other);

  /// Validates every key under `prefix` ("fault.") against an allowed
  /// vocabulary (suffixes, without the prefix). Throws std::runtime_error
  /// naming the offending key — and its source line when this config was
  /// parsed from text — so a typo'd key hard-errors instead of silently
  /// meaning "use the default". No-op for configs with no such keys.
  void require_keys_in(std::string_view prefix,
                       std::initializer_list<std::string_view> allowed) const;

  /// Source line of `key` when this config was parsed from text (1-based);
  /// nullopt for keys set programmatically. Error attribution for consumers
  /// that validate whole namespaces (candidate lists, screen settings).
  std::optional<std::size_t> source_line(std::string_view key) const;

  /// All keys in sorted order.
  std::vector<std::string> keys() const;

  /// "key = value" lines for every key that has been *read* so far, sorted.
  std::string consumed_dump() const;

  /// "key = value" lines for every key, sorted.
  std::string dump() const;

 private:
  std::optional<std::string> lookup(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
  /// Source line of each key parsed from text (error attribution). Keys set
  /// programmatically have no entry.
  std::map<std::string, std::size_t, std::less<>> lines_;
  mutable std::set<std::string, std::less<>> consumed_;
};

}  // namespace sctm
