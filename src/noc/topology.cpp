#include "noc/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace sctm::noc {
namespace {

/// BFS hop counts from `src` over the packed neighbor table. `out` is the
/// caller's scratch (distance per node, -1 unreachable); `queue` likewise.
void bfs_from(const std::vector<NodeId>& nbr, int stride, int nodes,
              NodeId src, std::vector<int>& out, std::vector<NodeId>& queue) {
  out.assign(static_cast<std::size_t>(nodes), -1);
  queue.clear();
  out[static_cast<std::size_t>(src)] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const int du = out[static_cast<std::size_t>(u)];
    const std::size_t row = static_cast<std::size_t>(u) * stride;
    for (int d = 0; d < stride; ++d) {
      const NodeId v = nbr[row + static_cast<std::size_t>(d)];
      if (v == kInvalidNode || out[static_cast<std::size_t>(v)] >= 0) continue;
      out[static_cast<std::size_t>(v)] = du + 1;
      queue.push_back(v);
    }
  }
}

}  // namespace

Topology::Topology(Kind kind, int dx, int dy, int dz)
    : kind_(kind),
      dx_(dx),
      dy_(dy),
      dz_(dz),
      nodes_(dx * dy * dz),
      radix_(0) {}

Topology Topology::mesh(int width, int height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Topology: non-positive dimension");
  }
  Topology t(Kind::kMesh, width, height, 1);
  t.radix_ = 4;
  t.build_graph();
  return t;
}

Topology Topology::torus(int width, int height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Topology: non-positive dimension");
  }
  Topology t(Kind::kTorus, width, height, 1);
  t.radix_ = 4;
  t.build_graph();
  return t;
}

Topology Topology::ring(int nodes) {
  if (nodes < 2) throw std::invalid_argument("Topology: ring needs >= 2 nodes");
  Topology t(Kind::kRing, nodes, 1, 1);
  t.radix_ = 2;
  t.build_graph();
  return t;
}

Topology Topology::mesh3d(int x, int y, int z) {
  if (x <= 0 || y <= 0 || z <= 0) {
    throw std::invalid_argument("Topology: non-positive dimension");
  }
  Topology t(Kind::kMesh3D, x, y, z);
  t.radix_ = 6;
  t.build_graph();
  return t;
}

Topology Topology::torus3d(int x, int y, int z) {
  if (x <= 0 || y <= 0 || z <= 0) {
    throw std::invalid_argument("Topology: non-positive dimension");
  }
  Topology t(Kind::kTorus3D, x, y, z);
  t.radix_ = 6;
  t.build_graph();
  return t;
}

/// Lattice adjacency for the regular kinds, packed into the shared tables:
/// the coordinate formulas run once here, and every later query is a row
/// lookup — the same code path file fabrics use.
void Topology::build_graph() {
  auto g = std::make_shared<Graph>();
  g->stride = radix_;
  const std::size_t cells =
      static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(radix_);
  g->nbr.assign(cells, kInvalidNode);
  g->arrival.assign(cells, -1);
  g->axis.assign(cells, 0);
  g->wrap.assign(cells, 0);
  g->degree.assign(static_cast<std::size_t>(nodes_),
                   static_cast<std::int16_t>(radix_));

  const bool wraps = kind_ == Kind::kTorus || kind_ == Kind::kTorus3D ||
                     kind_ == Kind::kRing;
  for (NodeId n = 0; n < nodes_; ++n) {
    const std::size_t row =
        static_cast<std::size_t>(n) * static_cast<std::size_t>(radix_);
    if (kind_ == Kind::kRing) {
      g->nbr[row + kRingCw] = (n + 1) % nodes_;
      g->nbr[row + kRingCcw] = (n + nodes_ - 1) % nodes_;
      g->arrival[row + kRingCw] = kRingCcw;
      g->arrival[row + kRingCcw] = kRingCw;
      g->wrap[row + kRingCw] = (n == nodes_ - 1);
      g->wrap[row + kRingCcw] = (n == 0);
      continue;
    }
    const Coord c = coords(n);
    for (int dir = 0; dir < radix_; ++dir) {
      Coord t = c;
      bool crossed = false;
      switch (dir) {
        case kEast: t.x += 1; crossed = (c.x == dx_ - 1); break;
        case kWest: t.x -= 1; crossed = (c.x == 0); break;
        case kNorth: t.y -= 1; crossed = (c.y == 0); break;
        case kSouth: t.y += 1; crossed = (c.y == dy_ - 1); break;
        case kUp: t.z += 1; crossed = (c.z == dz_ - 1); break;
        case kDown: t.z -= 1; crossed = (c.z == 0); break;
      }
      g->axis[row + static_cast<std::size_t>(dir)] =
          static_cast<std::int8_t>(dir >> 1);
      if (wraps) {
        t.x = (t.x + dx_) % dx_;
        t.y = (t.y + dy_) % dy_;
        t.z = (t.z + dz_) % dz_;
        g->wrap[row + static_cast<std::size_t>(dir)] = crossed;
      } else if (t.x < 0 || t.x >= dx_ || t.y < 0 || t.y >= dy_ || t.z < 0 ||
                 t.z >= dz_) {
        continue;  // mesh edge: the port slot stays disconnected
      }
      g->nbr[row + static_cast<std::size_t>(dir)] = node_at(t);
      g->arrival[row + static_cast<std::size_t>(dir)] =
          static_cast<std::int16_t>(opposite(dir));
    }
  }
  graph_ = std::move(g);
}

// ---------------------------------------------------------------------------
// File-defined fabrics.

Topology Topology::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error(path + ": cannot open topology file");
  }
  return parse(in, path);
}

Topology Topology::from_text(const std::string& text,
                             const std::string& source) {
  std::istringstream in(text);
  return parse(in, source);
}

Topology Topology::parse(std::istream& in, const std::string& source) {
  const auto at = [&source](int line) {
    return source + ":" + std::to_string(line) + ": ";
  };
  int nodes = -1;
  // Adjacency under construction: per node, (neighbor, port on neighbor).
  std::vector<std::vector<std::pair<NodeId, std::int16_t>>> adj;
  std::vector<Coord> coords;
  std::vector<std::uint8_t> coord_seen;
  std::vector<std::vector<NodeId>> edge_seen;  // smaller endpoint -> peers
  int edges = 0;

  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only line

    const auto want_int = [&](const char* what) {
      long long v = 0;
      if (!(ls >> v)) {
        throw std::runtime_error(at(lineno) + "expected " + what + " after '" +
                                 word + "'");
      }
      return v;
    };
    const auto node_arg = [&](const char* what) {
      const long long v = want_int(what);
      if (v < 0 || v >= nodes) {
        throw std::runtime_error(at(lineno) + what + " " + std::to_string(v) +
                                 " out of range [0, " + std::to_string(nodes) +
                                 ")");
      }
      return static_cast<NodeId>(v);
    };

    if (word == "nodes") {
      if (nodes >= 0) {
        throw std::runtime_error(at(lineno) + "duplicate 'nodes' directive");
      }
      const long long v = want_int("node count");
      if (v < 1 || v > 65535) {
        throw std::runtime_error(at(lineno) + "node count must be in "
                                 "[1, 65535], got " + std::to_string(v));
      }
      nodes = static_cast<int>(v);
      adj.resize(static_cast<std::size_t>(nodes));
      coords.resize(static_cast<std::size_t>(nodes));
      for (NodeId n = 0; n < nodes; ++n) {
        coords[static_cast<std::size_t>(n)] = Coord{static_cast<int>(n), 0, 0};
      }
      coord_seen.assign(static_cast<std::size_t>(nodes), 0);
      edge_seen.resize(static_cast<std::size_t>(nodes));
      continue;
    }
    if (nodes < 0) {
      throw std::runtime_error(at(lineno) +
                               "'nodes <count>' must come before '" + word +
                               "'");
    }
    if (word == "edge") {
      const NodeId a = node_arg("edge endpoint");
      const NodeId b = node_arg("edge endpoint");
      if (a == b) {
        throw std::runtime_error(at(lineno) + "self-edge at node " +
                                 std::to_string(a));
      }
      const NodeId lo = std::min(a, b);
      const NodeId hi = std::max(a, b);
      auto& peers = edge_seen[static_cast<std::size_t>(lo)];
      if (std::find(peers.begin(), peers.end(), hi) != peers.end()) {
        throw std::runtime_error(at(lineno) + "duplicate edge " +
                                 std::to_string(a) + " " + std::to_string(b));
      }
      peers.push_back(hi);
      const auto pa = static_cast<std::int16_t>(adj[static_cast<std::size_t>(a)].size());
      const auto pb = static_cast<std::int16_t>(adj[static_cast<std::size_t>(b)].size());
      adj[static_cast<std::size_t>(a)].push_back({b, pb});
      adj[static_cast<std::size_t>(b)].push_back({a, pa});
      ++edges;
      continue;
    }
    if (word == "coord") {
      const NodeId n = node_arg("node");
      if (coord_seen[static_cast<std::size_t>(n)]) {
        throw std::runtime_error(at(lineno) + "duplicate coord for node " +
                                 std::to_string(n));
      }
      coord_seen[static_cast<std::size_t>(n)] = 1;
      Coord c;
      c.x = static_cast<int>(want_int("x coordinate"));
      c.y = static_cast<int>(want_int("y coordinate"));
      long long z = 0;
      if (ls >> z) c.z = static_cast<int>(z);
      if (c.x < 0 || c.y < 0 || c.z < 0) {
        throw std::runtime_error(at(lineno) + "negative coordinate for node " +
                                 std::to_string(n));
      }
      coords[static_cast<std::size_t>(n)] = c;
      continue;
    }
    throw std::runtime_error(at(lineno) + "unknown directive '" + word +
                             "' (known: nodes, edge, coord)");
  }
  if (nodes < 0) {
    throw std::runtime_error(source + ": missing 'nodes <count>' directive");
  }
  int radix = 0;
  for (NodeId n = 0; n < nodes; ++n) {
    const int deg = static_cast<int>(adj[static_cast<std::size_t>(n)].size());
    if (deg == 0 && nodes > 1) {
      throw std::runtime_error(source + ": node " + std::to_string(n) +
                               " has no edges (fabric must be connected)");
    }
    radix = std::max(radix, deg);
  }

  Topology t(Kind::kFile, 1, 1, 1);
  t.nodes_ = nodes;
  t.radix_ = std::max(radix, 1);
  auto g = std::make_shared<Graph>();
  g->stride = t.radix_;
  const std::size_t cells =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(t.radix_);
  g->nbr.assign(cells, kInvalidNode);
  g->arrival.assign(cells, -1);
  g->axis.assign(cells, 0);
  g->degree.assign(static_cast<std::size_t>(nodes), 0);
  for (NodeId n = 0; n < nodes; ++n) {
    const auto& row = adj[static_cast<std::size_t>(n)];
    g->degree[static_cast<std::size_t>(n)] =
        static_cast<std::int16_t>(row.size());
    for (std::size_t p = 0; p < row.size(); ++p) {
      g->nbr[static_cast<std::size_t>(n) * t.radix_ + p] = row[p].first;
      g->arrival[static_cast<std::size_t>(n) * t.radix_ + p] = row[p].second;
    }
  }
  g->coords = std::move(coords);
  for (const Coord& c : g->coords) {
    t.dx_ = std::max(t.dx_, c.x + 1);
    t.dy_ = std::max(t.dy_, c.y + 1);
    t.dz_ = std::max(t.dz_, c.z + 1);
  }

  // All-pairs BFS table; doubles as the connectivity check.
  g->dist.assign(static_cast<std::size_t>(nodes) *
                     static_cast<std::size_t>(nodes),
                 0);
  std::vector<int> d;
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < nodes; ++s) {
    bfs_from(g->nbr, t.radix_, nodes, s, d, queue);
    for (NodeId v = 0; v < nodes; ++v) {
      if (d[static_cast<std::size_t>(v)] < 0) {
        throw std::runtime_error(source + ": fabric is disconnected (node " +
                                 std::to_string(v) + " unreachable from node " +
                                 std::to_string(s) + ")");
      }
      g->dist[static_cast<std::size_t>(s) * nodes +
              static_cast<std::size_t>(v)] =
          static_cast<std::uint16_t>(d[static_cast<std::size_t>(v)]);
    }
  }
  t.graph_ = std::move(g);
  return t;
}

// ---------------------------------------------------------------------------
// Queries.

int Topology::radix(NodeId n) const {
  if (!valid_node(n)) return 0;
  return graph_->degree[static_cast<std::size_t>(n)];
}

Coord Topology::coords(NodeId n) const {
  if (kind_ == Kind::kFile) {
    if (!valid_node(n)) return {};
    return graph_->coords[static_cast<std::size_t>(n)];
  }
  const int i = static_cast<int>(n);
  return Coord{i % dx_, (i / dx_) % dy_, i / (dx_ * dy_)};
}

NodeId Topology::node_at(Coord c) const {
  if (kind_ == Kind::kFile) {
    for (NodeId n = 0; n < nodes_; ++n) {
      if (graph_->coords[static_cast<std::size_t>(n)] == c) return n;
    }
    return kInvalidNode;
  }
  return (c.z * dy_ + c.y) * dx_ + c.x;
}

NodeId Topology::neighbor(NodeId n, int dir) const {
  if (!valid_node(n) || dir < 0 || dir >= radix_) return kInvalidNode;
  return graph_->nbr[static_cast<std::size_t>(n) * radix_ +
                     static_cast<std::size_t>(dir)];
}

int Topology::arrival_port(NodeId n, int dir) const {
  if (!valid_node(n) || dir < 0 || dir >= radix_) return -1;
  return graph_->arrival[static_cast<std::size_t>(n) * radix_ +
                         static_cast<std::size_t>(dir)];
}

int Topology::opposite(int dir) {
  switch (dir) {
    case kEast: return kWest;
    case kWest: return kEast;
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    case kUp: return kDown;
    case kDown: return kUp;
    default: return -1;
  }
}

bool Topology::wrap_link(NodeId n, int dir) const {
  if (!valid_node(n) || dir < 0 || dir >= radix_) return false;
  if (graph_->wrap.empty()) return false;
  return graph_->wrap[static_cast<std::size_t>(n) * radix_ +
                      static_cast<std::size_t>(dir)] != 0;
}

int Topology::port_axis(NodeId n, int dir) const {
  if (!valid_node(n) || dir < 0 || dir >= radix_) return 0;
  return graph_->axis[static_cast<std::size_t>(n) * radix_ +
                      static_cast<std::size_t>(dir)];
}

int Topology::distance(NodeId a, NodeId b) const {
  if (kind_ == Kind::kFile) {
    if (!valid_node(a) || !valid_node(b)) return 0;
    return graph_->dist[static_cast<std::size_t>(a) * nodes_ +
                        static_cast<std::size_t>(b)];
  }
  if (kind_ == Kind::kRing) {
    const int fwd = (static_cast<int>(b) - a + nodes_) % nodes_;
    return std::min(fwd, nodes_ - fwd);
  }
  const Coord ca = coords(a);
  const Coord cb = coords(b);
  int dx = std::abs(ca.x - cb.x);
  int dy = std::abs(ca.y - cb.y);
  int dz = std::abs(ca.z - cb.z);
  if (kind_ == Kind::kTorus || kind_ == Kind::kTorus3D) {
    dx = std::min(dx, dx_ - dx);
    dy = std::min(dy, dy_ - dy);
    dz = std::min(dz, dz_ - dz);
  }
  return dx + dy + dz;
}

double Topology::mean_distance() const {
  std::uint64_t total = 0;
  std::vector<int> d;
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < nodes_; ++s) {
    bfs_from(graph_->nbr, radix_, nodes_, s, d, queue);
    for (NodeId v = 0; v < nodes_; ++v) {
      total += static_cast<std::uint64_t>(d[static_cast<std::size_t>(v)]);
    }
  }
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(nodes_) * (nodes_ - 1);
  return pairs ? static_cast<double>(total) / static_cast<double>(pairs) : 0.0;
}

int Topology::diameter() const {
  int best = 0;
  std::vector<int> d;
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < nodes_; ++s) {
    bfs_from(graph_->nbr, radix_, nodes_, s, d, queue);
    for (NodeId v = 0; v < nodes_; ++v) {
      best = std::max(best, d[static_cast<std::size_t>(v)]);
    }
  }
  return best;
}

int Topology::link_count() const {
  int live = 0;
  for (const NodeId v : graph_->nbr) {
    if (v != kInvalidNode) ++live;
  }
  return live;
}

std::string Topology::describe() const {
  switch (kind_) {
    case Kind::kMesh:
      return "mesh " + std::to_string(dx_) + "x" + std::to_string(dy_);
    case Kind::kTorus:
      return "torus " + std::to_string(dx_) + "x" + std::to_string(dy_);
    case Kind::kRing:
      return "ring " + std::to_string(nodes_);
    case Kind::kMesh3D:
      return "mesh3d " + std::to_string(dx_) + "x" + std::to_string(dy_) +
             "x" + std::to_string(dz_);
    case Kind::kTorus3D:
      return "torus3d " + std::to_string(dx_) + "x" + std::to_string(dy_) +
             "x" + std::to_string(dz_);
    case Kind::kFile:
      return "file " + std::to_string(nodes_) + " nodes " +
             std::to_string(link_count() / 2) + " edges";
  }
  return "?";
}

bool Topology::operator==(const Topology& other) const {
  if (kind_ != other.kind_ || dx_ != other.dx_ || dy_ != other.dy_ ||
      dz_ != other.dz_ || nodes_ != other.nodes_) {
    return false;
  }
  if (kind_ != Kind::kFile) return true;
  if (graph_ == other.graph_) return true;
  return graph_->nbr == other.graph_->nbr &&
         graph_->coords == other.graph_->coords;
}

}  // namespace sctm::noc
