#include "common/parallel.hpp"

#include <algorithm>

namespace sctm {

unsigned default_parallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned resolve_threads(unsigned requested) {
  return requested == 0 ? default_parallelism() : std::max(1u, requested);
}

namespace detail {

void parallel_for_impl(std::size_t n, void (*thunk)(void*, std::size_t),
                       void* ctx, unsigned threads) {
  if (n == 0) return;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(resolve_threads(threads), n));
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) thunk(ctx, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        thunk(ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

namespace {

// Spin budget before a worker yields, and yield budget before it takes the
// condvar. Phases are microseconds apart while a clocked network runs, so
// the spin usually catches the next epoch; the ladder only matters across
// idle stretches (and on machines with fewer cores than lanes, where
// spinning would just fight the scheduler).
constexpr int kSpinIters = 256;
constexpr int kYieldIters = 64;

}  // namespace

WorkerPool::WorkerPool(unsigned threads) : lanes_(resolve_threads(threads)) {
  threads_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane) {
    threads_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::invoke(unsigned lane) {
  try {
    thunk_(ctx_, lane);
  } catch (...) {
    std::lock_guard<std::mutex> lock(err_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void WorkerPool::worker_loop(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for the next epoch (or shutdown): spin, yield, then sleep.
    bool have_job = false;
    for (int i = 0; i < kSpinIters && !have_job; ++i) {
      have_job = epoch_.load(std::memory_order_acquire) != seen;
    }
    for (int i = 0; i < kYieldIters && !have_job; ++i) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
      have_job = epoch_.load(std::memory_order_acquire) != seen;
    }
    if (!have_job) {
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (epoch_.load(std::memory_order_seq_cst) == seen &&
          !stop_.load(std::memory_order_seq_cst)) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return epoch_.load(std::memory_order_acquire) != seen ||
                 stop_.load(std::memory_order_acquire);
        });
      }
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (stop_.load(std::memory_order_acquire) &&
        epoch_.load(std::memory_order_acquire) == seen) {
      return;
    }
    seen = epoch_.load(std::memory_order_acquire);
    invoke(lane);
    done_.fetch_add(1, std::memory_order_release);
  }
}

void WorkerPool::run_impl(void (*thunk)(void*, unsigned), void* ctx) {
  if (lanes_ == 1) {
    thunk(ctx, 0);  // inline; exceptions propagate directly
    return;
  }
  thunk_ = thunk;
  ctx_ = ctx;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
    }
    cv_.notify_all();
  }

  invoke(0);  // the caller is lane 0

  // Barrier: every resident lane must finish before run() returns. Spin
  // then yield — workers are either mid-phase (finishing momentarily) or
  // this host is oversubscribed, in which case yielding lets them run.
  const unsigned resident = lanes_ - 1;
  int spins = 0;
  while (done_.load(std::memory_order_acquire) != resident) {
    if (++spins > kSpinIters) std::this_thread::yield();
  }

  if (first_error_) {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(err_mu_);
      err = first_error_;
      first_error_ = nullptr;
    }
    std::rethrow_exception(err);
  }
}

}  // namespace sctm
