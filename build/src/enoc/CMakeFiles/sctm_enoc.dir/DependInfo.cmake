
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enoc/arbiter.cpp" "src/enoc/CMakeFiles/sctm_enoc.dir/arbiter.cpp.o" "gcc" "src/enoc/CMakeFiles/sctm_enoc.dir/arbiter.cpp.o.d"
  "/root/repo/src/enoc/enoc_network.cpp" "src/enoc/CMakeFiles/sctm_enoc.dir/enoc_network.cpp.o" "gcc" "src/enoc/CMakeFiles/sctm_enoc.dir/enoc_network.cpp.o.d"
  "/root/repo/src/enoc/params.cpp" "src/enoc/CMakeFiles/sctm_enoc.dir/params.cpp.o" "gcc" "src/enoc/CMakeFiles/sctm_enoc.dir/params.cpp.o.d"
  "/root/repo/src/enoc/power.cpp" "src/enoc/CMakeFiles/sctm_enoc.dir/power.cpp.o" "gcc" "src/enoc/CMakeFiles/sctm_enoc.dir/power.cpp.o.d"
  "/root/repo/src/enoc/router.cpp" "src/enoc/CMakeFiles/sctm_enoc.dir/router.cpp.o" "gcc" "src/enoc/CMakeFiles/sctm_enoc.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/sctm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sctm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
