// Accuracy metrics: how close a trace-replay run comes to execution-driven
// ground truth on the same target network.
//
// Per-message comparison across *different executions* is ill-posed (timing
// feedback perturbs the message stream), so accuracy is judged on the
// aggregates the paper reports: mean/percentile packet latency and
// application runtime.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "core/replay.hpp"
#include "trace/record.hpp"

namespace sctm::core {

struct RunSummary {
  std::uint64_t messages = 0;
  double mean_latency = 0.0;
  Cycle p50_latency = 0;
  Cycle p99_latency = 0;
  Cycle runtime = 0;
};

/// Summary of an execution-driven run (from its capture trace).
RunSummary summarize(const trace::Trace& trace);

/// Summary of a replay run.
RunSummary summarize(const trace::Trace& trace, const ReplayResult& replayed);

struct ErrorReport {
  // Each component is |model - truth| / truth, except when truth == 0:
  // relative error is then undefined, and the component holds the *absolute*
  // error |model| instead (exact match still scores 0). The fallback keeps
  // worst() monotone in the size of the miss — a degenerate zero-truth
  // metric can no longer hide an arbitrarily large regression behind a
  // constant score.
  double mean_latency_err = 0.0;
  double p50_latency_err = 0.0;
  double p99_latency_err = 0.0;
  double runtime_err = 0.0;

  /// Largest of the component errors (headline number for R-F1).
  double worst() const;
};

/// Relative errors of `model` against `truth` (both on the target network).
ErrorReport compare(const RunSummary& truth, const RunSummary& model);

}  // namespace sctm::core
