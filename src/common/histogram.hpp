// Latency histogram with exact percentiles.
//
// Packet latencies are small integers (cycles), so we keep exact counts in a
// growable dense array up to a cap and a sparse overflow map beyond it. This
// gives exact p50/p95/p99 — important because the accuracy experiments
// (R-F1/R-F2) compare tail latencies between simulation modes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sctm {

class JsonWriter;

class Histogram {
 public:
  /// `dense_limit` bounds the dense region; samples >= limit go to the sparse
  /// overflow map (still exact, just slower).
  explicit Histogram(std::uint64_t dense_limit = 4096);

  void add(std::uint64_t value);

  /// Adds `n` samples equal to `value` in O(1) (amortized).
  void add_count(std::uint64_t value, std::uint64_t n);

  /// Folds `other` into this histogram count-wise: O(distinct values in
  /// other), not O(total sample count). Values are re-bucketed under *this*
  /// histogram's dense limit, so operands with mismatched dense limits merge
  /// exactly. Result is bit-identical to replaying every sample via add().
  void merge(const Histogram& other);

  void reset();

  std::uint64_t count() const { return count_; }
  double mean() const;
  std::uint64_t min() const;
  std::uint64_t max() const;

  /// Exact percentile: smallest value v such that at least q*count samples
  /// are <= v; q=0.5 is the median. Every input is defined: an empty
  /// histogram returns 0, q is clamped to [0,1] (q <= 0 gives the smallest
  /// recorded value, q >= 1 the largest), and a NaN q behaves like q = 0.
  std::uint64_t percentile(double q) const;

  /// Count of samples exactly equal to `value`.
  std::uint64_t count_at(std::uint64_t value) const;

  /// One-line summary "n=... mean=... p50=... p95=... p99=... max=...".
  std::string summary() const;

  /// Emits {"count","mean","min","max","p50","p95","p99"} as the writer's
  /// next value; `with_buckets` appends "buckets": [[value, count], ...]
  /// (ascending by value — the exact distribution, not a lossy rebin).
  void write_json(JsonWriter& w, bool with_buckets = false) const;

 private:
  std::uint64_t dense_limit_;
  std::vector<std::uint64_t> dense_;
  std::map<std::uint64_t, std::uint64_t> overflow_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_lo_ = 0;  // running sum (64-bit is ample for our scales)
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace sctm
