// Case-study example: run the same parallel applications on the electrical
// baseline mesh and on both ONOC variants, execution-driven, and report
// application runtime, packet latency and network energy side by side.
//
// This is the "simple case-study" of the paper's abstract in example form
// (the full sweep lives in bench/tab_casestudy.cpp).
//
// Build & run:  ./build/examples/onoc_vs_enoc
#include <cstdio>
#include <memory>

#include "common/table.hpp"
#include "core/driver.hpp"
#include "core/error_metrics.hpp"
#include "enoc/power.hpp"
#include "onoc/power.hpp"

namespace {

using namespace sctm;

struct NetResult {
  Cycle runtime;
  double mean_latency;
  double energy_uj;
};

NetResult run_on(const fullsys::AppParams& app, const core::NetSpec& spec) {
  Simulator sim;
  auto net = core::make_factory(spec)(sim);
  fullsys::CmpSystem cmp(sim, "cmp", *net, spec.topo, {},
                         fullsys::build_app(app));
  const Cycle runtime = cmp.run_to_completion();

  double energy_pj = 0;
  if (spec.kind == core::NetKind::kEnoc) {
    auto& e = static_cast<enoc::EnocNetwork&>(*net);
    energy_pj = enoc::compute_enoc_energy(sim.stats(), e.name(),
                                          e.topology().node_count(),
                                          e.active_cycles(), {})
                    .total_pj();
  } else {
    auto& o = static_cast<onoc::OnocNetwork&>(*net);
    energy_pj = onoc::compute_onoc_energy(o, runtime, sim.stats()).total_pj();
  }
  return NetResult{runtime, net->latency_histogram().mean(), energy_pj * 1e-6};
}

}  // namespace

int main() {
  using namespace sctm;

  Table table("case study: 16-core apps, electrical mesh vs optical crossbar");
  table.set_header({"app", "network", "runtime (cyc)", "mean pkt lat",
                    "net energy (uJ)", "speedup vs enoc"});

  for (const char* name : {"fft", "jacobi", "sort"}) {
    fullsys::AppParams app;
    app.name = name;
    app.cores = 16;
    app.lines_per_core = 16;
    app.iterations = 2;

    core::NetSpec enoc;
    enoc.kind = core::NetKind::kEnoc;
    core::NetSpec token;
    token.kind = core::NetKind::kOnocToken;
    core::NetSpec setup;
    setup.kind = core::NetKind::kOnocSetup;

    const auto base = run_on(app, enoc);
    for (const auto& [spec, label] :
         {std::pair{enoc, "enoc-mesh"}, std::pair{token, "onoc-token"},
          std::pair{setup, "onoc-setup"}}) {
      const auto r = run_on(app, spec);
      table.add_row({name, label, Table::fmt(static_cast<std::uint64_t>(r.runtime)),
                     Table::fmt(r.mean_latency, 1), Table::fmt(r.energy_uj, 2),
                     Table::fmt(static_cast<double>(base.runtime) /
                                    static_cast<double>(r.runtime),
                                2) + "x"});
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
