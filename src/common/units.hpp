// Fundamental scalar types and unit helpers shared by every sctm library.
//
// The simulator is cycle-accurate: all timing is expressed in cycles of the
// network clock and converted to wall time only at reporting boundaries.
#pragma once

#include <cstdint>
#include <limits>

namespace sctm {

/// Simulated time in clock cycles of the reference (network) clock.
using Cycle = std::uint64_t;

/// Sentinel for "no time" / "not yet scheduled".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/// Identifies a network endpoint (core tile, cache bank, memory controller).
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Globally unique id of a message within one simulation run.
using MsgId = std::uint64_t;
inline constexpr MsgId kInvalidMsg = std::numeric_limits<MsgId>::max();

/// Physical-unit helpers. The device models (src/onoc) work in these units.
namespace units {

inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;

/// Converts a cycle count to seconds for a clock of `freq_hz`.
constexpr double cycles_to_seconds(Cycle c, double freq_hz) {
  return static_cast<double>(c) / freq_hz;
}

/// Converts seconds to whole cycles (rounding up: an event that takes any
/// fraction of a cycle occupies the full cycle).
constexpr Cycle seconds_to_cycles(double s, double freq_hz) {
  const double c = s * freq_hz;
  const auto floor_c = static_cast<Cycle>(c);
  return (static_cast<double>(floor_c) < c) ? floor_c + 1 : floor_c;
}

/// dB <-> linear power ratio conversions used by the optical loss budget.
double db_to_linear(double db);
double linear_to_db(double ratio);

/// Converts an optical power in milliwatts to dBm and back.
double mw_to_dbm(double mw);
double dbm_to_mw(double dbm);

}  // namespace units
}  // namespace sctm
