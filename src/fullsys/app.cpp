#include "fullsys/app.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace sctm::fullsys {
namespace {

// Disjoint line-number regions per logical array (56-bit line space).
constexpr std::uint64_t kRegionShift = 40;
constexpr std::uint64_t region(std::uint64_t id) { return id << kRegionShift; }
constexpr std::uint64_t kShared = region(1);   // shared arrays
constexpr std::uint64_t kPrivate = region(2);  // per-core private arrays

/// Line homed at `node` with block offset k (home map is line % cores).
std::uint64_t homed_line(std::uint64_t base, int node, int cores, int k) {
  return base + static_cast<std::uint64_t>(node) +
         static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(cores);
}

class Builder {
 public:
  explicit Builder(const AppParams& p)
      : p_(p), streams_(static_cast<std::size_t>(p.cores)) {}

  void compute(int c, std::uint64_t cycles) {
    if (cycles > 0) streams_[c].push_back({OpKind::kCompute, cycles});
  }
  void load(int c, std::uint64_t line) {
    streams_[c].push_back({OpKind::kLoad, line});
  }
  void store(int c, std::uint64_t line) {
    streams_[c].push_back({OpKind::kStore, line});
  }
  void barrier_all() {
    for (auto& s : streams_) s.push_back({OpKind::kBarrier, 0});
  }
  std::vector<std::vector<Op>> finish() {
    barrier_all();
    for (auto& s : streams_) s.push_back({OpKind::kDone, 0});
    return std::move(streams_);
  }

  const AppParams& p() const { return p_; }

 private:
  AppParams p_;
  std::vector<std::vector<Op>> streams_;
};

std::vector<std::vector<Op>> build_jacobi(const AppParams& p) {
  Builder b(p);
  const int n = p.cores;
  const int block = p.lines_per_core;
  const int boundary = std::max(1, block / 8);
  for (int it = 0; it < p.iterations; ++it) {
    for (int c = 0; c < n; ++c) {
      const int left = (c + n - 1) % n;
      const int right = (c + 1) % n;
      for (int k = 0; k < boundary; ++k) {
        b.load(c, homed_line(kShared, left, n, k));
        b.load(c, homed_line(kShared, right, n, k));
        b.compute(c, static_cast<std::uint64_t>(p.compute_per_line));
      }
      for (int k = 0; k < block; ++k) {
        b.load(c, homed_line(kShared, c, n, k));
        b.compute(c, static_cast<std::uint64_t>(p.compute_per_line));
        b.store(c, homed_line(kShared, c, n, k));
      }
    }
    b.barrier_all();
  }
  return b.finish();
}

std::vector<std::vector<Op>> build_fft(const AppParams& p) {
  Builder b(p);
  const int n = p.cores;
  int stages = 0;
  while ((1 << (stages + 1)) <= n) ++stages;
  const int m = std::max(1, p.lines_per_core / std::max(1, stages));
  for (int it = 0; it < p.iterations; ++it) {
    for (int s = 0; s < stages; ++s) {
      for (int c = 0; c < n; ++c) {
        const int partner = c ^ (1 << s);
        for (int k = 0; k < m; ++k) {
          b.load(c, homed_line(kShared, partner, n, s * m + k));
          b.compute(c, static_cast<std::uint64_t>(p.compute_per_line));
          b.store(c, homed_line(kShared, c, n, s * m + k));
        }
      }
      b.barrier_all();
    }
  }
  return b.finish();
}

std::vector<std::vector<Op>> build_lu(const AppParams& p) {
  Builder b(p);
  const int n = p.cores;
  const int panel = std::max(1, p.lines_per_core / 2);
  for (int step = 0; step < p.iterations * 2; ++step) {
    const int owner = step % n;
    for (int c = 0; c < n; ++c) {
      if (c == owner) {
        for (int k = 0; k < panel; ++k) {
          b.compute(c, static_cast<std::uint64_t>(p.compute_per_line) * 2);
          b.store(c, homed_line(kShared, owner, n, (step % 4) * panel + k));
        }
      }
    }
    b.barrier_all();
    for (int c = 0; c < n; ++c) {
      if (c == owner) continue;
      for (int k = 0; k < panel; ++k) {
        b.load(c, homed_line(kShared, owner, n, (step % 4) * panel + k));
        b.compute(c, static_cast<std::uint64_t>(p.compute_per_line));
      }
    }
    b.barrier_all();
  }
  return b.finish();
}

std::vector<std::vector<Op>> build_sort(const AppParams& p) {
  Builder b(p);
  const int n = p.cores;
  const int per_peer = std::max(1, p.lines_per_core / std::max(1, n - 1));
  for (int it = 0; it < p.iterations; ++it) {
    for (int c = 0; c < n; ++c) {
      // All-to-all read: fetch everyone else's bucket slice.
      for (int q = 1; q < n; ++q) {
        const int peer = (c + q) % n;
        for (int k = 0; k < per_peer; ++k) {
          b.load(c, homed_line(kShared, peer, n, it * per_peer + k));
        }
        b.compute(c, static_cast<std::uint64_t>(p.compute_per_line));
      }
      // Write back the locally merged run.
      for (int k = 0; k < per_peer; ++k) {
        b.store(c, homed_line(kShared, c, n, it * per_peer + k));
      }
    }
    b.barrier_all();
  }
  return b.finish();
}

std::vector<std::vector<Op>> build_barnes(const AppParams& p) {
  Builder b(p);
  const int n = p.cores;
  Rng rng(p.seed);
  const int accesses = p.lines_per_core;
  // Shared tree: hot top (few lines, all cores) + cold leaves.
  const int hot_lines = std::max(2, n / 2);
  const int cold_lines = n * p.lines_per_core;
  for (int it = 0; it < p.iterations; ++it) {
    for (int c = 0; c < n; ++c) {
      for (int a = 0; a < accesses; ++a) {
        std::uint64_t line;
        if (rng.next_bool(0.3)) {
          line = kShared + rng.next_below(static_cast<std::uint64_t>(hot_lines));
        } else {
          line = kShared + static_cast<std::uint64_t>(hot_lines) +
                 rng.next_below(static_cast<std::uint64_t>(cold_lines));
        }
        b.load(c, line);
        b.compute(c, static_cast<std::uint64_t>(p.compute_per_line));
      }
      // Update own body block.
      for (int k = 0; k < accesses / 4 + 1; ++k) {
        b.store(c, homed_line(kPrivate, c, n, k));
      }
    }
    b.barrier_all();
  }
  return b.finish();
}

// Tree reduction: log2(n) levels of pairwise fan-in. At level l, core c
// with (c % 2^(l+1)) == 2^l writes its partial into a line homed at the
// receiving core c - 2^l, which reads it after the barrier — the classic
// reduction/broadcast communication skeleton (converse of lu's fan-out).
std::vector<std::vector<Op>> build_reduce(const AppParams& p) {
  Builder b(p);
  const int n = p.cores;
  for (int it = 0; it < p.iterations; ++it) {
    // Local phase: every core produces its partial result.
    for (int c = 0; c < n; ++c) {
      for (int k = 0; k < p.lines_per_core / 2 + 1; ++k) {
        b.load(c, homed_line(kPrivate, c, n, k));
        b.compute(c, static_cast<std::uint64_t>(p.compute_per_line));
      }
      b.store(c, homed_line(kShared, c, n, it));
    }
    b.barrier_all();
    // Fan-in levels.
    for (int level = 1; level < n; level <<= 1) {
      for (int c = 0; c < n; ++c) {
        if (c % (level * 2) == 0 && c + level < n) {
          // Receiver: read the partner's partial, combine.
          b.load(c, homed_line(kShared, c + level, n, it));
          b.compute(c, static_cast<std::uint64_t>(p.compute_per_line) * 2);
          b.store(c, homed_line(kShared, c, n, it));
        }
      }
      b.barrier_all();
    }
    // Broadcast of the result: everyone reads the root's line.
    for (int c = 1; c < n; ++c) {
      b.load(c, homed_line(kShared, 0, n, it));
      b.compute(c, static_cast<std::uint64_t>(p.compute_per_line));
    }
    b.barrier_all();
  }
  return b.finish();
}

// Software pipeline: core c produces a block consumed by core c+1 next
// phase (ring of producer-consumer stages) — steady point-to-point streams
// with one-hop logical distance, the pattern where electrical meshes shine.
std::vector<std::vector<Op>> build_pipeline(const AppParams& p) {
  Builder b(p);
  const int n = p.cores;
  for (int it = 0; it < p.iterations * 2; ++it) {
    for (int c = 0; c < n; ++c) {
      const int upstream = (c + n - 1) % n;
      // Consume the upstream stage's previous block...
      for (int k = 0; k < p.lines_per_core / 2; ++k) {
        b.load(c, homed_line(kShared, upstream, n, (it % 2) * 64 + k));
        b.compute(c, static_cast<std::uint64_t>(p.compute_per_line));
      }
      // ...and produce this stage's next block.
      for (int k = 0; k < p.lines_per_core / 2; ++k) {
        b.store(c, homed_line(kShared, c, n, ((it + 1) % 2) * 64 + k));
      }
    }
    b.barrier_all();
  }
  return b.finish();
}

// GUPS-like random access: every core scatters single-line updates across a
// large shared table — maximal network+memory pressure, no reuse.
std::vector<std::vector<Op>> build_randacc(const AppParams& p) {
  Builder b(p);
  const int n = p.cores;
  Rng rng(p.seed ^ 0xabcdef);
  const std::uint64_t table_lines =
      static_cast<std::uint64_t>(n) * p.lines_per_core * 16;
  for (int it = 0; it < p.iterations; ++it) {
    for (int c = 0; c < n; ++c) {
      for (int k = 0; k < p.lines_per_core; ++k) {
        const std::uint64_t line = kShared + rng.next_below(table_lines);
        b.load(c, line);
        b.compute(c, 1);
        b.store(c, line);
      }
    }
    b.barrier_all();
  }
  return b.finish();
}

std::vector<std::vector<Op>> build_stream(const AppParams& p) {
  Builder b(p);
  const int n = p.cores;
  // Working set far beyond L1: k keeps growing so every access misses.
  for (int it = 0; it < p.iterations; ++it) {
    for (int c = 0; c < n; ++c) {
      for (int k = 0; k < p.lines_per_core; ++k) {
        const int idx = it * p.lines_per_core + k;
        b.load(c, homed_line(kPrivate, c, n, idx));
        b.compute(c, 1);
        b.store(c, homed_line(kPrivate, c, n, 1000000 + idx));
      }
    }
    b.barrier_all();
  }
  return b.finish();
}

}  // namespace

std::vector<std::string> app_names() {
  return {"jacobi", "fft", "lu", "sort",
          "barnes", "stream", "reduce", "pipeline", "randacc"};
}

std::vector<std::vector<Op>> build_app(const AppParams& p) {
  if (p.cores < 2) throw std::invalid_argument("build_app: cores must be >= 2");
  if (p.lines_per_core < 1 || p.iterations < 1) {
    throw std::invalid_argument("build_app: non-positive size");
  }
  if (p.name == "jacobi") return build_jacobi(p);
  if (p.name == "fft") return build_fft(p);
  if (p.name == "lu") return build_lu(p);
  if (p.name == "sort") return build_sort(p);
  if (p.name == "barnes") return build_barnes(p);
  if (p.name == "stream") return build_stream(p);
  if (p.name == "reduce") return build_reduce(p);
  if (p.name == "pipeline") return build_pipeline(p);
  if (p.name == "randacc") return build_randacc(p);
  throw std::invalid_argument("build_app: unknown app " + p.name);
}

std::uint64_t count_accesses(const std::vector<std::vector<Op>>& app) {
  std::uint64_t n = 0;
  for (const auto& stream : app) {
    for (const auto& op : stream) {
      if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) ++n;
    }
  }
  return n;
}

}  // namespace sctm::fullsys
