#include "onoc/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace sctm::onoc {

LossBudget compute_loss(const LossBudgetInputs& in) {
  LossBudget out;
  out.coupler_db = 2.0 * in.waveguide.coupler_loss_db;  // in and out

  // Serpentine waveguide visiting all nodes: length ~ die edge per row of
  // sqrt(n) nodes.
  const double rows = std::ceil(std::sqrt(static_cast<double>(in.nodes)));
  const double length_cm = rows * in.die_edge_cm;
  out.propagation_db = length_cm * in.waveguide.propagation_db_per_cm;

  // Worst case passes every other writer's modulator rings in through state
  // (one ring per wavelength per passed node) and the die's crossings. Only
  // the rings on the *same waveguide* load the path; wide WDM combs are
  // split across parallel waveguides.
  const double passed_nodes = static_cast<double>(in.nodes - 1);
  const int lambdas_on_guide =
      std::min(in.wavelengths, std::max(1, in.wavelengths_per_waveguide));
  out.through_rings_db = passed_nodes *
                         static_cast<double>(lambdas_on_guide) *
                         in.ring.through_loss_db;
  out.crossings_db = rows * in.waveguide.crossing_loss_db;
  out.insertion_db = in.ring.insertion_loss_db;
  out.drop_db = in.ring.drop_loss_db;
  return out;
}

LaserRequirement compute_laser(const LossBudgetInputs& in) {
  const LossBudget budget = compute_loss(in);
  LaserRequirement out;
  out.per_wavelength_dbm = in.detector.sensitivity_dbm + budget.total_db() +
                           in.laser.power_margin_db;
  const double per_lambda_mw = units::dbm_to_mw(out.per_wavelength_dbm);
  // One wavelength comb per receiving channel (nodes channels, each with
  // `wavelengths` lambdas).
  out.total_optical_mw = per_lambda_mw *
                         static_cast<double>(in.wavelengths) *
                         static_cast<double>(in.nodes);
  out.total_electrical_mw =
      out.total_optical_mw / in.laser.wall_plug_efficiency;
  out.ring_count = total_ring_count(in.nodes, in.channels_per_node,
                                    in.wavelengths);
  out.ring_heating_mw =
      static_cast<double>(out.ring_count) * in.ring.heating_uw * 1e-3;
  const double rows = std::ceil(std::sqrt(static_cast<double>(in.nodes)));
  out.waveguide_length_cm = rows * in.die_edge_cm;
  return out;
}

double faulted_bit_error_rate(const LossBudgetInputs& in,
                              double drift_sigma_c, double degradation_db) {
  if (drift_sigma_c <= 0.0 && degradation_db <= 0.0) return 0.0;
  // Thermal detuning penalty: ~0.25 dB per °C of RMS ring drift (linearized
  // small-detuning regime of the ring's Lorentzian response).
  constexpr double kDriftDbPerC = 0.25;
  const double margin_db = in.laser.power_margin_db -
                           kDriftDbPerC * std::max(0.0, drift_sigma_c) -
                           std::max(0.0, degradation_db);
  // Calibration: the full design margin spent == the nominal operating point
  // (BER 1e-12, Q = 7.03). Margin shortfall scales Q in the linear domain.
  constexpr double kNominalQ = 7.03;
  const double q = kNominalQ * std::pow(10.0, margin_db / 20.0);
  const double ber = 0.5 * std::erfc(q / std::sqrt(2.0));
  return std::clamp(ber, 0.0, 0.5);
}

}  // namespace sctm::onoc
