# Empty compiler generated dependencies file for fig_simtime.
# This may be replaced when dependencies are built.
