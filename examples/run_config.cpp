// Config-file experiment runner: the reproducible-study entry point.
//
//   ./build/examples/run_config configs/accuracy_fft_onoc.cfg
//
// The config describes the workload, the capture/target networks and the
// replay settings; the result table prints here and the exact set of
// consumed keys is echoed for provenance.
#include <cstdio>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: run_config <experiment.cfg>\n");
    return 2;
  }
  try {
    const auto cfg = sctm::Config::from_file(argv[1]);
    const auto table = sctm::core::run_experiment(cfg);
    std::fputs(table.to_ascii().c_str(), stdout);
    std::puts("-- consumed configuration --");
    std::fputs(cfg.consumed_dump().c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
