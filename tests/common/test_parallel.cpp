#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sctm {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroTasksIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsMatchSerial) {
  std::vector<double> par(256), ser(256);
  auto work = [](std::size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 100; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  parallel_for(256, [&](std::size_t i) { par[i] = work(i); });
  for (std::size_t i = 0; i < 256; ++i) ser[i] = work(i);
  EXPECT_EQ(par, ser);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(64,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanTasks) {
  std::atomic<int> count{0};
  parallel_for(3, [&](std::size_t) { count.fetch_add(1); }, /*threads=*/64);
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, DefaultParallelismPositive) {
  EXPECT_GE(default_parallelism(), 1u);
}

}  // namespace
}  // namespace sctm
