// Token-ring channel arbitration (Corona-style MWSR crossbar).
//
// One token per channel circulates all writer nodes at one hop per
// `hop_latency` cycles. A writer transmits only while holding the token.
// The model is analytic-deterministic: acquire() is called in simulation
// time order and computes the grant instant from the token's position, which
// rotates freely while the channel is idle and is pinned at the holder while
// busy. Requests are served FCFS in call order (a simplification of true
// ring order between concurrent waiters; documented in DESIGN.md).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace sctm::onoc {

class TokenRing {
 public:
  /// `nodes` writers on the ring; token advances one node per `hop_latency`.
  TokenRing(int nodes, Cycle hop_latency);

  /// Requests the token for writer `s` at time `t` (t must be >= the time of
  /// the previous call). The channel is held for `hold` cycles from the
  /// grant. Returns the grant time.
  Cycle acquire(NodeId s, Cycle t, Cycle hold);

  /// Time the channel becomes free after the last granted hold.
  Cycle free_at() const { return free_at_; }

  /// Fault hook (DESIGN.md §11): the circulating token is lost at time `t`.
  /// The self-correction protocol detects the silence by timeout and node 0
  /// regenerates the token `regen` cycles later; no writer can be granted in
  /// between, so the channel horizon advances to max(t, free_at) + regen.
  /// Like acquire(), calls must arrive in simulation time order.
  void lose_token(Cycle t, Cycle regen);

  /// Token position at time `t` assuming no further grants (for tests).
  NodeId position_at(Cycle t) const;

  std::uint64_t grants() const { return grants_; }

  /// Session reset: token back at node 0, channel free, history cleared —
  /// exactly the freshly-constructed state for the same (nodes, hop).
  void reset() {
    pos_ = 0;
    free_at_ = 0;
    last_call_ = 0;
    grants_ = 0;
  }

 private:
  int nodes_;
  Cycle hop_;
  NodeId pos_ = 0;      // holder/position when the channel last became free
  Cycle free_at_ = 0;   // channel free time of the last grant
  Cycle last_call_ = 0;
  std::uint64_t grants_ = 0;
};

}  // namespace sctm::onoc
