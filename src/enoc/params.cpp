#include "enoc/params.hpp"

#include <stdexcept>

namespace sctm::enoc {

EnocParams EnocParams::from_config(const Config& cfg) {
  EnocParams p;
  p.vnets = static_cast<int>(cfg.get_int("enoc.vnets", p.vnets));
  p.vcs_per_vnet =
      static_cast<int>(cfg.get_int("enoc.vcs_per_vnet", p.vcs_per_vnet));
  p.buffer_depth =
      static_cast<int>(cfg.get_int("enoc.buffer_depth", p.buffer_depth));
  p.flit_bytes = static_cast<std::uint32_t>(
      cfg.get_int("enoc.flit_bytes", p.flit_bytes));
  p.head_bytes = static_cast<std::uint32_t>(
      cfg.get_int("enoc.head_bytes", p.head_bytes));
  p.link_latency =
      static_cast<Cycle>(cfg.get_int("enoc.link_latency",
                                     static_cast<std::int64_t>(p.link_latency)));
  p.credit_latency = static_cast<Cycle>(cfg.get_int(
      "enoc.credit_latency", static_cast<std::int64_t>(p.credit_latency)));
  p.adaptive = cfg.get_bool("enoc.adaptive", p.adaptive);

  const std::string algo = cfg.get_string("enoc.routing", "xy");
  if (algo == "xy") p.routing = noc::RoutingAlgo::kXY;
  else if (algo == "yx") p.routing = noc::RoutingAlgo::kYX;
  else if (algo == "odd-even") p.routing = noc::RoutingAlgo::kOddEven;
  else if (algo == "ring-shortest") p.routing = noc::RoutingAlgo::kRingShortest;
  else if (algo == "torus-dor") p.routing = noc::RoutingAlgo::kTorusDor;
  else if (algo == "xyz") p.routing = noc::RoutingAlgo::kXyz;
  else if (algo == "table") p.routing = noc::RoutingAlgo::kTable;
  else throw std::invalid_argument("enoc.routing: unknown algorithm " + algo);

  const std::string arb = cfg.get_string("enoc.arbiter", "round-robin");
  if (arb == "round-robin") p.arbiter = ArbiterKind::kRoundRobin;
  else if (arb == "matrix") p.arbiter = ArbiterKind::kMatrix;
  else throw std::invalid_argument("enoc.arbiter: unknown kind " + arb);

  return p;
}

}  // namespace sctm::enoc
