// R-F3: total simulation time per mode.
//
// The abstract's second claim: the self-correction trace model achieves its
// precision "while not substantially extend[ing] the total simulation time"
// relative to plain trace simulation — and both are far faster than
// execution-driven full-system simulation. Wall-clock seconds on this host;
// the paper-relevant quantity is the *ratio* structure.
#include "bench/bench_util.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  Table t("R-F3: simulation wall time per mode (target: onoc token), "
          "larger workloads");
  t.set_header({"app", "exec (s)", "exec detailed (s)", "capture (s)",
                "naive replay (s)", "sctm replay (s)", "sctm/naive",
                "exec-det/sctm", "sctm ev/msg"});

  double worst_ratio = 0;
  double speedup_sum = 0;
  int n = 0;
  for (auto app : standard_apps(16, 32, 4)) {  // ~4x the standard size
    const auto capture = core::run_execution(app, enoc_spec(), {});
    const auto truth = core::run_execution(app, onoc_token_spec(), {});
    // The same run with an instruction-interpreting front end (per-cycle
    // core events): the cost profile of the paper's Simics/GEMS class.
    fullsys::FullSysParams detailed_sys;
    detailed_sys.core_detail = fullsys::CoreDetail::kPerCycle;
    const auto truth_detailed =
        core::run_execution(app, onoc_token_spec(), detailed_sys);

    core::ReplayConfig naive_cfg;
    naive_cfg.mode = core::ReplayMode::kNaive;
    // Median of 3 for the fast replays to de-noise wall clock.
    auto median3 = [&](const core::ReplayConfig& cfg) {
      double w[3];
      core::ReplayRun keep;
      for (auto& x : w) {
        keep = core::run_replay(capture.trace, onoc_token_spec(), cfg);
        x = keep.wall_seconds;
      }
      std::sort(std::begin(w), std::end(w));
      keep.wall_seconds = w[1];
      return keep;
    };
    const auto naive = median3(naive_cfg);
    const auto sctm = median3({});

    const double ratio = sctm.wall_seconds / std::max(1e-9, naive.wall_seconds);
    const double speedup =
        truth_detailed.wall_seconds / std::max(1e-9, sctm.wall_seconds);
    worst_ratio = std::max(worst_ratio, ratio);
    speedup_sum += speedup;
    ++n;
    // Kernel events per replayed message: the quiescence observable. With
    // the activity scoreboard the event count tracks flit activity, so this
    // stays flat as the workload's idle fraction grows.
    const double ev_per_msg =
        static_cast<double>(sctm.result.events) /
        std::max<std::size_t>(1, capture.trace.records.size());
    t.add_row({app.name, Table::fmt(truth.wall_seconds, 3),
               Table::fmt(truth_detailed.wall_seconds, 3),
               Table::fmt(capture.wall_seconds, 3),
               Table::fmt(naive.wall_seconds, 4),
               Table::fmt(sctm.wall_seconds, 4), Table::fmt(ratio, 2) + "x",
               Table::fmt(speedup, 1) + "x", Table::fmt(ev_per_msg, 1)});
  }
  emit(t, "rf3_simtime");
  std::printf("worst sctm/naive overhead: %.2fx; mean exec-detailed/sctm "
              "speedup: %.1fx\n",
              worst_ratio, speedup_sum / n);
  std::puts("note: 'exec detailed' runs the identical schedule with a "
            "per-cycle (instruction-interpreting) front end — the cost "
            "profile of the paper's Simics/GEMS class. The timing results "
            "are bit-identical to 'exec'; only the simulation cost differs. "
            "The abstract's speed claim is the sctm/naive column.");

  // The abstract's (testable) claim: self-correction does not substantially
  // extend the total simulation time over plain trace simulation. The
  // exec-vs-replay gap is informational: in this substrate the network model
  // dominates both, whereas the paper's Simics front end dominated exec —
  // the per-cycle column shows the knob but our kernels are memory-bound,
  // so even instruction-granular interpretation stays cheap.
  const bool ok = worst_ratio < 2.0;
  return verdict(ok, "R-F3 sctm replay stays within 2x of naive trace "
                     "replay");
}
