#include "analytic/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/driver.hpp"
#include "trace/record.hpp"

namespace sctm::analytic {
namespace {

trace::TraceRecord rec(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes,
                       noc::MsgClass cls, Cycle inject, Cycle arrive) {
  trace::TraceRecord r;
  r.id = id;
  r.src = src;
  r.dst = dst;
  r.size_bytes = bytes;
  r.cls = cls;
  r.inject_time = inject;
  r.arrive_time = arrive;
  return r;
}

core::ReplayTrace make_rt(std::vector<trace::TraceRecord> records,
                          std::int32_t nodes) {
  trace::Trace t;
  t.app = "synthetic";
  t.capture_network = "test";
  t.nodes = nodes;
  t.records = std::move(records);
  for (const auto& r : t.records) {
    if (r.arrive_time > t.capture_runtime) t.capture_runtime = r.arrive_time;
  }
  return core::ReplayTrace(t);
}

/// Uniform all-to-neighbour traffic: `per_pair` messages on every
/// (i, i+1 mod n) pair, spread over [0, span).
core::ReplayTrace uniform_traffic(std::uint32_t per_pair, Cycle span) {
  std::vector<trace::TraceRecord> recs;
  MsgId id = 1;
  const std::int32_t n = 16;
  for (std::uint32_t m = 0; m < per_pair; ++m) {
    for (std::int32_t s = 0; s < n; ++s) {
      const Cycle t = (m * span) / per_pair + s % 7;
      recs.push_back(rec(id++, s, (s + 1) % n, 64, noc::MsgClass::kData,
                         t, t + 10));
    }
  }
  return make_rt(std::move(recs), n);
}

core::NetSpec spec_of(core::NetKind kind) {
  core::NetSpec s;
  s.kind = kind;
  return s;
}

TEST(AnalyticModel, AllKindsConstructAndEstimate) {
  const auto rt = uniform_traffic(4, 400);
  const TraceProfile p = profile_trace(rt);
  for (const auto kind :
       {core::NetKind::kIdeal, core::NetKind::kEnoc,
        core::NetKind::kOnocToken, core::NetKind::kOnocSetup,
        core::NetKind::kOnocSwmr, core::NetKind::kHybrid}) {
    SCOPED_TRACE(core::to_string(kind));
    const AnalyticResult r = estimate(p, spec_of(kind));
    EXPECT_TRUE(std::isfinite(r.est_runtime));
    EXPECT_GT(r.est_runtime, 0.0);
    EXPECT_GT(r.est_mean_latency, 0.0);
    EXPECT_GE(r.est_p99, r.est_mean_latency);
  }
}

TEST(AnalyticModel, ExactOnContentionFreeIdealFlow) {
  // A single anchored chain on one pair has zero contention, so the
  // analytic ideal estimate must agree with full replay *exactly*: same
  // per-message latency, same completion time.
  std::vector<trace::TraceRecord> recs;
  Cycle inject = 20;
  for (std::uint32_t i = 0; i < 9; ++i) {
    auto r = rec(i + 1, 0, 5, 100, noc::MsgClass::kData, inject, inject + 7);
    if (i > 0) r.deps.push_back({MsgId{i}, 2});
    recs.push_back(r);
    inject = recs.back().arrive_time + 2;
  }
  const auto rt = make_rt(std::move(recs), 16);

  const core::NetSpec spec = spec_of(core::NetKind::kIdeal);
  const auto rep = core::run_replay(rt, spec, {});
  const AnalyticResult est = estimate(profile_trace(rt), spec);

  const auto h = rep.result.latency_histogram();
  EXPECT_DOUBLE_EQ(est.est_mean_latency, h.mean());
  EXPECT_DOUBLE_EQ(est.est_runtime,
                   static_cast<double>(rep.result.runtime));
  EXPECT_DOUBLE_EQ(est.est_p99, static_cast<double>(h.percentile(0.99)));
}

TEST(AnalyticModel, MonotoneInOfferedLoad) {
  // Twice the messages in the same injection span -> strictly more waiting
  // on every contended station, for both electrical and optical kinds.
  const TraceProfile sparse = profile_trace(uniform_traffic(2, 400));
  const TraceProfile dense = profile_trace(uniform_traffic(8, 400));
  for (const auto kind : {core::NetKind::kEnoc, core::NetKind::kOnocToken,
                          core::NetKind::kOnocSwmr}) {
    SCOPED_TRACE(core::to_string(kind));
    const auto s = estimate(sparse, spec_of(kind));
    const auto d = estimate(dense, spec_of(kind));
    EXPECT_GT(d.est_mean_latency, s.est_mean_latency);
  }
}

TEST(AnalyticModel, MonotoneInLinkLatency) {
  const TraceProfile p = profile_trace(uniform_traffic(4, 400));
  double prev = 0;
  for (const std::uint32_t ll : {1u, 2u, 4u, 8u}) {
    core::NetSpec s = spec_of(core::NetKind::kEnoc);
    s.enoc.link_latency = ll;
    const auto r = estimate(p, s);
    EXPECT_GT(r.est_mean_latency, prev) << "link_latency=" << ll;
    EXPECT_GE(r.est_runtime, prev);
    prev = r.est_mean_latency;
  }
}

TEST(AnalyticModel, MoreWavelengthsNeverHurt) {
  const TraceProfile p = profile_trace(uniform_traffic(6, 300));
  core::NetSpec narrow = spec_of(core::NetKind::kOnocSwmr);
  narrow.onoc.wavelengths = 8;
  core::NetSpec wide = narrow;
  wide.onoc.wavelengths = 64;
  EXPECT_GE(estimate(p, narrow).est_mean_latency,
            estimate(p, wide).est_mean_latency);
  EXPECT_GE(estimate(p, narrow).est_runtime, estimate(p, wide).est_runtime);
}

TEST(AnalyticModel, EmptyProfileEstimatesZero) {
  const TraceProfile p = profile_trace(core::ReplayTrace(trace::Trace{}));
  const auto r = estimate(p, spec_of(core::NetKind::kEnoc));
  EXPECT_DOUBLE_EQ(r.est_runtime, 0.0);
  EXPECT_DOUBLE_EQ(r.est_mean_latency, 0.0);
}

TEST(AnalyticModel, HybridBlendsElectricalAndOptical) {
  // Big far messages go optical under the default steering rule; the hybrid
  // estimate must sit within the span of its two constituent estimates.
  const TraceProfile p = profile_trace(uniform_traffic(4, 400));
  const double hybrid = estimate(p, spec_of(core::NetKind::kHybrid))
                            .est_mean_latency;
  EXPECT_GT(hybrid, 0.0);
  EXPECT_TRUE(std::isfinite(hybrid));
}

}  // namespace
}  // namespace sctm::analytic
