# Empty dependencies file for tab_casestudy.
# This may be replaced when dependencies are built.
