// Electrical NoC configuration.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/config.hpp"
#include "common/units.hpp"
#include "noc/routing.hpp"

namespace sctm::enoc {

enum class ArbiterKind { kRoundRobin, kMatrix };

struct EnocParams {
  /// Virtual networks (message-class partitions for protocol deadlock
  /// avoidance): requests/control on vnet 0, replies/data on vnet 1.
  int vnets = 2;
  /// VCs per vnet per port. Must be even on torus/ring (dateline halves).
  int vcs_per_vnet = 2;
  /// Buffer depth per VC, in flits.
  int buffer_depth = 4;
  /// Flit width in bytes (link phit width).
  std::uint32_t flit_bytes = 16;
  /// Packet header overhead added to the payload before segmentation.
  std::uint32_t head_bytes = 8;
  Cycle link_latency = 1;
  Cycle credit_latency = 1;
  noc::RoutingAlgo routing = noc::RoutingAlgo::kXY;
  /// Adaptive output-port selection among routing candidates by free credits.
  bool adaptive = false;
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;

  /// Memberwise equality: two parameter sets are interchangeable iff all
  /// fields match (session reuse keys on this; see core/replay_session.hpp).
  bool operator==(const EnocParams&) const = default;

  int total_vcs() const { return vnets * vcs_per_vnet; }

  /// Flits for a message of `payload` bytes (>=1; header piggybacks).
  std::uint32_t flits_for(std::uint32_t payload) const {
    const std::uint32_t bytes = payload + head_bytes;
    return bytes == 0 ? 1 : (bytes + flit_bytes - 1) / flit_bytes;
  }

  void validate(bool needs_dateline) const {
    if (vnets < 1 || vcs_per_vnet < 1 || buffer_depth < 1 || flit_bytes == 0) {
      throw std::invalid_argument("EnocParams: non-positive parameter");
    }
    if (link_latency < 1 || credit_latency < 1) {
      throw std::invalid_argument("EnocParams: latencies must be >= 1");
    }
    if (needs_dateline && vcs_per_vnet % 2 != 0) {
      throw std::invalid_argument(
          "EnocParams: torus/ring needs even vcs_per_vnet (dateline halves)");
    }
  }

  /// Reads "enoc.*" keys with these defaults.
  static EnocParams from_config(const Config& cfg);
};

}  // namespace sctm::enoc
