// Quickstart: the complete Self-Correction Trace Model pipeline in ~60
// lines.
//
//   1. Run an application execution-driven on the electrical baseline NoC,
//      capturing a dependency-annotated trace.
//   2. Replay the trace on an optical NoC twice: naively (frozen
//      timestamps) and with self-correction.
//   3. Compare against execution-driven ground truth on the same ONOC.
//
// Build & run:  ./build/examples/quickstart [--stats-json <file>]
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>

#include "common/json.hpp"
#include "core/driver.hpp"
#include "core/error_metrics.hpp"

namespace {

/// Returns the value after `flag` in argv, or empty when absent.
std::string flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return {};
}

std::string now_iso8601() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sctm;
  const std::string stats_json = flag_value(argc, argv, "--stats-json");

  // The workload: a 16-core FFT kernel (butterfly exchanges + barriers).
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 16;
  app.iterations = 2;

  fullsys::FullSysParams sys;  // default cache hierarchy

  // Capture network: 4x4 electrical wormhole mesh.
  core::NetSpec enoc;
  enoc.kind = core::NetKind::kEnoc;

  // Target network: token-arbitrated optical crossbar on the same die.
  core::NetSpec onoc;
  onoc.kind = core::NetKind::kOnocToken;

  std::puts("[1/3] execution-driven capture on the electrical mesh...");
  const auto capture = core::run_execution(app, enoc, sys);
  std::printf("      runtime %llu cycles, %zu messages, %.3f s wall\n",
              static_cast<unsigned long long>(capture.runtime),
              capture.trace.records.size(), capture.wall_seconds);

  std::puts("[2/3] trace replay on the optical NoC...");
  core::ReplayConfig naive_cfg;
  naive_cfg.mode = core::ReplayMode::kNaive;
  const auto naive = core::run_replay(capture.trace, onoc, naive_cfg);
  const auto sctm = core::run_replay(capture.trace, onoc, {});
  std::printf("      naive: runtime %llu cycles, %.4f s wall\n",
              static_cast<unsigned long long>(naive.result.runtime),
              naive.wall_seconds);
  std::printf("      sctm : runtime %llu cycles, %.4f s wall\n",
              static_cast<unsigned long long>(sctm.result.runtime),
              sctm.wall_seconds);

  std::puts("[3/3] ground truth: execution-driven on the optical NoC...");
  const auto truth = core::run_execution(app, onoc, sys);
  const auto ts = core::summarize(truth.trace);
  const auto en = core::compare(ts, core::summarize(capture.trace, naive.result));
  const auto es = core::compare(ts, core::summarize(capture.trace, sctm.result));
  std::printf("      truth runtime %llu cycles (%.3f s wall)\n",
              static_cast<unsigned long long>(truth.runtime),
              truth.wall_seconds);
  std::printf("      naive trace error: runtime %.1f%%, mean latency %.1f%%\n",
              100 * en.runtime_err, 100 * en.mean_latency_err);
  std::printf("      sctm  trace error: runtime %.1f%%, mean latency %.1f%%\n",
              100 * es.runtime_err, 100 * es.mean_latency_err);

  if (!stats_json.empty()) {
    auto m = core::metrics_for_execution(app, onoc, truth, "quickstart",
                                         now_iso8601());
    m.add_phase("capture_enoc", capture.wall_seconds, capture.events);
    m.add_phase("replay_naive", naive.wall_seconds, naive.result.events);
    m.add_phase("replay_sctm", sctm.wall_seconds, sctm.result.events);
    JsonWriter results;
    results.begin_object();
    results.key("truth_runtime_cycles");
    results.value(std::uint64_t{truth.runtime});
    results.key("naive_runtime_err");
    results.value(en.runtime_err);
    results.key("naive_mean_latency_err");
    results.value(en.mean_latency_err);
    results.key("sctm_runtime_err");
    results.value(es.runtime_err);
    results.key("sctm_mean_latency_err");
    results.value(es.mean_latency_err);
    results.end_object();
    m.set_results_json(std::move(results).str());
    m.write_file(stats_json);
    std::printf("run metrics json -> %s\n", stats_json.c_str());
  }
  return 0;
}
