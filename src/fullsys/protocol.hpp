// Coherence protocol message vocabulary and tag encoding.
//
// The CMP substrate speaks a dataless MSI protocol (no data values are
// simulated — only the message traffic and its timing, which is what the NoC
// sees). Messages ride noc::Message with the protocol type and transaction
// id packed into the 64-bit tag.
//
// Protocol sketch (blocking directory, one transaction per line at a time):
//   core L1 miss  -> GetS/GetM to the line's home bank
//   home          -> Data/DataM reply (after memory fetch, recall of a dirty
//                    owner, or invalidation of sharers, as required)
//   L1 M-eviction -> PutM (with data) to home, WbAck back; the evicting core
//                    holds the victim until WbAck (removes the PutM/Recall
//                    in-flight race except for the crossing case, which the
//                    directory resolves by treating the PutM as recall data
//                    and dropping the subsequent RecallStale)
//   barrier       -> BarArrive to the barrier home node; BarRelease fan-out
#pragma once

#include <cstdint>

#include "noc/message.hpp"

namespace sctm::fullsys {

enum class ProtoMsg : std::uint8_t {
  kGetS = 1,        // read request, core -> home
  kGetM,            // write request, core -> home
  kPutM,            // dirty writeback (data), core -> home
  kWbAck,           // writeback acknowledgement, home -> core
  kData,            // read data reply, home -> core
  kDataM,           // data + ownership reply, home -> core
  kInv,             // invalidate, home -> sharer
  kInvAck,          // invalidation acknowledgement, sharer -> home
  kRecall,          // recall dirty line, home -> owner
  kRecallData,      // recalled data, owner -> home
  kRecallStale,     // owner no longer has the line (PutM crossed), -> home
  kMemRead,         // home -> memory controller
  kMemWrite,        // home -> memory controller (evicted dirty data)
  kMemData,         // memory controller -> home
  kBarArrive,       // core -> barrier home
  kBarRelease,      // barrier home -> core
  kUnblock,         // core -> home: data received, finish the transaction.
                    // The directory stays busy until this confirmation, so a
                    // follow-up Inv/Recall can never overtake the data grant
                    // it chases (GEMS-style three-hop closure).
};

const char* to_string(ProtoMsg t);

/// Wire sizes (payload bytes; the NoC adds its own header).
inline constexpr std::uint32_t kCtrlBytes = 8;
inline constexpr std::uint32_t kLineBytes = 64;

/// Does this message carry a full cache line?
constexpr bool carries_data(ProtoMsg t) {
  return t == ProtoMsg::kPutM || t == ProtoMsg::kData ||
         t == ProtoMsg::kDataM || t == ProtoMsg::kRecallData ||
         t == ProtoMsg::kMemData || t == ProtoMsg::kMemWrite;
}

constexpr std::uint32_t size_of(ProtoMsg t) {
  return carries_data(t) ? kLineBytes : kCtrlBytes;
}

/// Message class mapping (vnet assignment): requests and forwarded requests
/// on the request class; replies/data on the reply classes.
constexpr noc::MsgClass class_of(ProtoMsg t) {
  switch (t) {
    case ProtoMsg::kGetS:
    case ProtoMsg::kGetM:
    case ProtoMsg::kPutM:
    case ProtoMsg::kInv:
    case ProtoMsg::kRecall:
    case ProtoMsg::kMemRead:
    case ProtoMsg::kMemWrite:
    case ProtoMsg::kBarArrive:
      return noc::MsgClass::kRequest;
    case ProtoMsg::kData:
    case ProtoMsg::kDataM:
    case ProtoMsg::kRecallData:
    case ProtoMsg::kMemData:
      return noc::MsgClass::kData;
    case ProtoMsg::kWbAck:
    case ProtoMsg::kInvAck:
    case ProtoMsg::kRecallStale:
    case ProtoMsg::kBarRelease:
    case ProtoMsg::kUnblock:
      return noc::MsgClass::kReply;
  }
  return noc::MsgClass::kRequest;
}

/// Tag layout: [63:56] ProtoMsg, [55:0] line address >> 6 (line number).
constexpr std::uint64_t encode_tag(ProtoMsg t, std::uint64_t line) {
  return (static_cast<std::uint64_t>(t) << 56) |
         (line & ((std::uint64_t{1} << 56) - 1));
}
constexpr ProtoMsg tag_type(std::uint64_t tag) {
  return static_cast<ProtoMsg>(tag >> 56);
}
constexpr std::uint64_t tag_line(std::uint64_t tag) {
  return tag & ((std::uint64_t{1} << 56) - 1);
}

}  // namespace sctm::fullsys
