// Minimal task parallelism for experiment sweeps, plus a persistent worker
// pool for barrier-synced phase execution inside one simulation.
//
// Individual simulations are single-threaded and deterministic; sweeps over
// independent configurations (the bench harness, parameter studies) are
// embarrassingly parallel. parallel_for runs fn(i) for i in [0, n) over a
// worker pool with an atomic work counter; the first exception thrown by any
// task is rethrown on the caller after all workers join, and determinism is
// preserved as long as tasks only touch disjoint state (each task owns its
// own Simulator).
//
// The callable is passed by reference through a type-erased (context, thunk)
// pair — no std::function, so dispatching a capture-heavy lambda never heap
// allocates. The callable must outlive the call (it always does: parallel_for
// joins before returning).
//
// WorkerPool is the intra-simulation counterpart: the parallel ENoC tick
// shards one cycle's router work across lanes, so the pool must amortize to
// nothing per cycle. Threads are spawned once at construction and reused for
// every run() (no spawn/join per cycle); a phase is published by bumping an
// epoch counter (release) that workers observe (acquire), the caller runs
// lane 0 itself, and a done-counter barrier ends the phase. Steady-state
// run() performs zero heap allocations. Workers spin briefly between phases,
// then yield, then sleep on a condition variable — an idle pool (quiescent
// network, serial fallback stretches, pass gaps) costs no CPU.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sctm {

/// Number of workers parallel_for uses for `threads == 0` (hardware
/// concurrency, at least 1).
unsigned default_parallelism();

/// The one thread-count convention for every `--threads`-style knob:
/// 0 resolves to default_parallelism(), anything else is taken literally
/// (clamped to >= 1). WorkerPool, parallel_for, explore() workers and the
/// run-metrics manifests all resolve through here, so "0 = hardware" means
/// the same lane count everywhere.
unsigned resolve_threads(unsigned requested);

namespace detail {
void parallel_for_impl(std::size_t n, void (*thunk)(void*, std::size_t),
                       void* ctx, unsigned threads);
}  // namespace detail

template <typename Fn>
void parallel_for(std::size_t n, const Fn& fn, unsigned threads = 0) {
  detail::parallel_for_impl(
      n,
      [](void* ctx, std::size_t i) { (*static_cast<const Fn*>(ctx))(i); },
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
      threads);
}

/// Persistent barrier-synced worker pool.
///
/// run(fn) executes fn(lane) for every lane in [0, size()) and returns once
/// all lanes finished — a full barrier. Lane 0 runs on the calling thread;
/// lanes 1..size()-1 run on the pool's resident threads. Successive run()
/// calls reuse the same threads with no intermediate join, no per-call
/// allocation, and no lock on the publish path (epoch/done atomics; the
/// mutex+condvar pair only backs the deep-sleep fallback).
///
/// The callable must only touch disjoint state per lane (or state it
/// synchronizes itself); the barrier gives the caller release/acquire
/// visibility of everything the lanes wrote. The first exception thrown by
/// any lane is rethrown on the caller after the barrier; the other lanes
/// still run to completion, so pool state stays consistent.
class WorkerPool {
 public:
  /// `threads == 0` means default_parallelism(). A pool of size 1 runs
  /// everything inline on the caller and spawns no threads.
  explicit WorkerPool(unsigned threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of lanes (>= 1). run(fn) invokes fn with each lane id once.
  unsigned size() const { return lanes_; }

  template <typename Fn>
  void run(const Fn& fn) {
    run_impl(
        [](void* ctx, unsigned lane) { (*static_cast<const Fn*>(ctx))(lane); },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

 private:
  void run_impl(void (*thunk)(void*, unsigned), void* ctx);
  void worker_loop(unsigned lane);
  void invoke(unsigned lane);

  unsigned lanes_ = 1;
  std::vector<std::thread> threads_;  // lanes_ - 1 resident workers

  // Phase job, published by bumping epoch_ after the stores below it.
  void (*thunk_)(void*, unsigned) = nullptr;
  void* ctx_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> done_{0};
  std::atomic<bool> stop_{false};

  // Deep-sleep fallback for idle workers. sleepers_ and epoch_ form the
  // usual Dekker pair: a worker increments sleepers_ (seq_cst) and re-checks
  // the epoch before waiting; the publisher bumps the epoch (seq_cst) and
  // checks sleepers_ — at least one side sees the other, so no wakeup is
  // ever lost.
  std::atomic<unsigned> sleepers_{0};
  std::mutex mu_;
  std::condition_variable cv_;

  // First exception across lanes (fatal-path only; guarded by err_mu_).
  std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace sctm
