// Shared helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure of the (reconstructed)
// evaluation: it prints the rows as an aligned table and drops a CSV under
// ./bench_results/ for plotting. Binaries exit non-zero if the experiment's
// sanity conditions fail, so `for b in build/bench/*; do $b; done` doubles
// as an end-to-end check.
#pragma once

#include <ctime>
#include <filesystem>
#include <string>

#include "common/json.hpp"
#include "common/run_metrics.hpp"
#include "common/table.hpp"
#include "core/driver.hpp"
#include "core/error_metrics.hpp"

namespace sctm::bench {

/// The six workload kernels at the standard evaluation size (16 cores).
inline std::vector<fullsys::AppParams> standard_apps(int cores = 16,
                                                     int lines = 16,
                                                     int iters = 2) {
  std::vector<fullsys::AppParams> out;
  for (const auto& name : fullsys::app_names()) {
    fullsys::AppParams p;
    p.name = name;
    p.cores = cores;
    p.lines_per_core = lines;
    p.iterations = iters;
    out.push_back(p);
  }
  return out;
}

inline core::NetSpec enoc_spec(noc::Topology topo = noc::Topology::mesh(4, 4)) {
  core::NetSpec s;
  s.kind = core::NetKind::kEnoc;
  s.topo = topo;
  // The fabric's natural algorithm (XY on 2D meshes, so legacy benches are
  // byte-identical; XYZ / table routing on the graph-backed kinds).
  s.enoc.routing = noc::default_algo(s.topo);
  s.hybrid.electrical.routing = s.enoc.routing;
  return s;
}

inline core::NetSpec onoc_token_spec(
    noc::Topology topo = noc::Topology::mesh(4, 4)) {
  core::NetSpec s;
  s.kind = core::NetKind::kOnocToken;
  s.topo = topo;
  return s;
}

inline core::NetSpec onoc_setup_spec(
    noc::Topology topo = noc::Topology::mesh(4, 4)) {
  core::NetSpec s;
  s.kind = core::NetKind::kOnocSetup;
  s.topo = topo;
  return s;
}

inline core::NetSpec ideal_spec(Cycle per_hop,
                                noc::Topology topo = noc::Topology::mesh(4,
                                                                         4)) {
  core::NetSpec s;
  s.kind = core::NetKind::kIdeal;
  s.topo = topo;
  s.ideal.per_hop_latency = per_hop;
  return s;
}

/// ISO-8601 UTC timestamp for bench manifests.
inline std::string now_iso8601() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Builds the standard bench metrics document: manifest identifying the
/// bench, the result table under results.table. Callers may add phases /
/// stats / extra manifest entries before emit() writes it out.
inline RunMetrics bench_metrics(const Table& table, const std::string& slug) {
  RunMetrics m;
  m.manifest.tool = "bench/" + slug;
  m.manifest.created = now_iso8601();
  JsonWriter results;
  results.begin_object();
  results.key("table");
  write_table_json(results, table);
  results.end_object();
  m.set_results_json(std::move(results).str());
  return m;
}

/// Prints the table and writes bench_results/<slug>.csv plus the
/// schema-consistent bench_results/<slug>.json run-metrics document.
inline void emit(const Table& table, const std::string& slug) {
  std::fputs(table.to_ascii().c_str(), stdout);
  std::fflush(stdout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) return;
  table.write_csv("bench_results/" + slug + ".csv");
  bench_metrics(table, slug).write_file("bench_results/" + slug + ".json");
}

/// emit() variant for benches that assemble their own metrics document
/// (phases, stats, histograms) around the table.
inline void emit(const Table& table, const std::string& slug,
                 const RunMetrics& metrics) {
  std::fputs(table.to_ascii().c_str(), stdout);
  std::fflush(stdout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) return;
  table.write_csv("bench_results/" + slug + ".csv");
  metrics.write_file("bench_results/" + slug + ".json");
}

/// Exit helper: prints a verdict line and returns the process exit code.
inline int verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "OK" : "FAIL", what.c_str());
  return ok ? 0 : 1;
}

}  // namespace sctm::bench
