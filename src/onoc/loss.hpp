// Optical loss budget and laser power requirement.
//
// Worst-case path: coupler in, propagate the longest waveguide span, pass
// every other node's rings in the through state, cross waveguides, drop into
// the receiver, detector. The laser must deliver detector sensitivity plus
// the whole loss chain plus margin on every wavelength — this is why ONOC
// static power scales so unfavourably with radix, the effect R-T3 shows.
#pragma once

#include "onoc/devices.hpp"

namespace sctm::onoc {

struct LossBudgetInputs {
  int nodes = 16;
  int wavelengths = 16;
  /// Channels a single node can write (MWSR crossbar: one per destination).
  int channels_per_node = 15;
  /// WDM comb is split across parallel waveguides so a single waveguide
  /// never carries more than this many wavelengths — bounding the
  /// through-ring loss chain, as Corona-class layouts do.
  int wavelengths_per_waveguide = 16;
  /// Physical die edge in cm; the serpentine waveguide length scales with it.
  double die_edge_cm = 2.0;
  MicroringParams ring;
  WaveguideParams waveguide;
  PhotodetectorParams detector;
  LaserParams laser;
};

struct LossBudget {
  double coupler_db = 0;
  double propagation_db = 0;
  double through_rings_db = 0;
  double crossings_db = 0;
  double insertion_db = 0;   // modulator insertion
  double drop_db = 0;
  double total_db() const {
    return coupler_db + propagation_db + through_rings_db + crossings_db +
           insertion_db + drop_db;
  }
};

struct LaserRequirement {
  double per_wavelength_dbm = 0;   // optical, at the laser
  double total_optical_mw = 0;     // across all wavelengths and channels
  double total_electrical_mw = 0;  // after wall-plug efficiency
  long ring_count = 0;
  double ring_heating_mw = 0;      // static trimming power
  double waveguide_length_cm = 0;
};

/// Worst-case loss on the serpentine crossbar waveguide.
LossBudget compute_loss(const LossBudgetInputs& in);

/// Laser and thermal static power implied by the budget.
LaserRequirement compute_laser(const LossBudgetInputs& in);

/// Bit error rate of the worst-case link once fault injection erodes the
/// designed power margin: microring thermal drift of `drift_sigma_c` degrees
/// C RMS costs ~0.25 dB/°C of detuning penalty, and `degradation_db` models
/// laser aging. The remaining margin maps to a received Q factor (a design
/// margin of 0 is calibrated to BER 1e-12, Q ≈ 7.03) and BER =
/// 0.5*erfc(Q/sqrt(2)). Returns 0 when both knobs are 0 — the fault-free
/// link is modeled as error-free.
double faulted_bit_error_rate(const LossBudgetInputs& in,
                              double drift_sigma_c, double degradation_db);

}  // namespace sctm::onoc
