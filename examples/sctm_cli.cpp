// sctm_cli — command-line front end for the capture/replay workflow.
//
//   sctm_cli capture  --app fft --net enoc --out /tmp/t.trc2 [--cores 16]
//                     [--lines 16] [--iters 2] [--mesh 4x4] [--format v1|v2]
//   sctm_cli replay   --trace /tmp/t.trc2 --net onoc-token [--mode sctm]
//                     [--window W] [--iters-max 8] [--csv out.csv]
//   sctm_cli explore  --trace /tmp/t.trc2 --candidates cands.cfg
//                     [--screen-top K] [--threads N] [--mode sctm]
//                     [--window W] [--csv out.csv]
//   sctm_cli inspect  --trace /tmp/t.trc2 [--text]
//   sctm_cli exec     --app fft --net onoc-setup [...]   (execution-driven)
//   sctm_cli validate --json metrics.json     (schema-check a metrics doc)
//
// Container tooling (the v2 trace store):
//
//   sctm_cli trace info    --trace <file> [--chunks]
//   sctm_cli trace convert --in <file> --out <file> [--format v1|v2]
//                          [--chunk N]
//   sctm_cli trace verify  --trace <file> [--quick]
//   sctm_cli trace hash    --trace <file>
//   sctm_cli trace add     --trace <file> --dir <catalog>
//   sctm_cli trace list    --dir <catalog>
//
// Fabric tooling (the graph-backed topology layer):
//
//   sctm_cli topo info   <file|spec>     (counts, radix histogram, diameter)
//   sctm_cli topo verify <file|spec>     (routes + channel-dependency audit)
//
// Run subcommands take --topo <spec> (mesh:WxH, torus:WxH, ring:N,
// mesh3d:XxYxZ, torus3d:XxYxZ, file:<path>) in addition to the legacy
// --mesh WxH shorthand.
//
// Every run subcommand accepts --stats-json <path> to emit the machine-
// readable run-metrics document (schema sctm.run_metrics.v1: manifest +
// per-phase timing + stat-registry snapshot + results); `validate` is the
// matching schema checker, used by CI as the emission gate.
//
// Networks: ideal | enoc | onoc-token | onoc-setup | onoc-swmr | hybrid.
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/config.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/run_metrics.hpp"
#include "common/table.hpp"
#include "analytic/screen.hpp"
#include "core/driver.hpp"
#include "core/error_metrics.hpp"
#include "core/experiment.hpp"
#include "core/explore.hpp"
#include "fault/fault_spec.hpp"
#include "noc/route_table.hpp"
#include "noc/routing.hpp"
#include "trace/dependency_graph.hpp"
#include "trace/trace_io.hpp"
#include "tracestore/catalog.hpp"
#include "tracestore/trace_store.hpp"

namespace {

using namespace sctm;

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "error: %s\n", why);
  std::fprintf(
      stderr,
      "usage:\n"
      "  sctm_cli capture --app <name> --net <kind> --out <file> "
      "[--cores N] [--lines N] [--iters N] [--mesh WxH] [--seed S] "
      "[--format v1|v2] [--faults <cfg>]\n"
      "  sctm_cli replay  --trace <file> --net <kind> [--mode naive|sctm] "
      "[--window W] [--iters-max N] [--threads N] [--csv <file>] "
      "[--mesh WxH] [--faults <cfg>]\n"
      "  sctm_cli explore --trace <file> --candidates <config> "
      "[--screen-top K] [--threads N] [--tick-threads N] "
      "[--mode naive|sctm] [--window W] "
      "[--iters-max N] [--csv <file>] [--faults <cfg>]\n"
      "  sctm_cli inspect --trace <file> [--text]\n"
      "  sctm_cli exec    --app <name> --net <kind> [--cores N] [--lines N] "
      "[--iters N] [--mesh WxH] [--stats <file>] [--faults <cfg>]\n"
      "  sctm_cli validate --json <file>\n"
      "  sctm_cli trace info    --trace <file> [--chunks]\n"
      "  sctm_cli trace convert --in <file> --out <file> [--format v1|v2] "
      "[--chunk N]\n"
      "  sctm_cli trace verify  --trace <file> [--quick]\n"
      "  sctm_cli trace hash    --trace <file>\n"
      "  sctm_cli trace add     --trace <file> --dir <catalog>\n"
      "  sctm_cli trace list    --dir <catalog>\n"
      "  sctm_cli topo info     <file|spec>\n"
      "  sctm_cli topo verify   <file|spec> [--algo <routing>]\n"
      "run subcommands also accept --topo <spec>; a spec is mesh:WxH, "
      "torus:WxH, ring:N, mesh3d:XxYxZ, torus3d:XxYxZ or file:<path>\n"
      "all run subcommands accept --stats-json <file> (machine-readable "
      "run metrics)\n"
      "--faults reads a config of fault.* keys (rates, timeouts, seed) and "
      "runs the network with deterministic fault injection\n"
      "--screen-top K ranks every candidate with the tier-0 analytic model "
      "and replays only the top K (explore.screen.top_k in the config does "
      "the same)\n"
      "networks: ideal enoc onoc-token onoc-setup onoc-swmr hybrid\n"
      "apps: jacobi fft lu sort barnes stream\n");
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> out;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage(("unexpected token " + key).c_str());
    key = key.substr(2);
    if (key == "text" || key == "chunks" || key == "quick") {  // booleans
      out[key] = "1";
      continue;
    }
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    out[key] = argv[++i];
  }
  return out;
}

core::NetKind net_kind(const std::string& s) {
  if (s == "ideal") return core::NetKind::kIdeal;
  if (s == "enoc") return core::NetKind::kEnoc;
  if (s == "onoc-token") return core::NetKind::kOnocToken;
  if (s == "onoc-setup") return core::NetKind::kOnocSetup;
  if (s == "onoc-swmr") return core::NetKind::kOnocSwmr;
  if (s == "hybrid") return core::NetKind::kHybrid;
  usage(("unknown network " + s).c_str());
}

noc::Topology parse_mesh(const std::string& s) {
  const auto x = s.find('x');
  if (x == std::string::npos) usage("--mesh expects WxH");
  return noc::Topology::mesh(std::stoi(s.substr(0, x)),
                             std::stoi(s.substr(x + 1)));
}

/// "AxB[xC]" -> dims; pads with 1 up to `want`, errors past it.
std::vector<int> parse_dims(const std::string& s, std::size_t want,
                            const char* what) {
  std::vector<int> dims;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto x = s.find('x', pos);
    const std::string tok =
        s.substr(pos, x == std::string::npos ? std::string::npos : x - pos);
    try {
      dims.push_back(std::stoi(tok));
    } catch (const std::exception&) {
      usage((std::string(what) + ": bad dimension '" + tok + "' in " + s)
                .c_str());
    }
    if (x == std::string::npos) break;
    pos = x + 1;
  }
  if (dims.size() > want) {
    usage((std::string(what) + ": too many dimensions in " + s).c_str());
  }
  dims.resize(want, 1);
  return dims;
}

/// Topology spec: mesh:WxH | torus:WxH | ring:N | mesh3d:XxYxZ |
/// torus3d:XxYxZ | file:<path>; bare WxH means mesh (the --mesh shorthand),
/// anything else is tried as a topology file path.
noc::Topology parse_topo_spec(const std::string& s) {
  const auto colon = s.find(':');
  if (colon == std::string::npos) {
    if (s.find('x') != std::string::npos) return parse_mesh(s);
    return noc::Topology::from_file(s);
  }
  const std::string kind = s.substr(0, colon);
  const std::string rest = s.substr(colon + 1);
  if (kind == "file") return noc::Topology::from_file(rest);
  if (kind == "ring") {
    const auto d = parse_dims(rest, 1, "ring");
    return noc::Topology::ring(d[0]);
  }
  if (kind == "mesh" || kind == "torus") {
    const auto d = parse_dims(rest, 2, kind.c_str());
    return kind == "mesh" ? noc::Topology::mesh(d[0], d[1])
                          : noc::Topology::torus(d[0], d[1]);
  }
  if (kind == "mesh3d" || kind == "torus3d") {
    const auto d = parse_dims(rest, 3, kind.c_str());
    return kind == "mesh3d" ? noc::Topology::mesh3d(d[0], d[1], d[2])
                            : noc::Topology::torus3d(d[0], d[1], d[2]);
  }
  usage(("unknown topology kind '" + kind +
         "' (known: mesh, torus, ring, mesh3d, torus3d, file)")
            .c_str());
}

/// Applies --faults <cfg>: the file uses the ordinary "fault.*" config
/// vocabulary (see fault/fault_spec.hpp); unknown fault.* keys hard-error.
void apply_faults_flag(const std::map<std::string, std::string>& f,
                       core::NetSpec& spec) {
  const auto it = f.find("faults");
  if (it == f.end()) return;
  spec.fault = fault::FaultSpec::from_config(Config::from_file(it->second));
}

core::NetSpec spec_from(const std::map<std::string, std::string>& f) {
  core::NetSpec spec;
  const auto net = f.find("net");
  if (net == f.end()) usage("--net required");
  spec.kind = net_kind(net->second);
  if (const auto m = f.find("mesh"); m != f.end()) {
    spec.topo = parse_mesh(m->second);
  }
  if (const auto t = f.find("topo"); t != f.end()) {
    spec.topo = parse_topo_spec(t->second);
  }
  // The flags carry no routing algorithm: every fabric gets its natural one
  // (kXY for a 2D mesh, exactly as before --topo existed).
  spec.enoc.routing = noc::default_algo(spec.topo);
  spec.hybrid.electrical.routing = spec.enoc.routing;
  apply_faults_flag(f, spec);
  return spec;
}

fullsys::AppParams app_from(const std::map<std::string, std::string>& f,
                            const core::NetSpec& spec) {
  fullsys::AppParams app;
  const auto a = f.find("app");
  if (a == f.end()) usage("--app required");
  app.name = a->second;
  app.cores = spec.topo.node_count();
  if (const auto it = f.find("cores"); it != f.end()) {
    app.cores = std::stoi(it->second);
  }
  if (const auto it = f.find("lines"); it != f.end()) {
    app.lines_per_core = std::stoi(it->second);
  } else {
    app.lines_per_core = 16;
  }
  if (const auto it = f.find("iters"); it != f.end()) {
    app.iterations = std::stoi(it->second);
  } else {
    app.iterations = 2;
  }
  if (const auto it = f.find("seed"); it != f.end()) {
    app.seed = std::stoull(it->second);
  }
  return app;
}

/// ISO-8601 UTC timestamp for run manifests (the metrics layer itself never
/// reads the clock).
std::string now_iso8601() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

trace::TraceFormat format_from(const std::map<std::string, std::string>& f,
                               trace::TraceFormat fallback) {
  const auto it = f.find("format");
  if (it == f.end()) return fallback;
  if (it->second == "v1") return trace::TraceFormat::kV1;
  if (it->second == "v2") return trace::TraceFormat::kV2;
  usage("--format must be v1 or v2");
}

/// Writes `m` when --stats-json was given; reports the path on stdout.
void maybe_emit_stats_json(const std::map<std::string, std::string>& f,
                           const sctm::RunMetrics& m) {
  const auto it = f.find("stats-json");
  if (it == f.end()) return;
  m.write_file(it->second);
  std::printf("run metrics json -> %s\n", it->second.c_str());
}

int cmd_capture(const std::map<std::string, std::string>& f) {
  const auto spec = spec_from(f);
  const auto app = app_from(f, spec);
  const auto out = f.find("out");
  if (out == f.end()) usage("--out required");
  const auto format = format_from(f, trace::TraceFormat::kV2);
  const auto exec = core::run_execution(app, spec, {});
  trace::write_file(exec.trace, out->second, format);
  std::printf("captured %zu messages (%s on %s), runtime %llu cycles, "
              "%.3f s wall -> %s (%s)\n",
              exec.trace.records.size(), app.name.c_str(),
              spec.describe().c_str(),
              static_cast<unsigned long long>(exec.runtime),
              exec.wall_seconds, out->second.c_str(),
              trace::to_string(format));
  auto metrics = core::metrics_for_execution(app, spec, exec,
                                             "sctm_cli capture",
                                             now_iso8601());
  metrics.manifest.set("trace_out", out->second);
  maybe_emit_stats_json(f, metrics);
  return 0;
}

const std::string& require_flag(const std::map<std::string, std::string>& f,
                                const char* key) {
  const auto it = f.find(key);
  if (it == f.end()) usage(("--" + std::string(key) + " required").c_str());
  return it->second;
}

/// Replay engine knobs shared by `replay` and `explore`.
core::ReplayConfig replay_cfg_from(const std::map<std::string, std::string>& f) {
  core::ReplayConfig cfg;
  if (const auto m = f.find("mode"); m != f.end()) {
    if (m->second == "naive") cfg.mode = core::ReplayMode::kNaive;
    else if (m->second == "sctm") cfg.mode = core::ReplayMode::kSelfCorrecting;
    else usage("--mode must be naive or sctm");
  }
  if (const auto w = f.find("window"); w != f.end()) {
    cfg.dependency_window = static_cast<std::uint32_t>(std::stoul(w->second));
  }
  if (const auto it = f.find("iters-max"); it != f.end()) {
    cfg.max_iterations = std::stoi(it->second);
  }
  // Sharded-tick worker count: 1 (the ReplayConfig default) = serial, 0 =
  // one lane per hardware thread via resolve_threads(). Results are
  // bit-identical for any value; `replay` also accepts the shorter
  // --threads, while `explore` reserves that name for candidate workers.
  if (const auto it = f.find("tick-threads"); it != f.end()) {
    cfg.threads = static_cast<unsigned>(std::stoul(it->second));
  }
  return cfg;
}

int cmd_replay(const std::map<std::string, std::string>& f) {
  const auto tr = f.find("trace");
  if (tr == f.end()) usage("--trace required");
  // v2 containers stream chunk-at-a-time into the replay representation; a
  // whole record vector-of-vectors is never materialized.
  const auto loaded = core::load_replay_trace(tr->second);
  auto spec = spec_from(f);
  // Default the fabric to the trace's node count when not overridden.
  if (f.find("mesh") == f.end() && loaded.nodes() == 16) {
    spec.topo = noc::Topology::mesh(4, 4);
  } else if (f.find("mesh") == f.end() && loaded.nodes() == 64) {
    spec.topo = noc::Topology::mesh(8, 8);
  }

  core::ReplayConfig cfg = replay_cfg_from(f);
  if (const auto it = f.find("threads"); it != f.end()) {
    cfg.threads = static_cast<unsigned>(std::stoul(it->second));
  }

  const auto rep = core::run_replay(loaded, spec, cfg);
  const auto h = rep.result.latency_histogram();
  std::printf("replayed %u messages on %s (%s): runtime %llu cycles, "
              "latency mean %.1f p50 %llu p99 %llu, %d iteration(s), "
              "%.4f s wall\n",
              loaded.size(), spec.describe().c_str(),
              core::to_string(cfg.mode),
              static_cast<unsigned long long>(rep.result.runtime), h.mean(),
              static_cast<unsigned long long>(h.percentile(0.5)),
              static_cast<unsigned long long>(h.percentile(0.99)),
              rep.result.iterations, rep.wall_seconds);
  if (const auto csv = f.find("csv"); csv != f.end()) {
    Table t("replay");
    t.set_header({"id", "inject", "arrive", "latency"});
    for (std::uint32_t i = 0; i < loaded.size(); ++i) {
      t.add_row({Table::fmt(loaded.id(i)),
                 Table::fmt(rep.result.inject_time[i]),
                 Table::fmt(rep.result.arrive_time[i]),
                 Table::fmt(rep.result.arrive_time[i] -
                            rep.result.inject_time[i])});
    }
    t.write_csv(csv->second);
    std::printf("per-message csv -> %s\n", csv->second.c_str());
  }
  maybe_emit_stats_json(
      f, core::metrics_for_replay(loaded, spec, cfg, rep, "sctm_cli replay",
                                  now_iso8601()));
  return 0;
}

int cmd_explore(const std::map<std::string, std::string>& f) {
  const auto& tr = require_flag(f, "trace");
  const auto& cand_path = require_flag(f, "candidates");
  // v2 containers stream chunk-at-a-time into the replay representation.
  const auto rt = core::load_replay_trace(tr);
  // The candidates config carries both the design space
  // (candidate.<name>.<param> in the experiment vocabulary) and, optionally,
  // the screen setting (explore.screen.top_k); parse errors come back with
  // file:line anchors.
  const Config cand_cfg = Config::from_file(cand_path);
  auto candidates = core::candidates_from_config(cand_cfg, cand_path);
  // --faults supplies the shared fault regime; a candidate's own fault.*
  // keys (if any) win over it.
  if (const auto it = f.find("faults"); it != f.end()) {
    const auto shared =
        fault::FaultSpec::from_config(Config::from_file(it->second));
    for (auto& c : candidates) {
      if (c.spec.fault == fault::FaultSpec{}) c.spec.fault = shared;
    }
  }
  core::ExploreConfig base;
  base.replay = replay_cfg_from(f);
  if (const auto it = f.find("threads"); it != f.end()) {
    base.threads = static_cast<unsigned>(std::stoul(it->second));
  }
  core::ExploreConfig cfg = core::explore_config_from(cand_cfg, base);
  if (const auto it = f.find("screen-top"); it != f.end()) {
    const long k = std::stol(it->second);
    if (k < 1) {
      usage("--screen-top must be >= 1 (a screen that confirms no candidate "
            "is a config bug; omit the flag to replay everything)");
    }
    cfg.screen_top_k = static_cast<std::size_t>(k);
  }

  const auto results = analytic::explore_screened(rt, candidates, cfg);
  const bool screened = cfg.screen_top_k != 0;

  Table t("explore");
  t.set_header({"rank", "candidate", "tier", "est_runtime", "runtime",
                "latency_mean", "latency_p99", "iterations", "wall_s"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    t.add_row({Table::fmt(static_cast<std::uint64_t>(i + 1)), r.name,
               r.replayed ? (screened ? "replay" : "full") : "analytic",
               r.analytic_rank != 0 ? Table::fmt(r.est_runtime, 0) : "-",
               r.replayed ? Table::fmt(std::uint64_t{r.runtime}) : "-",
               r.replayed ? Table::fmt(r.mean_latency, 1) : "-",
               r.replayed ? Table::fmt(std::uint64_t{r.p99_latency}) : "-",
               r.replayed ? Table::fmt(static_cast<std::int64_t>(r.iterations))
                          : "-",
               r.replayed ? Table::fmt(r.wall_seconds, 4) : "-"});
  }
  std::fputs(t.to_ascii().c_str(), stdout);
  std::printf("explored %zu candidate(s) over %u records (%s%s), best: %s\n",
              results.size(), rt.size(), core::to_string(cfg.replay.mode),
              screened ? ", screened" : "",
              results.empty() ? "-" : results.front().name.c_str());
  if (const auto csv = f.find("csv"); csv != f.end()) {
    t.write_csv(csv->second);
    std::printf("results csv -> %s\n", csv->second.c_str());
  }

  if (f.count("stats-json")) {
    RunMetrics m = core::metrics_for_explore(rt, candidates, cfg, results,
                                             "sctm_cli explore",
                                             now_iso8601());
    // Resolved thread counts (S2): `0 = hardware` resolves through the one
    // resolve_threads() convention, so the manifest records the lane counts
    // the run actually used — candidate workers and per-session tick lanes.
    m.manifest.set("explore_workers",
                   static_cast<std::int64_t>(resolve_threads(cfg.threads)));
    m.manifest.set("tick_threads",
                   static_cast<std::int64_t>(resolve_threads(cfg.replay.threads)));
    maybe_emit_stats_json(f, m);
  }
  return 0;
}

int cmd_inspect(const std::map<std::string, std::string>& f) {
  const auto tr = f.find("trace");
  if (tr == f.end()) usage("--trace required");
  const auto loaded = trace::read_binary_file(tr->second);
  const trace::DependencyGraph graph(loaded);
  const auto s = core::summarize(loaded);
  std::printf("app=%s capture-net='%s' nodes=%d seed=%llu\n",
              loaded.app.c_str(), loaded.capture_network.c_str(), loaded.nodes,
              static_cast<unsigned long long>(loaded.seed));
  std::printf("records=%zu runtime=%llu latency mean=%.1f p99=%llu\n",
              loaded.records.size(),
              static_cast<unsigned long long>(loaded.capture_runtime),
              s.mean_latency, static_cast<unsigned long long>(s.p99_latency));
  std::printf("deps/record=%.2f roots=%zu critical-path=%zu records\n",
              graph.mean_deps(), graph.roots().size(),
              graph.critical_path_length());
  if (f.count("text")) std::fputs(trace::to_text(loaded).c_str(), stdout);

  if (f.count("stats-json")) {
    RunMetrics m;
    m.manifest.tool = "sctm_cli inspect";
    m.manifest.created = now_iso8601();
    m.manifest.set("trace", core::trace_id(loaded));
    m.manifest.set("app", loaded.app);
    m.manifest.set("capture_net", loaded.capture_network);
    m.manifest.set("nodes", loaded.nodes);
    m.manifest.set("seed", loaded.seed);
    Histogram lat;
    for (const auto& r : loaded.records) lat.add(r.latency());
    m.add_histogram("latency", lat, /*with_buckets=*/true);
    JsonWriter results;
    results.begin_object();
    results.key("records");
    results.value(static_cast<std::uint64_t>(loaded.records.size()));
    results.key("capture_runtime_cycles");
    results.value(std::uint64_t{loaded.capture_runtime});
    results.key("mean_deps_per_record");
    results.value(graph.mean_deps());
    results.key("roots");
    results.value(static_cast<std::uint64_t>(graph.roots().size()));
    results.key("critical_path_records");
    results.value(static_cast<std::uint64_t>(graph.critical_path_length()));
    results.end_object();
    m.set_results_json(std::move(results).str());
    maybe_emit_stats_json(f, m);
  }
  return 0;
}

int cmd_exec(const std::map<std::string, std::string>& f) {
  const auto spec = spec_from(f);
  const auto app = app_from(f, spec);
  const auto exec = core::run_execution(app, spec, {});
  const auto s = core::summarize(exec.trace);
  std::printf("%s on %s: runtime %llu cycles, %zu messages, latency mean "
              "%.1f p99 %llu, %.3f s wall\n",
              app.name.c_str(), spec.describe().c_str(),
              static_cast<unsigned long long>(exec.runtime),
              exec.trace.records.size(), s.mean_latency,
              static_cast<unsigned long long>(s.p99_latency),
              exec.wall_seconds);
  if (const auto it = f.find("stats"); it != f.end()) {
    std::FILE* out = std::fopen(it->second.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", it->second.c_str());
      return 1;
    }
    std::fputs(exec.stats_report.c_str(), out);
    std::fclose(out);
    std::printf("full stats dump -> %s\n", it->second.c_str());
  }
  maybe_emit_stats_json(f, core::metrics_for_execution(app, spec, exec,
                                                       "sctm_cli exec",
                                                       now_iso8601()));
  return 0;
}

int cmd_validate(const std::map<std::string, std::string>& f) {
  const auto it = f.find("json");
  if (it == f.end()) usage("--json required");
  std::ifstream in(it->second, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", it->second.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  if (!validate_metrics_json(buf.str(), &err)) {
    std::fprintf(stderr, "invalid metrics document %s: %s\n",
                 it->second.c_str(), err.c_str());
    return 1;
  }
  std::printf("%s: valid %s document\n", it->second.c_str(),
              std::string(kMetricsSchema).c_str());
  return 0;
}

int cmd_trace_info(const std::map<std::string, std::string>& f) {
  const auto& path = require_flag(f, "trace");
  const auto fmt = trace::sniff_format(path);
  if (fmt == trace::TraceFormat::kV1) {
    const auto t = trace::read_binary_file(path);
    std::printf("%s: format=v1 app=%s capture-net='%s' nodes=%d seed=%llu "
                "records=%zu content-hash=%s\n",
                path.c_str(), t.app.c_str(), t.capture_network.c_str(),
                t.nodes, static_cast<unsigned long long>(t.seed),
                t.records.size(),
                tracestore::hash_hex(tracestore::content_hash(t)).c_str());
    return 0;
  }
  const auto reader = tracestore::TraceReader::open_file(path);
  const auto& m = reader.meta();
  std::printf("%s: format=v2 app=%s capture-net='%s' nodes=%d seed=%llu\n",
              path.c_str(), m.app.c_str(), m.capture_network.c_str(), m.nodes,
              static_cast<unsigned long long>(m.seed));
  std::printf("records=%llu chunks=%zu chunk-target=%u bytes=%llu "
              "content-hash=%s\n",
              static_cast<unsigned long long>(reader.record_count()),
              reader.chunk_count(), reader.chunk_target(),
              static_cast<unsigned long long>(reader.file_bytes()),
              tracestore::hash_hex(reader.stored_content_hash()).c_str());
  if (f.count("chunks")) {
    for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
      const auto& c = reader.chunk_info(i);
      std::printf("  chunk %zu: records [%llu, %llu) bytes=%u cycles "
                  "[%llu, %llu]\n",
                  i, static_cast<unsigned long long>(c.first_record),
                  static_cast<unsigned long long>(c.first_record +
                                                  c.record_count),
                  c.payload_len,
                  static_cast<unsigned long long>(c.min_cycle),
                  static_cast<unsigned long long>(c.max_cycle));
    }
  }
  return 0;
}

int cmd_trace_convert(const std::map<std::string, std::string>& f) {
  const auto& in = require_flag(f, "in");
  const auto& out = require_flag(f, "out");
  const auto format = format_from(f, trace::TraceFormat::kV2);
  const auto t = trace::read_binary_file(in);
  if (format == trace::TraceFormat::kV2 && f.count("chunk")) {
    tracestore::write_v2_file(
        t, out, static_cast<std::uint32_t>(std::stoul(f.at("chunk"))));
  } else {
    trace::write_file(t, out, format);
  }
  const auto in_bytes = std::ifstream(in, std::ios::binary | std::ios::ate)
                            .tellg();
  const auto out_bytes = std::ifstream(out, std::ios::binary | std::ios::ate)
                             .tellg();
  std::printf("%s (%s, %lld bytes) -> %s (%s, %lld bytes), ratio %.2fx\n",
              in.c_str(), trace::to_string(trace::sniff_format(in)),
              static_cast<long long>(in_bytes), out.c_str(),
              trace::to_string(format), static_cast<long long>(out_bytes),
              out_bytes > 0 ? static_cast<double>(in_bytes) /
                                  static_cast<double>(out_bytes)
                            : 0.0);
  return 0;
}

int cmd_trace_verify(const std::map<std::string, std::string>& f) {
  const auto& path = require_flag(f, "trace");
  if (trace::sniff_format(path) == trace::TraceFormat::kV1) {
    // v1 has no checksums: "verify" = the strict reader accepts every byte.
    try {
      const auto t = trace::read_binary_file(path);
      std::printf("%s: OK (v1, %zu records; no checksums in v1)\n",
                  path.c_str(), t.records.size());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: CORRUPT (v1): %s\n", path.c_str(), e.what());
      return 1;
    }
  }
  const auto rep = tracestore::verify_v2_file(path, /*deep=*/!f.count("quick"));
  if (rep.ok) {
    std::printf("%s: OK (v2, %llu records in %llu chunks%s)\n", path.c_str(),
                static_cast<unsigned long long>(rep.records),
                static_cast<unsigned long long>(rep.chunks),
                rep.hash_checked ? ", content hash verified" : "");
    return 0;
  }
  if (rep.bad_chunk >= 0) {
    std::fprintf(stderr, "%s: CORRUPT in chunk %lld: %s\n", path.c_str(),
                 static_cast<long long>(rep.bad_chunk), rep.error.c_str());
  } else {
    std::fprintf(stderr, "%s: CORRUPT (header/index/footer): %s\n",
                 path.c_str(), rep.error.c_str());
  }
  return 1;
}

int cmd_trace_hash(const std::map<std::string, std::string>& f) {
  const auto& path = require_flag(f, "trace");
  // Recomputed over the logical content, so the hash is format-independent:
  // a v1 file and its v2 conversion print the same address.
  const auto t = trace::read_binary_file(path);
  std::printf("%s  %s\n", tracestore::hash_hex(tracestore::content_hash(t)).c_str(),
              path.c_str());
  return 0;
}

int cmd_trace_add(const std::map<std::string, std::string>& f) {
  const auto& path = require_flag(f, "trace");
  const auto& dir = require_flag(f, "dir");
  tracestore::TraceCatalog catalog(dir);
  const auto entry = catalog.add(trace::read_binary_file(path), now_iso8601());
  std::printf("%s -> %s (%llu records, %llu chunks)\n", path.c_str(),
              catalog.container_path(entry).c_str(),
              static_cast<unsigned long long>(entry.records),
              static_cast<unsigned long long>(entry.chunks));
  return 0;
}

int cmd_trace_list(const std::map<std::string, std::string>& f) {
  const auto& dir = require_flag(f, "dir");
  const tracestore::TraceCatalog catalog(dir);
  const auto entries = catalog.list();
  for (const auto& e : entries) {
    std::printf("%s  app=%s net='%s' nodes=%d seed=%llu records=%llu "
                "bytes=%llu created=%s\n",
                e.hash.c_str(), e.app.c_str(), e.capture_network.c_str(),
                e.nodes, static_cast<unsigned long long>(e.seed),
                static_cast<unsigned long long>(e.records),
                static_cast<unsigned long long>(e.file_bytes),
                e.created.empty() ? "-" : e.created.c_str());
  }
  std::printf("%zu trace(s) in %s\n", entries.size(), catalog.dir().c_str());
  return 0;
}

// --------------------------------------------------------------------------
// topo — fabric tooling over the graph-backed topology layer.
//
//   sctm_cli topo info   <file|spec>
//   sctm_cli topo verify <file|spec> [--algo <routing>]
//
// <file|spec> is a topology file path or a mesh:WxH / torus:WxH / ring:N /
// mesh3d:XxYxZ / torus3d:XxYxZ / file:<path> spec. File errors are anchored
// "<path>:<line>: ..." by the parser.

noc::Topology topo_arg(const std::string& arg) {
  if (arg.find(':') == std::string::npos &&
      arg.find('x') == std::string::npos) {
    return noc::Topology::from_file(arg);
  }
  return parse_topo_spec(arg);
}

int cmd_topo_info(const noc::Topology& topo) {
  std::printf("topology: %s\n", topo.describe().c_str());
  std::printf("nodes: %d\n", topo.node_count());
  std::printf("edges: %d\n", topo.link_count() / 2);
  std::map<int, int> hist;  // degree -> node count
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    int deg = 0;
    for (int p = 0; p < topo.radix(n); ++p) {
      if (topo.neighbor(n, p) != kInvalidNode) ++deg;
    }
    ++hist[deg];
  }
  std::string h;
  for (const auto& [deg, cnt] : hist) {
    if (!h.empty()) h += " ";
    h += std::to_string(deg) + ":" + std::to_string(cnt);
  }
  std::printf("radix histogram: %s\n", h.c_str());
  std::printf("diameter: %d\n", topo.diameter());
  std::printf("mean distance: %.4f\n", topo.mean_distance());
  return 0;
}

noc::RoutingAlgo algo_from(const std::map<std::string, std::string>& f,
                           const noc::Topology& topo) {
  const auto it = f.find("algo");
  if (it == f.end()) return noc::default_algo(topo);
  const std::string& a = it->second;
  if (a == "xy") return noc::RoutingAlgo::kXY;
  if (a == "yx") return noc::RoutingAlgo::kYX;
  if (a == "odd-even") return noc::RoutingAlgo::kOddEven;
  if (a == "ring-shortest") return noc::RoutingAlgo::kRingShortest;
  if (a == "torus-dor") return noc::RoutingAlgo::kTorusDor;
  if (a == "xyz") return noc::RoutingAlgo::kXyz;
  if (a == "table") return noc::RoutingAlgo::kTable;
  usage(("unknown routing algorithm " + a).c_str());
}

int cmd_topo_verify(const noc::Topology& topo,
                    const std::map<std::string, std::string>& f) {
  const auto algo = algo_from(f, topo);
  if (!noc::compatible(topo, algo)) {
    std::fprintf(stderr, "%s: FAIL: %s routing is incompatible with this "
                 "topology kind\n",
                 topo.describe().c_str(), noc::to_string(algo));
    return 1;
  }
  // Connectivity: the file parser and the table builder both reject
  // disconnected fabrics; regular kinds are connected by construction.
  const noc::RoutingTable rt(topo, algo);
  const auto audit = noc::audit_routes(rt);
  if (audit.ok) {
    std::printf("%s: OK (%s routing: %d routes terminate at the right "
                "length, max %d hops, channel-dependency graph acyclic)\n",
                topo.describe().c_str(), noc::to_string(algo),
                audit.routes_checked, audit.max_hops);
    return 0;
  }
  std::fprintf(stderr, "%s: FAIL (%s routing): %s\n", topo.describe().c_str(),
               noc::to_string(algo), audit.error.c_str());
  return 1;
}

int cmd_topo(int argc, char** argv) {
  if (argc < 3) usage("topo: missing verb (info|verify)");
  const std::string verb = argv[2];
  if (argc < 4) usage("topo: missing <file|spec> argument");
  const std::string arg = argv[3];
  const auto flags = parse_flags(argc, argv, 4);
  const auto topo = topo_arg(arg);
  if (verb == "info") return cmd_topo_info(topo);
  if (verb == "verify") return cmd_topo_verify(topo, flags);
  usage(("unknown topo verb " + verb).c_str());
}

int cmd_trace(int argc, char** argv) {
  if (argc < 3) usage("trace: missing verb (info|convert|verify|hash|add|list)");
  const std::string verb = argv[2];
  const auto flags = parse_flags(argc, argv, 3);
  if (verb == "info") return cmd_trace_info(flags);
  if (verb == "convert") return cmd_trace_convert(flags);
  if (verb == "verify") return cmd_trace_verify(flags);
  if (verb == "hash") return cmd_trace_hash(flags);
  if (verb == "add") return cmd_trace_add(flags);
  if (verb == "list") return cmd_trace_list(flags);
  usage(("unknown trace verb " + verb).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string cmd = argv[1];
  try {
    if (cmd == "trace") return cmd_trace(argc, argv);
    if (cmd == "topo") return cmd_topo(argc, argv);
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "capture") return cmd_capture(flags);
    if (cmd == "replay") return cmd_replay(flags);
    if (cmd == "explore") return cmd_explore(flags);
    if (cmd == "inspect") return cmd_inspect(flags);
    if (cmd == "exec") return cmd_exec(flags);
    if (cmd == "validate") return cmd_validate(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(("unknown subcommand " + cmd).c_str());
}
