
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/onoc/devices.cpp" "src/onoc/CMakeFiles/sctm_onoc.dir/devices.cpp.o" "gcc" "src/onoc/CMakeFiles/sctm_onoc.dir/devices.cpp.o.d"
  "/root/repo/src/onoc/hybrid_network.cpp" "src/onoc/CMakeFiles/sctm_onoc.dir/hybrid_network.cpp.o" "gcc" "src/onoc/CMakeFiles/sctm_onoc.dir/hybrid_network.cpp.o.d"
  "/root/repo/src/onoc/loss.cpp" "src/onoc/CMakeFiles/sctm_onoc.dir/loss.cpp.o" "gcc" "src/onoc/CMakeFiles/sctm_onoc.dir/loss.cpp.o.d"
  "/root/repo/src/onoc/onoc_network.cpp" "src/onoc/CMakeFiles/sctm_onoc.dir/onoc_network.cpp.o" "gcc" "src/onoc/CMakeFiles/sctm_onoc.dir/onoc_network.cpp.o.d"
  "/root/repo/src/onoc/params.cpp" "src/onoc/CMakeFiles/sctm_onoc.dir/params.cpp.o" "gcc" "src/onoc/CMakeFiles/sctm_onoc.dir/params.cpp.o.d"
  "/root/repo/src/onoc/power.cpp" "src/onoc/CMakeFiles/sctm_onoc.dir/power.cpp.o" "gcc" "src/onoc/CMakeFiles/sctm_onoc.dir/power.cpp.o.d"
  "/root/repo/src/onoc/token.cpp" "src/onoc/CMakeFiles/sctm_onoc.dir/token.cpp.o" "gcc" "src/onoc/CMakeFiles/sctm_onoc.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/enoc/CMakeFiles/sctm_enoc.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/sctm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sctm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
