#include "core/error_metrics.hpp"

#include <algorithm>
#include <cmath>

namespace sctm::core {
namespace {

double rel_err(double model, double truth) {
  // Zero truth has no relative scale; fall back to the absolute error so a
  // 1-cycle miss and a 10^6-cycle miss stop scoring identically (the old
  // flat 1.0 let ErrorReport::worst() mask real regressions). See the
  // ErrorReport contract in error_metrics.hpp.
  if (truth == 0.0) return std::abs(model);
  return std::abs(model - truth) / truth;
}

}  // namespace

RunSummary summarize(const trace::Trace& trace) {
  RunSummary s;
  Histogram h;
  for (const auto& r : trace.records) h.add(r.latency());
  s.messages = h.count();
  s.mean_latency = h.mean();
  s.p50_latency = h.percentile(0.5);
  s.p99_latency = h.percentile(0.99);
  s.runtime = trace.capture_runtime;
  return s;
}

RunSummary summarize(const trace::Trace& trace, const ReplayResult& replayed) {
  (void)trace;
  RunSummary s;
  const Histogram h = replayed.latency_histogram();
  s.messages = h.count();
  s.mean_latency = h.mean();
  s.p50_latency = h.percentile(0.5);
  s.p99_latency = h.percentile(0.99);
  s.runtime = replayed.runtime;
  return s;
}

double ErrorReport::worst() const {
  return std::max({mean_latency_err, p50_latency_err, p99_latency_err,
                   runtime_err});
}

ErrorReport compare(const RunSummary& truth, const RunSummary& model) {
  ErrorReport e;
  e.mean_latency_err = rel_err(model.mean_latency, truth.mean_latency);
  e.p50_latency_err = rel_err(static_cast<double>(model.p50_latency),
                              static_cast<double>(truth.p50_latency));
  e.p99_latency_err = rel_err(static_cast<double>(model.p99_latency),
                              static_cast<double>(truth.p99_latency));
  e.runtime_err = rel_err(static_cast<double>(model.runtime),
                          static_cast<double>(truth.runtime));
  return e;
}

}  // namespace sctm::core
