#include "common/rng.hpp"

#include <cmath>

namespace sctm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  // Degenerate probabilities are exact and consume no state: p <= 0 can never
  // fire and p >= 1 always does, independent of float rounding in
  // next_double() (which returns values in [0, 1) — `< p` alone would make
  // p = 1 "always" only by accident of the open interval, and a NaN p would
  // silently mean "never"). NaN compares false on both guards and falls
  // through to the draw, where `< NaN` is false: NaN means never, explicitly.
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  // Unsigned subtraction: hi - lo as signed arithmetic overflows (UB) as soon
  // as the span exceeds int64 max — e.g. next_range(INT64_MIN, INT64_MAX),
  // whose span + 1 also wraps to 0. Modular uint64 arithmetic is exact for
  // every lo <= hi, with the full-range case served by a raw draw.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == ~std::uint64_t{0}) return static_cast<std::int64_t>(next_u64());
  const std::uint64_t off = next_below(span + 1);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + off);
}

double Rng::next_exponential(double mean) {
  // A non-positive (or NaN) mean is a degenerate distribution, not a licence
  // for 0 * -inf = NaN: return 0 exactly, consuming no state.
  if (!(mean > 0.0)) return 0.0;
  // Inverse-CDF; 1 - u avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace sctm
