file(REMOVE_RECURSE
  "libsctm_sim.a"
)
