#include "enoc/power.hpp"

namespace sctm::enoc {

double EnergyBreakdown::watts(std::uint64_t cycles, double clock_ghz) const {
  if (cycles == 0) return 0.0;
  const double seconds = static_cast<double>(cycles) / (clock_ghz * 1e9);
  return total_pj() * 1e-12 / seconds;
}

EnergyBreakdown compute_enoc_energy(const StatRegistry& stats,
                                    const std::string& network_name,
                                    int router_count,
                                    std::uint64_t active_cycles,
                                    const EnocEnergyParams& params) {
  EnergyBreakdown out;
  const std::string prefix = network_name + ".r";
  for (const auto& name : stats.names()) {
    if (name.rfind(prefix, 0) != 0) continue;
    const auto val = static_cast<double>(stats.counter_value(name));
    if (name.ends_with(".buffer_writes")) {
      out.buffer_pj += val * params.buffer_write_pj;
    } else if (name.ends_with(".buffer_reads")) {
      out.buffer_pj += val * params.buffer_read_pj;
    } else if (name.ends_with(".xbar_traversals")) {
      out.xbar_pj += val * params.xbar_traversal_pj;
    } else if (name.ends_with(".link_traversals")) {
      out.link_pj += val * params.link_traversal_pj;
    } else if (name.ends_with(".sa_grants") || name.ends_with(".va_grants")) {
      out.arbiter_pj += val * params.arbitration_pj;
    }
  }
  out.static_pj = params.router_leakage_pj_per_cycle *
                  static_cast<double>(router_count) *
                  static_cast<double>(active_cycles);
  return out;
}

}  // namespace sctm::enoc
