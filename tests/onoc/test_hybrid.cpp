#include "onoc/hybrid_network.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "noc/traffic.hpp"

namespace sctm::onoc {
namespace {

using noc::Message;
using noc::Topology;

Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = noc::MsgClass::kData;
  return m;
}

TEST(Hybrid, PolicySteersByDistanceAndSize) {
  Simulator sim;
  const auto topo = Topology::mesh(4, 4);
  HybridParams p;
  p.distance_threshold = 3;
  p.size_threshold = 64;
  HybridNetwork net(sim, "hy", topo, p);
  // Short+near -> electrical.
  EXPECT_FALSE(net.goes_optical(make_msg(1, 0, 1, 8)));
  // Far -> optical even when small.
  EXPECT_TRUE(net.goes_optical(make_msg(2, 0, 15, 8)));
  // Big -> optical even when near.
  EXPECT_TRUE(net.goes_optical(make_msg(3, 0, 1, 64)));
  // Loopback always electrical-side bookkeeping.
  EXPECT_FALSE(net.goes_optical(make_msg(4, 5, 5, 512)));
}

TEST(Hybrid, DeliversOnBothLayers) {
  Simulator sim;
  const auto topo = Topology::mesh(4, 4);
  HybridNetwork net(sim, "hy", topo, HybridParams{});
  int delivered = 0;
  net.set_deliver_callback([&](const Message&) { ++delivered; });
  net.inject(make_msg(1, 0, 1, 8));    // electrical
  net.inject(make_msg(2, 0, 15, 8));   // optical (distance)
  net.inject(make_msg(3, 5, 6, 512));  // optical (size)
  sim.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.electrical_count(), 1u);
  EXPECT_EQ(net.optical_count(), 2u);
  EXPECT_NEAR(net.optical_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(net.injected_count(), 3u);
  EXPECT_EQ(net.delivered_count(), 3u);
}

TEST(Hybrid, LayerCountersMatchSteering) {
  Simulator sim;
  const auto topo = Topology::mesh(4, 4);
  HybridNetwork net(sim, "hy", topo, HybridParams{});
  net.set_deliver_callback([](const Message&) {});
  MsgId id = 1;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s != d) net.inject(make_msg(id++, s, d, 8));
    }
  }
  sim.run();
  EXPECT_EQ(net.electrical().delivered_count(), net.electrical_count());
  EXPECT_EQ(net.optical().delivered_count(), net.optical_count());
  EXPECT_EQ(net.delivered_count(), 240u);
}

TEST(Hybrid, ThresholdExtremesDegenerate) {
  Simulator sim;
  const auto topo = Topology::mesh(4, 4);
  HybridParams all_optical;
  all_optical.distance_threshold = 1;
  all_optical.size_threshold = 1;
  HybridNetwork opt(sim, "hy1", topo, all_optical);
  opt.set_deliver_callback([](const Message&) {});
  opt.inject(make_msg(1, 0, 1, 4));
  HybridParams all_electrical;
  all_electrical.distance_threshold = 100;
  all_electrical.size_threshold = 1u << 30;
  HybridNetwork el(sim, "hy2", topo, all_electrical);
  el.set_deliver_callback([](const Message&) {});
  el.inject(make_msg(1, 0, 15, 4096));
  sim.run();
  EXPECT_EQ(opt.optical_count(), 1u);
  EXPECT_EQ(opt.electrical_count(), 0u);
  EXPECT_EQ(el.optical_count(), 0u);
  EXPECT_EQ(el.electrical_count(), 1u);
}

TEST(Hybrid, LosslessUnderSyntheticLoad) {
  Simulator sim;
  const auto topo = Topology::mesh(4, 4);
  HybridNetwork net(sim, "hy", topo, HybridParams{});
  noc::TrafficGenerator::Params tp;
  tp.injection_rate = 0.15;
  tp.packet_bytes = 8;  // below the size threshold: distance decides
  tp.warmup = 200;
  tp.measure = 2000;
  tp.seed = 31;
  noc::TrafficGenerator gen(sim, "gen", net, topo, tp);
  gen.run_to_completion();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.injected_count(), net.delivered_count());
  EXPECT_GT(net.optical_count(), 0u);
  EXPECT_GT(net.electrical_count(), 0u);
}

TEST(Hybrid, FullSystemRunsAndCapturesFixedPoint) {
  using namespace core;
  fullsys::AppParams app;
  app.name = "fft";
  app.cores = 16;
  app.lines_per_core = 8;
  app.iterations = 1;
  NetSpec spec;
  spec.kind = NetKind::kHybrid;
  const auto exec = run_execution(app, spec, {});
  EXPECT_GT(exec.trace.records.size(), 100u);
  const auto rep = run_replay(exec.trace, spec, {});
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < exec.trace.records.size(); ++i) {
    if (rep.result.inject_time[i] != exec.trace.records[i].inject_time ||
        rep.result.arrive_time[i] != exec.trace.records[i].arrive_time) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(Hybrid, ShortMessagesFasterThanPureOnoc) {
  // The hybrid's reason to exist: near/short messages skip E/O conversion
  // and arbitration.
  auto mean_short_latency = [](core::NetKind kind) {
    Simulator sim;
    const auto topo = Topology::mesh(4, 4);
    core::NetSpec spec;
    spec.kind = kind;
    auto net = core::make_factory(spec)(sim);
    noc::TrafficGenerator::Params tp;
    tp.injection_rate = 0.05;
    tp.packet_bytes = 8;
    tp.pattern = noc::TrafficPattern::kNeighbor;  // distance-1 traffic
    tp.warmup = 200;
    tp.measure = 2000;
    tp.seed = 17;
    noc::TrafficGenerator gen(sim, "gen", *net, topo, tp);
    gen.run_to_completion();
    return gen.latency().mean();
  };
  EXPECT_LT(mean_short_latency(core::NetKind::kHybrid),
            mean_short_latency(core::NetKind::kOnocSetup));
}

}  // namespace
}  // namespace sctm::onoc
