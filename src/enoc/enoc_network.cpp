#include "enoc/enoc_network.hpp"

#include <stdexcept>

namespace sctm::enoc {

EnocNetwork::EnocNetwork(Simulator& sim, std::string name,
                         const noc::Topology& topo, const EnocParams& params)
    : Network(sim, std::move(name), topo.node_count()),
      topo_(topo),
      params_(params) {
  if (!noc::compatible(topo_, params_.routing)) {
    throw std::invalid_argument(this->name() +
                                ": routing algorithm incompatible with " +
                                topo_.describe());
  }
  routers_.reserve(static_cast<std::size_t>(topo_.node_count()));
  for (NodeId n = 0; n < topo_.node_count(); ++n) {
    routers_.push_back(std::make_unique<Router>(
        sim, this->name() + ".r" + std::to_string(n), n, topo_, params_,
        static_cast<RouterCallbacks&>(*this)));
  }
}

void EnocNetwork::inject(noc::Message msg) {
  note_injected(msg);
  const std::uint32_t nflits = params_.flits_for(msg.size_bytes);
  std::vector<Flit> flits;
  flits.reserve(nflits);
  for (std::uint32_t i = 0; i < nflits; ++i) {
    Flit f;
    f.msg = msg.id;
    f.src = msg.src;
    f.dst = msg.dst;
    f.cls = msg.cls;
    f.seq = i;
    f.is_head = (i == 0);
    f.is_tail = (i == nflits - 1);
    f.injected_at = msg.inject_time;
    flits.push_back(f);
  }
  pending_.emplace(msg.id, PendingMsg{msg, nflits});
  routers_[static_cast<std::size_t>(msg.src)]->inject(std::move(flits));
  ++in_flight_;
  ensure_ticking();
}

namespace {
// FNV-1a style mixing for the activity hash.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

void EnocNetwork::forward_flit(NodeId node, int out_dir, const Flit& flit) {
  activity_hash_ = mix(activity_hash_,
                       (static_cast<std::uint64_t>(sim().now()) << 24) ^
                           (flit.msg << 8) ^
                           (static_cast<std::uint64_t>(flit.seq) << 4) ^
                           static_cast<std::uint64_t>(node * 8 + out_dir));
  if (probe_) probe_(sim().now(), out_dir, flit.msg, node);
  const NodeId next = topo_.neighbor(node, out_dir);
  if (next == kInvalidNode) {
    throw std::logic_error(name() + ": flit forwarded off the fabric edge");
  }
  const int arrival_port =
      topo_.kind() == noc::Topology::Kind::kRing
          ? (out_dir == noc::kRingCw ? noc::kRingCcw : noc::kRingCw)
          : noc::Topology::opposite(out_dir);
  Flit f = flit;
  auto ev = [this, next, arrival_port, f] {
    routers_[static_cast<std::size_t>(next)]->receive_flit(arrival_port, f);
  };
  static_assert(InlineFn::fits_inline<decltype(ev)>(),
                "link-traversal closure must stay within the event SBO budget");
  sim().schedule_in(params_.link_latency, std::move(ev));
}

void EnocNetwork::eject_flit(NodeId node, const Flit& flit) {
  activity_hash_ = mix(activity_hash_,
                       (static_cast<std::uint64_t>(sim().now()) << 24) ^
                           (flit.msg << 8) ^
                           (static_cast<std::uint64_t>(flit.seq) << 4) ^
                           static_cast<std::uint64_t>(node * 8 + 7));
  if (probe_) probe_(sim().now(), -1, flit.msg, node);
  const auto it = pending_.find(flit.msg);
  if (it == pending_.end()) {
    throw std::logic_error(name() + ": ejected flit of unknown message");
  }
  if (it->second.msg.dst != node) {
    throw std::logic_error(name() + ": flit ejected at wrong node");
  }
  if (--it->second.flits_remaining == 0) {
    noc::Message msg = it->second.msg;
    pending_.erase(it);
    --in_flight_;
    deliver(msg);
  }
}

void EnocNetwork::return_credit(NodeId node, int in_dir, int vc) {
  // The credit goes to the upstream router that feeds our input port
  // `in_dir`: that is our neighbor through `in_dir` itself, and the flit left
  // it through the opposite port.
  const NodeId up = topo_.neighbor(node, in_dir);
  if (up == kInvalidNode) {
    throw std::logic_error(name() + ": credit to nonexistent neighbor");
  }
  const int up_out =
      topo_.kind() == noc::Topology::Kind::kRing
          ? (in_dir == noc::kRingCw ? noc::kRingCcw : noc::kRingCw)
          : noc::Topology::opposite(in_dir);
  sim().schedule_in(params_.credit_latency, [this, up, up_out, vc] {
    routers_[static_cast<std::size_t>(up)]->receive_credit(up_out, vc);
  });
}

void EnocNetwork::ensure_ticking() {
  if (ticking_) return;
  ticking_ = true;
  sim().schedule_in(1, [this] { tick(); });
}

void EnocNetwork::tick() {
  ++active_cycles_;
  for (auto& r : routers_) r->tick();
  if (in_flight_ > 0) {
    sim().schedule_in(1, [this] { tick(); });
  } else {
    ticking_ = false;
  }
}

}  // namespace sctm::enoc
