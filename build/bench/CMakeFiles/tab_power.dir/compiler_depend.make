# Empty compiler generated dependencies file for tab_power.
# This may be replaced when dependencies are built.
