#include "common/run_metrics.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/json.hpp"
#include "common/table.hpp"

namespace sctm {

void write_table_json(JsonWriter& w, const Table& t) {
  w.begin_object();
  w.key("title");
  w.value(t.title());
  w.key("header");
  w.begin_array();
  for (const auto& h : t.header()) w.value(h);
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (const auto& row : t.rows()) {
    w.begin_array();
    for (const auto& cell : row) w.value(cell);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void RunManifest::set(std::string_view key, std::string value) {
  for (auto& [k, v] : config) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  config.emplace_back(std::string(key), std::move(value));
}

void RunManifest::set(std::string_view key, std::uint64_t value) {
  set(key, std::to_string(value));
}

void RunManifest::set(std::string_view key, std::int64_t value) {
  set(key, std::to_string(value));
}

void RunMetrics::add_phase(std::string name, double wall_seconds,
                           std::uint64_t events) {
  phases_.push_back({std::move(name), wall_seconds, events});
}

void RunMetrics::add_phases(const std::vector<PhaseMetrics>& phases) {
  phases_.insert(phases_.end(), phases.begin(), phases.end());
}

void RunMetrics::add_histogram(std::string name, const Histogram& h,
                               bool with_buckets) {
  histograms_.push_back({std::move(name), h, with_buckets});
}

std::string RunMetrics::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kMetricsSchema);

  w.key("manifest");
  w.begin_object();
  w.key("tool");
  w.value(manifest.tool);
  w.key("created");
  w.value(manifest.created);
  w.key("config");
  w.begin_object();
  for (const auto& [k, v] : manifest.config) {
    w.key(k);
    w.value(v);
  }
  w.end_object();
  w.end_object();

  w.key("phases");
  w.begin_array();
  for (const auto& p : phases_) {
    w.begin_object();
    w.key("name");
    w.value(p.name);
    w.key("wall_seconds");
    w.value(p.wall_seconds);
    w.key("events");
    w.value(p.events);
    w.end_object();
  }
  w.end_array();

  w.key("stats");
  w.begin_object();
  w.key("counters");
  stats_.write_counters_json(w);
  w.key("accumulators");
  stats_.write_accumulators_json(w);
  w.key("histograms");
  w.begin_object();
  for (const auto& h : histograms_) {
    w.key(h.name);
    h.hist.write_json(w, h.with_buckets);
  }
  w.end_object();
  w.end_object();

  w.key("results");
  if (results_json_.empty()) {
    w.begin_object();
    w.end_object();
  } else {
    w.raw(results_json_);
  }
  w.end_object();
  return std::move(w).str();
}

void RunMetrics::write_file(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("RunMetrics: cannot write " + path);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) throw std::runtime_error("RunMetrics: short write to " + path);
}

namespace {

bool check(bool cond, const char* what, std::string* err) {
  if (!cond && err) *err = what;
  return cond;
}

}  // namespace

bool validate_metrics_doc(const JsonValue& doc, std::string* err) {
  if (!check(doc.is_object(), "document is not an object", err)) return false;

  const JsonValue* schema = doc.find("schema");
  if (!check(schema && schema->is_string(), "missing string 'schema'", err)) {
    return false;
  }
  if (!check(schema->string == kMetricsSchema, "unknown schema identifier",
             err)) {
    return false;
  }

  const JsonValue* manifest = doc.find("manifest");
  if (!check(manifest && manifest->is_object(), "missing object 'manifest'",
             err)) {
    return false;
  }
  const JsonValue* tool = manifest->find("tool");
  if (!check(tool && tool->is_string() && !tool->string.empty(),
             "manifest.tool must be a non-empty string", err)) {
    return false;
  }
  const JsonValue* config = manifest->find("config");
  if (!check(config && config->is_object(), "manifest.config must be an object",
             err)) {
    return false;
  }

  const JsonValue* phases = doc.find("phases");
  if (!check(phases && phases->is_array(), "missing array 'phases'", err)) {
    return false;
  }
  for (const JsonValue& p : phases->array) {
    if (!check(p.is_object(), "phase entry is not an object", err)) {
      return false;
    }
    const JsonValue* name = p.find("name");
    const JsonValue* wall = p.find("wall_seconds");
    if (!check(name && name->is_string(), "phase missing string 'name'", err)) {
      return false;
    }
    if (!check(wall && wall->is_number() && wall->number >= 0.0,
               "phase missing non-negative number 'wall_seconds'", err)) {
      return false;
    }
  }

  const JsonValue* stats = doc.find("stats");
  if (!check(stats && stats->is_object(), "missing object 'stats'", err)) {
    return false;
  }
  for (const char* section : {"counters", "accumulators", "histograms"}) {
    const JsonValue* s = stats->find(section);
    if (!check(s && s->is_object(),
               "stats section missing or not an object", err)) {
      if (err) *err = std::string("stats.") + section + ": " + *err;
      return false;
    }
  }
  for (const auto& [k, v] : stats->find("counters")->object) {
    (void)k;
    if (!check(v.is_number(), "counter value is not a number", err)) {
      return false;
    }
  }

  const JsonValue* results = doc.find("results");
  if (!check(results && results->is_object(), "missing object 'results'",
             err)) {
    return false;
  }
  return true;
}

bool validate_metrics_json(std::string_view text, std::string* err) {
  JsonValue doc;
  if (!json_parse(text, &doc, err)) {
    if (err) *err = "parse error: " + *err;
    return false;
  }
  return validate_metrics_doc(doc, err);
}

}  // namespace sctm
