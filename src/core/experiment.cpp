#include "core/experiment.hpp"

#include <stdexcept>
#include <string>

#include "noc/routing.hpp"

namespace sctm::core {

namespace {

/// "net config[:line]: " prefix for topology-key errors (line available only
/// when the config was parsed from text).
std::string at(const Config& cfg, const std::string& key) {
  if (const auto line = cfg.source_line(key)) {
    return "net config:" + std::to_string(*line) + ": ";
  }
  return "net config: ";
}

}  // namespace

noc::Topology topology_from_config(const Config& cfg) {
  const std::string kind = cfg.get_string("net.topology", "mesh");
  const int w = static_cast<int>(cfg.get_int("net.mesh_width", 4));
  const int h = static_cast<int>(cfg.get_int("net.mesh_height", 4));
  if (kind == "mesh") return noc::Topology::mesh(w, h);
  if (kind == "torus") return noc::Topology::torus(w, h);
  if (kind == "ring") {
    return noc::Topology::ring(
        static_cast<int>(cfg.get_int("net.ring_nodes", w * h)));
  }
  if (kind == "mesh3d" || kind == "torus3d") {
    const int d = static_cast<int>(cfg.get_int("net.mesh_depth", 2));
    return kind == "mesh3d" ? noc::Topology::mesh3d(w, h, d)
                            : noc::Topology::torus3d(w, h, d);
  }
  if (kind == "file") {
    if (!cfg.contains("net.topology.file")) {
      throw std::runtime_error(
          at(cfg, "net.topology") +
          "net.topology = file requires net.topology.file = <path>");
    }
    return noc::Topology::from_file(cfg.get_string("net.topology.file"));
  }
  throw std::runtime_error(at(cfg, "net.topology") +
                           "net.topology: unknown kind '" + kind +
                           "' (known: mesh, torus, ring, mesh3d, torus3d, "
                           "file)");
}

NetKind net_kind_from(const std::string& name) {
  if (name == "ideal") return NetKind::kIdeal;
  if (name == "enoc") return NetKind::kEnoc;
  if (name == "onoc-token") return NetKind::kOnocToken;
  if (name == "onoc-setup") return NetKind::kOnocSetup;
  if (name == "onoc-swmr") return NetKind::kOnocSwmr;
  if (name == "hybrid") return NetKind::kHybrid;
  throw std::invalid_argument("unknown network kind: " + name);
}

NetSpec netspec_from_config(const Config& cfg, const std::string& which) {
  NetSpec spec;
  spec.kind = net_kind_from(cfg.get_string(which + ".kind", "enoc"));
  spec.topo = topology_from_config(cfg);
  spec.ideal.base_latency = static_cast<Cycle>(
      cfg.get_int("ideal.base_latency",
                  static_cast<std::int64_t>(spec.ideal.base_latency)));
  spec.ideal.per_hop_latency = static_cast<Cycle>(
      cfg.get_int("ideal.per_hop_latency",
                  static_cast<std::int64_t>(spec.ideal.per_hop_latency)));
  spec.enoc = enoc::EnocParams::from_config(cfg);
  if (!cfg.contains("enoc.routing")) {
    // Without an explicit algorithm the fabric picks its natural one, so
    // 3D and file topologies work out of the box ("xy" would reject them).
    spec.enoc.routing = noc::default_algo(spec.topo);
  }
  spec.onoc = onoc::OnocParams::from_config(cfg);
  spec.hybrid.electrical = spec.enoc;
  spec.hybrid.optical = spec.onoc;
  spec.hybrid.distance_threshold = static_cast<int>(
      cfg.get_int("hybrid.distance_threshold", 3));
  spec.hybrid.size_threshold = static_cast<std::uint32_t>(
      cfg.get_int("hybrid.size_threshold", 64));
  spec.fault = fault::FaultSpec::from_config(cfg);
  return spec;
}

fullsys::AppParams app_from_config(const Config& cfg) {
  fullsys::AppParams app;
  app.name = cfg.get_string("app.name", "fft");
  app.cores = static_cast<int>(cfg.get_int("app.cores", 16));
  app.lines_per_core =
      static_cast<int>(cfg.get_int("app.lines_per_core", 16));
  app.iterations = static_cast<int>(cfg.get_int("app.iterations", 2));
  app.compute_per_line =
      static_cast<int>(cfg.get_int("app.compute_per_line", 8));
  app.seed = static_cast<std::uint64_t>(cfg.get_int("app.seed", 1));
  return app;
}

ReplayConfig replay_from_config(const Config& cfg) {
  ReplayConfig rc;
  const std::string mode = cfg.get_string("replay.mode", "sctm");
  if (mode == "naive") rc.mode = ReplayMode::kNaive;
  else if (mode == "sctm") rc.mode = ReplayMode::kSelfCorrecting;
  else throw std::invalid_argument("replay.mode must be naive or sctm");
  if (cfg.contains("replay.window")) {
    rc.dependency_window =
        static_cast<std::uint32_t>(cfg.get_int("replay.window"));
  }
  rc.max_iterations =
      static_cast<int>(cfg.get_int("replay.max_iterations", rc.max_iterations));
  return rc;
}

Table run_experiment(const Config& cfg) {
  const std::string mode = cfg.get_string("experiment.mode", "exec");
  const auto app = app_from_config(cfg);
  const auto sys = fullsys::FullSysParams::from_config(cfg);
  const auto target = netspec_from_config(cfg, "target");

  if (mode == "exec") {
    const auto exec = run_execution(app, target, sys);
    const auto s = summarize(exec.trace);
    Table t("exec: " + app.name + " on " + target.describe());
    t.set_header({"metric", "value"});
    t.add_row({"runtime (cycles)", Table::fmt(static_cast<std::uint64_t>(
                                       exec.runtime))});
    t.add_row({"messages", Table::fmt(static_cast<std::uint64_t>(
                               exec.trace.records.size()))});
    t.add_row({"latency mean", Table::fmt(s.mean_latency, 2)});
    t.add_row({"latency p99", Table::fmt(static_cast<std::uint64_t>(
                                  s.p99_latency))});
    t.add_row({"wall seconds", Table::fmt(exec.wall_seconds, 4)});
    return t;
  }

  const auto capture_spec = netspec_from_config(cfg, "capture");
  const auto capture = run_execution(app, capture_spec, sys);

  if (mode == "replay") {
    const auto rc = replay_from_config(cfg);
    const auto rep = run_replay(capture.trace, target, rc);
    const auto s = summarize(capture.trace, rep.result);
    Table t("replay: " + app.name + " (" + capture_spec.describe() + " -> " +
            target.describe() + ", " + to_string(rc.mode) + ")");
    t.set_header({"metric", "value"});
    t.add_row({"runtime (cycles)",
               Table::fmt(static_cast<std::uint64_t>(s.runtime))});
    t.add_row({"latency mean", Table::fmt(s.mean_latency, 2)});
    t.add_row({"latency p99", Table::fmt(static_cast<std::uint64_t>(
                                  s.p99_latency))});
    t.add_row({"iterations",
               Table::fmt(static_cast<std::int64_t>(rep.result.iterations))});
    t.add_row({"wall seconds", Table::fmt(rep.wall_seconds, 4)});
    return t;
  }

  if (mode == "accuracy") {
    const auto truth_run = run_execution(app, target, sys);
    ReplayConfig naive_cfg;
    naive_cfg.mode = ReplayMode::kNaive;
    const auto naive = run_replay(capture.trace, target, naive_cfg);
    const auto sctm = run_replay(capture.trace, target,
                                 replay_from_config(cfg));
    const auto truth = summarize(truth_run.trace);
    const auto en = compare(truth, summarize(capture.trace, naive.result));
    const auto es = compare(truth, summarize(capture.trace, sctm.result));
    Table t("accuracy: " + app.name + " (" + capture_spec.describe() +
            " -> " + target.describe() + ")");
    t.set_header({"model", "runtime err", "latency err", "p99 err"});
    t.add_row({"naive", Table::pct(en.runtime_err),
               Table::pct(en.mean_latency_err), Table::pct(en.p99_latency_err)});
    t.add_row({"sctm", Table::pct(es.runtime_err),
               Table::pct(es.mean_latency_err), Table::pct(es.p99_latency_err)});
    return t;
  }

  throw std::invalid_argument("experiment.mode must be exec, replay or "
                              "accuracy (got " + mode + ")");
}

}  // namespace sctm::core
