// Channel-sharded arbitration determinism tests for the optical plane.
//
// The claim under test (see DESIGN.md §10): sharding a cycle's queued
// arbitration requests across a WorkerPool by contiguous channel range is
// *bit-identical* to the serial flush — same delivery (id, timestamp)
// sequence, same kernel event count, same full stat registry — because each
// TokenRing / SWMR busy horizon is owned by exactly one channel, grants are
// recorded into per-shard outboxes, and the drain applies them in ascending
// shard (hence ascending channel) order, which is the serial flush's exact
// walk. These tests drive OnocNetwork (token and SWMR arbitration) and the
// HybridNetwork (both planes sharding independently over one shared pool)
// directly with pools of several sizes, grain forced to 0 so even small
// cycles shard, on a contended many-writers-per-channel workload.
#include "onoc/onoc_network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "onoc/hybrid_network.hpp"

namespace sctm::onoc {
namespace {

using noc::Message;
using noc::MsgClass;
using noc::Topology;

enum class Net { kToken, kSwmr, kHybrid };

const char* name_of(Net n) {
  switch (n) {
    case Net::kToken: return "token";
    case Net::kSwmr: return "swmr";
    case Net::kHybrid: return "hybrid";
  }
  return "?";
}

Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = MsgClass::kData;
  return m;
}

struct WorkloadResult {
  std::uint64_t events = 0;
  std::string stats_report;
  std::vector<std::pair<MsgId, Cycle>> deliveries;

  bool operator==(const WorkloadResult&) const = default;
};

/// Contended workload: staggered bursts on an 8x8 mesh where many writers
/// target few receive channels in the same cycle (token mode arbitrates per
/// dst, SWMR per src — the burst pattern loads both keyings; the hybrid's
/// size mix steers part of each burst to each plane). threads == 0 means no
/// pool at all; grain 0 shards whenever a pool is installed. `chain` adds a
/// delivery-triggered same-cycle reply inject, which must re-arm the
/// late-band arbitration flush within the delivery cycle.
WorkloadResult run_workload(Net which, unsigned threads, bool chain = false) {
  Simulator sim;
  const auto topo = Topology::mesh(8, 8);
  std::unique_ptr<noc::Network> net;
  switch (which) {
    case Net::kToken: {
      OnocParams p;
      p.arbitration = Arbitration::kTokenRing;
      net = std::make_unique<OnocNetwork>(sim, "onoc", topo, p);
      break;
    }
    case Net::kSwmr: {
      OnocParams p;
      p.arbitration = Arbitration::kSwmr;
      net = std::make_unique<OnocNetwork>(sim, "onoc", topo, p);
      break;
    }
    case Net::kHybrid: {
      net = std::make_unique<HybridNetwork>(sim, "hybrid", topo,
                                            HybridParams{});
      break;
    }
  }
  EXPECT_TRUE(net->partitioned_tick_supported());
  net->set_parallel_grain(0);
  std::unique_ptr<WorkerPool> pool;
  if (threads > 0) {
    pool = std::make_unique<WorkerPool>(threads);
    sim.set_worker_pool(pool.get());
  }
  WorkloadResult out;
  MsgId next = 1;
  MsgId reply_next = 100000;  // distinct id space: one reply per original
  net->set_deliver_callback([&](const Message& m) {
    out.deliveries.emplace_back(m.id, sim.now());
    if (chain && m.id < 100000) {
      net->inject(make_msg(reply_next++, m.dst, m.src, 48));
    }
  });
  for (int burst = 0; burst < 6; ++burst) {
    sim.schedule_in(static_cast<Cycle>(burst * 50), [&net, &next, burst] {
      for (int i = 0; i < 16; ++i) {
        // Many writers, four hot receive channels; a few hot sources too.
        const auto src = static_cast<NodeId>((burst * 11 + i * 3) % 64);
        auto dst = static_cast<NodeId>((burst + i % 4) * 9 % 64);
        if (dst == src) dst = (dst + 1) % 64;
        net->inject(make_msg(next++, src, dst, 32 + 24 * (i % 4)));
      }
    });
  }
  sim.run();
  out.events = sim.events_executed();
  out.stats_report = sim.stats().report();
  return out;
}

class ParallelArb : public ::testing::TestWithParam<Net> {};

TEST_P(ParallelArb, ShardedMatchesSerialBitExactly) {
  const WorkloadResult serial = run_workload(GetParam(), /*threads=*/0);
  ASSERT_EQ(serial.deliveries.size(), 96u);
  for (const unsigned threads : {1u, 2u, 3u, 4u, 8u}) {
    const WorkloadResult sharded = run_workload(GetParam(), threads);
    EXPECT_EQ(sharded.deliveries, serial.deliveries)
        << "threads=" << threads;
    EXPECT_EQ(sharded.events, serial.events) << "threads=" << threads;
    EXPECT_EQ(sharded.stats_report, serial.stats_report)
        << "threads=" << threads;
  }
}

TEST_P(ParallelArb, DeliveryChainedInjectsStayBitExact) {
  // A reply injected from the deliver callback queues arbitration in the
  // delivery cycle after that cycle's flush already ran; the re-armed flush
  // must behave identically under sharding.
  const WorkloadResult serial =
      run_workload(GetParam(), /*threads=*/0, /*chain=*/true);
  ASSERT_EQ(serial.deliveries.size(), 192u);  // originals + replies
  for (const unsigned threads : {2u, 4u}) {
    const WorkloadResult sharded =
        run_workload(GetParam(), threads, /*chain=*/true);
    EXPECT_EQ(sharded, serial) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(OpticalPlanes, ParallelArb,
                         ::testing::Values(Net::kToken, Net::kSwmr,
                                           Net::kHybrid),
                         [](const auto& info) {
                           return std::string(name_of(info.param));
                         });

// Path-setup arbitration is a distributed protocol over the electrical
// control mesh, not a per-channel computation — it takes the serial-fallback
// contract and must say so.
TEST(ParallelArb, PathSetupDeclinesPartitioning) {
  Simulator sim;
  OnocParams p;
  p.arbitration = Arbitration::kPathSetup;
  OnocNetwork net(sim, "onoc", Topology::mesh(4, 4), p);
  EXPECT_FALSE(net.partitioned_tick_supported());
}

}  // namespace
}  // namespace sctm::onoc
