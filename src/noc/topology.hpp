// Topologies: regular 2D/3D fabrics and file-defined irregular graphs.
//
// The topology is a graph: every instance — mesh, torus, ring, mesh3d,
// torus3d, or a file-defined fabric — is backed by one immutable adjacency +
// per-node port table (neighbor ids, arrival ports, wrap flags, port axes)
// shared across copies. The regular kinds keep their closed-form coordinate
// accessors (coords/node_at/distance) so the legacy 2D surface is
// bit-identical to the enum-dispatch implementation, while routers, routing
// tables and tools read the graph and never special-case a kind.
//
// Port numbering is uniform across the regular kinds so routing functions
// stay topology-agnostic: directional ports first (kEast..kSouth, plus
// kUp/kDown on the 3D kinds, or the two ring directions), then one local
// port at index radix(). File-defined fabrics number a node's ports in edge
// declaration order and may have a different radix per node.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace sctm::noc {

enum Dir : int {
  kEast = 0,
  kWest = 1,
  kNorth = 2,
  kSouth = 3,
  // Third dimension (mesh3d/torus3d): kUp = z+1, kDown = z-1.
  kUp = 4,
  kDown = 5,
  // Ring aliases: clockwise (next node) / counter-clockwise.
  kRingCw = 0,
  kRingCcw = 1,
};

struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;
  bool operator==(const Coord&) const = default;
};

class Topology {
 public:
  enum class Kind { kMesh, kTorus, kRing, kMesh3D, kTorus3D, kFile };

  static Topology mesh(int width, int height);
  static Topology torus(int width, int height);
  static Topology ring(int nodes);
  static Topology mesh3d(int x, int y, int z);
  static Topology torus3d(int x, int y, int z);

  /// Loads a file-defined fabric (see DESIGN.md §13 for the grammar):
  ///   nodes <N>
  ///   edge <a> <b>          # undirected; ports in declaration order
  ///   coord <n> <x> <y> [z] # optional placement (defaults to x=n)
  /// Malformed input throws std::runtime_error anchored as "<path>:<line>:".
  static Topology from_file(const std::string& path);
  /// from_file over in-memory text; errors are anchored to `source`.
  static Topology from_text(const std::string& text,
                            const std::string& source = "<topology>");

  Kind kind() const { return kind_; }
  int width() const { return dx_; }
  int height() const { return dy_; }
  int depth() const { return dz_; }
  int node_count() const { return nodes_; }

  /// Maximum directional ports per router (4 for mesh/torus, 2 for ring,
  /// 6 for the 3D kinds, the max degree for file fabrics).
  int radix() const { return radix_; }
  /// Directional ports of node `n` (== radix() except on file fabrics).
  int radix(NodeId n) const;
  /// Index of the local (ejection/injection) port. Uniform across nodes:
  /// every router reserves radix() directional slots; file-fabric nodes with
  /// fewer edges leave the tail slots disconnected.
  int local_port() const { return radix_; }
  /// Total ports per router including local.
  int port_count() const { return radix_ + 1; }

  Coord coords(NodeId n) const;
  NodeId node_at(Coord c) const;
  bool valid_node(NodeId n) const { return n >= 0 && n < nodes_; }

  /// Neighbor through directional port `dir`; kInvalidNode at a mesh edge or
  /// a disconnected file-fabric port slot.
  NodeId neighbor(NodeId n, int dir) const;

  /// Port on the neighbor that a flit leaving `n` through `dir` arrives on.
  /// For the regular kinds this is opposite(dir) (ring: the other ring
  /// direction); file fabrics store it per edge.
  int arrival_port(NodeId n, int dir) const;

  /// The opposite of a 2D/3D lattice direction (E<->W, N<->S, U<->D);
  /// -1 otherwise. Ring and file fabrics need arrival_port().
  static int opposite(int dir);

  /// True when the link out of `n` through `dir` crosses the wrap-around
  /// seam of a torus/torus3d/ring dimension (dateline VC discipline).
  bool wrap_link(NodeId n, int dir) const;

  /// True for the wrap-around kinds (torus, torus3d, ring): some links cross
  /// a dimension seam, so routers apply the dateline VC discipline.
  bool has_wrap_links() const {
    return kind_ == Kind::kTorus || kind_ == Kind::kTorus3D ||
           kind_ == Kind::kRing;
  }

  /// Dimension index of directional port `dir` at node `n` (x=0, y=1, z=2;
  /// both ring directions are axis 0; file-fabric ports are all axis 0 —
  /// irregular fabrics have no dateline discipline to key off axes).
  int port_axis(NodeId n, int dir) const;

  /// Minimal hop count between two nodes: closed-form for the regular kinds,
  /// an all-pairs BFS table for file fabrics.
  int distance(NodeId a, NodeId b) const;

  /// Average minimal distance over all src!=dst pairs. One BFS pass per
  /// source over the adjacency (O(n * (n + edges))), not a distance() call
  /// per pair.
  double mean_distance() const;

  /// Longest shortest path over all pairs (BFS per source).
  int diameter() const;

  /// Directed (n, dir) pairs with a live neighbor — twice the edge count.
  int link_count() const;

  std::string describe() const;

  /// Memberwise for the regular kinds; structural (adjacency + coords) for
  /// file fabrics, so NetSpec equality — explore session reuse, rebind fast
  /// paths, fault spec identity — stays meaningful.
  bool operator==(const Topology& other) const;

 private:
  /// Immutable shared graph tables. Regular kinds fill them from the lattice
  /// formulas once at construction; file fabrics from the edge list.
  struct Graph {
    int stride = 0;                    // == max radix; row width of tables
    std::vector<NodeId> nbr;           // [n * stride + dir]; kInvalidNode hole
    std::vector<std::int16_t> arrival; // port on nbr; -1 hole
    std::vector<std::int8_t> axis;     // dimension of the port (0/1/2)
    std::vector<std::uint8_t> wrap;    // crosses a torus/ring seam
    std::vector<std::int16_t> degree;  // directional ports per node
    std::vector<Coord> coords;         // file fabrics only (regular: formula)
    std::vector<std::uint16_t> dist;   // file fabrics only: all-pairs BFS
  };

  Topology(Kind kind, int dx, int dy, int dz);
  void build_graph();
  static Topology parse(std::istream& in, const std::string& source);

  Kind kind_;
  int dx_;
  int dy_;
  int dz_;
  int nodes_;
  int radix_;
  std::shared_ptr<const Graph> graph_;
};

}  // namespace sctm::noc
