#include "fullsys/cmp_system.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace sctm::fullsys {

CmpSystem::CmpSystem(Simulator& sim, std::string name, noc::Network& net,
                     const noc::Topology& topo, const FullSysParams& params,
                     std::vector<std::vector<Op>> streams)
    : Component(sim, std::move(name)),
      net_(net),
      topo_(topo),
      params_(params),
      stat_msgs_(counter("messages")) {
  params_.validate();
  const int n = topo_.node_count();
  if (net_.node_count() != n) {
    throw std::invalid_argument(this->name() + ": network/topology mismatch");
  }
  if (static_cast<int>(streams.size()) != n) {
    throw std::invalid_argument(this->name() + ": need one op stream per node");
  }
  if (params_.mc_nodes.empty()) {
    // Default: the fabric's coordinate-extreme nodes — the four 2D corners
    // (same values as ever), eight on a 3D lattice — deduplicated for small
    // fabrics. File fabrics have no lattice corners; the two index extremes
    // stand in.
    std::vector<NodeId> corners;
    if (topo_.kind() == noc::Topology::Kind::kFile) {
      corners = {0, static_cast<NodeId>(n - 1)};
    } else {
      for (const int z : {0, topo_.depth() - 1}) {
        for (const int y : {0, topo_.height() - 1}) {
          for (const int x : {0, topo_.width() - 1}) {
            corners.push_back(topo_.node_at({x, y, z}));
          }
        }
      }
    }
    std::sort(corners.begin(), corners.end());
    corners.erase(std::unique(corners.begin(), corners.end()), corners.end());
    params_.mc_nodes = corners;
  }
  for (const NodeId m : params_.mc_nodes) {
    if (!topo_.valid_node(m)) {
      throw std::invalid_argument(this->name() + ": invalid mc node");
    }
  }

  for (NodeId i = 0; i < n; ++i) {
    cores_.push_back(std::make_unique<Core>(
        sim, this->name() + ".core" + std::to_string(i), i,
        std::move(streams[static_cast<std::size_t>(i)]), params_,
        static_cast<Fabric&>(*this)));
    banks_.push_back(std::make_unique<L2Bank>(
        sim, this->name() + ".bank" + std::to_string(i), i, params_,
        static_cast<Fabric&>(*this)));
  }
  for (const NodeId m : params_.mc_nodes) {
    mcs_.emplace(m, std::make_unique<MemCtrl>(
                        sim, this->name() + ".mc" + std::to_string(m), m,
                        params_, static_cast<Fabric&>(*this)));
  }
  barrier_ = std::make_unique<BarrierManager>(
      sim, this->name() + ".barrier", params_.barrier_home, n,
      params_.dir_latency, static_cast<Fabric&>(*this));

  auto cb = [this](const noc::Message& m) { on_deliver(m); };
  static_assert(noc::Network::DeliverFn::fits_inline<decltype(cb)>(),
                "fabric delivery callback must stay within the SBO budget");
  net_.set_deliver_callback(std::move(cb));
}

NodeId CmpSystem::home_of(std::uint64_t line) const {
  return static_cast<NodeId>(line %
                             static_cast<std::uint64_t>(topo_.node_count()));
}

NodeId CmpSystem::mc_for(std::uint64_t line) const {
  const auto idx = (line / static_cast<std::uint64_t>(topo_.node_count())) %
                   params_.mc_nodes.size();
  return params_.mc_nodes[static_cast<std::size_t>(idx)];
}

MsgId CmpSystem::send(ProtoMsg type, NodeId src, NodeId dst,
                      std::uint64_t line, const std::vector<MsgId>& causes) {
  noc::Message m;
  m.id = next_msg_id_++;
  m.src = src;
  m.dst = dst;
  m.size_bytes = size_of(type);
  m.cls = class_of(type);
  m.tag = encode_tag(type, line);
  ++stat_msgs_;

  if (observer_) {
    InjectionEvent ev;
    ev.msg = m;
    ev.msg.inject_time = now();  // the network stamps the real copy too
    ev.proto = type;
    ev.deps.reserve(causes.size());
    for (const MsgId c : causes) {
      const Cycle* arrived = arrival_time_.find(c);
      if (arrived == nullptr) {
        throw std::logic_error(name() + ": cause message never arrived");
      }
      ev.deps.push_back({c, now() - *arrived});
    }
    observer_(ev);
  }
  net_.inject(m);
  return m.id;
}

void CmpSystem::on_deliver(const noc::Message& msg) {
  arrival_time_.insert_or_assign(msg.id, now());
  if (deliver_observer_) deliver_observer_(msg);
  const ProtoMsg type = tag_type(msg.tag);
  const std::uint64_t line = tag_line(msg.tag);
  switch (type) {
    case ProtoMsg::kGetS:
    case ProtoMsg::kGetM:
    case ProtoMsg::kPutM:
    case ProtoMsg::kInvAck:
    case ProtoMsg::kRecallData:
    case ProtoMsg::kRecallStale:
    case ProtoMsg::kMemData:
    case ProtoMsg::kUnblock:
      banks_[static_cast<std::size_t>(msg.dst)]->on_message(type, msg.src,
                                                            line, msg.id);
      return;
    case ProtoMsg::kData:
    case ProtoMsg::kDataM:
    case ProtoMsg::kWbAck:
    case ProtoMsg::kInv:
    case ProtoMsg::kRecall:
    case ProtoMsg::kBarRelease:
      cores_[static_cast<std::size_t>(msg.dst)]->on_message(type, line,
                                                            msg.id);
      return;
    case ProtoMsg::kMemRead:
    case ProtoMsg::kMemWrite: {
      const auto it = mcs_.find(msg.dst);
      if (it == mcs_.end()) {
        throw std::logic_error(name() + ": memory message at non-MC node");
      }
      it->second->on_message(type, msg.src, line, msg.id);
      return;
    }
    case ProtoMsg::kBarArrive:
      barrier_->on_arrive(msg.src, msg.id);
      return;
  }
  throw std::logic_error(name() + ": unroutable message");
}

void CmpSystem::start() {
  for (auto& c : cores_) c->start();
}

bool CmpSystem::finished() const {
  return std::all_of(cores_.begin(), cores_.end(),
                     [](const auto& c) { return c->done(); });
}

Cycle CmpSystem::app_runtime() const {
  Cycle t = 0;
  for (const auto& c : cores_) {
    if (!c->done()) return kNoCycle;
    t = std::max(t, c->finish_time());
  }
  return t;
}

std::vector<std::string> CmpSystem::audit_coherence() const {
  std::vector<std::string> out;
  const int n = topo_.node_count();

  // Gather every L1 copy, keyed by line.
  struct Copy {
    NodeId holder;
    LineState state;
  };
  std::unordered_map<std::uint64_t, std::vector<Copy>> copies;
  for (NodeId c = 0; c < n; ++c) {
    cores_[static_cast<std::size_t>(c)]->l1().for_each_line(
        [&](std::uint64_t line, LineState st) {
          copies[line].push_back({c, st});
        });
  }

  for (const auto& [line, held] : copies) {
    int m_holders = 0;
    for (const auto& cp : held) {
      if (cp.state == LineState::kM) ++m_holders;
    }
    if (m_holders > 1) {
      out.push_back("line " + std::to_string(line) + ": " +
                    std::to_string(m_holders) + " M holders");
    }
  }

  for (NodeId b = 0; b < n; ++b) {
    const auto& bank = *banks_[static_cast<std::size_t>(b)];
    if (!bank.quiescent()) {
      out.push_back("bank " + std::to_string(b) + ": in-flight transaction");
    }
    bank.for_each_dir_entry([&](std::uint64_t line, LineState st, NodeId owner,
                                const std::set<NodeId>& sharers) {
      const auto it = copies.find(line);
      const auto* held = it == copies.end() ? nullptr : &it->second;
      if (st == LineState::kM) {
        bool found = false;
        if (held) {
          for (const auto& cp : *held) {
            if (cp.holder == owner && cp.state == LineState::kM) found = true;
          }
        }
        if (!found) {
          out.push_back("line " + std::to_string(line) + ": dir says M@" +
                        std::to_string(owner) + " but owner lacks M copy");
        }
      }
      if (held) {
        for (const auto& cp : *held) {
          if (cp.state == LineState::kM &&
              (st != LineState::kM || owner != cp.holder)) {
            out.push_back("line " + std::to_string(line) + ": core " +
                          std::to_string(cp.holder) +
                          " holds M unregistered at the directory");
          }
          if (cp.state == LineState::kS &&
              (st != LineState::kS || sharers.find(cp.holder) == sharers.end())) {
            out.push_back("line " + std::to_string(line) + ": core " +
                          std::to_string(cp.holder) +
                          " holds S unregistered at the directory");
          }
        }
      }
    });
  }
  return out;
}

Cycle CmpSystem::run_to_completion() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t events0 = sim().events_executed();
  start();
  sim().run();
  run_wall_seconds_ = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  run_events_ = sim().events_executed() - events0;
  if (!finished()) {
    throw std::logic_error(name() +
                           ": simulation drained but cores not finished "
                           "(protocol deadlock?)");
  }
  return app_runtime();
}

}  // namespace sctm::fullsys
