// Set-associative LRU cache (tag/state only — dataless).
//
// Used for private L1s (states I/S/M) and for the L2 banks' data-presence
// array (states I/S). Lines are identified by line number (address >> 6).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace sctm::fullsys {

enum class LineState : std::uint8_t { kI = 0, kS, kM };

class Cache {
 public:
  /// `sets` must be a power of two; capacity = sets * ways lines.
  Cache(int sets, int ways);

  struct Line {
    std::uint64_t line_no = 0;
    LineState state = LineState::kI;
  };

  /// State of `line_no` (kI when absent). Does not touch LRU.
  LineState probe(std::uint64_t line_no) const;

  /// Lookup that promotes the line to MRU on hit.
  LineState lookup(std::uint64_t line_no);

  /// Chooses the victim an insert of `line_no` would evict: the LRU line of
  /// the set, or nullopt if a free (or same-line) way exists.
  std::optional<Line> victim_for(std::uint64_t line_no) const;

  /// Inserts (or updates) `line_no` with `state` as MRU. Returns the evicted
  /// line if any (never the inserted line itself).
  std::optional<Line> insert(std::uint64_t line_no, LineState state);

  /// Downgrades/updates state in place; false when absent.
  bool set_state(std::uint64_t line_no, LineState state);

  /// Removes the line; false when absent.
  bool invalidate(std::uint64_t line_no);

  int sets() const { return sets_; }
  int ways() const { return ways_; }
  std::uint64_t capacity_lines() const {
    return static_cast<std::uint64_t>(sets_) * static_cast<std::uint64_t>(ways_);
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Calls `fn(line_no, state)` for every valid line (audit/debug).
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (const auto& way : ways_storage_) {
      if (way.state != LineState::kI) fn(way.line_no, way.state);
    }
  }

 private:
  struct Way {
    std::uint64_t line_no = 0;
    LineState state = LineState::kI;
    std::uint64_t lru = 0;  // last-touch stamp
  };

  int set_of(std::uint64_t line_no) const {
    return static_cast<int>(line_no & (static_cast<std::uint64_t>(sets_) - 1));
  }
  Way* find(std::uint64_t line_no);
  const Way* find(std::uint64_t line_no) const;

  int sets_;
  int ways_;
  std::vector<Way> ways_storage_;  // [set * ways + way]
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sctm::fullsys
