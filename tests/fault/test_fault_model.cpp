// Unit tests for the fault-injection layer (DESIGN.md §11): FaultSpec
// parsing/validation/manifest echo, the FaultModel draw streams and the
// bounded-retry recovery ladder, the TokenRing loss hook, and the loss-budget
// BER erosion model. Network-level lossless-under-faults is covered at the
// end; the thread-count determinism matrix lives in
// test_fault_determinism.cpp.
#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "enoc/enoc_network.hpp"
#include "fault/fault_spec.hpp"
#include "onoc/loss.hpp"
#include "onoc/onoc_network.hpp"
#include "onoc/token.hpp"

namespace sctm::fault {
namespace {

// --- FaultSpec ------------------------------------------------------------

TEST(FaultSpec, DefaultIsInert) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_TRUE(spec.manifest_entries().empty());
  EXPECT_NO_THROW(spec.validate());
}

TEST(FaultSpec, AnyNonzeroRateEnables) {
  for (auto set : {+[](FaultSpec& s) { s.enoc_flit_corrupt_rate = 0.1; },
                   +[](FaultSpec& s) { s.enoc_flit_drop_rate = 0.1; },
                   +[](FaultSpec& s) { s.enoc_link_stuck_rate = 0.1; },
                   +[](FaultSpec& s) { s.onoc_token_loss_rate = 0.1; },
                   +[](FaultSpec& s) { s.onoc_reservation_loss_rate = 0.1; },
                   +[](FaultSpec& s) { s.onoc_ring_drift_sigma_c = 5.0; },
                   +[](FaultSpec& s) { s.onoc_laser_degradation_db = 0.5; }}) {
    FaultSpec spec;
    set(spec);
    EXPECT_TRUE(spec.enabled());
    EXPECT_FALSE(spec.manifest_entries().empty());
  }
  // Changing only the seed or the protocol constants does not enable faults.
  FaultSpec seeded;
  seeded.seed = 99;
  seeded.max_retries = 7;
  EXPECT_FALSE(seeded.enabled());
}

TEST(FaultSpec, ValidateRejectsOutOfRange) {
  FaultSpec bad_rate;
  bad_rate.enoc_flit_corrupt_rate = 1.5;
  EXPECT_THROW(bad_rate.validate(), std::invalid_argument);
  FaultSpec neg_rate;
  neg_rate.onoc_token_loss_rate = -0.1;
  EXPECT_THROW(neg_rate.validate(), std::invalid_argument);
  FaultSpec bad_retries;
  bad_retries.max_retries = -1;
  EXPECT_THROW(bad_retries.validate(), std::invalid_argument);
  FaultSpec bad_regen;
  bad_regen.onoc_token_regen_cycles = 0;
  EXPECT_THROW(bad_regen.validate(), std::invalid_argument);
}

TEST(FaultSpec, WithSeedChangesOnlyTheSeed) {
  FaultSpec spec;
  spec.enoc_flit_corrupt_rate = 0.25;
  const FaultSpec other = spec.with_seed(77);
  EXPECT_EQ(other.seed, 77u);
  EXPECT_EQ(other.enoc_flit_corrupt_rate, 0.25);
  FaultSpec expect = spec;
  expect.seed = 77;
  EXPECT_EQ(other, expect);
}

TEST(FaultSpec, FromConfigRoundTrip) {
  const auto cfg = Config::from_string(
      "fault.seed = 7\n"
      "fault.enoc_flit_corrupt_rate = 0.01\n"
      "fault.onoc_token_loss_rate = 0.02\n"
      "fault.onoc_ring_drift_sigma_c = 25\n"
      "fault.max_retries = 5\n"
      "fault.nack_cycles = 8\n");
  const FaultSpec spec = FaultSpec::from_config(cfg);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.enoc_flit_corrupt_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.onoc_token_loss_rate, 0.02);
  EXPECT_DOUBLE_EQ(spec.onoc_ring_drift_sigma_c, 25.0);
  EXPECT_EQ(spec.max_retries, 5);
  EXPECT_EQ(spec.nack_cycles, 8u);
  // Untouched fields keep their defaults.
  EXPECT_DOUBLE_EQ(spec.enoc_flit_drop_rate, 0.0);
  EXPECT_EQ(spec.onoc_token_regen_cycles, 64u);
  EXPECT_TRUE(spec.enabled());
}

TEST(FaultSpec, FromConfigEmptyIsInert) {
  const FaultSpec spec = FaultSpec::from_config(Config::from_string(""));
  EXPECT_EQ(spec, FaultSpec{});
  EXPECT_FALSE(spec.enabled());
}

TEST(FaultSpec, FromConfigRejectsUnknownFaultKey) {
  // A typo'd rate must not silently leave the fabric perfect; the error
  // names the offending key and line.
  const auto cfg =
      Config::from_string("fault.seed = 3\nfault.flit_corrupt_rate = 0.1\n");
  try {
    (void)FaultSpec::from_config(cfg);
    FAIL() << "expected unknown-key error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fault.flit_corrupt_rate"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

TEST(FaultSpec, FromConfigValidates) {
  const auto cfg = Config::from_string("fault.enoc_flit_drop_rate = 2.0\n");
  EXPECT_THROW((void)FaultSpec::from_config(cfg), std::invalid_argument);
}

TEST(FaultSpec, ManifestEchoesNonDefaultFields) {
  FaultSpec spec;
  spec.seed = 9;
  spec.onoc_token_loss_rate = 0.05;
  spec.max_retries = 2;
  const auto entries = spec.manifest_entries();
  ASSERT_FALSE(entries.empty());
  bool saw_seed = false, saw_rate = false, saw_retries = false,
       saw_default = false;
  for (const auto& [k, v] : entries) {
    if (k == "fault.seed") saw_seed = (v == "9");
    if (k == "fault.onoc_token_loss_rate") saw_rate = true;
    if (k == "fault.max_retries") saw_retries = (v == "2");
    if (k == "fault.enoc_flit_drop_rate") saw_default = true;  // still 0
  }
  EXPECT_TRUE(saw_seed);
  EXPECT_TRUE(saw_rate);
  EXPECT_TRUE(saw_retries);
  EXPECT_FALSE(saw_default);  // defaults are not echoed
}

// --- FaultModel draw streams ----------------------------------------------

FaultSpec busy_spec() {
  FaultSpec spec;
  spec.seed = 11;
  spec.enoc_flit_corrupt_rate = 0.5;
  spec.enoc_flit_drop_rate = 0.3;
  spec.enoc_link_stuck_rate = 0.2;
  spec.onoc_token_loss_rate = 0.4;
  spec.onoc_reservation_loss_rate = 0.4;
  return spec;
}

TEST(FaultModel, RegistersCountersUnderPrefix) {
  StatRegistry stats;
  FaultModel model(busy_spec(), stats, "net.fault", 4);
  for (const char* name :
       {"net.fault.flit_corrupt", "net.fault.flit_drop", "net.fault.link_stuck",
        "net.fault.token_loss", "net.fault.reservation_loss",
        "net.fault.optical_corrupt", "net.fault.retransmissions",
        "net.fault.messages_lost", "net.fault.messages_recovered"}) {
    EXPECT_TRUE(stats.has_counter(name)) << name;
    EXPECT_EQ(stats.counter_value(name), 0u) << name;
  }
  EXPECT_TRUE(stats.has_accumulator("net.fault.recovery_penalty_cycles"));
}

TEST(FaultModel, ConstructionValidatesSpec) {
  StatRegistry stats;
  FaultSpec bad;
  bad.enoc_flit_corrupt_rate = 3.0;
  EXPECT_THROW(FaultModel(bad, stats, "f", 1), std::invalid_argument);
}

TEST(FaultModel, ZeroRateDrawsNeverFireAndTouchNoStream) {
  // Zero-rate classes short-circuit before the RNG, so an enabled spec with
  // some classes off draws an identical sequence for the live ones.
  FaultSpec only_corrupt;
  only_corrupt.seed = 13;
  only_corrupt.enoc_flit_corrupt_rate = 0.5;
  FaultSpec with_dead_classes = only_corrupt;  // drop/stuck rates stay 0

  StatRegistry sa, sb;
  FaultModel a(only_corrupt, sa, "f", 2);
  FaultModel b(with_dead_classes, sb, "f", 2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(b.draw_flit_drop());
    EXPECT_FALSE(b.draw_link_stuck_onset());
    EXPECT_EQ(a.draw_flit_corrupt(), b.draw_flit_corrupt()) << i;
  }
  EXPECT_EQ(sb.counter_value("f.flit_drop"), 0u);
  EXPECT_EQ(sb.counter_value("f.link_stuck"), 0u);
}

TEST(FaultModel, DrawsCountWhatTheyReport) {
  StatRegistry stats;
  FaultModel model(busy_spec(), stats, "f", 4);
  std::uint64_t corrupt = 0, drop = 0, stuck = 0, resv = 0;
  for (int i = 0; i < 1000; ++i) {
    corrupt += model.draw_flit_corrupt() ? 1 : 0;
    drop += model.draw_flit_drop() ? 1 : 0;
    stuck += model.draw_link_stuck_onset() ? 1 : 0;
    resv += model.draw_reservation_loss() ? 1 : 0;
  }
  EXPECT_GT(corrupt, 0u);
  EXPECT_GT(drop, 0u);
  EXPECT_GT(stuck, 0u);
  EXPECT_GT(resv, 0u);
  EXPECT_EQ(stats.counter_value("f.flit_corrupt"), corrupt);
  EXPECT_EQ(stats.counter_value("f.flit_drop"), drop);
  EXPECT_EQ(stats.counter_value("f.link_stuck"), stuck);
  EXPECT_EQ(stats.counter_value("f.reservation_loss"), resv);

  model.note_stuck_hit();  // attributed to corruption, no draw
  EXPECT_EQ(stats.counter_value("f.flit_corrupt"), corrupt + 1);
}

TEST(FaultModel, TokenLossStreamsArePerChannel) {
  // Each channel owns its child stream: the draw sequence on one channel is
  // independent of how draws interleave with other channels. This is the
  // property that makes sharded arbitration shard-count-invariant.
  const FaultSpec spec = busy_spec();
  StatRegistry sa, sb;
  FaultModel interleaved(spec, sa, "f", 3);
  FaultModel sequential(spec, sb, "f", 3);

  std::vector<std::vector<bool>> inter(3), seq(3);
  for (int i = 0; i < 100; ++i) {
    for (int c = 0; c < 3; ++c) {
      inter[static_cast<std::size_t>(c)].push_back(
          interleaved.draw_token_loss(c));
    }
  }
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 100; ++i) {
      seq[static_cast<std::size_t>(c)].push_back(
          sequential.draw_token_loss(c));
    }
  }
  EXPECT_EQ(inter, seq);

  // Lane draws count nothing; the fold at drain owns the counter.
  EXPECT_EQ(sa.counter_value("f.token_loss"), 0u);
  interleaved.note_token_losses(17);
  interleaved.note_token_losses(5);
  EXPECT_EQ(sa.counter_value("f.token_loss"), 22u);
}

TEST(FaultModel, OpticalCorruptDegenerateProbabilities) {
  StatRegistry stats;
  FaultModel model(busy_spec(), stats, "f", 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(model.draw_optical_corrupt(0.0));
    EXPECT_FALSE(model.draw_optical_corrupt(-1.0));
    EXPECT_TRUE(model.draw_optical_corrupt(1.0));
  }
  EXPECT_EQ(stats.counter_value("f.optical_corrupt"), 100u);
}

TEST(FaultModel, ResetRewindsEveryStream) {
  StatRegistry stats;
  FaultModel model(busy_spec(), stats, "f", 3);
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) {
    first.push_back(model.draw_flit_corrupt());
    first.push_back(model.draw_flit_drop());
    first.push_back(model.draw_reservation_loss());
    first.push_back(model.draw_optical_corrupt(0.5));
    first.push_back(model.draw_token_loss(i % 3));
  }
  (void)model.on_corrupt_message(42, 100);
  EXPECT_EQ(model.open_retries(), 1u);

  model.reset();
  EXPECT_EQ(model.open_retries(), 0u);  // retry table cleared in place
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) {
    second.push_back(model.draw_flit_corrupt());
    second.push_back(model.draw_flit_drop());
    second.push_back(model.draw_reservation_loss());
    second.push_back(model.draw_optical_corrupt(0.5));
    second.push_back(model.draw_token_loss(i % 3));
  }
  EXPECT_EQ(first, second);
}

TEST(FaultModel, SeedsDecorrelateStreams) {
  const FaultSpec a = busy_spec();
  const FaultSpec b = a.with_seed(~a.seed);  // the hybrid per-layer derivation
  StatRegistry sa, sb;
  FaultModel ma(a, sa, "f", 1), mb(b, sb, "f", 1);
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    same += ma.draw_flit_corrupt() == mb.draw_flit_corrupt() ? 1 : 0;
  }
  EXPECT_LT(same, 256);  // not the same stream
}

// --- Bounded-retry recovery ladder ----------------------------------------

TEST(FaultModel, RetryLadderIsBoundedAndCounted) {
  FaultSpec spec = busy_spec();
  spec.max_retries = 3;
  StatRegistry stats;
  FaultModel model(spec, stats, "f", 1);

  const MsgId id = 7;
  // Attempts 1..max_retries: retransmit, each counted.
  for (int attempt = 1; attempt <= 3; ++attempt) {
    EXPECT_EQ(model.on_corrupt_message(id, 100 + attempt),
              FaultModel::Action::kRetransmit)
        << attempt;
    EXPECT_EQ(stats.counter_value("f.retransmissions"),
              static_cast<std::uint64_t>(attempt));
    EXPECT_EQ(model.open_retries(), 1u);
  }
  // Budget exhausted: give up, close the episode, count the loss.
  EXPECT_EQ(model.on_corrupt_message(id, 200), FaultModel::Action::kGiveUp);
  EXPECT_EQ(stats.counter_value("f.messages_lost"), 1u);
  EXPECT_EQ(stats.counter_value("f.messages_recovered"), 0u);
  EXPECT_EQ(model.open_retries(), 0u);
  // The detect-to-surface penalty of the lost message was recorded.
  const Accumulator& pen = stats.accumulator("f.recovery_penalty_cycles");
  EXPECT_EQ(pen.count(), 1u);
  EXPECT_DOUBLE_EQ(pen.max(), 200.0 - 101.0);

  // A later corruption of the same id is a fresh episode.
  EXPECT_EQ(model.on_corrupt_message(id, 300),
            FaultModel::Action::kRetransmit);
  EXPECT_EQ(model.open_retries(), 1u);
}

TEST(FaultModel, CleanDeliveryClosesEpisodeWithPenalty) {
  StatRegistry stats;
  FaultModel model(busy_spec(), stats, "f", 1);

  // Never-corrupted messages are a no-op.
  model.on_clean_delivery(1, 50);
  EXPECT_EQ(stats.counter_value("f.messages_recovered"), 0u);

  EXPECT_EQ(model.on_corrupt_message(2, 100),
            FaultModel::Action::kRetransmit);
  EXPECT_EQ(model.on_corrupt_message(2, 140),
            FaultModel::Action::kRetransmit);  // second attempt, same episode
  model.on_clean_delivery(2, 180);
  EXPECT_EQ(stats.counter_value("f.messages_recovered"), 1u);
  EXPECT_EQ(stats.counter_value("f.messages_lost"), 0u);
  EXPECT_EQ(model.open_retries(), 0u);
  const Accumulator& pen = stats.accumulator("f.recovery_penalty_cycles");
  EXPECT_EQ(pen.count(), 1u);
  EXPECT_DOUBLE_EQ(pen.mean(), 80.0);  // first detect 100 -> delivered 180

  EXPECT_EQ(model.nack_delay(), FaultSpec{}.nack_cycles);
}

TEST(FaultModel, ZeroRetryBudgetSurfacesImmediately) {
  FaultSpec spec = busy_spec();
  spec.max_retries = 0;
  StatRegistry stats;
  FaultModel model(spec, stats, "f", 1);
  EXPECT_EQ(model.on_corrupt_message(9, 10), FaultModel::Action::kGiveUp);
  EXPECT_EQ(stats.counter_value("f.retransmissions"), 0u);
  EXPECT_EQ(stats.counter_value("f.messages_lost"), 1u);
}

// --- TokenRing loss hook ---------------------------------------------------

TEST(TokenRingFaults, LoseTokenStallsChannelUntilRegeneration) {
  onoc::TokenRing ring(/*nodes=*/4, /*hop_latency=*/1);
  EXPECT_EQ(ring.acquire(/*s=*/0, /*t=*/0, /*hold=*/10), 0u);
  EXPECT_EQ(ring.free_at(), 10u);

  // Loss while busy: the regeneration timeout stacks on the channel horizon.
  ring.lose_token(/*t=*/5, /*regen=*/64);
  EXPECT_EQ(ring.free_at(), 74u);  // max(5, 10) + 64
  // The regenerated token sits at the home node: writer 0 is granted the
  // instant the channel frees, writer 2 waits two hops more.
  EXPECT_EQ(ring.position_at(74), 0);
  EXPECT_EQ(ring.acquire(/*s=*/2, /*t=*/20, /*hold=*/1), 76u);

  // Loss while idle: the timeout runs from the loss instant.
  onoc::TokenRing idle(4, 1);
  idle.lose_token(/*t=*/100, /*regen=*/32);
  EXPECT_EQ(idle.free_at(), 132u);
  EXPECT_EQ(idle.acquire(/*s=*/0, /*t=*/100, /*hold=*/1), 132u);
}

TEST(TokenRingFaults, LoseTokenEnforcesTimeOrder) {
  onoc::TokenRing ring(4, 1);
  (void)ring.acquire(1, 50, 1);
  EXPECT_THROW(ring.lose_token(10, 64), std::logic_error);
}

TEST(TokenRingFaults, ResetClearsLossHorizon) {
  onoc::TokenRing ring(4, 1);
  ring.lose_token(10, 1000);
  ring.reset();
  EXPECT_EQ(ring.free_at(), 0u);
  EXPECT_EQ(ring.acquire(0, 0, 1), 0u);
}

// --- Loss-budget BER erosion ----------------------------------------------

TEST(LossBudgetFaults, BitErrorRateErosion) {
  const onoc::LossBudgetInputs in;  // shipped device defaults
  // Fault-free link is modeled error-free.
  EXPECT_EQ(onoc::faulted_bit_error_rate(in, 0.0, 0.0), 0.0);
  EXPECT_EQ(onoc::faulted_bit_error_rate(in, -1.0, -1.0), 0.0);

  // Monotone in both knobs, never above 0.5 (random guessing).
  double prev = 0.0;
  for (const double drift : {1.0, 5.0, 10.0, 25.0, 100.0, 1000.0}) {
    const double ber = onoc::faulted_bit_error_rate(in, drift, 0.0);
    EXPECT_GE(ber, prev) << "drift=" << drift;
    EXPECT_LE(ber, 0.5) << "drift=" << drift;
    prev = ber;
  }
  EXPECT_GT(prev, 1e-3);  // deep in the cliff the link is effectively broken
  EXPECT_GT(onoc::faulted_bit_error_rate(in, 10.0, 3.0),
            onoc::faulted_bit_error_rate(in, 10.0, 0.0));
  // Small erosion within the design margin stays near the calibrated 1e-12.
  const double mild = onoc::faulted_bit_error_rate(in, 0.5, 0.0);
  EXPECT_GT(mild, 0.0);
  EXPECT_LT(mild, 1e-9);
}

// --- Network-level: lossless under faults ---------------------------------

noc::Message make_msg(MsgId id, NodeId src, NodeId dst, std::uint32_t bytes) {
  noc::Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.size_bytes = bytes;
  m.cls = noc::MsgClass::kData;
  return m;
}

/// Injects all-pairs traffic, runs to quiescence, and returns the finish
/// time. Asserts the lossless contract: every injected message delivered.
template <typename Net>
Cycle run_all_pairs(Simulator& sim, Net& net) {
  int delivered = 0;
  net.set_deliver_callback([&](const noc::Message&) { ++delivered; });
  MsgId id = 1;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s != d) net.inject(make_msg(id++, s, d, 64));
    }
  }
  sim.run();
  EXPECT_EQ(delivered, 16 * 15);
  EXPECT_EQ(net.injected_count(), net.delivered_count());
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.fault_model() == nullptr ? 0u
                                         : net.fault_model()->open_retries(),
            0u);
  return sim.now();
}

TEST(FaultedNetwork, EnocStaysLosslessUnderHeavyFaults) {
  // Heavy fault pressure on all-pairs traffic: every message must still
  // arrive (retransmitted, or surfaced after the retry budget runs out) —
  // the replay contract is a lossless fabric, faults or not.
  const auto topo = noc::Topology::mesh(4, 4);
  FaultSpec fs;
  fs.seed = 3;
  fs.enoc_flit_corrupt_rate = 0.02;
  fs.enoc_flit_drop_rate = 0.01;
  fs.enoc_link_stuck_rate = 0.002;

  Simulator sim;
  enoc::EnocNetwork net(sim, "net", topo, enoc::EnocParams{});
  net.install_fault_model(fs);
  const Cycle faulted_finish = run_all_pairs(sim, net);

  // Faults actually fired and the recovery protocol ran to completion.
  StatRegistry& st = sim.stats();
  EXPECT_GT(st.counter_value("net.fault.flit_corrupt") +
                st.counter_value("net.fault.flit_drop"),
            0u);
  EXPECT_GT(st.counter_value("net.fault.retransmissions"), 0u);
  EXPECT_GT(st.counter_value("net.fault.messages_recovered"), 0u);
  EXPECT_GT(st.accumulator("net.fault.recovery_penalty_cycles").count(), 0u);

  // Recovery costs cycles: the same traffic finishes later than fault-free.
  Simulator clean_sim;
  enoc::EnocNetwork clean(clean_sim, "net", topo, enoc::EnocParams{});
  EXPECT_GT(faulted_finish, run_all_pairs(clean_sim, clean));
}

TEST(FaultedNetwork, OnocTokenLossCompletesAndSlowsArbitration) {
  const auto topo = noc::Topology::mesh(4, 4);
  onoc::OnocParams params;
  params.arbitration = onoc::Arbitration::kTokenRing;
  FaultSpec fs;
  fs.seed = 5;
  fs.onoc_token_loss_rate = 0.05;

  Simulator sim;
  onoc::OnocNetwork net(sim, "net", topo, params);
  net.install_fault_model(fs);
  const Cycle faulted_finish = run_all_pairs(sim, net);
  EXPECT_GT(sim.stats().counter_value("net.fault.token_loss"), 0u);

  Simulator clean_sim;
  onoc::OnocNetwork clean(clean_sim, "net", topo, params);
  EXPECT_GT(faulted_finish, run_all_pairs(clean_sim, clean));
}

TEST(FaultedNetwork, OnocReservationLossRetriesAreBounded) {
  const auto topo = noc::Topology::mesh(4, 4);
  onoc::OnocParams params;
  params.arbitration = onoc::Arbitration::kPathSetup;
  FaultSpec fs;
  fs.seed = 7;
  fs.onoc_reservation_loss_rate = 0.2;  // heavy: most paths retry at least once
  fs.max_retries = 2;

  Simulator sim;
  onoc::OnocNetwork net(sim, "net", topo, params);
  net.install_fault_model(fs);
  (void)run_all_pairs(sim, net);  // completes: grant retries are bounded
  EXPECT_GT(sim.stats().counter_value("net.fault.reservation_loss"), 0u);
}

}  // namespace
}  // namespace sctm::fault
