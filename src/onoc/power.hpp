// Optical NoC energy model.
//
// Static power dominates ONOCs: the laser must overcome the worst-case loss
// budget continuously, and every microring is thermally trimmed. Dynamic
// energy (modulation + detection) is per bit and tiny by comparison. In
// path-setup mode the electrical control mesh adds its own (enoc-modeled)
// energy. This structure — big static floor, small dynamic slope — is the
// shape R-T2/R-T3 must reproduce.
#pragma once

#include <cstdint>

#include "onoc/loss.hpp"
#include "onoc/onoc_network.hpp"

namespace sctm::onoc {

struct OnocEnergyBreakdown {
  double laser_pj = 0;     // electrical laser power x time
  double tuning_pj = 0;    // ring trimming x time
  double dynamic_pj = 0;   // modulation + detection per bit
  double ctrl_pj = 0;      // electrical control mesh (path-setup mode)
  double total_pj() const {
    return laser_pj + tuning_pj + dynamic_pj + ctrl_pj;
  }
  double watts(std::uint64_t cycles, double clock_ghz) const;
};

/// Energy of `net` over `elapsed_cycles` of simulated time. Uses the loss
/// budget implied by the network's own parameters; control-mesh energy is
/// computed from `stats` (the same registry the control EnocNetwork logs to).
OnocEnergyBreakdown compute_onoc_energy(const OnocNetwork& net,
                                        std::uint64_t elapsed_cycles,
                                        const StatRegistry& stats);

/// The loss-budget inputs an OnocNetwork implies (shared with R-T3).
LossBudgetInputs budget_inputs_for(const OnocNetwork& net);

}  // namespace sctm::onoc
