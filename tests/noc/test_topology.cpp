#include "noc/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sctm::noc {
namespace {

TEST(Topology, MeshBasics) {
  const auto t = Topology::mesh(4, 3);
  EXPECT_EQ(t.node_count(), 12);
  EXPECT_EQ(t.radix(), 4);
  EXPECT_EQ(t.local_port(), 4);
  EXPECT_EQ(t.port_count(), 5);
}

TEST(Topology, CoordRoundTrip) {
  const auto t = Topology::mesh(5, 4);
  for (NodeId n = 0; n < t.node_count(); ++n) {
    EXPECT_EQ(t.node_at(t.coords(n)), n);
  }
}

TEST(Topology, MeshNeighborsAndEdges) {
  const auto t = Topology::mesh(3, 3);
  // Center node 4 at (1,1).
  EXPECT_EQ(t.neighbor(4, kEast), 5);
  EXPECT_EQ(t.neighbor(4, kWest), 3);
  EXPECT_EQ(t.neighbor(4, kNorth), 1);
  EXPECT_EQ(t.neighbor(4, kSouth), 7);
  // Corners have no neighbors off the edge.
  EXPECT_EQ(t.neighbor(0, kWest), kInvalidNode);
  EXPECT_EQ(t.neighbor(0, kNorth), kInvalidNode);
  EXPECT_EQ(t.neighbor(8, kEast), kInvalidNode);
  EXPECT_EQ(t.neighbor(8, kSouth), kInvalidNode);
}

TEST(Topology, TorusWraps) {
  const auto t = Topology::torus(3, 3);
  EXPECT_EQ(t.neighbor(2, kEast), 0);
  EXPECT_EQ(t.neighbor(0, kWest), 2);
  EXPECT_EQ(t.neighbor(0, kNorth), 6);
  EXPECT_EQ(t.neighbor(6, kSouth), 0);
}

TEST(Topology, RingNeighbors) {
  const auto t = Topology::ring(5);
  EXPECT_EQ(t.radix(), 2);
  EXPECT_EQ(t.neighbor(4, kRingCw), 0);
  EXPECT_EQ(t.neighbor(0, kRingCcw), 4);
}

TEST(Topology, OppositeDirections) {
  EXPECT_EQ(Topology::opposite(kEast), kWest);
  EXPECT_EQ(Topology::opposite(kWest), kEast);
  EXPECT_EQ(Topology::opposite(kNorth), kSouth);
  EXPECT_EQ(Topology::opposite(kSouth), kNorth);
}

TEST(Topology, MeshDistanceIsManhattan) {
  const auto t = Topology::mesh(4, 4);
  EXPECT_EQ(t.distance(0, 15), 6);
  EXPECT_EQ(t.distance(0, 3), 3);
  EXPECT_EQ(t.distance(5, 5), 0);
}

TEST(Topology, TorusDistanceUsesWrap) {
  const auto t = Topology::torus(4, 4);
  EXPECT_EQ(t.distance(0, 3), 1);   // wrap in x
  EXPECT_EQ(t.distance(0, 12), 1);  // wrap in y
  EXPECT_EQ(t.distance(0, 15), 2);
}

TEST(Topology, RingDistanceShortestWay) {
  const auto t = Topology::ring(6);
  EXPECT_EQ(t.distance(0, 3), 3);
  EXPECT_EQ(t.distance(0, 5), 1);
  EXPECT_EQ(t.distance(1, 4), 3);
}

TEST(Topology, MeanDistanceMatchesClosedFormForRing) {
  // Ring of n=4: distances from any node: 1,2,1 -> mean 4/3.
  const auto t = Topology::ring(4);
  EXPECT_NEAR(t.mean_distance(), 4.0 / 3.0, 1e-12);
}

TEST(Topology, InvalidArgumentsThrow) {
  EXPECT_THROW(Topology::mesh(0, 3), std::invalid_argument);
  EXPECT_THROW(Topology::ring(1), std::invalid_argument);
}

TEST(Topology, DescribeMentionsShape) {
  EXPECT_NE(Topology::mesh(2, 2).describe().find("mesh"), std::string::npos);
  EXPECT_NE(Topology::torus(2, 2).describe().find("torus"), std::string::npos);
  EXPECT_NE(Topology::ring(4).describe().find("ring"), std::string::npos);
}

}  // namespace
}  // namespace sctm::noc
