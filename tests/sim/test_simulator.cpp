#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/component.hpp"

namespace sctm {
namespace {

TEST(Simulator, TimeAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Cycle> seen;
  sim.schedule_at(5, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(2, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<Cycle>{2, 5}));
  EXPECT_EQ(sim.now(), 5u);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Cycle when = 0;
  sim.schedule_at(4, [&] { sim.schedule_in(3, [&] { when = sim.now(); }); });
  sim.run();
  EXPECT_EQ(when, 7u);
}

TEST(Simulator, ZeroDelayRunsSameCycleAfterPending) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1, [&] {
    order.push_back(0);
    sim.schedule_in(0, [&] { order.push_back(2); });
  });
  sim.schedule_at(1, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now(), 1u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(5, [&] { ++ran; });
  sim.schedule_at(15, [&] { ++ran; });
  const auto n = sim.run_until(10);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 10u);  // advanced to deadline, not past it
  sim.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 15u);
}

TEST(Simulator, RunUntilStopsExactlyAtDeadlineMidBucket) {
  // Deadline falls between occupied cycles of the same wheel window: the
  // kernel must drain through the deadline, park time exactly on it, and
  // leave the rest of the window untouched.
  Simulator sim;
  std::vector<Cycle> seen;
  for (const Cycle t : {Cycle{5}, Cycle{39}, Cycle{41}, Cycle{70}}) {
    sim.schedule_at(t, [&, t] { seen.push_back(t); });
  }
  const auto n = sim.run_until(40);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(seen, (std::vector<Cycle>{5, 39}));
  EXPECT_EQ(sim.now(), 40u);
  EXPECT_EQ(sim.pending_events(), 2u);
  // Resuming picks up the remainder in order.
  sim.run_until(41);
  EXPECT_EQ(seen, (std::vector<Cycle>{5, 39, 41}));
  EXPECT_EQ(sim.now(), 41u);
  sim.run();
  EXPECT_EQ(seen, (std::vector<Cycle>{5, 39, 41, 70}));
}

TEST(Simulator, RunUntilDeadlineOnOccupiedCycleRunsThatCycle) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(10, [&] { ++ran; });
  sim.schedule_at(10, [&] { ++ran; });
  sim.run_until(10);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, LateBandRunsAfterAllNormalEventsOfTheCycle) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_late(3, [&] { order.push_back(99); });
  sim.schedule_at(3, [&] {
    order.push_back(0);
    // Normal event scheduled during the cycle still precedes the late band.
    sim.schedule_in(0, [&] { order.push_back(1); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 99}));
}

TEST(Simulator, StopHaltsDispatch) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(1, [&] {
    ++ran;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(1, [&] { ++ran; });
  sim.schedule_at(2, [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ResetTimeClearsQueueAndTime) {
  Simulator sim;
  sim.schedule_at(5, [] {});
  sim.run();
  sim.reset_time();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule_at(1, [] {});  // past-check resets too
  sim.run();
}

TEST(Simulator, CountsEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
  EXPECT_EQ(sim.events_scheduled(), 5u);
}

class Probe : public Component {
 public:
  Probe(Simulator& sim) : Component(sim, "probe") {}
  void bump() { ++counter("hits"); }
  void sample(double v) { accumulator("vals").add(v); }
};

TEST(Component, StatsUseNamePrefix) {
  Simulator sim;
  Probe p(sim);
  p.bump();
  p.bump();
  p.sample(2.0);
  EXPECT_EQ(sim.stats().counter_value("probe.hits"), 2u);
  EXPECT_DOUBLE_EQ(sim.stats().accumulator("probe.vals").mean(), 2.0);
}

TEST(Component, NowTracksSimulator) {
  Simulator sim;
  Probe p(sim);
  Cycle seen = 0;
  sim.schedule_at(9, [&] { seen = p.now(); });
  sim.run();
  EXPECT_EQ(seen, 9u);
}

}  // namespace
}  // namespace sctm
