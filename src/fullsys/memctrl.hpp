// Memory controller: fixed DRAM latency behind a bandwidth-limited FIFO.
//
// One request is accepted every `mem_gap` cycles; a read's reply (MemData)
// leaves `mem_latency` cycles after its service slot. Writes (evicted dirty
// data) consume a slot but need no reply. Queueing delay under contention is
// therefore modeled, which matters for the memory-bound `stream` kernel.
#pragma once

#include "fullsys/fabric.hpp"
#include "fullsys/params.hpp"
#include "sim/component.hpp"

namespace sctm::fullsys {

class MemCtrl : public Component {
 public:
  MemCtrl(Simulator& sim, std::string name, NodeId id,
          const FullSysParams& params, Fabric& fabric);

  void on_message(ProtoMsg type, NodeId src, std::uint64_t line, MsgId msg_id);

  std::uint64_t reads() const { return stat_reads_; }
  std::uint64_t writes() const { return stat_writes_; }

 private:
  NodeId id_;
  FullSysParams params_;
  Fabric& fabric_;
  Cycle next_slot_ = 0;

  std::uint64_t& stat_reads_;
  std::uint64_t& stat_writes_;
  Accumulator& stat_queue_wait_;
};

}  // namespace sctm::fullsys
