#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sctm {
namespace {

/// Two-pass textbook sample variance: sum((x - mean)^2) / (n - 1).
double two_pass_sample_variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

TEST(Accumulator, EmptyIsZero) {
  const Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, MeanMinMax) {
  Accumulator a;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
}

TEST(Accumulator, VarianceMatchesClosedForm) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  // Classic example: population sigma^2 = 4; variance() is the *sample*
  // variance (n-1 denominator), so the expectation is 8*4/7 = 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, SingleSampleVarianceIsZero) {
  Accumulator a;
  a.add(42.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, VarianceMatchesTwoPassReference) {
  std::vector<double> xs;
  Accumulator a;
  for (int i = 0; i < 257; ++i) {
    // Deterministic but irregular values spanning a few orders of magnitude.
    const double x = (i % 7) * 13.25 + (i % 3) * 0.001 + i * 0.5;
    xs.push_back(x);
    a.add(x);
  }
  const double ref = two_pass_sample_variance(xs);
  EXPECT_NEAR(a.variance(), ref, 1e-9 * ref);
  EXPECT_NEAR(a.stddev(), std::sqrt(ref), 1e-9 * std::sqrt(ref));
}

TEST(Accumulator, MergedVarianceMatchesTwoPassReference) {
  std::vector<double> xs;
  Accumulator left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = 5.0 + (i % 11) * 1.75 - (i % 4) * 0.3;
    xs.push_back(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), xs.size());
  const double ref = two_pass_sample_variance(xs);
  EXPECT_NEAR(left.variance(), ref, 1e-9 * ref);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.73;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(StatRegistry, CounterPersistsAndIncrements) {
  StatRegistry reg;
  auto& c = reg.counter("x.y");
  c += 3;
  EXPECT_EQ(reg.counter_value("x.y"), 3u);
  ++reg.counter("x.y");
  EXPECT_EQ(reg.counter_value("x.y"), 4u);
}

TEST(StatRegistry, ReferencesStableAcrossInsertions) {
  StatRegistry reg;
  auto& a = reg.counter("a");
  for (int i = 0; i < 1000; ++i) reg.counter("k" + std::to_string(i));
  a = 42;
  EXPECT_EQ(reg.counter_value("a"), 42u);
}

TEST(StatRegistry, MissingCounterReadsZero) {
  const StatRegistry reg;
  EXPECT_EQ(reg.counter_value("ghost"), 0u);
}

TEST(StatRegistry, AccumulatorRegistered) {
  StatRegistry reg;
  reg.accumulator("lat").add(5.0);
  reg.accumulator("lat").add(7.0);
  EXPECT_DOUBLE_EQ(reg.accumulator("lat").mean(), 6.0);
  EXPECT_TRUE(reg.has_accumulator("lat"));
  EXPECT_FALSE(reg.has_accumulator("nope"));
}

TEST(StatRegistry, NamesSortedAndReportNonEmpty) {
  StatRegistry reg;
  reg.counter("b");
  reg.counter("a");
  reg.accumulator("c").add(1);
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
  EXPECT_FALSE(reg.report().empty());
}

TEST(StatRegistry, ResetClears) {
  StatRegistry reg;
  reg.counter("a") = 1;
  reg.reset();
  EXPECT_FALSE(reg.has_counter("a"));
}

}  // namespace
}  // namespace sctm
