#include "fullsys/cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sctm::fullsys {
namespace {

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(3, 2), std::invalid_argument);
  EXPECT_THROW(Cache(0, 2), std::invalid_argument);
  EXPECT_THROW(Cache(4, 0), std::invalid_argument);
}

TEST(Cache, MissOnEmpty) {
  Cache c(4, 2);
  EXPECT_EQ(c.lookup(5), LineState::kI);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, InsertThenHit) {
  Cache c(4, 2);
  EXPECT_FALSE(c.insert(5, LineState::kS).has_value());
  EXPECT_EQ(c.lookup(5), LineState::kS);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, ProbeDoesNotTouchLruOrStats) {
  Cache c(4, 2);
  c.insert(5, LineState::kM);
  EXPECT_EQ(c.probe(5), LineState::kM);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, LruEviction) {
  Cache c(1, 2);  // one set, two ways
  c.insert(10, LineState::kS);
  c.insert(20, LineState::kS);
  (void)c.lookup(10);  // 20 is now LRU
  const auto evicted = c.insert(30, LineState::kS);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line_no, 20u);
  EXPECT_EQ(c.probe(10), LineState::kS);
  EXPECT_EQ(c.probe(20), LineState::kI);
}

TEST(Cache, VictimForPredictsEviction) {
  Cache c(1, 2);
  c.insert(1, LineState::kM);
  c.insert(2, LineState::kS);
  const auto v = c.victim_for(3);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->line_no, 1u);
  EXPECT_EQ(v->state, LineState::kM);
  // Same line or free way: no victim.
  EXPECT_FALSE(c.victim_for(1).has_value());
  Cache d(1, 2);
  d.insert(1, LineState::kS);
  EXPECT_FALSE(d.victim_for(9).has_value());
}

TEST(Cache, InsertSameLineUpdatesInPlace) {
  Cache c(1, 2);
  c.insert(1, LineState::kS);
  const auto evicted = c.insert(1, LineState::kM);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_EQ(c.probe(1), LineState::kM);
}

TEST(Cache, SetStateAndInvalidate) {
  Cache c(4, 2);
  c.insert(7, LineState::kS);
  EXPECT_TRUE(c.set_state(7, LineState::kM));
  EXPECT_EQ(c.probe(7), LineState::kM);
  EXPECT_TRUE(c.invalidate(7));
  EXPECT_EQ(c.probe(7), LineState::kI);
  EXPECT_FALSE(c.invalidate(7));
  EXPECT_FALSE(c.set_state(99, LineState::kS));
}

TEST(Cache, SetsIndexByLowBits) {
  Cache c(4, 1);
  // Lines 0 and 4 map to set 0; 1 maps to set 1.
  c.insert(0, LineState::kS);
  c.insert(1, LineState::kS);
  const auto evicted = c.insert(4, LineState::kS);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line_no, 0u);
  EXPECT_EQ(c.probe(1), LineState::kS);
}

TEST(Cache, InsertInvalidThrows) {
  Cache c(4, 2);
  EXPECT_THROW(c.insert(1, LineState::kI), std::invalid_argument);
}

TEST(Cache, CapacityLines) {
  EXPECT_EQ(Cache(64, 4).capacity_lines(), 256u);
}

}  // namespace
}  // namespace sctm::fullsys
