#include "enoc/enoc_network.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/parallel.hpp"
#include "sim/simulator.hpp"

namespace sctm::enoc {

EnocNetwork::EnocNetwork(Simulator& sim, std::string name,
                         const noc::Topology& topo, const EnocParams& params)
    : Network(sim, std::move(name), topo.node_count()),
      topo_(topo),
      params_(params),
      routes_(topo, params.routing),
      link_stride_(static_cast<std::size_t>(topo.radix())) {
  if (!noc::compatible(topo_, params_.routing)) {
    throw std::invalid_argument(this->name() +
                                ": routing algorithm incompatible with " +
                                topo_.describe());
  }
  routers_.reserve(static_cast<std::size_t>(topo_.node_count()));
  for (NodeId n = 0; n < topo_.node_count(); ++n) {
    routers_.push_back(std::make_unique<Router>(
        sim, this->name() + ".r" + std::to_string(n), n, topo_, routes_,
        params_));
  }
  active_bits_.assign((static_cast<std::size_t>(topo_.node_count()) + 63) / 64,
                      0);
  shards_.resize(1);
  shards_[0].clear_mask.assign(active_bits_.size(), 0);
  pending_.reserve(64);
}

void EnocNetwork::install_fault_model(const fault::FaultSpec& spec) {
  Network::install_fault_model(spec);
  link_stuck_until_.assign(routers_.size() * link_stride_, 0);
}

void EnocNetwork::reset() {
  Network::reset();
  for (auto& r : routers_) r->reset();
  pending_.clear();
  for (auto& w : active_bits_) w = 0;
  for (auto& c : link_stuck_until_) c = 0;
  for (auto& s : shards_) {
    s.outbox.clear();
    for (auto& w : s.clear_mask) w = 0;
    s.ticks = 0;
  }
  shards_in_use_ = 0;
  in_flight_ = 0;
  // The tick event (if any) died with the simulator's queue reset; the next
  // inject re-arms the clock.
  ticking_ = false;
  active_cycles_ = 0;
  router_ticks_ = 0;
  activity_hash_ = 0;
}

void EnocNetwork::reparameterize(const EnocParams& params) {
  if (!noc::compatible(topo_, params.routing)) {
    throw std::invalid_argument(name() +
                                ": routing algorithm incompatible with " +
                                topo_.describe());
  }
  params.validate(topo_.has_wrap_links());
  routes_.rebuild(topo_, params.routing);
  for (auto& r : routers_) r->reparameterize(params);
  params_ = params;
  reset();
}

void EnocNetwork::mark_active(NodeId n) {
  active_bits_[static_cast<std::size_t>(n) >> 6] |=
      std::uint64_t{1} << (static_cast<std::size_t>(n) & 63);
}

void EnocNetwork::inject(noc::Message msg) {
  note_injected(msg);
  const std::uint32_t nflits = params_.flits_for(msg.size_bytes);
  pending_.insert(msg.id, PendingMsg{msg, nflits});
  routers_[static_cast<std::size_t>(msg.src)]->inject(msg, nflits);
  mark_active(msg.src);
  ++in_flight_;
  ensure_ticking();
}

namespace {
// FNV-1a style mixing for the activity hash.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

void EnocNetwork::apply_forward(NodeId node, int out_dir, const Flit& flit) {
  activity_hash_ = mix(activity_hash_,
                       (static_cast<std::uint64_t>(sim().now()) << 24) ^
                           (flit.msg << 8) ^
                           (static_cast<std::uint64_t>(flit.seq) << 4) ^
                           static_cast<std::uint64_t>(node * 8 + out_dir));
  if (probe_) probe_(sim().now(), out_dir, flit.msg, node);
  if (fault_model() != nullptr) apply_link_faults(node, out_dir, flit);
  const NodeId next = topo_.neighbor(node, out_dir);
  if (next == kInvalidNode) {
    throw std::logic_error(name() + ": flit forwarded off the fabric edge");
  }
  const int arrival_port = topo_.arrival_port(node, out_dir);
  Flit f = flit;
  auto ev = [this, next, arrival_port, f] {
    routers_[static_cast<std::size_t>(next)]->receive_flit(arrival_port, f);
    mark_active(next);
  };
  static_assert(InlineFn::fits_inline<decltype(ev)>(),
                "link-traversal closure must stay within the event SBO budget");
  sim().schedule_in(params_.link_latency, std::move(ev));
}

void EnocNetwork::apply_eject(NodeId node, const Flit& flit) {
  activity_hash_ = mix(activity_hash_,
                       (static_cast<std::uint64_t>(sim().now()) << 24) ^
                           (flit.msg << 8) ^
                           (static_cast<std::uint64_t>(flit.seq) << 4) ^
                           static_cast<std::uint64_t>(node * 8 + 7));
  if (probe_) probe_(sim().now(), -1, flit.msg, node);
  PendingMsg* pm = pending_.find(flit.msg);
  if (pm == nullptr) {
    throw std::logic_error(name() + ": ejected flit of unknown message");
  }
  if (pm->msg.dst != node) {
    throw std::logic_error(name() + ": flit ejected at wrong node");
  }
  if (--pm->flits_remaining == 0) {
    const noc::Message msg = pm->msg;
    const bool bad = pm->fault_bad;
    pending_.erase(flit.msg);
    fault::FaultModel* fm = fault_model();
    if (fm != nullptr && bad) {
      handle_corrupt_message(msg);
      return;
    }
    --in_flight_;
    if (fm != nullptr) fm->on_clean_delivery(msg.id, sim().now());
    deliver(msg);
  }
}

// Runs once per link traversal, at the serial outbox drain — the draw order
// is the drain order, so the fault schedule is bit-identical at any shard
// count. Faults never touch flow control: a corrupted/dropped symbol still
// occupies the downstream datapath (the link-level coding flags it), so
// wormhole and credit state are exactly the fault-free schedule until the
// recovery retransmission perturbs it.
void EnocNetwork::apply_link_faults(NodeId node, int out_dir,
                                    const Flit& flit) {
  fault::FaultModel& fm = *fault_model();
  bool bad = false;
  const std::size_t link = static_cast<std::size_t>(node) * link_stride_ +
                           static_cast<std::size_t>(out_dir);
  if (fm.draw_link_stuck_onset()) {
    link_stuck_until_[link] = sim().now() + fm.spec().enoc_link_stuck_cycles;
  }
  if (sim().now() < link_stuck_until_[link]) {
    fm.note_stuck_hit();
    bad = true;
  }
  if (fm.draw_flit_corrupt()) bad = true;
  if (fm.draw_flit_drop()) bad = true;
  if (bad) {
    if (PendingMsg* pm = pending_.find(flit.msg)) pm->fault_bad = true;
  }
}

// Tail reassembly found a bad flit: ask the model whether the retry budget
// allows another attempt. While the NACK is in flight the message stays
// counted in in_flight_, so the clock keeps running and idle() stays false —
// the lossless contract (and replay's drain) never observes a gap.
void EnocNetwork::handle_corrupt_message(const noc::Message& msg) {
  fault::FaultModel& fm = *fault_model();
  if (fm.on_corrupt_message(msg.id, sim().now()) ==
      fault::FaultModel::Action::kRetransmit) {
    const noc::Message m = msg;
    auto ev = [this, m] { reinject_for_retry(m); };
    static_assert(InlineFn::fits_inline<decltype(ev)>(),
                  "retry closure must stay within the event SBO budget");
    sim().schedule_in(fm.nack_delay(), std::move(ev));
    return;
  }
  // Budget exhausted: surface the (corrupt) message anyway — networks stay
  // lossless — with the loss recorded in <name>.fault.messages_lost.
  --in_flight_;
  deliver(msg);
}

// Source re-injection of a corrupted message. Same flit count, same message
// id, and crucially the original inject_time: end-to-end latency includes
// every failed attempt plus the NACK turnarounds.
void EnocNetwork::reinject_for_retry(const noc::Message& msg) {
  const std::uint32_t nflits = params_.flits_for(msg.size_bytes);
  pending_.insert(msg.id, PendingMsg{msg, nflits, false});
  routers_[static_cast<std::size_t>(msg.src)]->inject(msg, nflits);
  mark_active(msg.src);
  ensure_ticking();
}

void EnocNetwork::apply_credit(NodeId node, int in_dir, int vc) {
  // The credit goes to the upstream router that feeds our input port
  // `in_dir`: that is our neighbor through `in_dir` itself, and the flit left
  // it through the opposite port.
  const NodeId up = topo_.neighbor(node, in_dir);
  if (up == kInvalidNode) {
    throw std::logic_error(name() + ": credit to nonexistent neighbor");
  }
  const int up_out = topo_.arrival_port(node, in_dir);
  // A credit can unblock a router, but never *activate* one: a
  // credit-starved router still holds the blocked flits, so has_work() keeps
  // it in the active set until they drain.
  sim().schedule_in(params_.credit_latency, [this, up, up_out, vc] {
    routers_[static_cast<std::size_t>(up)]->receive_credit(up_out, vc);
  });
}

void EnocNetwork::ensure_ticking() {
  if (ticking_) return;
  ticking_ = true;
  sim().schedule_in(1, [this] { tick(); });
}

void EnocNetwork::prepare_shards(unsigned nshards) {
  if (shards_.size() < nshards) shards_.resize(nshards);
  for (unsigned s = 0; s < nshards; ++s) {
    if (shards_[s].clear_mask.size() != active_bits_.size()) {
      shards_[s].clear_mask.assign(active_bits_.size(), 0);
    }
  }
  shards_in_use_ = nshards;
}

void EnocNetwork::tick() {
  ++active_cycles_;
  // Shard the cycle when a pool is installed and the active set is dense
  // enough to amortize the barriers. The threshold is purely a cost knob:
  // serial and sharded cycles are bit-identical (same outbox + drain path),
  // so flipping between them cycle by cycle is unobservable.
  unsigned nshards = 1;
  if (!exhaustive_tick_) {
    WorkerPool* pool = sim().worker_pool();
    if (pool != nullptr && pool->size() > 1) {
      std::size_t actives = 0;
      for (const std::uint64_t w : active_bits_) actives += std::popcount(w);
      if (actives >= static_cast<std::size_t>(parallel_grain_) * pool->size()) {
        nshards = std::min<unsigned>(
            pool->size(), static_cast<unsigned>(routers_.size()));
      }
    }
  }
  prepare_shards(nshards);
  if (nshards > 1) {
    sim().worker_pool()->run([this, nshards](unsigned lane) {
      if (lane < nshards) tick_partitioned(lane, nshards);
    });
  } else {
    tick_partitioned(0, 1);
  }
  drain_ticks();
  if (in_flight_ > 0) {
    sim().schedule_in(1, [this] { tick(); });
  } else {
    ticking_ = false;
  }
}

void EnocNetwork::tick_partitioned(unsigned shard, unsigned nshards) {
  ShardState& st = shards_[shard];
  if (exhaustive_tick_) {
    // Seed policy (kept as a test oracle): tick every router every cycle.
    // Serial by construction (tick() never shards this mode), but the side
    // effects still flow through the outbox so the oracle exercises the
    // same drain path.
    for (auto& w : active_bits_) w = 0;
    for (auto& r : routers_) {
      if (r->tick(st.outbox)) mark_active(r->id());
      ++st.ticks;
    }
    return;
  }
  // Contiguous router-id range per shard; entries land in the outbox in
  // ascending router-id order within the shard, so the ascending-shard drain
  // replays the serial engine's visit order exactly. The live scoreboard is
  // read-only here — no-work routers are recorded in the shard's clear mask
  // (shards may share a 64-bit word, so concurrent RMW on active_bits_
  // itself would race).
  const std::size_t n = routers_.size();
  const std::size_t lo = n * shard / nshards;
  const std::size_t hi = n * (shard + 1) / nshards;
  for (std::size_t idx = lo; idx < hi;) {
    const std::size_t w = idx >> 6;
    std::uint64_t bits = active_bits_[w] >> (idx & 63);
    if (bits == 0) {
      idx = (w + 1) << 6;  // next word
      continue;
    }
    idx += static_cast<std::size_t>(std::countr_zero(bits));
    if (idx >= hi) break;
    if (!routers_[idx]->tick(st.outbox)) {
      st.clear_mask[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }
    ++st.ticks;
    ++idx;
  }
}

void EnocNetwork::drain_ticks() {
  const unsigned used = shards_in_use_;
  shards_in_use_ = 0;
  // Clear masks first, across ALL shards, before any outbox entry is
  // applied: draining can activate routers synchronously (ejection →
  // delivery → same-cycle reply inject → mark_active), and those
  // activations must survive this cycle's clears.
  for (unsigned s = 0; s < used; ++s) {
    ShardState& st = shards_[s];
    for (std::size_t w = 0; w < active_bits_.size(); ++w) {
      active_bits_[w] &= ~st.clear_mask[w];
      st.clear_mask[w] = 0;
    }
    router_ticks_ += st.ticks;
    st.ticks = 0;
  }
  for (unsigned s = 0; s < used; ++s) {
    for (const auto& e : shards_[s].outbox.entries) {
      switch (e.kind) {
        case RouterOutbox::Entry::Kind::kForward:
          apply_forward(e.node, e.port, e.flit);
          break;
        case RouterOutbox::Entry::Kind::kEject:
          apply_eject(e.node, e.flit);
          break;
        case RouterOutbox::Entry::Kind::kCredit:
          apply_credit(e.node, e.port, e.vc);
          break;
      }
    }
    shards_[s].outbox.clear();
  }
}

}  // namespace sctm::enoc
