// R-A1 ablation: what each ingredient of the self-correction model buys.
//
// Modes compared (same captured trace, same slow target, ground truth
// re-executed on the target):
//   naive                frozen timestamps (no deps at all)
//   W=1, single pass     only the tightest dependency, no iteration
//   W=1, iterative       tightest dependency + fixed-point iteration
//   full                 complete dependency lists, one pass
#include "bench/bench_util.hpp"

int main() {
  using namespace sctm;
  using namespace sctm::bench;

  Table t("R-A1: dependency-model ablation (capture ideal 2 cyc/hop -> "
          "target ideal 16 cyc/hop)");
  t.set_header({"app", "naive err", "W=1 1-pass err", "W=1 iter err",
                "full err"});

  bool ok = true;
  for (const char* name : {"fft", "jacobi", "sort"}) {
    fullsys::AppParams app;
    app.name = name;
    app.cores = 16;
    app.lines_per_core = 16;
    app.iterations = 2;
    const auto capture = core::run_execution(app, ideal_spec(2), {});
    const auto truth_run = core::run_execution(app, ideal_spec(16), {});
    const auto truth = core::summarize(truth_run.trace);

    auto err_of = [&](const core::ReplayConfig& cfg) {
      const auto rep = core::run_replay(capture.trace, ideal_spec(16), cfg);
      return core::compare(truth,
                           core::summarize(capture.trace, rep.result))
          .runtime_err;
    };

    core::ReplayConfig naive;
    naive.mode = core::ReplayMode::kNaive;
    core::ReplayConfig w1_single;
    w1_single.dependency_window = 1;
    w1_single.max_iterations = 1;
    core::ReplayConfig w1_iter;
    w1_iter.dependency_window = 1;
    w1_iter.max_iterations = 16;

    const double e_naive = err_of(naive);
    const double e_w1s = err_of(w1_single);
    const double e_w1i = err_of(w1_iter);
    const double e_full = err_of({});
    t.add_row({name, Table::pct(e_naive), Table::pct(e_w1s),
               Table::pct(e_w1i), Table::pct(e_full)});
    // Monotone story: each ingredient helps (allow small noise margins).
    ok = ok && e_full <= e_naive + 0.01 && e_w1i <= e_w1s + 0.01 &&
         e_full < 0.15;
  }
  emit(t, "ra1_dep_ablation");
  return verdict(ok, "R-A1 dependencies and iteration each reduce error");
}
