#include "common/json.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sctm {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

JsonWriter::JsonWriter() { out_.reserve(256); }

void JsonWriter::comma_for_value() {
  assert((depth_ == 0 || !in_object_.back() || pending_key_) &&
         "JsonWriter: value inside an object requires a preceding key()");
  if (depth_ > 0 && !pending_key_ && has_item_.back()) out_ += ',';
  if (depth_ > 0 && !pending_key_) has_item_.back() = true;
  pending_key_ = false;
}

void JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  in_object_.push_back(true);
  has_item_.push_back(false);
  ++depth_;
}

void JsonWriter::end_object() {
  assert(depth_ > 0 && in_object_.back() && !pending_key_);
  out_ += '}';
  in_object_.pop_back();
  has_item_.pop_back();
  if (--depth_ == 0) emitted_ = true;
}

void JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  in_object_.push_back(false);
  has_item_.push_back(false);
  ++depth_;
}

void JsonWriter::end_array() {
  assert(depth_ > 0 && !in_object_.back());
  out_ += ']';
  in_object_.pop_back();
  has_item_.pop_back();
  if (--depth_ == 0) emitted_ = true;
}

void JsonWriter::key(std::string_view name) {
  assert(depth_ > 0 && in_object_.back() && !pending_key_);
  if (has_item_.back()) out_ += ',';
  has_item_.back() = true;
  out_ += quote(name);
  out_ += ':';
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  comma_for_value();
  out_ += quote(s);
  if (depth_ == 0) emitted_ = true;
}

void JsonWriter::value(double d) {
  comma_for_value();
  out_ += format_double(d);
  if (depth_ == 0) emitted_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  if (depth_ == 0) emitted_ = true;
}

void JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  if (depth_ == 0) emitted_ = true;
}

void JsonWriter::value(bool b) {
  comma_for_value();
  out_ += b ? "true" : "false";
  if (depth_ == 0) emitted_ = true;
}

void JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  if (depth_ == 0) emitted_ = true;
}

void JsonWriter::raw(std::string_view fragment) {
  comma_for_value();
  out_.append(fragment.data(), fragment.size());
  if (depth_ == 0) emitted_ = true;
}

std::string JsonWriter::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonWriter::format_double(double d) {
  if (!std::isfinite(d)) return "null";
  // Shortest round-trippable decimal: try increasing precision until strtod
  // reproduces the value exactly. %.17g always round-trips for IEEE doubles,
  // so the loop terminates; most metrics values stop at %.6g or shorter.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  // %g may emit "inf"-free but exponent-only forms like "1e+06"; those are
  // valid JSON. What is not valid is a leading '.' or a bare '-': %g never
  // produces either. Ensure a token like "5" stays integral-looking (fine).
  return buf;
}

std::string JsonWriter::str() && {
  assert(complete() && "JsonWriter: document not complete");
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (err_) *err_ = what + " (at offset " + std::to_string(pos_) + ")";
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      }
      case 't':
      case 'f': return parse_literal(out);
      case 'n': return parse_literal(out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(JsonValue* out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.rfind("true", 0) == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (rest.rfind("false", 0) == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (rest.rfind("null", 0) == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(JsonValue* out) {
    // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // Notably rejects NaN, Infinity, leading '+', leading '.', hex.
    const std::size_t start = pos_;
    eat('-');
    if (eat('0')) {
      // no further digits allowed in the integer part
    } else if (pos_ < text_.size() && text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      return fail("invalid number");
    }
    if (eat('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("invalid number: digits required after '.'");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("invalid number: digits required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out->number)) {
      return fail("number out of double range");
    }
    return true;
  }

  bool parse_string(std::string* out) {
    if (!eat('"')) return fail("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid hex digit in \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // needed by our writer, which never splits astral characters).
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_array(JsonValue* out) {
    eat('[');
    out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(&item)) return false;
      out->array.push_back(std::move(item));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue* out) {
    eat('{');
    out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string k;
      if (!parse_string(&k)) return false;
      if (out->find(k) != nullptr) return fail("duplicate object key '" + k + "'");
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      JsonValue v;
      skip_ws();
      if (!parse_value(&v)) return false;
      out->object.emplace_back(std::move(k), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* err) {
  JsonValue scratch;
  Parser p(text, err);
  return p.parse(out ? out : &scratch);
}

}  // namespace sctm
