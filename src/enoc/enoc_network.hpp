// Electrical NoC: routers + links + message segmentation/reassembly.
//
// This is the "baseline NOC simulator" of the paper's case study: a
// cycle-accurate VC wormhole mesh/torus/ring. The network self-clocks: it
// ticks only while any message is in flight, so an idle network costs no
// events (crucial for trace replay speed).
//
// Quiescence-aware scheduling: within a running clock, only *active* routers
// are ticked. A router is active while it holds flits (injection backlog or
// occupied input VCs); it is marked active when a message is injected at it
// or a flit arrives over a link, and drops out of the active set the moment
// its tick reports no remaining work. The active set is a bitmap drained in
// ascending router-id order every cycle — exactly the order the seed's
// tick-everything loop used — so datapath timing, arbitration history and
// the activity hash are bit-identical to ticking all routers, at O(active)
// instead of O(N) cost per cycle. Idle-router ticks are provably no-ops
// (every pipeline phase early-outs on empty buffers), which the exhaustive
// tick mode (set_exhaustive_tick_for_test) lets tests verify directly.
//
// Sharded parallel ticking: one cycle's router work may be split across the
// Simulator's WorkerPool. Router ticks are pure per-router (side effects go
// to a per-shard RouterOutbox, never to the network), so shards race on
// nothing; the dispatching thread then drains outboxes in ascending shard —
// hence ascending router-id — order, replaying the serial engine's exact
// side-effect sequence. Every mode (serial, parallel, exhaustive oracle)
// routes through the same outbox+drain path, so results are bit-identical
// for every thread count by construction. See DESIGN.md §10.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "enoc/params.hpp"
#include "enoc/router.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace sctm::enoc {

class EnocNetwork final : public noc::Network {
 public:
  EnocNetwork(Simulator& sim, std::string name, const noc::Topology& topo,
              const EnocParams& params);

  void inject(noc::Message msg) override;
  bool idle() const override { return in_flight_ == 0; }

  /// Session reset: routers, in-flight table, activity scoreboard and
  /// datapath counters return to freshly-constructed state with all
  /// capacity retained. Test/debug configuration (exhaustive tick mode, the
  /// activity probe, the parallel grain) survives. The owning Simulator must
  /// be reset first — the self-clocking tick event lives in its queue.
  void reset() override;

  /// In-place re-parameterization (the rebind fast path): swaps router
  /// datapath parameters — VC counts, buffer depth, arbiter kind, routing —
  /// without reconstructing the network, so registered stat entries and the
  /// topology binding survive. Ends in the reset() state (the owning
  /// Simulator must be reset alongside, as for reset()).
  void reparameterize(const EnocParams& params);

  bool partitioned_tick_supported() const override { return true; }
  void tick_partitioned(unsigned shard, unsigned nshards) override;
  void drain_ticks() override;

  /// Fault injection (DESIGN.md §11): link-level faults — payload
  /// corruption, flit drop, stuck-at episodes — are drawn per link traversal
  /// at the serial outbox drain, so the schedule is bit-identical at any
  /// shard count. Faults corrupt *payloads*, never flow control: the wire
  /// symbol still traverses (wormhole/credit state untouched), detection
  /// happens at tail reassembly, recovery is a NACK + source re-injection
  /// bounded by the spec's retry budget.
  void install_fault_model(const fault::FaultSpec& spec) override;

  const noc::Topology& topology() const { return topo_; }
  /// The network-owned routing table (built once here, shared by every
  /// router; rebuilt in place on reparameterize()).
  const noc::RoutingTable& routes() const { return routes_; }
  const EnocParams& params() const { return params_; }
  Router& router(NodeId n) { return *routers_[static_cast<std::size_t>(n)]; }

  /// Cycles during which the network clock was running (power accounting).
  std::uint64_t active_cycles() const { return active_cycles_; }

  /// Individual router ticks executed (quiescence metric: with the activity
  /// scoreboard this scales with flit occupancy, not node_count() *
  /// active_cycles()).
  std::uint64_t router_ticks() const { return router_ticks_; }

  /// Test hook: tick every router each cycle (the seed scheduling policy)
  /// instead of draining the active set. Behaviour must be bit-identical;
  /// the quiescence regression test asserts it. Forces serial ticking (the
  /// oracle predates sharding), but still drains through the outbox.
  void set_exhaustive_tick_for_test(bool on) { exhaustive_tick_ = on; }

  /// Minimum active routers *per pool lane* before a cycle is sharded
  /// across the worker pool; below the threshold the cycle runs serially
  /// (bit-identical either way, so this is purely a cost knob — sharding a
  /// near-empty cycle costs more in barriers than it saves). 0 shards every
  /// cycle whenever a pool is installed (tests use this to exercise the
  /// parallel path on small workloads).
  void set_parallel_grain(unsigned grain) override { parallel_grain_ = grain; }

  /// Order-sensitive hash over every flit hop and ejection (msg, seq, node,
  /// port, cycle). Two runs with identical datapath behaviour produce
  /// identical hashes — the determinism and replay-fixed-point tests compare
  /// these to catch divergence that aggregate stats would mask.
  std::uint64_t activity_hash() const { return activity_hash_; }

  /// Calls `fn(cycle, event_code, msg, node)` for every forwarded/ejected
  /// flit when set (debugging aid; adds overhead only when installed).
  using ActivityProbe =
      std::function<void(Cycle, int, MsgId, NodeId)>;
  void set_activity_probe(ActivityProbe fn) { probe_ = std::move(fn); }

 private:
  // Outbox drain handlers — exactly the serial engine's side-effect bodies,
  // now invoked from drain_ticks() on the dispatching thread.
  void apply_forward(NodeId node, int out_dir, const Flit& flit);
  void apply_eject(NodeId node, const Flit& flit);
  void apply_credit(NodeId node, int in_dir, int vc);

  // Fault path (all serial: drain handlers and event dispatch).
  void apply_link_faults(NodeId node, int out_dir, const Flit& flit);
  void handle_corrupt_message(const noc::Message& msg);
  void reinject_for_retry(const noc::Message& msg);

  void tick();
  void ensure_ticking();
  void mark_active(NodeId n);
  void prepare_shards(unsigned nshards);

  struct PendingMsg {
    noc::Message msg;
    std::uint32_t flits_remaining = 0;
    /// Any flit of this message hit a fault in transit; the reassembly check
    /// at tail ejection sees it and triggers recovery.
    bool fault_bad = false;
  };

  /// Per-shard tick state. Shards never touch the live scoreboard: routers
  /// that report no work are recorded in `clear_mask` and the masks are
  /// applied at drain — before any outbox entry, so activations fired while
  /// draining (ejection → delivery → same-cycle reply inject) survive.
  struct ShardState {
    RouterOutbox outbox;
    std::vector<std::uint64_t> clear_mask;  // sized like active_bits_
    std::uint64_t ticks = 0;
  };

  noc::Topology topo_;
  EnocParams params_;
  noc::RoutingTable routes_;
  std::vector<std::unique_ptr<Router>> routers_;
  /// In-flight message table. Open-addressing with retained capacity: the
  /// per-message insert/erase pair stops hitting the heap once the table has
  /// grown to the run's peak concurrency.
  FlatMap<MsgId, PendingMsg> pending_;
  /// Activity scoreboard: bit n set == router n has (or may have) work.
  std::vector<std::uint64_t> active_bits_;
  /// Stuck-at fault state, indexed node * link_stride_ + out_dir: the cycle
  /// until which the link garbles every crossing flit. Empty unless a fault
  /// model is installed. The stride is the topology's max directional port
  /// count (file fabrics may exceed the lattice kinds' fixed radix).
  std::size_t link_stride_ = 0;
  std::vector<Cycle> link_stuck_until_;
  std::vector<ShardState> shards_;
  unsigned shards_in_use_ = 0;
  unsigned parallel_grain_ = 2;
  std::uint64_t in_flight_ = 0;
  bool ticking_ = false;
  bool exhaustive_tick_ = false;
  std::uint64_t active_cycles_ = 0;
  std::uint64_t router_ticks_ = 0;
  std::uint64_t activity_hash_ = 0;
  ActivityProbe probe_;
};

}  // namespace sctm::enoc
