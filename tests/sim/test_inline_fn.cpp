#include "common/inline_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace sctm {
namespace {

TEST(InlineFn, EmptyIsFalse) {
  InlineFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFn, InvokesSmallCapture) {
  int hits = 0;
  InlineFn fn([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, MutableLambdaKeepsStateAcrossCalls) {
  int out = 0;
  InlineFn fn([&out, n = 0]() mutable { out = ++n; });
  fn();
  fn();
  fn();
  EXPECT_EQ(out, 3);
}

TEST(InlineFn, HotPathCapturesFitInline) {
  // The two 56-byte shapes the networks schedule on every message/flit.
  struct MessageSized {
    std::uint64_t a, b, c, d, e;
    std::uint32_t f, g;
  };  // 48 bytes
  static_assert(sizeof(MessageSized) == 48);
  void* self = nullptr;
  MessageSized m{};
  auto deliver = [self, m] { (void)self; (void)m; };
  static_assert(sizeof(deliver) == 56);
  static_assert(InlineFn::fits_inline<decltype(deliver)>());
  EXPECT_EQ(InlineFn::fits_inline<decltype(deliver)>(), true);
}

TEST(InlineFn, SmallCaptureDoesNotAllocate) {
  const auto before = InlineFn::heap_fallbacks();
  std::array<std::uint64_t, 6> payload{};  // 48 bytes, within the 56 budget
  InlineFn fn([payload] { (void)payload; });
  fn();
  EXPECT_EQ(InlineFn::heap_fallbacks(), before);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeapAndCounts) {
  const auto before = InlineFn::heap_fallbacks();
  std::array<std::uint64_t, 16> big{};  // 128 bytes > 56
  big[7] = 42;
  InlineFn fn([big] { EXPECT_EQ(big[7], 42u); });
  EXPECT_EQ(InlineFn::heap_fallbacks(), before + 1);
  fn();
}

TEST(InlineFn, MoveTransfersOwnership) {
  int hits = 0;
  InlineFn a([&hits] { ++hits; });
  InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, MovePreservesNonTrivialCaptures) {
  auto data = std::make_shared<std::vector<int>>(std::vector<int>{1, 2, 3});
  std::weak_ptr<std::vector<int>> watch = data;
  int sum = 0;
  InlineFn a([data = std::move(data), &sum] {
    for (int v : *data) sum += v;
  });
  InlineFn b(std::move(a));
  InlineFn c(std::move(b));
  c();
  EXPECT_EQ(sum, 6);
  EXPECT_FALSE(watch.expired());
  c.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFn, DestructorRunsCaptureDestructorsOnce) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    InlineFn fn([token = std::move(token)] { (void)token; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFn, HeapFallbackDestroysExactlyOnce) {
  struct Big {
    std::shared_ptr<int> token;
    std::array<std::uint64_t, 16> pad{};
  };
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineFn fn([big = Big{std::move(token), {}}] { (void)big; });
    InlineFn moved(std::move(fn));
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFn, PlainFunctionPointerWorks) {
  static int calls = 0;
  struct Local {
    static void bump() { ++calls; }
  };
  InlineFn fn(&Local::bump);
  fn();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace sctm
